#!/usr/bin/env python3
"""Checks that relative markdown links resolve to real files.

Usage: check_md_links.py <file-or-dir>...

Scans the given markdown files (directories are searched recursively
for *.md) for inline links/images `[text](target)`. Relative targets
must exist on disk, resolved against the containing file's directory;
a `#fragment` suffix is ignored. External (scheme:// or mailto:) and
pure-fragment links are skipped. Exits 1 and lists every broken link
if any target is missing.
"""

import os
import re
import sys

# Inline link or image. Good enough for the plain markdown in this
# repo; reference-style links are not used here.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def collect_md_files(paths):
    files = []
    for path in paths:
        if os.path.isdir(path):
            for root, _, names in os.walk(path):
                files.extend(
                    os.path.join(root, n) for n in names if n.endswith(".md")
                )
        else:
            files.append(path)
    return sorted(set(files))


def check_file(md_path):
    broken = []
    try:
        with open(md_path, encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        return [(md_path, str(e))]
    in_code = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if "://" in target or target.startswith(("mailto:", "#")):
                continue
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(md_path), target_path)
            )
            if not os.path.exists(resolved):
                broken.append((md_path, target))
    return broken


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    broken = []
    files = collect_md_files(argv[1:])
    for md in files:
        broken.extend(check_file(md))
    for md, target in broken:
        print(f"BROKEN: {md}: ({target})")
    print(f"checked {len(files)} markdown file(s), {len(broken)} broken link(s)")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
