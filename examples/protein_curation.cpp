// Collaborative curation (the paper's CUR workload, §5.1): several
// curators branch from a canonical protein-interaction dataset,
// clean/extend their copies, and periodically merge back. The example
// then runs the kinds of cross-version analytics the paper's intro
// motivates: per-version aggregates, versions satisfying a predicate,
// and "bulk delete" detection via diffs.
//
// Build & run:  ./build/examples/protein_curation

#include <iostream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/orpheus.h"

using orpheus::Rng;
using orpheus::core::Cvd;
using orpheus::core::CvdOptions;
using orpheus::core::OrpheusDB;
using orpheus::core::VersionId;
using orpheus::rel::Chunk;
using orpheus::rel::DataType;
using orpheus::rel::Schema;
using orpheus::rel::Value;

namespace {

void Die(const std::string& what, const orpheus::Status& status) {
  std::cerr << what << ": " << status.ToString() << "\n";
  std::exit(1);
}

}  // namespace

int main() {
  OrpheusDB orpheus;
  Rng rng(2026);

  // Canonical dataset: 60 interactions with confidence scores.
  Schema schema({{"protein1", DataType::kString},
                 {"protein2", DataType::kString},
                 {"confidence", DataType::kDouble}});
  Chunk rows(schema);
  for (int i = 0; i < 60; ++i) {
    rows.AppendRow({Value::String("P" + std::to_string(i % 12)),
                    Value::String("Q" + std::to_string(i)),
                    Value::Double(0.5 + 0.5 * rng.NextDouble())});
  }
  CvdOptions options;
  options.primary_key = {"protein1", "protein2"};
  auto cvd_result = orpheus.InitCvd("string_db", rows, options, "canonical v1");
  if (!cvd_result.ok()) Die("init", cvd_result.status());
  Cvd* cvd = cvd_result.value();

  // Three curators, each doing two rounds of branch -> edit -> merge.
  std::vector<std::string> curators = {"alice", "bob", "carol"};
  for (const std::string& user : curators) {
    if (auto st = orpheus.CreateUser(user); !st.ok()) Die("user", st);
  }

  VersionId canonical = 1;
  for (int round = 0; round < 2; ++round) {
    std::vector<VersionId> contributions;
    for (const std::string& user : curators) {
      if (auto st = orpheus.Login(user); !st.ok()) Die("login", st);
      std::string ws = user + "_ws" + std::to_string(round);
      if (auto st = cvd->Checkout({canonical}, ws); !st.ok()) Die("checkout", st);

      // Each curator raises confidence of their specialty proteins and
      // contributes a few new interactions.
      std::string specialty = "P" + std::to_string(rng.Uniform(12));
      auto update = orpheus.db()->Execute(
          "UPDATE " + ws + " SET confidence = confidence * 1.1 " +
          "WHERE protein1 = '" + specialty + "' AND confidence < 0.9");
      if (!update.ok()) Die("update", update.status());
      for (int add = 0; add < 3; ++add) {
        auto insert = orpheus.db()->Execute(
            "INSERT INTO " + ws + " VALUES (0, '" + specialty + "', 'N" +
            std::to_string(round * 100 + add + 10 * rng.Uniform(10)) + "', " +
            std::to_string(0.6 + 0.04 * add) + ")");
        if (!insert.ok()) Die("insert", insert.status());
      }
      auto commit = cvd->Commit(ws, user + " curation round " +
                                        std::to_string(round));
      if (!commit.ok()) Die("commit", commit.status());
      contributions.push_back(commit.value());
      std::cout << user << " committed v" << commit.value() << "\n";
    }
    // Merge all contributions back into a new canonical version
    // (precedence order resolves conflicting confidence values).
    std::string merge_ws = "merge_round" + std::to_string(round);
    if (auto st = cvd->Checkout(contributions, merge_ws); !st.ok()) {
      Die("merge checkout", st);
    }
    auto merged = cvd->Commit(merge_ws, "canonical merge round " +
                                            std::to_string(round));
    if (!merged.ok()) Die("merge commit", merged.status());
    canonical = merged.value();
    std::cout << "new canonical version: v" << canonical << " (merge of "
              << contributions.size() << " branches)\n\n";
  }

  // --- The intro's motivating analytics --------------------------------

  // "aggregate count of tuples with confidence > 0.9, for each version"
  auto strong = orpheus.Run(
      "SELECT vid, count(*) AS strong_interactions FROM CVD string_db "
      "WHERE confidence > 0.9 GROUP BY vid ORDER BY vid");
  if (!strong.ok()) Die("analytics", strong.status());
  std::cout << "high-confidence interactions per version:\n"
            << strong.value().ToString(30);

  // "versions with a specific record"
  auto which = orpheus.Run(
      "SELECT DISTINCT vid FROM CVD string_db WHERE protein1 = 'P3' "
      "ORDER BY vid");
  if (!which.ok()) Die("analytics", which.status());
  std::cout << "\nversions containing interactions of P3: "
            << which.value().num_rows() << "\n";

  // "versions with a bulk delete" — diff sizes along the graph.
  std::cout << "\nrecords added/removed along each derivation edge:\n";
  for (VersionId vid : cvd->graph().versions()) {
    auto node = cvd->graph().GetNode(vid).value();
    for (VersionId parent : node->parents) {
      auto added = cvd->Diff(vid, parent);
      auto removed = cvd->Diff(parent, vid);
      if (!added.ok() || !removed.ok()) Die("diff", added.status());
      std::cout << "  v" << parent << " -> v" << vid << ": +"
                << added.value().num_rows() << " / -"
                << removed.value().num_rows() << "\n";
    }
  }

  std::cout << "\ntotal records stored once in the CVD: "
            << cvd->total_records() << " (storage "
            << cvd->StorageBytes() / 1024 << " KiB)\n";
  return 0;
}
