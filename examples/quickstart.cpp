// Quickstart: the OrpheusDB public API end to end on the paper's
// running example — a protein-protein interaction dataset (Figure 1).
//
//   1. init a CVD from raw rows
//   2. checkout, edit with plain SQL, commit
//   3. branch and merge with primary-key precedence
//   4. diff versions
//   5. versioned SQL: SELECT ... FROM VERSION n OF CVD ...
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "core/orpheus.h"

using orpheus::core::Cvd;
using orpheus::core::CvdOptions;
using orpheus::core::OrpheusDB;
using orpheus::rel::Chunk;
using orpheus::rel::DataType;
using orpheus::rel::Schema;
using orpheus::rel::Value;

namespace {

void Check(const orpheus::Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << ": " << status.ToString() << "\n";
    std::exit(1);
  }
}

template <typename T>
T Unwrap(orpheus::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << ": " << result.status().ToString() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  OrpheusDB orpheus;

  // --- 1. init: register the dataset as a CVD -------------------------
  Schema schema({{"protein1", DataType::kString},
                 {"protein2", DataType::kString},
                 {"neighborhood", DataType::kInt64},
                 {"cooccurrence", DataType::kInt64},
                 {"coexpression", DataType::kInt64}});
  Chunk rows(schema);
  rows.AppendRow({Value::String("ENSP273047"), Value::String("ENSP261890"),
                  Value::Int(0), Value::Int(53), Value::Int(0)});
  rows.AppendRow({Value::String("ENSP273047"), Value::String("ENSP235932"),
                  Value::Int(0), Value::Int(87), Value::Int(0)});
  rows.AppendRow({Value::String("ENSP300413"), Value::String("ENSP274242"),
                  Value::Int(426), Value::Int(0), Value::Int(164)});

  CvdOptions options;
  options.primary_key = {"protein1", "protein2"};
  Cvd* cvd = Unwrap(orpheus.InitCvd("protein", rows, options, "initial import"),
                    "init");
  std::cout << "initialized CVD 'protein' at version 1\n";

  // --- 2. checkout -> SQL edits -> commit ------------------------------
  Check(cvd->Checkout({1}, "workspace"), "checkout");
  Check(orpheus.db()
            ->Execute("UPDATE workspace SET coexpression = 83 "
                      "WHERE protein2 = 'ENSP261890'")
            .status(),
        "edit");
  Check(orpheus.db()
            ->Execute("INSERT INTO workspace VALUES (0, 'ENSP309334', "
                      "'ENSP346022', 0, 227, 975)")
            .status(),
        "insert");
  auto v2 = Unwrap(cvd->Commit("workspace", "re-measured coexpression"), "commit");
  std::cout << "committed version " << v2 << "\n";

  // --- 3. branch from v1 and merge with precedence ---------------------
  Check(cvd->Checkout({1}, "branch_b"), "checkout branch");
  Check(orpheus.db()
            ->Execute("UPDATE branch_b SET cooccurrence = 99 "
                      "WHERE protein2 = 'ENSP261890'")
            .status(),
        "branch edit");
  auto v3 = Unwrap(cvd->Commit("branch_b", "alternative curation"), "commit branch");

  // Merging checkout: v2 listed first, so its values win PK conflicts.
  Check(cvd->Checkout({v2, v3}, "merged"), "merge checkout");
  auto v4 = Unwrap(cvd->Commit("merged", "merge v2 + v3"), "merge commit");
  std::cout << "merged into version " << v4 << " (parents: v" << v2 << ", v"
            << v3 << ")\n";

  // --- 4. diff ----------------------------------------------------------
  Chunk only_v2 = Unwrap(cvd->Diff(v2, 1), "diff");
  std::cout << "records in v" << v2 << " but not v1: " << only_v2.num_rows()
            << "\n";

  // --- 5. versioned SQL -------------------------------------------------
  Chunk per_version = Unwrap(
      orpheus.Run("SELECT vid, count(*) AS records, avg(coexpression) AS "
                  "avg_coexpr FROM CVD protein GROUP BY vid ORDER BY vid"),
      "versioned sql");
  std::cout << "\nper-version statistics:\n" << per_version.ToString();

  Chunk join = Unwrap(
      orpheus.Run("SELECT a.protein1, a.protein2, a.coexpression, "
                  "b.coexpression AS old_coexpression "
                  "FROM VERSION 4 OF CVD protein AS a, "
                  "VERSION 1 OF CVD protein AS b "
                  "WHERE a.protein1 = b.protein1 AND a.protein2 = b.protein2 "
                  "AND a.coexpression <> b.coexpression"),
      "cross-version join");
  std::cout << "\nrecords whose coexpression changed between v1 and v4:\n"
            << join.ToString();

  std::cout << "\nversion graph:\n" << cvd->graph().ToDot();
  return 0;
}
