// Data-science pipeline (the paper's SCI workload): a team iterates on
// an evolving dataset, producing dozens of versions across branches.
// When checkouts get slow, the partition optimizer (`optimize` in the
// CLI) reorganizes the CVD with LYRESPLIT — this example invokes it
// through the library API and measures the speedup, including the
// weighted variant (Appendix C.2) that favours recent versions.
//
// Build & run:  ./build/examples/data_science_pipeline

#include <iostream>
#include <map>

#include "common/timer.h"
#include "core/orpheus.h"
#include "partition/lyresplit.h"
#include "partition/partition_store.h"
#include "workload/generator.h"

using orpheus::WallTimer;
using orpheus::core::Cvd;
using orpheus::core::SplitByRlistModel;
using orpheus::core::VersionId;

namespace {

void Die(const std::string& what, const orpheus::Status& status) {
  std::cerr << what << ": " << status.ToString() << "\n";
  std::exit(1);
}

}  // namespace

int main() {
  // Generate a SCI-style history: 200 versions across 20 branches of
  // an evolving measurement table, and load it as a CVD.
  orpheus::wl::DatasetSpec spec;
  spec.num_versions = 400;
  spec.num_branches = 50;
  spec.inserts_per_version = 30;
  spec.num_attrs = 6;
  orpheus::wl::Dataset data = orpheus::wl::Generate(spec);
  std::cout << "generated history: " << data.versions().size() << " versions, "
            << data.num_records() << " distinct records\n";

  orpheus::rel::Database db;
  auto model = orpheus::core::MakeDataModel(
      orpheus::core::DataModelKind::kSplitByRlist, &db, "experiments",
      data.DataSchema());
  if (auto st = model->Init(); !st.ok()) Die("init", st);

  // Load versions through the model (the repository's bulk-load path).
  orpheus::core::RecordId watermark = 0;
  for (const orpheus::wl::VersionSpec& v : data.versions()) {
    // Stage the version's rows.
    orpheus::rel::Chunk rows = data.RowsFor(v.rids);
    orpheus::rel::Schema schema;
    schema.AddColumn("rid", orpheus::rel::DataType::kInt64);
    for (const auto& def : rows.schema().columns()) {
      schema.AddColumn(def.name, def.type);
    }
    orpheus::rel::Chunk staged(schema);
    for (auto rid : v.rids) staged.mutable_column(0).AppendInt(rid);
    std::vector<uint32_t> all(rows.num_rows());
    for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<uint32_t>(i);
    for (int c = 0; c < rows.num_columns(); ++c) {
      staged.mutable_column(c + 1).Gather(rows.column(c), all);
    }
    orpheus::rel::Chunk new_records(schema);
    std::vector<uint32_t> fresh;
    for (size_t i = 0; i < v.rids.size(); ++i) {
      if (v.rids[i] >= watermark) fresh.push_back(static_cast<uint32_t>(i));
    }
    new_records.GatherFrom(staged, fresh);
    for (uint32_t i : fresh) {
      watermark = std::max(watermark, v.rids[i] + 1);
    }
    if (auto st = db.AdoptTable("stage", std::move(staged)); !st.ok()) {
      Die("stage", st);
    }
    VersionId parent = v.parents.empty() ? -1 : v.parents[0];
    if (auto st = model->AddVersion(v.vid, "stage", v.rids, new_records, parent);
        !st.ok()) {
      Die("load", st);
    }
    if (auto st = db.DropTable("stage"); !st.ok()) Die("drop", st);
  }
  std::cout << "loaded CVD (" << model->StorageBytes() / 1024 << " KiB)\n\n";

  // --- Unpartitioned checkout latency ---------------------------------
  // Average over the 20 most recent versions (the team's daily pattern).
  std::vector<VersionId> recent;
  for (size_t i = data.versions().size() - 20; i < data.versions().size(); ++i) {
    recent.push_back(data.versions()[i].vid);
  }
  auto latest = data.versions().back().vid;
  db.ResetStats();
  WallTimer before;
  for (VersionId vid : recent) {
    if (auto st = model->CheckoutVersion(vid, "w" + std::to_string(vid));
        !st.ok()) {
      Die("checkout", st);
    }
    (void)db.DropTable("w" + std::to_string(vid));
  }
  double unpartitioned = before.ElapsedSeconds() / recent.size();
  int64_t unpartitioned_rows =
      db.stats()->rows_scanned / static_cast<int64_t>(recent.size());
  std::cout << "avg checkout without partitioning: " << unpartitioned * 1e3
            << " ms (" << unpartitioned_rows << " rows touched)\n";

  // --- Partition with LYRESPLIT (gamma = 2|R|) -------------------------
  auto graph = data.BuildGraph();
  auto split = orpheus::part::LyreSplit::RunForBudget(graph,
                                                      2 * data.num_records());
  if (!split.ok()) Die("lyresplit", split.status());
  std::cout << "LYRESPLIT chose delta=" << split.value().delta << " -> "
            << split.value().partitioning.num_partitions() << " partitions\n";

  auto* rlist = dynamic_cast<SplitByRlistModel*>(model.get());
  orpheus::part::PartitionStore store(&db, "experiments", rlist->DataTable());
  std::map<VersionId, std::vector<orpheus::core::RecordId>> rids;
  for (const auto& v : data.versions()) rids[v.vid] = v.rids;
  if (auto st = store.Build(split.value().partitioning, std::move(rids));
      !st.ok()) {
    Die("build partitions", st);
  }

  // Warm the partitions' lazily built indexes, then time.
  if (auto st = store.CheckoutVersion(latest, "warm"); !st.ok()) {
    Die("partitioned checkout", st);
  }
  db.ResetStats();
  WallTimer after;
  for (VersionId vid : recent) {
    if (auto st = store.CheckoutVersion(vid, "p" + std::to_string(vid));
        !st.ok()) {
      Die("partitioned checkout", st);
    }
    (void)db.DropTable("p" + std::to_string(vid));
  }
  double partitioned = after.ElapsedSeconds() / recent.size();
  int64_t partitioned_rows =
      db.stats()->rows_scanned / static_cast<int64_t>(recent.size());
  std::cout << "avg checkout with partitioning:    " << partitioned * 1e3
            << " ms (" << partitioned_rows << " rows touched, "
            << unpartitioned / partitioned << "x faster)\n";
  std::cout << "storage: " << store.StorageRecords() << " records across "
            << store.num_partitions() << " partitions (vs "
            << data.num_records() << " unpartitioned)\n\n";

  // --- Weighted variant: the team mostly checks out recent versions ---
  std::map<VersionId, int64_t> frequency;
  for (const auto& v : data.versions()) {
    // Most-recent tenth of versions is checked out 30x as often.
    frequency[v.vid] =
        v.vid > static_cast<VersionId>(data.versions().size() * 9 / 10) ? 30 : 1;
  }
  auto weighted =
      orpheus::part::LyreSplit::RunWeighted(graph, frequency, split.value().delta);
  if (!weighted.ok()) Die("weighted", weighted.status());
  auto bip = data.BuildBipartite();
  orpheus::part::Partitioning wp = weighted.value().partitioning;
  if (auto st = wp.ComputeCosts(bip); !st.ok()) Die("costs", st);

  // Weighted checkout cost under the hot-version workload.
  double weighted_cost = 0;
  double plain_cost = 0;
  int64_t total_freq = 0;
  orpheus::part::Partitioning pp = split.value().partitioning;
  if (auto st = pp.ComputeCosts(bip); !st.ok()) Die("costs", st);
  auto cost_of = [&](const orpheus::part::Partitioning& p, VersionId vid) {
    for (size_t k = 0; k < p.groups.size(); ++k) {
      for (VersionId member : p.groups[k]) {
        if (member == vid) return static_cast<double>(p.partition_records[k]);
      }
    }
    return 0.0;
  };
  for (const auto& [vid, f] : frequency) {
    weighted_cost += static_cast<double>(f) * cost_of(wp, vid);
    plain_cost += static_cast<double>(f) * cost_of(pp, vid);
    total_freq += f;
  }
  std::cout << "frequency-weighted checkout cost under the skewed workload "
               "(records/checkout):\n"
            << "  unweighted LYRESPLIT: " << plain_cost / total_freq
            << " (storage " << pp.storage_cost << " records)\n"
            << "  weighted LYRESPLIT:   " << weighted_cost / total_freq
            << " (storage " << wp.storage_cost << " records)\n"
            << "Appendix C.2 guarantees the same ((1+d)^l, 1/d) bound on the "
               "weighted objective;\nwhich variant wins depends on the "
               "frequency skew and d.\n";
  return 0;
}
