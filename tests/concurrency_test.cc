// Tests for the concurrency core (core/concurrency.h) and the
// multi-session behaviour of EngineApi: pin/unpin semantics, snapshot
// stability for pinned readers while writers commit, and the
// serializability property test — N concurrent sessions replaying
// randomized checkout/commit/discard schedules against a durable
// engine must leave a WAL whose replay reproduces the live state
// bit-identically (the WAL records the serialized order the exclusive
// lock chose, so replay equality IS serializability).

#include <atomic>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/concurrency.h"
#include "core/engine_api.h"
#include "core/orpheus.h"
#include "storage/io_util.h"
#include "storage/snapshot.h"
#include "storage/storage_manager.h"

namespace orpheus {
namespace {

using core::Cvd;
using core::CvdOptions;
using core::EngineApi;
using core::OrpheusDB;
using core::SessionContext;
using core::SessionPin;
using core::SnapshotRegistry;

class TempDir {
 public:
  TempDir() : path_(storage::MakeTempDir("orpheus_conc_").ValueOrDie()) {}
  ~TempDir() { (void)storage::RemoveDirRecursive(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// k INT (pk), score DOUBLE.
rel::Chunk MakeRows(int n, int offset = 0) {
  rel::Schema schema;
  schema.AddColumn("k", rel::DataType::kInt64);
  schema.AddColumn("score", rel::DataType::kDouble);
  rel::Chunk rows(schema);
  for (int i = 0; i < n; ++i) {
    rows.mutable_column(0).AppendInt(offset + i);
    rows.mutable_column(1).AppendDouble(0.25 * (offset + i));
  }
  return rows;
}

// Registers CVD `name` with `rows` directly on the engine (no CSV
// file needed). Only safe before concurrent sessions start.
void Seed(EngineApi* api, const std::string& name, int n) {
  CvdOptions options;
  options.primary_key = {"k"};
  ASSERT_TRUE(api->orpheus()->InitCvd(name, MakeRows(n), options, "init").ok());
}

std::string MustExecute(EngineApi* api, SessionContext* session,
                        const std::string& line) {
  auto result = api->Execute(session, line);
  EXPECT_TRUE(result.ok()) << line << ": " << result.status().ToString();
  return result.ok() ? result.value() : std::string();
}

// --- SnapshotRegistry ----------------------------------------------------

TEST(SnapshotRegistry, PinUnpinAndOwnership) {
  SnapshotRegistry reg;
  EXPECT_EQ(0, reg.PinCount("c"));
  reg.Pin(1, "c", SessionPin{2, 10});
  reg.Pin(2, "c", SessionPin{3, 11});
  reg.Pin(2, "d", SessionPin{1, 11});
  EXPECT_EQ(2, reg.PinCount("c"));
  EXPECT_EQ(1, reg.PinsByOthers("c", 1));  // session 2's pin
  EXPECT_EQ(0, reg.PinsByOthers("d", 2));  // own pin doesn't count

  // Re-pinning replaces, not duplicates.
  reg.Pin(1, "c", SessionPin{4, 12});
  EXPECT_EQ(2, reg.PinCount("c"));

  EXPECT_TRUE(reg.Unpin(1, "c"));
  EXPECT_FALSE(reg.Unpin(1, "c"));  // already gone
  EXPECT_EQ(1, reg.PinCount("c"));

  EXPECT_EQ(2, reg.UnpinAll(2));  // c + d
  EXPECT_EQ(0, reg.PinCount("c"));
  EXPECT_EQ(0, reg.PinCount("d"));

  reg.Pin(3, "c", SessionPin{1, 13});
  reg.ForgetCvd("c");
  EXPECT_EQ(0, reg.PinCount("c"));
}

TEST(SessionContext, StagedTablesAndActivityClock) {
  SessionContext session(7);
  EXPECT_EQ(7u, session.id());
  EXPECT_EQ("default", session.user());
  EXPECT_FALSE(session.exited());

  session.AddStagedTable("w1", "c");
  session.AddStagedTable("w2", "d");
  EXPECT_EQ("c", session.StagedCvd("w1"));
  EXPECT_EQ("", session.StagedCvd("nope"));
  session.RemoveStagedTable("w1");
  EXPECT_EQ("", session.StagedCvd("w1"));
  EXPECT_EQ(1u, session.StagedTables().size());

  session.AddCsvStaging("f.csv", "c", "t5");
  EXPECT_EQ(std::make_pair(std::string("c"), std::string("t5")),
            session.GetCsvStaging("f.csv"));
  session.RemoveCsvStaging("f.csv");
  EXPECT_EQ("", session.GetCsvStaging("f.csv").first);

  EXPECT_LT(session.IdleSeconds(), 5.0);
  int a = session.NextStagingId();
  int b = session.NextStagingId();
  EXPECT_EQ(a + 1, b);
}

TEST(ThreadPoolPost, RunsFireAndForgetTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      pool.Post([&ran] { ran.fetch_add(1); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(100, ran.load());
}

// --- EngineApi session verbs --------------------------------------------

TEST(EngineApiSessions, PinGuardsDropAgainstOtherSessions) {
  EngineApi api;
  Seed(&api, "c", 4);
  auto reader = api.NewSession();
  auto writer = api.NewSession();

  MustExecute(&api, reader.get(), "pin c");
  EXPECT_NE(std::string::npos,
            MustExecute(&api, reader.get(), "pins").find("c v1"));

  // Another session cannot drop a pinned CVD...
  auto drop = api.Execute(writer.get(), "drop c");
  ASSERT_FALSE(drop.ok());
  EXPECT_EQ(StatusCode::kFailedPrecondition, drop.status().code());

  // ...until the pin is released.
  MustExecute(&api, reader.get(), "unpin c");
  EXPECT_EQ("dropped c", MustExecute(&api, writer.get(), "drop c"));
}

TEST(EngineApiSessions, PinValidatesVersionAndDefaultsToLatest) {
  EngineApi api;
  Seed(&api, "c", 4);
  auto session = api.NewSession();
  EXPECT_FALSE(api.Execute(session.get(), "pin c -v 99").ok());
  EXPECT_FALSE(api.Execute(session.get(), "pin nosuch").ok());
  EXPECT_NE(std::string::npos,
            MustExecute(&api, session.get(), "pin c").find("version 1"));
}

TEST(EngineApiSessions, DiscardDropsOwnStagedTable) {
  EngineApi api;
  Seed(&api, "c", 4);
  auto session = api.NewSession();
  MustExecute(&api, session.get(), "checkout c -v 1 -t w");
  EXPECT_EQ("discarded staged table w",
            MustExecute(&api, session.get(), "discard -t w"));
  EXPECT_FALSE(api.orpheus()->db()->GetTable("w").ok());
  // Discarding again is a clean error, not a crash.
  EXPECT_FALSE(api.Execute(session.get(), "discard -t w").ok());
}

TEST(EngineApiSessions, CloseSessionDiscardsStagedAndReleasesPins) {
  EngineApi api;
  Seed(&api, "c", 4);
  auto session = api.NewSession();
  MustExecute(&api, session.get(), "checkout c -v 1 -t w");
  MustExecute(&api, session.get(), "pin c");
  api.CloseSession(session.get(), /*discard_staged=*/true);
  EXPECT_TRUE(session->exited());
  EXPECT_FALSE(api.orpheus()->db()->GetTable("w").ok());
  EXPECT_EQ(0, api.registry()->PinCount("c"));
}

TEST(EngineApiSessions, SessionsSeeSharedEngineButOwnUser) {
  EngineApi api;
  auto a = api.NewSession();
  auto b = api.NewSession();
  MustExecute(&api, a.get(), "create_user alice");
  MustExecute(&api, a.get(), "config alice");
  EXPECT_EQ("alice", MustExecute(&api, a.get(), "whoami"));
  // Session identity is per-session even though the engine is shared.
  EXPECT_EQ("default", MustExecute(&api, b.get(), "whoami"));
}

// --- Snapshot-isolated readers ------------------------------------------
//
// Acceptance criterion: a reader that pinned version 1 keeps observing
// exactly version 1's records while a writer commits new versions.

TEST(EngineApiSessions, PinnedReaderSeesStableSnapshotWhileWriterCommits) {
  EngineApi api;
  Seed(&api, "c", 8);
  auto pinner = api.NewSession();
  MustExecute(&api, pinner.get(), "pin c -v 1");
  const std::string baseline =
      MustExecute(&api, pinner.get(), "run SELECT * FROM VERSION 1 OF CVD c");
  ASSERT_FALSE(baseline.empty());

  constexpr int kReaders = 3;
  constexpr int kCommits = 12;
  std::atomic<bool> writer_done{false};
  std::atomic<int> mismatches{0};
  std::atomic<int> reads{0};

  std::vector<std::thread> threads;
  threads.reserve(kReaders + 1);
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&api, &baseline, &writer_done, &mismatches, &reads] {
      auto session = api.NewSession();
      while (!writer_done.load()) {
        auto got =
            api.Execute(session.get(), "run SELECT * FROM VERSION 1 OF CVD c");
        if (!got.ok() || got.value() != baseline) mismatches.fetch_add(1);
        reads.fetch_add(1);
      }
    });
  }
  threads.emplace_back([&api, &writer_done] {
    auto session = api.NewSession();
    for (int i = 0; i < kCommits; ++i) {
      std::string w = "wr" + std::to_string(i);
      MustExecute(&api, session.get(), "checkout c -v 1 -t " + w);
      MustExecute(&api, session.get(),
                  "sql UPDATE " + w + " SET score = " + std::to_string(i) +
                      ".5 WHERE k = 3");
      MustExecute(&api, session.get(), "commit -t " + w + " -m rev");
    }
    writer_done.store(true);
  });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(0, mismatches.load());
  EXPECT_GT(reads.load(), 0);
  // The writer really did move the CVD forward underneath the readers.
  Cvd* cvd = api.orpheus()->GetCvd("c").ValueOrDie();
  EXPECT_EQ(1 + kCommits, cvd->latest_version());
}

// --- The serializability property test ----------------------------------
//
// N sessions run randomized checkout / edit / commit / discard / read
// schedules concurrently. The exclusive lock serializes every mutation
// and its WAL append, so the WAL is a total order; replaying it into a
// fresh engine must reproduce the live engine bit-for-bit (compared
// through the snapshot codec, which canonicalizes all engine state).
// Run at both --threads=1 and --threads=4 so the relstore's parallel
// scan paths are exercised under the shared lock too.

void RunInterleavingSchedule(int exec_threads, uint32_t seed) {
  SetExecThreads(exec_threads);
  TempDir dir;
  std::string live_blob;
  {
    EngineApi api;
    ASSERT_TRUE(api.orpheus()->Open(dir.path()).ok());
    api.orpheus()->storage()->set_fsync(false);  // test speed only
    Seed(&api, "c", 10);
    Seed(&api, "d", 6);

    constexpr int kSessions = 4;
    constexpr int kRounds = 8;
    std::vector<std::thread> threads;
    threads.reserve(kSessions);
    for (int s = 0; s < kSessions; ++s) {
      threads.emplace_back([&api, s, seed] {
        auto session = api.NewSession();
        std::mt19937 rng(seed + static_cast<uint32_t>(s));
        for (int r = 0; r < kRounds; ++r) {
          const std::string cvd = (rng() % 3 != 0) ? "c" : "d";
          const std::string w =
              "s" + std::to_string(s) + "_r" + std::to_string(r);
          MustExecute(&api, session.get(),
                      "checkout " + cvd + " -v 1 -t " + w);
          if (rng() % 2 == 0) {
            MustExecute(&api, session.get(),
                        "sql UPDATE " + w + " SET score = " +
                            std::to_string(s * 100 + r) + ".0 WHERE k = 1");
          }
          switch (rng() % 4) {
            case 0:
              MustExecute(&api, session.get(), "discard -t " + w);
              break;
            case 1:  // leave staged: session close must clean it up
              break;
            default:
              MustExecute(&api, session.get(), "commit -t " + w + " -m r");
              break;
          }
          if (rng() % 2 == 0) {
            MustExecute(&api, session.get(),
                        "run SELECT * FROM VERSION 1 OF CVD " + cvd);
          }
          if (rng() % 4 == 0) MustExecute(&api, session.get(), "ls");
        }
        api.CloseSession(session.get(), /*discard_staged=*/true);
      });
    }
    for (std::thread& t : threads) t.join();
    live_blob = storage::SnapshotCodec::Encode(*api.orpheus(), 0);
  }

  // Replay the WAL the concurrent run wrote. Equality proves the log
  // is a correct total order of what actually happened.
  OrpheusDB recovered;
  ASSERT_TRUE(recovered.Open(dir.path()).ok());
  std::string recovered_blob = storage::SnapshotCodec::Encode(recovered, 0);
  EXPECT_EQ(live_blob, recovered_blob)
      << "concurrent schedule diverged from its WAL replay";
}

TEST(ConcurrencyProperty, InterleavedSessionsMatchWalReplaySerial) {
  RunInterleavingSchedule(/*exec_threads=*/1, /*seed=*/1234);
}

TEST(ConcurrencyProperty, InterleavedSessionsMatchWalReplayParallel) {
  RunInterleavingSchedule(/*exec_threads=*/4, /*seed=*/98765);
  SetExecThreads(1);
}

// Concurrent commits against one CVD from many sessions all land:
// version count is exact, no torn state.

TEST(ConcurrencyProperty, ConcurrentCommitsAllLand) {
  SetExecThreads(2);
  EngineApi api;
  Seed(&api, "c", 6);
  constexpr int kSessions = 6;
  constexpr int kCommits = 5;
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&api, s] {
      auto session = api.NewSession();
      for (int i = 0; i < kCommits; ++i) {
        std::string w = "t" + std::to_string(s) + "_" + std::to_string(i);
        MustExecute(&api, session.get(), "checkout c -v 1 -t " + w);
        MustExecute(&api, session.get(), "commit -t " + w + " -m x");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  Cvd* cvd = api.orpheus()->GetCvd("c").ValueOrDie();
  EXPECT_EQ(1 + kSessions * kCommits, cvd->latest_version());
  SetExecThreads(1);
}

}  // namespace
}  // namespace orpheus
