// Unit tests for relstore's type system, Value semantics, Column
// storage, Chunk operations, and Schema resolution.

#include <gtest/gtest.h>

#include "relstore/chunk.h"
#include "relstore/column.h"
#include "relstore/schema.h"
#include "relstore/types.h"
#include "relstore/value.h"

namespace orpheus::rel {
namespace {

TEST(TypesTest, NamesRoundTrip) {
  EXPECT_EQ(DataTypeFromName("INT"), DataType::kInt64);
  EXPECT_EQ(DataTypeFromName("integer"), DataType::kInt64);
  EXPECT_EQ(DataTypeFromName("decimal"), DataType::kDouble);
  EXPECT_EQ(DataTypeFromName("TEXT"), DataType::kString);
  EXPECT_EQ(DataTypeFromName("int[]"), DataType::kIntArray);
  EXPECT_EQ(DataTypeFromName("whatever"), DataType::kNull);
  EXPECT_STREQ(DataTypeName(DataType::kIntArray), "INT[]");
}

TEST(ValueTest, NullSemantics) {
  Value null = Value::Null();
  EXPECT_TRUE(null.is_null());
  // NULL equals nothing, including NULL (SQL semantics).
  EXPECT_FALSE(null.Equals(Value::Null()));
  EXPECT_FALSE(null.Equals(Value::Int(0)));
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_TRUE(Value::Int(3).Equals(Value::Double(3.0)));
  EXPECT_FALSE(Value::Int(3).Equals(Value::Double(3.5)));
  EXPECT_TRUE(Value::Double(2.0).Equals(Value::Int(2)));
}

TEST(ValueTest, CompareTotalOrder) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_GT(Value::String("b").Compare(Value::String("a")), 0);
  // NULL sorts first.
  EXPECT_LT(Value::Null().Compare(Value::Int(-100)), 0);
}

TEST(ValueTest, ArrayEqualityAndOrder) {
  Value a = Value::Array({1, 2, 3});
  Value b = Value::Array({1, 2, 3});
  Value c = Value::Array({1, 2});
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
  EXPECT_GT(a.Compare(c), 0);  // longer with equal prefix sorts after
  EXPECT_EQ(a.ToString(), "{1,2,3}");
}

TEST(ValueTest, HashConsistentWithEquals) {
  EXPECT_EQ(Value::Int(5).Hash(), Value::Double(5.0).Hash());
  EXPECT_EQ(Value::Array({1, 2}).Hash(), Value::Array({1, 2}).Hash());
}

TEST(ColumnTest, AppendAndGet) {
  Column col(DataType::kInt64);
  col.AppendInt(10);
  col.Append(Value::Int(20));
  ASSERT_EQ(col.size(), 2u);
  EXPECT_EQ(col.Get(0).AsInt(), 10);
  EXPECT_EQ(col.Get(1).AsInt(), 20);
}

TEST(ColumnTest, NullBitmapOnlyWhenNeeded) {
  Column col(DataType::kInt64);
  col.AppendInt(1);
  EXPECT_FALSE(col.IsNull(0));
  col.Append(Value::Null());
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.Get(1).is_null());
}

TEST(ColumnTest, FastAppendsAfterNullKeepBitmapInStep) {
  // Regression: once a NULL forced the bitmap into existence, the
  // unboxed appenders must extend it too, or IsNull on later rows
  // reads past the bitmap's end.
  Column col(DataType::kInt64);
  col.AppendInt(1);
  col.Append(Value::Null());
  col.AppendInt(3);
  col.AppendInt(4);
  ASSERT_EQ(col.size(), 4u);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_FALSE(col.IsNull(2));
  EXPECT_FALSE(col.IsNull(3));

  Column arr(DataType::kIntArray);
  arr.Append(Value::Null());
  arr.AppendArray({1, 2});
  ASSERT_EQ(arr.size(), 2u);
  EXPECT_TRUE(arr.IsNull(0));
  EXPECT_FALSE(arr.IsNull(1));
}

TEST(ColumnTest, GatherPreservesNulls) {
  Column src(DataType::kString);
  src.Append(Value::String("a"));
  src.Append(Value::Null());
  src.Append(Value::String("c"));
  Column dst(DataType::kString);
  dst.Gather(src, {2, 1});
  ASSERT_EQ(dst.size(), 2u);
  EXPECT_EQ(dst.Get(0).AsString(), "c");
  EXPECT_TRUE(dst.Get(1).is_null());
}

TEST(ColumnTest, FilterKeepsOrder) {
  Column col(DataType::kInt64);
  for (int i = 0; i < 6; ++i) col.AppendInt(i);
  col.Filter({true, false, true, false, true, false});
  ASSERT_EQ(col.size(), 3u);
  EXPECT_EQ(col.Get(0).AsInt(), 0);
  EXPECT_EQ(col.Get(1).AsInt(), 2);
  EXPECT_EQ(col.Get(2).AsInt(), 4);
}

TEST(ColumnTest, SetOverwritesAndClearsNull) {
  Column col(DataType::kDouble);
  col.Append(Value::Null());
  EXPECT_TRUE(col.IsNull(0));
  col.Set(0, Value::Double(1.5));
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_DOUBLE_EQ(col.Get(0).AsDouble(), 1.5);
}

TEST(ColumnTest, ArrayStorage) {
  Column col(DataType::kIntArray);
  col.AppendArray({1, 2});
  col.AppendArray({});
  ASSERT_EQ(col.size(), 2u);
  EXPECT_EQ(col.Get(0).AsArray().size(), 2u);
  EXPECT_TRUE(col.Get(1).AsArray().empty());
  EXPECT_GT(col.ByteSize(), 0);
}

TEST(SchemaTest, ResolveExactAndSuffix) {
  Schema schema({{"d.rid", DataType::kInt64}, {"tmp.rid_tmp", DataType::kInt64}});
  auto exact = schema.Resolve("d.rid");
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact.value(), 0);
  auto suffix = schema.Resolve("rid_tmp");
  ASSERT_TRUE(suffix.ok());
  EXPECT_EQ(suffix.value(), 1);
  // "rid" matches d.rid only (rid_tmp is not a suffix match for rid).
  auto rid = schema.Resolve("rid");
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ(rid.value(), 0);
}

TEST(SchemaTest, ResolveAmbiguous) {
  Schema schema({{"a.x", DataType::kInt64}, {"b.x", DataType::kInt64}});
  auto r = schema.Resolve("x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, QualifyAndUnqualify) {
  Schema schema({{"rid", DataType::kInt64}, {"vlist", DataType::kIntArray}});
  Schema q = schema.Qualified("t");
  EXPECT_EQ(q.column(0).name, "t.rid");
  Schema back = q.Unqualified();
  EXPECT_TRUE(back.Equals(schema));
}

TEST(ChunkTest, AppendAndGather) {
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kString}});
  Chunk chunk(schema);
  chunk.AppendRow({Value::Int(1), Value::String("x")});
  chunk.AppendRow({Value::Int(2), Value::String("y")});
  chunk.AppendRow({Value::Int(3), Value::String("z")});
  EXPECT_EQ(chunk.num_rows(), 3u);

  Chunk picked(schema);
  picked.GatherFrom(chunk, {2, 0});
  ASSERT_EQ(picked.num_rows(), 2u);
  EXPECT_EQ(picked.Get(0, 1).AsString(), "z");
  EXPECT_EQ(picked.Get(1, 0).AsInt(), 1);
}

TEST(ChunkTest, FilterRows) {
  Schema schema({{"a", DataType::kInt64}});
  Chunk chunk(schema);
  for (int i = 0; i < 4; ++i) chunk.AppendRow({Value::Int(i)});
  chunk.FilterRows({false, true, true, false});
  ASSERT_EQ(chunk.num_rows(), 2u);
  EXPECT_EQ(chunk.Get(0, 0).AsInt(), 1);
}

TEST(ChunkTest, ToStringTruncates) {
  Schema schema({{"a", DataType::kInt64}});
  Chunk chunk(schema);
  for (int i = 0; i < 30; ++i) chunk.AppendRow({Value::Int(i)});
  std::string rendered = chunk.ToString(5);
  EXPECT_NE(rendered.find("more rows"), std::string::npos);
}

}  // namespace
}  // namespace orpheus::rel
