// Tests for the CSV helpers and the command processor (the `orpheus`
// client's brain): the full checkout/commit/diff/optimize flow driven
// through command lines, as a user would.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "cli/command_processor.h"
#include "common/csv.h"

namespace orpheus::cli {
namespace {

TEST(CsvTest, ParseWithTypeInference) {
  auto r = ParseCsv("k,name,score\n1,alpha,1.5\n2,beta,2.5\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const rel::Chunk& chunk = r.value();
  EXPECT_EQ(chunk.num_rows(), 2u);
  EXPECT_EQ(chunk.schema().column(0).type, rel::DataType::kInt64);
  EXPECT_EQ(chunk.schema().column(1).type, rel::DataType::kString);
  EXPECT_EQ(chunk.schema().column(2).type, rel::DataType::kDouble);
  EXPECT_EQ(chunk.Get(1, 1).AsString(), "beta");
}

TEST(CsvTest, QuotedFieldsAndEscapes) {
  auto r = ParseCsv("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().Get(0, 0).AsString(), "x,y");
  EXPECT_EQ(r.value().Get(0, 1).AsString(), "he said \"hi\"");
}

TEST(CsvTest, EmptyFieldsAreNull) {
  auto r = ParseCsv("a,b\n1,\n,2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().Get(0, 1).is_null());
  EXPECT_TRUE(r.value().Get(1, 0).is_null());
}

TEST(CsvTest, ErrorsOnRaggedRows) {
  EXPECT_FALSE(ParseCsv("a,b\n1\n").ok());
  EXPECT_FALSE(ParseCsv("").ok());
}

TEST(CsvTest, RoundTrip) {
  auto r = ParseCsv("a,b\n1,x\n2,\"y,z\"\n");
  ASSERT_TRUE(r.ok());
  std::string csv = ToCsv(r.value());
  auto back = ParseCsv(csv);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().Get(1, 1).AsString(), "y,z");
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Write a small protein csv to a temp path.
    csv_path_ = testing::TempDir() + "/orpheus_cli_test.csv";
    std::ofstream out(csv_path_);
    out << "protein1,protein2,score\n";
    out << "P1,P2,10\n";
    out << "P1,P3,20\n";
    out << "P2,P3,30\n";
  }

  void TearDown() override { std::remove(csv_path_.c_str()); }

  std::string Must(const std::string& command) {
    auto r = processor_.Execute(command);
    EXPECT_TRUE(r.ok()) << command << " -> " << r.status().ToString();
    return r.ok() ? r.value() : "";
  }

  CommandProcessor processor_;
  std::string csv_path_;
};

TEST_F(CliTest, HelpAndUsers) {
  EXPECT_NE(Must("help").find("checkout"), std::string::npos);
  EXPECT_EQ(Must("whoami"), "default");
  Must("create_user alice");
  Must("config alice");
  EXPECT_EQ(Must("whoami"), "alice");
  EXPECT_FALSE(processor_.Execute("config nobody").ok());
}

TEST_F(CliTest, ThreadsCommandShowsAndSetsParallelism) {
  EXPECT_EQ(Must("threads 3"), "exec threads: 3");
  EXPECT_EQ(Must("threads"), "exec threads: 3");
  EXPECT_EQ(Must("threads 1"), "exec threads: 1");
  EXPECT_FALSE(processor_.Execute("threads -2").ok());
  EXPECT_FALSE(processor_.Execute("threads many").ok());
  Must("threads 0");  // restore the hardware default
}

TEST_F(CliTest, FullVersioningFlow) {
  Must("init protein -f " + csv_path_ + " -pk protein1,protein2");
  EXPECT_NE(Must("ls").find("protein"), std::string::npos);

  Must("checkout protein -v 1 -t work");
  Must("sql UPDATE work SET score = 99 WHERE protein2 = 'P3'");
  EXPECT_NE(Must("commit -t work -m updated_scores").find("version 2"),
            std::string::npos);

  // The two versions differ in two records.
  std::string diff = Must("diff protein 1 2");
  EXPECT_NE(diff.find("only in v1 (2)"), std::string::npos);
  EXPECT_NE(diff.find("only in v2 (2)"), std::string::npos);

  // Versioned SQL across both versions.
  std::string counts =
      Must("run SELECT vid, count(*) AS cnt FROM CVD protein GROUP BY vid");
  EXPECT_NE(counts.find("cnt"), std::string::npos);

  std::string graph = Must("graph protein");
  EXPECT_NE(graph.find("v1 -> v2"), std::string::npos);
}

TEST_F(CliTest, CsvCheckoutCommitFlow) {
  Must("init protein -f " + csv_path_ + " -pk protein1,protein2");
  std::string work_csv = testing::TempDir() + "/orpheus_work.csv";
  Must("checkout protein -v 1 -f " + work_csv);

  // Edit the csv externally: bump one score.
  {
    std::ifstream in(work_csv);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    size_t pos = content.find("30");
    ASSERT_NE(pos, std::string::npos);
    content.replace(pos, 2, "77");
    std::ofstream out(work_csv);
    out << content;
  }
  EXPECT_NE(Must("commit -f " + work_csv + " -m csv_edit").find("version 2"),
            std::string::npos);
  std::string result = Must("run SELECT score FROM VERSION 2 OF CVD protein "
                            "AS v WHERE v.protein2 = 'P3' AND v.protein1 = 'P2'");
  EXPECT_NE(result.find("77"), std::string::npos);
  std::remove(work_csv.c_str());
}

TEST_F(CliTest, OptimizePartitionsAndCheckoutStillWorks) {
  Must("init protein -f " + csv_path_ + " -pk protein1,protein2");
  // Create a few versions so the partitioner has a graph to work with.
  for (int i = 0; i < 4; ++i) {
    Must("checkout protein -v " + std::to_string(i + 1) + " -t w" +
         std::to_string(i));
    Must("sql INSERT INTO w" + std::to_string(i) + " VALUES (0, 'N" +
         std::to_string(i) + "', 'M', 5)");
    Must("commit -t w" + std::to_string(i) + " -m grow");
  }
  std::string optimized = Must("optimize protein -gamma 2.0");
  EXPECT_NE(optimized.find("partitions"), std::string::npos);

  // Checkout routes through the partition store now.
  Must("checkout protein -v 3 -t after_opt");
  std::string count = Must("sql SELECT count(*) FROM after_opt");
  EXPECT_NE(count.find("5"), std::string::npos);  // 3 + 2 inserts

  // Versioned SQL routes to partition tables for specific versions.
  std::string q = Must("run SELECT count(*) FROM VERSION 5 OF CVD protein");
  EXPECT_NE(q.find("7"), std::string::npos);
}

TEST_F(CliTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(processor_.Execute("checkout nope -v 1 -t t").ok());
  EXPECT_FALSE(processor_.Execute("frobnicate").ok());
  EXPECT_FALSE(processor_.Execute("init x").ok());
  EXPECT_FALSE(processor_.Execute("commit -t unknown -m x").ok());
}

TEST_F(CliTest, ExitSetsFlag) {
  Must("exit");
  EXPECT_TRUE(processor_.exited());
}

TEST_F(CliTest, DiscardDropsStagedTable) {
  Must("init protein -f " + csv_path_ + " -pk protein1,protein2");
  Must("checkout protein -v 1 -t w");
  EXPECT_EQ(Must("discard -t w"), "discarded staged table w");
  // The table is gone: committing it now is a clean error.
  EXPECT_FALSE(processor_.Execute("commit -t w -m x").ok());
  EXPECT_FALSE(processor_.Execute("discard -t w").ok());
}

TEST_F(CliTest, PinUnpinAndPinsVerbs) {
  Must("init protein -f " + csv_path_ + " -pk protein1,protein2");
  EXPECT_EQ(Must("pins"), "(no pins)");
  EXPECT_NE(Must("pin protein").find("pinned protein at version 1"),
            std::string::npos);
  EXPECT_NE(Must("pins").find("protein v1"), std::string::npos);
  EXPECT_EQ(Must("unpin protein"), "unpinned protein");
  EXPECT_EQ(Must("pins"), "(no pins)");
  EXPECT_FALSE(processor_.Execute("unpin protein").ok());
  EXPECT_FALSE(processor_.Execute("pin protein -v 42").ok());
  // The CLI's own session may drop what only it has pinned.
  Must("pin protein");
  EXPECT_EQ(Must("drop protein"), "dropped protein");
}

}  // namespace
}  // namespace orpheus::cli
