// Tests for the observability subsystem (src/obs/): sharded counter
// exactness under contention, histogram bucket boundaries, the trace
// ring buffer and slow-op log, the Prometheus text exposition, and an
// end-to-end server round-trip asserting that a `metrics` scrape
// reflects a commit that just ran through the engine.

#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine_api.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/io_util.h"

namespace orpheus {
namespace {

using core::CvdOptions;
using core::EngineApi;
using server::Client;
using server::Server;
using server::ServerOptions;

TEST(MetricsTest, CounterExactUnderContention) {
  obs::MetricsRegistry reg;
  obs::Counter* counter = reg.GetCounter("t_total", "test");
  constexpr int kThreads = 8;
  constexpr int kIncs = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kIncs; ++i) counter->Inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(static_cast<uint64_t>(kThreads) * kIncs, counter->Value());

  counter->Inc(41);
  EXPECT_EQ(static_cast<uint64_t>(kThreads) * kIncs + 41, counter->Value());
}

TEST(MetricsTest, HistogramExactUnderContention) {
  obs::MetricsRegistry reg;
  obs::Histogram* hist = reg.GetHistogram("t_seconds", "test", {0.01, 1.0});
  constexpr int kThreads = 8;
  constexpr int kObs = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([hist] {
      for (int i = 0; i < kObs; ++i) hist->Observe(0.001);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(static_cast<uint64_t>(kThreads) * kObs, hist->Count());
  EXPECT_NEAR(kThreads * kObs * 0.001, hist->Sum(), 1e-6);
}

TEST(MetricsTest, HistogramBucketBoundaries) {
  obs::MetricsRegistry reg;
  obs::Histogram* hist = reg.GetHistogram("t_size", "test", {1, 2, 4});
  hist->Observe(0.5);  // -> bucket le=1
  hist->Observe(1.0);  // boundary is inclusive (le semantics)
  hist->Observe(1.5);  // -> bucket le=2
  hist->Observe(4.0);  // -> bucket le=4
  hist->Observe(99);   // -> +Inf
  std::vector<uint64_t> counts = hist->BucketCounts();
  ASSERT_EQ(4u, counts.size());
  EXPECT_EQ(2u, counts[0]);
  EXPECT_EQ(1u, counts[1]);
  EXPECT_EQ(1u, counts[2]);
  EXPECT_EQ(1u, counts[3]);
  EXPECT_EQ(5u, hist->Count());
}

TEST(MetricsTest, DisabledGateSkipsIncButNotIncAlways) {
  obs::MetricsRegistry reg;
  obs::Counter* counter = reg.GetCounter("t_gate_total", "test");
  obs::SetMetricsEnabled(false);
  counter->Inc(5);
  counter->IncAlways(2);
  obs::SetMetricsEnabled(true);
  counter->Inc(3);
  EXPECT_EQ(5u, counter->Value());
}

TEST(MetricsTest, SameNameAndLabelsReturnsSameChild) {
  obs::MetricsRegistry reg;
  obs::Counter* a = reg.GetCounter("t_dup_total", "test", {{"k", "x"}});
  obs::Counter* b = reg.GetCounter("t_dup_total", "test", {{"k", "x"}});
  obs::Counter* c = reg.GetCounter("t_dup_total", "test", {{"k", "y"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(MetricsTest, PrometheusExpositionGoldenText) {
  obs::MetricsRegistry reg;
  obs::Counter* commit =
      reg.GetCounter("test_ops_total", "Ops executed.", {{"verb", "commit"}});
  obs::Counter* checkout =
      reg.GetCounter("test_ops_total", "Ops executed.", {{"verb", "checkout"}});
  obs::Gauge* active = reg.GetGauge("test_active", "Active sessions.");
  obs::Histogram* latency =
      reg.GetHistogram("test_latency_seconds", "Latency.", {0.01, 0.1, 1});
  commit->Inc(3);
  checkout->Inc();
  active->Set(2);
  latency->Observe(0.005);
  latency->Observe(0.05);
  latency->Observe(0.5);
  latency->Observe(5);

  // Families render name-sorted; children in registration order.
  const std::string expected =
      "# HELP test_active Active sessions.\n"
      "# TYPE test_active gauge\n"
      "test_active 2\n"
      "# HELP test_latency_seconds Latency.\n"
      "# TYPE test_latency_seconds histogram\n"
      "test_latency_seconds_bucket{le=\"0.01\"} 1\n"
      "test_latency_seconds_bucket{le=\"0.1\"} 2\n"
      "test_latency_seconds_bucket{le=\"1\"} 3\n"
      "test_latency_seconds_bucket{le=\"+Inf\"} 4\n"
      "test_latency_seconds_sum 5.555\n"
      "test_latency_seconds_count 4\n"
      "# HELP test_ops_total Ops executed.\n"
      "# TYPE test_ops_total counter\n"
      "test_ops_total{verb=\"commit\"} 3\n"
      "test_ops_total{verb=\"checkout\"} 1\n";
  EXPECT_EQ(expected, reg.RenderPrometheus());
}

TEST(MetricsTest, FlatNameAndSnapshot) {
  obs::MetricsRegistry reg;
  reg.GetCounter("t_flat_total", "test", {{"a", "1"}, {"b", "2"}})->Inc(7);
  std::vector<obs::MetricPoint> snap = reg.Snapshot();
  ASSERT_EQ(1u, snap.size());
  EXPECT_EQ("t_flat_total{a=1,b=2}", snap[0].FlatName());
  EXPECT_EQ(7.0, snap[0].value);
}

TEST(TraceTest, RingBufferWrapsKeepingNewest) {
  obs::TraceLog log(/*recent_capacity=*/4, /*slow_capacity=*/2);
  for (int i = 0; i < 10; ++i) {
    obs::OpTrace op;
    op.verb = "v" + std::to_string(i);
    op.total_s = 0.0001;
    log.Record(std::move(op));
  }
  EXPECT_EQ(10u, log.TotalRecorded());
  std::vector<obs::OpTrace> recent = log.Recent();
  ASSERT_EQ(4u, recent.size());
  EXPECT_EQ("v6", recent.front().verb);  // ops 0..5 were pushed out
  EXPECT_EQ("v9", recent.back().verb);
  EXPECT_EQ(7u, recent.front().id);  // ids are 1-based and monotonic
  EXPECT_EQ(10u, recent.back().id);
}

TEST(TraceTest, SlowOpThresholdFilters) {
  obs::TraceLog log(/*recent_capacity=*/16, /*slow_capacity=*/2);
  log.SetSlowOpThresholdMs(5);
  EXPECT_EQ(5.0, log.SlowOpThresholdMs());
  auto record = [&log](const char* verb, double total_s) {
    obs::OpTrace op;
    op.verb = verb;
    op.total_s = total_s;
    log.Record(std::move(op));
  };
  record("fast", 0.0049);
  record("slow1", 0.0051);
  record("fast", 0.001);
  record("slow2", 0.2);
  record("slow3", 1.5);
  std::vector<obs::OpTrace> slow = log.SlowOps();
  ASSERT_EQ(2u, slow.size());  // capacity 2: oldest slow op evicted
  EXPECT_EQ("slow2", slow[0].verb);
  EXPECT_EQ("slow3", slow[1].verb);
  EXPECT_EQ(5u, log.TotalRecorded());
}

// --- End-to-end: the `metrics` verb over a real TCP round-trip ---

// k INT (pk), score DOUBLE.
rel::Chunk MakeRows(int n) {
  rel::Schema schema;
  schema.AddColumn("k", rel::DataType::kInt64);
  schema.AddColumn("score", rel::DataType::kDouble);
  rel::Chunk rows(schema);
  for (int i = 0; i < n; ++i) {
    rows.mutable_column(0).AppendInt(i);
    rows.mutable_column(1).AppendDouble(1.5 * i);
  }
  return rows;
}

std::string MustExecute(Client* client, const std::string& line) {
  auto result = client->Execute(line);
  EXPECT_TRUE(result.ok()) << line << ": " << result.status().ToString();
  return result.ok() ? result.value() : std::string();
}

// Value of the exposition line starting "<series> " (0 when absent).
double PromValue(const std::string& text, const std::string& series) {
  std::istringstream in(text);
  std::string line;
  const std::string prefix = series + " ";
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) == 0) {
      return std::atof(line.c_str() + prefix.size());
    }
  }
  return 0;
}

int CountFamilies(const std::string& text) {
  int n = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("# TYPE ", 0) == 0) ++n;
  }
  return n;
}

TEST(ObsServerTest, MetricsScrapeReflectsCommit) {
  auto tmp = storage::MakeTempDir("orpheus_obs_test_");
  ASSERT_TRUE(tmp.ok());
  EngineApi api;
  ASSERT_TRUE(api.orpheus()->Open(tmp.value() + "/db").ok());
  CvdOptions options;
  options.primary_key = {"k"};
  ASSERT_TRUE(
      api.orpheus()->InitCvd("obs_cvd", MakeRows(4), options, "init").ok());

  Server server(&api, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  const std::string before = MustExecute(&client, "metrics");
  MustExecute(&client, "checkout obs_cvd -v 1 -t w1");
  MustExecute(&client, "commit -t w1 -m obs");
  const std::string after = MustExecute(&client, "metrics");

  auto delta = [&](const std::string& series) {
    return PromValue(after, series) - PromValue(before, series);
  };
  // Engine layer: the verbs were counted and timed.
  EXPECT_EQ(1.0, delta("orpheus_ops_total{verb=\"commit\"}"));
  EXPECT_EQ(1.0, delta("orpheus_ops_total{verb=\"checkout\"}"));
  EXPECT_GE(delta("orpheus_op_latency_seconds_count{verb=\"commit\"}"), 1.0);
  // Both verbs queue on the exclusive lock.
  EXPECT_GE(delta("orpheus_lock_wait_seconds_count{mode=\"exclusive\"}"), 2.0);
  // Storage layer: the commit was logged durably.
  EXPECT_GT(delta("orpheus_wal_bytes_written_total"), 0.0);
  EXPECT_GE(delta("orpheus_wal_records_total"), 1.0);
  EXPECT_GE(delta("orpheus_io_writes_total{class=\"wal\"}"), 1.0);
  // Server layer: the scrape itself rode the framed protocol.
  EXPECT_GE(delta("orpheus_frames_total{dir=\"in\"}"), 3.0);
  EXPECT_EQ(1.0, PromValue(after, "orpheus_sessions_active"));

  // The acceptance bar: a post-commit scrape exposes a wide catalog.
  EXPECT_GE(CountFamilies(after), 15);

  // The stats verb renders the same registry human-readably.
  const std::string stats = MustExecute(&client, "stats");
  EXPECT_NE(std::string::npos, stats.find("this session"));
  EXPECT_NE(std::string::npos, stats.find("orpheus_ops_total"));

  server.Stop();
  ASSERT_TRUE(storage::RemoveDirRecursive(tmp.value()).ok());
}

}  // namespace
}  // namespace orpheus
