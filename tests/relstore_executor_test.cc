// End-to-end tests for the relstore engine: DDL, DML, scans, joins
// (all three algorithms), aggregation, unnest, and the exact SQL
// shapes OrpheusDB's query translator emits (the paper's Table 1).

#include <gtest/gtest.h>

#include "relstore/database.h"

namespace orpheus::rel {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT, b TEXT, c DOUBLE)").ok());
    ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (1, 'x', 1.5), (2, 'y', 2.5), "
                            "(3, 'x', 3.5)").ok());
  }

  Chunk MustQuery(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).value() : Chunk();
  }

  Database db_;
};

TEST_F(ExecutorTest, SelectStar) {
  Chunk out = MustQuery("SELECT * FROM t");
  EXPECT_EQ(out.num_rows(), 3u);
  EXPECT_EQ(out.num_columns(), 3);
  EXPECT_EQ(out.schema().column(0).name, "a");  // unqualified output
}

TEST_F(ExecutorTest, WhereFilter) {
  Chunk out = MustQuery("SELECT a FROM t WHERE b = 'x'");
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.Get(0, 0).AsInt(), 1);
  EXPECT_EQ(out.Get(1, 0).AsInt(), 3);
}

TEST_F(ExecutorTest, ComputedProjection) {
  Chunk out = MustQuery("SELECT a * 10 + 1 AS v FROM t WHERE a >= 2");
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.schema().column(0).name, "v");
  EXPECT_EQ(out.Get(0, 0).AsInt(), 21);
}

TEST_F(ExecutorTest, SelectWithoutFrom) {
  Chunk out = MustQuery("SELECT 2 + 3 AS five");
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.Get(0, 0).AsInt(), 5);
}

TEST_F(ExecutorTest, OrderByAndLimit) {
  Chunk out = MustQuery("SELECT a FROM t ORDER BY a DESC LIMIT 2");
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.Get(0, 0).AsInt(), 3);
  EXPECT_EQ(out.Get(1, 0).AsInt(), 2);
}

TEST_F(ExecutorTest, Distinct) {
  Chunk out = MustQuery("SELECT DISTINCT b FROM t ORDER BY b");
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.Get(0, 0).AsString(), "x");
}

TEST_F(ExecutorTest, AggregatesWholeTable) {
  Chunk out = MustQuery("SELECT count(*), sum(a), avg(c), min(b), max(b) FROM t");
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.Get(0, 0).AsInt(), 3);
  EXPECT_EQ(out.Get(0, 1).AsInt(), 6);
  EXPECT_DOUBLE_EQ(out.Get(0, 2).AsDouble(), 2.5);
  EXPECT_EQ(out.Get(0, 3).AsString(), "x");
  EXPECT_EQ(out.Get(0, 4).AsString(), "y");
}

TEST_F(ExecutorTest, GroupByWithHaving) {
  Chunk out = MustQuery(
      "SELECT b, count(*) AS cnt FROM t GROUP BY b HAVING cnt > 1");
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.Get(0, 0).AsString(), "x");
  EXPECT_EQ(out.Get(0, 1).AsInt(), 2);
}

TEST_F(ExecutorTest, AggregateOnEmptyInput) {
  Chunk out = MustQuery("SELECT count(*), sum(a) FROM t WHERE a > 100");
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.Get(0, 0).AsInt(), 0);
  EXPECT_TRUE(out.Get(0, 1).is_null());
}

TEST_F(ExecutorTest, UpdateWithWhere) {
  ASSERT_TRUE(db_.Execute("UPDATE t SET c = c + 10 WHERE b = 'x'").ok());
  Chunk out = MustQuery("SELECT c FROM t ORDER BY a");
  EXPECT_DOUBLE_EQ(out.Get(0, 0).AsDouble(), 11.5);
  EXPECT_DOUBLE_EQ(out.Get(1, 0).AsDouble(), 2.5);
}

TEST_F(ExecutorTest, DeleteRows) {
  ASSERT_TRUE(db_.Execute("DELETE FROM t WHERE a = 2").ok());
  Chunk out = MustQuery("SELECT count(*) FROM t");
  EXPECT_EQ(out.Get(0, 0).AsInt(), 2);
}

TEST_F(ExecutorTest, SelectIntoCreatesTable) {
  ASSERT_TRUE(db_.Execute("SELECT a, b INTO t2 FROM t WHERE a < 3").ok());
  EXPECT_TRUE(db_.HasTable("t2"));
  Chunk out = MustQuery("SELECT count(*) FROM t2");
  EXPECT_EQ(out.Get(0, 0).AsInt(), 2);
}

TEST_F(ExecutorTest, InsertSelect) {
  ASSERT_TRUE(db_.Execute("SELECT a, b, c INTO t3 FROM t WHERE a = 1").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t3 SELECT a, b, c FROM t WHERE a = 3").ok());
  Chunk out = MustQuery("SELECT count(*) FROM t3");
  EXPECT_EQ(out.Get(0, 0).AsInt(), 2);
}

TEST_F(ExecutorTest, DropTable) {
  ASSERT_TRUE(db_.Execute("DROP TABLE t").ok());
  EXPECT_FALSE(db_.HasTable("t"));
  EXPECT_FALSE(db_.Execute("DROP TABLE t").ok());
  EXPECT_TRUE(db_.Execute("DROP TABLE IF EXISTS t").ok());
}

TEST_F(ExecutorTest, ExecuteScriptReturnsLast) {
  auto r = db_.ExecuteScript(
      "CREATE TABLE s (x INT); INSERT INTO s VALUES (5); SELECT x FROM s;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().Get(0, 0).AsInt(), 5);
}

// --- Array handling: the versioning columns --------------------------

class ArrayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("CREATE TABLE comb (rid INT, val TEXT, vlist INT[])").ok());
    ASSERT_TRUE(db_.Execute("INSERT INTO comb VALUES "
                            "(1, 'a', ARRAY[1]), "
                            "(2, 'b', ARRAY[1, 2, 4]), "
                            "(3, 'c', ARRAY[1, 2, 3, 4]), "
                            "(4, 'd', ARRAY[2, 4])").ok());
  }
  Database db_;
};

TEST_F(ArrayTest, ContainmentOperator) {
  // The combined-table checkout shape from Table 1.
  auto r = db_.Execute("SELECT rid FROM comb WHERE ARRAY[2] <@ vlist");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().num_rows(), 3u);
}

TEST_F(ArrayTest, ArrayAppendViaPlus) {
  // The combined-table commit shape from Table 1.
  ASSERT_TRUE(db_.Execute("SELECT rid INTO tp FROM comb WHERE ARRAY[4] <@ vlist").ok());
  ASSERT_TRUE(db_.Execute("UPDATE comb SET vlist = vlist + 9 WHERE rid IN "
                          "(SELECT rid FROM tp)").ok());
  auto r = db_.Execute("SELECT rid FROM comb WHERE ARRAY[9] <@ vlist");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_rows(), 3u);  // rids 2, 3, 4
}

TEST_F(ArrayTest, UnnestExpandsRows) {
  auto r = db_.Execute("SELECT unnest(vlist) AS v, rid FROM comb WHERE rid = 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Chunk& out = r.value();
  ASSERT_EQ(out.num_rows(), 3u);
  EXPECT_EQ(out.Get(0, 0).AsInt(), 1);
  EXPECT_EQ(out.Get(2, 0).AsInt(), 4);
  EXPECT_EQ(out.Get(1, 1).AsInt(), 2);  // rid replicated
}

TEST_F(ArrayTest, ArraySubqueryInsert) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE vt (vid INT, rlist INT[])").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO vt VALUES "
                          "(1, ARRAY(SELECT rid FROM comb WHERE ARRAY[1] <@ vlist))").ok());
  auto r = db_.Execute("SELECT array_length(rlist) FROM vt WHERE vid = 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().Get(0, 0).AsInt(), 3);
}

TEST_F(ArrayTest, EmptyArrayLiteral) {
  ASSERT_TRUE(db_.Execute("INSERT INTO comb VALUES (9, 'e', ARRAY[])").ok());
  auto r = db_.Execute("SELECT array_length(vlist) FROM comb WHERE rid = 9");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().Get(0, 0).AsInt(), 0);
}

// --- Joins ------------------------------------------------------------

class JoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute(
        "CREATE TABLE d (rid INT, payload TEXT, PRIMARY KEY (rid))").ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(db_.Execute("INSERT INTO d VALUES (" + std::to_string(i) +
                              ", 'p" + std::to_string(i) + "')").ok());
    }
    ASSERT_TRUE(db_.Execute("CREATE TABLE v (vid INT, rlist INT[], "
                            "PRIMARY KEY (vid))").ok());
    ASSERT_TRUE(db_.Execute(
        "INSERT INTO v VALUES (1, ARRAY[5, 10, 15]), (2, ARRAY[0, 99])").ok());
  }

  // The split-by-rlist checkout query from Table 1.
  std::string CheckoutSql(int vid) {
    return "SELECT d.* INTO tprime FROM d, (SELECT unnest(rlist) AS rid_tmp "
           "FROM v WHERE vid = " + std::to_string(vid) +
           ") AS tmp WHERE d.rid = tmp.rid_tmp";
  }

  Database db_;
};

TEST_F(JoinTest, HashJoinCheckout) {
  db_.set_join_method(JoinMethod::kHash);
  ASSERT_TRUE(db_.Execute(CheckoutSql(1)).ok());
  auto r = db_.Execute("SELECT rid FROM tprime ORDER BY rid");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().num_rows(), 3u);
  EXPECT_EQ(r.value().Get(0, 0).AsInt(), 5);
  EXPECT_EQ(r.value().Get(2, 0).AsInt(), 15);
  // tprime must contain only d's columns (qualified star).
  EXPECT_EQ(r.value().num_columns(), 1);
  auto cols = db_.Execute("SELECT * FROM tprime LIMIT 1");
  ASSERT_TRUE(cols.ok());
  EXPECT_EQ(cols.value().num_columns(), 2);
}

TEST_F(JoinTest, MergeJoinSameResult) {
  db_.set_join_method(JoinMethod::kMerge);
  ASSERT_TRUE(db_.Execute(CheckoutSql(2)).ok()) << "merge join checkout";
  auto r = db_.Execute("SELECT rid FROM tprime ORDER BY rid");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().num_rows(), 2u);
  EXPECT_EQ(r.value().Get(0, 0).AsInt(), 0);
  EXPECT_EQ(r.value().Get(1, 0).AsInt(), 99);
}

TEST_F(JoinTest, IndexNestedLoopSameResult) {
  db_.set_join_method(JoinMethod::kIndexNestedLoop);
  ASSERT_TRUE(db_.Execute(CheckoutSql(1)).ok());
  auto r = db_.Execute("SELECT count(*) FROM tprime");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().Get(0, 0).AsInt(), 3);
  EXPECT_GT(db_.stats()->index_probes, 0);
}

TEST_F(JoinTest, JoinWithDuplicateKeysProducesAllPairs) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE l (k INT)").ok());
  ASSERT_TRUE(db_.Execute("CREATE TABLE r (k2 INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO l VALUES (1), (1), (2)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO r VALUES (1), (1), (3)").ok());
  auto res = db_.Execute("SELECT count(*) FROM l, r WHERE k = k2");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().Get(0, 0).AsInt(), 4);  // 2 x 2 matches on key 1
}

TEST_F(JoinTest, CrossJoinGuard) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE big (x INT)").ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db_.Execute("INSERT INTO big VALUES (1)").ok());
  }
  // 20 x 20 cross join is fine.
  auto small = db_.Execute("SELECT count(*) FROM big, (SELECT x AS y FROM big) AS b2");
  ASSERT_TRUE(small.ok()) << small.status().ToString();
  EXPECT_EQ(small.value().Get(0, 0).AsInt(), 400);
}

TEST_F(JoinTest, StatsAccumulateAndReset) {
  db_.ResetStats();
  ASSERT_TRUE(db_.Execute("SELECT count(*) FROM d").ok());
  EXPECT_GE(db_.stats()->rows_scanned, 100);
  db_.ResetStats();
  EXPECT_EQ(db_.stats()->rows_scanned, 0);
}

// --- Error paths -------------------------------------------------------

TEST(ExecutorErrorTest, UnknownTableAndColumn) {
  Database db;
  EXPECT_EQ(db.Execute("SELECT * FROM nope").status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT)").ok());
  EXPECT_FALSE(db.Execute("SELECT b FROM t").ok());
  EXPECT_FALSE(db.Execute("UPDATE t SET b = 1").ok());
}

TEST(ExecutorErrorTest, ArityMismatch) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT, b INT)").ok());
  EXPECT_FALSE(db.Execute("INSERT INTO t VALUES (1)").ok());
}

TEST(ExecutorErrorTest, DivisionByZero) {
  Database db;
  EXPECT_FALSE(db.Execute("SELECT 1 / 0").ok());
}

TEST(ExecutorErrorTest, IntoExistingTable) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1)").ok());
  EXPECT_EQ(db.Execute("SELECT a INTO t FROM t").status().code(),
            StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace orpheus::rel
