// End-to-end tests for the relstore engine: DDL, DML, scans, joins
// (all three algorithms), aggregation, unnest, the exact SQL shapes
// OrpheusDB's query translator emits (the paper's Table 1), and the
// chunk-boundary cases of the batched parallel scan pipeline.

#include <gtest/gtest.h>

#include <string>

#include "common/thread_pool.h"
#include "relstore/database.h"

namespace orpheus::rel {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT, b TEXT, c DOUBLE)").ok());
    ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (1, 'x', 1.5), (2, 'y', 2.5), "
                            "(3, 'x', 3.5)").ok());
  }

  Chunk MustQuery(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).value() : Chunk();
  }

  Database db_;
};

TEST_F(ExecutorTest, SelectStar) {
  Chunk out = MustQuery("SELECT * FROM t");
  EXPECT_EQ(out.num_rows(), 3u);
  EXPECT_EQ(out.num_columns(), 3);
  EXPECT_EQ(out.schema().column(0).name, "a");  // unqualified output
}

TEST_F(ExecutorTest, WhereFilter) {
  Chunk out = MustQuery("SELECT a FROM t WHERE b = 'x'");
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.Get(0, 0).AsInt(), 1);
  EXPECT_EQ(out.Get(1, 0).AsInt(), 3);
}

TEST_F(ExecutorTest, ComputedProjection) {
  Chunk out = MustQuery("SELECT a * 10 + 1 AS v FROM t WHERE a >= 2");
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.schema().column(0).name, "v");
  EXPECT_EQ(out.Get(0, 0).AsInt(), 21);
}

TEST_F(ExecutorTest, SelectWithoutFrom) {
  Chunk out = MustQuery("SELECT 2 + 3 AS five");
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.Get(0, 0).AsInt(), 5);
}

TEST_F(ExecutorTest, OrderByAndLimit) {
  Chunk out = MustQuery("SELECT a FROM t ORDER BY a DESC LIMIT 2");
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.Get(0, 0).AsInt(), 3);
  EXPECT_EQ(out.Get(1, 0).AsInt(), 2);
}

TEST_F(ExecutorTest, Distinct) {
  Chunk out = MustQuery("SELECT DISTINCT b FROM t ORDER BY b");
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.Get(0, 0).AsString(), "x");
}

TEST_F(ExecutorTest, AggregatesWholeTable) {
  Chunk out = MustQuery("SELECT count(*), sum(a), avg(c), min(b), max(b) FROM t");
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.Get(0, 0).AsInt(), 3);
  EXPECT_EQ(out.Get(0, 1).AsInt(), 6);
  EXPECT_DOUBLE_EQ(out.Get(0, 2).AsDouble(), 2.5);
  EXPECT_EQ(out.Get(0, 3).AsString(), "x");
  EXPECT_EQ(out.Get(0, 4).AsString(), "y");
}

TEST_F(ExecutorTest, GroupByWithHaving) {
  Chunk out = MustQuery(
      "SELECT b, count(*) AS cnt FROM t GROUP BY b HAVING cnt > 1");
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.Get(0, 0).AsString(), "x");
  EXPECT_EQ(out.Get(0, 1).AsInt(), 2);
}

TEST_F(ExecutorTest, AggregateOnEmptyInput) {
  Chunk out = MustQuery("SELECT count(*), sum(a) FROM t WHERE a > 100");
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.Get(0, 0).AsInt(), 0);
  EXPECT_TRUE(out.Get(0, 1).is_null());
}

TEST_F(ExecutorTest, UpdateWithWhere) {
  ASSERT_TRUE(db_.Execute("UPDATE t SET c = c + 10 WHERE b = 'x'").ok());
  Chunk out = MustQuery("SELECT c FROM t ORDER BY a");
  EXPECT_DOUBLE_EQ(out.Get(0, 0).AsDouble(), 11.5);
  EXPECT_DOUBLE_EQ(out.Get(1, 0).AsDouble(), 2.5);
}

TEST_F(ExecutorTest, DeleteRows) {
  ASSERT_TRUE(db_.Execute("DELETE FROM t WHERE a = 2").ok());
  Chunk out = MustQuery("SELECT count(*) FROM t");
  EXPECT_EQ(out.Get(0, 0).AsInt(), 2);
}

TEST_F(ExecutorTest, SelectIntoCreatesTable) {
  ASSERT_TRUE(db_.Execute("SELECT a, b INTO t2 FROM t WHERE a < 3").ok());
  EXPECT_TRUE(db_.HasTable("t2"));
  Chunk out = MustQuery("SELECT count(*) FROM t2");
  EXPECT_EQ(out.Get(0, 0).AsInt(), 2);
}

TEST_F(ExecutorTest, InsertSelect) {
  ASSERT_TRUE(db_.Execute("SELECT a, b, c INTO t3 FROM t WHERE a = 1").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t3 SELECT a, b, c FROM t WHERE a = 3").ok());
  Chunk out = MustQuery("SELECT count(*) FROM t3");
  EXPECT_EQ(out.Get(0, 0).AsInt(), 2);
}

TEST_F(ExecutorTest, DropTable) {
  ASSERT_TRUE(db_.Execute("DROP TABLE t").ok());
  EXPECT_FALSE(db_.HasTable("t"));
  EXPECT_FALSE(db_.Execute("DROP TABLE t").ok());
  EXPECT_TRUE(db_.Execute("DROP TABLE IF EXISTS t").ok());
}

TEST_F(ExecutorTest, ExecuteScriptReturnsLast) {
  auto r = db_.ExecuteScript(
      "CREATE TABLE s (x INT); INSERT INTO s VALUES (5); SELECT x FROM s;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().Get(0, 0).AsInt(), 5);
}

// --- Array handling: the versioning columns --------------------------

class ArrayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("CREATE TABLE comb (rid INT, val TEXT, vlist INT[])").ok());
    ASSERT_TRUE(db_.Execute("INSERT INTO comb VALUES "
                            "(1, 'a', ARRAY[1]), "
                            "(2, 'b', ARRAY[1, 2, 4]), "
                            "(3, 'c', ARRAY[1, 2, 3, 4]), "
                            "(4, 'd', ARRAY[2, 4])").ok());
  }
  Database db_;
};

TEST_F(ArrayTest, ContainmentOperator) {
  // The combined-table checkout shape from Table 1.
  auto r = db_.Execute("SELECT rid FROM comb WHERE ARRAY[2] <@ vlist");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().num_rows(), 3u);
}

TEST_F(ArrayTest, ArrayAppendViaPlus) {
  // The combined-table commit shape from Table 1.
  ASSERT_TRUE(db_.Execute("SELECT rid INTO tp FROM comb WHERE ARRAY[4] <@ vlist").ok());
  ASSERT_TRUE(db_.Execute("UPDATE comb SET vlist = vlist + 9 WHERE rid IN "
                          "(SELECT rid FROM tp)").ok());
  auto r = db_.Execute("SELECT rid FROM comb WHERE ARRAY[9] <@ vlist");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_rows(), 3u);  // rids 2, 3, 4
}

TEST_F(ArrayTest, UnnestExpandsRows) {
  auto r = db_.Execute("SELECT unnest(vlist) AS v, rid FROM comb WHERE rid = 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Chunk& out = r.value();
  ASSERT_EQ(out.num_rows(), 3u);
  EXPECT_EQ(out.Get(0, 0).AsInt(), 1);
  EXPECT_EQ(out.Get(2, 0).AsInt(), 4);
  EXPECT_EQ(out.Get(1, 1).AsInt(), 2);  // rid replicated
}

TEST_F(ArrayTest, ArraySubqueryInsert) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE vt (vid INT, rlist INT[])").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO vt VALUES "
                          "(1, ARRAY(SELECT rid FROM comb WHERE ARRAY[1] <@ vlist))").ok());
  auto r = db_.Execute("SELECT array_length(rlist) FROM vt WHERE vid = 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().Get(0, 0).AsInt(), 3);
}

TEST_F(ArrayTest, EmptyArrayLiteral) {
  ASSERT_TRUE(db_.Execute("INSERT INTO comb VALUES (9, 'e', ARRAY[])").ok());
  auto r = db_.Execute("SELECT array_length(vlist) FROM comb WHERE rid = 9");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().Get(0, 0).AsInt(), 0);
}

// --- Joins ------------------------------------------------------------

class JoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute(
        "CREATE TABLE d (rid INT, payload TEXT, PRIMARY KEY (rid))").ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(db_.Execute("INSERT INTO d VALUES (" + std::to_string(i) +
                              ", 'p" + std::to_string(i) + "')").ok());
    }
    ASSERT_TRUE(db_.Execute("CREATE TABLE v (vid INT, rlist INT[], "
                            "PRIMARY KEY (vid))").ok());
    ASSERT_TRUE(db_.Execute(
        "INSERT INTO v VALUES (1, ARRAY[5, 10, 15]), (2, ARRAY[0, 99])").ok());
  }

  // The split-by-rlist checkout query from Table 1.
  std::string CheckoutSql(int vid) {
    return "SELECT d.* INTO tprime FROM d, (SELECT unnest(rlist) AS rid_tmp "
           "FROM v WHERE vid = " + std::to_string(vid) +
           ") AS tmp WHERE d.rid = tmp.rid_tmp";
  }

  Database db_;
};

TEST_F(JoinTest, HashJoinCheckout) {
  db_.set_join_method(JoinMethod::kHash);
  ASSERT_TRUE(db_.Execute(CheckoutSql(1)).ok());
  auto r = db_.Execute("SELECT rid FROM tprime ORDER BY rid");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().num_rows(), 3u);
  EXPECT_EQ(r.value().Get(0, 0).AsInt(), 5);
  EXPECT_EQ(r.value().Get(2, 0).AsInt(), 15);
  // tprime must contain only d's columns (qualified star).
  EXPECT_EQ(r.value().num_columns(), 1);
  auto cols = db_.Execute("SELECT * FROM tprime LIMIT 1");
  ASSERT_TRUE(cols.ok());
  EXPECT_EQ(cols.value().num_columns(), 2);
}

TEST_F(JoinTest, MergeJoinSameResult) {
  db_.set_join_method(JoinMethod::kMerge);
  ASSERT_TRUE(db_.Execute(CheckoutSql(2)).ok()) << "merge join checkout";
  auto r = db_.Execute("SELECT rid FROM tprime ORDER BY rid");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().num_rows(), 2u);
  EXPECT_EQ(r.value().Get(0, 0).AsInt(), 0);
  EXPECT_EQ(r.value().Get(1, 0).AsInt(), 99);
}

TEST_F(JoinTest, IndexNestedLoopSameResult) {
  db_.set_join_method(JoinMethod::kIndexNestedLoop);
  ASSERT_TRUE(db_.Execute(CheckoutSql(1)).ok());
  auto r = db_.Execute("SELECT count(*) FROM tprime");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().Get(0, 0).AsInt(), 3);
  EXPECT_GT(db_.stats()->index_probes, 0);
}

TEST_F(JoinTest, JoinWithDuplicateKeysProducesAllPairs) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE l (k INT)").ok());
  ASSERT_TRUE(db_.Execute("CREATE TABLE r (k2 INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO l VALUES (1), (1), (2)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO r VALUES (1), (1), (3)").ok());
  auto res = db_.Execute("SELECT count(*) FROM l, r WHERE k = k2");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().Get(0, 0).AsInt(), 4);  // 2 x 2 matches on key 1
}

TEST_F(JoinTest, CrossJoinGuard) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE big (x INT)").ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db_.Execute("INSERT INTO big VALUES (1)").ok());
  }
  // 20 x 20 cross join is fine.
  auto small = db_.Execute("SELECT count(*) FROM big, (SELECT x AS y FROM big) AS b2");
  ASSERT_TRUE(small.ok()) << small.status().ToString();
  EXPECT_EQ(small.value().Get(0, 0).AsInt(), 400);
}

TEST_F(JoinTest, StatsAccumulateAndReset) {
  db_.ResetStats();
  ASSERT_TRUE(db_.Execute("SELECT count(*) FROM d").ok());
  EXPECT_GE(db_.stats()->rows_scanned, 100);
  db_.ResetStats();
  EXPECT_EQ(db_.stats()->rows_scanned, 0);
}

// --- Batch-boundary cases of the parallel scan pipeline ---------------
//
// Parameterized over the thread setting so every case runs both on the
// serial path (--threads=1) and on the pool (--threads=4). The batched
// executor must behave identically at 0 rows, 1 row, exactly one batch,
// one-past-a-batch, and when a predicate selects nothing.

class BatchBoundaryTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { SetExecThreads(GetParam()); }
  void TearDown() override { SetExecThreads(0); }

  // Builds table `name` (a INT, val DOUBLE) with rows a = 0..n-1,
  // val = a * 0.5, appended through the bulk path (fast enough to
  // cross batch boundaries in a unit test).
  void BuildTable(Database* db, const std::string& name, size_t n) {
    ASSERT_TRUE(db->Execute("CREATE TABLE " + name + " (a INT, val DOUBLE)").ok());
    auto table = db->GetTable(name);
    ASSERT_TRUE(table.ok());
    Chunk& chunk = table.value()->mutable_chunk();
    for (size_t i = 0; i < n; ++i) {
      chunk.mutable_column(0).AppendInt(static_cast<int64_t>(i));
      chunk.mutable_column(1).Append(Value::Double(static_cast<double>(i) * 0.5));
    }
  }
};

TEST_P(BatchBoundaryTest, EmptyTable) {
  Database db;
  BuildTable(&db, "t", 0);
  auto scan = db.Execute("SELECT a FROM t WHERE a >= 0");
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan.value().num_rows(), 0u);
  auto agg = db.Execute("SELECT count(*), sum(val) FROM t");
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg.value().Get(0, 0).AsInt(), 0);
  EXPECT_TRUE(agg.value().Get(0, 1).is_null());
  auto grouped = db.Execute("SELECT a, count(*) FROM t GROUP BY a");
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped.value().num_rows(), 0u);
}

TEST_P(BatchBoundaryTest, SingleRow) {
  Database db;
  BuildTable(&db, "t", 1);
  auto scan = db.Execute("SELECT a, val * 2.0 FROM t WHERE a = 0");
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_EQ(scan.value().num_rows(), 1u);
  EXPECT_EQ(scan.value().Get(0, 0).AsInt(), 0);
  auto agg = db.Execute("SELECT count(*), min(a), max(a) FROM t");
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg.value().Get(0, 0).AsInt(), 1);
}

TEST_P(BatchBoundaryTest, PredicateSelectsZeroRows) {
  Database db;
  BuildTable(&db, "t", kScanBatchRows * 2 + 5);
  auto scan = db.Execute("SELECT a FROM t WHERE a < 0");
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan.value().num_rows(), 0u);
  auto agg = db.Execute("SELECT sum(a) FROM t WHERE a < 0");
  ASSERT_TRUE(agg.ok());
  EXPECT_TRUE(agg.value().Get(0, 0).is_null());
}

TEST_P(BatchBoundaryTest, ExactlyOneBatchAndOnePast) {
  Database db;
  BuildTable(&db, "exact", kScanBatchRows);
  BuildTable(&db, "past", kScanBatchRows + 1);
  for (const std::string& name : {std::string("exact"), std::string("past")}) {
    size_t n = name == "exact" ? kScanBatchRows : kScanBatchRows + 1;
    auto count = db.Execute("SELECT count(*) FROM " + name + " WHERE a % 2 = 0");
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    EXPECT_EQ(count.value().Get(0, 0).AsInt(),
              static_cast<int64_t>((n + 1) / 2))
        << name;
    // Selection order must be row order across the batch seam.
    auto rows = db.Execute("SELECT a FROM " + name + " WHERE a >= " +
                           std::to_string(kScanBatchRows - 2));
    ASSERT_TRUE(rows.ok());
    for (size_t i = 0; i < rows.value().num_rows(); ++i) {
      EXPECT_EQ(rows.value().Get(i, 0).AsInt(),
                static_cast<int64_t>(kScanBatchRows - 2 + i))
          << name;
    }
  }
}

TEST_P(BatchBoundaryTest, GroupOrderIsFirstOccurrenceAcrossBatches) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE g (k INT)").ok());
  auto table = db.GetTable("g");
  ASSERT_TRUE(table.ok());
  Chunk& chunk = table.value()->mutable_chunk();
  // Key i first appears at row i * 700, so later batches introduce
  // new keys and earlier keys recur across every batch seam.
  const size_t n = kScanBatchRows * 3;
  for (size_t i = 0; i < n; ++i) {
    chunk.mutable_column(0).AppendInt(static_cast<int64_t>(i / 700));
  }
  auto grouped = db.Execute("SELECT k, count(*) FROM g GROUP BY k");
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
  // Without ORDER BY, groups surface in first-occurrence row order.
  for (size_t i = 0; i < grouped.value().num_rows(); ++i) {
    EXPECT_EQ(grouped.value().Get(i, 0).AsInt(), static_cast<int64_t>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadSettings, BatchBoundaryTest,
                         ::testing::Values(1, 4));

// --- Error paths -------------------------------------------------------

TEST(ExecutorErrorTest, UnknownTableAndColumn) {
  Database db;
  EXPECT_EQ(db.Execute("SELECT * FROM nope").status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT)").ok());
  EXPECT_FALSE(db.Execute("SELECT b FROM t").ok());
  EXPECT_FALSE(db.Execute("UPDATE t SET b = 1").ok());
}

TEST(ExecutorErrorTest, ArityMismatch) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT, b INT)").ok());
  EXPECT_FALSE(db.Execute("INSERT INTO t VALUES (1)").ok());
}

TEST(ExecutorErrorTest, DivisionByZero) {
  Database db;
  EXPECT_FALSE(db.Execute("SELECT 1 / 0").ok());
}

TEST(ExecutorErrorTest, IntoExistingTable) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1)").ok());
  EXPECT_EQ(db.Execute("SELECT a INTO t FROM t").status().code(),
            StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace orpheus::rel
