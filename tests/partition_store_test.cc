// Tests for the physical partition store, online maintenance, and the
// migration engine, end-to-end against the relstore backend.

#include <gtest/gtest.h>

#include <numeric>

#include "partition/online.h"
#include "partition/partition_store.h"
#include "workload/generator.h"

namespace orpheus::part {
namespace {

class PartitionStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wl::DatasetSpec spec;
    spec.num_versions = 60;
    spec.num_branches = 8;
    spec.inserts_per_version = 30;
    spec.num_attrs = 4;
    data_ = wl::Generate(spec);
    // Load the record universe as the CVD data table.
    ASSERT_TRUE(db_.AdoptTable("cvd_data", data_.AllRecordRows(), {"rid"}).ok());
  }

  std::map<VersionId, std::vector<RecordId>> VersionRids() const {
    std::map<VersionId, std::vector<RecordId>> out;
    for (const wl::VersionSpec& v : data_.versions()) out[v.vid] = v.rids;
    return out;
  }

  Partitioning TwoWaySplit() const {
    Partitioning p;
    p.groups.resize(2);
    for (const wl::VersionSpec& v : data_.versions()) {
      p.groups[static_cast<size_t>(v.vid % 2)].push_back(v.vid);
    }
    return p;
  }

  rel::Database db_;
  wl::Dataset data_;
};

TEST_F(PartitionStoreTest, BuildCreatesPartitionTables) {
  PartitionStore store(&db_, "cvd", "cvd_data");
  ASSERT_TRUE(store.Build(TwoWaySplit(), VersionRids()).ok());
  EXPECT_EQ(store.num_partitions(), 2u);
  EXPECT_TRUE(db_.HasTable("cvd_p0_data"));
  EXPECT_TRUE(db_.HasTable("cvd_p1_rlist"));
  EXPECT_GE(store.StorageRecords(), data_.num_records());
}

TEST_F(PartitionStoreTest, CheckoutMatchesVersionRecords) {
  PartitionStore store(&db_, "cvd", "cvd_data");
  ASSERT_TRUE(store.Build(TwoWaySplit(), VersionRids()).ok());
  const wl::VersionSpec& v = data_.versions().back();
  ASSERT_TRUE(store.CheckoutVersion(v.vid, "out").ok());
  auto count = db_.Execute("SELECT count(*) FROM out");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value().Get(0, 0).AsInt(),
            static_cast<int64_t>(v.rids.size()));
}

TEST_F(PartitionStoreTest, TablesForRoutesToOwningPartition) {
  PartitionStore store(&db_, "cvd", "cvd_data");
  ASSERT_TRUE(store.Build(TwoWaySplit(), VersionRids()).ok());
  auto tables = store.TablesFor(2);  // vid 2 -> group 0
  ASSERT_TRUE(tables.ok());
  EXPECT_EQ(tables.value().first, "cvd_p0_data");
  EXPECT_FALSE(store.TablesFor(9999).ok());
}

TEST_F(PartitionStoreTest, OnlineAdditions) {
  PartitionStore store(&db_, "cvd", "cvd_data");
  // Start with the first half of the versions in one partition.
  Partitioning initial;
  initial.groups.resize(1);
  std::map<VersionId, std::vector<RecordId>> rids;
  size_t half = data_.versions().size() / 2;
  for (size_t i = 0; i < half; ++i) {
    initial.groups[0].push_back(data_.versions()[i].vid);
    rids[data_.versions()[i].vid] = data_.versions()[i].rids;
  }
  ASSERT_TRUE(store.Build(initial, std::move(rids)).ok());

  const wl::VersionSpec& next = data_.versions()[half];
  ASSERT_TRUE(store.AddVersionToPartition(next.vid, 0, next.rids).ok());
  EXPECT_EQ(store.PartitionOf(next.vid).value(), 0u);

  const wl::VersionSpec& after = data_.versions()[half + 1];
  auto k = store.AddVersionAsNewPartition(after.vid, after.rids);
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(store.num_partitions(), 2u);
  ASSERT_TRUE(store.CheckoutVersion(after.vid, "chk").ok());
  auto count = db_.Execute("SELECT count(*) FROM chk");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value().Get(0, 0).AsInt(),
            static_cast<int64_t>(after.rids.size()));
  // Duplicate placement rejected.
  EXPECT_FALSE(store.AddVersionToPartition(after.vid, 0, after.rids).ok());
}

TEST_F(PartitionStoreTest, MigrationPreservesCheckoutSemantics) {
  for (bool intelligent : {false, true}) {
    SCOPED_TRACE(intelligent ? "intelligent" : "naive");
    PartitionStore store(&db_, intelligent ? "cvdi" : "cvdn", "cvd_data");
    ASSERT_TRUE(store.Build(TwoWaySplit(), VersionRids()).ok());

    // New target: 3 partitions by vid % 3.
    Partitioning target;
    target.groups.resize(3);
    for (const wl::VersionSpec& v : data_.versions()) {
      target.groups[static_cast<size_t>(v.vid % 3)].push_back(v.vid);
    }
    auto stats = store.Migrate(target, intelligent);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(store.num_partitions(), 3u);

    // Every version still checks out with the right record count.
    for (size_t i = 0; i < data_.versions().size(); i += 13) {
      const wl::VersionSpec& v = data_.versions()[i];
      std::string table = (intelligent ? "mi" : "mn") + std::to_string(i);
      ASSERT_TRUE(store.CheckoutVersion(v.vid, table).ok());
      auto count = db_.Execute("SELECT count(*) FROM " + table);
      ASSERT_TRUE(count.ok());
      EXPECT_EQ(count.value().Get(0, 0).AsInt(),
                static_cast<int64_t>(v.rids.size()));
    }
  }
}

TEST_F(PartitionStoreTest, IntelligentMigrationMovesFewerRows) {
  // Target barely differs from the source layout; intelligent
  // migration must touch far fewer rows than a full rebuild.
  PartitionStore store(&db_, "cvd", "cvd_data");
  ASSERT_TRUE(store.Build(TwoWaySplit(), VersionRids()).ok());
  Partitioning target = TwoWaySplit();
  // Move a single version between groups.
  VersionId moved = target.groups[0].back();
  target.groups[0].pop_back();
  target.groups[1].push_back(moved);

  auto intelligent = store.Migrate(target, /*intelligent=*/true);
  ASSERT_TRUE(intelligent.ok()) << intelligent.status().ToString();
  EXPECT_EQ(intelligent.value().partitions_rebuilt, 0);
  EXPECT_EQ(intelligent.value().partitions_modified, 2);

  int64_t total_rows = store.StorageRecords();
  EXPECT_LT(intelligent.value().rows_inserted + intelligent.value().rows_deleted,
            total_rows / 2);
}

TEST_F(PartitionStoreTest, DropAllRemovesTables) {
  PartitionStore store(&db_, "cvd", "cvd_data");
  ASSERT_TRUE(store.Build(TwoWaySplit(), VersionRids()).ok());
  ASSERT_TRUE(store.DropAll().ok());
  EXPECT_FALSE(db_.HasTable("cvd_p0_data"));
  EXPECT_EQ(store.num_partitions(), 0u);
}

// --- Online maintenance ---------------------------------------------------

TEST_F(PartitionStoreTest, OnlineMaintainerPlacesAndMigrates) {
  PartitionStore store(&db_, "cvd", "cvd_data");
  OnlineOptions options;
  options.gamma_factor = 2.0;
  options.mu = 1.3;
  options.delta_star = 0.3;
  OnlineMaintainer maintainer(&store, options);

  int migrations = 0;
  int opened = 0;
  for (const wl::VersionSpec& v : data_.versions()) {
    VersionArrival arrival{v.vid, v.parents, v.parent_weights, v.rids};
    auto step = maintainer.OnVersionCommitted(arrival);
    ASSERT_TRUE(step.ok()) << step.status().ToString();
    migrations += step.value().migrated ? 1 : 0;
    opened += step.value().opened_partition ? 1 : 0;
    // Live cost never exceeds µ times the best by more than the
    // single-step drift (it is re-checked after every commit).
    if (step.value().cavg_best > 0) {
      EXPECT_LE(step.value().cavg,
                options.mu * step.value().cavg_best * 1.5 + 1.0);
    }
  }
  EXPECT_EQ(store.num_versions(), data_.versions().size());
  EXPECT_GT(opened, 0);
  // Checkout still works for all sampled versions.
  for (size_t i = 0; i < data_.versions().size(); i += 17) {
    const wl::VersionSpec& v = data_.versions()[i];
    ASSERT_TRUE(store.CheckoutVersion(v.vid, "on" + std::to_string(i)).ok());
  }
}

// --- Workload generator sanity ------------------------------------------

TEST(GeneratorTest, DeterministicAndConsistent) {
  wl::DatasetSpec spec;
  spec.num_versions = 80;
  spec.num_branches = 10;
  spec.inserts_per_version = 25;
  spec.num_attrs = 5;
  wl::Dataset a = wl::Generate(spec);
  wl::Dataset b = wl::Generate(spec);
  ASSERT_EQ(a.versions().size(), b.versions().size());
  EXPECT_EQ(a.num_records(), b.num_records());
  for (size_t i = 0; i < a.versions().size(); ++i) {
    EXPECT_EQ(a.versions()[i].rids, b.versions()[i].rids);
  }
  EXPECT_EQ(a.versions().size(), 80u);
  // Edge weights are consistent with actual record overlaps.
  auto bip = a.BuildBipartite();
  for (const wl::VersionSpec& v : a.versions()) {
    for (size_t p = 0; p < v.parents.size(); ++p) {
      auto parent_records = bip.RecordsOf(v.parents[p]);
      ASSERT_TRUE(parent_records.ok());
      std::vector<RecordId> common;
      std::set_intersection(v.rids.begin(), v.rids.end(),
                            parent_records.value()->begin(),
                            parent_records.value()->end(),
                            std::back_inserter(common));
      EXPECT_EQ(static_cast<int64_t>(common.size()), v.parent_weights[p])
          << "vid " << v.vid << " parent " << v.parents[p];
    }
  }
}

TEST(GeneratorTest, CurProducesMergesAndDuplicates) {
  wl::DatasetSpec spec;
  spec.kind = wl::WorkloadKind::kCur;
  spec.num_versions = 150;
  spec.num_branches = 15;
  spec.inserts_per_version = 30;
  spec.num_attrs = 3;
  wl::Dataset data = wl::Generate(spec);
  int merges = 0;
  for (const wl::VersionSpec& v : data.versions()) {
    if (v.parents.size() > 1) ++merges;
  }
  EXPECT_GT(merges, 0);
  EXPECT_GT(data.duplicated_records(), 0);
  // |R^| is a small fraction of |R| (Table 2 reports 7-10%).
  EXPECT_LT(data.duplicated_records(), data.num_records());
}

TEST(GeneratorTest, RowMaterialization) {
  wl::DatasetSpec spec;
  spec.num_versions = 10;
  spec.num_branches = 2;
  spec.inserts_per_version = 20;
  spec.num_attrs = 6;
  wl::Dataset data = wl::Generate(spec);
  rel::Chunk rows = data.RowsFor(data.versions()[0].rids);
  EXPECT_EQ(rows.num_rows(), data.versions()[0].rids.size());
  EXPECT_EQ(rows.num_columns(), 6);
  rel::Chunk all = data.AllRecordRows();
  EXPECT_EQ(all.num_rows(), static_cast<size_t>(data.num_records()));
  EXPECT_EQ(all.num_columns(), 7);  // rid + 6 attributes
  // Record content is deterministic in rid.
  EXPECT_EQ(wl::Dataset::AttrValue(5, 2), wl::Dataset::AttrValue(5, 2));
  EXPECT_NE(wl::Dataset::AttrValue(5, 2), wl::Dataset::AttrValue(6, 2));
}

TEST(GeneratorTest, SpecNameFormatting) {
  wl::DatasetSpec spec;
  spec.num_versions = 1000;
  spec.inserts_per_version = 1000;
  EXPECT_EQ(spec.Name(), "SCI_1M");
  spec.kind = wl::WorkloadKind::kCur;
  spec.num_versions = 100;
  spec.inserts_per_version = 10;
  EXPECT_EQ(spec.Name(), "CUR_1K");
}

}  // namespace
}  // namespace orpheus::part
