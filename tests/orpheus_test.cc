// Tests for the OrpheusDB facade and the versioned-SQL query
// translator (VERSION ... OF CVD ... constructs).

#include <gtest/gtest.h>

#include "core/orpheus.h"

namespace orpheus::core {
namespace {

rel::Chunk SampleRows(int n, int offset = 0) {
  rel::Schema schema({{"k", rel::DataType::kInt64},
                      {"score", rel::DataType::kInt64}});
  rel::Chunk rows(schema);
  for (int i = 0; i < n; ++i) {
    rows.AppendRow({rel::Value::Int(i + offset), rel::Value::Int(10 * (i + offset))});
  }
  return rows;
}

class OrpheusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CvdOptions options;
    options.primary_key = {"k"};
    auto cvd = orpheus_.InitCvd("numbers", SampleRows(5), options, "v1");
    ASSERT_TRUE(cvd.ok()) << cvd.status().ToString();
    cvd_ = cvd.value();
    // v2: add five more rows.
    ASSERT_TRUE(cvd_->Checkout({1}, "w").ok());
    for (int i = 5; i < 10; ++i) {
      ASSERT_TRUE(orpheus_.db()
                      ->Execute("INSERT INTO w VALUES (0, " + std::to_string(i) +
                                ", " + std::to_string(10 * i) + ")")
                      .ok());
    }
    auto v2 = cvd_->Commit("w", "v2");
    ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  }

  OrpheusDB orpheus_;
  Cvd* cvd_ = nullptr;
};

TEST_F(OrpheusTest, UsersAndLogin) {
  EXPECT_EQ(orpheus_.WhoAmI(), "default");
  ASSERT_TRUE(orpheus_.CreateUser("alice").ok());
  EXPECT_EQ(orpheus_.CreateUser("alice").code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(orpheus_.Login("alice").ok());
  EXPECT_EQ(orpheus_.WhoAmI(), "alice");
  EXPECT_EQ(orpheus_.Login("bob").code(), StatusCode::kNotFound);
}

TEST_F(OrpheusTest, ListAndDropCvds) {
  auto names = orpheus_.ListCvds();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "numbers");
  ASSERT_TRUE(orpheus_.DropCvd("numbers").ok());
  EXPECT_TRUE(orpheus_.ListCvds().empty());
  // Backing tables are gone too.
  EXPECT_FALSE(orpheus_.db()->HasTable("numbers_data"));
  EXPECT_FALSE(orpheus_.db()->HasTable("numbers_meta"));
}

TEST_F(OrpheusTest, RunSingleVersionQuery) {
  auto r = orpheus_.Run("SELECT count(*) FROM VERSION 1 OF CVD numbers");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().Get(0, 0).AsInt(), 5);
  auto r2 = orpheus_.Run("SELECT count(*) FROM VERSION 2 OF CVD numbers");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().Get(0, 0).AsInt(), 10);
}

TEST_F(OrpheusTest, RunWithPredicateAndAlias) {
  auto r = orpheus_.Run(
      "SELECT v.k FROM VERSION 2 OF CVD numbers AS v WHERE v.score >= 80 "
      "ORDER BY v.k");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().num_rows(), 2u);
  EXPECT_EQ(r.value().Get(0, 0).AsInt(), 8);
}

TEST_F(OrpheusTest, RunJoinAcrossVersions) {
  auto r = orpheus_.Run(
      "SELECT count(*) FROM VERSION 1 OF CVD numbers AS a, "
      "VERSION 2 OF CVD numbers AS b WHERE a.k = b.k");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().Get(0, 0).AsInt(), 5);  // v1 is a subset of v2
}

TEST_F(OrpheusTest, RunAggregatePerVersion) {
  // The paper's motivating query shape: an aggregate grouped by
  // version across the whole CVD.
  auto r = orpheus_.Run(
      "SELECT vid, count(*) AS cnt FROM CVD numbers GROUP BY vid ORDER BY vid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().num_rows(), 2u);
  EXPECT_EQ(r.value().Get(0, 1).AsInt(), 5);
  EXPECT_EQ(r.value().Get(1, 1).AsInt(), 10);
}

TEST_F(OrpheusTest, RunVersionSelectionViaHaving) {
  // "Find versions with more than 7 records."
  auto r = orpheus_.Run(
      "SELECT vid, count(*) AS cnt FROM CVD numbers GROUP BY vid HAVING cnt > 7");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().num_rows(), 1u);
  EXPECT_EQ(r.value().Get(0, 0).AsInt(), 2);
}

TEST_F(OrpheusTest, RunUnknownCvdFails) {
  EXPECT_EQ(orpheus_.Run("SELECT * FROM VERSION 1 OF CVD nope").status().code(),
            StatusCode::kNotFound);
}

TEST_F(OrpheusTest, PlainSqlPassesThrough) {
  auto r = orpheus_.Run("SELECT 1 + 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().Get(0, 0).AsInt(), 2);
}

TEST(TranslatorTest, TextualRewrite) {
  TableResolver resolver = [](const std::string& name, VersionId vid)
      -> Result<std::pair<std::string, std::string>> {
    (void)vid;
    return std::make_pair(name + "_data", name + "_rlist");
  };
  auto r = TranslateVersionedSql(
      "SELECT * FROM VERSION 3 OF CVD p WHERE x > 2", resolver);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r.value().find("p_data"), std::string::npos);
  EXPECT_NE(r.value().find("vid = 3"), std::string::npos);
  EXPECT_NE(r.value().find("WHERE x > 2"), std::string::npos);
  // A generated alias is appended for derived tables.
  EXPECT_NE(r.value().find("AS orpheus_cvd0"), std::string::npos);
}

TEST(TranslatorTest, KeepsUserAlias) {
  TableResolver resolver = [](const std::string& name, VersionId vid)
      -> Result<std::pair<std::string, std::string>> {
    (void)vid;
    return std::make_pair(name + "_d", name + "_v");
  };
  auto r = TranslateVersionedSql("SELECT a.x FROM VERSION 1 OF CVD c AS a", resolver);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().find("orpheus_cvd"), std::string::npos);
  EXPECT_NE(r.value().find("AS a"), std::string::npos);
}

TEST(TranslatorTest, NoConstructsNoChange) {
  TableResolver resolver = [](const std::string&, VersionId)
      -> Result<std::pair<std::string, std::string>> {
    return Status::Internal("must not be called");
  };
  const std::string sql = "SELECT version FROM releases WHERE cvdish = 1";
  auto r = TranslateVersionedSql(sql, resolver);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), sql);
}

}  // namespace
}  // namespace orpheus::core
