// Tests for query-level observability: EXPLAIN ANALYZE / profile
// operator trees (structure and rows), the acceptance bar that
// operator wall times sum to the execute stage, the `traces` verb as
// parseable JSON lines over a real TCP round-trip, the runtime
// `slowlog` verb, and the /proc/self process-stats sampler.

#include <fcntl.h>
#include <unistd.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/engine_api.h"
#include "obs/metrics.h"
#include "obs/procstats.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "server/client.h"
#include "server/server.h"

namespace orpheus {
namespace {

using core::CvdOptions;
using core::EngineApi;
using server::Client;
using server::Server;
using server::ServerOptions;

// k INT (pk), v INT.
rel::Chunk MakeRows(int n) {
  rel::Schema schema;
  schema.AddColumn("k", rel::DataType::kInt64);
  schema.AddColumn("v", rel::DataType::kInt64);
  rel::Chunk rows(schema);
  for (int i = 0; i < n; ++i) {
    rows.mutable_column(0).AppendInt(i);
    rows.mutable_column(1).AppendInt(i * 3);
  }
  return rows;
}

std::string MustExecute(EngineApi* api, core::SessionContext* session,
                        const std::string& line) {
  auto result = api->Execute(session, line);
  EXPECT_TRUE(result.ok()) << line << ": " << result.status().ToString();
  return result.ok() ? result.value() : std::string();
}

std::string MustExecute(Client* client, const std::string& line) {
  auto result = client->Execute(line);
  EXPECT_TRUE(result.ok()) << line << ": " << result.status().ToString();
  return result.ok() ? result.value() : std::string();
}

// Minimal JSON syntax check: one object per line — balanced braces and
// brackets outside string literals, nothing after the closing brace.
bool LooksLikeJsonObject(const std::string& line) {
  if (line.empty() || line[0] != '{') return false;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
      if (depth == 0 && i + 1 != line.size()) return false;
    }
  }
  return depth == 0 && !in_string;
}

// Value of the exposition line starting "<series> " (0 when absent).
double PromValue(const std::string& text, const std::string& series) {
  std::istringstream in(text);
  std::string line;
  const std::string prefix = series + " ";
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) == 0) {
      return std::atof(line.c_str() + prefix.size());
    }
  }
  return 0;
}

TEST(ProfileTest, ExplainAnalyzeGoldenPlan) {
  EngineApi api;
  auto session = api.NewSession();
  CvdOptions options;
  options.primary_key = {"k"};
  ASSERT_TRUE(api.orpheus()->InitCvd("gp", MakeRows(8), options, "init").ok());
  MustExecute(&api, session.get(), "checkout gp -v 1 -t gp1");

  const std::string text = MustExecute(
      &api, session.get(),
      "explain analyze SELECT count(*) FROM gp1 WHERE k < 5");
  // Operators appear in execution order under the statement root.
  size_t p_stmt = text.find("statement");
  size_t p_scan = text.find("scan [gp1]");
  size_t p_filter = text.find("filter");
  size_t p_agg = text.find("aggregate");
  EXPECT_NE(std::string::npos, p_stmt) << text;
  EXPECT_NE(std::string::npos, p_scan) << text;
  EXPECT_NE(std::string::npos, p_filter) << text;
  EXPECT_NE(std::string::npos, p_agg) << text;
  EXPECT_LT(p_stmt, p_scan);
  EXPECT_LT(p_scan, p_filter);
  EXPECT_LT(p_filter, p_agg);
  // Row counts are real, not estimates: 8 scanned, 5 pass k < 5,
  // one aggregate row out.
  EXPECT_NE(std::string::npos, text.find("rows_out=8")) << text;
  EXPECT_NE(std::string::npos,
            text.find("filter  rows_in=8 rows_out=5"))
      << text;
  EXPECT_NE(std::string::npos, text.find("1 row(s)")) << text;

  // JSON form parses and carries the same shape.
  const std::string json = MustExecute(
      &api, session.get(), "profile -json SELECT count(*) FROM gp1");
  EXPECT_TRUE(LooksLikeJsonObject(json)) << json;
  EXPECT_NE(std::string::npos, json.find("\"op\":\"aggregate\"")) << json;
  EXPECT_NE(std::string::npos, json.find("\"rows\":1")) << json;
}

TEST(ProfileTest, ExplainAnalyzeArgumentErrors) {
  EngineApi api;
  auto session = api.NewSession();
  // Plain EXPLAIN (no ANALYZE) is not supported — no plan-only mode.
  EXPECT_FALSE(api.Execute(session.get(), "explain SELECT 1").ok());
  EXPECT_FALSE(api.Execute(session.get(), "explain analyze").ok());
  EXPECT_FALSE(api.Execute(session.get(), "profile").ok());
  EXPECT_FALSE(api.Execute(session.get(), "profile -json").ok());
}

// The acceptance bar: for a 3-table join, the top-level operator wall
// times sum to the statement's execute stage within 10%, at 1 and 4
// exec threads. Both sides come from the same steady clock on the
// statement's own thread, so the gap is genuine non-operator work.
TEST(ProfileTest, OperatorTimesSumToExecuteStage) {
  EngineApi api;
  auto session = api.NewSession();
  CvdOptions options;
  options.primary_key = {"k"};
  ASSERT_TRUE(
      api.orpheus()->InitCvd("js", MakeRows(40000), options, "init").ok());
  MustExecute(&api, session.get(), "checkout js -v 1 -t j1");
  MustExecute(&api, session.get(), "checkout js -v 1 -t j2");
  MustExecute(&api, session.get(), "checkout js -v 1 -t j3");

  const int prev_threads = ExecThreads();
  for (int threads : {1, 4}) {
    SetExecThreads(threads);
    MustExecute(&api, session.get(),
                "run SELECT count(*) FROM j1, j2, j3 "
                "WHERE j1.k = j2.k AND j2.k = j3.k");
    std::vector<obs::OpTrace> recent = obs::GlobalTraceLog().Recent();
    ASSERT_FALSE(recent.empty());
    const obs::OpTrace& op = recent.back();
    ASSERT_EQ("run", op.verb);
    ASSERT_NE(nullptr, op.profile) << "statement recorded no profile";
    double operator_sum = 0;
    for (const auto& child : op.profile->children) {
      operator_sum += child->seconds;
    }
    double execute = op.stage_s[static_cast<int>(obs::TraceStage::kExecute)];
    ASSERT_GT(execute, 0.0);
    EXPECT_LE(std::fabs(operator_sum - execute), 0.10 * execute)
        << "threads=" << threads << " operator_sum=" << operator_sum
        << " execute=" << execute;
  }
  SetExecThreads(prev_threads);
}

TEST(ProfileTest, TracesVerbOverTcpParsesAsJsonLines) {
  const double prev_threshold = obs::GlobalTraceLog().SlowOpThresholdMs();
  EngineApi api;
  CvdOptions options;
  options.primary_key = {"k"};
  ASSERT_TRUE(api.orpheus()->InitCvd("tr", MakeRows(16), options, "init").ok());

  Server server(&api, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // Threshold 0: every op lands in the slow log with its profile.
  MustExecute(&client, "slowlog 0");
  MustExecute(&client, "run SELECT count(*) FROM VERSION 1 OF CVD tr");

  const std::string reply = MustExecute(&client, "traces slow 10");
  std::istringstream in(reply);
  std::string line;
  int lines = 0;
  bool saw_meta = false;
  bool saw_profiled_slow_op = false;
  while (std::getline(in, line)) {
    ASSERT_TRUE(LooksLikeJsonObject(line)) << line;
    ++lines;
    if (line.find("\"meta\":true") != std::string::npos) {
      saw_meta = true;
      EXPECT_NE(std::string::npos, line.find("\"slow_op_threshold_ms\":0"));
      EXPECT_NE(std::string::npos, line.find("\"total_recorded\":"));
    }
    if (line.find("\"kind\":\"slow\"") != std::string::npos &&
        line.find("\"verb\":\"run\"") != std::string::npos) {
      EXPECT_NE(std::string::npos, line.find("\"profile\":{")) << line;
      EXPECT_NE(std::string::npos, line.find("\"op\":\"scan\"")) << line;
      EXPECT_NE(std::string::npos, line.find("\"stages\":{")) << line;
      saw_profiled_slow_op = true;
    }
  }
  EXPECT_GE(lines, 2);
  EXPECT_TRUE(saw_meta) << reply;
  EXPECT_TRUE(saw_profiled_slow_op) << reply;

  // The recent ring stays compact: entries never embed the profile.
  const std::string recent = MustExecute(&client, "traces recent 10");
  EXPECT_NE(std::string::npos, recent.find("\"kind\":\"recent\""));
  EXPECT_EQ(std::string::npos, recent.find("\"profile\":{"));

  EXPECT_FALSE(client.Execute("traces bogus").ok());
  server.Stop();
  obs::GlobalTraceLog().SetSlowOpThresholdMs(prev_threshold);
}

TEST(ProfileTest, SlowlogVerbSetsAndShowsThreshold) {
  const double prev_threshold = obs::GlobalTraceLog().SlowOpThresholdMs();
  EngineApi api;
  auto session = api.NewSession();
  EXPECT_NE(std::string::npos,
            MustExecute(&api, session.get(), "slowlog 7.5").find("7.5"));
  EXPECT_EQ(7.5, obs::GlobalTraceLog().SlowOpThresholdMs());
  EXPECT_NE(std::string::npos,
            MustExecute(&api, session.get(), "slowlog").find("7.5"));
  EXPECT_FALSE(api.Execute(session.get(), "slowlog -3").ok());
  EXPECT_FALSE(api.Execute(session.get(), "slowlog fast").ok());
  obs::GlobalTraceLog().SetSlowOpThresholdMs(prev_threshold);
}

TEST(ProcStatsTest, SampleReflectsAllocationAndFdChurn) {
  auto before = obs::ReadProcSelf();
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_GT(before.value().rss_bytes, 0);
  EXPECT_GT(before.value().vm_bytes, 0);
  EXPECT_GT(before.value().open_fds, 0);
  EXPECT_GE(before.value().threads, 1);
  EXPECT_GT(before.value().uptime_s, 0.0);

  // Touch ~48 MB so it is resident, and open 20 extra fds.
  constexpr size_t kBytes = 48u << 20;
  std::vector<char> hog(kBytes);
  for (size_t i = 0; i < kBytes; i += 4096) hog[i] = 1;
  std::vector<int> fds;
  for (int i = 0; i < 20; ++i) {
    int fd = ::open("/proc/self/statm", O_RDONLY);
    ASSERT_GE(fd, 0);
    fds.push_back(fd);
  }

  auto after = obs::ReadProcSelf();
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_GE(after.value().rss_bytes - before.value().rss_bytes,
            static_cast<int64_t>(kBytes) / 2)
      << "allocation not visible in RSS";
  EXPECT_GE(after.value().open_fds - before.value().open_fds, 20);
  for (int fd : fds) ::close(fd);

  // SampleOnce publishes the gauges into the global registry.
  ASSERT_TRUE(obs::ProcStatsSampler::Instance().SampleOnce().ok());
  const std::string text = obs::GlobalMetrics().RenderPrometheus();
  EXPECT_GT(PromValue(text, "orpheus_process_resident_bytes"), 0.0);
  EXPECT_GT(PromValue(text, "orpheus_process_virtual_bytes"), 0.0);
  EXPECT_GT(PromValue(text, "orpheus_process_open_fds"), 0.0);
  EXPECT_GE(PromValue(text, "orpheus_process_threads"), 1.0);
  EXPECT_GT(PromValue(text, "orpheus_process_uptime_seconds"), 0.0);
}

TEST(ProcStatsTest, SamplerStartStop) {
  obs::ProcStatsSampler& sampler = obs::ProcStatsSampler::Instance();
  sampler.Start(10);
  ::usleep(50 * 1000);
  sampler.Stop();
  const std::string text = obs::GlobalMetrics().RenderPrometheus();
  EXPECT_GT(PromValue(text, "orpheus_process_resident_bytes"), 0.0);
  // Stop is idempotent; a second Start/Stop cycle works.
  sampler.Stop();
  sampler.Start(1000);
  sampler.Stop();
}

}  // namespace
}  // namespace orpheus
