// Tests for the socket server subsystem (src/server/): framing,
// session lifecycle over real TCP connections, concurrent clients
// sharing one engine, pin conflicts across connections, idle timeout,
// and graceful shutdown. Everything binds to an ephemeral loopback
// port, so tests can run in parallel.

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine_api.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace orpheus {
namespace {

using core::CvdOptions;
using core::EngineApi;
using server::Client;
using server::Server;
using server::ServerOptions;

// k INT (pk), score DOUBLE.
rel::Chunk MakeRows(int n) {
  rel::Schema schema;
  schema.AddColumn("k", rel::DataType::kInt64);
  schema.AddColumn("score", rel::DataType::kDouble);
  rel::Chunk rows(schema);
  for (int i = 0; i < n; ++i) {
    rows.mutable_column(0).AppendInt(i);
    rows.mutable_column(1).AppendDouble(1.5 * i);
  }
  return rows;
}

void Seed(EngineApi* api, const std::string& name, int n) {
  CvdOptions options;
  options.primary_key = {"k"};
  ASSERT_TRUE(api->orpheus()->InitCvd(name, MakeRows(n), options, "init").ok());
}

std::string MustExecute(Client* client, const std::string& line) {
  auto result = client->Execute(line);
  EXPECT_TRUE(result.ok()) << line << ": " << result.status().ToString();
  return result.ok() ? result.value() : std::string();
}

// Waits (bounded) for the server to tear down disconnected sessions.
void AwaitActiveSessions(Server* server, size_t want) {
  for (int i = 0; i < 500; ++i) {
    if (server->sessions()->active() == want) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(want, server->sessions()->active());
}

TEST(Protocol, ResponseRoundTrip) {
  std::string wire = server::EncodeResponse(Status::OK(), false, "hello\nrows");
  server::Response response = server::DecodeResponse(wire).ValueOrDie();
  EXPECT_TRUE(response.status.ok());
  EXPECT_FALSE(response.closed);
  EXPECT_EQ("hello\nrows", response.text);

  wire = server::EncodeResponse(Status::NotFound("no such CVD"), true, "");
  response = server::DecodeResponse(wire).ValueOrDie();
  EXPECT_EQ(StatusCode::kNotFound, response.status.code());
  EXPECT_TRUE(response.closed);
  EXPECT_EQ("no such CVD", response.status.message());

  EXPECT_FALSE(server::DecodeResponse("").ok());        // too short
  EXPECT_FALSE(server::DecodeResponse("x").ok());       // no closed byte
}

TEST(Protocol, ParseHostPort) {
  auto hp = server::ParseHostPort("127.0.0.1:4321").ValueOrDie();
  EXPECT_EQ("127.0.0.1", hp.first);
  EXPECT_EQ(4321, hp.second);
  hp = server::ParseHostPort("9000").ValueOrDie();
  EXPECT_EQ("127.0.0.1", hp.first);
  EXPECT_EQ(9000, hp.second);
  EXPECT_FALSE(server::ParseHostPort("host:").ok());
  EXPECT_FALSE(server::ParseHostPort("").ok());
  EXPECT_FALSE(server::ParseHostPort("host:99999").ok());
}

TEST(ServerTest, HelloAndBasicCommands) {
  EngineApi api;
  Server server(&api, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  EXPECT_EQ(0u, client.hello().find("ORPHEUS/1 session "));
  EXPECT_EQ("(no CVDs)", MustExecute(&client, "ls"));
  EXPECT_EQ("default", MustExecute(&client, "whoami"));
  // Errors come back as Status, connection stays usable.
  EXPECT_FALSE(client.Execute("graph nosuch").ok());
  EXPECT_FALSE(client.closed());
  EXPECT_EQ("(no pins)", MustExecute(&client, "pins"));
  server.Stop();
}

TEST(ServerTest, ExitEndsTheSession) {
  EngineApi api;
  Server server(&api, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  EXPECT_EQ("bye", MustExecute(&client, "exit"));
  EXPECT_TRUE(client.closed());
  EXPECT_FALSE(client.Execute("ls").ok());
  AwaitActiveSessions(&server, 0);
  server.Stop();
}

TEST(ServerTest, TwoClientsShareEngineButNotSessionState) {
  EngineApi api;
  Seed(&api, "c", 5);
  Server server(&api, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  Client a;
  Client b;
  ASSERT_TRUE(a.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(b.Connect("127.0.0.1", server.port()).ok());
  EXPECT_NE(a.hello(), b.hello());  // distinct session ids

  // A commits a new version; B sees it through the shared engine.
  MustExecute(&a, "checkout c -v 1 -t wa");
  MustExecute(&a, "sql UPDATE wa SET score = 42.0 WHERE k = 2");
  MustExecute(&a, "commit -t wa -m from_a");
  EXPECT_NE(std::string::npos, MustExecute(&b, "graph c").find("v2"));

  // But user identity is per session.
  MustExecute(&a, "create_user alice");
  MustExecute(&a, "config alice");
  EXPECT_EQ("alice", MustExecute(&a, "whoami"));
  EXPECT_EQ("default", MustExecute(&b, "whoami"));

  // B cannot commit A's staged table name after A discarded it — each
  // checkout is tracked per session.
  MustExecute(&a, "checkout c -v 1 -t wtmp");
  MustExecute(&a, "discard -t wtmp");
  EXPECT_FALSE(b.Execute("commit -t wtmp -m steal").ok());
  server.Stop();
}

TEST(ServerTest, PinConflictAcrossConnections) {
  EngineApi api;
  Seed(&api, "c", 5);
  Server server(&api, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  Client pinner;
  Client dropper;
  ASSERT_TRUE(pinner.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(dropper.Connect("127.0.0.1", server.port()).ok());

  MustExecute(&pinner, "pin c");
  auto drop = dropper.Execute("drop c");
  ASSERT_FALSE(drop.ok());
  EXPECT_EQ(StatusCode::kFailedPrecondition, drop.status().code());

  MustExecute(&pinner, "unpin c");
  EXPECT_EQ("dropped c", MustExecute(&dropper, "drop c"));
  server.Stop();
}

TEST(ServerTest, DisconnectReleasesPinsAndStagedTables) {
  EngineApi api;
  Seed(&api, "c", 5);
  Server server(&api, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  {
    Client transient;
    ASSERT_TRUE(transient.Connect("127.0.0.1", server.port()).ok());
    MustExecute(&transient, "checkout c -v 1 -t wzombie");
    MustExecute(&transient, "pin c");
    ASSERT_TRUE(api.orpheus()->db()->GetTable("wzombie").ok());
  }  // drops the connection without exit/discard

  AwaitActiveSessions(&server, 0);
  // The server reaped the session: staged table gone, pin released.
  EXPECT_FALSE(api.orpheus()->db()->GetTable("wzombie").ok());
  EXPECT_EQ(0, api.registry()->PinCount("c"));

  Client next;
  ASSERT_TRUE(next.Connect("127.0.0.1", server.port()).ok());
  EXPECT_EQ("dropped c", MustExecute(&next, "drop c"));
  server.Stop();
}

TEST(ServerTest, IdleSessionTimesOut) {
  EngineApi api;
  ServerOptions options;
  options.idle_timeout_sec = 0.3;
  Server server(&api, options);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  EXPECT_EQ("(no CVDs)", MustExecute(&client, "ls"));
  std::this_thread::sleep_for(std::chrono::milliseconds(900));
  AwaitActiveSessions(&server, 0);
  EXPECT_FALSE(client.Execute("ls").ok());  // server hung up
  server.Stop();
}

TEST(ServerTest, ConcurrentClientsCommitEverythingLands) {
  EngineApi api;
  Seed(&api, "c", 6);
  ServerOptions options;
  options.workers = 6;
  Server server(&api, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 5;
  constexpr int kCommits = 4;
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([port = server.port(), i] {
      Client client;
      ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
      for (int j = 0; j < kCommits; ++j) {
        std::string w = "cw" + std::to_string(i) + "_" + std::to_string(j);
        MustExecute(&client, "checkout c -v 1 -t " + w);
        MustExecute(&client, "commit -t " + w + " -m x");
      }
      MustExecute(&client, "exit");
    });
  }
  for (std::thread& t : threads) t.join();

  core::Cvd* cvd = api.orpheus()->GetCvd("c").ValueOrDie();
  EXPECT_EQ(1 + kClients * kCommits, cvd->latest_version());
  server.Stop();
}

TEST(ServerTest, StopIsGracefulAndIdempotent) {
  EngineApi api;
  Server server(&api, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  EXPECT_EQ("(no CVDs)", MustExecute(&client, "ls"));

  server.Stop();
  server.Stop();  // idempotent
  EXPECT_FALSE(client.Execute("ls").ok());
  EXPECT_EQ(0u, server.sessions()->active());
  // A fresh connect is refused: the listener is gone.
  Client late;
  EXPECT_FALSE(late.Connect("127.0.0.1", server.port()).ok());
}

}  // namespace
}  // namespace orpheus
