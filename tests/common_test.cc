// Unit tests for the common module: Status/Result, string helpers,
// RNG determinism, and flag parsing.

#include <gtest/gtest.h>

#include <set>

#include "common/flags.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"

namespace orpheus {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EachFactoryProducesItsCode) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ConstraintViolation("x").code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
}

Result<int> ReturnsValue() { return 42; }
Result<int> ReturnsError() { return Status::InvalidArgument("nope"); }

Result<int> UsesAssignOrReturn() {
  ORPHEUS_ASSIGN_OR_RETURN(int v, ReturnsValue());
  return v + 1;
}

Result<int> PropagatesError() {
  ORPHEUS_ASSIGN_OR_RETURN(int v, ReturnsError());
  return v + 1;
}

TEST(ResultTest, ValuePath) {
  Result<int> r = ReturnsValue();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, ErrorPath) {
  Result<int> r = ReturnsError();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = UsesAssignOrReturn();
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 43);
  Result<int> err = PropagatesError();
  EXPECT_FALSE(err.ok());
}

TEST(StrUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StrUtilTest, SplitWhitespace) {
  auto parts = SplitWhitespace("  checkout  -v 3\t-t foo ");
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "checkout");
  EXPECT_EQ(parts[4], "foo");
}

TEST(StrUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_TRUE(EqualsIgnoreCase("VERSION", "version"));
  EXPECT_FALSE(EqualsIgnoreCase("vid", "vids"));
  EXPECT_TRUE(StartsWith("checkout -v", "check"));
}

TEST(StrUtilTest, TrimAndFormat) {
  EXPECT_EQ(Trim("  x \n"), "x");
  EXPECT_EQ(StrFormat("%d-%s", 7, "ok"), "7-ok");
  EXPECT_EQ(WithThousandsSep(1234567), "1,234,567");
  EXPECT_EQ(WithThousandsSep(-42), "-42");
  EXPECT_EQ(WithThousandsSep(0), "0");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(FlagsTest, ParsesForms) {
  const char* argv[] = {"prog", "--alpha=1", "--beta", "2.5", "--gamma", "pos"};
  Flags flags(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("alpha", 0), 1);
  EXPECT_DOUBLE_EQ(flags.GetDouble("beta", 0), 2.5);
  EXPECT_TRUE(flags.GetBool("gamma", false));
  EXPECT_EQ(flags.GetString("missing", "d"), "d");
  ASSERT_EQ(flags.positional().size(), 0u);  // "pos" consumed by --gamma
}

TEST(FlagsTest, PositionalAndBoolFalse) {
  const char* argv[] = {"prog", "cmd", "--flag=false"};
  Flags flags(3, const_cast<char**>(argv));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "cmd");
  EXPECT_FALSE(flags.GetBool("flag", true));
}

}  // namespace
}  // namespace orpheus
