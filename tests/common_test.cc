// Unit tests for the common module: Status/Result, string helpers,
// RNG determinism, flag parsing, and the thread pool.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/thread_pool.h"

namespace orpheus {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EachFactoryProducesItsCode) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ConstraintViolation("x").code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
}

Result<int> ReturnsValue() { return 42; }
Result<int> ReturnsError() { return Status::InvalidArgument("nope"); }

Result<int> UsesAssignOrReturn() {
  ORPHEUS_ASSIGN_OR_RETURN(int v, ReturnsValue());
  return v + 1;
}

Result<int> PropagatesError() {
  ORPHEUS_ASSIGN_OR_RETURN(int v, ReturnsError());
  return v + 1;
}

TEST(ResultTest, ValuePath) {
  Result<int> r = ReturnsValue();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, ErrorPath) {
  Result<int> r = ReturnsError();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = UsesAssignOrReturn();
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 43);
  Result<int> err = PropagatesError();
  EXPECT_FALSE(err.ok());
}

TEST(StrUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StrUtilTest, SplitWhitespace) {
  auto parts = SplitWhitespace("  checkout  -v 3\t-t foo ");
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "checkout");
  EXPECT_EQ(parts[4], "foo");
}

TEST(StrUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_TRUE(EqualsIgnoreCase("VERSION", "version"));
  EXPECT_FALSE(EqualsIgnoreCase("vid", "vids"));
  EXPECT_TRUE(StartsWith("checkout -v", "check"));
}

TEST(StrUtilTest, TrimAndFormat) {
  EXPECT_EQ(Trim("  x \n"), "x");
  EXPECT_EQ(StrFormat("%d-%s", 7, "ok"), "7-ok");
  EXPECT_EQ(WithThousandsSep(1234567), "1,234,567");
  EXPECT_EQ(WithThousandsSep(-42), "-42");
  EXPECT_EQ(WithThousandsSep(0), "0");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(FlagsTest, ParsesForms) {
  const char* argv[] = {"prog", "--alpha=1", "--beta", "2.5", "--gamma", "pos"};
  Flags flags(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("alpha", 0), 1);
  EXPECT_DOUBLE_EQ(flags.GetDouble("beta", 0), 2.5);
  EXPECT_TRUE(flags.GetBool("gamma", false));
  EXPECT_EQ(flags.GetString("missing", "d"), "d");
  ASSERT_EQ(flags.positional().size(), 0u);  // "pos" consumed by --gamma
}

TEST(FlagsTest, PositionalAndBoolFalse) {
  const char* argv[] = {"prog", "cmd", "--flag=false"};
  Flags flags(3, const_cast<char**>(argv));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "cmd");
  EXPECT_FALSE(flags.GetBool("flag", true));
}

// --- ThreadPool --------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_workers(), 3);
  constexpr int kCount = 10000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&](int i) { hits[static_cast<size_t>(i)]++; });
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroWorkersDegradesToSerialInOrder) {
  ThreadPool pool(0);
  std::vector<int> order;
  pool.ParallelFor(5, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, EmptyAndSingleCounts) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](int) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(4, [&](int) {
    pool.ParallelFor(4, [&](int) { total++; });
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPoolTest, ReusableAcrossManyCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(100, [&](int i) { sum += i; });
    ASSERT_EQ(sum.load(), 4950);
  }
}

TEST(ExecThreadsTest, SetAndGetRoundTrip) {
  SetExecThreads(3);
  EXPECT_EQ(ExecThreads(), 3);
  SetExecThreads(1);
  EXPECT_EQ(ExecThreads(), 1);
  SetExecThreads(0);  // restore hardware default
  EXPECT_EQ(ExecThreads(), HardwareThreads());
  EXPECT_GE(HardwareThreads(), 1);
}

TEST(ExecThreadsTest, AbsurdRequestsAreClamped) {
  SetExecThreads(1000000);
  EXPECT_EQ(ExecThreads(), kMaxExecThreads);
  SetExecThreads(0);
}

TEST(ExecThreadsTest, ParallelBatchForReportsFirstErrorInBatchOrder) {
  SetExecThreads(4);
  // Batches 1 and 3 fail; batch order says batch 1's error wins.
  Status st = ParallelBatchFor(
      1000, 100, [](size_t, size_t, size_t b) -> Status {
        if (b == 1) return Status::InvalidArgument("batch one");
        if (b == 3) return Status::Internal("batch three");
        return Status::OK();
      });
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "batch one");
  // Zero items: no calls, OK.
  int calls = 0;
  EXPECT_TRUE(ParallelBatchFor(0, 100, [&](size_t, size_t, size_t) {
                ++calls;
                return Status::OK();
              }).ok());
  EXPECT_EQ(calls, 0);
  SetExecThreads(0);
}

TEST(ExecThreadsTest, ParallelStableSortMatchesStdStableSort) {
  // Heavy key duplication makes stability observable (equal keys must
  // keep their original relative order). A tiny run length forces many
  // runs and several merge rounds; the result must equal a serial
  // std::stable_sort bit-for-bit at every thread setting.
  Rng rng(20260729);
  std::vector<int64_t> keys(10000);
  for (int64_t& k : keys) k = static_cast<int64_t>(rng.Uniform(50));
  auto by_key = [&keys](uint32_t a, uint32_t b) { return keys[a] < keys[b]; };
  std::vector<uint32_t> expect(keys.size());
  std::iota(expect.begin(), expect.end(), 0);
  std::stable_sort(expect.begin(), expect.end(), by_key);
  for (int threads : {1, 2, 4, 8}) {
    SetExecThreads(threads);
    std::vector<uint32_t> order(keys.size());
    std::iota(order.begin(), order.end(), 0);
    ParallelStableSort(&order, 256, by_key);
    ASSERT_EQ(order, expect) << "threads " << threads;
  }
  SetExecThreads(0);
}

TEST(ExecThreadsTest, ParallelStableSortEdgeSizes) {
  // Empty, single-run (inline path), and run-boundary-straddling sizes.
  for (size_t n : {size_t{0}, size_t{1}, size_t{255}, size_t{256},
                   size_t{257}, size_t{513}}) {
    std::vector<uint32_t> items(n);
    for (size_t i = 0; i < n; ++i) {
      items[i] = static_cast<uint32_t>((n - i) % 7);
    }
    std::vector<uint32_t> expect = items;
    std::stable_sort(expect.begin(), expect.end());
    ParallelStableSort(&items, 256, std::less<uint32_t>());
    ASSERT_EQ(items, expect) << "n " << n;
  }
}

TEST(ExecThreadsTest, ExecParallelForCoversRangeAtAnySetting) {
  for (int threads : {1, 2, 4}) {
    SetExecThreads(threads);
    std::vector<std::atomic<int>> hits(5000);
    ExecParallelFor(5000, [&](int i) { hits[static_cast<size_t>(i)]++; });
    for (int i = 0; i < 5000; ++i) {
      ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1)
          << "threads " << threads << " index " << i;
    }
  }
  SetExecThreads(0);
}

}  // namespace
}  // namespace orpheus
