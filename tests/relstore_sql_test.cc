// Unit tests for the SQL lexer and parser.

#include <gtest/gtest.h>

#include "relstore/lexer.h"
#include "relstore/parser.h"

namespace orpheus::rel {
namespace {

TEST(LexerTest, BasicTokens) {
  auto r = Tokenize("SELECT x, 42, 1.5, 'it''s' FROM t;");
  ASSERT_TRUE(r.ok());
  const auto& toks = r.value();
  EXPECT_EQ(toks[0].type, TokenType::kKeyword);
  EXPECT_EQ(toks[0].text, "select");
  EXPECT_EQ(toks[1].type, TokenType::kIdentifier);
  EXPECT_EQ(toks[3].int_value, 42);
  EXPECT_DOUBLE_EQ(toks[5].double_value, 1.5);
  EXPECT_EQ(toks[7].text, "it's");
}

TEST(LexerTest, Operators) {
  auto r = Tokenize("a <@ b <= c || d <> e");
  ASSERT_TRUE(r.ok());
  const auto& toks = r.value();
  EXPECT_EQ(toks[1].text, "<@");
  EXPECT_EQ(toks[3].text, "<=");
  EXPECT_EQ(toks[5].text, "||");
  EXPECT_EQ(toks[7].text, "<>");
}

TEST(LexerTest, LineComments) {
  auto r = Tokenize("SELECT 1 -- trailing comment\n, 2");
  ASSERT_TRUE(r.ok());
  // select, 1, ',', 2, end
  EXPECT_EQ(r.value().size(), 5u);
}

TEST(LexerTest, UnterminatedString) {
  auto r = Tokenize("SELECT 'oops");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(ParserTest, SelectBasics) {
  auto r = ParseSql("SELECT a, b AS bee FROM t WHERE a > 3 ORDER BY a DESC LIMIT 10");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SelectStmt& s = *r.value()->select;
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[1].alias, "bee");
  ASSERT_EQ(s.from.size(), 1u);
  EXPECT_EQ(s.from[0].name, "t");
  ASSERT_NE(s.where, nullptr);
  ASSERT_EQ(s.order_by.size(), 1u);
  EXPECT_TRUE(s.order_by[0].descending);
  EXPECT_EQ(s.limit, 10);
}

TEST(ParserTest, PaperCheckoutCombinedTable) {
  // Table 1, combined-table checkout.
  auto r = ParseSql("SELECT * INTO tprime FROM t WHERE ARRAY[3] <@ vlist");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SelectStmt& s = *r.value()->select;
  EXPECT_EQ(s.into_table, "tprime");
  ASSERT_NE(s.where, nullptr);
  EXPECT_EQ(s.where->kind, ExprKind::kBinary);
  EXPECT_EQ(s.where->bin_op, BinOp::kContains);
  EXPECT_EQ(s.where->args[0]->kind, ExprKind::kArrayLiteral);
}

TEST(ParserTest, PaperCheckoutSplitByRlist) {
  // Table 1, split-by-rlist checkout with unnest subquery.
  auto r = ParseSql(
      "SELECT d.* INTO tprime FROM dataTable d, "
      "(SELECT unnest(rlist) AS rid_tmp FROM versioningTable WHERE vid = 7) "
      "AS tmp WHERE d.rid = tmp.rid_tmp");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SelectStmt& s = *r.value()->select;
  ASSERT_EQ(s.from.size(), 2u);
  EXPECT_EQ(s.from[0].alias, "d");
  ASSERT_NE(s.from[1].subquery, nullptr);
  EXPECT_EQ(s.from[1].alias, "tmp");
  // d.* star with qualifier
  EXPECT_EQ(s.items[0].expr->kind, ExprKind::kStar);
  EXPECT_EQ(s.items[0].expr->column, "d");
}

TEST(ParserTest, PaperCommitUpdateWithInSubquery) {
  // Table 1, combined-table commit: append vj to vlist.
  auto r = ParseSql(
      "UPDATE t SET vlist = vlist + 9 WHERE rid IN (SELECT rid FROM tprime)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Statement& stmt = *r.value();
  EXPECT_EQ(stmt.kind, Statement::Kind::kUpdate);
  ASSERT_EQ(stmt.assignments.size(), 1u);
  EXPECT_EQ(stmt.assignments[0].first, "vlist");
  ASSERT_NE(stmt.where, nullptr);
  EXPECT_EQ(stmt.where->kind, ExprKind::kInSubquery);
}

TEST(ParserTest, PaperCommitInsertArraySubquery) {
  // Table 1, split-by-rlist commit: one tuple with an array of rids.
  auto r = ParseSql(
      "INSERT INTO versioningTable VALUES (9, ARRAY(SELECT rid FROM tprime))");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Statement& stmt = *r.value();
  ASSERT_EQ(stmt.values.size(), 1u);
  ASSERT_EQ(stmt.values[0].size(), 2u);
  EXPECT_EQ(stmt.values[0][1]->kind, ExprKind::kArraySubquery);
}

TEST(ParserTest, CreateTableWithPrimaryKeyAndArrayType) {
  auto r = ParseSql(
      "CREATE TABLE v (vid INT, rlist INT[], msg TEXT, score DOUBLE, "
      "PRIMARY KEY (vid))");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Statement& stmt = *r.value();
  ASSERT_EQ(stmt.column_defs.size(), 4u);
  EXPECT_EQ(stmt.column_defs[1].type, DataType::kIntArray);
  ASSERT_EQ(stmt.primary_key.size(), 1u);
  EXPECT_EQ(stmt.primary_key[0], "vid");
}

TEST(ParserTest, GroupByHavingAggregates) {
  auto r = ParseSql(
      "SELECT vid, count(*) AS cnt, avg(score) FROM t GROUP BY vid "
      "HAVING cnt > 50");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SelectStmt& s = *r.value()->select;
  ASSERT_EQ(s.group_by.size(), 1u);
  ASSERT_NE(s.having, nullptr);
  EXPECT_TRUE(s.items[1].expr->IsAggregate());
}

TEST(ParserTest, InsertMultiRow) {
  auto r = ParseSql("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->values.size(), 2u);
  EXPECT_EQ(r.value()->columns.size(), 2u);
}

TEST(ParserTest, DeleteAndDrop) {
  auto del = ParseSql("DELETE FROM t WHERE a = 1");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del.value()->kind, Statement::Kind::kDelete);
  auto drop = ParseSql("DROP TABLE IF EXISTS t");
  ASSERT_TRUE(drop.ok());
  EXPECT_TRUE(drop.value()->if_exists);
}

TEST(ParserTest, ClusterAndIndex) {
  auto cluster = ParseSql("CLUSTER dataTable BY rid");
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  EXPECT_EQ(cluster.value()->kind, Statement::Kind::kClusterBy);
  EXPECT_EQ(cluster.value()->index_column, "rid");
  auto index = ParseSql("CREATE INDEX ON dataTable (rid)");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index.value()->kind, Statement::Kind::kCreateIndex);
}

TEST(ParserTest, OperatorPrecedence) {
  auto r = ParseSql("SELECT 1 + 2 * 3 = 7 AND NOT false");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Expr& top = *r.value()->select->items[0].expr;
  EXPECT_EQ(top.bin_op, BinOp::kAnd);
  const Expr& cmp = *top.args[0];
  EXPECT_EQ(cmp.bin_op, BinOp::kEq);
  EXPECT_EQ(cmp.args[0]->bin_op, BinOp::kAdd);
}

TEST(ParserTest, ErrorsAreParseErrors) {
  for (const char* bad :
       {"SELEC 1", "SELECT FROM", "INSERT INTO", "UPDATE t", "CREATE VIEW v",
        "SELECT * FROM t WHERE", "SELECT 1 2 3 4 --"}) {
    auto r = ParseSql(bad);
    EXPECT_FALSE(r.ok()) << "should not parse: " << bad;
  }
}

TEST(ParserTest, TrailingGarbageRejected) {
  auto r = ParseSql("SELECT 1; SELECT 2");
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace orpheus::rel
