// Tests for the partition optimizer: bipartite cost model, LYRESPLIT
// (including its ((1+δ)^ℓ, 1/δ) guarantee as a parameterized property
// test over generated workloads), the AGGLO/KMEANS baselines, and
// dominance of LYRESPLIT at equal storage.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "partition/baselines.h"
#include "partition/lyresplit.h"
#include "workload/generator.h"

namespace orpheus::part {
namespace {

// The paper's Figure 6 bipartite graph (from Figure 1's data).
BipartiteGraph Figure6Graph() {
  return BipartiteGraph::FromVersionSets(
      {1, 2, 3, 4},
      {{1, 2, 3}, {2, 3, 4}, {3, 5, 6, 7}, {2, 3, 4, 5, 6, 7}});
}

TEST(BipartiteTest, CountsMatchFigure6) {
  BipartiteGraph g = Figure6Graph();
  EXPECT_EQ(g.num_versions(), 4u);
  EXPECT_EQ(g.num_records(), 7);
  EXPECT_EQ(g.num_edges(), 3 + 3 + 4 + 6);
  EXPECT_DOUBLE_EQ(g.MinCheckoutCost(), 16.0 / 4.0);
}

TEST(BipartiteTest, PartitioningCostsMatchFigure6b) {
  // Figure 6(b): P1 = {v1, v2}, P2 = {v3, v4}; r2, r3, r4 duplicated.
  BipartiteGraph g = Figure6Graph();
  Partitioning p;
  p.groups = {{1, 2}, {3, 4}};
  ASSERT_TRUE(p.ComputeCosts(g).ok());
  EXPECT_EQ(p.partition_records[0], 4);  // {r1..r4}
  EXPECT_EQ(p.partition_records[1], 6);  // {r2..r7}
  EXPECT_EQ(p.storage_cost, 10);
  EXPECT_DOUBLE_EQ(p.avg_checkout_cost, (2 * 4 + 2 * 6) / 4.0);
}

TEST(BipartiteTest, SinglePartitionMinimizesStorage) {
  // Observation 2: one partition gives S = |R|.
  BipartiteGraph g = Figure6Graph();
  Partitioning p;
  p.groups = {{1, 2, 3, 4}};
  ASSERT_TRUE(p.ComputeCosts(g).ok());
  EXPECT_EQ(p.storage_cost, g.num_records());
  EXPECT_DOUBLE_EQ(p.avg_checkout_cost, static_cast<double>(g.num_records()));
}

TEST(BipartiteTest, PerVersionPartitionsMinimizeCheckout) {
  // Observation 1: a partition per version gives Cavg = |E| / |V|.
  BipartiteGraph g = Figure6Graph();
  Partitioning p;
  p.groups = {{1}, {2}, {3}, {4}};
  ASSERT_TRUE(p.ComputeCosts(g).ok());
  EXPECT_EQ(p.storage_cost, g.num_edges());
  EXPECT_DOUBLE_EQ(p.avg_checkout_cost, g.MinCheckoutCost());
}

TEST(BipartiteTest, InvalidPartitioningsRejected) {
  BipartiteGraph g = Figure6Graph();
  Partitioning dup;
  dup.groups = {{1, 2}, {2, 3, 4}};
  EXPECT_FALSE(dup.ComputeCosts(g).ok());
  Partitioning missing;
  missing.groups = {{1, 2}};
  EXPECT_FALSE(missing.ComputeCosts(g).ok());
}

// --- LYRESPLIT ---------------------------------------------------------

core::VersionGraph ChainGraph(int n, int64_t records, int64_t shared) {
  core::VersionGraph g;
  (void)g.AddVersion(1, {}, {}, records);
  for (int i = 2; i <= n; ++i) {
    (void)g.AddVersion(i, {i - 1}, {shared}, records);
  }
  return g;
}

TEST(LyreSplitTest, HighOverlapChainStaysTogether) {
  // Every edge shares nearly everything: Lemma 1 keeps one partition.
  core::VersionGraph g = ChainGraph(10, 100, 99);
  auto r = LyreSplit::Run(g, 0.9);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().partitioning.num_partitions(), 1u);
}

TEST(LyreSplitTest, DisjointChainSplitsApart) {
  // Zero-overlap edges: every version ends up alone for large δ.
  core::VersionGraph g = ChainGraph(8, 100, 0);
  auto r = LyreSplit::Run(g, 1.0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().partitioning.num_partitions(), 8u);
}

TEST(LyreSplitTest, InvalidDeltaRejected) {
  core::VersionGraph g = ChainGraph(3, 10, 5);
  EXPECT_FALSE(LyreSplit::Run(g, 0.0).ok());
  EXPECT_FALSE(LyreSplit::Run(g, 1.5).ok());
}

TEST(LyreSplitTest, PartitionsAreConnectedSubtreesCoveringAllVersions) {
  wl::DatasetSpec spec;
  spec.num_versions = 200;
  spec.num_branches = 20;
  spec.inserts_per_version = 50;
  spec.num_attrs = 4;
  wl::Dataset data = wl::Generate(spec);
  core::VersionGraph graph = data.BuildGraph();
  auto r = LyreSplit::Run(graph, 0.5);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::set<core::VersionId> seen;
  for (const auto& group : r.value().partitioning.groups) {
    for (core::VersionId vid : group) {
      EXPECT_TRUE(seen.insert(vid).second) << "version in two partitions";
    }
  }
  EXPECT_EQ(seen.size(), graph.num_versions());
}

TEST(LyreSplitTest, EstimatedStorageMatchesBipartiteOnTrees) {
  // For tree version graphs the tree-model |Rk| is exact.
  wl::DatasetSpec spec;
  spec.num_versions = 150;
  spec.num_branches = 15;
  spec.inserts_per_version = 40;
  spec.num_attrs = 3;
  spec.delete_fraction = 0.0;  // keep it a clean insert/update tree
  wl::Dataset data = wl::Generate(spec);
  auto r = LyreSplit::Run(data.BuildGraph(), 0.4);
  ASSERT_TRUE(r.ok());
  Partitioning p = r.value().partitioning;
  ASSERT_TRUE(p.ComputeCosts(data.BuildBipartite()).ok());
  EXPECT_EQ(p.storage_cost, r.value().estimated_storage);
  EXPECT_NEAR(p.avg_checkout_cost, r.value().estimated_checkout, 1e-9);
}

// Property test: Theorem 2's ((1+δ)^ℓ, 1/δ) guarantee on generated
// SCI workloads across δ values.
class LyreSplitGuaranteeTest : public ::testing::TestWithParam<double> {};

TEST_P(LyreSplitGuaranteeTest, ApproximationBoundsHold) {
  double delta = GetParam();
  wl::DatasetSpec spec;
  spec.num_versions = 300;
  spec.num_branches = 30;
  spec.inserts_per_version = 60;
  spec.num_attrs = 3;
  spec.seed = 1234;
  wl::Dataset data = wl::Generate(spec);
  BipartiteGraph bip = data.BuildBipartite();
  auto r = LyreSplit::Run(data.BuildGraph(), delta);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  Partitioning p = r.value().partitioning;
  ASSERT_TRUE(p.ComputeCosts(bip).ok());

  // Storage: S <= (1+δ)^ℓ |R|.
  double storage_bound =
      std::pow(1.0 + delta, r.value().levels) * static_cast<double>(bip.num_records());
  EXPECT_LE(static_cast<double>(p.storage_cost), storage_bound + 1e-6)
      << "levels=" << r.value().levels;

  // Checkout: Cavg <= (1/δ) |E|/|V|.
  double checkout_bound = bip.MinCheckoutCost() / delta;
  EXPECT_LE(p.avg_checkout_cost, checkout_bound + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(DeltaSweep, LyreSplitGuaranteeTest,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 1.0));

TEST(LyreSplitTest, BudgetSearchRespectsGamma) {
  wl::DatasetSpec spec;
  spec.num_versions = 250;
  spec.num_branches = 25;
  spec.inserts_per_version = 50;
  spec.num_attrs = 3;
  wl::Dataset data = wl::Generate(spec);
  core::VersionGraph graph = data.BuildGraph();
  for (double factor : {1.2, 1.5, 2.0, 3.0}) {
    int64_t gamma = static_cast<int64_t>(factor * static_cast<double>(data.num_records()));
    auto r = LyreSplit::RunForBudget(graph, gamma);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_LE(r.value().estimated_storage, gamma) << "factor " << factor;
    EXPECT_GT(r.value().search_iterations, 0);
  }
  // Infeasible budget rejected.
  EXPECT_FALSE(LyreSplit::RunForBudget(graph, data.num_records() / 2).ok());
}

TEST(LyreSplitTest, LargerBudgetNeverWorseCheckout) {
  wl::DatasetSpec spec;
  spec.num_versions = 200;
  spec.num_branches = 20;
  spec.inserts_per_version = 50;
  spec.num_attrs = 3;
  wl::Dataset data = wl::Generate(spec);
  core::VersionGraph graph = data.BuildGraph();
  double prev_checkout = 1e18;
  for (double factor : {1.1, 1.5, 2.0, 4.0}) {
    int64_t gamma = static_cast<int64_t>(factor * static_cast<double>(data.num_records()));
    auto r = LyreSplit::RunForBudget(graph, gamma);
    ASSERT_TRUE(r.ok());
    EXPECT_LE(r.value().estimated_checkout, prev_checkout * 1.05);
    prev_checkout = r.value().estimated_checkout;
  }
}

TEST(LyreSplitTest, DagInputsHandledViaTreeConversion) {
  wl::DatasetSpec spec;
  spec.kind = wl::WorkloadKind::kCur;
  spec.num_versions = 200;
  spec.num_branches = 20;
  spec.inserts_per_version = 40;
  spec.num_attrs = 3;
  wl::Dataset data = wl::Generate(spec);
  core::VersionGraph graph = data.BuildGraph();
  ASSERT_FALSE(graph.IsTree());  // CUR produces merges
  auto r = LyreSplit::Run(graph, 0.5);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  Partitioning p = r.value().partitioning;
  ASSERT_TRUE(p.ComputeCosts(data.BuildBipartite()).ok());
  EXPECT_GT(p.num_partitions(), 1u);
}

TEST(LyreSplitTest, WeightedFavorsHotVersions) {
  // A chain where the last version is checked out very frequently:
  // the weighted variant still covers every version exactly once.
  core::VersionGraph g = ChainGraph(12, 100, 50);
  std::map<core::VersionId, int64_t> freq;
  freq[12] = 50;
  auto r = LyreSplit::RunWeighted(g, freq, 0.5);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::set<core::VersionId> seen;
  for (const auto& group : r.value().partitioning.groups) {
    for (core::VersionId vid : group) {
      EXPECT_TRUE(seen.insert(vid).second);
    }
  }
  EXPECT_EQ(seen.size(), 12u);
}

// --- Baselines ---------------------------------------------------------

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wl::DatasetSpec spec;
    spec.num_versions = 120;
    spec.num_branches = 12;
    spec.inserts_per_version = 40;
    spec.num_attrs = 3;
    data_ = wl::Generate(spec);
    bip_ = data_.BuildBipartite();
  }
  wl::Dataset data_;
  BipartiteGraph bip_;
};

TEST_F(BaselineTest, AggloProducesValidPartitioning) {
  AggloOptions options;
  auto r = RunAgglo(bip_, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r.value().storage_cost, bip_.num_records());
  EXPECT_LE(r.value().storage_cost, bip_.num_edges());
}

TEST_F(BaselineTest, AggloCapacityBoundsPartitionSizes) {
  // A singleton version larger than BC cannot shrink, so the bound is
  // max(BC, largest single version).
  int64_t largest_version = 0;
  for (VersionId vid : bip_.versions()) {
    largest_version = std::max<int64_t>(
        largest_version,
        static_cast<int64_t>(bip_.RecordsOf(vid).value()->size()));
  }
  AggloOptions options;
  options.capacity = 500;
  auto r = RunAgglo(bip_, options);
  ASSERT_TRUE(r.ok());
  for (int64_t rk : r.value().partition_records) {
    EXPECT_LE(rk, std::max<int64_t>(500, largest_version));
  }
}

TEST_F(BaselineTest, KMeansProducesValidPartitioning) {
  KMeansOptions options;
  options.k = 6;
  auto r = RunKMeans(bip_, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_LE(r.value().num_partitions(), 6u);
  std::set<core::VersionId> seen;
  for (const auto& group : r.value().groups) {
    for (core::VersionId vid : group) seen.insert(vid);
  }
  EXPECT_EQ(seen.size(), bip_.num_versions());
}

TEST_F(BaselineTest, BudgetedVariantsRespectGamma) {
  int64_t gamma = 2 * bip_.num_records();
  int iters = 0;
  auto agglo = RunAggloForBudget(bip_, gamma, AggloOptions(), &iters);
  ASSERT_TRUE(agglo.ok()) << agglo.status().ToString();
  EXPECT_LE(agglo.value().storage_cost, gamma);
  EXPECT_GT(iters, 0);
  auto kmeans = RunKMeansForBudget(bip_, gamma, KMeansOptions(), &iters);
  ASSERT_TRUE(kmeans.ok()) << kmeans.status().ToString();
  EXPECT_LE(kmeans.value().storage_cost, gamma);
}

TEST_F(BaselineTest, LyreSplitDominatesBaselinesAtEqualStorage) {
  // The paper's §5.2 headline: at the same storage budget, LYRESPLIT's
  // checkout cost is no worse than AGGLO's or KMEANS's (within noise).
  int64_t gamma = 2 * bip_.num_records();
  auto lyre = LyreSplit::RunForBudget(data_.BuildGraph(), gamma);
  ASSERT_TRUE(lyre.ok());
  Partitioning lp = lyre.value().partitioning;
  ASSERT_TRUE(lp.ComputeCosts(bip_).ok());
  ASSERT_LE(lp.storage_cost, gamma);

  int iters = 0;
  auto agglo = RunAggloForBudget(bip_, gamma, AggloOptions(), &iters);
  ASSERT_TRUE(agglo.ok());
  auto kmeans = RunKMeansForBudget(bip_, gamma, KMeansOptions(), &iters);
  ASSERT_TRUE(kmeans.ok());

  EXPECT_LE(lp.avg_checkout_cost, agglo.value().avg_checkout_cost * 1.10);
  EXPECT_LE(lp.avg_checkout_cost, kmeans.value().avg_checkout_cost * 1.10);
}

}  // namespace
}  // namespace orpheus::part
