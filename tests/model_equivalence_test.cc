// Cross-model equivalence property tests: on randomly generated
// versioned workloads (SCI and CUR), all five CVD data models must
// agree on what every version contains — same rid sets, same rows.
// This is the strongest correctness check on the data-model layer:
// the representations differ radically (arrays per record, arrays per
// version, per-version tables, deltas with tombstones), yet their
// observable behaviour must be identical.

#include <gtest/gtest.h>

#include <set>

#include "bench/bench_util.h"
#include "core/data_model.h"
#include "partition/lyresplit.h"
#include "partition/partition_store.h"
#include "workload/generator.h"

namespace orpheus::core {
namespace {

struct Case {
  wl::WorkloadKind kind;
  uint64_t seed;
};

class ModelEquivalenceTest : public ::testing::TestWithParam<Case> {};

TEST_P(ModelEquivalenceTest, AllModelsAgreeOnEveryVersion) {
  wl::DatasetSpec spec;
  spec.kind = GetParam().kind;
  spec.seed = GetParam().seed;
  spec.num_versions = 40;
  spec.num_branches = 6;
  spec.inserts_per_version = 20;
  spec.num_attrs = 4;
  wl::Dataset data = wl::Generate(spec);

  constexpr DataModelKind kModels[] = {
      DataModelKind::kSplitByRlist, DataModelKind::kSplitByVlist,
      DataModelKind::kCombinedTable, DataModelKind::kDeltaBased,
      DataModelKind::kTablePerVersion,
  };

  // One database per model (their table namespaces would collide).
  std::vector<std::unique_ptr<rel::Database>> dbs;
  std::vector<std::unique_ptr<DataModel>> models;
  for (DataModelKind kind : kModels) {
    auto db = std::make_unique<rel::Database>();
    auto model = MakeDataModel(kind, db.get(), "cvd", data.DataSchema());
    ASSERT_TRUE(bench::PopulateModel(db.get(), model.get(), data).ok())
        << DataModelKindName(kind);
    dbs.push_back(std::move(db));
    models.push_back(std::move(model));
  }

  for (const wl::VersionSpec& v : data.versions()) {
    std::set<RecordId> expected(v.rids.begin(), v.rids.end());
    for (size_t m = 0; m < models.size(); ++m) {
      SCOPED_TRACE(std::string(DataModelKindName(kModels[m])) + " v" +
                   std::to_string(v.vid));
      // rid sets agree with the generator's ground truth.
      auto rids = models[m]->VersionRecords(v.vid);
      ASSERT_TRUE(rids.ok()) << rids.status().ToString();
      std::set<RecordId> actual(rids.value().begin(), rids.value().end());
      EXPECT_EQ(actual, expected);

      // Materialized rows carry the right contents.
      auto rows = models[m]->VersionRows(v.vid);
      ASSERT_TRUE(rows.ok()) << rows.status().ToString();
      ASSERT_EQ(rows.value().num_rows(), v.rids.size());
      int rid_col = rows.value().schema().FindColumn("rid");
      int a1_col = rows.value().schema().FindColumn("a1");
      ASSERT_GE(rid_col, 0);
      ASSERT_GE(a1_col, 0);
      for (size_t r = 0; r < rows.value().num_rows(); ++r) {
        int64_t rid = rows.value().column(rid_col).ints()[r];
        EXPECT_EQ(rows.value().column(a1_col).ints()[r],
                  wl::Dataset::AttrValue(rid, 1));
      }
    }
  }
}

TEST_P(ModelEquivalenceTest, StorageOrderingInvariants) {
  wl::DatasetSpec spec;
  spec.kind = GetParam().kind;
  spec.seed = GetParam().seed + 500;
  spec.num_versions = 50;
  spec.num_branches = 5;
  spec.inserts_per_version = 30;
  spec.num_attrs = 6;
  wl::Dataset data = wl::Generate(spec);

  auto storage_of = [&](DataModelKind kind) {
    rel::Database db;
    auto model = MakeDataModel(kind, &db, "cvd", data.DataSchema());
    EXPECT_TRUE(bench::PopulateModel(&db, model.get(), data).ok());
    return model->StorageBytes();
  };

  int64_t tpv = storage_of(DataModelKind::kTablePerVersion);
  int64_t rlist = storage_of(DataModelKind::kSplitByRlist);
  int64_t vlist = storage_of(DataModelKind::kSplitByVlist);
  int64_t combined = storage_of(DataModelKind::kCombinedTable);

  // Figure 3(a): table-per-version is far larger than the
  // deduplicating models (records appear in many versions each).
  EXPECT_GT(tpv, 3 * rlist);
  // The split/combined models are within a small factor of each other.
  EXPECT_LT(rlist, 2 * combined);
  EXPECT_LT(combined, 2 * vlist);
  EXPECT_LT(vlist, 2 * rlist + combined);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ModelEquivalenceTest,
    ::testing::Values(Case{wl::WorkloadKind::kSci, 11},
                      Case{wl::WorkloadKind::kSci, 222},
                      Case{wl::WorkloadKind::kCur, 33},
                      Case{wl::WorkloadKind::kCur, 4444}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return std::string(info.param.kind == wl::WorkloadKind::kSci ? "sci"
                                                                   : "cur") +
             "_" + std::to_string(info.param.seed);
    });

// Partition-store checkout agrees with the unpartitioned model for
// every version and every partitioning the optimizer can produce.
TEST(PartitionEquivalenceTest, PartitionedCheckoutMatchesModel) {
  wl::DatasetSpec spec;
  spec.num_versions = 60;
  spec.num_branches = 8;
  spec.inserts_per_version = 25;
  spec.num_attrs = 4;
  wl::Dataset data = wl::Generate(spec);

  rel::Database db;
  auto model = MakeDataModel(DataModelKind::kSplitByRlist, &db, "cvd",
                             data.DataSchema());
  ASSERT_TRUE(bench::PopulateModel(&db, model.get(), data).ok());
  auto* rlist = dynamic_cast<SplitByRlistModel*>(model.get());

  for (double delta : {0.2, 0.6, 1.0}) {
    auto split = part::LyreSplit::Run(data.BuildGraph(), delta);
    ASSERT_TRUE(split.ok());
    part::PartitionStore store(&db, "part" + std::to_string(int(delta * 10)),
                               rlist->DataTable());
    std::map<VersionId, std::vector<RecordId>> rids;
    for (const wl::VersionSpec& v : data.versions()) rids[v.vid] = v.rids;
    ASSERT_TRUE(store.Build(split.value().partitioning, std::move(rids)).ok());
    for (size_t i = 0; i < data.versions().size(); i += 7) {
      const wl::VersionSpec& v = data.versions()[i];
      std::string table =
          "eq" + std::to_string(int(delta * 10)) + "_" + std::to_string(i);
      ASSERT_TRUE(store.CheckoutVersion(v.vid, table).ok());
      auto rows = db.Execute("SELECT rid FROM " + table + " ORDER BY rid");
      ASSERT_TRUE(rows.ok());
      ASSERT_EQ(rows.value().num_rows(), v.rids.size());
      for (size_t r = 0; r < v.rids.size(); ++r) {
        EXPECT_EQ(rows.value().Get(r, 0).AsInt(), v.rids[r]);
      }
    }
  }
}

}  // namespace
}  // namespace orpheus::core
