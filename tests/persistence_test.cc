// Durable storage subsystem tests: snapshot round-trips for all five
// data models, WAL replay, checkpointing, and the recovery edge cases
// the contract promises to survive — torn WAL tails at every byte
// boundary of the last record, CRC-corrupted records, snapshot
// format-version mismatches, and empty-directory opens. The
// crash-prefix property test is the acceptance bar: recovery from any
// WAL-record prefix reproduces the corresponding engine state
// bit-identically, across --threads {1, 4}.

#include <sys/stat.h>

#include <cstring>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cli/command_processor.h"
#include "common/thread_pool.h"
#include "core/orpheus.h"
#include "storage/io_util.h"
#include "storage/manifest.h"
#include "storage/snapshot.h"
#include "storage/storage_manager.h"
#include "storage/wal.h"

namespace orpheus {
namespace {

using core::Cvd;
using core::CvdOptions;
using core::DataModelKind;
using core::OrpheusDB;
using core::VersionId;

// RAII temp directory.
class TempDir {
 public:
  TempDir() { path_ = storage::MakeTempDir("orpheus_persist_").ValueOrDie(); }
  ~TempDir() { (void)storage::RemoveDirRecursive(path_); }
  const std::string& path() const { return path_; }
  std::string Sub(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

std::string SnapPath(const std::string& dir) {
  return storage::StorageManager::SnapshotPath(dir);
}
std::string ManifestPath(const std::string& dir) {
  return storage::StorageManager::ManifestPath(dir);
}
std::string SegmentsDir(const std::string& dir) {
  return storage::StorageManager::SegmentsDir(dir);
}
std::string WalPath(const std::string& dir) {
  return storage::StorageManager::WalPath(dir);
}

// Byte-exact column/chunk comparison (doubles compared as bits).
void ExpectChunksEqual(const rel::Chunk& want, const rel::Chunk& got,
                       const std::string& context) {
  ASSERT_EQ(want.num_columns(), got.num_columns()) << context;
  ASSERT_EQ(want.num_rows(), got.num_rows()) << context;
  for (int c = 0; c < want.num_columns(); ++c) {
    const std::string ctx =
        context + " column " + want.schema().column(c).name;
    ASSERT_EQ(want.schema().column(c).name, got.schema().column(c).name) << ctx;
    ASSERT_EQ(want.schema().column(c).type, got.schema().column(c).type) << ctx;
    const rel::Column& a = want.column(c);
    const rel::Column& b = got.column(c);
    ASSERT_EQ(a.type(), b.type()) << ctx;
    for (size_t r = 0; r < want.num_rows(); ++r) {
      ASSERT_EQ(a.IsNull(r), b.IsNull(r)) << ctx << " row " << r;
    }
    switch (a.type()) {
      case rel::DataType::kInt64:
      case rel::DataType::kBool:
        ASSERT_EQ(a.ints(), b.ints()) << ctx;
        break;
      case rel::DataType::kDouble:
        ASSERT_EQ(a.doubles().size(), b.doubles().size()) << ctx;
        ASSERT_EQ(0, std::memcmp(a.doubles().data(), b.doubles().data(),
                                 a.doubles().size() * sizeof(double)))
            << ctx;
        break;
      case rel::DataType::kString:
        ASSERT_EQ(a.strings(), b.strings()) << ctx;
        break;
      case rel::DataType::kIntArray:
        ASSERT_EQ(a.arrays(), b.arrays()) << ctx;
        break;
      case rel::DataType::kNull:
        break;
    }
  }
}

// Full engine state reference: every table's payload plus the
// versioning surface. Captured after each operation in the crash
// tests, compared bit-exactly against recovered engines.
struct EngineRef {
  std::map<std::string, rel::Chunk> tables;
  std::vector<std::string> cvds;
  std::map<std::string, VersionId> latest;
  std::map<std::string, int64_t> total_records;
  std::map<std::string, std::vector<std::string>> staged;
  std::map<std::string, std::map<VersionId, rel::Chunk>> version_rows;
};

EngineRef Capture(OrpheusDB* db) {
  EngineRef ref;
  for (const std::string& name : db->db()->ListTables()) {
    ref.tables[name] = db->db()->GetTable(name).value()->data();
  }
  ref.cvds = db->ListCvds();
  for (const std::string& name : ref.cvds) {
    Cvd* cvd = db->GetCvd(name).value();
    ref.latest[name] = cvd->latest_version();
    ref.total_records[name] = cvd->total_records();
    for (const auto& [table, info] : cvd->staged_tables()) {
      ref.staged[name].push_back(table);
    }
    for (VersionId vid : cvd->graph().versions()) {
      ref.version_rows[name].emplace(
          vid, cvd->model()->VersionRows(vid).ValueOrDie());
    }
  }
  return ref;
}

void ExpectEngineEquals(const EngineRef& want, OrpheusDB* db,
                        const std::string& context) {
  std::vector<std::string> got_tables = db->db()->ListTables();
  std::vector<std::string> want_tables;
  for (const auto& [name, chunk] : want.tables) want_tables.push_back(name);
  ASSERT_EQ(want_tables, got_tables) << context;
  for (const auto& [name, chunk] : want.tables) {
    ExpectChunksEqual(chunk, db->db()->GetTable(name).value()->data(),
                      context + " table " + name);
  }
  ASSERT_EQ(want.cvds, db->ListCvds()) << context;
  for (const std::string& name : want.cvds) {
    Cvd* cvd = db->GetCvd(name).value();
    EXPECT_EQ(want.latest.at(name), cvd->latest_version()) << context;
    EXPECT_EQ(want.total_records.at(name), cvd->total_records()) << context;
    std::vector<std::string> staged;
    for (const auto& [table, info] : cvd->staged_tables()) {
      staged.push_back(table);
    }
    auto want_staged = want.staged.find(name);
    EXPECT_EQ(want_staged == want.staged.end() ? std::vector<std::string>{}
                                               : want_staged->second,
              staged)
        << context;
    for (const auto& [vid, rows] : want.version_rows.at(name)) {
      ExpectChunksEqual(rows, cvd->model()->VersionRows(vid).ValueOrDie(),
                        context + " " + name + " v" + std::to_string(vid));
    }
  }
}

// k INT (pk), name STRING, score DOUBLE.
rel::Chunk SampleRows(int n, int offset = 0) {
  rel::Schema schema;
  schema.AddColumn("k", rel::DataType::kInt64);
  schema.AddColumn("name", rel::DataType::kString);
  schema.AddColumn("score", rel::DataType::kDouble);
  rel::Chunk rows(schema);
  for (int i = 0; i < n; ++i) {
    rows.mutable_column(0).AppendInt(offset + i);
    rows.mutable_column(1).AppendString("item_" + std::to_string(offset + i));
    rows.mutable_column(2).AppendDouble(0.1 * (offset + i) - 3.5);
  }
  return rows;
}

void CopyFileIfExists(const std::string& from, const std::string& to) {
  if (!storage::FileExists(from)) return;
  std::string bytes = storage::ReadFileToString(from).ValueOrDie();
  ASSERT_TRUE(storage::WriteFileAtomic(to, bytes).ok());
}

// Clones the durable state — legacy snapshot, MANIFEST + segments,
// WAL — into a fresh directory (simulated crash copy; LOCK excluded).
void CloneDbDir(const std::string& from, const std::string& to) {
  ASSERT_TRUE(storage::CreateDirectories(to).ok());
  CopyFileIfExists(SnapPath(from), SnapPath(to));
  CopyFileIfExists(ManifestPath(from), ManifestPath(to));
  auto segments = storage::ListDir(SegmentsDir(from));
  if (segments.ok()) {
    ASSERT_TRUE(storage::CreateDirectories(SegmentsDir(to)).ok());
    for (const std::string& name : segments.value()) {
      CopyFileIfExists(SegmentsDir(from) + "/" + name,
                       SegmentsDir(to) + "/" + name);
    }
  }
  CopyFileIfExists(WalPath(from), WalPath(to));
}

// Offsets of WAL frame boundaries (end of each complete record).
std::vector<size_t> FrameBoundaries(const std::string& bytes) {
  std::vector<size_t> boundaries;
  size_t pos = 0;
  while (bytes.size() - pos >= 8) {
    uint32_t length;
    std::memcpy(&length, bytes.data() + pos, sizeof(length));
    if (length < 9 || length > bytes.size() - pos - 8) break;
    pos += 8 + length;
    boundaries.push_back(pos);
  }
  return boundaries;
}

// --- io_util unit tests -------------------------------------------------

TEST(IoUtil, Crc32MatchesReferenceVector) {
  // The standard CRC-32 check value.
  EXPECT_EQ(0xCBF43926u, storage::Crc32("123456789"));
  EXPECT_EQ(0u, storage::Crc32(std::string_view()));
  // Incremental == one-shot.
  EXPECT_EQ(storage::Crc32("123456789"),
            storage::Crc32(std::string_view("456789"),
                           storage::Crc32(std::string_view("123"))));
}

TEST(IoUtil, BinaryRoundTrip) {
  storage::BinaryWriter w;
  w.PutU8(7);
  w.PutU32(0xDEADBEEFu);
  w.PutU64(1ull << 60);
  w.PutI64(-42);
  w.PutDouble(0.1);
  w.PutString("hello\0world");  // embedded NUL truncated by literal: fine
  storage::BinaryReader r(w.data());
  EXPECT_EQ(7, r.GetU8());
  EXPECT_EQ(0xDEADBEEFu, r.GetU32());
  EXPECT_EQ(1ull << 60, r.GetU64());
  EXPECT_EQ(-42, r.GetI64());
  EXPECT_EQ(0.1, r.GetDouble());
  EXPECT_EQ("hello", r.GetString());
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(0u, r.remaining());
  // Reading past the end latches the error instead of crashing.
  EXPECT_EQ(0u, r.GetU64());
  EXPECT_FALSE(r.ok());
}

TEST(IoUtil, AtomicWriteAndReadBack) {
  TempDir dir;
  std::string path = dir.Sub("blob");
  ASSERT_TRUE(storage::WriteFileAtomic(path, "version 1").ok());
  ASSERT_TRUE(storage::WriteFileAtomic(path, "version 2").ok());
  EXPECT_EQ("version 2", storage::ReadFileToString(path).ValueOrDie());
  EXPECT_FALSE(storage::FileExists(path + ".tmp"));
}

// --- WAL unit tests -----------------------------------------------------

TEST(Wal, AppendParseRoundTripAndWatermark) {
  TempDir dir;
  std::string path = dir.Sub("wal.log");
  {
    auto writer = storage::WalWriter::Open(path, 1).ValueOrDie();
    ASSERT_TRUE(writer->Append(storage::WalRecordType::kCreateUser, "alice").ok());
    ASSERT_TRUE(writer->Append(storage::WalRecordType::kDropCvd, "t").ok());
    EXPECT_EQ(3u, writer->next_lsn());
  }
  std::string bytes = storage::ReadFileToString(path).ValueOrDie();
  size_t valid = 0;
  auto records = storage::ParseWal(bytes, 0, &valid);
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ(valid, bytes.size());
  EXPECT_EQ(1u, records[0].lsn);
  EXPECT_EQ(storage::WalRecordType::kCreateUser, records[0].type);
  EXPECT_EQ("alice", records[0].payload);
  EXPECT_EQ(2u, records[1].lsn);
  // The watermark skips already-snapshotted records.
  EXPECT_EQ(1u, storage::ParseWal(bytes, 1, &valid).size());
  EXPECT_EQ(0u, storage::ParseWal(bytes, 2, &valid).size());
}

TEST(Wal, TornTailStopsCleanly) {
  TempDir dir;
  std::string path = dir.Sub("wal.log");
  {
    auto writer = storage::WalWriter::Open(path, 1).ValueOrDie();
    ASSERT_TRUE(writer->Append(storage::WalRecordType::kCreateUser, "a").ok());
    ASSERT_TRUE(writer->Append(storage::WalRecordType::kCreateUser, "b").ok());
  }
  std::string bytes = storage::ReadFileToString(path).ValueOrDie();
  std::vector<size_t> boundaries = FrameBoundaries(bytes);
  ASSERT_EQ(2u, boundaries.size());
  for (size_t cut = boundaries[0]; cut < bytes.size(); ++cut) {
    size_t valid = 0;
    auto records =
        storage::ParseWal(std::string_view(bytes).substr(0, cut), 0, &valid);
    EXPECT_EQ(1u, records.size()) << "cut at " << cut;
    EXPECT_EQ(boundaries[0], valid) << "cut at " << cut;
  }
}

// --- Snapshot round trips ----------------------------------------------

class SnapshotAllModels : public ::testing::TestWithParam<DataModelKind> {};

TEST_P(SnapshotAllModels, RoundTripIsBitIdentical) {
  TempDir dir;
  EngineRef ref;
  {
    OrpheusDB db;
    CvdOptions options;
    options.model = GetParam();
    options.primary_key = {"k"};
    ASSERT_TRUE(db.InitCvd("t", SampleRows(8), options, "init").ok());
    // v2: modify + extend through the real staged-commit path.
    ASSERT_TRUE(db.Checkout("t", {1}, "w").ok());
    ASSERT_TRUE(db.db()->Execute("UPDATE w SET score = 9.25 WHERE k < 3").ok());
    ASSERT_TRUE(db.Commit("t", "w", "v2").ValueOrDie() == 2);
    // v3: schema evolution for the models that support it (the split
    // models); elsewhere stay within the fixed schema.
    ASSERT_TRUE(db.Checkout("t", {2}, "w2").ok());
    if (GetParam() == DataModelKind::kSplitByVlist ||
        GetParam() == DataModelKind::kSplitByRlist) {
      rel::Table* staged = db.db()->GetTable("w2").ValueOrDie();
      ASSERT_TRUE(staged->AddColumn("flag", rel::DataType::kInt64).ok());
      staged->mutable_chunk().mutable_column(4).Set(0, rel::Value::Int(1));
    } else {
      ASSERT_TRUE(
          db.db()->Execute("UPDATE w2 SET name = 'renamed' WHERE k = 5").ok());
    }
    ASSERT_TRUE(db.Commit("t", "w2", "v3").ValueOrDie() == 3);
    // Leave a staged checkout behind: the snapshot must carry it.
    ASSERT_TRUE(db.Checkout("t", {3}, "pending").ok());
    ASSERT_TRUE(db.CreateUser("alice").ok());
    ASSERT_TRUE(db.Login("alice").ok());

    ref = Capture(&db);
    ASSERT_TRUE(db.SaveSnapshot(dir.path()).ok());
  }
  OrpheusDB restored;
  ASSERT_TRUE(restored.Open(dir.path()).ok());
  ExpectEngineEquals(ref, &restored, "restored");
  EXPECT_EQ("alice", restored.WhoAmI());
  // The restored engine is fully operational: commit the surviving
  // staged table and check out the result.
  VersionId v4 = restored.Commit("t", "pending", "v4").ValueOrDie();
  EXPECT_EQ(4, v4);
  EXPECT_EQ(8u, restored.GetCvd("t")
                    .ValueOrDie()
                    ->model()
                    ->VersionRows(v4)
                    .ValueOrDie()
                    .num_rows());
}

INSTANTIATE_TEST_SUITE_P(AllModels, SnapshotAllModels,
                         ::testing::Values(DataModelKind::kTablePerVersion,
                                           DataModelKind::kCombinedTable,
                                           DataModelKind::kSplitByVlist,
                                           DataModelKind::kSplitByRlist,
                                           DataModelKind::kDeltaBased));

// --- WAL recovery -------------------------------------------------------

TEST(Persistence, WalReplayRestoresCommitsExactly) {
  TempDir dir;
  EngineRef ref;
  {
    OrpheusDB db;
    ASSERT_TRUE(db.Open(dir.path()).ok());
    CvdOptions options;
    options.primary_key = {"k"};
    ASSERT_TRUE(db.InitCvd("t", SampleRows(6), options, "init").ok());
    ASSERT_TRUE(db.Checkout("t", {1}, "w").ok());
    // Edit the checkout before committing: the commit record must
    // carry the edited rows, not the checkout result.
    ASSERT_TRUE(db.db()->Execute("UPDATE w SET score = -1.5 WHERE k = 2").ok());
    ASSERT_EQ(2, db.Commit("t", "w", "edited").ValueOrDie());
    ref = Capture(&db);
  }
  ASSERT_FALSE(storage::FileExists(SnapPath(dir.path())));  // WAL only
  EngineRef ref2;
  {
    OrpheusDB recovered;
    ASSERT_TRUE(recovered.Open(dir.path()).ok());
    ExpectEngineEquals(ref, &recovered, "wal replay");
    // While this engine lives it holds the directory LOCK: a second
    // open must be refused cleanly, not corrupt the WAL.
    OrpheusDB contender;
    EXPECT_FALSE(contender.Open(dir.path()).ok());
    // And the recovered engine keeps logging: another commit survives
    // a second reopen (after this engine closes and drops the LOCK).
    ASSERT_TRUE(recovered.Checkout("t", {2}, "w2").ok());
    ASSERT_EQ(3, recovered.Commit("t", "w2", "post-recovery").ValueOrDie());
    ref2 = Capture(&recovered);
  }
  OrpheusDB recovered2;
  ASSERT_TRUE(recovered2.Open(dir.path()).ok());
  ExpectEngineEquals(ref2, &recovered2, "second recovery");
}

TEST(Persistence, MergingCheckoutAndDurableVerbsReplay) {
  TempDir dir;
  EngineRef ref;
  {
    OrpheusDB db;
    ASSERT_TRUE(db.Open(dir.path()).ok());
    ASSERT_TRUE(db.CreateUser("bob").ok());
    ASSERT_TRUE(db.Login("bob").ok());
    CvdOptions options;
    options.primary_key = {"k"};
    ASSERT_TRUE(db.InitCvd("t", SampleRows(5), options, "init").ok());
    ASSERT_TRUE(db.InitCvd("gone", SampleRows(3), options, "init2").ok());
    ASSERT_TRUE(db.Checkout("t", {1}, "a").ok());
    ASSERT_TRUE(
        db.db()->Execute("UPDATE a SET name = 'x' WHERE k = 0").ok());
    ASSERT_EQ(2, db.Commit("t", "a", "v2").ValueOrDie());
    // Merging checkout across both branches, then commit.
    ASSERT_TRUE(db.Checkout("t", {2, 1}, "m").ok());
    ASSERT_EQ(3, db.Commit("t", "m", "merge").ValueOrDie());
    // A discarded staging table and a dropped CVD must replay too.
    ASSERT_TRUE(db.Checkout("t", {3}, "scratch").ok());
    ASSERT_TRUE(db.DiscardStaged("t", "scratch").ok());
    ASSERT_TRUE(db.DropCvd("gone").ok());
    ref = Capture(&db);
  }
  OrpheusDB recovered;
  ASSERT_TRUE(recovered.Open(dir.path()).ok());
  ExpectEngineEquals(ref, &recovered, "verbs replay");
  EXPECT_EQ("bob", recovered.WhoAmI());
  EXPECT_FALSE(recovered.GetCvd("gone").ok());
}

TEST(Persistence, CheckpointTruncatesWalAndRecovers) {
  TempDir dir;
  EngineRef ref;
  {
    OrpheusDB db;
    ASSERT_TRUE(db.Open(dir.path()).ok());
    CvdOptions options;
    ASSERT_TRUE(db.InitCvd("t", SampleRows(6), options, "init").ok());
    ASSERT_TRUE(db.Checkout("t", {1}, "w").ok());
    ASSERT_EQ(2, db.Commit("t", "w", "v2").ValueOrDie());
    ASSERT_TRUE(db.Checkpoint().ok());
    EXPECT_EQ(0, storage::FileSize(WalPath(dir.path())).ValueOrDie());
    // Post-checkpoint activity lands in the (fresh) WAL.
    ASSERT_TRUE(db.Checkout("t", {2}, "w2").ok());
    ASSERT_EQ(3, db.Commit("t", "w2", "v3").ValueOrDie());
    ref = Capture(&db);
  }
  EXPECT_GT(storage::FileSize(WalPath(dir.path())).ValueOrDie(), 0);
  OrpheusDB recovered;
  ASSERT_TRUE(recovered.Open(dir.path()).ok());
  ExpectEngineEquals(ref, &recovered, "checkpoint + tail");
}

TEST(Persistence, PartitionStoreSurvivesWalAndSnapshot) {
  TempDir dir;
  std::vector<std::vector<VersionId>> groups;
  EngineRef ref;
  {
    OrpheusDB db;
    ASSERT_TRUE(db.Open(dir.path()).ok());
    CvdOptions options;
    options.primary_key = {"k"};
    ASSERT_TRUE(db.InitCvd("t", SampleRows(6), options, "init").ok());
    for (VersionId v = 1; v <= 2; ++v) {
      std::string w = "w" + std::to_string(v);
      ASSERT_TRUE(db.Checkout("t", {v}, w).ok());
      ASSERT_TRUE(db.db()
                      ->Execute("UPDATE " + w + " SET score = " +
                                std::to_string(v) + ".5 WHERE k = 1")
                      .ok());
      ASSERT_EQ(v + 1, db.Commit("t", w, "step").ValueOrDie());
    }
    Cvd* cvd = db.GetCvd("t").ValueOrDie();
    auto* model = dynamic_cast<core::SplitByRlistModel*>(cvd->model());
    ASSERT_NE(nullptr, model);
    part::Partitioning partitioning;
    partitioning.groups = {{1, 2}, {3}};
    std::map<VersionId, std::vector<core::RecordId>> version_rids;
    for (VersionId v : {1, 2, 3}) {
      version_rids[v] = model->VersionRecords(v).ValueOrDie();
    }
    auto store = std::make_unique<part::PartitionStore>(db.db(), "t",
                                                        model->DataTable());
    ASSERT_TRUE(store->Build(partitioning, std::move(version_rids)).ok());
    ASSERT_TRUE(db.AttachPartitionStore("t", std::move(store)).ok());
    groups = db.partition_store("t")->VersionGroups();
    ref = Capture(&db);
  }
  // Pass 1: recovery must rebuild the store from the WAL record.
  {
    OrpheusDB recovered;
    ASSERT_TRUE(recovered.Open(dir.path()).ok());
    ExpectEngineEquals(ref, &recovered, "wal partition recovery");
    part::PartitionStore* store = recovered.partition_store("t");
    ASSERT_NE(nullptr, store);
    EXPECT_EQ(groups, store->VersionGroups());
    // Routing goes through the partition tables.
    auto tables = store->TablesFor(3).ValueOrDie();
    EXPECT_EQ(tables.first, "t_p1_data");
    // Checkout override serves the restored partitions.
    Cvd* cvd = recovered.GetCvd("t").ValueOrDie();
    ASSERT_TRUE(cvd->Checkout({3}, "out").ok());
    ExpectChunksEqual(ref.version_rows.at("t").at(3),
                      recovered.db()->GetTable("out").ValueOrDie()->data(),
                      "partitioned checkout");
    // Versioned SQL resolves through the restored store.
    rel::Chunk q =
        recovered.Run("SELECT k FROM VERSION 2 OF CVD t").ValueOrDie();
    EXPECT_EQ(6u, q.num_rows());
    ASSERT_TRUE(recovered.Checkpoint().ok());
  }
  // Pass 2: after the checkpoint the store must come back from the
  // snapshot codec path instead.
  OrpheusDB again;
  ASSERT_TRUE(again.Open(dir.path()).ok());
  part::PartitionStore* store = again.partition_store("t");
  ASSERT_NE(nullptr, store);
  EXPECT_EQ(groups, store->VersionGroups());
  Cvd* cvd = again.GetCvd("t").ValueOrDie();
  ASSERT_TRUE(cvd->Checkout({2}, "out2").ok());
  ExpectChunksEqual(ref.version_rows.at("t").at(2),
                    again.db()->GetTable("out2").ValueOrDie()->data(),
                    "snapshot partition checkout");
}

// --- Recovery edge cases ------------------------------------------------

TEST(Persistence, TornWalTailAtEveryByteOfLastRecord) {
  TempDir dir;
  EngineRef after_first;
  EngineRef after_second;
  {
    OrpheusDB db;
    ASSERT_TRUE(db.Open(dir.path()).ok());
    CvdOptions options;
    ASSERT_TRUE(db.InitCvd("t", SampleRows(4), options, "init").ok());
    ASSERT_TRUE(db.Checkout("t", {1}, "w").ok());
    ASSERT_EQ(2, db.Commit("t", "w", "v2").ValueOrDie());
    after_first = Capture(&db);
    ASSERT_TRUE(db.Checkout("t", {2}, "w2").ok());
    ASSERT_TRUE(db.db()->Execute("UPDATE w2 SET score = 7.0 WHERE k = 3").ok());
    ASSERT_EQ(3, db.Commit("t", "w2", "v3").ValueOrDie());
    after_second = Capture(&db);
  }
  std::string bytes =
      storage::ReadFileToString(WalPath(dir.path())).ValueOrDie();
  std::vector<size_t> boundaries = FrameBoundaries(bytes);
  ASSERT_GE(boundaries.size(), 2u);
  size_t last_start = boundaries[boundaries.size() - 2];
  // The state a cut inside the last record must recover: everything up
  // to and including the penultimate record (the w2 checkout).
  EngineRef expect_torn = after_first;
  {
    TempDir probe;
    CloneDbDir(dir.path(), probe.Sub("db"));
    ASSERT_TRUE(
        storage::TruncateFile(WalPath(probe.Sub("db")), last_start).ok());
    OrpheusDB base;
    ASSERT_TRUE(base.Open(probe.Sub("db")).ok());
    expect_torn = Capture(&base);
  }
  for (size_t cut = last_start; cut < bytes.size(); ++cut) {
    TempDir probe;
    std::string clone = probe.Sub("db");
    CloneDbDir(dir.path(), clone);
    ASSERT_TRUE(storage::TruncateFile(WalPath(clone), cut).ok());
    {
      OrpheusDB recovered;
      ASSERT_TRUE(recovered.Open(clone).ok()) << "cut at " << cut;
      ExpectEngineEquals(expect_torn, &recovered,
                         "cut at " + std::to_string(cut));
      // The torn tail was discarded on open, so new appends land on a
      // clean boundary and a re-open still works.
      EXPECT_LE(storage::FileSize(WalPath(clone)).ValueOrDie(),
                static_cast<int64_t>(cut));
      ASSERT_TRUE(recovered.Checkout("t", {2}, "fresh").ok());
    }
    OrpheusDB reopened;
    ASSERT_TRUE(reopened.Open(clone).ok()) << "reopen after cut " << cut;
  }
  // A cut exactly at the end recovers the full state.
  OrpheusDB full;
  ASSERT_TRUE(full.Open(dir.path()).ok());
  ExpectEngineEquals(after_second, &full, "no cut");
}

TEST(Persistence, CrcCorruptedRecordStopsReplayCleanly) {
  TempDir dir;
  EngineRef after_first;
  {
    OrpheusDB db;
    ASSERT_TRUE(db.Open(dir.path()).ok());
    CvdOptions options;
    ASSERT_TRUE(db.InitCvd("t", SampleRows(4), options, "init").ok());
    ASSERT_TRUE(db.Checkout("t", {1}, "w").ok());
    ASSERT_EQ(2, db.Commit("t", "w", "v2").ValueOrDie());
  }
  std::string bytes =
      storage::ReadFileToString(WalPath(dir.path())).ValueOrDie();
  std::vector<size_t> boundaries = FrameBoundaries(bytes);
  ASSERT_GE(boundaries.size(), 3u);
  // Corrupt one payload byte of the final (commit) record.
  {
    std::string corrupt = bytes;
    corrupt[boundaries[boundaries.size() - 2] + 8 + 3] ^= 0x40;
    TempDir probe;
    std::string clone = probe.Sub("db");
    CloneDbDir(dir.path(), clone);
    ASSERT_TRUE(storage::WriteFileAtomic(WalPath(clone), corrupt).ok());
    OrpheusDB recovered;
    ASSERT_TRUE(recovered.Open(clone).ok());
    // Last durable state before the corrupt record: checkout staged,
    // commit lost.
    EXPECT_EQ(1, recovered.GetCvd("t").ValueOrDie()->latest_version());
    EXPECT_EQ(1u, recovered.GetCvd("t").ValueOrDie()->staged_tables().count("w"));
  }
  // Corrupt the first record: nothing replays, the engine opens empty.
  {
    std::string corrupt = bytes;
    corrupt[8 + 10] ^= 0x01;
    TempDir probe;
    std::string clone = probe.Sub("db");
    CloneDbDir(dir.path(), clone);
    ASSERT_TRUE(storage::WriteFileAtomic(WalPath(clone), corrupt).ok());
    OrpheusDB recovered;
    ASSERT_TRUE(recovered.Open(clone).ok());
    EXPECT_TRUE(recovered.ListCvds().empty());
  }
}

TEST(Persistence, SnapshotFormatVersionMismatchFailsClearly) {
  TempDir dir;
  {
    OrpheusDB db;
    CvdOptions options;
    ASSERT_TRUE(db.InitCvd("t", SampleRows(3), options, "init").ok());
    ASSERT_TRUE(db.SaveSnapshot(dir.path()).ok());
  }
  std::string blob = storage::ReadFileToString(SnapPath(dir.path())).ValueOrDie();
  blob[storage::kSnapshotVersionOffset] = 99;
  ASSERT_TRUE(storage::WriteFileAtomic(SnapPath(dir.path()), blob).ok());
  OrpheusDB db;
  Status st = db.Open(dir.path());
  ASSERT_FALSE(st.ok());
  EXPECT_NE(std::string::npos, st.message().find("version"))
      << st.ToString();
}

TEST(Persistence, CorruptSnapshotBodyFailsWithoutCrashing) {
  TempDir dir;
  {
    OrpheusDB db;
    CvdOptions options;
    ASSERT_TRUE(db.InitCvd("t", SampleRows(3), options, "init").ok());
    ASSERT_TRUE(db.SaveSnapshot(dir.path()).ok());
  }
  std::string blob = storage::ReadFileToString(SnapPath(dir.path())).ValueOrDie();
  blob[blob.size() / 2] ^= 0x10;
  ASSERT_TRUE(storage::WriteFileAtomic(SnapPath(dir.path()), blob).ok());
  OrpheusDB db;
  Status st = db.Open(dir.path());
  ASSERT_FALSE(st.ok());
  EXPECT_NE(std::string::npos, st.message().find("checksum")) << st.ToString();
}

TEST(Persistence, EmptyDirectoryOpensFresh) {
  TempDir dir;
  std::string nested = dir.Sub("a/b/dbdir");
  {
    OrpheusDB db;
    ASSERT_TRUE(db.Open(nested).ok());
    EXPECT_TRUE(db.ListCvds().empty());
    EXPECT_TRUE(db.durable());
    EXPECT_EQ(nested, db.storage_dir());
    CvdOptions options;
    ASSERT_TRUE(db.InitCvd("t", SampleRows(3), options, "init").ok());
  }
  OrpheusDB again;
  ASSERT_TRUE(again.Open(nested).ok());
  EXPECT_EQ(std::vector<std::string>{"t"}, again.ListCvds());
}

TEST(Persistence, OpenRequiresFreshEngine) {
  TempDir dir;
  OrpheusDB db;
  CvdOptions options;
  ASSERT_TRUE(db.InitCvd("t", SampleRows(3), options, "init").ok());
  Status st = db.Open(dir.path());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, st.code());
  // And a second Open on a durable engine is rejected too.
  OrpheusDB db2;
  ASSERT_TRUE(db2.Open(dir.Sub("x")).ok());
  EXPECT_FALSE(db2.Open(dir.Sub("y")).ok());
  // Users created before Open would never reach the log, so a later
  // logged Login could reference a user replay cannot rebuild — the
  // open must refuse up front.
  OrpheusDB db3;
  ASSERT_TRUE(db3.CreateUser("bob").ok());
  Status st3 = db3.Open(dir.Sub("z"));
  ASSERT_FALSE(st3.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, st3.code());
}

TEST(Persistence, CsvStagingNamesSkipReplayedTables) {
  TempDir dir;
  // Session 1: a checkout staged under the CLI's generated csvstage
  // name, left uncommitted.
  {
    OrpheusDB db;
    ASSERT_TRUE(db.Open(dir.path()).ok());
    CvdOptions options;
    ASSERT_TRUE(db.InitCvd("t", SampleRows(3), options, "init").ok());
    ASSERT_TRUE(db.Checkout("t", {1}, "t_csvstage_0").ok());
  }
  // Session 2: replay recreates t_csvstage_0; a fresh CLI processor's
  // counter restarts at 0 and must skip over it.
  cli::CommandProcessor processor;
  ASSERT_TRUE(processor.Execute("open " + dir.path()).ok());
  std::string csv = dir.Sub("out.csv");
  auto result = processor.Execute("checkout t -v 1 -f " + csv);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(processor.orpheus()->db()->HasTable("t_csvstage_1"));
}

// --- The acceptance property: crash at any WAL-record prefix -----------

TEST(Persistence, CrashAtAnyWalRecordPrefixRecoversExactly) {
  for (int threads : {1, 4}) {
    SetExecThreads(threads);
    TempDir dir;
    std::vector<EngineRef> refs;  // refs[j] = state after j WAL records
    {
      OrpheusDB db;
      ASSERT_TRUE(db.Open(dir.path()).ok());
      refs.push_back(Capture(&db));  // 0 records: empty engine
      CvdOptions options;
      options.primary_key = {"k"};
      // Each verb below emits exactly one WAL record; capture after
      // every one so record boundary j maps to refs[j].
      ASSERT_TRUE(db.CreateUser("alice").ok());
      refs.push_back(Capture(&db));
      ASSERT_TRUE(db.InitCvd("t", SampleRows(5), options, "init").ok());
      refs.push_back(Capture(&db));
      ASSERT_TRUE(db.Checkout("t", {1}, "w").ok());
      refs.push_back(Capture(&db));
      ASSERT_TRUE(
          db.db()->Execute("UPDATE w SET name = 'edit' WHERE k = 1").ok());
      ASSERT_EQ(2, db.Commit("t", "w", "v2").ValueOrDie());
      refs.push_back(Capture(&db));
      ASSERT_TRUE(db.Checkout("t", {2, 1}, "m").ok());
      refs.push_back(Capture(&db));
      ASSERT_EQ(3, db.Commit("t", "m", "merge").ValueOrDie());
      refs.push_back(Capture(&db));
      ASSERT_TRUE(db.Checkout("t", {3}, "junk").ok());
      refs.push_back(Capture(&db));
      ASSERT_TRUE(db.DiscardStaged("t", "junk").ok());
      refs.push_back(Capture(&db));
    }
    std::string bytes =
        storage::ReadFileToString(WalPath(dir.path())).ValueOrDie();
    std::vector<size_t> boundaries = FrameBoundaries(bytes);
    ASSERT_EQ(refs.size() - 1, boundaries.size());
    for (size_t j = 0; j <= boundaries.size(); ++j) {
      size_t cut = j == 0 ? 0 : boundaries[j - 1];
      TempDir probe;
      std::string clone = probe.Sub("db");
      CloneDbDir(dir.path(), clone);
      ASSERT_TRUE(storage::TruncateFile(WalPath(clone), cut).ok());
      OrpheusDB recovered;
      ASSERT_TRUE(recovered.Open(clone).ok())
          << "threads=" << threads << " prefix=" << j;
      ExpectEngineEquals(refs[j], &recovered,
                         "threads=" + std::to_string(threads) + " prefix=" +
                             std::to_string(j));
    }
  }
  SetExecThreads(1);
}

// SaveSnapshot into the open durable directory would desync snapshot
// and WAL; the API must refuse and point at Checkpoint.
TEST(Persistence, SaveIntoOpenDirectoryIsRejected) {
  TempDir dir;
  OrpheusDB db;
  ASSERT_TRUE(db.Open(dir.path()).ok());
  Status st = db.SaveSnapshot(dir.path());
  ASSERT_FALSE(st.ok());
  EXPECT_NE(std::string::npos, st.message().find("Checkpoint"));
  // Aliases of the same directory must be caught too — a watermark-0
  // snapshot inside the live dir would double-replay the WAL.
  size_t slash = dir.path().find_last_of('/');
  std::string alias = dir.path().substr(0, slash + 1) + "./" +
                      dir.path().substr(slash + 1);
  Status st2 = db.SaveSnapshot(alias);
  ASSERT_FALSE(st2.ok());
  EXPECT_NE(std::string::npos, st2.message().find("Checkpoint"));
  // A genuinely different directory still works.
  EXPECT_TRUE(db.SaveSnapshot(dir.Sub("elsewhere")).ok());
}

// --- Directory LOCK ------------------------------------------------------

TEST(Persistence, LockFileRefusesSecondOpenCleanly) {
  TempDir dir;
  OrpheusDB first;
  ASSERT_TRUE(first.Open(dir.path()).ok());
  EXPECT_TRUE(storage::FileExists(dir.path() + "/LOCK"));

  // Second engine on the same directory: clean Unavailable, no crash,
  // and the holder is named in the message.
  OrpheusDB second;
  Status st = second.Open(dir.path());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(StatusCode::kUnavailable, st.code());
  EXPECT_NE(std::string::npos, st.message().find("locked"));
  // The refused engine stays fresh and can open elsewhere.
  ASSERT_TRUE(second.Open(dir.Sub("other")).ok());
}

TEST(Persistence, LockFileReleasedOnClose) {
  TempDir dir;
  {
    OrpheusDB db;
    ASSERT_TRUE(db.Open(dir.path()).ok());
  }
  // The LOCK file remains on disk (flock, not existence, is the
  // guard), but the lock itself died with the holder.
  EXPECT_TRUE(storage::FileExists(dir.path() + "/LOCK"));
  OrpheusDB next;
  EXPECT_TRUE(next.Open(dir.path()).ok());
}

TEST(Persistence, RawStorageManagerRespectsLock) {
  TempDir dir;
  OrpheusDB holder;
  ASSERT_TRUE(holder.Open(dir.path()).ok());
  OrpheusDB probe;
  auto second = storage::StorageManager::Open(dir.path(), &probe);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(StatusCode::kUnavailable, second.status().code());
}

// --- Automatic checkpointing ---------------------------------------------

TEST(Persistence, AutoCheckpointTriggersOnWalBytes) {
  TempDir dir;
  EngineRef ref;
  {
    OrpheusDB db;
    ASSERT_TRUE(db.Open(dir.path()).ok());
    // Tiny byte bound: every logged verb beyond the first handful
    // folds the WAL into a snapshot.
    db.storage()->SetAutoCheckpointPolicy(/*max_wal_bytes=*/256,
                                          /*max_wal_records=*/0);
    CvdOptions options;
    options.primary_key = {"k"};
    ASSERT_TRUE(db.InitCvd("t", SampleRows(6), options, "init").ok());
    for (int i = 0; i < 4; ++i) {
      std::string w = "w" + std::to_string(i);
      ASSERT_TRUE(db.Checkout("t", {1}, w).ok());
      ASSERT_TRUE(db.Commit("t", w, "round").ok());
    }
    EXPECT_TRUE(storage::FileExists(ManifestPath(dir.path())));
    EXPECT_LE(db.storage()->wal_bytes(), 256u + 1024u);
    ref = Capture(&db);
  }
  // Snapshot + residual WAL recover the exact state.
  OrpheusDB recovered;
  ASSERT_TRUE(recovered.Open(dir.path()).ok());
  ExpectEngineEquals(ref, &recovered, "auto-checkpoint recovery");
}

TEST(Persistence, AutoCheckpointTriggersOnRecordCount) {
  TempDir dir;
  OrpheusDB db;
  ASSERT_TRUE(db.Open(dir.path()).ok());
  db.storage()->SetAutoCheckpointPolicy(/*max_wal_bytes=*/0,
                                        /*max_wal_records=*/3);
  CvdOptions options;
  options.primary_key = {"k"};
  ASSERT_TRUE(db.InitCvd("t", SampleRows(4), options, "init").ok());  // 1
  ASSERT_TRUE(db.Checkout("t", {1}, "w").ok());                       // 2
  ASSERT_TRUE(db.Commit("t", "w", "c1").ok());                        // 3
  EXPECT_FALSE(storage::FileExists(ManifestPath(dir.path())));
  ASSERT_TRUE(db.Checkout("t", {1}, "w2").ok());  // 4th record: trips
  EXPECT_TRUE(storage::FileExists(ManifestPath(dir.path())));
  EXPECT_EQ(0u, db.storage()->wal_records());
}

TEST(Persistence, AutoCheckpointCountsSurviveReopen) {
  TempDir dir;
  {
    OrpheusDB db;
    ASSERT_TRUE(db.Open(dir.path()).ok());
    CvdOptions options;
    options.primary_key = {"k"};
    ASSERT_TRUE(db.InitCvd("t", SampleRows(4), options, "init").ok());
    ASSERT_TRUE(db.Checkout("t", {1}, "w").ok());
    EXPECT_EQ(2u, db.storage()->wal_records());
  }
  OrpheusDB db;
  ASSERT_TRUE(db.Open(dir.path()).ok());
  // The reopened writer knows how much live WAL it sits on, so the
  // policy keeps working across restarts.
  EXPECT_EQ(2u, db.storage()->wal_records());
  EXPECT_GT(db.storage()->wal_bytes(), 0u);
  db.storage()->SetAutoCheckpointPolicy(0, 2);
  ASSERT_TRUE(db.Checkout("t", {1}, "w2").ok());
  EXPECT_EQ(0u, db.storage()->wal_records());  // tripped and reset
  EXPECT_TRUE(storage::FileExists(ManifestPath(dir.path())));
}

// --- Fault-injected commit-group crash matrix ----------------------------
//
// Group commit batches several records into ONE write() + ONE
// fdatasync, so a crash mid-batch can tear the WAL at any byte of the
// batch buffer. The deterministic fault hooks (io_util.h) let these
// tests fail the batch write at exact byte offsets — and the failed
// sync — instead of hoping a kill lands there. The contract: recovery
// keeps exactly the whole records below the tear, truncates the rest,
// and a poisoned writer refuses to append past the damage.

// Disarms fault injection even when an ASSERT unwinds the test early.
struct FaultGuard {
  ~FaultGuard() { storage::DisarmIoFaults(); }
};

// The 4-record schedule every crash-matrix run replays identically:
// checkout, commit, checkout, commit against CVD "t" (version 1 is
// seeded and synced before the batch). With group commit on, all four
// records stay queued. `refs[k]` = in-memory state after k records.
void ApplyGroupSchedule(OrpheusDB* db, std::vector<EngineRef>* refs) {
  refs->push_back(Capture(db));
  ASSERT_TRUE(db->Checkout("t", {1}, "a").ok());
  refs->push_back(Capture(db));
  ASSERT_EQ(2, db->Commit("t", "a", "c1").ValueOrDie());
  refs->push_back(Capture(db));
  ASSERT_TRUE(db->Checkout("t", {1}, "b").ok());
  refs->push_back(Capture(db));
  ASSERT_EQ(3, db->Commit("t", "b", "c2").ValueOrDie());
  refs->push_back(Capture(db));
}

void SeedForGroupSchedule(OrpheusDB* db) {
  CvdOptions options;
  options.primary_key = {"k"};
  ASSERT_TRUE(db->InitCvd("t", SampleRows(6), options, "init").ok());
  db->storage()->SetGroupCommit(true);
}

TEST(Persistence, CommitGroupTornWriteCrashMatrix) {
  for (int threads : {1, 4}) {
    SetExecThreads(threads);
    // Reference run: same schedule, no faults. Yields the per-record
    // state refs and — because the WAL encoding is deterministic — the
    // frame boundaries every matrix run below will reproduce.
    TempDir ref_dir;
    std::vector<EngineRef> refs;
    {
      OrpheusDB db;
      ASSERT_TRUE(db.Open(ref_dir.path()).ok());
      SeedForGroupSchedule(&db);
      ApplyGroupSchedule(&db, &refs);
      ASSERT_TRUE(db.storage()->FlushPending().ok());
    }
    ASSERT_EQ(5u, refs.size());
    std::string bytes =
        storage::ReadFileToString(WalPath(ref_dir.path())).ValueOrDie();
    std::vector<size_t> boundaries = FrameBoundaries(bytes);
    ASSERT_EQ(5u, boundaries.size());  // init + the 4 batched records
    // Byte offsets inside the batch buffer (the init frame precedes it
    // in the file but not in the AppendBatch write).
    const size_t batch_start = boundaries[0];
    const int64_t batch_len = static_cast<int64_t>(bytes.size() - batch_start);
    std::vector<int64_t> rel_bounds;
    for (size_t i = 1; i < boundaries.size(); ++i) {
      rel_bounds.push_back(static_cast<int64_t>(boundaries[i] - batch_start));
    }

    // Tear points: around every frame boundary, mid-frame, nothing
    // written, and the full buffer (crash between write and sync).
    std::set<int64_t> cuts = {-1, 0, 1, batch_len};
    int64_t prev = 0;
    for (int64_t b : rel_bounds) {
      cuts.insert(b - 1);
      cuts.insert(b);
      cuts.insert(b + 1);
      cuts.insert(prev + (b - prev) / 2);
      prev = b;
    }

    TempDir matrix_root;
    for (int64_t cut : cuts) {
      if (cut < -1 || cut > batch_len) continue;
      const std::string dir =
          matrix_root.Sub("cut_" + std::to_string(threads) + "_" +
                          std::to_string(cut + 1));
      {
        OrpheusDB db;
        ASSERT_TRUE(db.Open(dir).ok());
        SeedForGroupSchedule(&db);
        std::vector<EngineRef> ignored;
        ApplyGroupSchedule(&db, &ignored);
        FaultGuard guard;
        storage::IoFaultPlan plan;
        plan.fail_write_at = 1;  // the batch is the 1st write while armed
        plan.torn_bytes = cut;
        storage::ArmIoFaults(storage::IoFileClass::kWal, plan);
        Status st = db.storage()->FlushPending();
        EXPECT_FALSE(st.ok()) << "cut=" << cut;
        // The poisoned writer refuses to append past the torn tail —
        // records after the damage would be unreadable. (Group mode
        // would accept the enqueue and fail the wait; the synchronous
        // path surfaces the latched error directly.)
        db.storage()->SetGroupCommit(false);
        EXPECT_FALSE(db.CreateUser("late").ok()) << "cut=" << cut;
      }
      // "Crash": the process state is gone, only the torn file remains.
      size_t survivors = 0;
      for (int64_t b : rel_bounds) {
        if (b <= cut) ++survivors;
      }
      OrpheusDB recovered;
      ASSERT_TRUE(recovered.Open(dir).ok()) << "cut=" << cut;
      ExpectEngineEquals(refs[survivors], &recovered,
                         "threads=" + std::to_string(threads) + " cut=" +
                             std::to_string(cut));
      // The torn tail was truncated away: the WAL ends on the last
      // whole frame, so the next appender starts at a clean boundary.
      int64_t wal_size = storage::FileSize(WalPath(dir)).ValueOrDie();
      int64_t want_size = static_cast<int64_t>(batch_start) +
                          (survivors == 0 ? 0 : rel_bounds[survivors - 1]);
      EXPECT_EQ(want_size, wal_size) << "cut=" << cut;
    }
  }
  SetExecThreads(1);
}

TEST(Persistence, CommitGroupSyncFailurePoisonsWriter) {
  TempDir dir;
  std::vector<EngineRef> refs;
  {
    OrpheusDB db;
    ASSERT_TRUE(db.Open(dir.path()).ok());
    SeedForGroupSchedule(&db);
    ApplyGroupSchedule(&db, &refs);
    FaultGuard guard;
    storage::IoFaultPlan plan;
    plan.fail_sync_at = 1;  // the batch write lands, its fdatasync fails
    storage::ArmIoFaults(storage::IoFileClass::kWal, plan);
    Status st = db.storage()->FlushPending();
    EXPECT_FALSE(st.ok());
    storage::DisarmIoFaults();
    // A failed sync poisons the writer: neither the synchronous path
    // nor a checkpoint may run on top of records of unknown durability.
    db.storage()->SetGroupCommit(false);
    EXPECT_FALSE(db.CreateUser("late").ok());
    EXPECT_FALSE(db.Checkpoint().ok());
  }
  // The write() itself completed before the sync failed, so the frames
  // are in the file (durability was never promised — WaitDurable
  // errored — but recovery of what survives must still be exact).
  OrpheusDB recovered;
  ASSERT_TRUE(recovered.Open(dir.path()).ok());
  ExpectEngineEquals(refs.back(), &recovered, "after failed sync");
}

// --- Segmented checkpoints (storage format v2) --------------------------
//
// The v2 layout splits the old monolithic snapshot into one immutable
// segment file per table plus a CRC-checked MANIFEST whose atomic
// replace is the only commit point. These suites pin down the three
// promises that buys: incrementality (clean tables are never
// rewritten), crash-atomicity (a kill anywhere inside Checkpoint()
// recovers to exactly the pre- or post-checkpoint state, never a
// hybrid), and fail-clean corruption handling (any flipped byte turns
// Open into a Status that names the damaged file).

std::pair<int64_t, int64_t> FileMtime(const std::string& path) {
  struct stat st {};
  EXPECT_EQ(0, ::stat(path.c_str(), &st)) << path;
  return {static_cast<int64_t>(st.st_mtim.tv_sec),
          static_cast<int64_t>(st.st_mtim.tv_nsec)};
}

void FlipByteInFile(const std::string& path, size_t pos) {
  std::string bytes = storage::ReadFileToString(path).ValueOrDie();
  ASSERT_LT(pos, bytes.size()) << path;
  bytes[pos] = static_cast<char>(bytes[pos] ^ 0x01);
  ASSERT_TRUE(storage::WriteFileAtomic(path, bytes).ok());
}

std::string SegPath(const std::string& dir, const std::string& file) {
  return storage::StorageManager::SegmentPath(dir, file);
}

// The headline acceptance test: with eight tables and one of them
// dirty, a checkpoint rewrites exactly that table's segment plus the
// manifest. Verified three independent ways — the stats counters, the
// io_util write counter, and the on-disk identity (file name, CRC,
// mtime) of the seven untouched segments.
TEST(SegmentedCheckpoint, OneDirtyTableOfEightRewritesOneSegment) {
  TempDir dir;
  OrpheusDB db;
  ASSERT_TRUE(db.Open(dir.path()).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(db.db()
                    ->AdoptTable("t" + std::to_string(i),
                                 SampleRows(4, i * 10), {"k"})
                    .ok());
  }
  ASSERT_TRUE(db.Checkpoint().ok());
  EXPECT_EQ(8u, db.storage()->last_checkpoint_stats().segments_written);
  EXPECT_EQ(0u, db.storage()->last_checkpoint_stats().segments_reused);
  const storage::Manifest full = db.storage()->manifest();
  ASSERT_EQ(8u, full.segments.size());

  std::map<std::string, storage::ManifestSegment> before;
  std::map<std::string, std::pair<int64_t, int64_t>> mtimes;
  for (const storage::ManifestSegment& seg : full.segments) {
    before[seg.table] = seg;
    mtimes[seg.table] = FileMtime(SegPath(dir.path(), seg.file));
  }

  ASSERT_TRUE(db.db()->Execute("UPDATE t3 SET score = 99.5 WHERE k = 31").ok());
  const uint64_t seg_writes =
      storage::IoWritesIssued(storage::IoFileClass::kSegment);
  ASSERT_TRUE(db.Checkpoint().ok());
  const storage::StorageManager::CheckpointStats& stats =
      db.storage()->last_checkpoint_stats();
  EXPECT_EQ(1u, stats.segments_written);  // only t3
  EXPECT_EQ(7u, stats.segments_reused);
  EXPECT_EQ(1u, stats.segments_deleted);  // t3's superseded segment
  EXPECT_EQ(1u, storage::IoWritesIssued(storage::IoFileClass::kSegment) -
                    seg_writes);

  const storage::Manifest after = db.storage()->manifest();
  ASSERT_EQ(8u, after.segments.size());
  for (const storage::ManifestSegment& seg : after.segments) {
    const storage::ManifestSegment& old = before.at(seg.table);
    if (seg.table == "t3") {
      EXPECT_NE(old.file, seg.file);  // fresh name — names are never reused
    } else {
      EXPECT_EQ(old.file, seg.file);
      EXPECT_EQ(old.crc, seg.crc);
      EXPECT_EQ(mtimes.at(seg.table), FileMtime(SegPath(dir.path(), seg.file)))
          << seg.table << " was rewritten despite being clean";
    }
  }
  EXPECT_FALSE(storage::FileExists(SegPath(dir.path(), before.at("t3").file)));

  // The full-rewrite reference mode really does rewrite everything.
  db.storage()->set_incremental_checkpoint(false);
  ASSERT_TRUE(db.db()->Execute("UPDATE t3 SET score = 1.0 WHERE k = 31").ok());
  ASSERT_TRUE(db.Checkpoint().ok());
  EXPECT_EQ(8u, db.storage()->last_checkpoint_stats().segments_written);
  EXPECT_EQ(0u, db.storage()->last_checkpoint_stats().segments_reused);
}

struct CheckpointFaultPlan {
  storage::IoFileClass cls;
  storage::IoFaultPlan fault;
  std::string what;
};

// Every syscall the checkpoint protocol issues, as injectable kill
// points: each segment write()/fsync, the manifest tmp-write, its
// sync, the commit rename, and each post-commit orphan delete.
std::vector<CheckpointFaultPlan> CheckpointKillPoints(int max_segment_ops,
                                                      int max_deletes) {
  std::vector<CheckpointFaultPlan> plans;
  auto add = [&plans](storage::IoFileClass cls, storage::IoFaultPlan fault,
                      std::string what) {
    plans.push_back({cls, fault, std::move(what)});
  };
  for (int w = 1; w <= max_segment_ops; ++w) {
    for (int64_t torn : {int64_t{-1}, int64_t{0}, int64_t{64}}) {
      storage::IoFaultPlan p;
      p.fail_write_at = w;
      p.torn_bytes = torn;
      add(storage::IoFileClass::kSegment, p,
          "segment write #" + std::to_string(w) + " torn at " +
              std::to_string(torn));
    }
    storage::IoFaultPlan s;
    s.fail_sync_at = w;
    add(storage::IoFileClass::kSegment, s,
        "segment sync #" + std::to_string(w));
  }
  for (int64_t torn : {int64_t{-1}, int64_t{0}, int64_t{64}}) {
    storage::IoFaultPlan p;
    p.fail_write_at = 1;
    p.torn_bytes = torn;
    add(storage::IoFileClass::kManifest, p,
        "manifest write torn at " + std::to_string(torn));
  }
  {
    storage::IoFaultPlan p;
    p.fail_sync_at = 1;
    add(storage::IoFileClass::kManifest, p, "manifest sync");
  }
  {
    storage::IoFaultPlan p;
    p.fail_rename_at = 1;
    add(storage::IoFileClass::kManifest, p, "manifest rename (commit point)");
  }
  for (int d = 1; d <= max_deletes; ++d) {
    storage::IoFaultPlan p;
    p.fail_delete_at = d;
    add(storage::IoFileClass::kSegment, p,
        "post-commit orphan delete #" + std::to_string(d));
  }
  return plans;
}

// Crash matrix over WAL-logged mutations: the checkout/commit pair
// being folded also lives in the WAL, so no matter where the
// checkpoint dies, recovery must reproduce the live pre-crash state —
// before the manifest rename via old manifest + WAL replay, after it
// via the new manifest + the LSN watermark skipping replayed records.
TEST(SegmentedCheckpoint, CheckpointCrashMatrixRecoversExactState) {
  const std::vector<CheckpointFaultPlan> plans = CheckpointKillPoints(4, 2);
  for (int threads : {1, 4}) {
    SetExecThreads(threads);
    for (const CheckpointFaultPlan& plan : plans) {
      SCOPED_TRACE(plan.what + " threads=" + std::to_string(threads));
      TempDir dir;
      EngineRef ref;
      {
        OrpheusDB db;
        ASSERT_TRUE(db.Open(dir.path()).ok());
        CvdOptions options;
        options.primary_key = {"k"};
        ASSERT_TRUE(db.InitCvd("t", SampleRows(5), options, "init").ok());
        ASSERT_TRUE(db.Checkout("t", {1}, "w").ok());
        ASSERT_EQ(2, db.Commit("t", "w", "v2").ValueOrDie());
        ASSERT_TRUE(db.Checkpoint().ok());  // baseline: everything clean
        ASSERT_TRUE(db.Checkout("t", {2}, "x").ok());
        ASSERT_EQ(3, db.Commit("t", "x", "v3").ValueOrDie());
        ref = Capture(&db);
        FaultGuard guard;
        storage::ArmIoFaults(plan.cls, plan.fault);
        Status st = db.Checkpoint();
        storage::DisarmIoFaults();
        // A plan indexing past the syscalls actually issued never
        // fires and the checkpoint simply succeeds; recovery must
        // land on the same state either way. Manifest plans always
        // fire — the manifest is written exactly once.
        if (plan.cls == storage::IoFileClass::kManifest) {
          EXPECT_FALSE(st.ok());
        }
      }  // engine dropped mid-protocol: the crash
      {
        OrpheusDB recovered;
        ASSERT_TRUE(recovered.Open(dir.path()).ok());
        ExpectEngineEquals(ref, &recovered, "recovered: " + plan.what);
        // The survivor directory stays fully serviceable.
        ASSERT_TRUE(recovered.Checkpoint().ok());
      }
      OrpheusDB again;
      ASSERT_TRUE(again.Open(dir.path()).ok());
      ExpectEngineEquals(ref, &again, "re-recovered: " + plan.what);
    }
  }
  SetExecThreads(1);
}

// Crash matrix over raw catalog mutations, which are NOT WAL-logged
// (durable only at the next checkpoint). A kill before the manifest
// rename must recover the exact pre-checkpoint state; a kill after it
// (orphan deletes) the exact post-checkpoint state. Both dirty tables
// move together or not at all — never a hybrid.
TEST(SegmentedCheckpoint, CrashLandsOnPreOrPostStateNeverHybrid) {
  const std::vector<CheckpointFaultPlan> plans = CheckpointKillPoints(2, 2);
  for (const CheckpointFaultPlan& plan : plans) {
    SCOPED_TRACE(plan.what);
    const bool post_commit = plan.fault.fail_delete_at > 0;
    TempDir dir;
    EngineRef pre, post;
    {
      OrpheusDB db;
      ASSERT_TRUE(db.Open(dir.path()).ok());
      for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(db.db()
                        ->AdoptTable("t" + std::to_string(i),
                                     SampleRows(3, i * 10), {"k"})
                        .ok());
      }
      ASSERT_TRUE(db.Checkpoint().ok());
      pre = Capture(&db);
      ASSERT_TRUE(
          db.db()->Execute("UPDATE t1 SET name = 'dirty' WHERE k = 10").ok());
      ASSERT_TRUE(
          db.db()->Execute("UPDATE t2 SET score = 0.5 WHERE k = 20").ok());
      post = Capture(&db);
      FaultGuard guard;
      storage::ArmIoFaults(plan.cls, plan.fault);
      Status st = db.Checkpoint();
      storage::DisarmIoFaults();
      // Two dirty tables → two segment writes/syncs and two orphan
      // deletes, so every plan in this matrix fires.
      ASSERT_FALSE(st.ok());
    }
    OrpheusDB recovered;
    ASSERT_TRUE(recovered.Open(dir.path()).ok());
    ExpectEngineEquals(post_commit ? post : pre, &recovered,
                       std::string("recovered (expected ") +
                           (post_commit ? "post" : "pre") + "): " + plan.what);
  }
}

// Corruption sweep: a single flipped byte anywhere in any segment or
// in the manifest — header, body, or stored CRC — must turn Open into
// a clean error that names the damaged file. A missing referenced
// segment likewise; an orphaned junk segment is swept silently.
TEST(SegmentedCheckpoint, CorruptionSweepFailsCleanNamingTheFile) {
  TempDir base;
  EngineRef ref;
  {
    OrpheusDB db;
    ASSERT_TRUE(db.Open(base.path()).ok());
    CvdOptions options;
    options.primary_key = {"k"};
    ASSERT_TRUE(db.InitCvd("a", SampleRows(4), options, "init").ok());
    ASSERT_TRUE(db.InitCvd("b", SampleRows(3, 50), options, "init").ok());
    ASSERT_TRUE(db.Checkout("a", {1}, "w").ok());
    ASSERT_EQ(2, db.Commit("a", "w", "v2").ValueOrDie());
    ASSERT_TRUE(db.Checkpoint().ok());
    ref = Capture(&db);
  }
  const std::vector<std::string> names =
      storage::ListDir(SegmentsDir(base.path())).ValueOrDie();
  ASSERT_GE(names.size(), 2u);
  TempDir clones;
  int id = 0;

  for (const std::string& name : names) {
    const size_t size =
        storage::FileSize(SegmentsDir(base.path()) + "/" + name).ValueOrDie();
    for (size_t pos : {size_t{0}, size / 2, size - 1}) {
      SCOPED_TRACE(name + " byte " + std::to_string(pos));
      const std::string clone = clones.Sub("seg" + std::to_string(id++));
      CloneDbDir(base.path(), clone);
      FlipByteInFile(SegmentsDir(clone) + "/" + name, pos);
      OrpheusDB db;
      Status st = db.Open(clone);
      ASSERT_FALSE(st.ok());
      EXPECT_NE(std::string::npos, st.message().find(name))
          << "error does not name the corrupt file: " << st.message();
    }
  }

  // Manifest positions: magic (0), format version (8), body length
  // (12), stored CRC (20), body middle, last body byte.
  const size_t msize =
      storage::FileSize(ManifestPath(base.path())).ValueOrDie();
  for (size_t pos : {size_t{0}, size_t{8}, size_t{12}, size_t{20},
                     size_t{24} + (msize - 24) / 2, msize - 1}) {
    SCOPED_TRACE("MANIFEST byte " + std::to_string(pos));
    const std::string clone = clones.Sub("man" + std::to_string(id++));
    CloneDbDir(base.path(), clone);
    FlipByteInFile(ManifestPath(clone), pos);
    OrpheusDB db;
    Status st = db.Open(clone);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(std::string::npos, st.message().find("MANIFEST"))
        << "error does not name the manifest: " << st.message();
  }

  {
    SCOPED_TRACE("missing segment " + names[0]);
    const std::string clone = clones.Sub("missing");
    CloneDbDir(base.path(), clone);
    ASSERT_TRUE(
        storage::DeleteFileChecked(SegmentsDir(clone) + "/" + names[0]).ok());
    OrpheusDB db;
    Status st = db.Open(clone);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(std::string::npos, st.message().find(names[0]))
        << "error does not name the missing file: " << st.message();
  }

  {
    SCOPED_TRACE("orphaned junk segment");
    const std::string clone = clones.Sub("orphan");
    CloneDbDir(base.path(), clone);
    const std::string junk = SegmentsDir(clone) + "/seg-zzzzzzzz.orps";
    ASSERT_TRUE(storage::WriteFileAtomic(junk, "not a segment").ok());
    OrpheusDB db;
    ASSERT_TRUE(db.Open(clone).ok());
    ExpectEngineEquals(ref, &db, "after orphan sweep");
    EXPECT_FALSE(storage::FileExists(junk));  // swept at recovery
  }
}

// A v1 directory (monolithic snapshot.orph, possibly with a WAL tail)
// opens exactly once in legacy mode, migrates to segments on the
// spot, and retires the old snapshot. The migrated directory is
// stable across further reopens.
TEST(SegmentedCheckpoint, V1SnapshotMigratesToSegmentsOnOpen) {
  TempDir dir;
  EngineRef ref;
  {
    OrpheusDB db;  // never Open()ed: builds in memory, exports v1
    CvdOptions options;
    options.primary_key = {"k"};
    ASSERT_TRUE(db.InitCvd("t", SampleRows(5), options, "init").ok());
    ASSERT_TRUE(db.Checkout("t", {1}, "w").ok());
    ASSERT_EQ(2, db.Commit("t", "w", "v2").ValueOrDie());
    ASSERT_TRUE(db.CreateUser("alice").ok());
    ASSERT_TRUE(db.SaveSnapshot(dir.path()).ok());
    ref = Capture(&db);
  }
  // A WAL tail past the snapshot, exactly as a v1 crash leaves it.
  {
    auto writer = storage::WalWriter::Open(WalPath(dir.path()), 1).ValueOrDie();
    storage::BinaryWriter body;
    body.PutString("bob");
    ASSERT_TRUE(
        writer->Append(storage::WalRecordType::kCreateUser, body.data()).ok());
  }
  ASSERT_TRUE(storage::FileExists(SnapPath(dir.path())));
  ASSERT_FALSE(storage::FileExists(ManifestPath(dir.path())));
  {
    OrpheusDB db;
    ASSERT_TRUE(db.Open(dir.path()).ok());
    ExpectEngineEquals(ref, &db, "migrated");
    EXPECT_TRUE(storage::FileExists(ManifestPath(dir.path())));
    EXPECT_FALSE(storage::FileExists(SnapPath(dir.path())));  // retired
    EXPECT_GE(db.storage()->manifest().segments.size(), 1u);
    // The migration checkpoint folded the WAL tail.
    EXPECT_EQ(0, storage::FileSize(WalPath(dir.path())).ValueOrDie());
    EXPECT_FALSE(db.CreateUser("alice").ok());  // from the snapshot
    EXPECT_FALSE(db.CreateUser("bob").ok());    // from the WAL tail
  }
  {
    OrpheusDB db;
    ASSERT_TRUE(db.Open(dir.path()).ok());
    ExpectEngineEquals(ref, &db, "reopened after migration");
    EXPECT_FALSE(db.CreateUser("bob").ok());
  }
}

// Property test (the concurrency_test oracle idiom): two engines fed
// an identical randomized schedule of checkouts, staged edits,
// commits, discards, checkpoints, and crash/reopen rounds must encode
// bit-identically under the portable v1 codec. Engine A checkpoints
// incrementally, engine B is pinned to full rewrites — so any dirty
// table the epoch tracking misses shows up as a byte diff here.
TEST(SegmentedCheckpoint, PropertyIncrementalMatchesFullRewrite) {
  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    SetExecThreads(threads);
    TempDir dir_a;
    TempDir dir_b;
    auto a = std::make_unique<OrpheusDB>();
    auto b = std::make_unique<OrpheusDB>();
    ASSERT_TRUE(a->Open(dir_a.path()).ok());
    ASSERT_TRUE(b->Open(dir_b.path()).ok());
    b->storage()->set_incremental_checkpoint(false);
    CvdOptions options;
    options.primary_key = {"k"};
    for (OrpheusDB* e : {a.get(), b.get()}) {
      ASSERT_TRUE(e->InitCvd("c0", SampleRows(6), options, "init").ok());
      ASSERT_TRUE(e->InitCvd("c1", SampleRows(4, 100), options, "init").ok());
    }
    std::mt19937 rng(20260808u + static_cast<unsigned>(threads));
    std::vector<std::pair<std::string, std::string>> staged;  // (cvd, table)
    int serial = 0;
    for (int round = 0; round < 60; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      const int op = static_cast<int>(rng() % 10);
      if (op < 4) {  // checkout a random version into a fresh table
        const std::string cvd = (rng() % 2 == 0) ? "c0" : "c1";
        const VersionId latest = a->GetCvd(cvd).value()->latest_version();
        const VersionId v = 1 + static_cast<VersionId>(rng() % latest);
        const std::string t = "s" + std::to_string(serial++);
        Status sa = a->Checkout(cvd, {v}, t);
        Status sb = b->Checkout(cvd, {v}, t);
        ASSERT_EQ(sa.ok(), sb.ok());
        if (sa.ok()) staged.emplace_back(cvd, t);
      } else if (op < 7) {  // edit + commit a random staged table
        if (staged.empty()) continue;
        const size_t i = rng() % staged.size();
        const auto [cvd, t] = staged[i];
        const std::string sql = "UPDATE " + t + " SET score = " +
                                std::to_string(round) + ".5 WHERE k >= 0";
        ASSERT_TRUE(a->db()->Execute(sql).ok());
        ASSERT_TRUE(b->db()->Execute(sql).ok());
        auto ra = a->Commit(cvd, t, "m" + std::to_string(round));
        auto rb = b->Commit(cvd, t, "m" + std::to_string(round));
        ASSERT_EQ(ra.ok(), rb.ok());
        if (ra.ok()) {
          const VersionId va = ra.value();
          const VersionId vb = rb.value();
          ASSERT_EQ(va, vb);
        }
        staged.erase(staged.begin() + static_cast<ptrdiff_t>(i));
      } else if (op == 7) {  // discard a random staged table
        if (staged.empty()) continue;
        const size_t i = rng() % staged.size();
        const auto [cvd, t] = staged[i];
        ASSERT_EQ(a->DiscardStaged(cvd, t).ok(), b->DiscardStaged(cvd, t).ok());
        staged.erase(staged.begin() + static_cast<ptrdiff_t>(i));
      } else if (op == 8) {  // checkpoint both
        ASSERT_TRUE(a->Checkpoint().ok());
        ASSERT_TRUE(b->Checkpoint().ok());
      } else {  // crash both and recover
        a = std::make_unique<OrpheusDB>();
        b = std::make_unique<OrpheusDB>();
        ASSERT_TRUE(a->Open(dir_a.path()).ok());
        ASSERT_TRUE(b->Open(dir_b.path()).ok());
        b->storage()->set_incremental_checkpoint(false);
      }
      if (round % 10 == 9) {
        ASSERT_EQ(storage::SnapshotCodec::Encode(*a, 0),
                  storage::SnapshotCodec::Encode(*b, 0));
      }
    }
    EXPECT_EQ(storage::SnapshotCodec::Encode(*a, 0),
              storage::SnapshotCodec::Encode(*b, 0));
    EngineRef ref = Capture(a.get());
    ExpectEngineEquals(ref, b.get(), "final A vs B");
  }
  SetExecThreads(1);
}

}  // namespace
}  // namespace orpheus
