// Group-commit tests: the WAL write path under concurrent sessions.
//
// Three layers of assurance, mirroring the durability contract in
// docs/PERSISTENCE.md:
//
//  * Deterministic mechanics against a bare StorageManager — N
//    enqueued records become ONE AppendBatch with consecutive LSNs and
//    exactly one fdatasync; turning the mode off drains the queue; the
//    synchronous path still syncs per record and leaves no tickets.
//
//  * Stress over real server TCP — K sessions × M commits against a
//    durable engine (with an injected fdatasync delay so commit groups
//    genuinely form): every commit lands, WAL LSNs are gapless, the
//    whole run costs fewer syncs than it wrote records, and a fresh
//    engine recovered from the WAL is bit-identical to the live one.
//    Run at --threads {1, 4} like the other concurrency suites.
//
//  * EngineApi semantics — per-session last_durable_lsn is monotonic,
//    --group-commit=off behaves exactly like the old one-sync-per-
//    record path, and the auto-checkpoint policy still fires when the
//    growth happened through queued records.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/engine_api.h"
#include "core/orpheus.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/io_util.h"
#include "storage/snapshot.h"
#include "storage/storage_manager.h"
#include "storage/wal.h"

namespace orpheus {
namespace {

using core::Cvd;
using core::CvdOptions;
using core::EngineApi;
using core::OrpheusDB;
using core::SessionContext;
using server::Client;
using server::Server;
using server::ServerOptions;

class TempDir {
 public:
  TempDir() : path_(storage::MakeTempDir("orpheus_gc_").ValueOrDie()) {}
  ~TempDir() { (void)storage::RemoveDirRecursive(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Disarms fault injection even when an ASSERT unwinds the test early.
struct FaultGuard {
  ~FaultGuard() { storage::DisarmIoFaults(); }
};

// k INT (pk), score DOUBLE.
rel::Chunk MakeRows(int n) {
  rel::Schema schema;
  schema.AddColumn("k", rel::DataType::kInt64);
  schema.AddColumn("score", rel::DataType::kDouble);
  rel::Chunk rows(schema);
  for (int i = 0; i < n; ++i) {
    rows.mutable_column(0).AppendInt(i);
    rows.mutable_column(1).AppendDouble(0.5 * i);
  }
  return rows;
}

void Seed(EngineApi* api, const std::string& name, int n) {
  CvdOptions options;
  options.primary_key = {"k"};
  ASSERT_TRUE(api->orpheus()->InitCvd(name, MakeRows(n), options, "init").ok());
}

std::string MustExecute(EngineApi* api, SessionContext* session,
                        const std::string& line) {
  auto result = api->Execute(session, line);
  EXPECT_TRUE(result.ok()) << line << ": " << result.status().ToString();
  return result.ok() ? result.value() : std::string();
}

std::string MustExecute(Client* client, const std::string& line) {
  auto result = client->Execute(line);
  EXPECT_TRUE(result.ok()) << line << ": " << result.status().ToString();
  return result.ok() ? result.value() : std::string();
}

// Parses the directory's WAL and asserts its LSNs are gapless from 1.
void ExpectGaplessWal(const std::string& dir, size_t want_records) {
  std::string bytes =
      storage::ReadFileToString(storage::StorageManager::WalPath(dir))
          .ValueOrDie();
  size_t valid = 0;
  std::vector<storage::WalRecord> records = storage::ParseWal(bytes, 0, &valid);
  EXPECT_EQ(bytes.size(), valid) << "WAL has a torn tail after a clean run";
  ASSERT_EQ(want_records, records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(i + 1, records[i].lsn) << "LSN gap at record " << i;
  }
}

// --- Deterministic mechanics against a bare StorageManager ---------------

TEST(GroupCommit, BatchedEnqueuesCostOneSync) {
  TempDir dir;
  OrpheusDB db;
  ASSERT_TRUE(db.Open(dir.path()).ok());
  storage::StorageManager* sm = db.storage();

  sm->SetGroupCommit(true);
  ASSERT_TRUE(sm->group_commit());
  uint64_t syncs_before = sm->wal_syncs();

  // Three verbs enqueue three records; none of them syncs anything.
  ASSERT_TRUE(db.CreateUser("u1").ok());
  ASSERT_TRUE(db.CreateUser("u2").ok());
  ASSERT_TRUE(db.CreateUser("u3").ok());
  EXPECT_EQ(syncs_before, sm->wal_syncs());

  std::vector<storage::AppendTicket> tickets = sm->TakePendingTickets();
  ASSERT_EQ(3u, tickets.size());
  // A second take hands over nothing: the tickets moved out.
  EXPECT_TRUE(sm->TakePendingTickets().empty());

  ASSERT_TRUE(sm->WaitDurable(tickets).ok());
  EXPECT_EQ(syncs_before + 1, sm->wal_syncs())
      << "3 grouped records must cost exactly 1 fdatasync";
  for (size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_TRUE(tickets[i]->done);
    EXPECT_TRUE(tickets[i]->status.ok());
    if (i > 0) {
      EXPECT_EQ(tickets[i - 1]->lsn + 1, tickets[i]->lsn)
          << "batch LSNs must be consecutive in enqueue order";
    }
  }
  // Waiting again on completed tickets is a no-op.
  EXPECT_TRUE(sm->WaitDurable(tickets).ok());
  ExpectGaplessWal(dir.path(), 3);
}

TEST(GroupCommit, SyncModeSyncsEveryRecordAndLeavesNoTickets) {
  TempDir dir;
  OrpheusDB db;
  ASSERT_TRUE(db.Open(dir.path()).ok());
  storage::StorageManager* sm = db.storage();
  ASSERT_FALSE(sm->group_commit());  // the embedder default

  uint64_t syncs_before = sm->wal_syncs();
  ASSERT_TRUE(db.CreateUser("u1").ok());
  ASSERT_TRUE(db.CreateUser("u2").ok());
  EXPECT_EQ(syncs_before + 2, sm->wal_syncs());
  EXPECT_TRUE(sm->TakePendingTickets().empty());
}

TEST(GroupCommit, TurningModeOffDrainsTheQueue) {
  TempDir dir;
  OrpheusDB db;
  ASSERT_TRUE(db.Open(dir.path()).ok());
  storage::StorageManager* sm = db.storage();

  sm->SetGroupCommit(true);
  ASSERT_TRUE(db.CreateUser("u1").ok());
  ASSERT_TRUE(db.CreateUser("u2").ok());
  std::vector<storage::AppendTicket> tickets = sm->TakePendingTickets();
  ASSERT_EQ(2u, tickets.size());
  EXPECT_FALSE(tickets[0]->done);

  sm->SetGroupCommit(false);  // must not strand the queued records
  EXPECT_TRUE(tickets[0]->done);
  EXPECT_TRUE(tickets[1]->done);
  EXPECT_TRUE(sm->WaitDurable(tickets).ok());
  ExpectGaplessWal(dir.path(), 2);
}

// --- EngineApi semantics -------------------------------------------------

TEST(GroupCommit, SessionDurableLsnIsMonotonic) {
  TempDir dir;
  EngineApi api;
  ASSERT_TRUE(api.orpheus()->Open(dir.path()).ok());
  Seed(&api, "c", 4);

  auto session = api.NewSession();
  EXPECT_EQ(0u, session->last_durable_lsn());
  uint64_t prev = 0;
  for (int i = 0; i < 3; ++i) {
    std::string w = "w" + std::to_string(i);
    MustExecute(&api, session.get(), "checkout c -v 1 -t " + w);
    uint64_t after_checkout = session->last_durable_lsn();
    EXPECT_GT(after_checkout, prev);
    MustExecute(&api, session.get(), "commit -t " + w + " -m x");
    uint64_t after_commit = session->last_durable_lsn();
    EXPECT_GT(after_commit, after_checkout);
    prev = after_commit;
  }
  // The bookmark tracks the WAL head this session has waited out.
  EXPECT_EQ(api.orpheus()->storage()->next_lsn() - 1, prev);
}

TEST(GroupCommit, OffModeOverApiSyncsPerRecord) {
  TempDir dir;
  std::string live_blob;
  {
    EngineApi api;
    api.set_group_commit(false);
    ASSERT_TRUE(api.orpheus()->Open(dir.path()).ok());
    Seed(&api, "c", 4);
    auto session = api.NewSession();
    storage::StorageManager* sm = api.orpheus()->storage();
    uint64_t syncs_before = sm->wal_syncs();
    uint64_t records_before = sm->wal_records();
    MustExecute(&api, session.get(), "checkout c -v 1 -t w");
    MustExecute(&api, session.get(), "commit -t w -m x");
    // One fdatasync per record: the pre-group-commit write path.
    EXPECT_EQ(sm->wal_records() - records_before,
              sm->wal_syncs() - syncs_before);
    // Statements still report durability through the session bookmark.
    EXPECT_EQ(sm->next_lsn() - 1, session->last_durable_lsn());
    live_blob = storage::SnapshotCodec::Encode(*api.orpheus(), 0);
  }
  OrpheusDB recovered;
  ASSERT_TRUE(recovered.Open(dir.path()).ok());
  EXPECT_EQ(live_blob, storage::SnapshotCodec::Encode(recovered, 0));
}

TEST(GroupCommit, AutoCheckpointStillFiresOnQueuedGrowth) {
  TempDir dir;
  std::string live_blob;
  {
    EngineApi api;
    ASSERT_TRUE(api.orpheus()->Open(dir.path()).ok());
    Seed(&api, "c", 4);
    // Bound the WAL at 3 records: the policy must count queued (not
    // yet written) records too, flush them, and fold the log into a
    // snapshot from inside the group-commit path.
    api.orpheus()->storage()->SetAutoCheckpointPolicy(0, 3);
    auto session = api.NewSession();
    for (int i = 0; i < 4; ++i) {
      std::string w = "w" + std::to_string(i);
      MustExecute(&api, session.get(), "checkout c -v 1 -t " + w);
      MustExecute(&api, session.get(), "commit -t " + w + " -m x");
    }
    EXPECT_TRUE(
        storage::FileExists(storage::StorageManager::ManifestPath(dir.path())));
    EXPECT_LE(api.orpheus()->storage()->wal_records(), 3u);
    live_blob = storage::SnapshotCodec::Encode(*api.orpheus(), 0);
  }
  OrpheusDB recovered;
  ASSERT_TRUE(recovered.Open(dir.path()).ok());
  EXPECT_EQ(live_blob, storage::SnapshotCodec::Encode(recovered, 0));
}

// --- Stress over real server TCP ----------------------------------------

// K sessions × M commits over TCP against a durable engine. An
// injected fdatasync delay holds each group leader in "sync" long
// enough for concurrent committers to pile into the next group, so the
// run demonstrably batches: total syncs < total records. Afterwards,
// WAL replay into a fresh engine must reproduce the live state
// bit-identically and the LSN sequence must be gapless.
void RunTcpStress(int exec_threads) {
  SetExecThreads(exec_threads);
  constexpr int kSessions = 4;
  constexpr int kCommits = 5;
  TempDir dir;
  std::string live_blob;
  size_t total_records = 0;
  {
    EngineApi api;
    ASSERT_TRUE(api.group_commit());  // the server default
    ASSERT_TRUE(api.orpheus()->Open(dir.path()).ok());
    Seed(&api, "c", 6);
    storage::StorageManager* sm = api.orpheus()->storage();
    uint64_t syncs_before = sm->wal_syncs();
    uint64_t records_before = sm->wal_records();

    FaultGuard guard;
    storage::IoFaultPlan plan;
    plan.sync_delay_ms = 15;  // no failures — just group formation
    storage::ArmIoFaults(storage::IoFileClass::kWal, plan);

    ServerOptions options;
    options.port = 0;
    options.workers = kSessions;
    Server server(&api, options);
    ASSERT_TRUE(server.Start().ok());

    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    threads.reserve(kSessions);
    for (int s = 0; s < kSessions; ++s) {
      threads.emplace_back([&, s] {
        Client client;
        if (!client.Connect("127.0.0.1", server.port()).ok()) {
          failures.fetch_add(1);
          return;
        }
        for (int i = 0; i < kCommits; ++i) {
          std::string w = "t" + std::to_string(s) + "_" + std::to_string(i);
          MustExecute(&client, "checkout c -v 1 -t " + w);
          MustExecute(&client, "commit -t " + w + " -m x");
        }
        (void)client.Execute("exit");
      });
    }
    for (std::thread& t : threads) t.join();
    server.Stop();
    storage::DisarmIoFaults();
    ASSERT_EQ(0, failures.load());

    // All-or-nothing per commit: every one of them landed.
    Cvd* cvd = api.orpheus()->GetCvd("c").ValueOrDie();
    EXPECT_EQ(1 + kSessions * kCommits, cvd->latest_version());

    // Grouping really happened: the run wrote 2 records per commit but
    // synced strictly fewer times than that.
    uint64_t records_written = sm->wal_records() - records_before;
    uint64_t syncs_issued = sm->wal_syncs() - syncs_before;
    EXPECT_EQ(static_cast<uint64_t>(2 * kSessions * kCommits),
              records_written);
    EXPECT_LT(syncs_issued, records_written)
        << "no commit group ever held more than one record";

    total_records = static_cast<size_t>(sm->wal_records());
    live_blob = storage::SnapshotCodec::Encode(*api.orpheus(), 0);
  }
  ExpectGaplessWal(dir.path(), total_records);

  // Live-vs-recovered bit identity: the WAL the groups wrote is a
  // correct total order of what actually happened.
  OrpheusDB recovered;
  ASSERT_TRUE(recovered.Open(dir.path()).ok());
  EXPECT_EQ(live_blob, storage::SnapshotCodec::Encode(recovered, 0))
      << "recovered engine diverged from the live one";
}

TEST(GroupCommitStress, TcpSessionsSerialExec) {
  RunTcpStress(/*exec_threads=*/1);
}

TEST(GroupCommitStress, TcpSessionsParallelExec) {
  RunTcpStress(/*exec_threads=*/4);
  SetExecThreads(1);
}

}  // namespace
}  // namespace orpheus
