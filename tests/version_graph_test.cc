// Unit tests for the version graph: derivation tracking, levels,
// traversals, and the DAG -> tree conversion of Appendix C.1.

#include <gtest/gtest.h>

#include "core/version_graph.h"

namespace orpheus::core {
namespace {

// Builds the paper's Figure 4 graph:
//   v1 (3 records) -> v2 (3), v1 -> v3 (4), {v2, v3} -> v4 (6)
//   weights: w(v1,v2)=2, w(v1,v3)=3, w(v2,v4)=3, w(v3,v4)=4
VersionGraph Figure4Graph() {
  VersionGraph g;
  EXPECT_TRUE(g.AddVersion(1, {}, {}, 3).ok());
  EXPECT_TRUE(g.AddVersion(2, {1}, {2}, 3).ok());
  EXPECT_TRUE(g.AddVersion(3, {1}, {3}, 4).ok());
  EXPECT_TRUE(g.AddVersion(4, {2, 3}, {3, 4}, 6).ok());
  return g;
}

TEST(VersionGraphTest, AddAndLookup) {
  VersionGraph g = Figure4Graph();
  EXPECT_EQ(g.num_versions(), 4u);
  auto node = g.GetNode(4);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node.value()->parents.size(), 2u);
  EXPECT_EQ(node.value()->num_records, 6);
  EXPECT_FALSE(g.GetNode(99).ok());
}

TEST(VersionGraphTest, Levels) {
  VersionGraph g = Figure4Graph();
  EXPECT_EQ(g.GetNode(1).value()->level, 1);
  EXPECT_EQ(g.GetNode(2).value()->level, 2);
  EXPECT_EQ(g.GetNode(3).value()->level, 2);
  EXPECT_EQ(g.GetNode(4).value()->level, 3);
}

TEST(VersionGraphTest, DuplicateAndMissingParentRejected) {
  VersionGraph g = Figure4Graph();
  EXPECT_EQ(g.AddVersion(1, {}, {}, 1).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(g.AddVersion(9, {42}, {1}, 1).code(), StatusCode::kNotFound);
  EXPECT_EQ(g.AddVersion(9, {1}, {1, 2}, 1).code(), StatusCode::kInvalidArgument);
}

TEST(VersionGraphTest, RootsAndChildren) {
  VersionGraph g = Figure4Graph();
  auto roots = g.Roots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0], 1);
  EXPECT_EQ(g.GetNode(1).value()->children.size(), 2u);
}

TEST(VersionGraphTest, AncestorsAndDescendants) {
  VersionGraph g = Figure4Graph();
  auto anc = g.Ancestors(4);
  ASSERT_TRUE(anc.ok());
  EXPECT_EQ(anc.value().size(), 3u);  // v2, v3, v1
  auto desc = g.Descendants(1);
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(desc.value().size(), 3u);
  auto leaf = g.Descendants(4);
  ASSERT_TRUE(leaf.ok());
  EXPECT_TRUE(leaf.value().empty());
}

TEST(VersionGraphTest, IsTreeDetectsMerges) {
  VersionGraph g = Figure4Graph();
  EXPECT_FALSE(g.IsTree());
  VersionGraph chain;
  ASSERT_TRUE(chain.AddVersion(1, {}, {}, 5).ok());
  ASSERT_TRUE(chain.AddVersion(2, {1}, {5}, 5).ok());
  EXPECT_TRUE(chain.IsTree());
}

TEST(VersionGraphTest, ToTreeKeepsMaxWeightEdge) {
  // Appendix C.1's worked example (Figure 17): v4 keeps edge from v3
  // (weight 4 > 3) and |R^| = 2... in the paper's figure the dropped
  // edge has weight 3 but only 2 records are duplicated because the
  // example counts shared-with-both records once. Our tree-side
  // accounting counts the dropped edge weight (upper bound), per the
  // "conceptually create new records" rule.
  VersionGraph g = Figure4Graph();
  int64_t duplicated = 0;
  VersionGraph tree = g.ToTree(&duplicated);
  EXPECT_TRUE(tree.IsTree());
  EXPECT_EQ(duplicated, 3);  // weight of the dropped (v2, v4) edge
  auto v4 = tree.GetNode(4);
  ASSERT_TRUE(v4.ok());
  ASSERT_EQ(v4.value()->parents.size(), 1u);
  EXPECT_EQ(v4.value()->parents[0], 3);
}

TEST(VersionGraphTest, BipartiteEdgeCount) {
  VersionGraph g = Figure4Graph();
  EXPECT_EQ(g.TotalBipartiteEdges(), 3 + 3 + 4 + 6);
}

TEST(VersionGraphTest, DotRendering) {
  VersionGraph g = Figure4Graph();
  std::string dot = g.ToDot();
  EXPECT_NE(dot.find("v2 -> v4"), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

}  // namespace
}  // namespace orpheus::core
