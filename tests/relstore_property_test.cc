// Property-style tests of the relstore engine against reference
// implementations, over randomized inputs: filters, aggregation, the
// agreement of the three join algorithms, DML consistency, schema
// evolution, the sorted-array codec, and the bit-identical agreement
// of the parallel scan path with the serial one.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <string>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "relstore/database.h"
#include "relstore/intarray_codec.h"

namespace orpheus::rel {
namespace {

// Builds a table of `n` rows with columns (id INT, bucket INT, val
// DOUBLE) where bucket in [0, buckets).
void BuildRandomTable(Database* db, const std::string& name, int n, int buckets,
                      Rng* rng, std::vector<std::tuple<int64_t, int64_t, double>>* rows) {
  ASSERT_TRUE(db->Execute("CREATE TABLE " + name +
                          " (id INT, bucket INT, val DOUBLE, PRIMARY KEY (id))")
                  .ok());
  auto table = db->GetTable(name);
  ASSERT_TRUE(table.ok());
  Chunk& chunk = table.value()->mutable_chunk();
  for (int i = 0; i < n; ++i) {
    int64_t bucket = static_cast<int64_t>(rng->Uniform(static_cast<uint64_t>(buckets)));
    double val = rng->NextDouble() * 100;
    chunk.mutable_column(0).AppendInt(i);
    chunk.mutable_column(1).AppendInt(bucket);
    chunk.mutable_column(2).Append(Value::Double(val));
    if (rows != nullptr) rows->emplace_back(i, bucket, val);
  }
}

// Exact binary equality for result cells: doubles must match
// bit-for-bit, not just numerically (the parallel executor's
// determinism contract).
bool BitsEqual(const Value& a, const Value& b) {
  if (a.is_null() != b.is_null()) return false;
  if (a.is_null()) return true;
  if (a.type() != b.type()) return false;
  if (a.type() == DataType::kDouble) {
    double x = a.AsDouble();
    double y = b.AsDouble();
    return std::memcmp(&x, &y, sizeof(x)) == 0;
  }
  return a.Equals(b);
}

// Asserts two result chunks are bit-identical: same shape, same row
// order, same bits in every cell.
void ExpectChunksBitIdentical(const Chunk& expect, const Chunk& actual,
                              const std::string& context) {
  ASSERT_EQ(expect.num_rows(), actual.num_rows()) << context;
  ASSERT_EQ(expect.num_columns(), actual.num_columns()) << context;
  for (size_t r = 0; r < expect.num_rows(); ++r) {
    for (int c = 0; c < expect.num_columns(); ++c) {
      ASSERT_TRUE(BitsEqual(expect.Get(r, c), actual.Get(r, c)))
          << context << " row " << r << " col " << c << ": "
          << expect.Get(r, c).ToString() << " vs "
          << actual.Get(r, c).ToString();
    }
  }
}

class RandomFilterTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomFilterTest, FilterMatchesReference) {
  Rng rng(GetParam());
  Database db;
  std::vector<std::tuple<int64_t, int64_t, double>> rows;
  BuildRandomTable(&db, "t", 500, 10, &rng, &rows);

  for (int64_t threshold : {0, 3, 7, 10}) {
    auto r = db.Execute("SELECT count(*) FROM t WHERE bucket >= " +
                        std::to_string(threshold) + " AND val < 50.0");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    int64_t expected = 0;
    for (const auto& [id, bucket, val] : rows) {
      if (bucket >= threshold && val < 50.0) ++expected;
    }
    EXPECT_EQ(r.value().Get(0, 0).AsInt(), expected) << "threshold " << threshold;
  }
}

TEST_P(RandomFilterTest, GroupByMatchesReference) {
  Rng rng(GetParam() + 1000);
  Database db;
  std::vector<std::tuple<int64_t, int64_t, double>> rows;
  BuildRandomTable(&db, "t", 400, 7, &rng, &rows);

  auto r = db.Execute(
      "SELECT bucket, count(*) AS cnt, sum(val) AS total, min(val), max(val) "
      "FROM t GROUP BY bucket ORDER BY bucket");
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  std::map<int64_t, std::tuple<int64_t, double, double, double>> reference;
  for (const auto& [id, bucket, val] : rows) {
    auto it = reference.find(bucket);
    if (it == reference.end()) {
      reference[bucket] = {1, val, val, val};
    } else {
      auto& [cnt, sum, mn, mx] = it->second;
      ++cnt;
      sum += val;
      mn = std::min(mn, val);
      mx = std::max(mx, val);
    }
  }
  ASSERT_EQ(r.value().num_rows(), reference.size());
  size_t row = 0;
  for (const auto& [bucket, agg] : reference) {
    EXPECT_EQ(r.value().Get(row, 0).AsInt(), bucket);
    EXPECT_EQ(r.value().Get(row, 1).AsInt(), std::get<0>(agg));
    EXPECT_NEAR(r.value().Get(row, 2).AsDouble(), std::get<1>(agg), 1e-6);
    EXPECT_NEAR(r.value().Get(row, 3).AsDouble(), std::get<2>(agg), 1e-9);
    EXPECT_NEAR(r.value().Get(row, 4).AsDouble(), std::get<3>(agg), 1e-9);
    ++row;
  }
}

TEST_P(RandomFilterTest, JoinMethodsAgree) {
  Rng rng(GetParam() + 2000);
  Database db;
  BuildRandomTable(&db, "left_t", 300, 40, &rng, nullptr);
  BuildRandomTable(&db, "right_t", 200, 40, &rng, nullptr);
  // Join on bucket (non-unique on both sides: all pairs must appear).
  const std::string query =
      "SELECT count(*), sum(l.id), sum(r.id) FROM left_t l, right_t r "
      "WHERE l.bucket = r.bucket";
  std::vector<std::vector<Value>> results;
  for (JoinMethod method :
       {JoinMethod::kHash, JoinMethod::kMerge, JoinMethod::kIndexNestedLoop}) {
    db.set_join_method(method);
    auto r = db.Execute(query);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    results.push_back({r.value().Get(0, 0), r.value().Get(0, 1), r.value().Get(0, 2)});
  }
  for (size_t m = 1; m < results.size(); ++m) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_TRUE(results[0][c].Equals(results[m][c]))
          << "method " << m << " column " << c << ": "
          << results[0][c].ToString() << " vs " << results[m][c].ToString();
    }
  }
}

TEST_P(RandomFilterTest, DeleteThenCountConsistent) {
  Rng rng(GetParam() + 3000);
  Database db;
  std::vector<std::tuple<int64_t, int64_t, double>> rows;
  BuildRandomTable(&db, "t", 300, 5, &rng, &rows);
  ASSERT_TRUE(db.Execute("DELETE FROM t WHERE bucket = 2").ok());
  auto total = db.Execute("SELECT count(*) FROM t");
  ASSERT_TRUE(total.ok());
  int64_t expected = 0;
  for (const auto& [id, bucket, val] : rows) {
    if (bucket != 2) ++expected;
  }
  EXPECT_EQ(total.value().Get(0, 0).AsInt(), expected);
  auto gone = db.Execute("SELECT count(*) FROM t WHERE bucket = 2");
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(gone.value().Get(0, 0).AsInt(), 0);
}

// Parallel execution regression (ISSUE 2): --threads=N must be
// BIT-identical to --threads=1 on the property corpus — same rows,
// same order, and exact binary equality for doubles (the executor's
// fixed batch decomposition guarantees identical float rounding for
// every thread count).
TEST_P(RandomFilterTest, ParallelExecutionBitIdenticalToSerial) {
  // Restore the hardware default even when an ASSERT exits the test
  // early, so a failure here can't bleed into the rest of the suite.
  struct ExecThreadsRestorer {
    ~ExecThreadsRestorer() { SetExecThreads(0); }
  } restore_threads;

  const std::vector<std::string> queries = {
      // Filter + computed projection crossing several batches.
      "SELECT id, val * 3.0 + bucket FROM t WHERE val < 66.0 AND bucket >= 2",
      // Grouped float aggregation (the merge-sensitive path).
      "SELECT bucket, count(*), sum(val), avg(val), min(val), max(val) "
      "FROM t GROUP BY bucket",
      // Global aggregate, no grouping.
      "SELECT count(*), sum(val), min(id), max(id) FROM t WHERE bucket <> 3",
      // Order by a float expression (sort keys computed per row).
      "SELECT id FROM t WHERE bucket < 9 ORDER BY val DESC LIMIT 500",
  };

  // 10k rows = several kScanBatchRows batches.
  Rng rng(GetParam() + 4000);
  Database db;
  BuildRandomTable(&db, "t", 10000, 10, &rng, nullptr);

  for (const std::string& query : queries) {
    SetExecThreads(1);
    auto serial = db.Execute(query);
    ASSERT_TRUE(serial.ok()) << query << " -> " << serial.status().ToString();
    for (int threads : {2, 4, 8}) {
      SetExecThreads(threads);
      auto parallel = db.Execute(query);
      ASSERT_TRUE(parallel.ok()) << query;
      ExpectChunksBitIdentical(serial.value(), parallel.value(),
                               query + " threads " + std::to_string(threads));
    }
  }
}

// Parallel join/sort regression (ISSUE 3): all three join methods and
// both ORDER BY paths must be BIT-identical across --threads — same
// rows, same order, same double bits — including NULL-key rows (which
// never join) and keys whose match runs straddle kScanBatchRows batch
// boundaries.
TEST_P(RandomFilterTest, JoinAndOrderByBitIdenticalAcrossThreads) {
  struct ExecThreadsRestorer {
    ~ExecThreadsRestorer() { SetExecThreads(0); }
  } restore_threads;

  Rng rng(GetParam() + 5000);
  Database db;
  // Both sides span multiple kScanBatchRows (2048) batches. ~5% of
  // join keys are NULL; every tenth row shares the hot key 7, so its
  // posting list and probe hits straddle every batch boundary; every
  // eleventh row has key 0, the value NULLs share as their storage
  // placeholder.
  auto build = [&](const std::string& name, int n) {
    ASSERT_TRUE(db.Execute("CREATE TABLE " + name +
                           " (id INT, k INT, k2 INT, val DOUBLE)")
                    .ok());
    auto table = db.GetTable(name);
    ASSERT_TRUE(table.ok());
    Chunk& chunk = table.value()->mutable_chunk();
    for (int i = 0; i < n; ++i) {
      chunk.mutable_column(0).AppendInt(i);
      if (rng.Uniform(20) == 0) {
        chunk.mutable_column(1).Append(Value::Null());
      } else if (i % 10 == 0) {
        chunk.mutable_column(1).AppendInt(7);
      } else if (i % 11 == 0) {
        chunk.mutable_column(1).AppendInt(0);
      } else {
        chunk.mutable_column(1).AppendInt(static_cast<int64_t>(rng.Uniform(300)));
      }
      chunk.mutable_column(2).AppendInt(static_cast<int64_t>(rng.Uniform(3)));
      chunk.mutable_column(3).Append(Value::Double(rng.NextDouble() * 100));
    }
  };
  build("lt", 5000);
  build("rt", 4100);
  // A declared index on rt.k gives index-nested-loop a real index to
  // probe (without one it silently falls back to hash).
  ASSERT_TRUE(db.GetTable("rt").value()->DeclareIndex("k").ok());

  const std::string join_query =
      "SELECT l.id, l.k, r.id, r.val FROM lt l, rt r WHERE l.k = r.k";
  const std::string multikey_join_query =
      "SELECT l.id, r.id FROM lt l, rt r WHERE l.k = r.k AND l.k2 = r.k2";
  for (JoinMethod method :
       {JoinMethod::kHash, JoinMethod::kMerge, JoinMethod::kIndexNestedLoop}) {
    db.set_join_method(method);
    const std::string tag = "method " + std::to_string(static_cast<int>(method));
    for (const std::string& query : {join_query, multikey_join_query}) {
      SetExecThreads(1);
      auto serial = db.Execute(query);
      ASSERT_TRUE(serial.ok()) << tag << ": " << serial.status().ToString();
      ASSERT_GT(serial.value().num_rows(), kScanBatchRows)
          << tag << ": join output too small to cross batch boundaries";
      for (int threads : {2, 4}) {
        SetExecThreads(threads);
        auto parallel = db.Execute(query);
        ASSERT_TRUE(parallel.ok()) << tag;
        ExpectChunksBitIdentical(
            serial.value(), parallel.value(),
            tag + " threads " + std::to_string(threads) + " " + query);
      }
    }
  }
  // The single-key query under INL must actually have probed the
  // index, not fallen back to hash.
  db.ResetStats();
  db.set_join_method(JoinMethod::kIndexNestedLoop);
  ASSERT_TRUE(db.Execute(join_query).ok());
  EXPECT_GT(db.stats()->index_probes, 0) << "INL fell back to hash";

  // With NULL keys present alongside the genuine key 0 (whose storage
  // placeholder NULLs share), the three methods must agree with each
  // other too, not just with their own serial runs.
  std::vector<Value> first_agg;
  for (JoinMethod method :
       {JoinMethod::kHash, JoinMethod::kMerge, JoinMethod::kIndexNestedLoop}) {
    db.set_join_method(method);
    auto agg = db.Execute(
        "SELECT count(*), sum(l.id), sum(r.id) FROM lt l, rt r "
        "WHERE l.k = r.k");
    ASSERT_TRUE(agg.ok()) << agg.status().ToString();
    std::vector<Value> row = {agg.value().Get(0, 0), agg.value().Get(0, 1),
                              agg.value().Get(0, 2)};
    if (first_agg.empty()) {
      first_agg = std::move(row);
    } else {
      for (size_t c = 0; c < first_agg.size(); ++c) {
        EXPECT_TRUE(first_agg[c].Equals(row[c]))
            << "method " << static_cast<int>(method) << " column " << c;
      }
    }
  }

  db.set_join_method(JoinMethod::kHash);
  const std::vector<std::string> order_queries = {
      // Pre-projection sort (keys resolve against the scan input),
      // multi-key with DESC and NULL keys.
      "SELECT id, k, val FROM lt ORDER BY k DESC, val",
      // Post-aggregation sort (ApplyOrderByLimit) over enough groups
      // to cross batch boundaries.
      "SELECT id, sum(val) AS s FROM lt GROUP BY id ORDER BY s DESC",
      // Join feeding an ORDER BY on a computed float expression.
      "SELECT l.id, r.id, l.val + r.val AS w FROM lt l, rt r "
      "WHERE l.k = r.k AND l.k2 = 1 ORDER BY l.val + r.val DESC LIMIT 3000",
  };
  for (const std::string& query : order_queries) {
    SetExecThreads(1);
    auto serial = db.Execute(query);
    ASSERT_TRUE(serial.ok()) << query << " -> " << serial.status().ToString();
    for (int threads : {2, 4}) {
      SetExecThreads(threads);
      auto parallel = db.Execute(query);
      ASSERT_TRUE(parallel.ok()) << query;
      ExpectChunksBitIdentical(serial.value(), parallel.value(),
                               query + " threads " + std::to_string(threads));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFilterTest,
                         ::testing::Values(1, 7, 42, 1234, 99999));

// Regression: NULL keys are stored as the placeholder 0 in the int
// column, so the merge join's sorted order used to slot them into a
// genuine key-0 run and emit them as matches. All methods must agree
// that NULL joins nothing, even against key 0.
TEST(JoinNullKeys, NullNeverMatchesKeyZeroInAnyMethod) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE lt0 (id INT, k INT)").ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE rt0 (id INT, k INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO lt0 VALUES (1, 0), (2, NULL)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO rt0 VALUES (10, 0), (11, NULL)").ok());
  ASSERT_TRUE(db.GetTable("rt0").value()->DeclareIndex("k").ok());
  for (JoinMethod method :
       {JoinMethod::kHash, JoinMethod::kMerge, JoinMethod::kIndexNestedLoop}) {
    db.set_join_method(method);
    auto r = db.Execute(
        "SELECT count(*) FROM lt0 l, rt0 r WHERE l.k = r.k");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().Get(0, 0).AsInt(), 1)
        << "method " << static_cast<int>(method)
        << ": only (1, 10) joins; NULLs must not match key 0";
  }
}

// --- Schema evolution primitives ---------------------------------------

TEST(SchemaEvolutionPrimitives, AddColumnBackfillsNull) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1), (2)").ok());
  auto table = db.GetTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(table.value()->AddColumn("b", DataType::kDouble).ok());
  auto r = db.Execute("SELECT count(*) FROM t WHERE b = 0.0");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().Get(0, 0).AsInt(), 0);  // NULL matches nothing
  ASSERT_TRUE(db.Execute("UPDATE t SET b = 1.5 WHERE a = 1").ok());
  auto set = db.Execute("SELECT b FROM t WHERE a = 1");
  ASSERT_TRUE(set.ok());
  EXPECT_DOUBLE_EQ(set.value().Get(0, 0).AsDouble(), 1.5);
  // Duplicate add rejected.
  EXPECT_EQ(table.value()->AddColumn("b", DataType::kInt64).code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaEvolutionPrimitives, WideningLattice) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT, s TEXT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (7, 'x')").ok());
  auto table = db.GetTable("t");
  ASSERT_TRUE(table.ok());
  // INT -> DOUBLE.
  ASSERT_TRUE(table.value()->AlterColumnType("a", DataType::kDouble).ok());
  auto r1 = db.Execute("SELECT a FROM t");
  ASSERT_TRUE(r1.ok());
  EXPECT_DOUBLE_EQ(r1.value().Get(0, 0).AsDouble(), 7.0);
  // DOUBLE -> TEXT.
  ASSERT_TRUE(table.value()->AlterColumnType("a", DataType::kString).ok());
  auto r2 = db.Execute("SELECT a FROM t");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().Get(0, 0).AsString(), "7");
  // Narrowing rejected.
  EXPECT_EQ(table.value()->AlterColumnType("s", DataType::kInt64).code(),
            StatusCode::kNotSupported);
}

// --- Sorted-array codec (the §3.2 compression ablation) ----------------

TEST(IntArrayCodecTest, RoundTripsRandomArrays) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    std::set<int64_t> unique;
    size_t target = rng.Uniform(200);
    while (unique.size() < target) {
      unique.insert(static_cast<int64_t>(rng.Uniform(100000)));
    }
    IntArray input(unique.begin(), unique.end());
    auto encoded = EncodeSortedArray(input);
    ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
    auto decoded = DecodeSortedArray(encoded.value());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value(), input);
  }
}

TEST(IntArrayCodecTest, ConsecutiveRunsCompressWell) {
  // A version rlist: mostly consecutive rids.
  IntArray rlist;
  for (int64_t r = 1000; r < 26000; ++r) rlist.push_back(r);
  rlist.push_back(50000);
  rlist.push_back(50001);
  auto encoded = EncodeSortedArray(rlist);
  ASSERT_TRUE(encoded.ok());
  // 25002 values * 8 bytes plain vs a handful of varint runs.
  EXPECT_LT(encoded.value().size(), 64u);
  EXPECT_EQ(PlainSize(rlist), 25002 * 8);
  auto decoded = DecodeSortedArray(encoded.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), rlist);
}

TEST(IntArrayCodecTest, RejectsUnsortedAndCorrupt) {
  EXPECT_FALSE(EncodeSortedArray({3, 2, 1}).ok());
  EXPECT_FALSE(EncodeSortedArray({1, 1}).ok());
  EXPECT_TRUE(EncodeSortedArray({}).ok());
  auto empty = EncodeSortedArray({});
  auto decoded_empty = DecodeSortedArray(empty.value());
  ASSERT_TRUE(decoded_empty.ok());
  EXPECT_TRUE(decoded_empty.value().empty());
  EXPECT_FALSE(DecodeSortedArray("").ok());
  auto good = EncodeSortedArray({1, 2, 3}).value();
  EXPECT_FALSE(DecodeSortedArray(good + "junk").ok());
  EXPECT_FALSE(DecodeSortedArray(good.substr(0, 1)).ok());
}

}  // namespace
}  // namespace orpheus::rel
