// Property-style tests of the relstore engine against reference
// implementations, over randomized inputs: filters, aggregation, the
// agreement of the three join algorithms, DML consistency, schema
// evolution, the sorted-array codec, and the bit-identical agreement
// of the parallel scan path with the serial one.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <string>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "relstore/database.h"
#include "relstore/intarray_codec.h"

namespace orpheus::rel {
namespace {

// Builds a table of `n` rows with columns (id INT, bucket INT, val
// DOUBLE) where bucket in [0, buckets).
void BuildRandomTable(Database* db, const std::string& name, int n, int buckets,
                      Rng* rng, std::vector<std::tuple<int64_t, int64_t, double>>* rows) {
  ASSERT_TRUE(db->Execute("CREATE TABLE " + name +
                          " (id INT, bucket INT, val DOUBLE, PRIMARY KEY (id))")
                  .ok());
  auto table = db->GetTable(name);
  ASSERT_TRUE(table.ok());
  Chunk& chunk = table.value()->mutable_chunk();
  for (int i = 0; i < n; ++i) {
    int64_t bucket = static_cast<int64_t>(rng->Uniform(static_cast<uint64_t>(buckets)));
    double val = rng->NextDouble() * 100;
    chunk.mutable_column(0).AppendInt(i);
    chunk.mutable_column(1).AppendInt(bucket);
    chunk.mutable_column(2).Append(Value::Double(val));
    if (rows != nullptr) rows->emplace_back(i, bucket, val);
  }
}

class RandomFilterTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomFilterTest, FilterMatchesReference) {
  Rng rng(GetParam());
  Database db;
  std::vector<std::tuple<int64_t, int64_t, double>> rows;
  BuildRandomTable(&db, "t", 500, 10, &rng, &rows);

  for (int64_t threshold : {0, 3, 7, 10}) {
    auto r = db.Execute("SELECT count(*) FROM t WHERE bucket >= " +
                        std::to_string(threshold) + " AND val < 50.0");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    int64_t expected = 0;
    for (const auto& [id, bucket, val] : rows) {
      if (bucket >= threshold && val < 50.0) ++expected;
    }
    EXPECT_EQ(r.value().Get(0, 0).AsInt(), expected) << "threshold " << threshold;
  }
}

TEST_P(RandomFilterTest, GroupByMatchesReference) {
  Rng rng(GetParam() + 1000);
  Database db;
  std::vector<std::tuple<int64_t, int64_t, double>> rows;
  BuildRandomTable(&db, "t", 400, 7, &rng, &rows);

  auto r = db.Execute(
      "SELECT bucket, count(*) AS cnt, sum(val) AS total, min(val), max(val) "
      "FROM t GROUP BY bucket ORDER BY bucket");
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  std::map<int64_t, std::tuple<int64_t, double, double, double>> reference;
  for (const auto& [id, bucket, val] : rows) {
    auto it = reference.find(bucket);
    if (it == reference.end()) {
      reference[bucket] = {1, val, val, val};
    } else {
      auto& [cnt, sum, mn, mx] = it->second;
      ++cnt;
      sum += val;
      mn = std::min(mn, val);
      mx = std::max(mx, val);
    }
  }
  ASSERT_EQ(r.value().num_rows(), reference.size());
  size_t row = 0;
  for (const auto& [bucket, agg] : reference) {
    EXPECT_EQ(r.value().Get(row, 0).AsInt(), bucket);
    EXPECT_EQ(r.value().Get(row, 1).AsInt(), std::get<0>(agg));
    EXPECT_NEAR(r.value().Get(row, 2).AsDouble(), std::get<1>(agg), 1e-6);
    EXPECT_NEAR(r.value().Get(row, 3).AsDouble(), std::get<2>(agg), 1e-9);
    EXPECT_NEAR(r.value().Get(row, 4).AsDouble(), std::get<3>(agg), 1e-9);
    ++row;
  }
}

TEST_P(RandomFilterTest, JoinMethodsAgree) {
  Rng rng(GetParam() + 2000);
  Database db;
  BuildRandomTable(&db, "left_t", 300, 40, &rng, nullptr);
  BuildRandomTable(&db, "right_t", 200, 40, &rng, nullptr);
  // Join on bucket (non-unique on both sides: all pairs must appear).
  const std::string query =
      "SELECT count(*), sum(l.id), sum(r.id) FROM left_t l, right_t r "
      "WHERE l.bucket = r.bucket";
  std::vector<std::vector<Value>> results;
  for (JoinMethod method :
       {JoinMethod::kHash, JoinMethod::kMerge, JoinMethod::kIndexNestedLoop}) {
    db.set_join_method(method);
    auto r = db.Execute(query);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    results.push_back({r.value().Get(0, 0), r.value().Get(0, 1), r.value().Get(0, 2)});
  }
  for (size_t m = 1; m < results.size(); ++m) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_TRUE(results[0][c].Equals(results[m][c]))
          << "method " << m << " column " << c << ": "
          << results[0][c].ToString() << " vs " << results[m][c].ToString();
    }
  }
}

TEST_P(RandomFilterTest, DeleteThenCountConsistent) {
  Rng rng(GetParam() + 3000);
  Database db;
  std::vector<std::tuple<int64_t, int64_t, double>> rows;
  BuildRandomTable(&db, "t", 300, 5, &rng, &rows);
  ASSERT_TRUE(db.Execute("DELETE FROM t WHERE bucket = 2").ok());
  auto total = db.Execute("SELECT count(*) FROM t");
  ASSERT_TRUE(total.ok());
  int64_t expected = 0;
  for (const auto& [id, bucket, val] : rows) {
    if (bucket != 2) ++expected;
  }
  EXPECT_EQ(total.value().Get(0, 0).AsInt(), expected);
  auto gone = db.Execute("SELECT count(*) FROM t WHERE bucket = 2");
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(gone.value().Get(0, 0).AsInt(), 0);
}

// Parallel execution regression (ISSUE 2): --threads=N must be
// BIT-identical to --threads=1 on the property corpus — same rows,
// same order, and exact binary equality for doubles (the executor's
// fixed batch decomposition guarantees identical float rounding for
// every thread count).
TEST_P(RandomFilterTest, ParallelExecutionBitIdenticalToSerial) {
  // Restore the hardware default even when an ASSERT exits the test
  // early, so a failure here can't bleed into the rest of the suite.
  struct ExecThreadsRestorer {
    ~ExecThreadsRestorer() { SetExecThreads(0); }
  } restore_threads;

  const std::vector<std::string> queries = {
      // Filter + computed projection crossing several batches.
      "SELECT id, val * 3.0 + bucket FROM t WHERE val < 66.0 AND bucket >= 2",
      // Grouped float aggregation (the merge-sensitive path).
      "SELECT bucket, count(*), sum(val), avg(val), min(val), max(val) "
      "FROM t GROUP BY bucket",
      // Global aggregate, no grouping.
      "SELECT count(*), sum(val), min(id), max(id) FROM t WHERE bucket <> 3",
      // Order by a float expression (sort keys computed per row).
      "SELECT id FROM t WHERE bucket < 9 ORDER BY val DESC LIMIT 500",
  };

  auto bits_equal = [](const Value& a, const Value& b) {
    if (a.is_null() != b.is_null()) return false;
    if (a.is_null()) return true;
    if (a.type() != b.type()) return false;
    if (a.type() == DataType::kDouble) {
      double x = a.AsDouble();
      double y = b.AsDouble();
      return std::memcmp(&x, &y, sizeof(x)) == 0;
    }
    return a.Equals(b);
  };

  // 10k rows = several kScanBatchRows batches.
  Rng rng(GetParam() + 4000);
  Database db;
  BuildRandomTable(&db, "t", 10000, 10, &rng, nullptr);

  for (const std::string& query : queries) {
    SetExecThreads(1);
    auto serial = db.Execute(query);
    ASSERT_TRUE(serial.ok()) << query << " -> " << serial.status().ToString();
    for (int threads : {2, 4, 8}) {
      SetExecThreads(threads);
      auto parallel = db.Execute(query);
      ASSERT_TRUE(parallel.ok()) << query;
      const Chunk& s = serial.value();
      const Chunk& p = parallel.value();
      ASSERT_EQ(s.num_rows(), p.num_rows()) << query << " threads " << threads;
      ASSERT_EQ(s.num_columns(), p.num_columns()) << query;
      for (size_t r = 0; r < s.num_rows(); ++r) {
        for (int c = 0; c < s.num_columns(); ++c) {
          ASSERT_TRUE(bits_equal(s.Get(r, c), p.Get(r, c)))
              << query << " threads " << threads << " row " << r << " col "
              << c << ": " << s.Get(r, c).ToString() << " vs "
              << p.Get(r, c).ToString();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFilterTest,
                         ::testing::Values(1, 7, 42, 1234, 99999));

// --- Schema evolution primitives ---------------------------------------

TEST(SchemaEvolutionPrimitives, AddColumnBackfillsNull) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1), (2)").ok());
  auto table = db.GetTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(table.value()->AddColumn("b", DataType::kDouble).ok());
  auto r = db.Execute("SELECT count(*) FROM t WHERE b = 0.0");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().Get(0, 0).AsInt(), 0);  // NULL matches nothing
  ASSERT_TRUE(db.Execute("UPDATE t SET b = 1.5 WHERE a = 1").ok());
  auto set = db.Execute("SELECT b FROM t WHERE a = 1");
  ASSERT_TRUE(set.ok());
  EXPECT_DOUBLE_EQ(set.value().Get(0, 0).AsDouble(), 1.5);
  // Duplicate add rejected.
  EXPECT_EQ(table.value()->AddColumn("b", DataType::kInt64).code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaEvolutionPrimitives, WideningLattice) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT, s TEXT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (7, 'x')").ok());
  auto table = db.GetTable("t");
  ASSERT_TRUE(table.ok());
  // INT -> DOUBLE.
  ASSERT_TRUE(table.value()->AlterColumnType("a", DataType::kDouble).ok());
  auto r1 = db.Execute("SELECT a FROM t");
  ASSERT_TRUE(r1.ok());
  EXPECT_DOUBLE_EQ(r1.value().Get(0, 0).AsDouble(), 7.0);
  // DOUBLE -> TEXT.
  ASSERT_TRUE(table.value()->AlterColumnType("a", DataType::kString).ok());
  auto r2 = db.Execute("SELECT a FROM t");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().Get(0, 0).AsString(), "7");
  // Narrowing rejected.
  EXPECT_EQ(table.value()->AlterColumnType("s", DataType::kInt64).code(),
            StatusCode::kNotSupported);
}

// --- Sorted-array codec (the §3.2 compression ablation) ----------------

TEST(IntArrayCodecTest, RoundTripsRandomArrays) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    std::set<int64_t> unique;
    size_t target = rng.Uniform(200);
    while (unique.size() < target) {
      unique.insert(static_cast<int64_t>(rng.Uniform(100000)));
    }
    IntArray input(unique.begin(), unique.end());
    auto encoded = EncodeSortedArray(input);
    ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
    auto decoded = DecodeSortedArray(encoded.value());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value(), input);
  }
}

TEST(IntArrayCodecTest, ConsecutiveRunsCompressWell) {
  // A version rlist: mostly consecutive rids.
  IntArray rlist;
  for (int64_t r = 1000; r < 26000; ++r) rlist.push_back(r);
  rlist.push_back(50000);
  rlist.push_back(50001);
  auto encoded = EncodeSortedArray(rlist);
  ASSERT_TRUE(encoded.ok());
  // 25002 values * 8 bytes plain vs a handful of varint runs.
  EXPECT_LT(encoded.value().size(), 64u);
  EXPECT_EQ(PlainSize(rlist), 25002 * 8);
  auto decoded = DecodeSortedArray(encoded.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), rlist);
}

TEST(IntArrayCodecTest, RejectsUnsortedAndCorrupt) {
  EXPECT_FALSE(EncodeSortedArray({3, 2, 1}).ok());
  EXPECT_FALSE(EncodeSortedArray({1, 1}).ok());
  EXPECT_TRUE(EncodeSortedArray({}).ok());
  auto empty = EncodeSortedArray({});
  auto decoded_empty = DecodeSortedArray(empty.value());
  ASSERT_TRUE(decoded_empty.ok());
  EXPECT_TRUE(decoded_empty.value().empty());
  EXPECT_FALSE(DecodeSortedArray("").ok());
  auto good = EncodeSortedArray({1, 2, 3}).value();
  EXPECT_FALSE(DecodeSortedArray(good + "junk").ok());
  EXPECT_FALSE(DecodeSortedArray(good.substr(0, 1)).ok());
}

}  // namespace
}  // namespace orpheus::rel
