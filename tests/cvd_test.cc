// Integration tests for the CVD layer across all five data models:
// init / checkout / commit round trips, record immutability and rid
// reuse, branching, merging with primary-key precedence, diff, schema
// evolution, and the metadata tables.

#include <gtest/gtest.h>

#include <set>

#include "core/cvd.h"
#include "core/data_model.h"
#include "relstore/database.h"

namespace orpheus::core {
namespace {

rel::Schema ProteinSchema() {
  return rel::Schema({{"protein1", rel::DataType::kString},
                      {"protein2", rel::DataType::kString},
                      {"neighborhood", rel::DataType::kInt64},
                      {"cooccurrence", rel::DataType::kInt64},
                      {"coexpression", rel::DataType::kInt64}});
}

// The running example of Figure 1: version v1's three records.
rel::Chunk InitialRows() {
  rel::Chunk rows(ProteinSchema());
  rows.AppendRow({rel::Value::String("ENSP273047"), rel::Value::String("ENSP261890"),
                  rel::Value::Int(0), rel::Value::Int(53), rel::Value::Int(0)});
  rows.AppendRow({rel::Value::String("ENSP273047"), rel::Value::String("ENSP235932"),
                  rel::Value::Int(0), rel::Value::Int(87), rel::Value::Int(0)});
  rows.AppendRow({rel::Value::String("ENSP300413"), rel::Value::String("ENSP274242"),
                  rel::Value::Int(426), rel::Value::Int(0), rel::Value::Int(164)});
  return rows;
}

class CvdModelTest : public ::testing::TestWithParam<DataModelKind> {
 protected:
  void SetUp() override {
    CvdOptions options;
    options.model = GetParam();
    options.primary_key = {"protein1", "protein2"};
    auto cvd = Cvd::Create(&db_, "protein", ProteinSchema(), options);
    ASSERT_TRUE(cvd.ok()) << cvd.status().ToString();
    cvd_ = std::move(cvd).value();
    auto v1 = cvd_->InitVersion(InitialRows(), "initial import");
    ASSERT_TRUE(v1.ok()) << v1.status().ToString();
    ASSERT_EQ(v1.value(), 1);
  }

  // Returns the number of rows in a staged/materialized table.
  int64_t RowCount(const std::string& table) {
    auto r = db_.Execute("SELECT count(*) FROM " + table);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.value().Get(0, 0).AsInt() : -1;
  }

  rel::Database db_;
  std::unique_ptr<Cvd> cvd_;
};

TEST_P(CvdModelTest, CheckoutMaterializesVersion) {
  ASSERT_TRUE(cvd_->Checkout({1}, "w1").ok());
  EXPECT_EQ(RowCount("w1"), 3);
  // Schema is rid + the five data attributes.
  auto table = db_.GetTable("w1");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value()->schema().num_columns(), 6);
  EXPECT_EQ(table.value()->schema().column(0).name, "rid");
}

TEST_P(CvdModelTest, CommitUnchangedReusesAllRecords) {
  ASSERT_TRUE(cvd_->Checkout({1}, "w1").ok());
  auto v2 = cvd_->Commit("w1", "no changes");
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_EQ(v2.value(), 2);
  // No new records were created.
  EXPECT_EQ(cvd_->total_records(), 3);
  // The staged table is cleaned up by commit.
  EXPECT_FALSE(db_.HasTable("w1"));
  // Edge weight to the parent equals the full record count.
  auto node = cvd_->graph().GetNode(2);
  ASSERT_TRUE(node.ok());
  ASSERT_EQ(node.value()->parents.size(), 1u);
  EXPECT_EQ(node.value()->parent_weights[0], 3);
}

TEST_P(CvdModelTest, ModifiedRowBecomesNewRecord) {
  ASSERT_TRUE(cvd_->Checkout({1}, "w1").ok());
  // Figure 1's evolution: coexpression of the first record changes
  // 0 -> 83, a new immutable record.
  ASSERT_TRUE(db_.Execute("UPDATE w1 SET coexpression = 83 "
                          "WHERE protein2 = 'ENSP261890'").ok());
  auto v2 = cvd_->Commit("w1", "update coexpression");
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_EQ(cvd_->total_records(), 4);  // 3 original + 1 new version of r1
  auto node = cvd_->graph().GetNode(v2.value());
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node.value()->parent_weights[0], 2);  // two records shared
  EXPECT_EQ(node.value()->num_records, 3);
}

TEST_P(CvdModelTest, InsertAndDeleteRows) {
  ASSERT_TRUE(cvd_->Checkout({1}, "w1").ok());
  ASSERT_TRUE(db_.Execute("DELETE FROM w1 WHERE protein1 = 'ENSP300413'").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO w1 VALUES (0, 'ENSP309334', 'ENSP346022', "
                          "0, 227, 975)").ok());
  auto v2 = cvd_->Commit("w1", "replace a record");
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  ASSERT_TRUE(cvd_->Checkout({v2.value()}, "w2").ok());
  EXPECT_EQ(RowCount("w2"), 3);
  auto r = db_.Execute("SELECT count(*) FROM w2 WHERE protein1 = 'ENSP309334'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().Get(0, 0).AsInt(), 1);
}

TEST_P(CvdModelTest, BranchingFromOneParent) {
  // Two children of v1 with different edits.
  ASSERT_TRUE(cvd_->Checkout({1}, "wa").ok());
  ASSERT_TRUE(db_.Execute("UPDATE wa SET neighborhood = 7 "
                          "WHERE protein2 = 'ENSP261890'").ok());
  auto v2 = cvd_->Commit("wa", "branch a");
  ASSERT_TRUE(v2.ok());

  ASSERT_TRUE(cvd_->Checkout({1}, "wb").ok());
  ASSERT_TRUE(db_.Execute("UPDATE wb SET cooccurrence = 99 "
                          "WHERE protein2 = 'ENSP235932'").ok());
  auto v3 = cvd_->Commit("wb", "branch b");
  ASSERT_TRUE(v3.ok());

  auto children = cvd_->graph().GetNode(1).value()->children;
  EXPECT_EQ(children.size(), 2u);
  // The two branches see different data.
  ASSERT_TRUE(cvd_->Checkout({v2.value()}, "ra").ok());
  ASSERT_TRUE(cvd_->Checkout({v3.value()}, "rb").ok());
  auto a = db_.Execute("SELECT count(*) FROM ra WHERE neighborhood = 7");
  auto b = db_.Execute("SELECT count(*) FROM rb WHERE neighborhood = 7");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().Get(0, 0).AsInt(), 1);
  EXPECT_EQ(b.value().Get(0, 0).AsInt(), 0);
}

TEST_P(CvdModelTest, MergeCheckoutUsesPrecedence) {
  // Both branches modify the SAME logical record (same PK); the first
  // listed version must win (§2.2 precedence rule).
  ASSERT_TRUE(cvd_->Checkout({1}, "wa").ok());
  ASSERT_TRUE(db_.Execute("UPDATE wa SET coexpression = 11 "
                          "WHERE protein2 = 'ENSP261890'").ok());
  auto v2 = cvd_->Commit("wa", "branch a");
  ASSERT_TRUE(v2.ok());
  ASSERT_TRUE(cvd_->Checkout({1}, "wb").ok());
  ASSERT_TRUE(db_.Execute("UPDATE wb SET coexpression = 22 "
                          "WHERE protein2 = 'ENSP261890'").ok());
  auto v3 = cvd_->Commit("wb", "branch b");
  ASSERT_TRUE(v3.ok());

  ASSERT_TRUE(cvd_->Checkout({v2.value(), v3.value()}, "merged").ok());
  EXPECT_EQ(RowCount("merged"), 3);  // PK dedupe, not 4 rows
  auto r = db_.Execute(
      "SELECT coexpression FROM merged WHERE protein2 = 'ENSP261890'");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().num_rows(), 1u);
  EXPECT_EQ(r.value().Get(0, 0).AsInt(), 11);  // v2 listed first wins

  // Committing the merge creates a version with two parents.
  auto v4 = cvd_->Commit("merged", "merge");
  ASSERT_TRUE(v4.ok()) << v4.status().ToString();
  auto node = cvd_->graph().GetNode(v4.value());
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node.value()->parents.size(), 2u);
}

TEST_P(CvdModelTest, DiffFindsAsymmetricRecords) {
  ASSERT_TRUE(cvd_->Checkout({1}, "w1").ok());
  ASSERT_TRUE(db_.Execute("UPDATE w1 SET coexpression = 83 "
                          "WHERE protein2 = 'ENSP261890'").ok());
  auto v2 = cvd_->Commit("w1", "edit");
  ASSERT_TRUE(v2.ok());
  auto fwd = cvd_->Diff(v2.value(), 1);
  ASSERT_TRUE(fwd.ok()) << fwd.status().ToString();
  EXPECT_EQ(fwd.value().num_rows(), 1u);  // the modified record
  auto bwd = cvd_->Diff(1, v2.value());
  ASSERT_TRUE(bwd.ok());
  EXPECT_EQ(bwd.value().num_rows(), 1u);  // the replaced original
  auto self = cvd_->Diff(1, 1);
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(self.value().num_rows(), 0u);
}

TEST_P(CvdModelTest, CommitWithoutCheckoutFails) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE rogue (rid INT, x INT)").ok());
  EXPECT_EQ(cvd_->Commit("rogue", "no provenance").status().code(),
            StatusCode::kNotFound);
}

TEST_P(CvdModelTest, PrimaryKeyViolationRejected) {
  ASSERT_TRUE(cvd_->Checkout({1}, "w1").ok());
  // Duplicate an existing primary key.
  ASSERT_TRUE(db_.Execute("INSERT INTO w1 VALUES (0, 'ENSP273047', "
                          "'ENSP261890', 1, 1, 1)").ok());
  EXPECT_EQ(cvd_->Commit("w1", "dup pk").status().code(),
            StatusCode::kConstraintViolation);
}

TEST_P(CvdModelTest, DiscardStagedDropsTable) {
  ASSERT_TRUE(cvd_->Checkout({1}, "w1").ok());
  ASSERT_TRUE(cvd_->DiscardStaged("w1").ok());
  EXPECT_FALSE(db_.HasTable("w1"));
  EXPECT_EQ(cvd_->staged_tables().size(), 0u);
}

TEST_P(CvdModelTest, CheckoutIntoExistingTableFails) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE taken (x INT)").ok());
  EXPECT_EQ(cvd_->Checkout({1}, "taken").code(), StatusCode::kAlreadyExists);
}

TEST_P(CvdModelTest, VersionRecordsAndRowsAgree) {
  ASSERT_TRUE(cvd_->Checkout({1}, "w1").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO w1 VALUES (0, 'X', 'Y', 1, 2, 3)").ok());
  auto v2 = cvd_->Commit("w1", "add");
  ASSERT_TRUE(v2.ok());
  auto rids = cvd_->model()->VersionRecords(v2.value());
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(rids.value().size(), 4u);
  auto rows = cvd_->model()->VersionRows(v2.value());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().num_rows(), 4u);
  // rid sets agree.
  std::set<RecordId> a(rids.value().begin(), rids.value().end());
  std::set<RecordId> b;
  int rid_col = rows.value().schema().FindColumn("rid");
  for (size_t r = 0; r < rows.value().num_rows(); ++r) {
    b.insert(rows.value().column(rid_col).ints()[r]);
  }
  EXPECT_EQ(a, b);
}

TEST_P(CvdModelTest, StorageBytesPositive) {
  EXPECT_GT(cvd_->StorageBytes(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, CvdModelTest,
    ::testing::Values(DataModelKind::kSplitByRlist, DataModelKind::kSplitByVlist,
                      DataModelKind::kCombinedTable, DataModelKind::kDeltaBased,
                      DataModelKind::kTablePerVersion),
    [](const ::testing::TestParamInfo<DataModelKind>& info) {
      std::string name = DataModelKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --- Schema evolution (split models only, §3.3) ------------------------

class SchemaEvolutionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CvdOptions options;
    options.model = DataModelKind::kSplitByRlist;
    auto cvd = Cvd::Create(&db_, "p", ProteinSchema(), options);
    ASSERT_TRUE(cvd.ok());
    cvd_ = std::move(cvd).value();
    ASSERT_TRUE(cvd_->InitVersion(InitialRows(), "init").ok());
  }
  rel::Database db_;
  std::unique_ptr<Cvd> cvd_;
};

TEST_F(SchemaEvolutionTest, AddedColumnBackfillsNulls) {
  ASSERT_TRUE(cvd_->Checkout({1}, "w").ok());
  // User adds a column in their workspace (simulate by rebuilding the
  // staged table with an extra attribute).
  ASSERT_TRUE(db_.Execute("SELECT rid, protein1, protein2, neighborhood, "
                          "cooccurrence, coexpression, neighborhood * 2 AS fusion "
                          "INTO w2 FROM w").ok());
  ASSERT_TRUE(db_.DropTable("w").ok());
  // Re-register provenance under the new name by checking out again is
  // not possible; instead rename via the staged map: use checkout to a
  // fresh table and commit that path in real flows. For the test, go
  // through the CVD API: check out, then commit the widened table via
  // a fresh checkout name.
  ASSERT_TRUE(db_.Execute("SELECT * INTO w FROM w2").ok());
  ASSERT_TRUE(db_.DropTable("w2").ok());
  auto v2 = cvd_->Commit("w", "add fusion attribute");
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();

  // The CVD schema now carries 6 attributes; v1 checkouts still show 5.
  EXPECT_EQ(cvd_->model()->data_schema().num_columns(), 6);
  ASSERT_TRUE(cvd_->Checkout({1}, "old").ok());
  auto old_table = db_.GetTable("old");
  ASSERT_TRUE(old_table.ok());
  EXPECT_EQ(old_table.value()->schema().num_columns(), 6);  // rid + 5
  ASSERT_TRUE(cvd_->Checkout({v2.value()}, "cur").ok());
  auto cur_table = db_.GetTable("cur");
  ASSERT_TRUE(cur_table.ok());
  EXPECT_EQ(cur_table.value()->schema().num_columns(), 7);  // rid + 6
}

TEST_F(SchemaEvolutionTest, TypeWideningIntToDouble) {
  ASSERT_TRUE(cvd_->Checkout({1}, "w").ok());
  // cooccurrence becomes DOUBLE (the paper's a4 -> a5 example).
  ASSERT_TRUE(db_.Execute("SELECT rid, protein1, protein2, neighborhood, "
                          "cooccurrence * 0.5 AS cooccurrence, coexpression "
                          "INTO wt FROM w").ok());
  ASSERT_TRUE(db_.DropTable("w").ok());
  ASSERT_TRUE(db_.Execute("SELECT * INTO w FROM wt").ok());
  ASSERT_TRUE(db_.DropTable("wt").ok());
  auto v2 = cvd_->Commit("w", "widen cooccurrence");
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();

  // A new attribute entry exists for the widened type.
  int cooccurrence_entries = 0;
  for (const AttributeEntry& attr : cvd_->attributes()) {
    if (attr.name == "cooccurrence") ++cooccurrence_entries;
  }
  EXPECT_EQ(cooccurrence_entries, 2);
  // The pool column is now DOUBLE.
  auto data = db_.GetTable("p_data");
  ASSERT_TRUE(data.ok());
  int col = data.value()->schema().FindColumn("cooccurrence");
  EXPECT_EQ(data.value()->schema().column(col).type, rel::DataType::kDouble);
}

TEST_F(SchemaEvolutionTest, MetadataTablesPopulated) {
  auto meta = db_.Execute("SELECT vid, msg FROM p_meta ORDER BY vid");
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  ASSERT_EQ(meta.value().num_rows(), 1u);
  EXPECT_EQ(meta.value().Get(0, 1).AsString(), "init");
  auto attrs = db_.Execute("SELECT count(*) FROM p_attr");
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs.value().Get(0, 0).AsInt(), 5);
}

}  // namespace
}  // namespace orpheus::core
