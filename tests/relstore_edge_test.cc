// Edge-case tests for the relstore executor: NULL semantics through
// joins, filters, and aggregates; unnest corner cases; DISTINCT on
// arrays; ORDER BY stability; and page-model sanity.

#include <gtest/gtest.h>

#include "relstore/database.h"

namespace orpheus::rel {
namespace {

class EdgeTest : public ::testing::Test {
 protected:
  Chunk Must(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).value() : Chunk();
  }
  Database db_;
};

TEST_F(EdgeTest, NullNeverMatchesInFilters) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT, b INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t (a) VALUES (1)").ok());  // b NULL
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (2, 5)").ok());
  EXPECT_EQ(Must("SELECT count(*) FROM t WHERE b = 5").Get(0, 0).AsInt(), 1);
  // NULL fails every comparison, including <>.
  EXPECT_EQ(Must("SELECT count(*) FROM t WHERE b <> 5").Get(0, 0).AsInt(), 0);
  EXPECT_EQ(Must("SELECT count(*) FROM t WHERE b < 100").Get(0, 0).AsInt(), 1);
}

TEST_F(EdgeTest, NullKeysDropOutOfJoins) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE l (k INT, PRIMARY KEY (k))").ok());
  ASSERT_TRUE(db_.Execute("CREATE TABLE r (k2 INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO l VALUES (1), (2)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO l (k) VALUES (NULL)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO r VALUES (1)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO r (k2) VALUES (NULL)").ok());
  // NULL = NULL is not a match, under every join algorithm.
  for (JoinMethod method :
       {JoinMethod::kHash, JoinMethod::kMerge, JoinMethod::kIndexNestedLoop}) {
    db_.set_join_method(method);
    EXPECT_EQ(Must("SELECT count(*) FROM r, l WHERE k = k2").Get(0, 0).AsInt(), 1)
        << "method " << static_cast<int>(method);
  }
}

TEST_F(EdgeTest, AggregatesIgnoreNulls) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (v INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (10), (20)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t (v) VALUES (NULL)").ok());
  Chunk out = Must("SELECT count(*), count(v), sum(v), avg(v) FROM t");
  EXPECT_EQ(out.Get(0, 0).AsInt(), 3);  // count(*) counts rows
  EXPECT_EQ(out.Get(0, 1).AsInt(), 2);  // count(v) skips NULL
  EXPECT_EQ(out.Get(0, 2).AsInt(), 30);
  EXPECT_DOUBLE_EQ(out.Get(0, 3).AsDouble(), 15.0);
}

TEST_F(EdgeTest, GroupByNullFormsItsOwnGroup) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (g INT, v INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (1, 10), (1, 20)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t (v) VALUES (30), (40)").ok());
  Chunk out = Must("SELECT g, count(*) FROM t GROUP BY g");
  EXPECT_EQ(out.num_rows(), 2u);  // group 1 and the NULL group
}

TEST_F(EdgeTest, UnnestOfEmptyArrayYieldsNoRows) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (vid INT, rlist INT[])").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (1, ARRAY[]), "
                          "(2, ARRAY[7, 8])").ok());
  Chunk out = Must("SELECT unnest(rlist) AS r FROM t");
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.Get(0, 0).AsInt(), 7);
}

TEST_F(EdgeTest, UnnestPreservesSiblingColumns) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (vid INT, rlist INT[])").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (5, ARRAY[1, 2, 3])").ok());
  Chunk out = Must("SELECT vid, unnest(rlist) AS r, vid * 10 AS x FROM t");
  ASSERT_EQ(out.num_rows(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out.Get(i, 0).AsInt(), 5);
    EXPECT_EQ(out.Get(i, 2).AsInt(), 50);
  }
}

TEST_F(EdgeTest, DistinctOnArrayColumn) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT[])").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (ARRAY[1, 2]), (ARRAY[1, 2]), "
                          "(ARRAY[1])").ok());
  EXPECT_EQ(Must("SELECT DISTINCT a FROM t").num_rows(), 2u);
}

TEST_F(EdgeTest, OrderByIsStable) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (k INT, tag TEXT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (1, 'a'), (1, 'b'), (0, 'c'), "
                          "(1, 'd')").ok());
  Chunk out = Must("SELECT tag FROM t ORDER BY k");
  ASSERT_EQ(out.num_rows(), 4u);
  EXPECT_EQ(out.Get(0, 0).AsString(), "c");
  // Equal keys keep insertion order.
  EXPECT_EQ(out.Get(1, 0).AsString(), "a");
  EXPECT_EQ(out.Get(2, 0).AsString(), "b");
  EXPECT_EQ(out.Get(3, 0).AsString(), "d");
}

TEST_F(EdgeTest, LimitZeroAndBeyondSize) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (1), (2)").ok());
  EXPECT_EQ(Must("SELECT a FROM t LIMIT 0").num_rows(), 0u);
  EXPECT_EQ(Must("SELECT a FROM t LIMIT 99").num_rows(), 2u);
}

TEST_F(EdgeTest, InSubqueryAgainstEmptyResult) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(db_.Execute("CREATE TABLE empty_t (b INT)").ok());
  EXPECT_EQ(
      Must("SELECT count(*) FROM t WHERE a IN (SELECT b FROM empty_t)")
          .Get(0, 0)
          .AsInt(),
      0);
}

TEST_F(EdgeTest, StringInSubquery) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (s TEXT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES ('x'), ('y')").ok());
  ASSERT_TRUE(db_.Execute("CREATE TABLE probe (s2 TEXT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO probe VALUES ('y'), ('z')").ok());
  EXPECT_EQ(Must("SELECT count(*) FROM t WHERE s IN (SELECT s2 FROM probe)")
                .Get(0, 0)
                .AsInt(),
            1);
}

TEST_F(EdgeTest, SelfJoinViaAliases) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (k INT, v INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 10)").ok());
  // Pairs of distinct rows sharing v.
  Chunk out = Must("SELECT a.k, b.k FROM t a, t b "
                   "WHERE a.v = b.v AND a.k < b.k");
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.Get(0, 0).AsInt(), 1);
  EXPECT_EQ(out.Get(0, 1).AsInt(), 3);
}

TEST_F(EdgeTest, PageModelScalesWithRows) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT)").ok());
  auto table = db_.GetTable("t");
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 10000; ++i) {
    table.value()->mutable_chunk().mutable_column(0).AppendInt(i);
  }
  EXPECT_GT(table.value()->num_pages(), 1);
  EXPECT_LE(table.value()->rows_per_page(), 8192 / 8 + 1);
  // Clustering keeps row count, changes order.
  ASSERT_TRUE(table.value()->ClusterBy("a").ok());
  EXPECT_EQ(table.value()->num_rows(), 10000u);
  EXPECT_EQ(table.value()->clustered_on(), "a");
}

TEST_F(EdgeTest, ArrayConcatOperators) {
  Chunk a = Must("SELECT ARRAY[1, 2] || ARRAY[3]");
  EXPECT_EQ(a.Get(0, 0).AsArray().size(), 3u);
  Chunk b = Must("SELECT ARRAY[1] || 5");
  EXPECT_EQ(b.Get(0, 0).AsArray().back(), 5);
  Chunk c = Must("SELECT 'ab' || 'cd'");
  EXPECT_EQ(c.Get(0, 0).AsString(), "abcd");
  Chunk d = Must("SELECT array_length(ARRAY[1,2,3] + 9)");
  EXPECT_EQ(d.Get(0, 0).AsInt(), 4);
}

TEST_F(EdgeTest, ContainmentEdgeCases) {
  // Empty array is contained in anything.
  EXPECT_TRUE(Must("SELECT ARRAY[] <@ ARRAY[1]").Get(0, 0).AsBool());
  EXPECT_TRUE(Must("SELECT ARRAY[] <@ ARRAY[]").Get(0, 0).AsBool());
  EXPECT_FALSE(Must("SELECT ARRAY[1] <@ ARRAY[]").Get(0, 0).AsBool());
  EXPECT_TRUE(Must("SELECT ARRAY[2, 2] <@ ARRAY[1, 2]").Get(0, 0).AsBool());
}

}  // namespace
}  // namespace orpheus::rel
