// PartitionStore: the physical side of the partition optimizer.
//
// Materializes a Partitioning of a split-by-rlist CVD as real table
// pairs <cvd>_p<id>_data / <cvd>_p<id>_rlist inside the backing
// database, so that checking out a version touches exactly one
// partition's tables (§4.1's single-partition-per-version invariant).
//
// Also implements the migration engine of §4.3: `Migrate` transforms
// the current physical layout into a new partitioning either naively
// (drop + rebuild) or intelligently (match each new partition to its
// closest existing partition by modification cost and apply row-level
// inserts/deletes).

#ifndef ORPHEUS_PARTITION_PARTITION_STORE_H_
#define ORPHEUS_PARTITION_PARTITION_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "partition/bipartite.h"
#include "relstore/database.h"

namespace orpheus::part {

class PartitionStore {
 public:
  // `source_data_table` is the CVD's unpartitioned data table (rid +
  // data attributes, indexed on rid); it remains the record source for
  // building partitions and migrations.
  PartitionStore(rel::Database* db, std::string cvd_name,
                 std::string source_data_table);
  ~PartitionStore();

  PartitionStore(const PartitionStore&) = delete;
  PartitionStore& operator=(const PartitionStore&) = delete;

  // Materializes `partitioning`; `version_rids` supplies each
  // version's record list (it is retained for later online updates
  // and migrations — the in-memory mirror of the versioning table).
  Status Build(const Partitioning& partitioning,
               std::map<VersionId, std::vector<RecordId>> version_rids);

  // Single-version checkout against the owning partition's tables
  // (same SQL shape as split-by-rlist checkout in Table 1).
  Status CheckoutVersion(VersionId vid, const std::string& table_name);

  // {data table, versioning table} backing `vid` (for the query
  // translator override).
  Result<std::pair<std::string, std::string>> TablesFor(VersionId vid) const;

  // --- Online maintenance hooks (§4.3) --------------------------------

  // Appends a freshly committed version to an existing partition.
  Status AddVersionToPartition(VersionId vid, size_t partition,
                               const std::vector<RecordId>& rids);
  // Creates a new partition holding only `vid`. Returns its index.
  Result<size_t> AddVersionAsNewPartition(VersionId vid,
                                          const std::vector<RecordId>& rids);

  Result<size_t> PartitionOf(VersionId vid) const;

  // --- Migration (§4.3) ------------------------------------------------

  struct MigrationStats {
    double seconds = 0.0;
    int64_t rows_inserted = 0;
    int64_t rows_deleted = 0;
    int partitions_rebuilt = 0;   // built from scratch
    int partitions_modified = 0;  // transformed in place
  };

  Result<MigrationStats> Migrate(const Partitioning& new_partitioning,
                                 bool intelligent);

  // --- Cost accounting ---------------------------------------------------

  int64_t StorageRecords() const;   // S = sum |Rk|
  double AvgCheckoutCost() const;   // Cavg = sum |Vk||Rk| / n
  size_t num_partitions() const { return parts_.size(); }
  size_t num_versions() const { return vid_to_part_.size(); }

  // Version groups per partition, in partition order (the repartition
  // WAL record logs exactly this so replay can rebuild the store).
  std::vector<std::vector<VersionId>> VersionGroups() const;

  // Drops all partition tables and clears state.
  Status DropAll();

  // --- Durability (storage subsystem) ---------------------------------

  // The private state a snapshot must carry. The partition tables
  // themselves are persisted by the database snapshot; this is just
  // the wiring between them.
  struct PersistedState {
    struct Part {
      std::string data_table;
      std::string rlist_table;
    };
    std::string source_data_table;
    int next_phys_id = 0;
    std::vector<Part> parts;
  };
  PersistedState ExportState() const;

  // Re-attaches to partition tables already present in `db` (restored
  // from a snapshot): rebuilds per-partition record sets, version
  // placement, and the version->rid mirror from the rlist tables.
  static Result<std::unique_ptr<PartitionStore>> Restore(
      rel::Database* db, std::string cvd_name, const PersistedState& state);

 private:
  struct Phys {
    std::string data_table;
    std::string rlist_table;
    std::unordered_set<RecordId> records;
    std::vector<VersionId> versions;
  };

  Result<Phys> CreatePhys();
  // Appends the given records (fetched from the source data table by
  // rid) to a partition's data table.
  Status InsertRecords(Phys* phys, const std::vector<RecordId>& rids);
  Status AppendRlistRow(Phys* phys, VersionId vid,
                        const std::vector<RecordId>& rids);

  rel::Database* db_;
  std::string cvd_name_;
  std::string source_data_table_;
  std::vector<Phys> parts_;
  std::map<VersionId, size_t> vid_to_part_;
  std::map<VersionId, std::vector<RecordId>> version_rids_;
  int next_phys_id_ = 0;
};

}  // namespace orpheus::part

#endif  // ORPHEUS_PARTITION_PARTITION_STORE_H_
