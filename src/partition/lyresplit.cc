#include "partition/lyresplit.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

// gcc 12 at -O3 emits a -Wfree-nonheap-object false positive here: when
// it inlines the destructors of SplitOne's local int64 vectors through
// Split into RunOnTree, it loses track of the buffer's origin and
// claims a nonzero-offset delete on a plain heap allocation. The split
// loop is already iterative (no self-recursion), the default
// RelWithDebInfo build is clean, and ASan/UBSan find nothing, so
// silence the diagnostic for this translation unit only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wfree-nonheap-object"
#endif

namespace orpheus::part {

namespace {

using core::VersionGraph;
using core::VersionId;

// Index-based view of a version tree.
struct TreeNodes {
  std::vector<VersionId> vid;
  std::vector<int> parent;  // -1 for roots
  std::vector<int64_t> weight;  // w(parent, i); 0 for roots
  std::vector<int64_t> recs;    // |R(vi)|
  std::vector<std::vector<int>> children;

  static Result<TreeNodes> FromGraph(const VersionGraph& graph) {
    TreeNodes t;
    std::map<VersionId, int> index;
    for (VersionId v : graph.versions()) {
      ORPHEUS_ASSIGN_OR_RETURN(const core::VersionNode* node, graph.GetNode(v));
      int i = static_cast<int>(t.vid.size());
      index[v] = i;
      t.vid.push_back(v);
      t.recs.push_back(node->num_records);
      if (node->parents.empty()) {
        t.parent.push_back(-1);
        t.weight.push_back(0);
      } else {
        t.parent.push_back(index.at(node->parents[0]));
        t.weight.push_back(node->parent_weights[0]);
      }
      t.children.emplace_back();
    }
    for (size_t i = 0; i < t.vid.size(); ++i) {
      if (t.parent[i] >= 0) t.children[static_cast<size_t>(t.parent[i])].push_back(static_cast<int>(i));
    }
    return t;
  }
};

// One connected subtree being considered as a partition.
struct Component {
  int root = -1;
  std::vector<int> nodes;
};

struct Recurser {
  const TreeNodes& tree;
  double delta;
  std::vector<Component> out;
  int max_level = 0;

  // t(i): new records contributed by node i relative to its in-
  // component parent (the component root contributes all its records).
  int64_t NewRecords(int i, int root) const {
    return i == root ? tree.recs[static_cast<size_t>(i)]
                     : tree.recs[static_cast<size_t>(i)] - tree.weight[static_cast<size_t>(i)];
  }

  // Iterative driver: an explicit work stack instead of self-recursion
  // sidesteps both deep recursion on path-shaped version graphs and a
  // gcc-12 -O3 -Werror=free-nonheap-object false positive triggered by
  // recursively inlined vector destructors. LIFO order with side1
  // pushed first reproduces the old recursion's output order exactly
  // (side2's subtree fully splits before side1 starts).
  void Split(Component comp, int level) {
    std::vector<std::pair<Component, int>> work;
    work.emplace_back(std::move(comp), level);
    while (!work.empty()) {
      Component current = std::move(work.back().first);
      int current_level = work.back().second;
      work.pop_back();
      SplitOne(std::move(current), current_level, &work);
    }
  }

  // Emits `comp` as a finished partition or pushes its two sides.
  void SplitOne(Component comp, int level,
                std::vector<std::pair<Component, int>>* work) {
    max_level = std::max(max_level, level);
    int64_t num_versions = static_cast<int64_t>(comp.nodes.size());
    int64_t records = 0;
    int64_t edges = 0;
    for (int i : comp.nodes) {
      records += NewRecords(i, comp.root);
      edges += tree.recs[static_cast<size_t>(i)];
    }
    // Termination test of Algorithm 1 line 1.
    if (static_cast<double>(records) * static_cast<double>(num_versions) <
        static_cast<double>(edges) / delta) {
      out.push_back(std::move(comp));
      return;
    }
    if (comp.nodes.size() == 1) {  // cannot split further
      out.push_back(std::move(comp));
      return;
    }

    // Subtree statistics within the component (iterative post-order).
    std::vector<char> in_comp(tree.vid.size(), 0);
    for (int i : comp.nodes) in_comp[static_cast<size_t>(i)] = 1;
    std::vector<int64_t> sub_count(tree.vid.size(), 0);
    std::vector<int64_t> sub_new(tree.vid.size(), 0);
    // comp.nodes was built by DFS from the root, so reverse order is a
    // valid post-order for accumulation.
    for (auto it = comp.nodes.rbegin(); it != comp.nodes.rend(); ++it) {
      int i = *it;
      int64_t count = 1;
      int64_t fresh = NewRecords(i, comp.root);
      for (int c : tree.children[static_cast<size_t>(i)]) {
        if (!in_comp[static_cast<size_t>(c)]) continue;
        count += sub_count[static_cast<size_t>(c)];
        fresh += sub_new[static_cast<size_t>(c)];
      }
      sub_count[static_cast<size_t>(i)] = count;
      sub_new[static_cast<size_t>(i)] = fresh;
    }

    // Candidate edges: Ω = { (p, i) : w <= δ|R| } (Algorithm 1 line 5),
    // with the paper's pick rule: minimize version imbalance, then
    // record imbalance. Fall back to the min-weight edge if Ω is
    // empty (possible on DAG-converted trees).
    // Cutting a saturated edge (w == |R(child)|: the child adds no
    // records beyond its parent) duplicates the child's full record
    // set for no storage relief, so such edges — e.g. the copy chains
    // of the weighted construction (C.2) — are only used when nothing
    // else qualifies.
    int best = -1;
    bool best_saturated = true;
    int64_t best_vdiff = 0;
    int64_t best_rdiff = 0;
    int64_t min_weight_node = -1;
    int64_t min_weight = 0;
    double weight_cap = delta * static_cast<double>(records);
    for (int i : comp.nodes) {
      if (i == comp.root) continue;
      int64_t w = tree.weight[static_cast<size_t>(i)];
      if (min_weight_node < 0 || w < min_weight) {
        min_weight_node = i;
        min_weight = w;
      }
      if (static_cast<double>(w) > weight_cap) continue;
      bool saturated = w >= tree.recs[static_cast<size_t>(i)];
      // Side 1: the subtree under i (i becomes its root, regaining its
      // shared records). Side 2: the rest.
      int64_t v1 = sub_count[static_cast<size_t>(i)];
      int64_t r1 = sub_new[static_cast<size_t>(i)] + w;
      int64_t v2 = num_versions - v1;
      int64_t r2 = records - sub_new[static_cast<size_t>(i)];
      int64_t vdiff = std::llabs(v1 - v2);
      int64_t rdiff = std::llabs(r1 - r2);
      bool better;
      if (best < 0) {
        better = true;
      } else if (saturated != best_saturated) {
        better = !saturated;  // unsaturated edges take precedence
      } else {
        better = vdiff < best_vdiff ||
                 (vdiff == best_vdiff && rdiff < best_rdiff);
      }
      if (better) {
        best = i;
        best_saturated = saturated;
        best_vdiff = vdiff;
        best_rdiff = rdiff;
      }
    }
    if (best < 0) best = static_cast<int>(min_weight_node);
    if (best < 0) {  // single root: emit as-is
      out.push_back(std::move(comp));
      return;
    }

    // Partition the node list into the subtree of `best` vs the rest.
    std::vector<char> in_sub(tree.vid.size(), 0);
    std::vector<int> stack = {best};
    Component side1;
    side1.root = best;
    while (!stack.empty()) {
      int i = stack.back();
      stack.pop_back();
      in_sub[static_cast<size_t>(i)] = 1;
      side1.nodes.push_back(i);
      for (int c : tree.children[static_cast<size_t>(i)]) {
        if (in_comp[static_cast<size_t>(c)]) stack.push_back(c);
      }
    }
    Component side2;
    side2.root = comp.root;
    for (int i : comp.nodes) {
      if (!in_sub[static_cast<size_t>(i)]) side2.nodes.push_back(i);
    }
    work->emplace_back(std::move(side1), level + 1);
    work->emplace_back(std::move(side2), level + 1);
  }
};

// DFS order from `root` (parents before children) for component seeds.
std::vector<int> DfsOrder(const TreeNodes& tree, int root) {
  std::vector<int> order;
  std::vector<int> stack = {root};
  while (!stack.empty()) {
    int i = stack.back();
    stack.pop_back();
    order.push_back(i);
    for (int c : tree.children[static_cast<size_t>(i)]) stack.push_back(c);
  }
  return order;
}

Result<LyreSplitResult> RunOnTree(const TreeNodes& tree, double delta) {
  if (delta <= 0 || delta > 1) {
    return Status::InvalidArgument("delta must be in (0, 1]");
  }
  Recurser rec{tree, delta, {}, 0};
  for (size_t i = 0; i < tree.vid.size(); ++i) {
    if (tree.parent[i] != -1) continue;
    Component comp;
    comp.root = static_cast<int>(i);
    comp.nodes = DfsOrder(tree, comp.root);
    rec.Split(std::move(comp), 0);
  }
  LyreSplitResult result;
  result.delta = delta;
  result.levels = rec.max_level;
  int64_t weighted = 0;
  for (const Component& comp : rec.out) {
    std::vector<VersionId> group;
    group.reserve(comp.nodes.size());
    int64_t records = 0;
    for (int i : comp.nodes) {
      group.push_back(tree.vid[static_cast<size_t>(i)]);
      records += rec.NewRecords(i, comp.root);
    }
    result.partitioning.groups.push_back(std::move(group));
    result.partitioning.partition_records.push_back(records);
    result.estimated_storage += records;
    weighted += records * static_cast<int64_t>(comp.nodes.size());
  }
  result.estimated_checkout =
      tree.vid.empty() ? 0.0
                       : static_cast<double>(weighted) /
                             static_cast<double>(tree.vid.size());
  result.partitioning.storage_cost = result.estimated_storage;
  result.partitioning.avg_checkout_cost = result.estimated_checkout;
  return result;
}

Result<TreeNodes> TreeFor(const VersionGraph& graph) {
  if (graph.IsTree()) return TreeNodes::FromGraph(graph);
  int64_t duplicated = 0;
  VersionGraph tree = graph.ToTree(&duplicated);
  return TreeNodes::FromGraph(tree);
}

}  // namespace

Result<LyreSplitResult> LyreSplit::Run(const core::VersionGraph& graph,
                                       double delta) {
  ORPHEUS_ASSIGN_OR_RETURN(TreeNodes tree, TreeFor(graph));
  return RunOnTree(tree, delta);
}

Result<int64_t> LyreSplit::TreeModelRecords(const core::VersionGraph& graph) {
  ORPHEUS_ASSIGN_OR_RETURN(TreeNodes tree, TreeFor(graph));
  int64_t records = 0;
  for (size_t i = 0; i < tree.vid.size(); ++i) {
    records += tree.parent[i] == -1 ? tree.recs[i] : tree.recs[i] - tree.weight[i];
  }
  return records;
}

Result<LyreSplitResult> LyreSplit::RunForBudget(const core::VersionGraph& graph,
                                                int64_t gamma) {
  ORPHEUS_ASSIGN_OR_RETURN(TreeNodes tree, TreeFor(graph));
  // Tree-model |R|, |V|, |E| for the search bounds.
  int64_t records = 0;
  int64_t edges = 0;
  for (size_t i = 0; i < tree.vid.size(); ++i) {
    records += tree.parent[i] == -1 ? tree.recs[i] : tree.recs[i] - tree.weight[i];
    edges += tree.recs[i];
  }
  int64_t num_versions = static_cast<int64_t>(tree.vid.size());
  if (num_versions == 0) return Status::InvalidArgument("empty version graph");
  if (gamma < records) {
    return Status::InvalidArgument(
        "storage threshold below minimum storage |R| = " + std::to_string(records));
  }

  double lo = static_cast<double>(edges) /
              (static_cast<double>(records) * static_cast<double>(num_versions));
  lo = std::min(lo, 1.0);
  double hi = 1.0;
  Result<LyreSplitResult> best = Status::Internal("no feasible partitioning");
  int iterations = 0;
  for (; iterations < 60; ++iterations) {
    double mid = 0.5 * (lo + hi);
    ORPHEUS_ASSIGN_OR_RETURN(LyreSplitResult attempt, RunOnTree(tree, mid));
    int64_t s = attempt.estimated_storage;
    if (s <= gamma) {
      if (!best.ok() || attempt.estimated_checkout <
                            best.value().estimated_checkout) {
        attempt.search_iterations = iterations + 1;
        best = std::move(attempt);
      }
      if (s >= static_cast<int64_t>(0.99 * static_cast<double>(gamma))) break;
      lo = mid;  // more splitting allowed: raise δ
    } else {
      hi = mid;  // over budget: lower δ
    }
    if (hi - lo < 1e-9) break;
  }
  if (!best.ok()) {
    // δ at the lower bound keeps everything in one partition, which is
    // feasible whenever gamma >= |R|.
    ORPHEUS_ASSIGN_OR_RETURN(LyreSplitResult fallback, RunOnTree(tree, lo));
    fallback.search_iterations = iterations;
    return fallback;
  }
  return best;
}

Result<LyreSplitResult> LyreSplit::RunWeighted(
    const core::VersionGraph& graph,
    const std::map<core::VersionId, int64_t>& frequency, double delta) {
  ORPHEUS_ASSIGN_OR_RETURN(TreeNodes tree, TreeFor(graph));
  // Expand each version vi into a chain of f_i copies; copies share
  // all records (edge weight |R(vi)|), and the child's first copy
  // hangs off the parent's last copy with the original weight.
  core::VersionGraph expanded;
  std::map<VersionId, std::pair<VersionId, VersionId>> span;  // vid -> [first,last]
  std::map<VersionId, VersionId> copy_to_original;
  VersionId next_id = 1;
  for (size_t i = 0; i < tree.vid.size(); ++i) {
    VersionId vid = tree.vid[i];
    auto fit = frequency.find(vid);
    int64_t f = fit == frequency.end() ? 1 : std::max<int64_t>(1, fit->second);
    VersionId first = next_id;
    for (int64_t c = 0; c < f; ++c) {
      VersionId id = next_id++;
      copy_to_original[id] = vid;
      if (c == 0) {
        if (tree.parent[i] == -1) {
          ORPHEUS_RETURN_NOT_OK(expanded.AddVersion(id, {}, {}, tree.recs[i]));
        } else {
          VersionId parent_last = span.at(tree.vid[static_cast<size_t>(tree.parent[i])]).second;
          ORPHEUS_RETURN_NOT_OK(expanded.AddVersion(id, {parent_last},
                                                    {tree.weight[i]}, tree.recs[i]));
        }
      } else {
        ORPHEUS_RETURN_NOT_OK(
            expanded.AddVersion(id, {id - 1}, {tree.recs[i]}, tree.recs[i]));
      }
    }
    span[vid] = {first, next_id - 1};
  }

  ORPHEUS_ASSIGN_OR_RETURN(TreeNodes expanded_tree,
                           TreeNodes::FromGraph(expanded));
  ORPHEUS_ASSIGN_OR_RETURN(LyreSplitResult raw, RunOnTree(expanded_tree, delta));

  // Post-process: place each original version in the smallest
  // partition (by record estimate) among those holding its copies.
  std::map<VersionId, size_t> chosen;
  for (size_t k = 0; k < raw.partitioning.groups.size(); ++k) {
    for (VersionId copy : raw.partitioning.groups[k]) {
      VersionId orig = copy_to_original.at(copy);
      auto it = chosen.find(orig);
      if (it == chosen.end() ||
          raw.partitioning.partition_records[k] <
              raw.partitioning.partition_records[it->second]) {
        chosen[orig] = k;
      }
    }
  }
  LyreSplitResult result;
  result.delta = delta;
  result.levels = raw.levels;
  result.partitioning.groups.resize(raw.partitioning.groups.size());
  for (const auto& [vid, k] : chosen) {
    result.partitioning.groups[k].push_back(vid);
  }
  // Drop empty groups.
  auto& groups = result.partitioning.groups;
  groups.erase(std::remove_if(groups.begin(), groups.end(),
                              [](const std::vector<VersionId>& g) {
                                return g.empty();
                              }),
               groups.end());
  result.estimated_storage = raw.estimated_storage;
  result.estimated_checkout = raw.estimated_checkout;
  return result;
}

}  // namespace orpheus::part
