// Version-record bipartite graph and partitioning cost model (§4.1).
//
// G = (V, R, E): an edge (vi, rj) means version vi contains record rj.
// A partitioning assigns every version to exactly one partition; each
// partition stores the union of its versions' records (records may be
// duplicated across partitions). Costs follow Equations 4.1 and 4.2:
//
//   S     = sum_k |Rk|                 (storage cost, in records)
//   Cavg  = sum_k |Vk| * |Rk| / n     (average checkout cost)

#ifndef ORPHEUS_PARTITION_BIPARTITE_H_
#define ORPHEUS_PARTITION_BIPARTITE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/status.h"
#include "core/record.h"
#include "core/version_graph.h"

namespace orpheus::part {

using core::RecordId;
using core::VersionId;

class BipartiteGraph {
 public:
  BipartiteGraph() = default;

  // Takes per-version record lists (need not be sorted; stored sorted).
  static BipartiteGraph FromVersionSets(
      std::vector<VersionId> versions,
      std::vector<std::vector<RecordId>> version_records);

  size_t num_versions() const { return versions_.size(); }
  int64_t num_records() const { return num_records_; }  // |R| distinct
  int64_t num_edges() const { return num_edges_; }      // |E|

  const std::vector<VersionId>& versions() const { return versions_; }
  Result<const std::vector<RecordId>*> RecordsOf(VersionId vid) const;

  // Minimum possible checkout cost |E| / |V| (Observation 1).
  double MinCheckoutCost() const;

 private:
  std::vector<VersionId> versions_;
  std::vector<std::vector<RecordId>> version_records_;  // sorted
  std::map<VersionId, size_t> index_of_;
  int64_t num_records_ = 0;
  int64_t num_edges_ = 0;
};

struct Partitioning {
  // groups[k] = versions assigned to partition k.
  std::vector<std::vector<VersionId>> groups;

  // Filled by ComputeCosts:
  std::vector<int64_t> partition_records;  // |Rk|
  int64_t storage_cost = 0;                // S
  double avg_checkout_cost = 0.0;          // Cavg

  size_t num_partitions() const { return groups.size(); }

  // Computes |Rk| as true unions over the bipartite graph and fills
  // the cost fields. Fails if a version is missing or assigned twice.
  Status ComputeCosts(const BipartiteGraph& graph);

  // Union of the record lists of `vids` (sorted).
  static Result<std::vector<RecordId>> UnionRecords(
      const BipartiteGraph& graph, const std::vector<VersionId>& vids);
};

}  // namespace orpheus::part

#endif  // ORPHEUS_PARTITION_BIPARTITE_H_
