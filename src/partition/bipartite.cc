#include "partition/bipartite.h"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace orpheus::part {

BipartiteGraph BipartiteGraph::FromVersionSets(
    std::vector<VersionId> versions,
    std::vector<std::vector<RecordId>> version_records) {
  BipartiteGraph g;
  g.versions_ = std::move(versions);
  g.version_records_ = std::move(version_records);
  std::unordered_set<RecordId> distinct;
  for (size_t i = 0; i < g.versions_.size(); ++i) {
    g.index_of_[g.versions_[i]] = i;
    std::vector<RecordId>& records = g.version_records_[i];
    std::sort(records.begin(), records.end());
    records.erase(std::unique(records.begin(), records.end()), records.end());
    g.num_edges_ += static_cast<int64_t>(records.size());
    distinct.insert(records.begin(), records.end());
  }
  g.num_records_ = static_cast<int64_t>(distinct.size());
  return g;
}

Result<const std::vector<RecordId>*> BipartiteGraph::RecordsOf(
    VersionId vid) const {
  auto it = index_of_.find(vid);
  if (it == index_of_.end()) {
    return Status::NotFound("version not in bipartite graph: " +
                            std::to_string(vid));
  }
  return &version_records_[it->second];
}

double BipartiteGraph::MinCheckoutCost() const {
  if (versions_.empty()) return 0.0;
  return static_cast<double>(num_edges_) / static_cast<double>(versions_.size());
}

Result<std::vector<RecordId>> Partitioning::UnionRecords(
    const BipartiteGraph& graph, const std::vector<VersionId>& vids) {
  std::vector<RecordId> out;
  for (VersionId vid : vids) {
    ORPHEUS_ASSIGN_OR_RETURN(const std::vector<RecordId>* records,
                             graph.RecordsOf(vid));
    std::vector<RecordId> merged;
    merged.reserve(out.size() + records->size());
    std::set_union(out.begin(), out.end(), records->begin(), records->end(),
                   std::back_inserter(merged));
    out = std::move(merged);
  }
  return out;
}

Status Partitioning::ComputeCosts(const BipartiteGraph& graph) {
  partition_records.clear();
  storage_cost = 0;
  avg_checkout_cost = 0.0;
  std::set<VersionId> assigned;
  int64_t weighted = 0;
  for (const std::vector<VersionId>& group : groups) {
    for (VersionId vid : group) {
      if (!assigned.insert(vid).second) {
        return Status::InvalidArgument("version assigned to two partitions: " +
                                       std::to_string(vid));
      }
    }
    ORPHEUS_ASSIGN_OR_RETURN(std::vector<RecordId> records,
                             UnionRecords(graph, group));
    int64_t rk = static_cast<int64_t>(records.size());
    partition_records.push_back(rk);
    storage_cost += rk;
    weighted += static_cast<int64_t>(group.size()) * rk;
  }
  if (assigned.size() != graph.num_versions()) {
    return Status::InvalidArgument("partitioning does not cover all versions");
  }
  avg_checkout_cost =
      static_cast<double>(weighted) / static_cast<double>(graph.num_versions());
  return Status::OK();
}

}  // namespace orpheus::part
