#include "partition/baselines.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/rng.h"

namespace orpheus::part {

namespace {

uint64_t MixHash(uint64_t x, uint64_t seed) {
  x ^= seed;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Min-hash signature of a record set.
std::vector<uint64_t> Shingles(const std::vector<RecordId>& records,
                               int num_hashes) {
  std::vector<uint64_t> sig(static_cast<size_t>(num_hashes),
                            std::numeric_limits<uint64_t>::max());
  for (RecordId rid : records) {
    for (int h = 0; h < num_hashes; ++h) {
      uint64_t v = MixHash(static_cast<uint64_t>(rid),
                           0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(h + 1));
      sig[static_cast<size_t>(h)] = std::min(sig[static_cast<size_t>(h)], v);
    }
  }
  return sig;
}

int CommonShingles(const std::vector<uint64_t>& a, const std::vector<uint64_t>& b) {
  int common = 0;
  for (size_t i = 0; i < a.size(); ++i) common += a[i] == b[i] ? 1 : 0;
  return common;
}

std::vector<RecordId> SortedUnion(const std::vector<RecordId>& a,
                                  const std::vector<RecordId>& b) {
  std::vector<RecordId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

struct Cluster {
  std::vector<VersionId> versions;
  std::vector<RecordId> records;  // sorted union
  std::vector<uint64_t> shingles;
  bool alive = true;
};

}  // namespace

Result<Partitioning> RunAgglo(const BipartiteGraph& graph,
                              const AggloOptions& options) {
  std::vector<Cluster> clusters;
  clusters.reserve(graph.num_versions());
  for (VersionId vid : graph.versions()) {
    ORPHEUS_ASSIGN_OR_RETURN(const std::vector<RecordId>* records,
                             graph.RecordsOf(vid));
    Cluster c;
    c.versions = {vid};
    c.records = *records;
    c.shingles = Shingles(*records, options.num_hashes);
    clusters.push_back(std::move(c));
  }

  // τ via uniform sampling of pair similarities.
  Rng rng(options.seed);
  int tau = 1;
  if (clusters.size() > 1) {
    int64_t total = 0;
    int samples = 64;
    for (int s = 0; s < samples; ++s) {
      size_t a = rng.Uniform(clusters.size());
      size_t b = rng.Uniform(clusters.size());
      if (a == b) b = (b + 1) % clusters.size();
      total += CommonShingles(clusters[a].shingles, clusters[b].shingles);
    }
    tau = std::max<int>(1, static_cast<int>(total / samples));
  }

  // Sort by shingle signature so similar partitions are adjacent.
  std::sort(clusters.begin(), clusters.end(),
            [](const Cluster& a, const Cluster& b) {
              return a.shingles < b.shingles;
            });

  for (int pass = 0; pass < options.max_passes; ++pass) {
    bool merged_any = false;
    for (size_t i = 0; i < clusters.size(); ++i) {
      if (!clusters[i].alive) continue;
      int best = -1;
      int best_common = tau - 1;
      int considered = 0;
      for (size_t j = i + 1; j < clusters.size() && considered < options.lookahead;
           ++j) {
        if (!clusters[j].alive) continue;
        ++considered;
        int common = CommonShingles(clusters[i].shingles, clusters[j].shingles);
        if (common <= best_common) continue;
        if (options.capacity > 0) {
          std::vector<RecordId> merged =
              SortedUnion(clusters[i].records, clusters[j].records);
          if (static_cast<int64_t>(merged.size()) > options.capacity) continue;
        }
        best = static_cast<int>(j);
        best_common = common;
      }
      if (best < 0) continue;
      Cluster& a = clusters[i];
      Cluster& b = clusters[static_cast<size_t>(best)];
      a.versions.insert(a.versions.end(), b.versions.begin(), b.versions.end());
      a.records = SortedUnion(a.records, b.records);
      for (size_t h = 0; h < a.shingles.size(); ++h) {
        a.shingles[h] = std::min(a.shingles[h], b.shingles[h]);
      }
      b.alive = false;
      merged_any = true;
    }
    if (!merged_any) break;
  }

  Partitioning out;
  for (Cluster& c : clusters) {
    if (c.alive) out.groups.push_back(std::move(c.versions));
  }
  ORPHEUS_RETURN_NOT_OK(out.ComputeCosts(graph));
  return out;
}

Result<Partitioning> RunAggloForBudget(const BipartiteGraph& graph, int64_t gamma,
                                       const AggloOptions& options,
                                       int* search_iterations) {
  // Larger BC -> more merging -> less duplication -> smaller S, larger
  // Cavg. Find the smallest BC whose S fits the budget.
  int64_t lo = 1;
  int64_t hi = graph.num_records();
  for (VersionId vid : graph.versions()) {
    ORPHEUS_ASSIGN_OR_RETURN(const std::vector<RecordId>* records,
                             graph.RecordsOf(vid));
    lo = std::max<int64_t>(lo, static_cast<int64_t>(records->size()));
  }
  Result<Partitioning> best = Status::Internal("no feasible partitioning");
  int iterations = 0;
  while (lo <= hi && iterations < 14) {
    ++iterations;
    int64_t mid = lo + (hi - lo) / 2;
    AggloOptions bounded = options;
    bounded.capacity = mid;
    ORPHEUS_ASSIGN_OR_RETURN(Partitioning attempt, RunAgglo(graph, bounded));
    if (attempt.storage_cost <= gamma) {
      if (!best.ok() ||
          attempt.avg_checkout_cost < best.value().avg_checkout_cost) {
        best = std::move(attempt);
      }
      hi = mid - 1;  // try smaller partitions (more duplication)
    } else {
      lo = mid + 1;
    }
  }
  if (search_iterations != nullptr) *search_iterations = iterations;
  if (!best.ok()) {
    // Unbounded capacity merges most aggressively (least storage).
    AggloOptions unbounded = options;
    unbounded.capacity = 0;
    return RunAgglo(graph, unbounded);
  }
  return best;
}

Result<Partitioning> RunKMeans(const BipartiteGraph& graph,
                               const KMeansOptions& options) {
  size_t n = graph.num_versions();
  if (n == 0) return Status::InvalidArgument("empty bipartite graph");
  size_t k = std::min<size_t>(static_cast<size_t>(std::max(1, options.k)), n);

  // Collect the record lists once.
  std::vector<const std::vector<RecordId>*> records(n);
  for (size_t i = 0; i < n; ++i) {
    ORPHEUS_ASSIGN_OR_RETURN(records[i], graph.RecordsOf(graph.versions()[i]));
  }

  // Seed centroids with K distinct random versions.
  Rng rng(options.seed);
  std::vector<size_t> seeds;
  std::unordered_set<size_t> used;
  while (seeds.size() < k) {
    size_t s = rng.Uniform(n);
    if (used.insert(s).second) seeds.push_back(s);
  }
  std::vector<std::unordered_set<RecordId>> centroids(k);
  for (size_t c = 0; c < k; ++c) {
    centroids[c].insert(records[seeds[c]]->begin(), records[seeds[c]]->end());
  }

  auto overlap = [&](size_t version, const std::unordered_set<RecordId>& centroid) {
    int64_t common = 0;
    for (RecordId rid : *records[version]) common += centroid.count(rid) > 0 ? 1 : 0;
    return common;
  };
  auto added_records = [&](size_t version,
                           const std::unordered_set<RecordId>& centroid) {
    int64_t added = 0;
    for (RecordId rid : *records[version]) added += centroid.count(rid) > 0 ? 0 : 1;
    return added;
  };

  // Initial assignment: nearest centroid by common records.
  std::vector<size_t> assign(n);
  for (size_t i = 0; i < n; ++i) {
    size_t best = 0;
    int64_t best_common = -1;
    for (size_t c = 0; c < k; ++c) {
      int64_t common = overlap(i, centroids[c]);
      if (common > best_common) {
        best_common = common;
        best = c;
      }
    }
    assign[i] = best;
  }

  auto rebuild_centroids = [&]() {
    for (auto& c : centroids) c.clear();
    for (size_t i = 0; i < n; ++i) {
      centroids[assign[i]].insert(records[i]->begin(), records[i]->end());
    }
  };
  rebuild_centroids();

  // Refinement: move versions to minimize total records, respecting BC.
  for (int iter = 0; iter < options.iterations; ++iter) {
    bool moved = false;
    for (size_t i = 0; i < n; ++i) {
      size_t best = assign[i];
      int64_t best_added = added_records(i, centroids[best]);
      for (size_t c = 0; c < k; ++c) {
        if (c == assign[i]) continue;
        int64_t added = added_records(i, centroids[c]);
        if (options.capacity > 0 &&
            static_cast<int64_t>(centroids[c].size()) + added > options.capacity) {
          continue;
        }
        if (added < best_added) {
          best_added = added;
          best = c;
        }
      }
      if (best != assign[i]) {
        assign[i] = best;
        moved = true;
      }
    }
    if (!moved) break;
    rebuild_centroids();  // unions must be refreshed after moves
  }

  Partitioning out;
  out.groups.resize(k);
  for (size_t i = 0; i < n; ++i) {
    out.groups[assign[i]].push_back(graph.versions()[i]);
  }
  out.groups.erase(std::remove_if(out.groups.begin(), out.groups.end(),
                                  [](const std::vector<VersionId>& g) {
                                    return g.empty();
                                  }),
                   out.groups.end());
  ORPHEUS_RETURN_NOT_OK(out.ComputeCosts(graph));
  return out;
}

Result<Partitioning> RunKMeansForBudget(const BipartiteGraph& graph, int64_t gamma,
                                        const KMeansOptions& options,
                                        int* search_iterations) {
  // Larger K -> more partitions -> larger S, smaller Cavg. Find the
  // largest K whose storage fits.
  int lo = 1;
  int hi = static_cast<int>(graph.num_versions());
  Result<Partitioning> best = Status::Internal("no feasible partitioning");
  int iterations = 0;
  while (lo <= hi && iterations < 12) {
    ++iterations;
    int mid = lo + (hi - lo) / 2;
    KMeansOptions sized = options;
    sized.k = mid;
    ORPHEUS_ASSIGN_OR_RETURN(Partitioning attempt, RunKMeans(graph, sized));
    if (attempt.storage_cost <= gamma) {
      if (!best.ok() ||
          attempt.avg_checkout_cost < best.value().avg_checkout_cost) {
        best = std::move(attempt);
      }
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  if (search_iterations != nullptr) *search_iterations = iterations;
  if (!best.ok()) {
    KMeansOptions single = options;
    single.k = 1;
    return RunKMeans(graph, single);
  }
  return best;
}

}  // namespace orpheus::part
