#include "partition/partition_store.h"

#include <algorithm>
#include <limits>

#include "common/thread_pool.h"
#include "common/timer.h"

namespace orpheus::part {

PartitionStore::PartitionStore(rel::Database* db, std::string cvd_name,
                               std::string source_data_table)
    : db_(db),
      cvd_name_(std::move(cvd_name)),
      source_data_table_(std::move(source_data_table)) {}

PartitionStore::~PartitionStore() { (void)DropAll(); }

Result<PartitionStore::Phys> PartitionStore::CreatePhys() {
  ORPHEUS_ASSIGN_OR_RETURN(rel::Table * source, db_->GetTable(source_data_table_));
  Phys phys;
  int id = next_phys_id_++;
  phys.data_table = cvd_name_ + "_p" + std::to_string(id) + "_data";
  phys.rlist_table = cvd_name_ + "_p" + std::to_string(id) + "_rlist";
  ORPHEUS_RETURN_NOT_OK(
      db_->CreateTable(phys.data_table, source->schema(), {"rid"}));
  rel::Schema versioning;
  versioning.AddColumn("vid", rel::DataType::kInt64);
  versioning.AddColumn("rlist", rel::DataType::kIntArray);
  ORPHEUS_RETURN_NOT_OK(
      db_->CreateTable(phys.rlist_table, std::move(versioning), {"vid"}));
  return phys;
}

Status PartitionStore::InsertRecords(Phys* phys,
                                     const std::vector<RecordId>& rids) {
  if (rids.empty()) return Status::OK();
  ORPHEUS_ASSIGN_OR_RETURN(rel::Table * source, db_->GetTable(source_data_table_));
  // Build the rid index once up front so the per-rid lookups below are
  // pure reads, then resolve rid -> row position batch-parallel (the
  // same fixed batching the scan executor uses; slot-per-rid writes
  // keep the result order deterministic).
  ORPHEUS_RETURN_NOT_OK(source->EnsureIndex("rid"));
  std::vector<uint32_t> rows(rids.size());
  ORPHEUS_RETURN_NOT_OK(ParallelBatchFor(
      rids.size(), rel::kScanBatchRows,
      [&](size_t begin, size_t end, size_t) -> Status {
        for (size_t i = begin; i < end; ++i) {
          const std::vector<uint32_t>* hits = source->LookupInt("rid", rids[i]);
          if (hits == nullptr || hits->empty()) {
            return Status::NotFound("record not in source data table: " +
                                    std::to_string(rids[i]));
          }
          rows[i] = (*hits)[0];
        }
        return Status::OK();
      }));
  ORPHEUS_ASSIGN_OR_RETURN(rel::Table * dest, db_->GetTable(phys->data_table));
  dest->mutable_chunk().GatherFrom(source->data(), rows);
  phys->records.insert(rids.begin(), rids.end());
  return Status::OK();
}

Status PartitionStore::AppendRlistRow(Phys* phys, VersionId vid,
                                      const std::vector<RecordId>& rids) {
  ORPHEUS_ASSIGN_OR_RETURN(rel::Table * rlist, db_->GetTable(phys->rlist_table));
  rel::Chunk& chunk = rlist->mutable_chunk();
  chunk.mutable_column(0).AppendInt(vid);
  chunk.mutable_column(1).AppendArray(rel::IntArray(rids.begin(), rids.end()));
  phys->versions.push_back(vid);
  return Status::OK();
}

Status PartitionStore::Build(const Partitioning& partitioning,
                             std::map<VersionId, std::vector<RecordId>> version_rids) {
  ORPHEUS_RETURN_NOT_OK(DropAll());
  version_rids_ = std::move(version_rids);
  for (const std::vector<VersionId>& group : partitioning.groups) {
    ORPHEUS_ASSIGN_OR_RETURN(Phys phys, CreatePhys());
    // Union of the group's records.
    std::unordered_set<RecordId> unioned;
    for (VersionId vid : group) {
      auto it = version_rids_.find(vid);
      if (it == version_rids_.end()) {
        return Status::InvalidArgument("missing record list for version " +
                                       std::to_string(vid));
      }
      unioned.insert(it->second.begin(), it->second.end());
    }
    std::vector<RecordId> sorted(unioned.begin(), unioned.end());
    std::sort(sorted.begin(), sorted.end());
    ORPHEUS_RETURN_NOT_OK(InsertRecords(&phys, sorted));
    for (VersionId vid : group) {
      ORPHEUS_RETURN_NOT_OK(AppendRlistRow(&phys, vid, version_rids_.at(vid)));
      vid_to_part_[vid] = parts_.size();
    }
    parts_.push_back(std::move(phys));
  }
  return Status::OK();
}

Status PartitionStore::CheckoutVersion(VersionId vid,
                                       const std::string& table_name) {
  ORPHEUS_ASSIGN_OR_RETURN(size_t k, PartitionOf(vid));
  const Phys& phys = parts_[k];
  ORPHEUS_ASSIGN_OR_RETURN(
      rel::Chunk unused,
      db_->Execute("SELECT d.* INTO " + table_name + " FROM " + phys.data_table +
                   " d, (SELECT unnest(rlist) AS rid_tmp FROM " +
                   phys.rlist_table + " WHERE vid = " + std::to_string(vid) +
                   ") AS tmp WHERE d.rid = tmp.rid_tmp"));
  (void)unused;
  return Status::OK();
}

Result<std::pair<std::string, std::string>> PartitionStore::TablesFor(
    VersionId vid) const {
  ORPHEUS_ASSIGN_OR_RETURN(size_t k, PartitionOf(vid));
  return std::make_pair(parts_[k].data_table, parts_[k].rlist_table);
}

Result<size_t> PartitionStore::PartitionOf(VersionId vid) const {
  auto it = vid_to_part_.find(vid);
  if (it == vid_to_part_.end()) {
    return Status::NotFound("version not in any partition: " + std::to_string(vid));
  }
  return it->second;
}

Status PartitionStore::AddVersionToPartition(VersionId vid, size_t partition,
                                             const std::vector<RecordId>& rids) {
  if (partition >= parts_.size()) {
    return Status::InvalidArgument("no such partition: " + std::to_string(partition));
  }
  if (vid_to_part_.count(vid) > 0) {
    return Status::AlreadyExists("version already placed: " + std::to_string(vid));
  }
  Phys& phys = parts_[partition];
  std::vector<RecordId> fresh;
  for (RecordId rid : rids) {
    if (phys.records.count(rid) == 0) fresh.push_back(rid);
  }
  ORPHEUS_RETURN_NOT_OK(InsertRecords(&phys, fresh));
  ORPHEUS_RETURN_NOT_OK(AppendRlistRow(&phys, vid, rids));
  vid_to_part_[vid] = partition;
  version_rids_[vid] = rids;
  return Status::OK();
}

Result<size_t> PartitionStore::AddVersionAsNewPartition(
    VersionId vid, const std::vector<RecordId>& rids) {
  if (vid_to_part_.count(vid) > 0) {
    return Status::AlreadyExists("version already placed: " + std::to_string(vid));
  }
  ORPHEUS_ASSIGN_OR_RETURN(Phys phys, CreatePhys());
  std::vector<RecordId> sorted = rids;
  std::sort(sorted.begin(), sorted.end());
  ORPHEUS_RETURN_NOT_OK(InsertRecords(&phys, sorted));
  ORPHEUS_RETURN_NOT_OK(AppendRlistRow(&phys, vid, rids));
  size_t k = parts_.size();
  vid_to_part_[vid] = k;
  version_rids_[vid] = rids;
  parts_.push_back(std::move(phys));
  return k;
}

Result<PartitionStore::MigrationStats> PartitionStore::Migrate(
    const Partitioning& new_partitioning, bool intelligent) {
  WallTimer timer;
  MigrationStats stats;

  // Record sets of the target partitions (from the in-memory mirror of
  // the versioning data — this is the paper's "calculate the number of
  // common records based on the version graph without probing Ri").
  std::vector<std::unordered_set<RecordId>> new_sets;
  new_sets.reserve(new_partitioning.groups.size());
  for (const std::vector<VersionId>& group : new_partitioning.groups) {
    std::unordered_set<RecordId> s;
    for (VersionId vid : group) {
      auto it = version_rids_.find(vid);
      if (it == version_rids_.end()) {
        return Status::InvalidArgument("migration target references unknown version " +
                                       std::to_string(vid));
      }
      s.insert(it->second.begin(), it->second.end());
    }
    new_sets.push_back(std::move(s));
  }

  if (!intelligent) {
    // Naive: drop everything and rebuild from scratch.
    std::map<VersionId, std::vector<RecordId>> rids = std::move(version_rids_);
    ORPHEUS_RETURN_NOT_OK(Build(new_partitioning, std::move(rids)));
    stats.partitions_rebuilt = static_cast<int>(parts_.size());
    for (const Phys& phys : parts_) {
      stats.rows_inserted += static_cast<int64_t>(phys.records.size());
    }
    stats.seconds = timer.ElapsedSeconds();
    return stats;
  }

  // Intelligent: match each new partition with its closest old
  // partition. As in §4.3, the matching itself avoids probing record
  // sets: it "first finds the common versions" — partitions sharing
  // the most record-weighted versions are the cheapest to transform
  // into each other. The exact insert/delete lists are only computed
  // for the chosen pairs.
  size_t n_new = new_sets.size();
  size_t n_old = parts_.size();
  std::vector<std::unordered_set<VersionId>> old_version_sets(n_old);
  for (size_t j = 0; j < n_old; ++j) {
    old_version_sets[j].insert(parts_[j].versions.begin(),
                               parts_[j].versions.end());
  }
  struct Pair {
    int64_t score;  // record-weighted common versions
    size_t ni;
    size_t oj;
  };
  std::vector<Pair> pairs;
  pairs.reserve(n_new * n_old);
  for (size_t i = 0; i < n_new; ++i) {
    for (size_t j = 0; j < n_old; ++j) {
      int64_t score = 0;
      for (VersionId vid : new_partitioning.groups[i]) {
        if (old_version_sets[j].count(vid) > 0) {
          score += static_cast<int64_t>(version_rids_.at(vid).size());
        }
      }
      if (score > 0) pairs.push_back({score, i, j});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& x, const Pair& y) { return x.score > y.score; });

  std::vector<int> match_of_new(n_new, -1);
  std::vector<char> old_used(n_old, 0);
  for (const Pair& pair : pairs) {
    if (match_of_new[pair.ni] >= 0 || old_used[pair.oj]) continue;
    match_of_new[pair.ni] = static_cast<int>(pair.oj);
    old_used[pair.oj] = 1;
  }

  std::vector<Phys> new_parts;
  std::map<VersionId, size_t> new_vid_to_part;
  for (size_t i = 0; i < n_new; ++i) {
    const std::vector<VersionId>& group = new_partitioning.groups[i];
    if (match_of_new[i] < 0) {
      // Build from scratch.
      ORPHEUS_ASSIGN_OR_RETURN(Phys phys, CreatePhys());
      std::vector<RecordId> sorted(new_sets[i].begin(), new_sets[i].end());
      std::sort(sorted.begin(), sorted.end());
      ORPHEUS_RETURN_NOT_OK(InsertRecords(&phys, sorted));
      stats.rows_inserted += static_cast<int64_t>(sorted.size());
      for (VersionId vid : group) {
        ORPHEUS_RETURN_NOT_OK(AppendRlistRow(&phys, vid, version_rids_.at(vid)));
        new_vid_to_part[vid] = new_parts.size();
      }
      ++stats.partitions_rebuilt;
      new_parts.push_back(std::move(phys));
      continue;
    }
    // Transform the matched old partition in place.
    Phys phys = std::move(parts_[static_cast<size_t>(match_of_new[i])]);
    const std::unordered_set<RecordId>& target = new_sets[i];
    // Deletes: rows in the old partition not needed anymore.
    std::vector<RecordId> to_delete;
    for (RecordId rid : phys.records) {
      if (target.count(rid) == 0) to_delete.push_back(rid);
    }
    // §4.3: if transforming costs more than building |R'i| rows from
    // scratch, rebuild instead.
    int64_t insert_estimate = 0;
    for (RecordId rid : target) {
      if (phys.records.count(rid) == 0) ++insert_estimate;
    }
    if (static_cast<int64_t>(to_delete.size()) + insert_estimate >
        static_cast<int64_t>(target.size())) {
      ORPHEUS_RETURN_NOT_OK(db_->DropTable(phys.data_table, true));
      ORPHEUS_RETURN_NOT_OK(db_->DropTable(phys.rlist_table, true));
      ORPHEUS_ASSIGN_OR_RETURN(Phys fresh, CreatePhys());
      std::vector<RecordId> sorted(target.begin(), target.end());
      std::sort(sorted.begin(), sorted.end());
      ORPHEUS_RETURN_NOT_OK(InsertRecords(&fresh, sorted));
      stats.rows_inserted += static_cast<int64_t>(sorted.size());
      for (VersionId vid : group) {
        ORPHEUS_RETURN_NOT_OK(AppendRlistRow(&fresh, vid, version_rids_.at(vid)));
        new_vid_to_part[vid] = new_parts.size();
      }
      ++stats.partitions_rebuilt;
      new_parts.push_back(std::move(fresh));
      continue;
    }
    if (!to_delete.empty()) {
      ORPHEUS_ASSIGN_OR_RETURN(rel::Table * data, db_->GetTable(phys.data_table));
      std::unordered_set<RecordId> drop(to_delete.begin(), to_delete.end());
      int rid_col = data->schema().FindColumn("rid");
      const std::vector<int64_t>& rids_col = data->data().column(rid_col).ints();
      std::vector<bool> keep(rids_col.size());
      for (size_t r = 0; r < rids_col.size(); ++r) {
        keep[r] = drop.count(rids_col[r]) == 0;
      }
      data->mutable_chunk().FilterRows(keep);
      for (RecordId rid : to_delete) phys.records.erase(rid);
      stats.rows_deleted += static_cast<int64_t>(to_delete.size());
    }
    // Inserts: rows required but missing.
    std::vector<RecordId> to_insert;
    for (RecordId rid : target) {
      if (phys.records.count(rid) == 0) to_insert.push_back(rid);
    }
    std::sort(to_insert.begin(), to_insert.end());
    ORPHEUS_RETURN_NOT_OK(InsertRecords(&phys, to_insert));
    stats.rows_inserted += static_cast<int64_t>(to_insert.size());
    // Replace the versioning rows.
    {
      ORPHEUS_ASSIGN_OR_RETURN(rel::Table * rlist, db_->GetTable(phys.rlist_table));
      rlist->mutable_chunk().Clear();
      phys.versions.clear();
      for (VersionId vid : group) {
        ORPHEUS_RETURN_NOT_OK(AppendRlistRow(&phys, vid, version_rids_.at(vid)));
        new_vid_to_part[vid] = new_parts.size();
      }
    }
    ++stats.partitions_modified;
    new_parts.push_back(std::move(phys));
  }

  // Drop old partitions that were not reused.
  for (size_t j = 0; j < n_old; ++j) {
    if (old_used[j] || parts_[j].data_table.empty()) continue;
    ORPHEUS_RETURN_NOT_OK(db_->DropTable(parts_[j].data_table, true));
    ORPHEUS_RETURN_NOT_OK(db_->DropTable(parts_[j].rlist_table, true));
  }
  parts_ = std::move(new_parts);
  vid_to_part_ = std::move(new_vid_to_part);
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

PartitionStore::PersistedState PartitionStore::ExportState() const {
  PersistedState state;
  state.source_data_table = source_data_table_;
  state.next_phys_id = next_phys_id_;
  state.parts.reserve(parts_.size());
  for (const Phys& phys : parts_) {
    state.parts.push_back({phys.data_table, phys.rlist_table});
  }
  return state;
}

Result<std::unique_ptr<PartitionStore>> PartitionStore::Restore(
    rel::Database* db, std::string cvd_name, const PersistedState& state) {
  auto store = std::unique_ptr<PartitionStore>(
      new PartitionStore(db, std::move(cvd_name), state.source_data_table));
  store->next_phys_id_ = state.next_phys_id;
  for (const PersistedState::Part& part : state.parts) {
    Phys phys;
    phys.data_table = part.data_table;
    phys.rlist_table = part.rlist_table;
    ORPHEUS_ASSIGN_OR_RETURN(rel::Table * data, db->GetTable(part.data_table));
    int rid_col = data->schema().FindColumn("rid");
    if (rid_col < 0) {
      return Status::Internal("partition data table lacks rid column: " +
                              part.data_table);
    }
    const std::vector<int64_t>& rids = data->data().column(rid_col).ints();
    phys.records.insert(rids.begin(), rids.end());
    ORPHEUS_ASSIGN_OR_RETURN(rel::Table * rlist, db->GetTable(part.rlist_table));
    const rel::Chunk& rows = rlist->data();
    const std::vector<int64_t>& vids = rows.column(0).ints();
    const std::vector<rel::IntArray>& lists = rows.column(1).arrays();
    size_t k = store->parts_.size();
    for (size_t r = 0; r < rows.num_rows(); ++r) {
      phys.versions.push_back(vids[r]);
      store->vid_to_part_[vids[r]] = k;
      store->version_rids_[vids[r]] =
          std::vector<RecordId>(lists[r].begin(), lists[r].end());
    }
    store->parts_.push_back(std::move(phys));
  }
  return store;
}

std::vector<std::vector<VersionId>> PartitionStore::VersionGroups() const {
  std::vector<std::vector<VersionId>> groups;
  groups.reserve(parts_.size());
  for (const Phys& phys : parts_) groups.push_back(phys.versions);
  return groups;
}

int64_t PartitionStore::StorageRecords() const {
  int64_t total = 0;
  for (const Phys& phys : parts_) {
    total += static_cast<int64_t>(phys.records.size());
  }
  return total;
}

double PartitionStore::AvgCheckoutCost() const {
  if (vid_to_part_.empty()) return 0.0;
  int64_t weighted = 0;
  for (const Phys& phys : parts_) {
    weighted += static_cast<int64_t>(phys.versions.size()) *
                static_cast<int64_t>(phys.records.size());
  }
  return static_cast<double>(weighted) /
         static_cast<double>(vid_to_part_.size());
}

Status PartitionStore::DropAll() {
  for (const Phys& phys : parts_) {
    if (phys.data_table.empty()) continue;
    ORPHEUS_RETURN_NOT_OK(db_->DropTable(phys.data_table, true));
    ORPHEUS_RETURN_NOT_OK(db_->DropTable(phys.rlist_table, true));
  }
  parts_.clear();
  vid_to_part_.clear();
  version_rids_.clear();
  return Status::OK();
}

}  // namespace orpheus::part
