// LYRESPLIT (§4.2): light-weight ((1+δ)^ℓ, 1/δ)-approximate
// partitioning over the version graph.
//
// Algorithm 1: starting from all versions in one partition, while a
// partition violates |R| * |V| < |E| / δ, cut an edge of weight
// ≤ δ|R| and recurse on both sides. The edge choice follows the
// paper's experimental setup: minimize the version-count imbalance of
// the two sides, tie-broken by record balance.
//
// Costs inside the algorithm come from the version *tree* (record
// counts and edge weights), never from the bipartite graph — that is
// what makes LYRESPLIT ~1000x faster than AGGLO/KMEANS. DAGs are
// first converted with VersionGraph::ToTree (Appendix C.1); the
// weighted-frequency variant of Appendix C.2 is provided as
// RunWeighted.

#ifndef ORPHEUS_PARTITION_LYRESPLIT_H_
#define ORPHEUS_PARTITION_LYRESPLIT_H_

#include <cstdint>
#include <map>

#include "common/status.h"
#include "core/version_graph.h"
#include "partition/bipartite.h"

namespace orpheus::part {

struct LyreSplitResult {
  Partitioning partitioning;
  double delta = 0.0;     // the δ actually used
  int levels = 0;         // ℓ: recursion depth at termination
  int64_t estimated_storage = 0;     // tree-model S (exact for trees)
  double estimated_checkout = 0.0;   // tree-model Cavg
  int search_iterations = 0;         // binary-search iterations (RunForBudget)
};

class LyreSplit {
 public:
  // Algorithm 1 with a fixed δ. Accepts trees or DAGs (DAGs are
  // converted per Appendix C.1 first).
  static Result<LyreSplitResult> Run(const core::VersionGraph& graph,
                                     double delta);

  // Appendix B: binary search on δ for Problem 1 — minimize checkout
  // cost subject to S <= gamma (in records). Terminates when
  // 0.99*gamma <= S <= gamma or the search space is exhausted.
  static Result<LyreSplitResult> RunForBudget(const core::VersionGraph& graph,
                                              int64_t gamma);

  // The minimum feasible storage under the tree cost model: |R| for
  // trees, |R| + |R^| after DAG -> tree conversion (Appendix C.1).
  // Budgets passed to RunForBudget must be at least this.
  static Result<int64_t> TreeModelRecords(const core::VersionGraph& graph);

  // Appendix C.2: weighted checkout frequencies. `frequency` maps vid
  // to a positive integer checkout frequency (missing vids default
  // to 1). Internally expands each version into a chain of f copies,
  // runs Algorithm 1, and maps copies back to the smallest partition.
  static Result<LyreSplitResult> RunWeighted(
      const core::VersionGraph& graph,
      const std::map<core::VersionId, int64_t>& frequency, double delta);
};

}  // namespace orpheus::part

#endif  // ORPHEUS_PARTITION_LYRESPLIT_H_
