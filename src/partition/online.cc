#include "partition/online.h"

#include <algorithm>

namespace orpheus::part {

int64_t OnlineMaintainer::EffectiveGamma() const {
  if (options_.gamma_factor > 0) {
    return static_cast<int64_t>(options_.gamma_factor *
                                static_cast<double>(all_records_.size()));
  }
  return options_.gamma;
}

Result<OnlineStep> OnlineMaintainer::OnVersionCommitted(
    const VersionArrival& arrival) {
  ORPHEUS_RETURN_NOT_OK(graph_.AddVersion(arrival.vid, arrival.parents,
                                          arrival.parent_weights,
                                          static_cast<int64_t>(arrival.rids.size())));
  all_records_.insert(arrival.rids.begin(), arrival.rids.end());

  OnlineStep step;
  const int64_t gamma = EffectiveGamma();

  // --- Placement ------------------------------------------------------
  if (arrival.parents.empty() || store_->num_versions() == 0) {
    ORPHEUS_ASSIGN_OR_RETURN(size_t unused,
                             store_->AddVersionAsNewPartition(arrival.vid,
                                                              arrival.rids));
    (void)unused;
    step.opened_partition = true;
  } else {
    // Max-overlap parent.
    size_t best = 0;
    for (size_t p = 1; p < arrival.parents.size(); ++p) {
      if (arrival.parent_weights[p] > arrival.parent_weights[best]) best = p;
    }
    int64_t w = arrival.parent_weights[best];
    double threshold =
        options_.delta_star * static_cast<double>(all_records_.size());
    if (static_cast<double>(w) <= threshold && store_->StorageRecords() < gamma) {
      ORPHEUS_ASSIGN_OR_RETURN(size_t unused,
                               store_->AddVersionAsNewPartition(arrival.vid,
                                                                arrival.rids));
      (void)unused;
      step.opened_partition = true;
    } else {
      ORPHEUS_ASSIGN_OR_RETURN(size_t k,
                               store_->PartitionOf(arrival.parents[best]));
      ORPHEUS_RETURN_NOT_OK(
          store_->AddVersionToPartition(arrival.vid, k, arrival.rids));
    }
  }

  // --- Divergence check -------------------------------------------------
  step.storage = store_->StorageRecords();
  step.cavg = store_->AvgCheckoutCost();
  ORPHEUS_ASSIGN_OR_RETURN(LyreSplitResult best,
                           LyreSplit::RunForBudget(graph_, std::max(gamma,
                                                                    total_records())));
  step.cavg_best = best.estimated_checkout;

  if (step.cavg_best > 0 && step.cavg > options_.mu * step.cavg_best) {
    ORPHEUS_ASSIGN_OR_RETURN(
        step.migration,
        store_->Migrate(best.partitioning, options_.intelligent_migration));
    step.migrated = true;
    options_.delta_star = best.delta;  // remember the last split parameter
    step.storage = store_->StorageRecords();
    step.cavg = store_->AvgCheckoutCost();
  }
  return step;
}

}  // namespace orpheus::part
