// Baseline partitioners adapted from NScale (Quamar et al.), exactly
// as the paper's §5.1 describes them:
//
//  AGGLO  — agglomerative clustering. Each version starts as its own
//           partition; partitions are ordered by min-hash shingles and
//           repeatedly merged with the following-l candidate sharing
//           the most shingles, subject to a per-partition record
//           capacity BC and a sampled shingle threshold τ.
//
//  KMEANS — k-means over record sets. K random versions seed the
//           centroids (their record sets); versions join the centroid
//           with the largest record overlap; centroids become the
//           union of member records; subsequent iterations move
//           versions to minimize total records across partitions.
//
// Both operate on the full version-record bipartite graph (that is why
// they are orders of magnitude slower than LYRESPLIT — the effect
// Figures 10 and 11 measure). Budgeted variants binary-search BC / K
// for Problem 1.

#ifndef ORPHEUS_PARTITION_BASELINES_H_
#define ORPHEUS_PARTITION_BASELINES_H_

#include <cstdint>

#include "common/status.h"
#include "partition/bipartite.h"

namespace orpheus::part {

struct AggloOptions {
  int64_t capacity = 0;        // BC; 0 = unbounded
  int lookahead = 100;         // l: following partitions considered
  int num_hashes = 16;         // min-hash signature width
  int max_passes = 20;
  uint64_t seed = 42;          // for τ sampling
};

Result<Partitioning> RunAgglo(const BipartiteGraph& graph, const AggloOptions& options);

// Binary search on BC to minimize checkout cost subject to S <= gamma.
Result<Partitioning> RunAggloForBudget(const BipartiteGraph& graph, int64_t gamma,
                                       const AggloOptions& options,
                                       int* search_iterations);

struct KMeansOptions {
  int k = 8;
  int64_t capacity = 0;  // BC; 0 = unbounded (the paper's default)
  int iterations = 10;
  uint64_t seed = 42;
};

Result<Partitioning> RunKMeans(const BipartiteGraph& graph,
                               const KMeansOptions& options);

// Binary search on K to minimize checkout cost subject to S <= gamma.
Result<Partitioning> RunKMeansForBudget(const BipartiteGraph& graph, int64_t gamma,
                                        const KMeansOptions& options,
                                        int* search_iterations);

}  // namespace orpheus::part

#endif  // ORPHEUS_PARTITION_BASELINES_H_
