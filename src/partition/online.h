// Online maintenance of partitions (§4.3).
//
// As versions stream in, each new version either joins its
// max-overlap parent's partition or opens a new partition (the same
// trade-off intuition as LYRESPLIT: if w(vi, vj) <= δ* |R| and
// S < γ, split off). After every commit the maintainer re-runs
// LYRESPLIT to obtain the current best checkout cost C*avg; when the
// live cost exceeds µ · C*avg, the migration engine reorganizes the
// partitions (intelligent matching or naive rebuild).

#ifndef ORPHEUS_PARTITION_ONLINE_H_
#define ORPHEUS_PARTITION_ONLINE_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "core/version_graph.h"
#include "partition/lyresplit.h"
#include "partition/partition_store.h"

namespace orpheus::part {

struct OnlineOptions {
  int64_t gamma = 0;         // storage threshold, in records
  double gamma_factor = 0;   // alternative: gamma = factor * |R| (live)
  double mu = 1.5;           // tolerance factor on Cavg / C*avg
  double delta_star = 0.5;   // last LYRESPLIT δ; updated on migration
  bool intelligent_migration = true;
};

// One committed version, as the maintainer sees it.
struct VersionArrival {
  core::VersionId vid;
  std::vector<core::VersionId> parents;
  std::vector<int64_t> parent_weights;  // shared records with each parent
  std::vector<RecordId> rids;           // full record list of the version
};

struct OnlineStep {
  double cavg = 0.0;       // live checkout cost after placement
  double cavg_best = 0.0;  // C*avg from LYRESPLIT
  int64_t storage = 0;     // live S
  bool opened_partition = false;
  bool migrated = false;
  PartitionStore::MigrationStats migration;
};

class OnlineMaintainer {
 public:
  OnlineMaintainer(PartitionStore* store, OnlineOptions options)
      : store_(store), options_(options) {}

  // Processes one committed version; may trigger a migration.
  Result<OnlineStep> OnVersionCommitted(const VersionArrival& arrival);

  const core::VersionGraph& graph() const { return graph_; }
  int64_t total_records() const {
    return static_cast<int64_t>(all_records_.size());
  }
  const OnlineOptions& options() const { return options_; }

 private:
  int64_t EffectiveGamma() const;

  PartitionStore* store_;
  OnlineOptions options_;
  core::VersionGraph graph_;
  std::unordered_set<RecordId> all_records_;  // |R| tracker
};

}  // namespace orpheus::part

#endif  // ORPHEUS_PARTITION_ONLINE_H_
