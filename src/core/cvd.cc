#include "core/cvd.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "common/str_util.h"

namespace orpheus::core {

namespace {

// Widening lattice for single-pool schema evolution: INT -> DOUBLE ->
// TEXT (§3.3, after Jain et al.).
int TypeRank(rel::DataType type) {
  switch (type) {
    case rel::DataType::kBool:
    case rel::DataType::kInt64:
      return 0;
    case rel::DataType::kDouble:
      return 1;
    default:
      return 2;
  }
}

rel::DataType WidenType(rel::DataType a, rel::DataType b) {
  return TypeRank(a) >= TypeRank(b) ? a : b;
}

std::string EscapeSqlString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  return out;
}

std::string IntArrayLiteral(const std::vector<int64_t>& values) {
  std::vector<std::string> parts;
  parts.reserve(values.size());
  for (int64_t v : values) parts.push_back(std::to_string(v));
  return "ARRAY[" + Join(parts, ", ") + "]";
}

}  // namespace

Cvd::Cvd(rel::Database* db, std::string name, rel::Schema data_schema,
         CvdOptions options)
    : db_(db),
      name_(std::move(name)),
      primary_key_(std::move(options.primary_key)),
      model_(MakeDataModel(options.model, db, name_, std::move(data_schema))) {}

Result<std::unique_ptr<Cvd>> Cvd::Create(rel::Database* db,
                                         const std::string& name,
                                         rel::Schema data_schema,
                                         CvdOptions options) {
  // Validate the primary key against the schema up front.
  for (const std::string& pk : options.primary_key) {
    if (data_schema.FindColumn(pk) < 0) {
      return Status::InvalidArgument("primary key attribute not in schema: " + pk);
    }
  }
  if (data_schema.FindColumn("rid") >= 0) {
    return Status::InvalidArgument("'rid' is reserved for internal record ids");
  }
  std::unique_ptr<Cvd> cvd(new Cvd(db, name, data_schema, std::move(options)));
  ORPHEUS_RETURN_NOT_OK(cvd->model_->Init());

  // Metadata table (Figure 4a).
  rel::Schema meta;
  meta.AddColumn("vid", rel::DataType::kInt64);
  meta.AddColumn("parents", rel::DataType::kIntArray);
  meta.AddColumn("checkout_t", rel::DataType::kInt64);
  meta.AddColumn("commit_t", rel::DataType::kInt64);
  meta.AddColumn("msg", rel::DataType::kString);
  meta.AddColumn("attributes", rel::DataType::kIntArray);
  ORPHEUS_RETURN_NOT_OK(db->CreateTable(cvd->MetadataTableName(), meta, {"vid"}));

  // Attribute table (Figure 5b).
  rel::Schema attr;
  attr.AddColumn("attr_id", rel::DataType::kInt64);
  attr.AddColumn("attr_name", rel::DataType::kString);
  attr.AddColumn("data_type", rel::DataType::kString);
  ORPHEUS_RETURN_NOT_OK(
      db->CreateTable(cvd->AttributeTableName(), attr, {"attr_id"}));

  for (const rel::ColumnDef& def : data_schema.columns()) {
    cvd->AddAttributeEntry(def.name, def.type);
  }
  return cvd;
}

int64_t Cvd::AddAttributeEntry(const std::string& name, rel::DataType type) {
  int64_t id = static_cast<int64_t>(attributes_.size()) + 1;
  attributes_.push_back({id, name, type});
  live_attrs_[name] = id;
  // Mirror into the attribute table (best-effort bookkeeping).
  (void)db_->Execute("INSERT INTO " + AttributeTableName() + " VALUES (" +
                     std::to_string(id) + ", '" + EscapeSqlString(name) + "', '" +
                     rel::DataTypeName(type) + "')");
  return id;
}

Status Cvd::AppendMetadataRow(VersionId vid, const std::vector<VersionId>& parents,
                              int64_t checkout_time, int64_t commit_time,
                              const std::string& message,
                              const std::vector<int64_t>& attr_ids) {
  ORPHEUS_ASSIGN_OR_RETURN(
      rel::Chunk unused,
      db_->Execute("INSERT INTO " + MetadataTableName() + " VALUES (" +
                   std::to_string(vid) + ", " + IntArrayLiteral(parents) + ", " +
                   std::to_string(checkout_time) + ", " +
                   std::to_string(commit_time) + ", '" + EscapeSqlString(message) +
                   "', " + IntArrayLiteral(attr_ids) + ")"));
  (void)unused;
  return Status::OK();
}

Result<std::vector<int64_t>> Cvd::VersionAttributes(VersionId vid) const {
  auto it = version_attrs_.find(vid);
  if (it == version_attrs_.end()) {
    return Status::NotFound("version not found: " + std::to_string(vid));
  }
  return it->second;
}

Result<VersionId> Cvd::InitVersion(const rel::Chunk& rows,
                                   const std::string& message) {
  if (next_vid_ != 1) {
    return Status::InvalidArgument("CVD already initialized: " + name_);
  }
  const rel::Schema& data_schema = model_->data_schema();
  if (!rows.schema().Equals(data_schema)) {
    return Status::InvalidArgument("init rows schema " + rows.schema().ToString() +
                                   " does not match CVD schema " +
                                   data_schema.ToString());
  }
  // Primary-key uniqueness within the version.
  if (!primary_key_.empty()) {
    std::vector<int> pk_cols;
    for (const std::string& pk : primary_key_) {
      pk_cols.push_back(rows.schema().FindColumn(pk));
    }
    std::unordered_set<uint64_t> seen;
    for (size_t r = 0; r < rows.num_rows(); ++r) {
      if (!seen.insert(HashRecord(rows, r, pk_cols)).second) {
        return Status::ConstraintViolation(
            "duplicate primary key in initial version");
      }
    }
  }

  VersionId vid = next_vid_++;
  std::vector<RecordId> rids(rows.num_rows());
  std::iota(rids.begin(), rids.end(), next_rid_);
  next_rid_ += static_cast<RecordId>(rows.num_rows());

  // Stage rid + data as the model's record schema.
  rel::Schema record_schema;
  record_schema.AddColumn("rid", rel::DataType::kInt64);
  for (const rel::ColumnDef& def : data_schema.columns()) {
    record_schema.AddColumn(def.name, def.type);
  }
  rel::Chunk with_rid(record_schema);
  for (RecordId rid : rids) with_rid.mutable_column(0).AppendInt(rid);
  std::vector<uint32_t> all(rows.num_rows());
  std::iota(all.begin(), all.end(), 0);
  for (int c = 0; c < rows.num_columns(); ++c) {
    with_rid.mutable_column(c + 1).Gather(rows.column(c), all);
  }

  const std::string stage = name_ + "_init_stage";
  ORPHEUS_RETURN_NOT_OK(db_->DropTable(stage, /*if_exists=*/true));
  rel::Chunk for_model = with_rid;  // AddVersion consumes the staged table
  ORPHEUS_RETURN_NOT_OK(db_->AdoptTable(stage, std::move(with_rid)));
  Status st = model_->AddVersion(vid, stage, rids, for_model, /*primary_parent=*/-1);
  ORPHEUS_RETURN_NOT_OK(db_->DropTable(stage));
  ORPHEUS_RETURN_NOT_OK(st);

  ORPHEUS_RETURN_NOT_OK(graph_.AddVersion(vid, {}, {}, static_cast<int64_t>(rids.size())));
  std::vector<int64_t> attr_ids;
  for (const rel::ColumnDef& def : data_schema.columns()) {
    attr_ids.push_back(live_attrs_.at(def.name));
  }
  version_attrs_[vid] = attr_ids;
  int64_t now = ++logical_clock_;
  ORPHEUS_RETURN_NOT_OK(AppendMetadataRow(vid, {}, now, now, message, attr_ids));
  return vid;
}

Status Cvd::CheckoutSingle(VersionId vid, const std::string& table_name) {
  if (!graph_.Contains(vid)) {
    return Status::NotFound("version not found: " + std::to_string(vid));
  }
  // Does this version carry all live attributes?
  const rel::Schema& schema = model_->data_schema();
  std::vector<std::string> attr_names;
  for (int64_t attr_id : version_attrs_.at(vid)) {
    attr_names.push_back(attributes_[static_cast<size_t>(attr_id - 1)].name);
  }
  bool full = attr_names.size() == static_cast<size_t>(schema.num_columns());

  const std::string target = full ? table_name : table_name + "_fullattrs";
  if (checkout_override_ != nullptr) {
    ORPHEUS_RETURN_NOT_OK(checkout_override_(vid, target));
  } else {
    ORPHEUS_RETURN_NOT_OK(model_->CheckoutVersion(vid, target));
  }
  if (!full) {
    // Project down to the attributes this version actually has.
    std::vector<std::string> cols = {"rid"};
    cols.insert(cols.end(), attr_names.begin(), attr_names.end());
    ORPHEUS_ASSIGN_OR_RETURN(
        rel::Chunk unused,
        db_->Execute("SELECT " + Join(cols, ", ") + " INTO " + table_name +
                     " FROM " + target));
    (void)unused;
    ORPHEUS_RETURN_NOT_OK(db_->DropTable(target));
  }
  return Status::OK();
}

Status Cvd::Checkout(const std::vector<VersionId>& vids,
                     const std::string& table_name) {
  if (vids.empty()) return Status::InvalidArgument("no versions given");
  if (db_->HasTable(table_name)) {
    return Status::AlreadyExists("table already exists: " + table_name);
  }
  for (VersionId vid : vids) {
    if (!graph_.Contains(vid)) {
      return Status::NotFound("version not found: " + std::to_string(vid));
    }
  }

  if (vids.size() == 1) {
    ORPHEUS_RETURN_NOT_OK(CheckoutSingle(vids[0], table_name));
  } else {
    // Merging checkout: precedence order with primary-key conflict
    // resolution (§2.2). Without a primary key, rid identity dedupes.
    rel::Chunk merged;
    bool first = true;
    std::vector<int> pk_cols;
    std::unordered_set<uint64_t> seen_keys;
    std::unordered_set<RecordId> seen_rids;
    for (VersionId vid : vids) {
      ORPHEUS_ASSIGN_OR_RETURN(rel::Chunk rows, model_->VersionRows(vid));
      if (first) {
        merged = rel::Chunk(rows.schema());
        for (const std::string& pk : primary_key_) {
          pk_cols.push_back(rows.schema().FindColumn(pk));
        }
        first = false;
      }
      int rid_col = rows.schema().FindColumn("rid");
      std::vector<uint32_t> keep;
      for (size_t r = 0; r < rows.num_rows(); ++r) {
        if (!primary_key_.empty()) {
          if (!seen_keys.insert(HashRecord(rows, r, pk_cols)).second) continue;
        } else {
          if (!seen_rids.insert(rows.column(rid_col).ints()[r]).second) continue;
        }
        keep.push_back(static_cast<uint32_t>(r));
      }
      merged.GatherFrom(rows, keep);
    }
    ORPHEUS_RETURN_NOT_OK(db_->AdoptTable(table_name, std::move(merged)));
  }

  StagedTableInfo info;
  info.table_name = table_name;
  info.parents = vids;
  info.checkout_time = ++logical_clock_;
  staged_[table_name] = std::move(info);
  return Status::OK();
}

Result<std::vector<int64_t>> Cvd::ReconcileSchema(const rel::Schema& staged_schema) {
  std::vector<int64_t> attr_ids;
  for (const rel::ColumnDef& def : staged_schema.columns()) {
    auto it = live_attrs_.find(def.name);
    if (it == live_attrs_.end()) {
      // New attribute: extend the CVD, NULL-backfilling old records.
      ORPHEUS_RETURN_NOT_OK(model_->AddDataColumn(def.name, def.type));
      attr_ids.push_back(AddAttributeEntry(def.name, def.type));
      continue;
    }
    const AttributeEntry& live = attributes_[static_cast<size_t>(it->second - 1)];
    rel::DataType widened = WidenType(live.type, def.type);
    if (widened != live.type) {
      // Type change: widen the pool column, register a new attribute
      // entry (single-pool method).
      ORPHEUS_RETURN_NOT_OK(model_->WidenDataColumn(def.name, widened));
      attr_ids.push_back(AddAttributeEntry(def.name, widened));
    } else {
      attr_ids.push_back(it->second);
    }
  }
  return attr_ids;
}

Result<VersionId> Cvd::Commit(const std::string& table_name,
                              const std::string& message) {
  auto staged_it = staged_.find(table_name);
  if (staged_it == staged_.end()) {
    return Status::NotFound("table was not checked out from CVD " + name_ + ": " +
                            table_name);
  }
  const std::vector<VersionId> parents = staged_it->second.parents;
  ORPHEUS_ASSIGN_OR_RETURN(rel::Table * staged_table, db_->GetTable(table_name));

  // --- Schema reconciliation (may ALTER the pool tables) -------------
  rel::Schema staged_data_schema;
  for (const rel::ColumnDef& def : staged_table->schema().columns()) {
    if (def.name != "rid") staged_data_schema.AddColumn(def.name, def.type);
  }
  std::vector<int64_t> attr_ids;
  {
    auto r = ReconcileSchema(staged_data_schema);
    ORPHEUS_RETURN_NOT_OK(r.status());
    attr_ids = std::move(r).value();
  }

  // --- Align staged rows to the (possibly evolved) record schema -----
  const rel::Schema& data_schema = model_->data_schema();
  rel::Schema record_schema;
  record_schema.AddColumn("rid", rel::DataType::kInt64);
  for (const rel::ColumnDef& def : data_schema.columns()) {
    record_schema.AddColumn(def.name, def.type);
  }
  const rel::Chunk& staged_rows = staged_table->data();
  size_t n = staged_rows.num_rows();
  rel::Chunk aligned(record_schema);
  std::vector<uint32_t> all(n);
  std::iota(all.begin(), all.end(), 0);
  for (int c = 0; c < data_schema.num_columns(); ++c) {
    const rel::ColumnDef& def = data_schema.column(c);
    int src = staged_rows.schema().FindColumn(def.name);
    rel::Column& dst = aligned.mutable_column(c + 1);
    if (src < 0) {
      dst.AppendNulls(n);
    } else if (staged_rows.column(src).type() == def.type) {
      dst.Gather(staged_rows.column(src), all);
    } else {
      // Widen staged values (e.g. INT column committed into a DOUBLE
      // pool attribute).
      rel::Column tmp(staged_rows.column(src).type());
      tmp.Gather(staged_rows.column(src), all);
      ORPHEUS_RETURN_NOT_OK(tmp.ConvertTo(def.type));
      for (size_t r = 0; r < n; ++r) dst.AppendFrom(tmp, r);
    }
  }

  // --- Primary-key check within the committed version ----------------
  std::vector<int> data_cols(static_cast<size_t>(data_schema.num_columns()));
  std::iota(data_cols.begin(), data_cols.end(), 1);
  if (!primary_key_.empty()) {
    std::vector<int> pk_cols;
    for (const std::string& pk : primary_key_) {
      pk_cols.push_back(record_schema.FindColumn(pk));
    }
    std::unordered_set<uint64_t> seen;
    for (size_t r = 0; r < n; ++r) {
      if (!seen.insert(HashRecord(aligned, r, pk_cols)).second) {
        return Status::ConstraintViolation(
            "duplicate primary key in committed table " + table_name);
      }
    }
  }

  // --- Record resolution (the no-cross-version-diff rule) -----------
  // Build content-hash -> rid over the parents' records only.
  struct ParentRef {
    size_t parent_index;
    size_t row;
    RecordId rid;
  };
  std::unordered_map<uint64_t, std::vector<ParentRef>> parent_hash;
  std::vector<rel::Chunk> parent_rows;
  std::vector<std::unordered_set<RecordId>> parent_rid_sets;
  parent_rows.reserve(parents.size());
  for (size_t p = 0; p < parents.size(); ++p) {
    ORPHEUS_ASSIGN_OR_RETURN(rel::Chunk rows, model_->VersionRows(parents[p]));
    int rid_col = rows.schema().FindColumn("rid");
    std::unordered_set<RecordId> rid_set;
    for (size_t r = 0; r < rows.num_rows(); ++r) {
      RecordId rid = rows.column(rid_col).ints()[r];
      rid_set.insert(rid);
      parent_hash[HashRecord(rows, r, data_cols)].push_back({p, r, rid});
    }
    parent_rid_sets.push_back(std::move(rid_set));
    parent_rows.push_back(std::move(rows));
  }

  std::vector<RecordId> rids(n);
  std::vector<uint32_t> new_rows;
  for (size_t r = 0; r < n; ++r) {
    uint64_t h = HashRecord(aligned, r, data_cols);
    RecordId found = -1;
    auto hit = parent_hash.find(h);
    if (hit != parent_hash.end()) {
      for (const ParentRef& ref : hit->second) {
        if (RecordsEqual(aligned, r, data_cols, parent_rows[ref.parent_index],
                         ref.row, data_cols)) {
          found = ref.rid;
          break;
        }
      }
    }
    if (found >= 0) {
      rids[r] = found;
    } else {
      rids[r] = next_rid_++;
      new_rows.push_back(static_cast<uint32_t>(r));
    }
  }

  // Write resolved rids back into the staged table so the Table 1
  // commit SQL — which reads `SELECT rid FROM T'` — sees them.
  {
    rel::Chunk& staged_mut = staged_table->mutable_chunk();
    int rid_col = staged_mut.schema().FindColumn("rid");
    if (rid_col < 0) {
      return Status::Internal("staged table lost its rid column");
    }
    for (size_t r = 0; r < n; ++r) {
      staged_mut.mutable_column(rid_col).Set(r, rel::Value::Int(rids[r]));
    }
  }
  // Fill the aligned chunk's (still empty) rid column and slice out
  // the new records.
  for (size_t r = 0; r < n; ++r) {
    aligned.mutable_column(0).AppendInt(rids[r]);
  }
  rel::Chunk new_records(record_schema);
  new_records.GatherFrom(aligned, new_rows);

  // --- Edge weights and primary parent --------------------------------
  std::vector<int64_t> weights(parents.size(), 0);
  for (size_t p = 0; p < parents.size(); ++p) {
    for (RecordId rid : rids) {
      if (parent_rid_sets[p].count(rid) > 0) ++weights[p];
    }
  }
  VersionId primary_parent = -1;
  if (!parents.empty()) {
    size_t best = 0;
    for (size_t p = 1; p < parents.size(); ++p) {
      if (weights[p] > weights[best]) best = p;
    }
    primary_parent = parents[best];
  }

  // --- Persist ----------------------------------------------------------
  VersionId vid = next_vid_++;
  ORPHEUS_RETURN_NOT_OK(
      model_->AddVersion(vid, table_name, rids, new_records, primary_parent));
  ORPHEUS_RETURN_NOT_OK(
      graph_.AddVersion(vid, parents, weights, static_cast<int64_t>(n)));
  version_attrs_[vid] = attr_ids;
  ORPHEUS_RETURN_NOT_OK(AppendMetadataRow(vid, parents,
                                          staged_it->second.checkout_time,
                                          ++logical_clock_, message, attr_ids));

  // Commit removes the table from the staging area (§2.3).
  ORPHEUS_RETURN_NOT_OK(db_->DropTable(table_name));
  staged_.erase(staged_it);
  return vid;
}

Result<rel::Chunk> Cvd::Diff(VersionId a, VersionId b) {
  ORPHEUS_ASSIGN_OR_RETURN(rel::Chunk rows_a, model_->VersionRows(a));
  ORPHEUS_ASSIGN_OR_RETURN(std::vector<RecordId> rids_b, model_->VersionRecords(b));
  std::unordered_set<RecordId> b_set(rids_b.begin(), rids_b.end());
  int rid_col = rows_a.schema().FindColumn("rid");
  std::vector<uint32_t> keep;
  for (size_t r = 0; r < rows_a.num_rows(); ++r) {
    if (b_set.count(rows_a.column(rid_col).ints()[r]) == 0) {
      keep.push_back(static_cast<uint32_t>(r));
    }
  }
  rel::Chunk out(rows_a.schema());
  out.GatherFrom(rows_a, keep);
  return out;
}

Status Cvd::DiscardStaged(const std::string& table_name) {
  auto it = staged_.find(table_name);
  if (it == staged_.end()) {
    return Status::NotFound("not a staged table: " + table_name);
  }
  ORPHEUS_RETURN_NOT_OK(db_->DropTable(table_name, /*if_exists=*/true));
  staged_.erase(it);
  return Status::OK();
}

}  // namespace orpheus::core
