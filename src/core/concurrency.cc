#include "core/concurrency.h"

namespace orpheus::core {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// --- SnapshotRegistry ----------------------------------------------------

void SnapshotRegistry::Pin(uint64_t session, const std::string& cvd,
                           SessionPin pin) {
  std::lock_guard<std::mutex> lock(mu_);
  pins_[cvd][session] = pin;
}

bool SnapshotRegistry::Unpin(uint64_t session, const std::string& cvd) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pins_.find(cvd);
  if (it == pins_.end() || it->second.erase(session) == 0) return false;
  if (it->second.empty()) pins_.erase(it);
  return true;
}

int SnapshotRegistry::UnpinAll(uint64_t session) {
  std::lock_guard<std::mutex> lock(mu_);
  int released = 0;
  for (auto it = pins_.begin(); it != pins_.end();) {
    released += static_cast<int>(it->second.erase(session));
    it = it->second.empty() ? pins_.erase(it) : std::next(it);
  }
  return released;
}

void SnapshotRegistry::ForgetCvd(const std::string& cvd) {
  std::lock_guard<std::mutex> lock(mu_);
  pins_.erase(cvd);
}

int SnapshotRegistry::PinCount(const std::string& cvd) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pins_.find(cvd);
  return it == pins_.end() ? 0 : static_cast<int>(it->second.size());
}

int SnapshotRegistry::PinsByOthers(const std::string& cvd,
                                   uint64_t session) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pins_.find(cvd);
  if (it == pins_.end()) return 0;
  int n = static_cast<int>(it->second.size());
  if (it->second.count(session) > 0) --n;
  return n;
}

// --- SessionContext ------------------------------------------------------

std::string SessionContext::user() const {
  std::lock_guard<std::mutex> lock(mu_);
  return user_;
}

void SessionContext::set_user(std::string user) {
  std::lock_guard<std::mutex> lock(mu_);
  user_ = std::move(user);
}

void SessionContext::AddStagedTable(const std::string& table,
                                    const std::string& cvd) {
  std::lock_guard<std::mutex> lock(mu_);
  staged_[table] = cvd;
}

void SessionContext::RemoveStagedTable(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  staged_.erase(table);
}

std::string SessionContext::StagedCvd(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = staged_.find(table);
  return it == staged_.end() ? std::string() : it->second;
}

std::map<std::string, std::string> SessionContext::StagedTables() const {
  std::lock_guard<std::mutex> lock(mu_);
  return staged_;
}

void SessionContext::AddCsvStaging(const std::string& file,
                                   const std::string& cvd,
                                   const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  csv_staging_[file] = {cvd, table};
}

std::pair<std::string, std::string> SessionContext::GetCsvStaging(
    const std::string& file) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = csv_staging_.find(file);
  return it == csv_staging_.end()
             ? std::pair<std::string, std::string>()
             : it->second;
}

void SessionContext::RemoveCsvStaging(const std::string& file) {
  std::lock_guard<std::mutex> lock(mu_);
  csv_staging_.erase(file);
}

void SessionContext::RecordPin(const std::string& cvd, SessionPin pin) {
  std::lock_guard<std::mutex> lock(mu_);
  pins_[cvd] = pin;
}

void SessionContext::RemovePin(const std::string& cvd) {
  std::lock_guard<std::mutex> lock(mu_);
  pins_.erase(cvd);
}

std::map<std::string, SessionPin> SessionContext::Pins() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pins_;
}

void SessionContext::NoteDurableLsn(uint64_t lsn) {
  // Monotonic max: a later statement can complete with a smaller LSN
  // only if something is wrong upstream — never move backwards.
  uint64_t seen = last_durable_lsn_.load(std::memory_order_relaxed);
  while (lsn > seen && !last_durable_lsn_.compare_exchange_weak(
                           seen, lsn, std::memory_order_acq_rel)) {
  }
}

void SessionContext::Touch() {
  last_active_ms_.store(NowMs(), std::memory_order_release);
}

double SessionContext::IdleSeconds() const {
  int64_t last = last_active_ms_.load(std::memory_order_acquire);
  return static_cast<double>(NowMs() - last) / 1000.0;
}

}  // namespace orpheus::core
