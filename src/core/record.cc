#include "core/record.h"

namespace orpheus::core {

namespace {

inline void HashBytes(const void* data, size_t len, uint64_t* h) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    *h ^= p[i];
    *h *= 1099511628211ULL;
  }
}

}  // namespace

uint64_t HashRecord(const rel::Chunk& chunk, size_t row,
                    const std::vector<int>& cols) {
  uint64_t h = 1469598103934665603ULL;
  for (int c : cols) {
    const rel::Column& col = chunk.column(c);
    if (col.IsNull(row)) {
      unsigned char tag = 0xff;
      HashBytes(&tag, 1, &h);
      continue;
    }
    switch (col.type()) {
      case rel::DataType::kInt64:
      case rel::DataType::kBool: {
        int64_t v = col.ints()[row];
        HashBytes(&v, sizeof(v), &h);
        break;
      }
      case rel::DataType::kDouble: {
        double v = col.doubles()[row];
        HashBytes(&v, sizeof(v), &h);
        break;
      }
      case rel::DataType::kString: {
        const std::string& s = col.strings()[row];
        size_t len = s.size();
        HashBytes(&len, sizeof(len), &h);
        HashBytes(s.data(), s.size(), &h);
        break;
      }
      case rel::DataType::kIntArray: {
        const rel::IntArray& a = col.arrays()[row];
        size_t len = a.size();
        HashBytes(&len, sizeof(len), &h);
        HashBytes(a.data(), a.size() * sizeof(int64_t), &h);
        break;
      }
      case rel::DataType::kNull:
        break;
    }
  }
  return h;
}

bool RecordsEqual(const rel::Chunk& a, size_t row_a, const std::vector<int>& cols_a,
                  const rel::Chunk& b, size_t row_b, const std::vector<int>& cols_b) {
  if (cols_a.size() != cols_b.size()) return false;
  for (size_t i = 0; i < cols_a.size(); ++i) {
    rel::Value va = a.Get(row_a, cols_a[i]);
    rel::Value vb = b.Get(row_b, cols_b[i]);
    if (va.is_null() && vb.is_null()) continue;
    if (!va.Equals(vb)) return false;
  }
  return true;
}

}  // namespace orpheus::core
