#include "core/query_translator.h"

#include "common/str_util.h"
#include "relstore/lexer.h"

namespace orpheus::core {

namespace {

bool IsWord(const rel::Token& tok, const char* word) {
  return (tok.type == rel::TokenType::kIdentifier ||
          tok.type == rel::TokenType::kKeyword) &&
         EqualsIgnoreCase(tok.text, word);
}

// Builds the derived-table SQL for one version of a CVD.
std::string SingleVersionSubquery(const std::string& data_table,
                                  const std::string& versioning_table,
                                  VersionId vid) {
  return "(SELECT d.* FROM " + data_table +
         " d, (SELECT unnest(rlist) AS orpheus_rid FROM " + versioning_table +
         " WHERE vid = " + std::to_string(vid) +
         ") AS orpheus_v WHERE d.rid = orpheus_v.orpheus_rid)";
}

// Builds the derived-table SQL exposing every version's records with a
// vid column.
std::string AllVersionsSubquery(const std::string& data_table,
                                const std::string& versioning_table) {
  return "(SELECT orpheus_v.vid AS vid, d.* FROM " + data_table +
         " d, (SELECT vid, unnest(rlist) AS orpheus_rid FROM " +
         versioning_table +
         ") AS orpheus_v WHERE d.rid = orpheus_v.orpheus_rid)";
}

}  // namespace

Result<std::string> TranslateVersionedSql(const std::string& sql,
                                          const TableResolver& resolver) {
  ORPHEUS_ASSIGN_OR_RETURN(std::vector<rel::Token> tokens, rel::Tokenize(sql));
  std::string out;
  size_t consumed = 0;  // byte offset into `sql` already copied
  int alias_counter = 0;

  for (size_t i = 0; i < tokens.size(); ++i) {
    const rel::Token& tok = tokens[i];
    bool is_version = IsWord(tok, "version") && i + 4 < tokens.size() &&
                      tokens[i + 1].type == rel::TokenType::kInteger &&
                      IsWord(tokens[i + 2], "of") && IsWord(tokens[i + 3], "cvd") &&
                      tokens[i + 4].type == rel::TokenType::kIdentifier;
    bool is_cvd = !is_version && IsWord(tok, "cvd") && i + 1 < tokens.size() &&
                  tokens[i + 1].type == rel::TokenType::kIdentifier &&
                  // not the tail of "... OF CVD x" (handled above)
                  (i < 2 || !IsWord(tokens[i - 1], "of"));
    if (!is_version && !is_cvd) continue;

    // Copy the text before this construct.
    out.append(sql, consumed, tok.offset - consumed);

    std::string cvd_name;
    VersionId vid = -1;
    size_t end_index;  // first token after the construct
    if (is_version) {
      vid = tokens[i + 1].int_value;
      cvd_name = tokens[i + 4].text;
      end_index = i + 5;
    } else {
      cvd_name = tokens[i + 1].text;
      end_index = i + 2;
    }
    ORPHEUS_ASSIGN_OR_RETURN(auto tables, resolver(cvd_name, vid));

    std::string subquery = is_version
                               ? SingleVersionSubquery(tables.first, tables.second, vid)
                               : AllVersionsSubquery(tables.first, tables.second);
    out += subquery;

    // Preserve a user alias if present, else invent one (derived
    // tables require aliases).
    bool has_alias = false;
    if (end_index < tokens.size()) {
      const rel::Token& next = tokens[end_index];
      if (next.type == rel::TokenType::kKeyword && next.text == "as") {
        has_alias = true;
      } else if (next.type == rel::TokenType::kIdentifier) {
        has_alias = true;
      }
    }
    if (!has_alias) {
      out += " AS orpheus_cvd" + std::to_string(alias_counter++);
    }
    // The splice consumed the whitespace up to the next token.
    out += " ";

    consumed = end_index < tokens.size() ? tokens[end_index].offset : sql.size();
    i = end_index - 1;  // loop increment moves past the construct
  }
  out.append(sql, consumed, sql.size() - consumed);
  return out;
}

}  // namespace orpheus::core
