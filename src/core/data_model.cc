#include "core/data_model.h"

#include <numeric>
#include <set>
#include <unordered_set>

#include "common/str_util.h"

namespace orpheus::core {

namespace {

// Extracts an INT column named `name` from a chunk.
Result<std::vector<int64_t>> IntColumn(const rel::Chunk& chunk,
                                       const std::string& name) {
  ORPHEUS_ASSIGN_OR_RETURN(int col, chunk.schema().Resolve(name));
  if (chunk.column(col).type() != rel::DataType::kInt64) {
    return Status::Internal("column " + name + " is not INT");
  }
  return chunk.column(col).ints();
}

// Bulk-appends `rows` (schema: rid + data) into `table`, whose leading
// columns must match. This is the middleware's COPY-equivalent bulk
// path; per-row INSERT statements would only add parse overhead.
Status BulkAppend(rel::Table* table, const rel::Chunk& rows) {
  if (rows.num_rows() == 0) return Status::OK();
  std::vector<uint32_t> all(rows.num_rows());
  std::iota(all.begin(), all.end(), 0);
  rel::Chunk& dst = table->mutable_chunk();
  for (int c = 0; c < rows.num_columns(); ++c) {
    dst.mutable_column(c).Gather(rows.column(c), all);
  }
  // Backfill any trailing columns (e.g. vlist) — caller fills them.
  return Status::OK();
}

}  // namespace

const char* DataModelKindName(DataModelKind kind) {
  switch (kind) {
    case DataModelKind::kTablePerVersion:
      return "a-table-per-version";
    case DataModelKind::kCombinedTable:
      return "combined-table";
    case DataModelKind::kSplitByVlist:
      return "split-by-vlist";
    case DataModelKind::kSplitByRlist:
      return "split-by-rlist";
    case DataModelKind::kDeltaBased:
      return "delta-based";
  }
  return "unknown";
}

Result<DataModelKind> DataModelKindFromName(const std::string& name) {
  std::string lower = ToLower(name);
  if (lower == "a-table-per-version" || lower == "tpv") {
    return DataModelKind::kTablePerVersion;
  }
  if (lower == "combined-table" || lower == "combined") {
    return DataModelKind::kCombinedTable;
  }
  if (lower == "split-by-vlist" || lower == "vlist") {
    return DataModelKind::kSplitByVlist;
  }
  if (lower == "split-by-rlist" || lower == "rlist") {
    return DataModelKind::kSplitByRlist;
  }
  if (lower == "delta-based" || lower == "delta") {
    return DataModelKind::kDeltaBased;
  }
  return Status::InvalidArgument("unknown data model: " + name);
}

DataModel::DataModel(rel::Database* db, std::string cvd_name,
                     rel::Schema data_schema)
    : db_(db), cvd_name_(std::move(cvd_name)), data_schema_(std::move(data_schema)) {}

rel::Schema DataModel::RecordSchema() const {
  rel::Schema schema;
  schema.AddColumn("rid", rel::DataType::kInt64);
  for (const rel::ColumnDef& def : data_schema_.columns()) {
    schema.AddColumn(def.name, def.type);
  }
  return schema;
}

std::string DataModel::RecordColumnList() const {
  std::vector<std::string> cols = {"rid"};
  for (const rel::ColumnDef& def : data_schema_.columns()) {
    cols.push_back(def.name);
  }
  return Join(cols, ", ");
}

int64_t DataModel::TableBytes(const std::string& table) const {
  auto result = db_->GetTable(table);
  if (!result.ok()) return 0;
  return result.value()->ByteSize() + result.value()->IndexByteSize();
}

Result<rel::Chunk> DataModel::VersionRows(VersionId vid) {
  const std::string tmp = cvd_name_ + "_vrows_tmp";
  ORPHEUS_RETURN_NOT_OK(db_->DropTable(tmp, /*if_exists=*/true));
  ORPHEUS_RETURN_NOT_OK(CheckoutVersion(vid, tmp));
  ORPHEUS_ASSIGN_OR_RETURN(rel::Table * table, db_->GetTable(tmp));
  rel::Chunk rows = std::move(table->mutable_chunk());
  ORPHEUS_RETURN_NOT_OK(db_->DropTable(tmp));
  return rows;
}

Status DataModel::AddDataColumn(const std::string& name, rel::DataType type) {
  (void)name;
  (void)type;
  return Status::NotSupported(std::string(DataModelKindName(kind())) +
                              " does not support schema evolution");
}

Status DataModel::WidenDataColumn(const std::string& name, rel::DataType type) {
  (void)name;
  (void)type;
  return Status::NotSupported(std::string(DataModelKindName(kind())) +
                              " does not support schema evolution");
}

Status DataModel::RestoreFromTables(const VersionGraph& graph) {
  (void)graph;
  return Status::OK();
}

std::unique_ptr<DataModel> MakeDataModel(DataModelKind kind, rel::Database* db,
                                         const std::string& cvd_name,
                                         rel::Schema data_schema) {
  switch (kind) {
    case DataModelKind::kTablePerVersion:
      return std::make_unique<TablePerVersionModel>(db, cvd_name,
                                                    std::move(data_schema));
    case DataModelKind::kCombinedTable:
      return std::make_unique<CombinedTableModel>(db, cvd_name,
                                                  std::move(data_schema));
    case DataModelKind::kSplitByVlist:
      return std::make_unique<SplitByVlistModel>(db, cvd_name,
                                                 std::move(data_schema));
    case DataModelKind::kSplitByRlist:
      return std::make_unique<SplitByRlistModel>(db, cvd_name,
                                                 std::move(data_schema));
    case DataModelKind::kDeltaBased:
      return std::make_unique<DeltaBasedModel>(db, cvd_name,
                                               std::move(data_schema));
  }
  return nullptr;
}

// --- A-table-per-version ----------------------------------------------

std::string TablePerVersionModel::VersionTable(VersionId vid) const {
  return cvd_name_ + "_v" + std::to_string(vid);
}

Status TablePerVersionModel::Init() { return Status::OK(); }

Status TablePerVersionModel::AddVersion(VersionId vid,
                                        const std::string& staged_table,
                                        const std::vector<RecordId>& rids,
                                        const rel::Chunk& new_records,
                                        VersionId primary_parent) {
  (void)rids;
  (void)new_records;
  (void)primary_parent;
  // Copy the staged table wholesale; that is the point of this model.
  ORPHEUS_ASSIGN_OR_RETURN(
      rel::Chunk unused,
      db_->Execute("SELECT " + RecordColumnList() + " INTO " + VersionTable(vid) +
                   " FROM " + staged_table));
  (void)unused;
  versions_.push_back(vid);
  return Status::OK();
}

Status TablePerVersionModel::CheckoutVersion(VersionId vid,
                                             const std::string& table_name) {
  ORPHEUS_ASSIGN_OR_RETURN(
      rel::Chunk unused,
      db_->Execute("SELECT " + RecordColumnList() + " INTO " + table_name +
                   " FROM " + VersionTable(vid)));
  (void)unused;
  return Status::OK();
}

Result<std::vector<RecordId>> TablePerVersionModel::VersionRecords(VersionId vid) {
  ORPHEUS_ASSIGN_OR_RETURN(rel::Chunk out,
                           db_->Execute("SELECT rid FROM " + VersionTable(vid)));
  return IntColumn(out, "rid");
}

int64_t TablePerVersionModel::StorageBytes() const {
  int64_t bytes = 0;
  for (VersionId vid : versions_) bytes += TableBytes(VersionTable(vid));
  return bytes;
}

Status TablePerVersionModel::RestoreFromTables(const VersionGraph& graph) {
  versions_ = graph.versions();
  for (VersionId vid : versions_) {
    if (!db_->HasTable(VersionTable(vid))) {
      return Status::Internal("missing version table after restore: " +
                              VersionTable(vid));
    }
  }
  return Status::OK();
}

// --- Combined table ----------------------------------------------------

Status CombinedTableModel::Init() {
  rel::Schema schema = RecordSchema();
  schema.AddColumn("vlist", rel::DataType::kIntArray);
  return db_->CreateTable(CombinedTable(), std::move(schema), {"rid"});
}

Status CombinedTableModel::AddVersion(VersionId vid,
                                      const std::string& staged_table,
                                      const std::vector<RecordId>& rids,
                                      const rel::Chunk& new_records,
                                      VersionId primary_parent) {
  (void)rids;
  (void)primary_parent;
  // Table 1 commit: append vid to vlist for every record of the new
  // version already present in the CVD. New records are not yet in the
  // combined table, so the IN-list matches exactly the reused ones.
  ORPHEUS_ASSIGN_OR_RETURN(
      rel::Chunk unused,
      db_->Execute("UPDATE " + CombinedTable() + " SET vlist = vlist + " +
                   std::to_string(vid) + " WHERE rid IN (SELECT rid FROM " +
                   staged_table + ")"));
  (void)unused;
  // Bulk-insert the new records with a singleton vlist.
  if (new_records.num_rows() > 0) {
    ORPHEUS_ASSIGN_OR_RETURN(rel::Table * table, db_->GetTable(CombinedTable()));
    ORPHEUS_RETURN_NOT_OK(BulkAppend(table, new_records));
    rel::Column& vlist =
        table->mutable_chunk().mutable_column(table->schema().FindColumn("vlist"));
    for (size_t i = 0; i < new_records.num_rows(); ++i) {
      vlist.AppendArray({vid});
    }
  }
  return Status::OK();
}

Status CombinedTableModel::CheckoutVersion(VersionId vid,
                                           const std::string& table_name) {
  // Table 1 checkout: array-containment scan over the combined table.
  ORPHEUS_ASSIGN_OR_RETURN(
      rel::Chunk unused,
      db_->Execute("SELECT " + RecordColumnList() + " INTO " + table_name +
                   " FROM " + CombinedTable() + " WHERE ARRAY[" +
                   std::to_string(vid) + "] <@ vlist"));
  (void)unused;
  return Status::OK();
}

Result<std::vector<RecordId>> CombinedTableModel::VersionRecords(VersionId vid) {
  ORPHEUS_ASSIGN_OR_RETURN(
      rel::Chunk out,
      db_->Execute("SELECT rid FROM " + CombinedTable() + " WHERE ARRAY[" +
                   std::to_string(vid) + "] <@ vlist"));
  return IntColumn(out, "rid");
}

int64_t CombinedTableModel::StorageBytes() const {
  return TableBytes(CombinedTable());
}

// --- Split-by-vlist ------------------------------------------------------

Status SplitByVlistModel::Init() {
  ORPHEUS_RETURN_NOT_OK(db_->CreateTable(DataTable(), RecordSchema(), {"rid"}));
  rel::Schema versioning;
  versioning.AddColumn("rid", rel::DataType::kInt64);
  versioning.AddColumn("vlist", rel::DataType::kIntArray);
  return db_->CreateTable(VersioningTable(), std::move(versioning), {"rid"});
}

Status SplitByVlistModel::AddVersion(VersionId vid,
                                     const std::string& staged_table,
                                     const std::vector<RecordId>& rids,
                                     const rel::Chunk& new_records,
                                     VersionId primary_parent) {
  (void)primary_parent;
  (void)rids;
  // Table 1 commit: same array-append as combined-table, but on the
  // (narrow) versioning table.
  ORPHEUS_ASSIGN_OR_RETURN(
      rel::Chunk unused,
      db_->Execute("UPDATE " + VersioningTable() + " SET vlist = vlist + " +
                   std::to_string(vid) + " WHERE rid IN (SELECT rid FROM " +
                   staged_table + ")"));
  (void)unused;
  if (new_records.num_rows() > 0) {
    ORPHEUS_ASSIGN_OR_RETURN(rel::Table * data, db_->GetTable(DataTable()));
    ORPHEUS_RETURN_NOT_OK(BulkAppend(data, new_records));
    ORPHEUS_ASSIGN_OR_RETURN(rel::Table * versioning,
                             db_->GetTable(VersioningTable()));
    ORPHEUS_ASSIGN_OR_RETURN(std::vector<int64_t> new_rids,
                             IntColumn(new_records, "rid"));
    rel::Chunk& vc = versioning->mutable_chunk();
    for (int64_t rid : new_rids) {
      vc.mutable_column(0).AppendInt(rid);
      vc.mutable_column(1).AppendArray({vid});
    }
  }
  return Status::OK();
}

Status SplitByVlistModel::CheckoutVersion(VersionId vid,
                                          const std::string& table_name) {
  // Table 1 checkout: select qualifying rids, then join the data table.
  ORPHEUS_ASSIGN_OR_RETURN(
      rel::Chunk unused,
      db_->Execute("SELECT d.* INTO " + table_name + " FROM " + DataTable() +
                   " d, (SELECT rid AS rid_tmp FROM " + VersioningTable() +
                   " WHERE ARRAY[" + std::to_string(vid) +
                   "] <@ vlist) AS tmp WHERE d.rid = tmp.rid_tmp"));
  (void)unused;
  return Status::OK();
}

Result<std::vector<RecordId>> SplitByVlistModel::VersionRecords(VersionId vid) {
  ORPHEUS_ASSIGN_OR_RETURN(
      rel::Chunk out,
      db_->Execute("SELECT rid FROM " + VersioningTable() + " WHERE ARRAY[" +
                   std::to_string(vid) + "] <@ vlist"));
  return IntColumn(out, "rid");
}

int64_t SplitByVlistModel::StorageBytes() const {
  return TableBytes(DataTable()) + TableBytes(VersioningTable());
}

Status SplitByVlistModel::AddDataColumn(const std::string& name,
                                        rel::DataType type) {
  ORPHEUS_ASSIGN_OR_RETURN(rel::Table * data, db_->GetTable(DataTable()));
  ORPHEUS_RETURN_NOT_OK(data->AddColumn(name, type));
  data_schema_.AddColumn(name, type);
  return Status::OK();
}

Status SplitByVlistModel::WidenDataColumn(const std::string& name,
                                          rel::DataType type) {
  ORPHEUS_ASSIGN_OR_RETURN(rel::Table * data, db_->GetTable(DataTable()));
  ORPHEUS_RETURN_NOT_OK(data->AlterColumnType(name, type));
  rel::Schema updated;
  for (const rel::ColumnDef& def : data_schema_.columns()) {
    updated.AddColumn(def.name, def.name == name ? type : def.type);
  }
  data_schema_ = std::move(updated);
  return Status::OK();
}

// --- Split-by-rlist ------------------------------------------------------

Status SplitByRlistModel::Init() {
  ORPHEUS_RETURN_NOT_OK(db_->CreateTable(DataTable(), RecordSchema(), {"rid"}));
  rel::Schema versioning;
  versioning.AddColumn("vid", rel::DataType::kInt64);
  versioning.AddColumn("rlist", rel::DataType::kIntArray);
  return db_->CreateTable(VersioningTable(), std::move(versioning), {"vid"});
}

Status SplitByRlistModel::AddVersion(VersionId vid,
                                     const std::string& staged_table,
                                     const std::vector<RecordId>& rids,
                                     const rel::Chunk& new_records,
                                     VersionId primary_parent) {
  (void)primary_parent;
  (void)rids;
  if (new_records.num_rows() > 0) {
    ORPHEUS_ASSIGN_OR_RETURN(rel::Table * data, db_->GetTable(DataTable()));
    ORPHEUS_RETURN_NOT_OK(BulkAppend(data, new_records));
  }
  // Table 1 commit: a single versioning-table tuple — no array appends.
  ORPHEUS_ASSIGN_OR_RETURN(
      rel::Chunk unused,
      db_->Execute("INSERT INTO " + VersioningTable() + " VALUES (" +
                   std::to_string(vid) + ", ARRAY(SELECT rid FROM " +
                   staged_table + "))"));
  (void)unused;
  return Status::OK();
}

Status SplitByRlistModel::CheckoutVersion(VersionId vid,
                                          const std::string& table_name) {
  // Table 1 checkout: unnest the version's rlist, join the data table.
  ORPHEUS_ASSIGN_OR_RETURN(
      rel::Chunk unused,
      db_->Execute("SELECT d.* INTO " + table_name + " FROM " + DataTable() +
                   " d, (SELECT unnest(rlist) AS rid_tmp FROM " +
                   VersioningTable() + " WHERE vid = " + std::to_string(vid) +
                   ") AS tmp WHERE d.rid = tmp.rid_tmp"));
  (void)unused;
  return Status::OK();
}

Result<std::vector<RecordId>> SplitByRlistModel::VersionRecords(VersionId vid) {
  ORPHEUS_ASSIGN_OR_RETURN(
      rel::Chunk out,
      db_->Execute("SELECT unnest(rlist) AS rid FROM " + VersioningTable() +
                   " WHERE vid = " + std::to_string(vid)));
  return IntColumn(out, "rid");
}

int64_t SplitByRlistModel::StorageBytes() const {
  return TableBytes(DataTable()) + TableBytes(VersioningTable());
}

Status SplitByRlistModel::AddDataColumn(const std::string& name,
                                        rel::DataType type) {
  ORPHEUS_ASSIGN_OR_RETURN(rel::Table * data, db_->GetTable(DataTable()));
  ORPHEUS_RETURN_NOT_OK(data->AddColumn(name, type));
  data_schema_.AddColumn(name, type);
  return Status::OK();
}

Status SplitByRlistModel::WidenDataColumn(const std::string& name,
                                          rel::DataType type) {
  ORPHEUS_ASSIGN_OR_RETURN(rel::Table * data, db_->GetTable(DataTable()));
  ORPHEUS_RETURN_NOT_OK(data->AlterColumnType(name, type));
  rel::Schema updated;
  for (const rel::ColumnDef& def : data_schema_.columns()) {
    updated.AddColumn(def.name, def.name == name ? type : def.type);
  }
  data_schema_ = std::move(updated);
  return Status::OK();
}

// --- Delta-based ---------------------------------------------------------

std::string DeltaBasedModel::DeltaTable(VersionId vid) const {
  return cvd_name_ + "_delta_" + std::to_string(vid);
}

Status DeltaBasedModel::Init() {
  rel::Schema meta;
  meta.AddColumn("vid", rel::DataType::kInt64);
  meta.AddColumn("base", rel::DataType::kInt64);
  return db_->CreateTable(cvd_name_ + "_deltameta", std::move(meta), {"vid"});
}

Status DeltaBasedModel::AddVersion(VersionId vid,
                                   const std::string& staged_table,
                                   const std::vector<RecordId>& rids,
                                   const rel::Chunk& new_records,
                                   VersionId primary_parent) {
  (void)new_records;
  rel::Schema delta_schema = RecordSchema();
  delta_schema.AddColumn("tombstone", rel::DataType::kBool);
  ORPHEUS_RETURN_NOT_OK(db_->CreateTable(DeltaTable(vid), delta_schema, {"rid"}));
  ORPHEUS_ASSIGN_OR_RETURN(rel::Table * delta, db_->GetTable(DeltaTable(vid)));
  ORPHEUS_ASSIGN_OR_RETURN(rel::Table * staged, db_->GetTable(staged_table));
  const rel::Chunk& staged_rows = staged->data();

  std::unordered_set<RecordId> parent_rids;
  if (primary_parent >= 0) {
    ORPHEUS_ASSIGN_OR_RETURN(std::vector<RecordId> prids,
                             VersionRecords(primary_parent));
    parent_rids.insert(prids.begin(), prids.end());
  }

  // Inserts: rows of the new version absent from the base version.
  std::vector<uint32_t> insert_rows;
  std::unordered_set<RecordId> staged_set;
  staged_set.reserve(rids.size() * 2);
  for (size_t i = 0; i < rids.size(); ++i) {
    staged_set.insert(rids[i]);
    if (parent_rids.count(rids[i]) == 0) {
      insert_rows.push_back(static_cast<uint32_t>(i));
    }
  }
  rel::Chunk& dst = delta->mutable_chunk();
  for (int c = 0; c < staged_rows.num_columns(); ++c) {
    dst.mutable_column(c).Gather(staged_rows.column(c), insert_rows);
  }
  int tomb_col = dst.schema().FindColumn("tombstone");
  for (size_t i = 0; i < insert_rows.size(); ++i) {
    dst.mutable_column(tomb_col).Append(rel::Value::Bool(false));
  }
  // Deletes: base records absent from the new version get tombstones.
  for (RecordId rid : parent_rids) {
    if (staged_set.count(rid) > 0) continue;
    std::vector<rel::Value> row(static_cast<size_t>(dst.schema().num_columns()));
    row[0] = rel::Value::Int(rid);
    row[static_cast<size_t>(tomb_col)] = rel::Value::Bool(true);
    dst.AppendRow(row);
  }

  base_[vid] = primary_parent;
  ORPHEUS_ASSIGN_OR_RETURN(
      rel::Chunk unused,
      db_->Execute("INSERT INTO " + cvd_name_ + "_deltameta VALUES (" +
                   std::to_string(vid) + ", " + std::to_string(primary_parent) +
                   ")"));
  (void)unused;
  return Status::OK();
}

Result<std::vector<VersionId>> DeltaBasedModel::Lineage(VersionId vid) const {
  std::vector<VersionId> chain;
  VersionId cur = vid;
  while (cur >= 0) {
    auto it = base_.find(cur);
    if (it == base_.end()) {
      return Status::NotFound("no delta for version " + std::to_string(cur));
    }
    chain.push_back(cur);
    cur = it->second;
  }
  return chain;
}

Status DeltaBasedModel::Replay(VersionId vid, rel::Chunk* out) {
  ORPHEUS_ASSIGN_OR_RETURN(std::vector<VersionId> chain, Lineage(vid));
  std::unordered_set<RecordId> seen;
  for (VersionId v : chain) {  // newest first: first occurrence wins
    ORPHEUS_ASSIGN_OR_RETURN(rel::Table * delta, db_->GetTable(DeltaTable(v)));
    const rel::Chunk& rows = delta->data();
    int rid_col = rows.schema().FindColumn("rid");
    int tomb_col = rows.schema().FindColumn("tombstone");
    const std::vector<int64_t>& rids = rows.column(rid_col).ints();
    const std::vector<int64_t>& tombs = rows.column(tomb_col).ints();
    std::vector<uint32_t> keep;
    for (size_t i = 0; i < rows.num_rows(); ++i) {
      if (!seen.insert(rids[i]).second) continue;  // discarded: occurred before
      if (tombs[i] == 0) keep.push_back(static_cast<uint32_t>(i));
    }
    // Append kept rows (rid + data columns; tombstone dropped).
    for (int c = 0; c < out->num_columns(); ++c) {
      out->mutable_column(c).Gather(rows.column(c), keep);
    }
  }
  return Status::OK();
}

Status DeltaBasedModel::CheckoutVersion(VersionId vid,
                                        const std::string& table_name) {
  rel::Chunk out(RecordSchema());
  ORPHEUS_RETURN_NOT_OK(Replay(vid, &out));
  return db_->AdoptTable(table_name, std::move(out));
}

Result<std::vector<RecordId>> DeltaBasedModel::VersionRecords(VersionId vid) {
  ORPHEUS_ASSIGN_OR_RETURN(std::vector<VersionId> chain, Lineage(vid));
  std::unordered_set<RecordId> seen;
  std::vector<RecordId> out;
  for (VersionId v : chain) {
    ORPHEUS_ASSIGN_OR_RETURN(rel::Table * delta, db_->GetTable(DeltaTable(v)));
    const rel::Chunk& rows = delta->data();
    int rid_col = rows.schema().FindColumn("rid");
    int tomb_col = rows.schema().FindColumn("tombstone");
    const std::vector<int64_t>& rids = rows.column(rid_col).ints();
    const std::vector<int64_t>& tombs = rows.column(tomb_col).ints();
    for (size_t i = 0; i < rows.num_rows(); ++i) {
      if (!seen.insert(rids[i]).second) continue;
      if (tombs[i] == 0) out.push_back(rids[i]);
    }
  }
  return out;
}

int64_t DeltaBasedModel::StorageBytes() const {
  int64_t bytes = TableBytes(cvd_name_ + "_deltameta");
  for (const auto& [vid, base] : base_) bytes += TableBytes(DeltaTable(vid));
  return bytes;
}

Status DeltaBasedModel::RestoreFromTables(const VersionGraph& graph) {
  (void)graph;
  base_.clear();
  ORPHEUS_ASSIGN_OR_RETURN(
      rel::Chunk rows,
      db_->Execute("SELECT vid, base FROM " + cvd_name_ + "_deltameta"));
  ORPHEUS_ASSIGN_OR_RETURN(std::vector<int64_t> vids, IntColumn(rows, "vid"));
  ORPHEUS_ASSIGN_OR_RETURN(std::vector<int64_t> bases, IntColumn(rows, "base"));
  for (size_t i = 0; i < vids.size(); ++i) base_[vids[i]] = bases[i];
  return Status::OK();
}

}  // namespace orpheus::core
