#include "core/version_graph.h"

#include <algorithm>
#include <deque>
#include <set>

namespace orpheus::core {

Status VersionGraph::AddVersion(VersionId vid,
                                const std::vector<VersionId>& parents,
                                const std::vector<int64_t>& parent_weights,
                                int64_t num_records) {
  if (nodes_.count(vid) > 0) {
    return Status::AlreadyExists("version already exists: " + std::to_string(vid));
  }
  if (parents.size() != parent_weights.size()) {
    return Status::InvalidArgument("parents/weights size mismatch");
  }
  VersionNode node;
  node.vid = vid;
  node.parents = parents;
  node.parent_weights = parent_weights;
  node.num_records = num_records;
  int level = 1;
  for (VersionId parent : parents) {
    auto it = nodes_.find(parent);
    if (it == nodes_.end()) {
      return Status::NotFound("parent version not found: " + std::to_string(parent));
    }
    level = std::max(level, it->second.level + 1);
  }
  node.level = level;
  for (VersionId parent : parents) {
    nodes_[parent].children.push_back(vid);
  }
  nodes_[vid] = std::move(node);
  order_.push_back(vid);
  return Status::OK();
}

Result<const VersionNode*> VersionGraph::GetNode(VersionId vid) const {
  auto it = nodes_.find(vid);
  if (it == nodes_.end()) {
    return Status::NotFound("version not found: " + std::to_string(vid));
  }
  return &it->second;
}

std::vector<VersionId> VersionGraph::Roots() const {
  std::vector<VersionId> roots;
  for (VersionId vid : order_) {
    if (nodes_.at(vid).parents.empty()) roots.push_back(vid);
  }
  return roots;
}

namespace {

Result<std::vector<VersionId>> Traverse(
    const std::map<VersionId, VersionNode>& nodes, VersionId start,
    bool follow_parents) {
  auto it = nodes.find(start);
  if (it == nodes.end()) {
    return Status::NotFound("version not found: " + std::to_string(start));
  }
  std::vector<VersionId> out;
  std::set<VersionId> seen = {start};
  std::deque<VersionId> frontier = {start};
  while (!frontier.empty()) {
    VersionId cur = frontier.front();
    frontier.pop_front();
    const VersionNode& node = nodes.at(cur);
    const std::vector<VersionId>& next =
        follow_parents ? node.parents : node.children;
    for (VersionId n : next) {
      if (seen.insert(n).second) {
        out.push_back(n);
        frontier.push_back(n);
      }
    }
  }
  return out;
}

}  // namespace

Result<std::vector<VersionId>> VersionGraph::Ancestors(VersionId vid) const {
  return Traverse(nodes_, vid, /*follow_parents=*/true);
}

Result<std::vector<VersionId>> VersionGraph::Descendants(VersionId vid) const {
  return Traverse(nodes_, vid, /*follow_parents=*/false);
}

bool VersionGraph::IsTree() const {
  for (const auto& [vid, node] : nodes_) {
    if (node.parents.size() > 1) return false;
  }
  return true;
}

VersionGraph VersionGraph::ToTree(int64_t* duplicated_records) const {
  VersionGraph tree;
  int64_t duplicated = 0;
  for (VersionId vid : order_) {
    const VersionNode& node = nodes_.at(vid);
    if (node.parents.size() <= 1) {
      // Root or single-parent: copied verbatim.
      (void)tree.AddVersion(vid, node.parents, node.parent_weights,
                            node.num_records);
      continue;
    }
    // Merge node: retain the max-weight incoming edge (Appendix C.1);
    // records shared with the dropped parents count as duplicated.
    size_t best = 0;
    for (size_t i = 1; i < node.parents.size(); ++i) {
      if (node.parent_weights[i] > node.parent_weights[best]) best = i;
    }
    for (size_t i = 0; i < node.parents.size(); ++i) {
      if (i != best) duplicated += node.parent_weights[i];
    }
    (void)tree.AddVersion(vid, {node.parents[best]},
                          {node.parent_weights[best]}, node.num_records);
  }
  if (duplicated_records != nullptr) *duplicated_records = duplicated;
  return tree;
}

int64_t VersionGraph::TotalNewRecords() const {
  int64_t total = 0;
  for (const auto& [vid, node] : nodes_) {
    int64_t inherited = 0;
    if (!node.parents.empty()) {
      // In a tree there is exactly one weight; in a DAG this
      // undercounts sharing (which is why |R^| exists).
      inherited = *std::max_element(node.parent_weights.begin(),
                                    node.parent_weights.end());
    }
    total += node.num_records - inherited;
  }
  return total;
}

int64_t VersionGraph::TotalBipartiteEdges() const {
  int64_t total = 0;
  for (const auto& [vid, node] : nodes_) total += node.num_records;
  return total;
}

std::string VersionGraph::ToDot() const {
  std::string out = "digraph versions {\n";
  for (VersionId vid : order_) {
    const VersionNode& node = nodes_.at(vid);
    out += "  v" + std::to_string(vid) + " [label=\"v" + std::to_string(vid) +
           " (" + std::to_string(node.num_records) + ")\"];\n";
    for (size_t i = 0; i < node.parents.size(); ++i) {
      out += "  v" + std::to_string(node.parents[i]) + " -> v" +
             std::to_string(vid) + " [label=\"" +
             std::to_string(node.parent_weights[i]) + "\"];\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace orpheus::core
