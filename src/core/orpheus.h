// OrpheusDB: the top-level middleware facade (Figure 2 of the paper).
//
// Owns the backing relstore Database, the registered CVDs, the user
// registry (access controller), and dispatches the version-control
// verbs and versioned SQL. The CLI and the examples talk to this
// class; tests may also reach into Cvd directly.

#ifndef ORPHEUS_CORE_ORPHEUS_H_
#define ORPHEUS_CORE_ORPHEUS_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/cvd.h"
#include "core/query_translator.h"
#include "relstore/database.h"

namespace orpheus::core {

class OrpheusDB {
 public:
  OrpheusDB();

  rel::Database* db() { return &db_; }

  // --- Access controller ------------------------------------------------
  Status CreateUser(const std::string& name);
  Status Login(const std::string& name);  // the paper's `config`
  const std::string& WhoAmI() const { return current_user_; }

  // --- CVD lifecycle -----------------------------------------------------
  // `init`: registers a dataset as a new CVD and creates version 1.
  Result<Cvd*> InitCvd(const std::string& name, const rel::Chunk& rows,
                       CvdOptions options, const std::string& message);
  Result<Cvd*> GetCvd(const std::string& name);
  std::vector<std::string> ListCvds() const;  // `ls`
  Status DropCvd(const std::string& name);    // `drop`

  // --- Versioned SQL (`run`) ---------------------------------------------
  // Translates VERSION/OF/CVD constructs, then executes.
  Result<rel::Chunk> Run(const std::string& sql);

  // The translator's view of which tables back a CVD version; the
  // partition optimizer installs overrides through Cvd.
  Result<std::pair<std::string, std::string>> ResolveTables(
      const std::string& cvd_name, VersionId vid);

  // Per-CVD table resolver overrides (installed by the partition
  // optimizer alongside the checkout override).
  void SetTableResolver(const std::string& cvd_name, TableResolver resolver);
  void ClearTableResolver(const std::string& cvd_name);

 private:
  rel::Database db_;
  std::map<std::string, std::unique_ptr<Cvd>> cvds_;
  std::map<std::string, TableResolver> resolver_overrides_;
  std::set<std::string> users_;
  std::string current_user_;
};

}  // namespace orpheus::core

#endif  // ORPHEUS_CORE_ORPHEUS_H_
