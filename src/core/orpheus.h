// OrpheusDB: the top-level middleware facade (Figure 2 of the paper).
//
// Owns the backing relstore Database, the registered CVDs, the user
// registry (access controller), any partition stores installed by the
// optimizer, and — when a durable directory is open — the storage
// manager that makes the version-control verbs crash-safe. The CLI and
// the examples talk to this class; tests may also reach into Cvd
// directly (such direct mutations bypass the commit WAL and are only
// persisted by the next snapshot).
//
// Durability contract: with Open() active, every version-control verb
// (CreateUser/Login/InitCvd/Checkout/Commit/DiscardStaged/DropCvd and
// partition-store attachment) is appended to the commit WAL after its
// in-memory apply succeeds; reopening the directory replays the log on
// top of the latest snapshot. Raw SQL against db() is NOT logged — it
// becomes durable at the next Checkpoint()/SaveSnapshot(). See
// docs/PERSISTENCE.md for the recovery contract.

#ifndef ORPHEUS_CORE_ORPHEUS_H_
#define ORPHEUS_CORE_ORPHEUS_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/cvd.h"
#include "core/query_translator.h"
#include "partition/partition_store.h"
#include "relstore/database.h"

namespace orpheus::storage {
class SnapshotCodec;
class StorageManager;
}

namespace orpheus::core {

class OrpheusDB {
 public:
  OrpheusDB();
  ~OrpheusDB();  // out of line: StorageManager is incomplete here

  rel::Database* db() { return &db_; }

  // --- Access controller ------------------------------------------------
  Status CreateUser(const std::string& name);
  Status Login(const std::string& name);  // the paper's `config`
  const std::string& WhoAmI() const { return current_user_; }

  // --- CVD lifecycle -----------------------------------------------------
  // `init`: registers a dataset as a new CVD and creates version 1.
  Result<Cvd*> InitCvd(const std::string& name, const rel::Chunk& rows,
                       CvdOptions options, const std::string& message);
  Result<Cvd*> GetCvd(const std::string& name);
  std::vector<std::string> ListCvds() const;  // `ls`
  Status DropCvd(const std::string& name);    // `drop`

  // --- Version-control verbs ---------------------------------------------
  // Durable wrappers over Cvd::Checkout / Commit / DiscardStaged: the
  // same semantics, plus a WAL record when storage is open. Prefer
  // these over the Cvd methods anywhere durability matters.
  Status Checkout(const std::string& cvd_name, const std::vector<VersionId>& vids,
                  const std::string& table_name);
  Result<VersionId> Commit(const std::string& cvd_name,
                           const std::string& table_name,
                           const std::string& message);
  Status DiscardStaged(const std::string& cvd_name,
                       const std::string& table_name);

  // --- Versioned SQL (`run`) ---------------------------------------------
  // Translates VERSION/OF/CVD constructs, then executes.
  Result<rel::Chunk> Run(const std::string& sql);

  // The translator's view of which tables back a CVD version; the
  // partition optimizer installs overrides through Cvd.
  Result<std::pair<std::string, std::string>> ResolveTables(
      const std::string& cvd_name, VersionId vid);

  // Per-CVD table resolver overrides (installed by the partition
  // optimizer alongside the checkout override).
  void SetTableResolver(const std::string& cvd_name, TableResolver resolver);
  void ClearTableResolver(const std::string& cvd_name);

  // --- Partition optimizer integration -------------------------------
  // Takes ownership of a built partition store for `cvd_name` and
  // installs the checkout override + query-translator resolver (and
  // logs the repartitioning when durable). Replaces any prior store.
  Status AttachPartitionStore(const std::string& cvd_name,
                              std::unique_ptr<part::PartitionStore> store);
  // nullptr if the CVD has no partition store.
  part::PartitionStore* partition_store(const std::string& cvd_name);
  // Destroys the CVD's store (dropping its partition tables) and
  // removes the overrides. No-op without a store.
  void DetachPartitionStore(const std::string& cvd_name);

  // --- Durable storage ----------------------------------------------------
  // Opens (creating if needed) a durable database directory: restores
  // the latest snapshot, replays the commit WAL tail, and arms
  // auto-logging. Requires a fresh engine (no CVDs, no tables).
  Status Open(const std::string& dir);
  // Writes a fresh snapshot (temp file + atomic rename) and truncates
  // the WAL. Requires Open().
  Status Checkpoint();
  // One-shot snapshot export to `dir` (works without Open; does not
  // arm logging).
  Status SaveSnapshot(const std::string& dir);

  bool durable() const { return storage_ != nullptr; }
  // Empty when not durable.
  std::string storage_dir() const;
  storage::StorageManager* storage() { return storage_.get(); }

 private:
  friend class storage::SnapshotCodec;
  friend class storage::StorageManager;

  rel::Database db_;
  std::map<std::string, std::unique_ptr<Cvd>> cvds_;
  std::map<std::string, TableResolver> resolver_overrides_;
  // One store per optimized CVD; destroyed before db_ (reverse member
  // order) since dropping a store drops its tables.
  std::map<std::string, std::unique_ptr<part::PartitionStore>> partition_stores_;
  std::set<std::string> users_;
  std::string current_user_;
  std::unique_ptr<storage::StorageManager> storage_;
};

}  // namespace orpheus::core

#endif  // ORPHEUS_CORE_ORPHEUS_H_
