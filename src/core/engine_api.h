// EngineApi: the transport-free command surface of OrpheusDB.
//
// This is the layer both front-ends dispatch into — the in-process CLI
// (cli::CommandProcessor wraps one EngineApi + one SessionContext) and
// the socket server (one EngineApi shared by every connection). It
// owns the engine (OrpheusDB), the engine-wide reader/writer lock, and
// the snapshot-pin registry, and it is the ONLY supported way to drive
// the engine from more than one thread.
//
// Concurrency contract (see concurrency.h for the primitives):
//  * Execute() classifies each command as read-only or mutating.
//    Read-only commands (ls, graph, diff, pin, whoami, pins, and
//    SELECT-only run/sql) take the shared side of the engine lock and
//    may overlap across sessions. Mutating commands (init, checkout,
//    commit, discard, drop, optimize, create_user, config, threads,
//    open, checkpoint, save, and any non-SELECT SQL) take the
//    exclusive side; the WAL records they produce while holding it
//    form a correct total order.
//  * Group commit (on by default, --group-commit=off to disable): on a
//    durable engine the exclusive hold covers only the in-memory apply
//    plus the WAL enqueue; Execute then releases the lock and blocks
//    in StorageManager::WaitDurable until a group leader has batched
//    the record — with the records of every other session that reached
//    the write path meanwhile — into one write + one fdatasync. The
//    durability point of a mutating statement is still "Execute
//    returned OK"; what changed is that N concurrent commits cost ~1
//    sync instead of N, because the sync happens outside the lock.
//  * Committed versions are immutable, so a reader that pinned a
//    version keeps observing exactly that version's records while
//    writers commit — `pin <cvd>` records the (version, epoch) pair
//    and guards the CVD against `drop` by other sessions.
//  * Direct OrpheusDB access via orpheus() bypasses the lock and is
//    only safe while no other session is executing (setup, tests,
//    single-threaded tools).
//
// Command syntax matches the former cli::CommandProcessor plus the
// session verbs: `pin <cvd> [-v <vid>]`, `unpin <cvd>`, `pins`, and
// `discard -t <table>`.

#ifndef ORPHEUS_CORE_ENGINE_API_H_
#define ORPHEUS_CORE_ENGINE_API_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/concurrency.h"
#include "core/orpheus.h"

namespace orpheus::core {

class EngineApi {
 public:
  EngineApi() = default;
  EngineApi(const EngineApi&) = delete;
  EngineApi& operator=(const EngineApi&) = delete;

  // Creates a session context with a fresh id. Sessions are cheap;
  // the caller owns the lifetime (the server's SessionManager, or the
  // CommandProcessor for the CLI's single implicit session).
  std::shared_ptr<SessionContext> NewSession();

  // Ends a session: releases its pins and (optionally) discards every
  // staged table it still owns — the server does this on disconnect so
  // abandoned checkouts don't leak. Discards are logged when durable.
  void CloseSession(SessionContext* session, bool discard_staged);

  // Executes one command line on behalf of `session`; returns the text
  // to display. Safe to call concurrently from many threads, one call
  // per session at a time.
  Result<std::string> Execute(SessionContext* session, const std::string& line);

  // The engine. Lock-free access — see the class comment.
  OrpheusDB* orpheus() { return &orpheus_; }

  EngineLock* lock() { return &lock_; }
  SnapshotRegistry* registry() { return &registry_; }

  // Group commit for the durable write path (see the class comment).
  // Default on; the CLI/server --group-commit={on,off} flag sets it at
  // startup. Takes effect at the next mutating statement.
  void set_group_commit(bool on) { group_commit_.store(on); }
  bool group_commit() const { return group_commit_.load(); }

 private:
  // Execute() minus the per-op trace scope: dispatches one already
  // trimmed statement.
  Result<std::string> ExecuteParsed(SessionContext* session,
                                    const std::string& trimmed);

  // Observability verbs (lock-free; the registry and trace log are
  // internally synchronized).
  Result<std::string> Metrics();
  Result<std::string> Stats(SessionContext* session);
  Result<std::string> Traces(const std::vector<std::string>& args);
  Result<std::string> Slowlog(const std::vector<std::string>& args);

  // Runs `sql` and returns its operator profile tree instead of its
  // rows — the `explain analyze` / `profile` verbs. Called with the
  // appropriate engine lock held (the SQL really executes).
  Result<std::string> ProfileSql(const std::string& sql, bool json);

  // Command handlers; called with the appropriate engine lock held.
  Result<std::string> Init(SessionContext* session,
                           const std::vector<std::string>& args);
  Result<std::string> Checkout(SessionContext* session,
                               const std::vector<std::string>& args);
  Result<std::string> Commit(SessionContext* session,
                             const std::vector<std::string>& args);
  Result<std::string> Discard(SessionContext* session,
                              const std::vector<std::string>& args);
  Result<std::string> Drop(SessionContext* session,
                           const std::vector<std::string>& args);
  Result<std::string> DiffCmd(const std::vector<std::string>& args);
  Result<std::string> Optimize(const std::vector<std::string>& args);
  Result<std::string> Pin(SessionContext* session,
                          const std::vector<std::string>& args);

  // Resolves which CVD owns a staged table: the session's own
  // checkouts first, then any CVD's staging area (so a session can
  // adopt tables replayed from the WAL of an earlier process).
  Result<std::string> ResolveStagedCvd(const SessionContext& session,
                                       const std::string& table);

  OrpheusDB orpheus_;
  EngineLock lock_;
  SnapshotRegistry registry_;
  std::atomic<uint64_t> next_session_id_{1};
  std::atomic<bool> group_commit_{true};
};

}  // namespace orpheus::core

#endif  // ORPHEUS_CORE_ENGINE_API_H_
