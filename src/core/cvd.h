// Cvd: a collaborative versioned dataset (§2.1 of the paper).
//
// A CVD corresponds to one relation and implicitly contains many
// versions of it. This class is the middleware's record manager +
// version manager + provenance manager for a single CVD:
//
//  * record manager  — resolves staged rows to immutable records,
//    assigning fresh rids to added/modified rows (the paper's
//    "no cross-version diff" rule: staged rows are compared against
//    the parent versions only, never all ancestors);
//  * version manager — maintains the metadata table, the attribute
//    table (single-pool schema evolution, §3.3), and the in-memory
//    version graph with shared-record edge weights;
//  * provenance manager — tracks which staged tables derive from
//    which versions, so commit can infer parents.
//
// The backing database never learns about any of this; it only sees
// ordinary tables and SQL.

#ifndef ORPHEUS_CORE_CVD_H_
#define ORPHEUS_CORE_CVD_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/data_model.h"
#include "core/version_graph.h"
#include "relstore/database.h"

namespace orpheus::storage {
class SnapshotCodec;
}

namespace orpheus::core {

struct CvdOptions {
  DataModelKind model = DataModelKind::kSplitByRlist;
  // Relation primary key attributes; may be empty. Enforced per
  // version (not across versions), and used for precedence-order
  // conflict resolution during multi-version checkout.
  std::vector<std::string> primary_key;
};

// One attribute-table entry (Figure 5 of the paper). Any change to an
// attribute's properties creates a new entry.
struct AttributeEntry {
  int64_t attr_id;
  std::string name;
  rel::DataType type;
};

// Provenance of an uncommitted staged table.
struct StagedTableInfo {
  std::string table_name;
  std::vector<VersionId> parents;  // precedence order
  int64_t checkout_time = 0;
};

class Cvd {
 public:
  // Creates a new, empty CVD with the given data-attribute schema.
  static Result<std::unique_ptr<Cvd>> Create(rel::Database* db,
                                             const std::string& name,
                                             rel::Schema data_schema,
                                             CvdOptions options);

  // --- Version-control verbs ----------------------------------------

  // Creates the initial version from raw data rows (schema must match
  // the data attributes; no rid column). Returns the new vid.
  Result<VersionId> InitVersion(const rel::Chunk& rows, const std::string& message);

  // Materializes one or more versions into `table_name`. With several
  // vids this is a merging checkout: records are added in precedence
  // order and a record is skipped if its primary key was already
  // emitted (§2.2).
  Status Checkout(const std::vector<VersionId>& vids, const std::string& table_name);

  // Commits a staged table as a new version; parents come from the
  // table's checkout provenance. Returns the new vid.
  Result<VersionId> Commit(const std::string& table_name, const std::string& message);

  // Records in `a` but not in `b`.
  Result<rel::Chunk> Diff(VersionId a, VersionId b);

  // Discards a staged table without committing.
  Status DiscardStaged(const std::string& table_name);

  // --- Introspection --------------------------------------------------

  const std::string& name() const { return name_; }
  const VersionGraph& graph() const { return graph_; }
  DataModel* model() { return model_.get(); }
  const std::vector<std::string>& primary_key() const { return primary_key_; }
  const std::vector<AttributeEntry>& attributes() const { return attributes_; }

  // Attribute ids carried by one version (metadata table content).
  Result<std::vector<int64_t>> VersionAttributes(VersionId vid) const;

  VersionId latest_version() const { return next_vid_ - 1; }
  int64_t total_records() const { return next_rid_; }
  int64_t StorageBytes() const { return model_->StorageBytes(); }

  const std::map<std::string, StagedTableInfo>& staged_tables() const {
    return staged_;
  }

  // Name of this CVD's metadata table in the backing database.
  std::string MetadataTableName() const { return name_ + "_meta"; }
  std::string AttributeTableName() const { return name_ + "_attr"; }

  // --- Partition integration ------------------------------------------
  // When the partition optimizer has reorganized this CVD, it installs
  // a checkout override that routes single-version checkouts to the
  // right partition's tables.
  using CheckoutOverride =
      std::function<Status(VersionId, const std::string& table_name)>;
  void SetCheckoutOverride(CheckoutOverride fn) { checkout_override_ = std::move(fn); }
  void ClearCheckoutOverride() { checkout_override_ = nullptr; }

 private:
  // The snapshot codec reconstructs a Cvd around already-restored
  // backing tables, bypassing Create's table DDL.
  friend class storage::SnapshotCodec;

  Cvd(rel::Database* db, std::string name, rel::Schema data_schema,
      CvdOptions options);

  // Materializes a single version into `table_name`, honoring any
  // partition override and the version's attribute set.
  Status CheckoutSingle(VersionId vid, const std::string& table_name);

  // Applies schema differences between a staged table and the CVD
  // (new / widened attributes), returning this version's attribute ids.
  Result<std::vector<int64_t>> ReconcileSchema(const rel::Schema& staged_schema);

  // Registers an attribute entry and returns its id.
  int64_t AddAttributeEntry(const std::string& name, rel::DataType type);

  Status AppendMetadataRow(VersionId vid, const std::vector<VersionId>& parents,
                           int64_t checkout_time, int64_t commit_time,
                           const std::string& message,
                           const std::vector<int64_t>& attr_ids);

  rel::Database* db_;
  std::string name_;
  std::vector<std::string> primary_key_;
  std::unique_ptr<DataModel> model_;
  VersionGraph graph_;

  std::vector<AttributeEntry> attributes_;
  // name -> current attribute id (the live entry for that name).
  std::map<std::string, int64_t> live_attrs_;
  std::map<VersionId, std::vector<int64_t>> version_attrs_;

  std::map<std::string, StagedTableInfo> staged_;

  RecordId next_rid_ = 0;
  VersionId next_vid_ = 1;
  int64_t logical_clock_ = 0;

  CheckoutOverride checkout_override_;
};

}  // namespace orpheus::core

#endif  // ORPHEUS_CORE_CVD_H_
