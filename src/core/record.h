// Record identity helpers. Records in a CVD are immutable: any change
// to a record's attributes yields a new record (new rid). The record
// manager detects reuse by hashing a row's data-attribute values.

#ifndef ORPHEUS_CORE_RECORD_H_
#define ORPHEUS_CORE_RECORD_H_

#include <cstdint>
#include <vector>

#include "relstore/chunk.h"

namespace orpheus::core {

using RecordId = int64_t;

// FNV-1a over the typed bytes of row `row` restricted to `cols`.
// Consistent with Value::Equals for the scalar types that appear as
// data attributes (NULLs hash as a distinct tag).
uint64_t HashRecord(const rel::Chunk& chunk, size_t row,
                    const std::vector<int>& cols);

// True if the two rows agree on all listed columns (paired by index:
// cols_a[i] compares against cols_b[i]).
bool RecordsEqual(const rel::Chunk& a, size_t row_a, const std::vector<int>& cols_a,
                  const rel::Chunk& b, size_t row_b, const std::vector<int>& cols_b);

}  // namespace orpheus::core

#endif  // ORPHEUS_CORE_RECORD_H_
