// The five CVD representations of §3 of the paper, behind one
// interface. Each model owns its backing tables inside the (version-
// unaware) relstore database and implements version addition and
// checkout by issuing the SQL of the paper's Table 1.
//
//  - kTablePerVersion : one table per version (storage baseline)
//  - kCombinedTable   : single table with a `vlist INT[]` per record
//  - kSplitByVlist    : data table + versioning table keyed by rid
//  - kSplitByRlist    : data table + versioning table keyed by vid
//                       (the model OrpheusDB adopts)
//  - kDeltaBased      : per-version delta tables with tombstones
//
// Division of labour: the CVD layer (cvd.h) is the record manager — it
// resolves which staged rows are new records and assigns rids. Models
// only persist and retrieve.
//
// Execution: every checkout/commit here bottoms out in relstore SQL,
// so the scans (vlist containment, unnest joins, rid probes) run on
// the executor's batched parallel pipeline and scale with --threads
// (see relstore/executor.h). Models never spawn threads themselves.

#ifndef ORPHEUS_CORE_DATA_MODEL_H_
#define ORPHEUS_CORE_DATA_MODEL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/record.h"
#include "core/version_graph.h"
#include "relstore/database.h"

namespace orpheus::core {

enum class DataModelKind {
  kTablePerVersion,
  kCombinedTable,
  kSplitByVlist,
  kSplitByRlist,
  kDeltaBased,
};

const char* DataModelKindName(DataModelKind kind);
Result<DataModelKind> DataModelKindFromName(const std::string& name);

class DataModel {
 public:
  // `data_schema` holds the data attributes only; models prepend rid.
  DataModel(rel::Database* db, std::string cvd_name, rel::Schema data_schema);
  virtual ~DataModel() = default;

  DataModel(const DataModel&) = delete;
  DataModel& operator=(const DataModel&) = delete;

  virtual DataModelKind kind() const = 0;

  // Creates the backing tables. Called once per CVD.
  virtual Status Init() = 0;

  // Registers version `vid` whose full record set is `rids`.
  // `staged_table` is the materialized table being committed; its rid
  // column has already been resolved by the record manager and matches
  // `rids` row-for-row. `new_records` contains exactly the records not
  // previously in the CVD (schema: rid + data attributes).
  // `primary_parent` is the parent sharing the most records (-1 for
  // the initial version); only the delta model depends on it.
  virtual Status AddVersion(VersionId vid, const std::string& staged_table,
                            const std::vector<RecordId>& rids,
                            const rel::Chunk& new_records,
                            VersionId primary_parent) = 0;

  // Materializes version `vid` as `table_name` (schema: rid + data
  // attributes) — the checkout path.
  virtual Status CheckoutVersion(VersionId vid, const std::string& table_name) = 0;

  // The rid set of a version (record-manager bookkeeping).
  virtual Result<std::vector<RecordId>> VersionRecords(VersionId vid) = 0;

  // Convenience: version rows as an in-memory chunk (rid + data).
  Result<rel::Chunk> VersionRows(VersionId vid);

  // Payload + index bytes across this model's backing tables.
  virtual int64_t StorageBytes() const = 0;

  // Rebuilds model-private bookkeeping after a snapshot restore, when
  // the backing tables already exist in the database (so Init must not
  // be called). TPV recovers its version list from the graph; the
  // delta model reloads its base map from <cvd>_deltameta. Default:
  // stateless models need nothing.
  virtual Status RestoreFromTables(const VersionGraph& graph);

  // Schema evolution support (§3.3). Only the split models support it;
  // others return NotSupported.
  virtual Status AddDataColumn(const std::string& name, rel::DataType type);
  virtual Status WidenDataColumn(const std::string& name, rel::DataType type);

  const rel::Schema& data_schema() const { return data_schema_; }
  const std::string& cvd_name() const { return cvd_name_; }

 protected:
  // rid + data attributes.
  rel::Schema RecordSchema() const;
  // Comma-separated "rid, a1, a2, ..." projection list.
  std::string RecordColumnList() const;

  int64_t TableBytes(const std::string& table) const;

  rel::Database* db_;
  std::string cvd_name_;
  rel::Schema data_schema_;
};

// Factory for all five models.
std::unique_ptr<DataModel> MakeDataModel(DataModelKind kind, rel::Database* db,
                                         const std::string& cvd_name,
                                         rel::Schema data_schema);

// --- Concrete models (exposed for white-box tests) -------------------

class TablePerVersionModel : public DataModel {
 public:
  using DataModel::DataModel;
  DataModelKind kind() const override { return DataModelKind::kTablePerVersion; }
  Status Init() override;
  Status AddVersion(VersionId vid, const std::string& staged_table,
                    const std::vector<RecordId>& rids,
                    const rel::Chunk& new_records,
                    VersionId primary_parent) override;
  Status CheckoutVersion(VersionId vid, const std::string& table_name) override;
  Result<std::vector<RecordId>> VersionRecords(VersionId vid) override;
  int64_t StorageBytes() const override;
  Status RestoreFromTables(const VersionGraph& graph) override;

 private:
  std::string VersionTable(VersionId vid) const;
  std::vector<VersionId> versions_;
};

class CombinedTableModel : public DataModel {
 public:
  using DataModel::DataModel;
  DataModelKind kind() const override { return DataModelKind::kCombinedTable; }
  Status Init() override;
  Status AddVersion(VersionId vid, const std::string& staged_table,
                    const std::vector<RecordId>& rids,
                    const rel::Chunk& new_records,
                    VersionId primary_parent) override;
  Status CheckoutVersion(VersionId vid, const std::string& table_name) override;
  Result<std::vector<RecordId>> VersionRecords(VersionId vid) override;
  int64_t StorageBytes() const override;

 private:
  std::string CombinedTable() const { return cvd_name_ + "_combined"; }
};

class SplitByVlistModel : public DataModel {
 public:
  using DataModel::DataModel;
  DataModelKind kind() const override { return DataModelKind::kSplitByVlist; }
  Status Init() override;
  Status AddVersion(VersionId vid, const std::string& staged_table,
                    const std::vector<RecordId>& rids,
                    const rel::Chunk& new_records,
                    VersionId primary_parent) override;
  Status CheckoutVersion(VersionId vid, const std::string& table_name) override;
  Result<std::vector<RecordId>> VersionRecords(VersionId vid) override;
  int64_t StorageBytes() const override;
  Status AddDataColumn(const std::string& name, rel::DataType type) override;
  Status WidenDataColumn(const std::string& name, rel::DataType type) override;

 private:
  std::string DataTable() const { return cvd_name_ + "_data"; }
  std::string VersioningTable() const { return cvd_name_ + "_vlist"; }
};

class SplitByRlistModel : public DataModel {
 public:
  using DataModel::DataModel;
  DataModelKind kind() const override { return DataModelKind::kSplitByRlist; }
  Status Init() override;
  Status AddVersion(VersionId vid, const std::string& staged_table,
                    const std::vector<RecordId>& rids,
                    const rel::Chunk& new_records,
                    VersionId primary_parent) override;
  Status CheckoutVersion(VersionId vid, const std::string& table_name) override;
  Result<std::vector<RecordId>> VersionRecords(VersionId vid) override;
  int64_t StorageBytes() const override;
  Status AddDataColumn(const std::string& name, rel::DataType type) override;
  Status WidenDataColumn(const std::string& name, rel::DataType type) override;

  // Names exposed for the partition optimizer, which re-organizes the
  // backing tables of this model.
  std::string DataTable() const { return cvd_name_ + "_data"; }
  std::string VersioningTable() const { return cvd_name_ + "_rlist"; }
};

class DeltaBasedModel : public DataModel {
 public:
  using DataModel::DataModel;
  DataModelKind kind() const override { return DataModelKind::kDeltaBased; }
  Status Init() override;
  Status AddVersion(VersionId vid, const std::string& staged_table,
                    const std::vector<RecordId>& rids,
                    const rel::Chunk& new_records,
                    VersionId primary_parent) override;
  Status CheckoutVersion(VersionId vid, const std::string& table_name) override;
  Result<std::vector<RecordId>> VersionRecords(VersionId vid) override;
  int64_t StorageBytes() const override;
  Status RestoreFromTables(const VersionGraph& graph) override;

 private:
  std::string DeltaTable(VersionId vid) const;
  // Walks vid -> base -> ... -> root, newest first.
  Result<std::vector<VersionId>> Lineage(VersionId vid) const;
  // Applies the paper's first-seen-wins replay; returns kept row
  // positions per lineage table.
  Status Replay(VersionId vid, rel::Chunk* out);

  // Precedent metadata: vid -> base version (also persisted in the
  // <cvd>_deltameta table for inspection).
  std::map<VersionId, VersionId> base_;
};

}  // namespace orpheus::core

#endif  // ORPHEUS_CORE_DATA_MODEL_H_
