// Concurrency core for serving many sessions over one engine.
//
// Three pieces, all engine-agnostic (EngineApi wires them to
// OrpheusDB):
//
//  * EngineLock — one shared-read / exclusive-write lock over the
//    whole engine (CVD registry + relstore + storage manager), plus a
//    monotonically increasing commit epoch. Read-only statements
//    (SELECTs, ls, graph, diff, pin) run under the shared side and may
//    overlap freely; every mutating verb (init/checkout/commit/
//    discard/drop/optimize/DDL-SQL/checkpoint) takes the exclusive
//    side. With group commit (the default on durable engines) the
//    exclusive hold covers only the in-memory apply plus the WAL
//    *enqueue* — enqueue order under the lock is what fixes the log's
//    total order — while the write + fdatasync happen after release,
//    batched across sessions by a group leader (storage_manager.h).
//    The epoch is bumped once per successful exclusive statement.
//
//  * SnapshotRegistry — which sessions have pinned which CVD at which
//    (version, epoch). Committed versions are immutable, so a reader
//    that pinned version v keeps seeing exactly v's records no matter
//    how many commits land after the pin; the registry is what gives
//    the pin teeth against the one operation that could invalidate it:
//    DropCvd refuses while another session holds a pin.
//
//  * SessionContext — the per-session state that used to live
//    implicitly in the single-session CommandProcessor (current user,
//    csv staging map, staged-table ownership, pins, activity clock),
//    made thread-safe so a session manager and an idle reaper can
//    inspect it while the session's connection thread uses it.
//
// Lock ordering: EngineLock first, then any SessionContext /
// SnapshotRegistry internal mutex. Neither of the latter is ever held
// while acquiring the former.

#ifndef ORPHEUS_CORE_CONCURRENCY_H_
#define ORPHEUS_CORE_CONCURRENCY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/version_graph.h"

namespace orpheus::core {

// The engine-wide reader/writer lock plus the commit epoch. See the
// file comment for the locking discipline.
class EngineLock {
 public:
  std::shared_mutex& mu() { return mu_; }

  // The current commit epoch (starts at 1, bumped after every
  // successful exclusive statement). Readable without any lock.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  // Called by the dispatcher while still holding the exclusive lock.
  void BumpEpoch() { epoch_.fetch_add(1, std::memory_order_acq_rel); }

 private:
  std::shared_mutex mu_;
  std::atomic<uint64_t> epoch_{1};
};

// A session's pin of one CVD: the version it pinned and the engine
// epoch at pin time.
struct SessionPin {
  VersionId vid = 0;
  uint64_t epoch = 0;
};

// Tracks which sessions pinned which CVDs. Thread-safe.
class SnapshotRegistry {
 public:
  // Registers (or re-registers) `session`'s pin of `cvd`.
  void Pin(uint64_t session, const std::string& cvd, SessionPin pin);

  // Removes one pin; false if the session had none on this CVD.
  bool Unpin(uint64_t session, const std::string& cvd);

  // Drops every pin held by `session` (session close). Returns how
  // many were released.
  int UnpinAll(uint64_t session);

  // Drops every pin on `cvd` (after the CVD itself is dropped).
  void ForgetCvd(const std::string& cvd);

  // Number of sessions currently pinning `cvd`.
  int PinCount(const std::string& cvd) const;

  // Number of sessions other than `session` pinning `cvd` — the
  // DropCvd guard.
  int PinsByOthers(const std::string& cvd, uint64_t session) const;

 private:
  mutable std::mutex mu_;
  // cvd -> (session id -> pin)
  std::map<std::string, std::map<uint64_t, SessionPin>> pins_;
};

// Per-session state. All accessors are thread-safe; the connection
// thread and the session manager / reaper may use one concurrently.
class SessionContext {
 public:
  explicit SessionContext(uint64_t id) : id_(id) { Touch(); }

  uint64_t id() const { return id_; }

  std::string user() const;
  void set_user(std::string user);

  bool exited() const { return exited_.load(std::memory_order_acquire); }
  void set_exited() { exited_.store(true, std::memory_order_release); }

  // --- Staged-table ownership (checkout provenance) ----------------
  // table name -> owning CVD. Commit/discard consult this first so a
  // session operates on its own checkouts by default.
  void AddStagedTable(const std::string& table, const std::string& cvd);
  void RemoveStagedTable(const std::string& table);
  // Empty string if this session did not check the table out.
  std::string StagedCvd(const std::string& table) const;
  // Copy of table -> cvd, for session teardown.
  std::map<std::string, std::string> StagedTables() const;

  // --- CSV staging (checkout -f / commit -f flows) -----------------
  void AddCsvStaging(const std::string& file, const std::string& cvd,
                     const std::string& table);
  // Returns {cvd, table}; empty pair if unknown. The entry stays until
  // RemoveCsvStaging (commit only clears it once the csv was
  // re-parsed and schema-checked, so an invalid edit can be retried).
  std::pair<std::string, std::string> GetCsvStaging(const std::string& file) const;
  void RemoveCsvStaging(const std::string& file);

  // Monotonic counter for generated staging-table names.
  int NextStagingId() { return staging_counter_.fetch_add(1); }

  // --- Op counter (per-session observability) ----------------------
  // Statements this session has executed; shown by the `stats` verb
  // and logged by the server on disconnect.
  void NoteOp() { ops_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t ops_executed() const {
    return ops_.load(std::memory_order_relaxed);
  }

  // --- Pins (session-side mirror of the SnapshotRegistry) ----------
  void RecordPin(const std::string& cvd, SessionPin pin);
  void RemovePin(const std::string& cvd);
  std::map<std::string, SessionPin> Pins() const;

  // --- Durability bookmark (group-commit bookkeeping) --------------
  // Highest WAL LSN this session has waited durable. Monotonic per
  // session (the group-commit stress test's per-session oracle), and
  // the natural replication bookmark once WAL shipping lands.
  void NoteDurableLsn(uint64_t lsn);
  uint64_t last_durable_lsn() const {
    return last_durable_lsn_.load(std::memory_order_acquire);
  }

  // --- Activity clock (idle-timeout bookkeeping) -------------------
  void Touch();
  // Seconds since the last Touch().
  double IdleSeconds() const;

 private:
  const uint64_t id_;
  std::atomic<bool> exited_{false};
  std::atomic<int> staging_counter_{0};
  std::atomic<uint64_t> ops_{0};
  std::atomic<int64_t> last_active_ms_{0};
  std::atomic<uint64_t> last_durable_lsn_{0};

  mutable std::mutex mu_;
  std::string user_ = "default";
  std::map<std::string, std::string> staged_;  // table -> cvd
  std::map<std::string, std::pair<std::string, std::string>> csv_staging_;
  std::map<std::string, SessionPin> pins_;
};

}  // namespace orpheus::core

#endif  // ORPHEUS_CORE_CONCURRENCY_H_
