#include "core/orpheus.h"

#include "core/data_model.h"
#include "storage/io_util.h"
#include "storage/storage_manager.h"

namespace orpheus::core {

OrpheusDB::OrpheusDB() {
  users_.insert("default");
  current_user_ = "default";
}

OrpheusDB::~OrpheusDB() = default;

Status OrpheusDB::CreateUser(const std::string& name) {
  if (!users_.insert(name).second) {
    return Status::AlreadyExists("user already exists: " + name);
  }
  if (storage_ != nullptr) {
    ORPHEUS_RETURN_NOT_OK(storage_->LogCreateUser(name));
  }
  return Status::OK();
}

Status OrpheusDB::Login(const std::string& name) {
  if (users_.count(name) == 0) {
    return Status::NotFound("no such user: " + name);
  }
  current_user_ = name;
  if (storage_ != nullptr) {
    ORPHEUS_RETURN_NOT_OK(storage_->LogLogin(name));
  }
  return Status::OK();
}

Result<Cvd*> OrpheusDB::InitCvd(const std::string& name, const rel::Chunk& rows,
                                CvdOptions options, const std::string& message) {
  if (cvds_.count(name) > 0) {
    return Status::AlreadyExists("CVD already exists: " + name);
  }
  ORPHEUS_ASSIGN_OR_RETURN(auto cvd,
                           Cvd::Create(&db_, name, rows.schema(), options));
  ORPHEUS_ASSIGN_OR_RETURN(VersionId v1, cvd->InitVersion(rows, message));
  (void)v1;
  Cvd* raw = cvd.get();
  cvds_[name] = std::move(cvd);
  if (storage_ != nullptr) {
    ORPHEUS_RETURN_NOT_OK(storage_->LogInitCvd(name, options, message, rows));
  }
  return raw;
}

Result<Cvd*> OrpheusDB::GetCvd(const std::string& name) {
  auto it = cvds_.find(name);
  if (it == cvds_.end()) return Status::NotFound("no such CVD: " + name);
  return it->second.get();
}

std::vector<std::string> OrpheusDB::ListCvds() const {
  std::vector<std::string> names;
  names.reserve(cvds_.size());
  for (const auto& [name, cvd] : cvds_) names.push_back(name);
  return names;
}

Status OrpheusDB::DropCvd(const std::string& name) {
  auto it = cvds_.find(name);
  if (it == cvds_.end()) return Status::NotFound("no such CVD: " + name);
  // Partition tables go with their store; then everything else with
  // this CVD's prefix.
  DetachPartitionStore(name);
  for (const std::string& table : db_.ListTables()) {
    if (table.rfind(name + "_", 0) == 0) {
      ORPHEUS_RETURN_NOT_OK(db_.DropTable(table));
    }
  }
  resolver_overrides_.erase(name);
  cvds_.erase(it);
  if (storage_ != nullptr) {
    ORPHEUS_RETURN_NOT_OK(storage_->LogDropCvd(name));
  }
  return Status::OK();
}

Status OrpheusDB::Checkout(const std::string& cvd_name,
                           const std::vector<VersionId>& vids,
                           const std::string& table_name) {
  ORPHEUS_ASSIGN_OR_RETURN(Cvd * cvd, GetCvd(cvd_name));
  ORPHEUS_RETURN_NOT_OK(cvd->Checkout(vids, table_name));
  if (storage_ != nullptr) {
    ORPHEUS_RETURN_NOT_OK(storage_->LogCheckout(cvd_name, vids, table_name));
  }
  return Status::OK();
}

Result<VersionId> OrpheusDB::Commit(const std::string& cvd_name,
                                    const std::string& table_name,
                                    const std::string& message) {
  ORPHEUS_ASSIGN_OR_RETURN(Cvd * cvd, GetCvd(cvd_name));
  // Encode the WAL record before committing: Commit resolves rids in
  // place and then drops the table, and replay needs the rows as the
  // user committed them (they may differ from the checkout).
  std::string commit_body;
  if (storage_ != nullptr) {
    ORPHEUS_ASSIGN_OR_RETURN(rel::Table * staged, db_.GetTable(table_name));
    commit_body = storage::StorageManager::EncodeCommitBody(
        cvd_name, table_name, message, staged->data());
  }
  ORPHEUS_ASSIGN_OR_RETURN(VersionId vid, cvd->Commit(table_name, message));
  if (storage_ != nullptr) {
    ORPHEUS_RETURN_NOT_OK(storage_->AppendCommitBody(commit_body));
  }
  return vid;
}

Status OrpheusDB::DiscardStaged(const std::string& cvd_name,
                                const std::string& table_name) {
  ORPHEUS_ASSIGN_OR_RETURN(Cvd * cvd, GetCvd(cvd_name));
  ORPHEUS_RETURN_NOT_OK(cvd->DiscardStaged(table_name));
  if (storage_ != nullptr) {
    ORPHEUS_RETURN_NOT_OK(storage_->LogDiscardStaged(cvd_name, table_name));
  }
  return Status::OK();
}

Result<std::pair<std::string, std::string>> OrpheusDB::ResolveTables(
    const std::string& cvd_name, VersionId vid) {
  auto override_it = resolver_overrides_.find(cvd_name);
  if (override_it != resolver_overrides_.end()) {
    return override_it->second(cvd_name, vid);
  }
  ORPHEUS_ASSIGN_OR_RETURN(Cvd * cvd, GetCvd(cvd_name));
  auto* rlist = dynamic_cast<SplitByRlistModel*>(cvd->model());
  if (rlist == nullptr) {
    return Status::NotSupported(
        "versioned SQL requires the split-by-rlist data model (CVD " +
        cvd_name + " uses " + DataModelKindName(cvd->model()->kind()) + ")");
  }
  return std::make_pair(rlist->DataTable(), rlist->VersioningTable());
}

void OrpheusDB::SetTableResolver(const std::string& cvd_name,
                                 TableResolver resolver) {
  resolver_overrides_[cvd_name] = std::move(resolver);
}

void OrpheusDB::ClearTableResolver(const std::string& cvd_name) {
  resolver_overrides_.erase(cvd_name);
}

Status OrpheusDB::AttachPartitionStore(
    const std::string& cvd_name, std::unique_ptr<part::PartitionStore> store) {
  ORPHEUS_ASSIGN_OR_RETURN(Cvd * cvd, GetCvd(cvd_name));
  auto* model = dynamic_cast<SplitByRlistModel*>(cvd->model());
  if (model == nullptr) {
    return Status::NotSupported(
        "partition stores require the split-by-rlist data model");
  }
  part::PartitionStore* raw = store.get();
  cvd->SetCheckoutOverride(
      [raw](VersionId vid, const std::string& table) {
        return raw->CheckoutVersion(vid, table);
      });
  SetTableResolver(
      cvd_name, [raw, model](const std::string&, VersionId vid)
                    -> Result<std::pair<std::string, std::string>> {
        if (vid < 0) {
          // Whole-CVD queries still use the unpartitioned tables.
          return std::make_pair(model->DataTable(), model->VersioningTable());
        }
        return raw->TablesFor(vid);
      });
  partition_stores_[cvd_name] = std::move(store);
  if (storage_ != nullptr) {
    ORPHEUS_RETURN_NOT_OK(
        storage_->LogRepartition(cvd_name, raw->VersionGroups()));
  }
  return Status::OK();
}

part::PartitionStore* OrpheusDB::partition_store(const std::string& cvd_name) {
  auto it = partition_stores_.find(cvd_name);
  return it == partition_stores_.end() ? nullptr : it->second.get();
}

void OrpheusDB::DetachPartitionStore(const std::string& cvd_name) {
  auto it = partition_stores_.find(cvd_name);
  if (it == partition_stores_.end()) return;
  auto cvd = GetCvd(cvd_name);
  if (cvd.ok()) cvd.value()->ClearCheckoutOverride();
  ClearTableResolver(cvd_name);
  partition_stores_.erase(it);  // the store drops its tables
}

Result<rel::Chunk> OrpheusDB::Run(const std::string& sql) {
  TableResolver resolver = [this](const std::string& cvd_name, VersionId vid) {
    return ResolveTables(cvd_name, vid);
  };
  ORPHEUS_ASSIGN_OR_RETURN(std::string translated,
                           TranslateVersionedSql(sql, resolver));
  return db_.Execute(translated);
}

Status OrpheusDB::Open(const std::string& dir) {
  if (storage_ != nullptr) {
    return Status::InvalidArgument("durable storage already open at " +
                                   storage_->dir());
  }
  // Pre-existing state would never reach the log (only verbs issued
  // while durable are appended), so anything beyond the construction
  // defaults — including extra users — must be rejected, or later
  // logged verbs could reference state that replay cannot rebuild.
  if (!cvds_.empty() || !db_.ListTables().empty() ||
      users_ != std::set<std::string>{"default"} ||
      current_user_ != "default") {
    return Status::InvalidArgument(
        "Open requires a fresh engine (CVDs, tables, or users already exist)");
  }
  ORPHEUS_ASSIGN_OR_RETURN(storage_, storage::StorageManager::Open(dir, this));
  return Status::OK();
}

Status OrpheusDB::Checkpoint() {
  if (storage_ == nullptr) {
    return Status::InvalidArgument("no durable storage open (use Open first)");
  }
  return storage_->Checkpoint();
}

Status OrpheusDB::SaveSnapshot(const std::string& dir) {
  if (storage_ != nullptr) {
    // Compare directory identities, not spellings: a watermark-0
    // snapshot dropped into the live directory would make the next
    // open replay the whole WAL on top of it. The open dir always
    // resolves; if the target does not yet exist it cannot be it.
    auto open_dir = storage::CanonicalPath(storage_->dir());
    auto target = storage::CanonicalPath(dir);
    if (open_dir.ok() && target.ok() && open_dir.value() == target.value()) {
      return Status::InvalidArgument(
          "target is the open durable directory; use Checkpoint() instead");
    }
  }
  return storage::StorageManager::SaveSnapshotTo(this, dir);
}

std::string OrpheusDB::storage_dir() const {
  return storage_ == nullptr ? std::string() : storage_->dir();
}

}  // namespace orpheus::core
