#include "core/orpheus.h"

#include "core/data_model.h"

namespace orpheus::core {

OrpheusDB::OrpheusDB() {
  users_.insert("default");
  current_user_ = "default";
}

Status OrpheusDB::CreateUser(const std::string& name) {
  if (!users_.insert(name).second) {
    return Status::AlreadyExists("user already exists: " + name);
  }
  return Status::OK();
}

Status OrpheusDB::Login(const std::string& name) {
  if (users_.count(name) == 0) {
    return Status::NotFound("no such user: " + name);
  }
  current_user_ = name;
  return Status::OK();
}

Result<Cvd*> OrpheusDB::InitCvd(const std::string& name, const rel::Chunk& rows,
                                CvdOptions options, const std::string& message) {
  if (cvds_.count(name) > 0) {
    return Status::AlreadyExists("CVD already exists: " + name);
  }
  ORPHEUS_ASSIGN_OR_RETURN(auto cvd,
                           Cvd::Create(&db_, name, rows.schema(), options));
  ORPHEUS_ASSIGN_OR_RETURN(VersionId v1, cvd->InitVersion(rows, message));
  (void)v1;
  Cvd* raw = cvd.get();
  cvds_[name] = std::move(cvd);
  return raw;
}

Result<Cvd*> OrpheusDB::GetCvd(const std::string& name) {
  auto it = cvds_.find(name);
  if (it == cvds_.end()) return Status::NotFound("no such CVD: " + name);
  return it->second.get();
}

std::vector<std::string> OrpheusDB::ListCvds() const {
  std::vector<std::string> names;
  names.reserve(cvds_.size());
  for (const auto& [name, cvd] : cvds_) names.push_back(name);
  return names;
}

Status OrpheusDB::DropCvd(const std::string& name) {
  auto it = cvds_.find(name);
  if (it == cvds_.end()) return Status::NotFound("no such CVD: " + name);
  // Drop all backing tables with this CVD's prefix.
  for (const std::string& table : db_.ListTables()) {
    if (table.rfind(name + "_", 0) == 0) {
      ORPHEUS_RETURN_NOT_OK(db_.DropTable(table));
    }
  }
  resolver_overrides_.erase(name);
  cvds_.erase(it);
  return Status::OK();
}

Result<std::pair<std::string, std::string>> OrpheusDB::ResolveTables(
    const std::string& cvd_name, VersionId vid) {
  auto override_it = resolver_overrides_.find(cvd_name);
  if (override_it != resolver_overrides_.end()) {
    return override_it->second(cvd_name, vid);
  }
  ORPHEUS_ASSIGN_OR_RETURN(Cvd * cvd, GetCvd(cvd_name));
  auto* rlist = dynamic_cast<SplitByRlistModel*>(cvd->model());
  if (rlist == nullptr) {
    return Status::NotSupported(
        "versioned SQL requires the split-by-rlist data model (CVD " +
        cvd_name + " uses " + DataModelKindName(cvd->model()->kind()) + ")");
  }
  return std::make_pair(rlist->DataTable(), rlist->VersioningTable());
}

void OrpheusDB::SetTableResolver(const std::string& cvd_name,
                                 TableResolver resolver) {
  resolver_overrides_[cvd_name] = std::move(resolver);
}

void OrpheusDB::ClearTableResolver(const std::string& cvd_name) {
  resolver_overrides_.erase(cvd_name);
}

Result<rel::Chunk> OrpheusDB::Run(const std::string& sql) {
  TableResolver resolver = [this](const std::string& cvd_name, VersionId vid) {
    return ResolveTables(cvd_name, vid);
  };
  ORPHEUS_ASSIGN_OR_RETURN(std::string translated,
                           TranslateVersionedSql(sql, resolver));
  return db_.Execute(translated);
}

}  // namespace orpheus::core
