// Query translator (§2.2/§2.3): rewrites versioned SQL into plain SQL
// the backing database understands.
//
// Supported constructs:
//   SELECT ... FROM VERSION <vid> OF CVD <name> [AS alias], ...
//   SELECT ... FROM CVD <name> [AS alias], ...
//
// `VERSION v OF CVD c` becomes a derived table producing that
// version's records; `CVD c` becomes a derived table of all records of
// all versions with an extra `vid` column, enabling aggregates grouped
// by version and version-selection predicates (e.g. HAVING count(*) >
// 50 GROUP BY vid).
//
// Translation is purely textual (token splicing), mirroring how the
// paper's middleware rewrites the user's statement before handing it
// to PostgreSQL.

#ifndef ORPHEUS_CORE_QUERY_TRANSLATOR_H_
#define ORPHEUS_CORE_QUERY_TRANSLATOR_H_

#include <functional>
#include <string>

#include "common/status.h"
#include "core/version_graph.h"

namespace orpheus::core {

// Resolves the physical tables backing a CVD for one version (or for
// all versions when vid < 0). Returns {data_table, versioning_table}.
// The partition optimizer installs a resolver that routes a version to
// its partition's tables.
using TableResolver = std::function<Result<std::pair<std::string, std::string>>(
    const std::string& cvd_name, VersionId vid)>;

// Rewrites `sql`, expanding the versioned constructs. Returns the SQL
// to execute against the backing database.
Result<std::string> TranslateVersionedSql(const std::string& sql,
                                          const TableResolver& resolver);

}  // namespace orpheus::core

#endif  // ORPHEUS_CORE_QUERY_TRANSLATOR_H_
