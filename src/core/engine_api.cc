#include "core/engine_api.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>

#include "common/csv.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/data_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "partition/lyresplit.h"
#include "storage/storage_manager.h"

namespace orpheus::core {

namespace {

constexpr char kHelp[] =
    "OrpheusDB commands:\n"
    "  init <cvd> -f <file.csv> [-pk a,b] [-model rlist|vlist|combined|delta|tpv]\n"
    "  checkout <cvd> -v <vid>[,<vid>...] (-t <table> | -f <file.csv>)\n"
    "  commit (-t <table> | -f <file.csv>) -m <message>\n"
    "  discard -t <table>         drop a staged table without committing\n"
    "  diff <cvd> <v1> <v2>\n"
    "  run <sql>                 versioned SQL (VERSION n OF CVD c)\n"
    "  sql <sql>                 raw SQL against the backing database\n"
    "  ls                        list CVDs\n"
    "  graph <cvd>               version graph as Graphviz dot\n"
    "  drop <cvd>\n"
    "  optimize <cvd> [-gamma <factor>]   partition with LYRESPLIT\n"
    "  pin <cvd> [-v <vid>]      pin a version snapshot for this session\n"
    "  unpin <cvd> | pins        release / list this session's pins\n"
    "  open <dir>                open/create a durable database directory\n"
    "  checkpoint                fold the WAL into segment files (incremental)\n"
    "  save <dir>                one-shot snapshot export (no WAL)\n"
    "  threads [<n>]             show or set scan parallelism (0 = hardware)\n"
    "  metrics                   Prometheus text exposition of all metrics\n"
    "  stats                     human-readable metrics + recent/slow ops\n"
    "  explain analyze <sql>     run the SQL, return its operator profile\n"
    "  profile [-json] <sql>     same as explain analyze (JSON with -json)\n"
    "  traces [recent|slow] [<n>]  recent-op ring / slow-op log as JSON lines\n"
    "  slowlog [<ms>]            show or set the slow-op threshold\n"
    "  create_user <name> | config <name> | whoami\n"
    "  help | exit\n";

// Extracts "-flag value" from an argument vector; empty if absent.
std::string FlagValue(const std::vector<std::string>& args,
                      const std::string& flag) {
  for (size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == flag) return args[i + 1];
  }
  return "";
}

Result<std::vector<VersionId>> ParseVidList(const std::string& text) {
  std::vector<VersionId> vids;
  for (const std::string& piece : Split(text, ',')) {
    if (Trim(piece).empty()) continue;
    vids.push_back(std::strtoll(std::string(Trim(piece)).c_str(), nullptr, 10));
  }
  if (vids.empty()) return Status::InvalidArgument("no version ids given");
  return vids;
}

bool TokenEqualsIgnoreCase(std::string_view token, std::string_view word) {
  if (token.size() != word.size()) return false;
  for (size_t i = 0; i < token.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(token[i])) !=
        std::toupper(static_cast<unsigned char>(word[i]))) {
      return false;
    }
  }
  return true;
}

// A statement may run under the shared lock iff it can only read:
// SELECT without INTO (INTO materializes a new catalog table). Every
// other form — DML, DDL, or anything unparsed — is treated as a write.
bool IsReadOnlySql(const std::string& sql) {
  std::vector<std::string> tokens = SplitWhitespace(sql);
  if (tokens.empty() || !TokenEqualsIgnoreCase(tokens[0], "SELECT")) {
    return false;
  }
  for (const std::string& token : tokens) {
    if (TokenEqualsIgnoreCase(token, "INTO")) return false;
  }
  return true;
}

// Label value for the per-verb metric families. Only known verbs get
// their own label so a typo-spamming client can't blow up the label
// cardinality (or inject quotes into the exposition).
std::string VerbLabel(const std::string& trimmed) {
  static const char* kVerbs[] = {
      "init",    "checkout", "commit",     "discard", "diff",   "run",
      "sql",     "ls",       "graph",      "drop",    "optimize", "pin",
      "unpin",   "pins",     "open",       "checkpoint", "save", "threads",
      "metrics", "stats",    "create_user", "config", "whoami", "help",
      "exit",    "quit",     "script",     "explain", "profile", "traces",
      "slowlog"};
  size_t end = trimmed.find_first_of(" \t");
  std::string verb = trimmed.substr(0, end);
  for (const char* known : kVerbs) {
    if (verb == known) return verb;
  }
  return "unknown";
}

obs::Histogram* LockWaitHist(bool exclusive) {
  static obs::Histogram* sh = obs::GlobalMetrics().GetHistogram(
      "orpheus_lock_wait_seconds",
      "Time spent waiting for the engine-wide lock, by mode.",
      obs::LatencyBuckets(), {{"mode", "shared"}});
  static obs::Histogram* ex = obs::GlobalMetrics().GetHistogram(
      "orpheus_lock_wait_seconds",
      "Time spent waiting for the engine-wide lock, by mode.",
      obs::LatencyBuckets(), {{"mode", "exclusive"}});
  return exclusive ? ex : sh;
}

}  // namespace

Result<std::string> EngineApi::Metrics() {
  // Gauges sampled at scrape time; also registers the family so the
  // very first scrape of a quiet engine is never empty.
  obs::GlobalMetrics()
      .GetGauge("orpheus_commit_epoch",
                "Engine commit epoch (bumped per successful mutation).")
      ->Set(static_cast<int64_t>(lock_.epoch()));
  return obs::GlobalMetrics().RenderPrometheus();
}

Result<std::string> EngineApi::Traces(const std::vector<std::string>& args) {
  obs::TraceLog& log = obs::GlobalTraceLog();
  bool want_recent = true;
  bool want_slow = true;
  size_t limit = 50;
  for (size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "recent") {
      want_slow = false;
    } else if (args[i] == "slow") {
      want_recent = false;
    } else {
      char* end = nullptr;
      long n = std::strtol(args[i].c_str(), &end, 10);
      if (end == args[i].c_str() || *end != '\0' || n < 0) {
        return Status::InvalidArgument("traces [recent|slow] [<n>]");
      }
      limit = static_cast<size_t>(n);
    }
  }
  std::vector<obs::OpTrace> recent = log.Recent();
  std::vector<obs::OpTrace> slow = log.SlowOps();
  // One JSON object per line: a meta header, then the requested
  // entries (oldest first, capped at `limit` newest per kind). Slow
  // entries carry their operator profile tree; the recent ring stays
  // compact.
  std::string out =
      StrFormat("{\"meta\":true,\"slow_op_threshold_ms\":%g,"
                "\"total_recorded\":%llu,\"recent\":%llu,\"slow\":%llu}\n",
                log.SlowOpThresholdMs(),
                static_cast<unsigned long long>(log.TotalRecorded()),
                static_cast<unsigned long long>(recent.size()),
                static_cast<unsigned long long>(slow.size()));
  auto render = [&](const std::vector<obs::OpTrace>& ops, const char* kind,
                    bool with_profile) {
    size_t start = ops.size() > limit ? ops.size() - limit : 0;
    for (size_t i = start; i < ops.size(); ++i) {
      out += std::string("{\"kind\":\"") + kind + "\"," +
             obs::OpTraceJson(ops[i], with_profile).substr(1) + "\n";
    }
  };
  if (want_recent) render(recent, "recent", /*with_profile=*/false);
  if (want_slow) render(slow, "slow", /*with_profile=*/true);
  return out;
}

Result<std::string> EngineApi::Slowlog(const std::vector<std::string>& args) {
  obs::TraceLog& log = obs::GlobalTraceLog();
  if (args.size() >= 2) {
    char* end = nullptr;
    double ms = std::strtod(args[1].c_str(), &end);
    if (end == args[1].c_str() || *end != '\0' || ms < 0) {
      return Status::InvalidArgument("slowlog [<ms>] with ms >= 0");
    }
    log.SetSlowOpThresholdMs(ms);
    return StrFormat("slow-op threshold set to %g ms", ms);
  }
  return StrFormat("slow-op threshold: %g ms (%llu slow ops kept)",
                   log.SlowOpThresholdMs(),
                   static_cast<unsigned long long>(log.SlowOps().size()));
}

Result<std::string> EngineApi::ProfileSql(const std::string& sql, bool json) {
  WallTimer timer;
  ORPHEUS_ASSIGN_OR_RETURN(rel::Chunk out, orpheus_.Run(sql));
  const double total_s = timer.ElapsedSeconds();
  // The statement's ActiveOpScope installed a collector on this
  // thread; every operator the SQL ran has closed its scope by now, so
  // the snapshot shares those finished subtrees.
  std::shared_ptr<const obs::ProfileNode> plan = obs::SnapshotActiveProfile();
  if (json) {
    std::string s = "{\"sql\":\"" + obs::JsonEscape(sql) + "\"";
    s += ",\"rows\":" + std::to_string(out.num_rows());
    s += StrFormat(",\"total_s\":%.9f", total_s);
    if (plan != nullptr) s += ",\"plan\":" + obs::ProfileJson(*plan);
    s += "}";
    return s;
  }
  if (plan == nullptr) {
    return std::string(
        "(no operator profile: metrics disabled or no operators ran)");
  }
  std::string s = obs::ProfileText(*plan);
  s += StrFormat("%llu row(s) in %.3f ms\n",
                 static_cast<unsigned long long>(out.num_rows()),
                 total_s * 1e3);
  return s;
}

Result<std::string> EngineApi::Stats(SessionContext* session) {
  obs::TraceLog& log = obs::GlobalTraceLog();
  std::string out = "== engine stats (epoch " + std::to_string(lock_.epoch()) +
                    ", slow-op threshold " +
                    StrFormat("%.0f", log.SlowOpThresholdMs()) + " ms) ==\n";
  for (const obs::MetricPoint& p : obs::GlobalMetrics().Snapshot()) {
    if (p.type == obs::MetricType::kHistogram) {
      out += StrFormat("%-55s count=%llu sum=%.6fs\n", p.FlatName().c_str(),
                       static_cast<unsigned long long>(p.count), p.sum);
    } else {
      out += StrFormat("%-55s %.0f\n", p.FlatName().c_str(), p.value);
    }
  }
  out += "\n== this session ==\nid " + std::to_string(session->id()) +
         ", user " + session->user() + ", ops " +
         std::to_string(session->ops_executed()) + "\n";

  auto render_ops = [](const std::vector<obs::OpTrace>& ops, size_t max_rows) {
    std::string s =
        "id       sess verb         total_ms parse    lockwait executed "
        "walenq   gcsync   ckpt     ok\n";
    size_t start = ops.size() > max_rows ? ops.size() - max_rows : 0;
    for (size_t i = start; i < ops.size(); ++i) {
      const obs::OpTrace& op = ops[i];
      s += StrFormat("%-8llu %-4llu %-12s %8.2f",
                     static_cast<unsigned long long>(op.id),
                     static_cast<unsigned long long>(op.session_id),
                     op.verb.c_str(), op.total_s * 1e3);
      for (int stage = 0; stage < obs::kTraceStageCount; ++stage) {
        s += StrFormat(" %8.2f", op.stage_s[stage] * 1e3);
      }
      s += op.ok ? " ok\n" : " ERR\n";
    }
    return s;
  };
  out += "\n== recent ops (stage times in ms; " +
         std::to_string(log.TotalRecorded()) + " recorded) ==\n";
  out += render_ops(log.Recent(), 10);
  std::vector<obs::OpTrace> slow = log.SlowOps();
  out += "\n== slow ops (>= " + StrFormat("%.0f", log.SlowOpThresholdMs()) +
         " ms; " + std::to_string(slow.size()) + " kept) ==\n";
  if (slow.empty()) {
    out += "(none)\n";
  } else {
    out += render_ops(slow, 20);
  }
  return out;
}

std::shared_ptr<SessionContext> EngineApi::NewSession() {
  return std::make_shared<SessionContext>(next_session_id_.fetch_add(1));
}

void EngineApi::CloseSession(SessionContext* session, bool discard_staged) {
  if (discard_staged) {
    std::map<std::string, std::string> staged = session->StagedTables();
    if (!staged.empty()) {
      std::vector<storage::AppendTicket> tickets;
      {
        std::unique_lock<std::shared_mutex> lock(lock_.mu());
        if (orpheus_.durable()) {
          orpheus_.storage()->SetGroupCommit(group_commit_.load());
        }
        for (const auto& [table, cvd] : staged) {
          // Best-effort: the table may already be gone (CVD dropped, or
          // the staged table committed through the global fallback path).
          (void)orpheus_.DiscardStaged(cvd, table);
          session->RemoveStagedTable(table);
        }
        if (orpheus_.durable()) {
          tickets = orpheus_.storage()->TakePendingTickets();
        }
        lock_.BumpEpoch();
      }
      // Best-effort durability for the discard records; disconnect
      // cleanup has no caller to report an I/O error to.
      if (!tickets.empty()) {
        (void)orpheus_.storage()->WaitDurable(tickets);
      }
    }
  }
  registry_.UnpinAll(session->id());
  session->set_exited();
}

Result<std::string> EngineApi::Execute(SessionContext* session,
                                       const std::string& line) {
  session->Touch();
  std::string trimmed(Trim(line));
  if (trimmed.empty() || trimmed[0] == '#') return std::string();
  // One trace scope per statement: every TraceSpan below (and inside
  // storage, which runs on this thread) charges its stage to this op.
  obs::ActiveOpScope op_scope(VerbLabel(trimmed), session->id());
  session->NoteOp();
  Result<std::string> result = ExecuteParsed(session, trimmed);
  op_scope.set_ok(result.ok());
  return result;
}

Result<std::string> EngineApi::ExecuteParsed(SessionContext* session,
                                             const std::string& trimmed) {
  std::vector<std::string> args;
  {
    obs::TraceSpan parse_span(obs::TraceStage::kParse);
    args = SplitWhitespace(trimmed);
  }
  const std::string& cmd = args[0];

  // --- Lock-free commands: session-local state only -----------------
  if (cmd == "help") return std::string(kHelp);
  if (cmd == "metrics") return Metrics();
  if (cmd == "stats") return Stats(session);
  if (cmd == "traces") return Traces(args);
  if (cmd == "slowlog") return Slowlog(args);
  if (cmd == "exit" || cmd == "quit") {
    session->set_exited();
    return std::string("bye");
  }
  if (cmd == "whoami") return session->user();
  if (cmd == "pins") {
    std::map<std::string, SessionPin> pins = session->Pins();
    if (pins.empty()) return std::string("(no pins)");
    std::vector<std::string> lines;
    for (const auto& [cvd, pin] : pins) {
      lines.push_back(cvd + " v" + std::to_string(pin.vid) + " (epoch " +
                      std::to_string(pin.epoch) + ")");
    }
    return Join(lines, "\n");
  }
  if (cmd == "unpin") {
    if (args.size() < 2) return Status::InvalidArgument("unpin <cvd>");
    if (!registry_.Unpin(session->id(), args[1])) {
      return Status::NotFound("no pin on CVD " + args[1] +
                              " held by this session");
    }
    session->RemovePin(args[1]);
    return "unpinned " + args[1];
  }

  // --- Shared-lock (read-only) commands ------------------------------
  bool shared = cmd == "ls" || cmd == "graph" || cmd == "diff" ||
                cmd == "pin";
  std::string sql;
  bool want_profile = false;
  bool profile_json = false;
  if (cmd == "run" || cmd == "sql") {
    size_t pos = trimmed.find(cmd) + cmd.size();
    sql = std::string(Trim(trimmed.substr(pos)));
    if (sql.empty()) return Status::InvalidArgument(cmd + " <sql>");
    shared = IsReadOnlySql(sql);
  }
  if (cmd == "explain" || cmd == "profile") {
    // `explain analyze <sql>` / `profile [-json] <sql>`: run the SQL
    // (under whichever lock side it needs) and return its operator
    // profile instead of its rows.
    std::string marker = cmd;  // last keyword before the SQL text
    if (cmd == "explain") {
      if (args.size() < 3 || !TokenEqualsIgnoreCase(args[1], "analyze")) {
        return Status::InvalidArgument("explain analyze <sql>");
      }
      marker = args[1];
    } else if (args.size() >= 2 && args[1] == "-json") {
      profile_json = true;
      marker = args[1];
    }
    size_t pos = marker == cmd ? cmd.size()
                               : trimmed.find(marker, cmd.size()) + marker.size();
    sql = std::string(Trim(trimmed.substr(pos)));
    if (sql.empty()) return Status::InvalidArgument(cmd + " needs <sql>");
    want_profile = true;
    shared = IsReadOnlySql(sql);
  }
  if (shared) {
    std::shared_lock<std::shared_mutex> lock(lock_.mu(), std::defer_lock);
    {
      obs::TraceSpan wait_span(obs::TraceStage::kLockWait);
      WallTimer wait;
      lock.lock();
      LockWaitHist(/*exclusive=*/false)->Observe(wait.ElapsedSeconds());
    }
    obs::TraceSpan exec_span(obs::TraceStage::kExecute);
    if (cmd == "ls") {
      std::vector<std::string> names = orpheus_.ListCvds();
      return names.empty() ? "(no CVDs)" : Join(names, "\n");
    }
    if (cmd == "graph") {
      if (args.size() < 2) return Status::InvalidArgument("graph <cvd>");
      ORPHEUS_ASSIGN_OR_RETURN(Cvd * cvd, orpheus_.GetCvd(args[1]));
      return cvd->graph().ToDot();
    }
    if (cmd == "diff") return DiffCmd(args);
    if (cmd == "pin") return Pin(session, args);
    if (want_profile) return ProfileSql(sql, profile_json);
    if (cmd == "run") {
      ORPHEUS_ASSIGN_OR_RETURN(rel::Chunk out, orpheus_.Run(sql));
      return out.ToString(50);
    }
    ORPHEUS_ASSIGN_OR_RETURN(rel::Chunk out, orpheus_.db()->Execute(sql));
    return out.ToString(50);
  }

  // --- Exclusive-lock (mutating) commands -----------------------------
  // Group commit: the exclusive hold covers the in-memory apply plus
  // the WAL *enqueue* only. Tickets for the records this statement
  // enqueued are taken before the lock drops; the durable wait happens
  // after, so other sessions' statements can join the commit group
  // while this one blocks on the leader's single fdatasync.
  std::vector<storage::AppendTicket> tickets;
  uint64_t sync_head = 0;  // durable WAL head when group commit is off
  Result<std::string> result = std::string();
  {
    std::unique_lock<std::shared_mutex> lock(lock_.mu(), std::defer_lock);
    {
      obs::TraceSpan wait_span(obs::TraceStage::kLockWait);
      WallTimer wait;
      lock.lock();
      LockWaitHist(/*exclusive=*/true)->Observe(wait.ElapsedSeconds());
    }
    obs::TraceSpan exec_span(obs::TraceStage::kExecute);
    if (orpheus_.durable()) {
      orpheus_.storage()->SetGroupCommit(group_commit_.load());
    }
    result = [&]() -> Result<std::string> {
    if (cmd == "create_user") {
      if (args.size() < 2) return Status::InvalidArgument("create_user <name>");
      ORPHEUS_RETURN_NOT_OK(orpheus_.CreateUser(args[1]));
      return "created user " + args[1];
    }
    if (cmd == "config") {
      if (args.size() < 2) return Status::InvalidArgument("config <name>");
      ORPHEUS_RETURN_NOT_OK(orpheus_.Login(args[1]));
      session->set_user(args[1]);
      return "logged in as " + args[1];
    }
    if (cmd == "drop") return Drop(session, args);
    if (cmd == "open") {
      if (args.size() < 2) return Status::InvalidArgument("open <dir>");
      ORPHEUS_RETURN_NOT_OK(orpheus_.Open(args[1]));
      // Recovery may have replayed a login; mirror it into the session
      // so whoami matches the restored engine state.
      session->set_user(orpheus_.WhoAmI());
      return "opened durable database at " + args[1] + " (" +
             std::to_string(orpheus_.ListCvds().size()) + " CVDs)";
    }
    if (cmd == "checkpoint") {
      ORPHEUS_RETURN_NOT_OK(orpheus_.Checkpoint());
      const storage::StorageManager::CheckpointStats& stats =
          orpheus_.storage()->last_checkpoint_stats();
      return "checkpointed " + orpheus_.storage_dir() + " (" +
             std::to_string(stats.segments_written) + " segments written, " +
             std::to_string(stats.segments_reused) + " reused)";
    }
    if (cmd == "save") {
      if (args.size() < 2) return Status::InvalidArgument("save <dir>");
      ORPHEUS_RETURN_NOT_OK(orpheus_.SaveSnapshot(args[1]));
      return "saved snapshot to " + args[1];
    }
    if (want_profile) return ProfileSql(sql, profile_json);
    if (cmd == "run") {
      ORPHEUS_ASSIGN_OR_RETURN(rel::Chunk out, orpheus_.Run(sql));
      return out.ToString(50);
    }
    if (cmd == "sql") {
      ORPHEUS_ASSIGN_OR_RETURN(rel::Chunk out, orpheus_.db()->Execute(sql));
      return out.ToString(50);
    }
    if (cmd == "threads") {
      // Scan parallelism for the relstore executor (the --threads
      // flag's runtime equivalent). The exclusive lock guarantees no
      // query is running while the pool is resized.
      if (args.size() >= 2) {
        char* end = nullptr;
        long n = std::strtol(args[1].c_str(), &end, 10);
        if (end == args[1].c_str() || *end != '\0' || n < 0) {
          return Status::InvalidArgument("threads [<n>] with n >= 0");
        }
        // Clamp before narrowing so huge values can't wrap through int.
        SetExecThreads(static_cast<int>(std::min<long>(n, kMaxExecThreads)));
      }
      return "exec threads: " + std::to_string(ExecThreads());
    }
    if (cmd == "init") return Init(session, args);
    if (cmd == "checkout") return Checkout(session, args);
    if (cmd == "commit") return Commit(session, args);
    if (cmd == "discard") return Discard(session, args);
    if (cmd == "optimize") return Optimize(args);
    return Status::InvalidArgument("unknown command: " + cmd +
                                   " (try 'help')");
    }();
    if (orpheus_.durable()) {
      tickets = orpheus_.storage()->TakePendingTickets();
      // With group commit off the appenders already synced everything
      // they wrote, so the current WAL head is durable — keep the
      // session bookmark advancing identically in both modes.
      if (tickets.empty() && result.ok() && !group_commit_.load()) {
        sync_head = orpheus_.storage()->next_lsn() - 1;
      }
    }
    if (result.ok()) lock_.BumpEpoch();
  }
  if (!tickets.empty()) {
    obs::TraceSpan sync_span(obs::TraceStage::kGroupCommitSync);
    Status durable = orpheus_.storage()->WaitDurable(tickets);
    if (!durable.ok()) {
      // The in-memory apply succeeded but the record never reached
      // disk; surface the I/O error (the handler's message would claim
      // durability the WAL can't back).
      return result.ok() ? Result<std::string>(durable) : result;
    }
    session->NoteDurableLsn(tickets.back()->lsn);
  } else if (sync_head > 0) {
    session->NoteDurableLsn(sync_head);
  }
  return result;
}

Result<std::string> EngineApi::Init(SessionContext* session,
                                    const std::vector<std::string>& args) {
  (void)session;
  if (args.size() < 2) return Status::InvalidArgument("init <cvd> -f <file>");
  const std::string& name = args[1];
  std::string file = FlagValue(args, "-f");
  if (file.empty()) return Status::InvalidArgument("init requires -f <file.csv>");
  ORPHEUS_ASSIGN_OR_RETURN(rel::Chunk rows, ReadCsvFile(file));

  CvdOptions options;
  std::string pk = FlagValue(args, "-pk");
  if (!pk.empty()) {
    for (const std::string& col : Split(pk, ',')) {
      options.primary_key.emplace_back(Trim(col));
    }
  }
  std::string model = FlagValue(args, "-model");
  if (!model.empty()) {
    ORPHEUS_ASSIGN_OR_RETURN(options.model, DataModelKindFromName(model));
  }
  ORPHEUS_ASSIGN_OR_RETURN(
      Cvd * cvd, orpheus_.InitCvd(name, rows, options, "init from " + file));
  return "initialized CVD " + name + " with version 1 (" +
         std::to_string(cvd->graph().GetNode(1).value()->num_records) +
         " records)";
}

Result<std::string> EngineApi::Checkout(SessionContext* session,
                                        const std::vector<std::string>& args) {
  if (args.size() < 2) {
    return Status::InvalidArgument("checkout <cvd> -v ... -t ...");
  }
  const std::string& name = args[1];
  std::string vid_text = FlagValue(args, "-v");
  if (vid_text.empty()) return Status::InvalidArgument("checkout requires -v");
  ORPHEUS_ASSIGN_OR_RETURN(std::vector<VersionId> vids, ParseVidList(vid_text));

  std::string table = FlagValue(args, "-t");
  std::string file = FlagValue(args, "-f");
  if (table.empty() && file.empty()) {
    return Status::InvalidArgument("checkout requires -t <table> or -f <file>");
  }
  if (table.empty()) {
    // The counter restarts with each session, and a reopened durable
    // engine may have replayed csvstage checkouts from an earlier
    // process — skip names that are already taken.
    do {
      table = name + "_csvstage_" + std::to_string(session->NextStagingId());
    } while (orpheus_.db()->HasTable(table));
  }
  ORPHEUS_RETURN_NOT_OK(orpheus_.Checkout(name, vids, table));
  session->AddStagedTable(table, name);
  if (!file.empty()) {
    ORPHEUS_ASSIGN_OR_RETURN(rel::Table * staged, orpheus_.db()->GetTable(table));
    ORPHEUS_RETURN_NOT_OK(WriteCsvFile(file, staged->data()));
    session->AddCsvStaging(file, name, table);
    return "checked out version(s) " + vid_text + " of " + name + " into " +
           file;
  }
  return "checked out version(s) " + vid_text + " of " + name +
         " into table " + table;
}

Result<std::string> EngineApi::ResolveStagedCvd(const SessionContext& session,
                                                const std::string& table) {
  std::string cvd_name = session.StagedCvd(table);
  if (!cvd_name.empty()) return cvd_name;
  // Fallback: scan every CVD's staging area. Covers tables staged by a
  // previous process (WAL replay) or through direct engine access.
  for (const std::string& name : orpheus_.ListCvds()) {
    ORPHEUS_ASSIGN_OR_RETURN(Cvd * cvd, orpheus_.GetCvd(name));
    if (cvd->staged_tables().count(table) > 0) return name;
  }
  return Status::NotFound("table was not checked out from any CVD: " + table);
}

Result<std::string> EngineApi::Commit(SessionContext* session,
                                      const std::vector<std::string>& args) {
  std::string table = FlagValue(args, "-t");
  std::string file = FlagValue(args, "-f");
  std::string message = FlagValue(args, "-m");
  if (message.empty()) message = "(no message)";

  std::string cvd_name;
  if (!file.empty()) {
    auto entry = session->GetCsvStaging(file);
    if (entry.first.empty()) {
      return Status::NotFound("file was not checked out from a CVD: " + file);
    }
    cvd_name = entry.first;
    table = entry.second;
    // Reload the (possibly externally edited) csv into the staged
    // table, keeping the rid column where rows still carry one.
    ORPHEUS_ASSIGN_OR_RETURN(rel::Chunk rows, ReadCsvFile(file));
    ORPHEUS_ASSIGN_OR_RETURN(rel::Table * staged, orpheus_.db()->GetTable(table));
    if (!rows.schema().Equals(staged->schema())) {
      return Status::InvalidArgument(
          "csv schema does not match the checked-out schema (did the header "
          "change?)");
    }
    staged->mutable_chunk() = std::move(rows);
    session->RemoveCsvStaging(file);
  } else if (!table.empty()) {
    ORPHEUS_ASSIGN_OR_RETURN(cvd_name, ResolveStagedCvd(*session, table));
  } else {
    return Status::InvalidArgument("commit requires -t <table> or -f <file>");
  }

  ORPHEUS_ASSIGN_OR_RETURN(VersionId vid,
                           orpheus_.Commit(cvd_name, table, message));
  session->RemoveStagedTable(table);
  return "committed version " + std::to_string(vid) + " to " + cvd_name;
}

Result<std::string> EngineApi::Discard(SessionContext* session,
                                       const std::vector<std::string>& args) {
  std::string table = FlagValue(args, "-t");
  if (table.empty() && args.size() >= 2 && args[1][0] != '-') table = args[1];
  if (table.empty()) return Status::InvalidArgument("discard -t <table>");
  ORPHEUS_ASSIGN_OR_RETURN(std::string cvd_name,
                           ResolveStagedCvd(*session, table));
  ORPHEUS_RETURN_NOT_OK(orpheus_.DiscardStaged(cvd_name, table));
  session->RemoveStagedTable(table);
  return "discarded staged table " + table;
}

Result<std::string> EngineApi::Drop(SessionContext* session,
                                    const std::vector<std::string>& args) {
  if (args.size() < 2) return Status::InvalidArgument("drop <cvd>");
  const std::string& name = args[1];
  int others = registry_.PinsByOthers(name, session->id());
  if (others > 0) {
    return Status::FailedPrecondition(
        "cannot drop " + name + ": pinned by " + std::to_string(others) +
        " other session(s)");
  }
  ORPHEUS_RETURN_NOT_OK(orpheus_.DropCvd(name));
  registry_.ForgetCvd(name);
  session->RemovePin(name);
  return "dropped " + name;
}

Result<std::string> EngineApi::Pin(SessionContext* session,
                                   const std::vector<std::string>& args) {
  if (args.size() < 2) return Status::InvalidArgument("pin <cvd> [-v <vid>]");
  const std::string& name = args[1];
  ORPHEUS_ASSIGN_OR_RETURN(Cvd * cvd, orpheus_.GetCvd(name));
  VersionId vid = cvd->latest_version();
  std::string vid_text = FlagValue(args, "-v");
  if (!vid_text.empty()) {
    vid = std::strtoll(vid_text.c_str(), nullptr, 10);
  }
  if (!cvd->graph().GetNode(vid).ok()) {
    return Status::NotFound("no version " + std::to_string(vid) + " in CVD " +
                            name);
  }
  SessionPin pin{vid, lock_.epoch()};
  registry_.Pin(session->id(), name, pin);
  session->RecordPin(name, pin);
  return "pinned " + name + " at version " + std::to_string(vid) +
         " (epoch " + std::to_string(pin.epoch) + ")";
}

Result<std::string> EngineApi::DiffCmd(const std::vector<std::string>& args) {
  if (args.size() < 4) return Status::InvalidArgument("diff <cvd> <v1> <v2>");
  ORPHEUS_ASSIGN_OR_RETURN(Cvd * cvd, orpheus_.GetCvd(args[1]));
  VersionId v1 = std::strtoll(args[2].c_str(), nullptr, 10);
  VersionId v2 = std::strtoll(args[3].c_str(), nullptr, 10);
  ORPHEUS_ASSIGN_OR_RETURN(rel::Chunk fwd, cvd->Diff(v1, v2));
  ORPHEUS_ASSIGN_OR_RETURN(rel::Chunk bwd, cvd->Diff(v2, v1));
  std::string out = "records only in v" + std::to_string(v1) + " (" +
                    std::to_string(fwd.num_rows()) + "):\n" + fwd.ToString(20);
  out += "records only in v" + std::to_string(v2) + " (" +
         std::to_string(bwd.num_rows()) + "):\n" + bwd.ToString(20);
  return out;
}

Result<std::string> EngineApi::Optimize(const std::vector<std::string>& args) {
  if (args.size() < 2) return Status::InvalidArgument("optimize <cvd> [-gamma f]");
  const std::string& name = args[1];
  ORPHEUS_ASSIGN_OR_RETURN(Cvd * cvd, orpheus_.GetCvd(name));
  auto* model = dynamic_cast<SplitByRlistModel*>(cvd->model());
  if (model == nullptr) {
    return Status::NotSupported("optimize requires the split-by-rlist model");
  }
  double factor = 2.0;
  std::string gamma_text = FlagValue(args, "-gamma");
  if (!gamma_text.empty()) factor = std::strtod(gamma_text.c_str(), nullptr);

  int64_t gamma =
      static_cast<int64_t>(factor * static_cast<double>(cvd->total_records()));
  ORPHEUS_ASSIGN_OR_RETURN(part::LyreSplitResult split,
                           part::LyreSplit::RunForBudget(cvd->graph(), gamma));

  // Materialize the partitions and install the checkout/query routing.
  std::map<VersionId, std::vector<RecordId>> version_rids;
  for (VersionId vid : cvd->graph().versions()) {
    ORPHEUS_ASSIGN_OR_RETURN(std::vector<RecordId> rids,
                             cvd->model()->VersionRecords(vid));
    version_rids[vid] = std::move(rids);
  }
  // Drop any previous store first so a re-optimize can reuse its
  // physical table names (and WAL replay does the same).
  orpheus_.DetachPartitionStore(name);
  auto store = std::make_unique<part::PartitionStore>(orpheus_.db(), name,
                                                      model->DataTable());
  ORPHEUS_RETURN_NOT_OK(store->Build(split.partitioning, std::move(version_rids)));
  ORPHEUS_RETURN_NOT_OK(orpheus_.AttachPartitionStore(name, std::move(store)));
  return "partitioned " + name + " into " +
         std::to_string(split.partitioning.num_partitions()) +
         " partitions (delta=" + StrFormat("%.4f", split.delta) +
         ", est. storage=" + std::to_string(split.estimated_storage) +
         " records, est. checkout=" +
         StrFormat("%.1f", split.estimated_checkout) + " records)";
}

}  // namespace orpheus::core
