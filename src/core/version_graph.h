// VersionGraph: the DAG of version derivations (§3.3 of the paper).
//
// Nodes are versions; an edge vi -> vj means vj was derived from vi and
// carries weight w(vi, vj) = number of records the two versions share.
// The graph also tracks |R(vi)| (records per version) and topological
// levels l(vi). LYRESPLIT operates on this structure instead of the
// much larger version-record bipartite graph — that is the source of
// its ~10^3x speedup over AGGLO/KMEANS.
//
// For DAGs (merges), ToTree() implements Appendix C.1: keep only the
// max-weight incoming edge of each merge node, conceptually duplicating
// the records inherited through dropped edges (the |R^| surplus).

#ifndef ORPHEUS_CORE_VERSION_GRAPH_H_
#define ORPHEUS_CORE_VERSION_GRAPH_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace orpheus::core {

using VersionId = int64_t;

struct VersionNode {
  VersionId vid = 0;
  std::vector<VersionId> parents;
  // w(parent, this), aligned with `parents`.
  std::vector<int64_t> parent_weights;
  std::vector<VersionId> children;
  int64_t num_records = 0;  // |R(vid)|
  int level = 0;            // l(vid); roots have level 1
};

class VersionGraph {
 public:
  VersionGraph() = default;

  // Adds a version with its parents and shared-record counts.
  // Parents must already exist. Weight i is w(parents[i], vid).
  Status AddVersion(VersionId vid, const std::vector<VersionId>& parents,
                    const std::vector<int64_t>& parent_weights,
                    int64_t num_records);

  bool Contains(VersionId vid) const { return nodes_.count(vid) > 0; }
  Result<const VersionNode*> GetNode(VersionId vid) const;

  size_t num_versions() const { return nodes_.size(); }

  // All version ids in insertion (= topological) order.
  const std::vector<VersionId>& versions() const { return order_; }

  // Versions with no parents.
  std::vector<VersionId> Roots() const;

  // All transitive ancestors (excluding vid itself), breadth-first.
  Result<std::vector<VersionId>> Ancestors(VersionId vid) const;
  // All transitive descendants (excluding vid itself), breadth-first.
  Result<std::vector<VersionId>> Descendants(VersionId vid) const;

  // True if the graph has any merge node (>1 parent).
  bool IsTree() const;

  // Appendix C.1: converts a DAG to a tree by keeping, for each merge
  // node, only the max-weight incoming edge. `duplicated_records`
  // (|R^|) receives the total weight of dropped edges — the records
  // conceptually re-created in the tree view.
  VersionGraph ToTree(int64_t* duplicated_records) const;

  // Sum over versions of |R(vi)| minus inherited records — equals |R|
  // for trees (per Lemma 1's telescoping argument).
  int64_t TotalNewRecords() const;

  // Number of bipartite edges |E| = sum of |R(vi)|.
  int64_t TotalBipartiteEdges() const;

  std::string ToDot() const;  // Graphviz rendering for the CLI/examples

 private:
  std::map<VersionId, VersionNode> nodes_;
  std::vector<VersionId> order_;
};

}  // namespace orpheus::core

#endif  // ORPHEUS_CORE_VERSION_GRAPH_H_
