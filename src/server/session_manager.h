// SessionManager: the server's registry of live sessions. One session
// per client connection; the manager creates the SessionContext
// (through EngineApi, which owns id assignment), hands it to the
// connection handler, and tears it down on close — releasing the
// session's snapshot pins and discarding its staged tables so an
// abandoned checkout can't leak into the shared engine.
//
// Idle timeout: each connection handler enforces its own deadline
// (poll + SessionContext::IdleSeconds); the manager just exposes the
// configured limit and the bookkeeping. Thread-safe throughout.

#ifndef ORPHEUS_SERVER_SESSION_MANAGER_H_
#define ORPHEUS_SERVER_SESSION_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/engine_api.h"

namespace orpheus::server {

class SessionManager {
 public:
  explicit SessionManager(core::EngineApi* api) : api_(api) {}

  // Registers a new session.
  std::shared_ptr<core::SessionContext> Create();

  // Ends one session: unpins everything it pinned and discards its
  // staged tables (logged when durable). No-op for unknown ids.
  void Close(uint64_t id);

  // Ends every live session (server shutdown).
  void CloseAll();

  size_t active() const;

  // Snapshot of the live sessions (introspection, tests).
  std::vector<std::shared_ptr<core::SessionContext>> Sessions() const;

 private:
  core::EngineApi* api_;
  mutable std::mutex mu_;
  std::map<uint64_t, std::shared_ptr<core::SessionContext>> sessions_;
};

}  // namespace orpheus::server

#endif  // ORPHEUS_SERVER_SESSION_MANAGER_H_
