// Server: the TCP front-end that makes one OrpheusDB engine serve many
// concurrent sessions (the phase-1 "versioning server" of the
// roadmap).
//
// Architecture:
//
//   acceptor thread ──▶ ThreadPool (common/thread_pool, Post()) ──▶
//     one connection handler per client, each driving one
//     SessionContext through core::EngineApi
//
// Each handler loops: read a frame (server/protocol.h), dispatch the
// command line through EngineApi::Execute — which takes the engine's
// shared or exclusive lock as the command requires — and write the
// response frame. Handlers poll with a short tick so they notice both
// server shutdown and their session's idle timeout without holding a
// worker hostage in a blocking read.
//
// Capacity: at most `workers` connections are served concurrently;
// further accepted connections wait in the pool queue until a handler
// finishes. Stop() is graceful — it closes the listener, signals the
// handlers, force-closes lingering connection sockets, tears down
// every session (discarding staged tables), and joins the pool.

#ifndef ORPHEUS_SERVER_SERVER_H_
#define ORPHEUS_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include "common/thread_pool.h"
#include "core/engine_api.h"
#include "server/session_manager.h"

namespace orpheus::server {

struct ServerOptions {
  uint16_t port = 0;         // 0 = ephemeral (read back via port())
  int workers = 8;           // connection worker pool (>= 1)
  double idle_timeout_sec = 300.0;  // 0 = sessions never idle out
};

class Server {
 public:
  // `api` must outlive the server.
  Server(core::EngineApi* api, ServerOptions options);
  ~Server();  // Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, and starts the acceptor. Non-blocking; serving
  // happens on the pool threads.
  Status Start();

  // Graceful shutdown; idempotent. Safe to call from any thread.
  void Stop();

  // The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  SessionManager* sessions() { return &sessions_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  core::EngineApi* api_;
  ServerOptions options_;
  SessionManager sessions_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::unique_ptr<ThreadPool> pool_;
  std::thread acceptor_;

  // Live connection sockets, so Stop() can shutdown() stragglers.
  std::mutex conn_mu_;
  std::set<int> conn_fds_;
};

}  // namespace orpheus::server

#endif  // ORPHEUS_SERVER_SERVER_H_
