#include "server/session_manager.h"

namespace orpheus::server {

std::shared_ptr<core::SessionContext> SessionManager::Create() {
  std::shared_ptr<core::SessionContext> session = api_->NewSession();
  std::lock_guard<std::mutex> lock(mu_);
  sessions_[session->id()] = session;
  return session;
}

void SessionManager::Close(uint64_t id) {
  std::shared_ptr<core::SessionContext> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    session = std::move(it->second);
    sessions_.erase(it);
  }
  // Outside mu_: CloseSession takes the engine's exclusive lock to
  // discard staged tables, and must not hold the registry mutex then.
  api_->CloseSession(session.get(), /*discard_staged=*/true);
}

void SessionManager::CloseAll() {
  std::vector<uint64_t> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, session] : sessions_) ids.push_back(id);
  }
  for (uint64_t id : ids) Close(id);
}

size_t SessionManager::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

std::vector<std::shared_ptr<core::SessionContext>> SessionManager::Sessions()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<core::SessionContext>> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) out.push_back(session);
  return out;
}

}  // namespace orpheus::server
