#include "server/protocol.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace orpheus::server {

namespace {

Status Errno(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

// Full write, looping over partials and EINTR. MSG_NOSIGNAL: a hung-up
// peer must surface as EPIPE, not kill the process with SIGPIPE.
Status WriteAll(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

// Full read. Returns false via *eof when the peer closed before the
// first byte (clean EOF); a close mid-buffer is an error.
Status ReadAll(int fd, char* data, size_t size, bool* eof) {
  *eof = false;
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::read(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    if (n == 0) {
      if (done == 0) {
        *eof = true;
        return Status::OK();
      }
      return Status::Unavailable("connection closed mid-frame");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame exceeds " +
                                   std::to_string(kMaxFrameBytes) + " bytes");
  }
  uint32_t len = static_cast<uint32_t>(payload.size());
  // One buffer, one write: a separate 4-byte header write would
  // interact badly with Nagle + delayed ACK on small frames.
  std::string frame;
  frame.reserve(sizeof(len) + payload.size());
  frame.append(reinterpret_cast<const char*>(&len), sizeof(len));  // LE host
  frame.append(payload.data(), payload.size());
  return WriteAll(fd, frame.data(), frame.size());
}

Result<std::string> ReadFrame(int fd) {
  char header[4];
  bool eof = false;
  ORPHEUS_RETURN_NOT_OK(ReadAll(fd, header, sizeof(header), &eof));
  if (eof) return Status::Unavailable("connection closed");
  uint32_t len = 0;
  std::memcpy(&len, header, sizeof(len));
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument("oversized frame (" + std::to_string(len) +
                                   " bytes); not an orpheus peer?");
  }
  std::string payload(len, '\0');
  if (len > 0) {
    ORPHEUS_RETURN_NOT_OK(ReadAll(fd, payload.data(), len, &eof));
    if (eof) return Status::Unavailable("connection closed mid-frame");
  }
  return payload;
}

std::string EncodeResponse(const Status& status, bool closed,
                           std::string_view text) {
  std::string payload;
  payload.reserve(2 + text.size());
  payload.push_back(static_cast<char>(status.code()));
  payload.push_back(closed ? 1 : 0);
  if (status.ok()) {
    payload.append(text.data(), text.size());
  } else {
    payload.append(status.message());
  }
  return payload;
}

Result<Response> DecodeResponse(std::string_view payload) {
  if (payload.size() < 2) {
    return Status::Internal("short response frame (" +
                            std::to_string(payload.size()) + " bytes)");
  }
  Response response;
  auto code = static_cast<StatusCode>(static_cast<uint8_t>(payload[0]));
  response.closed = payload[1] != 0;
  std::string body(payload.substr(2));
  if (code == StatusCode::kOk) {
    response.status = Status::OK();
    response.text = std::move(body);
  } else {
    response.status = Status::FromCode(code, std::move(body));
  }
  return response;
}

Result<int> ListenLoopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Errno("bind 127.0.0.1:" + std::to_string(port));
    CloseFd(fd);
    return st;
  }
  if (::listen(fd, 64) != 0) {
    Status st = Errno("listen");
    CloseFd(fd);
    return st;
  }
  return fd;
}

Result<uint16_t> BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<int> ConnectTcp(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Errno("connect " + host + ":" + std::to_string(port));
    CloseFd(fd);
    return st;
  }
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<std::pair<std::string, uint16_t>> ParseHostPort(
    const std::string& spec) {
  std::string host = "127.0.0.1";
  std::string port_text = spec;
  size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    host = spec.substr(0, colon);
    port_text = spec.substr(colon + 1);
    if (host.empty()) host = "127.0.0.1";
  }
  char* end = nullptr;
  long port = std::strtol(port_text.c_str(), &end, 10);
  if (end == port_text.c_str() || *end != '\0' || port <= 0 || port > 65535) {
    return Status::InvalidArgument("bad host:port spec: " + spec);
  }
  return std::make_pair(host, static_cast<uint16_t>(port));
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace orpheus::server
