#include "server/client.h"

#include <string_view>

#include "server/protocol.h"

namespace orpheus::server {

Client::~Client() { Disconnect(); }

Status Client::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::InvalidArgument("client already connected");
  ORPHEUS_ASSIGN_OR_RETURN(fd_, ConnectTcp(host, port));
  Result<std::string> hello = ReadFrame(fd_);
  if (!hello.ok()) {
    Disconnect();
    return hello.status();
  }
  if (hello.value().rfind(kHelloPrefix, 0) != 0) {
    Disconnect();
    return Status::Internal("not an orpheus server: bad hello frame");
  }
  hello_ = hello.value();
  closed_ = false;
  return Status::OK();
}

Result<std::string> Client::Execute(const std::string& line) {
  if (fd_ < 0 || closed_) {
    return Status::Unavailable("not connected");
  }
  Status write_st = WriteFrame(fd_, line);
  if (!write_st.ok()) {
    closed_ = true;
    return write_st;
  }
  Result<std::string> payload = ReadFrame(fd_);
  if (!payload.ok()) {
    closed_ = true;
    return payload.status();
  }
  ORPHEUS_ASSIGN_OR_RETURN(Response response, DecodeResponse(payload.value()));
  if (response.closed) closed_ = true;
  if (!response.status.ok()) return response.status;
  return std::move(response.text);
}

void Client::Disconnect() {
  if (fd_ >= 0) {
    CloseFd(fd_);
    fd_ = -1;
  }
  closed_ = true;
}

}  // namespace orpheus::server
