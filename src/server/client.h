// Client: a blocking connection to an OrpheusDB server. One command
// line per Execute() call — the same lines the local CLI accepts — and
// the server's display output (or error Status) back.
//
// The CLI's --connect mode is built on this; tests use it to drive
// multiple concurrent sessions against one server.

#ifndef ORPHEUS_SERVER_CLIENT_H_
#define ORPHEUS_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace orpheus::server {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects and reads the server's hello frame ("ORPHEUS/1 ...").
  Status Connect(const std::string& host, uint16_t port);

  // Sends one command line, returns the display output. A non-OK
  // command outcome comes back as that Status (the connection stays
  // usable unless closed() flips).
  Result<std::string> Execute(const std::string& line);

  // True once the server has ended the session (`exit`, shutdown,
  // or a transport error).
  bool closed() const { return closed_; }

  // The hello frame received on connect (e.g. "ORPHEUS/1 session 3").
  const std::string& hello() const { return hello_; }

  void Disconnect();

 private:
  int fd_ = -1;
  bool closed_ = true;
  std::string hello_;
};

}  // namespace orpheus::server

#endif  // ORPHEUS_SERVER_CLIENT_H_
