#include "server/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <string>

#include "obs/metrics.h"
#include "server/protocol.h"

namespace orpheus::server {

namespace {

// Handler tick: how often a blocked handler re-checks the stop flag
// and its idle deadline.
constexpr int kPollMs = 100;

// Server-layer metrics. Frames/bytes are counted here rather than in
// protocol.cc so that the client side of an in-process test does not
// double-count the server's traffic.
struct ServerMetrics {
  obs::Counter* sessions_opened;
  obs::Counter* sessions_closed;
  obs::Gauge* sessions_active;
  obs::Counter* frames_in;
  obs::Counter* frames_out;
  obs::Counter* bytes_in;
  obs::Counter* bytes_out;
};

const ServerMetrics& SM() {
  obs::MetricsRegistry& reg = obs::GlobalMetrics();
  static const ServerMetrics m = {
      reg.GetCounter("orpheus_sessions_opened_total",
                     "Server sessions accepted."),
      reg.GetCounter("orpheus_sessions_closed_total",
                     "Server sessions closed."),
      reg.GetGauge("orpheus_sessions_active", "Currently connected sessions."),
      reg.GetCounter("orpheus_frames_total", "Protocol frames, by direction.",
                     {{"dir", "in"}}),
      reg.GetCounter("orpheus_frames_total", "Protocol frames, by direction.",
                     {{"dir", "out"}}),
      reg.GetCounter("orpheus_net_bytes_total",
                     "Frame payload bytes, by direction.", {{"dir", "in"}}),
      reg.GetCounter("orpheus_net_bytes_total",
                     "Frame payload bytes, by direction.", {{"dir", "out"}})};
  return m;
}

}  // namespace

Server::Server(core::EngineApi* api, ServerOptions options)
    : api_(api), options_(options), sessions_(api) {
  options_.workers = std::max(1, options_.workers);
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (listen_fd_ >= 0) return Status::InvalidArgument("server already started");
  ORPHEUS_ASSIGN_OR_RETURN(listen_fd_, ListenLoopback(options_.port));
  auto port = BoundPort(listen_fd_);
  if (!port.ok()) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return port.status();
  }
  port_ = port.value();
  pool_ = std::make_unique<ThreadPool>(options_.workers);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (stopping_.exchange(true)) {
    // Second caller: the first one is (or was) tearing down; just make
    // sure the acceptor is joined before returning.
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    // Wakes the acceptor out of accept() with an error.
    ::shutdown(listen_fd_, SHUT_RDWR);
    CloseFd(listen_fd_);
    listen_fd_ = -1;
  }
  if (acceptor_.joinable()) acceptor_.join();
  {
    // Nudge handlers blocked in poll/read: a shutdown() makes their
    // next read return 0 and the handler exits its loop.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  pool_.reset();  // drains queued handlers, joins workers
  sessions_.CloseAll();
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      continue;  // EINTR / transient accept failure
    }
    int on = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_fds_.insert(fd);
    }
    pool_->Post([this, fd] { HandleConnection(fd); });
  }
}

void Server::HandleConnection(int fd) {
  std::shared_ptr<core::SessionContext> session = sessions_.Create();
  SM().sessions_opened->Inc();
  SM().sessions_active->Add(1);
  std::string hello = std::string(kHelloPrefix) + " session " +
                      std::to_string(session->id());
  bool alive = WriteFrame(fd, hello).ok();
  if (alive) {
    SM().frames_out->Inc();
    SM().bytes_out->Inc(hello.size());
  }

  while (alive && !stopping_.load(std::memory_order_acquire)) {
    // Wait for a request with a short tick so shutdown and the idle
    // deadline are noticed while the client is quiet.
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, kPollMs);
    if (ready < 0) break;
    if (ready == 0) {
      if (options_.idle_timeout_sec > 0 &&
          session->IdleSeconds() > options_.idle_timeout_sec) {
        break;  // idle session: close without a response frame
      }
      continue;
    }
    Result<std::string> request = ReadFrame(fd);
    if (!request.ok()) break;  // EOF or protocol violation
    SM().frames_in->Inc();
    SM().bytes_in->Inc(request.value().size());

    Result<std::string> result = api_->Execute(session.get(), request.value());
    bool closed = session->exited();
    std::string response =
        result.ok() ? EncodeResponse(Status::OK(), closed, result.value())
                    : EncodeResponse(result.status(), closed,
                                     std::string_view());
    Status write_st = WriteFrame(fd, response);
    if (write_st.ok()) {
      SM().frames_out->Inc();
      SM().bytes_out->Inc(response.size());
    }
    alive = write_st.ok() && !closed;
  }

  sessions_.Close(session->id());
  SM().sessions_closed->Inc();
  SM().sessions_active->Add(-1);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(fd);
  }
  CloseFd(fd);
}

}  // namespace orpheus::server
