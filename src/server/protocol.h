// Wire protocol of the OrpheusDB server: length-prefixed frames over a
// TCP stream, one request/response pair per command.
//
// Frame:              [u32 length (LE)][payload]          length <= 64 MiB
// Request payload:    the command line, verbatim (see core/engine_api.h)
// Response payload:   [u8 status code][u8 closed][text]
//
// `status code` is the orpheus::StatusCode of the command (0 = OK, in
// which case `text` is the display output; otherwise the error
// message). `closed` is 1 when the server is ending the session after
// this response (`exit`, shutdown) — the client should not send more
// requests.
//
// On connect, before the first request, the server sends one hello
// frame: "ORPHEUS/1 session <id>". Clients verify the "ORPHEUS/1"
// prefix to fail fast against a non-orpheus endpoint.
//
// This header also carries the small POSIX socket helpers shared by
// server and client; everything binds/connects on IPv4 (the server
// listens on loopback only — it is a single-node session server, not
// an internet-facing daemon).

#ifndef ORPHEUS_SERVER_PROTOCOL_H_
#define ORPHEUS_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"

namespace orpheus::server {

inline constexpr uint32_t kMaxFrameBytes = 64u << 20;
inline constexpr char kHelloPrefix[] = "ORPHEUS/1";

// --- Framing ------------------------------------------------------------

// Writes one [length][payload] frame; loops over partial writes.
Status WriteFrame(int fd, std::string_view payload);

// Reads one frame (blocking). Status::Unavailable with message
// "connection closed" on clean EOF at a frame boundary.
Result<std::string> ReadFrame(int fd);

// --- Response payload ----------------------------------------------------

struct Response {
  Status status;       // the command's outcome (code + message)
  bool closed = false; // server ends the session after this response
  std::string text;    // display output when status.ok()
};

std::string EncodeResponse(const Status& status, bool closed,
                           std::string_view text);
Result<Response> DecodeResponse(std::string_view payload);

// --- Sockets ------------------------------------------------------------

// Listening socket bound to 127.0.0.1:`port` (0 = ephemeral).
Result<int> ListenLoopback(uint16_t port);

// The port a listening socket is bound to (resolves port 0).
Result<uint16_t> BoundPort(int fd);

// Blocking connect to host:port. `host` is an IPv4 literal
// ("127.0.0.1") or "localhost".
Result<int> ConnectTcp(const std::string& host, uint16_t port);

// Splits "host:port"; host defaults to 127.0.0.1 when absent.
Result<std::pair<std::string, uint16_t>> ParseHostPort(
    const std::string& spec);

void CloseFd(int fd);

}  // namespace orpheus::server

#endif  // ORPHEUS_SERVER_PROTOCOL_H_
