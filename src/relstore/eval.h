// Expression binding and row-at-a-time evaluation.
//
// Usage: Bind() once against the schema the expression will run over
// (resolving column references to positions and pre-executing any
// subqueries), then Eval() per row. Binding mutates Expr::bound_col,
// so a bound expression is tied to one schema at a time.
//
// Thread-safety and ownership contracts:
//  - The Evaluator does not own `executor` or the Exprs it binds; both
//    must outlive it. Bind() mutates the Expr tree and this Evaluator's
//    subquery caches, and may run nested SELECTs — it must only be
//    called from the statement's coordinating thread, never from scan
//    workers.
//  - After Bind() has returned, Eval()/EvalPredicate() are const,
//    touch only immutable state (the bound Expr tree, the chunk, the
//    pre-executed subquery caches), and are safe to call concurrently
//    from many threads. This is what lets the executor fan one bound
//    predicate out across row batches (see executor.h).

#ifndef ORPHEUS_RELSTORE_EVAL_H_
#define ORPHEUS_RELSTORE_EVAL_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "relstore/chunk.h"
#include "relstore/sql_ast.h"

namespace orpheus::rel {

class Executor;

class Evaluator {
 public:
  // `executor` runs IN/ARRAY subqueries; may be null if the
  // expressions contain none.
  explicit Evaluator(Executor* executor) : executor_(executor) {}

  // Resolves column refs in `expr` against `schema` and executes any
  // subqueries, caching their results for Eval.
  Status Bind(Expr* expr, const Schema& schema);

  // Evaluates a bound scalar expression on row `row` of `chunk`.
  Result<Value> Eval(const Expr& expr, const Chunk& chunk, size_t row) const;

  // Evaluates a bound predicate; NULL results count as false.
  Result<bool> EvalPredicate(const Expr& expr, const Chunk& chunk, size_t row) const;

 private:
  Result<Value> EvalBinary(const Expr& expr, const Chunk& chunk, size_t row) const;
  Result<Value> EvalFunc(const Expr& expr, const Chunk& chunk, size_t row) const;

  Executor* executor_;
  // Pre-executed IN (subquery) sets: int fast path and generic values.
  std::unordered_map<const Expr*, std::unordered_set<int64_t>> in_int_sets_;
  std::unordered_map<const Expr*, std::vector<Value>> in_value_lists_;
  // Pre-executed ARRAY(subquery) values.
  std::unordered_map<const Expr*, Value> array_subqueries_;
};

}  // namespace orpheus::rel

#endif  // ORPHEUS_RELSTORE_EVAL_H_
