#include "relstore/column.h"

#include <cassert>

namespace orpheus::rel {

Value Column::Get(size_t row) const {
  assert(row < size_);
  if (IsNull(row)) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
      return Value::Int(ints_[row]);
    case DataType::kBool:
      return Value::Bool(ints_[row] != 0);
    case DataType::kDouble:
      return Value::Double(doubles_[row]);
    case DataType::kString:
      return Value::String(strings_[row]);
    case DataType::kIntArray:
      return Value::Array(arrays_[row]);
    case DataType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

void Column::EnsureBitmap() {
  if (null_bitmap_.empty()) null_bitmap_.assign(size_, false);
}

void Column::SetNull(size_t row) {
  EnsureBitmap();
  if (row >= null_bitmap_.size()) null_bitmap_.resize(size_, false);
  null_bitmap_[row] = true;
}

void Column::Append(const Value& value) {
  // Slot is appended first so SetNull sees the right size.
  switch (type_) {
    case DataType::kInt64:
    case DataType::kBool:
      ints_.push_back(value.is_null() ? 0 : value.AsInt());
      break;
    case DataType::kDouble:
      doubles_.push_back(value.is_null() ? 0.0 : value.AsDouble());
      break;
    case DataType::kString:
      strings_.push_back(value.is_null() ? std::string() : value.AsString());
      break;
    case DataType::kIntArray:
      arrays_.push_back(value.is_null() ? IntArray() : value.AsArray());
      break;
    case DataType::kNull:
      break;
  }
  ++size_;
  if (!null_bitmap_.empty()) null_bitmap_.push_back(value.is_null());
  if (value.is_null() && null_bitmap_.empty()) {
    EnsureBitmap();
    null_bitmap_.back() = true;
  }
}

void Column::AppendFrom(const Column& src, size_t row) {
  assert(src.type_ == type_);
  switch (type_) {
    case DataType::kInt64:
    case DataType::kBool:
      ints_.push_back(src.ints_[row]);
      break;
    case DataType::kDouble:
      doubles_.push_back(src.doubles_[row]);
      break;
    case DataType::kString:
      strings_.push_back(src.strings_[row]);
      break;
    case DataType::kIntArray:
      arrays_.push_back(src.arrays_[row]);
      break;
    case DataType::kNull:
      break;
  }
  ++size_;
  bool src_null = src.IsNull(row);
  if (!null_bitmap_.empty()) {
    null_bitmap_.push_back(src_null);
  } else if (src_null) {
    EnsureBitmap();
    null_bitmap_.back() = true;
  }
}

void Column::Gather(const Column& src, const std::vector<uint32_t>& rows) {
  assert(src.type_ == type_);
  switch (type_) {
    case DataType::kInt64:
    case DataType::kBool:
      ints_.reserve(ints_.size() + rows.size());
      for (uint32_t r : rows) ints_.push_back(src.ints_[r]);
      break;
    case DataType::kDouble:
      doubles_.reserve(doubles_.size() + rows.size());
      for (uint32_t r : rows) doubles_.push_back(src.doubles_[r]);
      break;
    case DataType::kString:
      strings_.reserve(strings_.size() + rows.size());
      for (uint32_t r : rows) strings_.push_back(src.strings_[r]);
      break;
    case DataType::kIntArray:
      arrays_.reserve(arrays_.size() + rows.size());
      for (uint32_t r : rows) arrays_.push_back(src.arrays_[r]);
      break;
    case DataType::kNull:
      break;
  }
  size_ += rows.size();
  if (!src.null_bitmap_.empty() || !null_bitmap_.empty()) {
    EnsureBitmap();
    null_bitmap_.resize(size_ - rows.size(), false);
    for (uint32_t r : rows) null_bitmap_.push_back(src.IsNull(r));
  }
}

void Column::Set(size_t row, const Value& value) {
  assert(row < size_);
  if (value.is_null()) {
    SetNull(row);
    return;
  }
  if (!null_bitmap_.empty()) null_bitmap_[row] = false;
  switch (type_) {
    case DataType::kInt64:
    case DataType::kBool:
      ints_[row] = value.AsInt();
      break;
    case DataType::kDouble:
      doubles_[row] = value.AsDouble();
      break;
    case DataType::kString:
      strings_[row] = value.AsString();
      break;
    case DataType::kIntArray:
      arrays_[row] = value.AsArray();
      break;
    case DataType::kNull:
      break;
  }
}

namespace {

template <typename T>
void FilterVector(std::vector<T>& vec, const std::vector<bool>& keep) {
  if (vec.empty()) return;
  size_t out = 0;
  for (size_t i = 0; i < vec.size(); ++i) {
    if (keep[i]) {
      if (out != i) vec[out] = std::move(vec[i]);
      ++out;
    }
  }
  vec.resize(out);
}

}  // namespace

void Column::Filter(const std::vector<bool>& keep) {
  assert(keep.size() == size_);
  FilterVector(ints_, keep);
  FilterVector(doubles_, keep);
  FilterVector(strings_, keep);
  FilterVector(arrays_, keep);
  if (!null_bitmap_.empty()) {
    std::vector<bool> bitmap;
    bitmap.reserve(size_);
    for (size_t i = 0; i < size_; ++i) {
      if (keep[i]) bitmap.push_back(null_bitmap_[i]);
    }
    null_bitmap_ = std::move(bitmap);
  }
  size_t kept = 0;
  for (bool k : keep) kept += k ? 1 : 0;
  size_ = kept;
}

void Column::Clear() {
  ints_.clear();
  doubles_.clear();
  strings_.clear();
  arrays_.clear();
  null_bitmap_.clear();
  size_ = 0;
}

Status Column::ConvertTo(DataType new_type) {
  if (new_type == type_) return Status::OK();
  if (type_ == DataType::kInt64 && new_type == DataType::kDouble) {
    doubles_.reserve(ints_.size());
    for (int64_t v : ints_) doubles_.push_back(static_cast<double>(v));
    ints_.clear();
    ints_.shrink_to_fit();
    type_ = new_type;
    return Status::OK();
  }
  if ((type_ == DataType::kInt64 || type_ == DataType::kDouble) &&
      new_type == DataType::kString) {
    strings_.reserve(size_);
    for (size_t i = 0; i < size_; ++i) {
      strings_.push_back(IsNull(i) ? std::string() : Get(i).ToString());
    }
    ints_.clear();
    doubles_.clear();
    type_ = new_type;
    return Status::OK();
  }
  return Status::NotSupported(
      std::string("cannot widen ") + DataTypeName(type_) + " to " +
      DataTypeName(new_type));
}

void Column::AppendNulls(size_t n) {
  EnsureBitmap();
  for (size_t i = 0; i < n; ++i) {
    switch (type_) {
      case DataType::kInt64:
      case DataType::kBool:
        ints_.push_back(0);
        break;
      case DataType::kDouble:
        doubles_.push_back(0.0);
        break;
      case DataType::kString:
        strings_.emplace_back();
        break;
      case DataType::kIntArray:
        arrays_.emplace_back();
        break;
      case DataType::kNull:
        break;
    }
    ++size_;
    null_bitmap_.push_back(true);
  }
}

int64_t Column::ByteSize() const {
  int64_t bytes = 0;
  switch (type_) {
    case DataType::kInt64:
    case DataType::kBool:
      bytes = static_cast<int64_t>(ints_.size() * sizeof(int64_t));
      break;
    case DataType::kDouble:
      bytes = static_cast<int64_t>(doubles_.size() * sizeof(double));
      break;
    case DataType::kString:
      for (const std::string& s : strings_) {
        bytes += static_cast<int64_t>(s.size()) + 16;  // header estimate
      }
      break;
    case DataType::kIntArray:
      for (const IntArray& a : arrays_) {
        bytes += static_cast<int64_t>(a.size() * sizeof(int64_t)) + 16;
      }
      break;
    case DataType::kNull:
      break;
  }
  if (!null_bitmap_.empty()) bytes += static_cast<int64_t>(size_ / 8 + 1);
  return bytes;
}

}  // namespace orpheus::rel
