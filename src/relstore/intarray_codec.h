// Range/delta encoding for sorted integer arrays.
//
// §3.2 of the paper notes that the storage of the array-based data
// models "can be further reduced by applying compression techniques
// like range-encoding". This codec implements that ablation for the
// rlist/vlist columns: a sorted rid list is split into maximal runs
// [start, start+len), each emitted as a varint-encoded (gap, length)
// pair. Version rlists are long runs of consecutive rids (records are
// assigned ids in commit order), so this compresses them well.

#ifndef ORPHEUS_RELSTORE_INTARRAY_CODEC_H_
#define ORPHEUS_RELSTORE_INTARRAY_CODEC_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "relstore/types.h"

namespace orpheus::rel {

// Encodes a sorted, duplicate-free array. Returns InvalidArgument if
// the input is not strictly increasing.
Result<std::string> EncodeSortedArray(const IntArray& values);

// Decodes a buffer produced by EncodeSortedArray.
Result<IntArray> DecodeSortedArray(const std::string& encoded);

// Bytes the plain representation would use (8 per element).
inline int64_t PlainSize(const IntArray& values) {
  return static_cast<int64_t>(values.size()) * 8;
}

}  // namespace orpheus::rel

#endif  // ORPHEUS_RELSTORE_INTARRAY_CODEC_H_
