// Table: a named base relation — columnar payload plus primary key,
// secondary indexes, and a physical-clustering marker.
//
// Physical model. relstore is an in-memory engine, but the paper's
// cost analysis (Appendix D.1) is about page I/O, so tables expose a
// simple page model: rows live in insertion order (or sorted by the
// clustering column after ClusterBy), packed `rows_per_page()` to a
// page. The executor counts page touches against this model so the
// Figure 19 experiments can report modeled I/O alongside wall time.
//
// Index maintenance is lazy: DML invalidates, the next lookup rebuilds.
// This matches the access pattern of OrpheusDB (bulk commit, then many
// checkouts).
//
// Thread-safety: the payload is not internally synchronized — the
// engine's discipline is single-writer: all DML/DDL happens under the
// engine's exclusive lock, and scan workers only ever read
// chunk()/data(). The one mutation a READ statement can perform — the
// lazy index (re)build in EnsureIndex/LookupInt — is serialized by an
// internal mutex, so concurrent read-only statements (which share the
// engine lock) may race to build the same index safely: one builds,
// the others wait and reuse it. Index postings handed out by
// BuiltIndex stay immutable until the next DML, which cannot overlap
// a reader by the engine-lock contract.

#ifndef ORPHEUS_RELSTORE_TABLE_H_
#define ORPHEUS_RELSTORE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relstore/chunk.h"

namespace orpheus::rel {

class Table {
 public:
  Table(std::string name, Schema schema, std::vector<std::string> primary_key);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return chunk_.schema(); }
  const std::vector<std::string>& primary_key() const { return primary_key_; }

  const Chunk& chunk() const { return chunk_; }
  Chunk& mutable_chunk() {
    InvalidateIndexes();
    return chunk_;
  }
  // Read-only access that does not invalidate indexes.
  const Chunk& data() const { return chunk_; }

  size_t num_rows() const { return chunk_.num_rows(); }

  // --- DML helpers -------------------------------------------------

  Status AppendRow(const std::vector<Value>& values);

  // Schema evolution (the middleware's ALTER TABLE equivalents).
  Status AddColumn(const std::string& name, DataType type);
  Status AlterColumnType(const std::string& name, DataType new_type);

  // --- Indexing ----------------------------------------------------

  // Declares a (non-unique) index on an INT column. Building is lazy.
  Status DeclareIndex(const std::string& column);
  bool HasIndex(const std::string& column) const;

  // Columns with a declared index, in sorted order (snapshot codec;
  // deterministic so snapshots of equal states are byte-equal).
  std::vector<std::string> DeclaredIndexColumns() const;

  // Row positions whose `column` equals `key`; empty if none.
  // Builds the index on first use after a modification.
  //
  // Concurrency: LookupInt may rebuild a stale index, so it is not
  // safe to call from scan workers directly. Call EnsureIndex first
  // (on the coordinating thread); after it succeeds, LookupInt is a
  // pure read and may be called concurrently until the next DML.
  // Batched probe loops should prefer BuiltIndex, which resolves the
  // column name once and hands workers a plain const map.
  const std::vector<uint32_t>* LookupInt(const std::string& column, int64_t key);

  // Forces the (declared) index on `column` to be built now, so that
  // subsequent LookupInt/BuiltIndex calls are read-only. Errors if no
  // index was declared on `column`.
  Status EnsureIndex(const std::string& column);

  // Postings of a built index: key -> row positions in insertion
  // (ascending) order. Returns nullptr unless a preceding
  // EnsureIndex(column) succeeded and no DML has run since.
  //
  // Concurrency: the returned map is immutable until the next DML /
  // InvalidateIndexes, so workers may probe it freely while the
  // coordinating thread holds the table alive (the executor's INL
  // probe batches do exactly this).
  using IntIndexMap = std::unordered_map<int64_t, std::vector<uint32_t>>;
  const IntIndexMap* BuiltIndex(const std::string& column) const;

  void InvalidateIndexes();

  // --- Physical layout ---------------------------------------------

  // Sorts rows by an INT column and records it as the clustering key.
  Status ClusterBy(const std::string& column);
  const std::string& clustered_on() const { return clustered_on_; }

  // Restores the clustering marker without re-sorting (snapshot
  // restore: rows were serialized already in clustered order).
  void RestoreClusteredMarker(std::string column) {
    clustered_on_ = std::move(column);
    BumpEpoch();  // the marker is part of the serialized form
  }

  // Page model: how many rows share a (simulated) 8 KiB page, derived
  // from the average row width.
  int64_t rows_per_page() const;
  int64_t num_pages() const;
  // Page number of a row position under the current physical order.
  int64_t PageOfRow(size_t row) const { return static_cast<int64_t>(row) / rows_per_page(); }

  int64_t ByteSize() const;

  // Approximate index footprint (hash buckets + postings), counted into
  // storage sizes as the paper does ("we count the index size as well").
  int64_t IndexByteSize() const;

  // --- Dirty tracking (incremental checkpoints) --------------------
  //
  // A process-wide monotonic stamp, advanced on construction and by
  // every path that can change the table's serialized bytes (all DML
  // funnels through InvalidateIndexes; DeclareIndex changes the
  // encoded index list without touching data). The storage manager
  // records the stamp at each checkpoint: an unchanged stamp means the
  // segment on disk is still exact. The counter is global, never
  // per-table, so a dropped-and-recreated table can never alias a
  // stale recorded stamp. Conservative by design — mutable_chunk()
  // marks dirty even if the caller ends up not writing.
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

 private:
  struct IntIndex {
    bool built = false;
    IntIndexMap map;
  };

  // Caller must hold index_mu_.
  Status BuildIndex(const std::string& column, IntIndex* index);

  // Serializes lazy index builds against each other (concurrent
  // read-only statements); see the class comment.
  mutable std::mutex index_mu_;

  void BumpEpoch() { epoch_.store(NextEpoch(), std::memory_order_relaxed); }
  static uint64_t NextEpoch();

  std::string name_;
  Chunk chunk_;
  std::vector<std::string> primary_key_;
  std::unordered_map<std::string, IntIndex> indexes_;
  std::string clustered_on_;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace orpheus::rel

#endif  // ORPHEUS_RELSTORE_TABLE_H_
