#include "relstore/chunk.h"

#include <cassert>

namespace orpheus::rel {

Chunk::Chunk(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(static_cast<size_t>(schema_.num_columns()));
  for (const ColumnDef& def : schema_.columns()) {
    columns_.emplace_back(def.type);
  }
}

void Chunk::AppendRow(const std::vector<Value>& values) {
  assert(static_cast<int>(values.size()) == schema_.num_columns());
  for (size_t i = 0; i < values.size(); ++i) {
    columns_[i].Append(values[i]);
  }
}

void Chunk::AppendRowFrom(const Chunk& src, size_t row) {
  assert(src.num_columns() == num_columns());
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].AppendFrom(src.columns_[i], row);
  }
}

void Chunk::GatherFrom(const Chunk& src, const std::vector<uint32_t>& rows) {
  assert(src.num_columns() == num_columns());
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].Gather(src.columns_[i], rows);
  }
}

void Chunk::FilterRows(const std::vector<bool>& keep) {
  for (Column& col : columns_) col.Filter(keep);
}

void Chunk::Clear() {
  for (Column& col : columns_) col.Clear();
}

void Chunk::AddNullColumn(const std::string& name, DataType type) {
  size_t rows = num_rows();
  schema_.AddColumn(name, type);
  columns_.emplace_back(type);
  columns_.back().AppendNulls(rows);
}

Status Chunk::ConvertColumn(int col, DataType new_type) {
  ORPHEUS_RETURN_NOT_OK(columns_[static_cast<size_t>(col)].ConvertTo(new_type));
  Schema updated;
  for (int i = 0; i < schema_.num_columns(); ++i) {
    updated.AddColumn(schema_.column(i).name,
                      i == col ? new_type : schema_.column(i).type);
  }
  schema_ = std::move(updated);
  return Status::OK();
}

int64_t Chunk::ByteSize() const {
  int64_t bytes = 0;
  for (const Column& col : columns_) bytes += col.ByteSize();
  return bytes;
}

std::string Chunk::ToString(size_t max_rows) const {
  std::string out;
  for (int c = 0; c < schema_.num_columns(); ++c) {
    if (c > 0) out += " | ";
    out += schema_.column(c).name;
  }
  out += "\n";
  size_t n = std::min(num_rows(), max_rows);
  for (size_t r = 0; r < n; ++r) {
    for (int c = 0; c < num_columns(); ++c) {
      if (c > 0) out += " | ";
      out += Get(r, c).ToString();
    }
    out += "\n";
  }
  if (num_rows() > n) {
    out += "... (" + std::to_string(num_rows() - n) + " more rows)\n";
  }
  return out;
}

}  // namespace orpheus::rel
