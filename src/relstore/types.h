// Data types supported by the relstore engine.
//
// The set mirrors what OrpheusDB needs from its backing database
// (PostgreSQL in the paper): scalars for data attributes plus an
// integer-array type used for the `vlist`/`rlist` versioning columns.

#ifndef ORPHEUS_RELSTORE_TYPES_H_
#define ORPHEUS_RELSTORE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace orpheus::rel {

// Sorted-or-not is a property of how arrays are used, not of the type;
// `vlist` arrays are kept sorted by the middleware so `<@` can binary
// search.
using IntArray = std::vector<int64_t>;

enum class DataType {
  kNull = 0,  // type of untyped NULL literals only; not a column type
  kInt64,
  kDouble,
  kString,
  kBool,
  kIntArray,
};

// SQL spelling of a type ("INT", "INT[]", ...).
const char* DataTypeName(DataType type);

// Parses a SQL type name (case-insensitive); returns kNull if unknown.
DataType DataTypeFromName(const std::string& name);

}  // namespace orpheus::rel

#endif  // ORPHEUS_RELSTORE_TYPES_H_
