// Database: the catalog plus the SQL entry point. This is the whole
// "unaware RDBMS" surface that OrpheusDB talks to — the middleware
// sends SQL text in, gets row chunks back, and the engine has no
// notion of versions.

#ifndef ORPHEUS_RELSTORE_DATABASE_H_
#define ORPHEUS_RELSTORE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "relstore/executor.h"
#include "relstore/table.h"

namespace orpheus::rel {

class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- SQL entry point ----------------------------------------------

  // Parses and executes one statement. SELECT returns its rows;
  // SELECT INTO and DML return an empty chunk.
  Result<Chunk> Execute(std::string_view sql);

  // Executes semicolon-separated statements, returning the last
  // statement's result.
  Result<Chunk> ExecuteScript(std::string_view script);

  // --- Direct catalog access (used by the middleware for bulk paths
  // --- and by tests; equivalent to what COPY would be in Postgres) ---

  Status CreateTable(const std::string& name, Schema schema,
                     std::vector<std::string> primary_key = {});
  Status DropTable(const std::string& name, bool if_exists = false);
  bool HasTable(const std::string& name) const;
  Result<Table*> GetTable(const std::string& name);
  std::vector<std::string> ListTables() const;

  // Registers a materialized chunk as a new table (zero-copy INTO).
  Status AdoptTable(const std::string& name, Chunk chunk,
                    std::vector<std::string> primary_key = {});

  // Registers a fully-built Table object (snapshot restore path: the
  // caller has already installed payload, declared indexes, and the
  // clustering marker).
  Status AdoptTableObject(std::unique_ptr<Table> table);

  // --- Settings and observability ------------------------------------

  JoinMethod join_method() const { return join_method_; }
  void set_join_method(JoinMethod method) { join_method_ = method; }

  ExecStats* stats() { return &stats_; }
  void ResetStats() { stats_.Reset(); }

  // Total payload bytes across tables (+ index estimate), as the
  // paper's storage-size metric counts them.
  int64_t TotalByteSize() const;

 private:
  friend class Executor;

  Result<Chunk> ExecuteStatement(Statement* stmt);
  Result<Chunk> ExecuteInsert(Statement* stmt);
  Result<Chunk> ExecuteUpdate(Statement* stmt);
  Result<Chunk> ExecuteDelete(Statement* stmt);

  std::map<std::string, std::unique_ptr<Table>> tables_;
  JoinMethod join_method_ = JoinMethod::kHash;
  ExecStats stats_;
};

}  // namespace orpheus::rel

#endif  // ORPHEUS_RELSTORE_DATABASE_H_
