// Chunk: a materialized columnar row set — the unit flowing between
// executor operators and the payload of a base table.

#ifndef ORPHEUS_RELSTORE_CHUNK_H_
#define ORPHEUS_RELSTORE_CHUNK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "relstore/column.h"
#include "relstore/schema.h"

namespace orpheus::rel {

class Chunk {
 public:
  Chunk() = default;
  explicit Chunk(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  Column& mutable_column(int i) { return columns_[static_cast<size_t>(i)]; }

  Value Get(size_t row, int col) const { return columns_[static_cast<size_t>(col)].Get(row); }

  // Appends a full row of boxed values (count must match schema).
  void AppendRow(const std::vector<Value>& values);

  // Appends row `row` of `src`, whose schema must be layout-compatible
  // (same column count and types; names may differ).
  void AppendRowFrom(const Chunk& src, size_t row);

  // Appends the selected rows of `src` column-by-column (bulk gather).
  void GatherFrom(const Chunk& src, const std::vector<uint32_t>& rows);

  // Drops rows where keep[i] == false.
  void FilterRows(const std::vector<bool>& keep);

  void Clear();

  // Appends a new column filled with NULLs (ALTER TABLE ADD COLUMN).
  void AddNullColumn(const std::string& name, DataType type);

  // Widens column `col` in place (ALTER TABLE ALTER COLUMN TYPE).
  Status ConvertColumn(int col, DataType new_type);

  int64_t ByteSize() const;

  // Debug/CLI rendering: header + up to `max_rows` rows.
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
};

}  // namespace orpheus::rel

#endif  // ORPHEUS_RELSTORE_CHUNK_H_
