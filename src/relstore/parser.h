// Recursive-descent parser for the relstore SQL dialect.

#ifndef ORPHEUS_RELSTORE_PARSER_H_
#define ORPHEUS_RELSTORE_PARSER_H_

#include <memory>
#include <string_view>

#include "common/status.h"
#include "relstore/sql_ast.h"

namespace orpheus::rel {

// Parses one statement (optionally terminated by ';').
Result<std::unique_ptr<Statement>> ParseSql(std::string_view sql);

}  // namespace orpheus::rel

#endif  // ORPHEUS_RELSTORE_PARSER_H_
