#include "relstore/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_set>

#include "common/str_util.h"

namespace orpheus::rel {

namespace {

// Keywords of the dialect. Anything else alphabetic is an identifier.
const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "select", "into",   "from",    "where",  "group",  "by",     "order",
      "limit",  "insert", "values",  "update", "set",    "delete", "create",
      "table",  "drop",   "index",   "on",     "primary", "key",   "and",
      "or",     "not",    "in",      "as",     "array",  "null",   "true",
      "false",  "distinct", "asc",   "desc",   "if",     "exists", "cluster",
      "having",
      "int",    "integer", "bigint", "double", "float",  "real",   "decimal",
      "numeric", "text",  "string",  "varchar", "bool",  "boolean",
  };
  return *kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      std::string word(sql.substr(start, i - start));
      std::string lower = ToLower(word);
      if (Keywords().count(lower) > 0) {
        tok.type = TokenType::kKeyword;
        tok.text = lower;
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = word;
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) || sql[i] == '.' ||
                       sql[i] == 'e' || sql[i] == 'E' ||
                       ((sql[i] == '+' || sql[i] == '-') && i > start &&
                        (sql[i - 1] == 'e' || sql[i - 1] == 'E')))) {
        if (sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E') is_float = true;
        ++i;
      }
      std::string num(sql.substr(start, i - start));
      if (is_float) {
        tok.type = TokenType::kFloat;
        tok.double_value = std::strtod(num.c_str(), nullptr);
      } else {
        tok.type = TokenType::kInteger;
        tok.int_value = std::strtoll(num.c_str(), nullptr, 10);
      }
      tok.text = std::move(num);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string body;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            body.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        body.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(tok.offset));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(body);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Multi-char operators first.
    auto try_op = [&](std::string_view op) -> bool {
      if (sql.substr(i, op.size()) == op) {
        tok.type = TokenType::kOperator;
        tok.text = std::string(op);
        i += op.size();
        tokens.push_back(tok);
        return true;
      }
      return false;
    };
    if (try_op("<@") || try_op("<=") || try_op(">=") || try_op("<>") ||
        try_op("!=") || try_op("||")) {
      continue;
    }
    static constexpr std::string_view kSingle = "(),.;=<>+-*/%[]";
    if (kSingle.find(c) != std::string_view::npos) {
      tok.type = TokenType::kOperator;
      tok.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(tok));
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace orpheus::rel
