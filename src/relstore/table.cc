#include "relstore/table.h"

#include <algorithm>
#include <numeric>

namespace orpheus::rel {

uint64_t Table::NextEpoch() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

Table::Table(std::string name, Schema schema, std::vector<std::string> primary_key)
    : name_(std::move(name)),
      chunk_(std::move(schema)),
      primary_key_(std::move(primary_key)),
      epoch_(NextEpoch()) {}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (static_cast<int>(values.size()) != schema().num_columns()) {
    return Status::InvalidArgument(
        "row arity mismatch for table " + name_ + ": got " +
        std::to_string(values.size()) + ", want " +
        std::to_string(schema().num_columns()));
  }
  chunk_.AppendRow(values);
  InvalidateIndexes();
  return Status::OK();
}

Status Table::AddColumn(const std::string& name, DataType type) {
  if (schema().FindColumn(name) >= 0) {
    return Status::AlreadyExists("column already exists: " + name);
  }
  chunk_.AddNullColumn(name, type);
  InvalidateIndexes();
  return Status::OK();
}

Status Table::AlterColumnType(const std::string& name, DataType new_type) {
  int col = schema().FindColumn(name);
  if (col < 0) return Status::NotFound("no column " + name + " in " + name_);
  ORPHEUS_RETURN_NOT_OK(chunk_.ConvertColumn(col, new_type));
  InvalidateIndexes();
  return Status::OK();
}

Status Table::DeclareIndex(const std::string& column) {
  int col = schema().FindColumn(column);
  if (col < 0) return Status::NotFound("no column " + column + " in " + name_);
  if (schema().column(col).type != DataType::kInt64) {
    return Status::NotSupported("indexes are supported on INT columns only");
  }
  indexes_.try_emplace(column);
  // The declared-index list is part of the table's serialized form.
  BumpEpoch();
  return Status::OK();
}

bool Table::HasIndex(const std::string& column) const {
  return indexes_.count(column) > 0;
}

std::vector<std::string> Table::DeclaredIndexColumns() const {
  std::vector<std::string> columns;
  columns.reserve(indexes_.size());
  for (const auto& [column, index] : indexes_) columns.push_back(column);
  std::sort(columns.begin(), columns.end());
  return columns;
}

Status Table::BuildIndex(const std::string& column, IntIndex* index) {
  int col = schema().FindColumn(column);
  if (col < 0) return Status::NotFound("no column " + column + " in " + name_);
  index->map.clear();
  const Column& column_data = chunk_.column(col);
  const std::vector<int64_t>& keys = column_data.ints();
  index->map.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    if (column_data.IsNull(i)) continue;  // NULLs are not indexed
    index->map[keys[i]].push_back(static_cast<uint32_t>(i));
  }
  index->built = true;
  return Status::OK();
}

const std::vector<uint32_t>* Table::LookupInt(const std::string& column, int64_t key) {
  auto it = indexes_.find(column);
  if (it == indexes_.end()) return nullptr;
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    if (!it->second.built) {
      if (!BuildIndex(column, &it->second).ok()) return nullptr;
    }
  }
  auto hit = it->second.map.find(key);
  if (hit == it->second.map.end()) {
    static const std::vector<uint32_t> kEmpty;
    return &kEmpty;
  }
  return &hit->second;
}

const Table::IntIndexMap* Table::BuiltIndex(const std::string& column) const {
  auto it = indexes_.find(column);
  if (it == indexes_.end()) return nullptr;
  std::lock_guard<std::mutex> lock(index_mu_);
  return it->second.built ? &it->second.map : nullptr;
}

Status Table::EnsureIndex(const std::string& column) {
  auto it = indexes_.find(column);
  if (it == indexes_.end()) {
    return Status::NotFound("no index declared on " + column + " in " + name_);
  }
  std::lock_guard<std::mutex> lock(index_mu_);
  if (!it->second.built) {
    ORPHEUS_RETURN_NOT_OK(BuildIndex(column, &it->second));
  }
  return Status::OK();
}

void Table::InvalidateIndexes() {
  BumpEpoch();
  std::lock_guard<std::mutex> lock(index_mu_);
  for (auto& [name, index] : indexes_) {
    index.built = false;
    index.map.clear();
  }
}

Status Table::ClusterBy(const std::string& column) {
  int col = schema().FindColumn(column);
  if (col < 0) return Status::NotFound("no column " + column + " in " + name_);
  if (schema().column(col).type != DataType::kInt64) {
    return Status::NotSupported("CLUSTER BY is supported on INT columns only");
  }
  const std::vector<int64_t>& keys = chunk_.column(col).ints();
  std::vector<uint32_t> order(chunk_.num_rows());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&keys](uint32_t a, uint32_t b) { return keys[a] < keys[b]; });
  Chunk sorted(schema());
  sorted.GatherFrom(chunk_, order);
  chunk_ = std::move(sorted);
  clustered_on_ = column;
  InvalidateIndexes();
  return Status::OK();
}

int64_t Table::rows_per_page() const {
  constexpr int64_t kPageBytes = 8192;
  size_t rows = chunk_.num_rows();
  if (rows == 0) return 1;
  int64_t row_bytes = std::max<int64_t>(1, chunk_.ByteSize() / static_cast<int64_t>(rows));
  return std::max<int64_t>(1, kPageBytes / row_bytes);
}

int64_t Table::num_pages() const {
  int64_t rpp = rows_per_page();
  return (static_cast<int64_t>(chunk_.num_rows()) + rpp - 1) / rpp;
}

int64_t Table::ByteSize() const { return chunk_.ByteSize(); }

int64_t Table::IndexByteSize() const {
  // Estimate whether built or not: one posting per row plus bucket
  // overhead per index, matching how the paper counts "index size".
  return static_cast<int64_t>(indexes_.size()) *
         static_cast<int64_t>(chunk_.num_rows()) * 16;
}

}  // namespace orpheus::rel
