// Value: a single typed SQL value crossing the expression-evaluation
// boundary. Bulk storage is columnar (see column.h); Values are only
// materialized for predicates, projections of computed expressions, and
// literals, so the representation favours clarity over compactness.

#ifndef ORPHEUS_RELSTORE_VALUE_H_
#define ORPHEUS_RELSTORE_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "relstore/types.h"

namespace orpheus::rel {

class Value {
 public:
  // NULL value.
  Value() : type_(DataType::kNull) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) {
    Value out;
    out.type_ = DataType::kInt64;
    out.int_ = v;
    return out;
  }
  static Value Double(double v) {
    Value out;
    out.type_ = DataType::kDouble;
    out.double_ = v;
    return out;
  }
  static Value Bool(bool v) {
    Value out;
    out.type_ = DataType::kBool;
    out.int_ = v ? 1 : 0;
    return out;
  }
  static Value String(std::string v) {
    Value out;
    out.type_ = DataType::kString;
    out.string_ = std::move(v);
    return out;
  }
  static Value Array(IntArray v) {
    Value out;
    out.type_ = DataType::kIntArray;
    out.array_ = std::make_shared<IntArray>(std::move(v));
    return out;
  }
  static Value ArrayPtr(std::shared_ptr<IntArray> v) {
    Value out;
    out.type_ = DataType::kIntArray;
    out.array_ = std::move(v);
    return out;
  }

  DataType type() const { return type_; }
  bool is_null() const { return type_ == DataType::kNull; }

  // Typed accessors; callers must check type() first (asserted in
  // debug builds via the column/eval layers).
  int64_t AsInt() const { return int_; }
  double AsDouble() const {
    return type_ == DataType::kInt64 ? static_cast<double>(int_) : double_;
  }
  bool AsBool() const { return int_ != 0; }
  const std::string& AsString() const { return string_; }
  const IntArray& AsArray() const { return *array_; }
  const std::shared_ptr<IntArray>& array_ptr() const { return array_; }

  // True if numeric (int or double); such values compare cross-type.
  bool IsNumeric() const {
    return type_ == DataType::kInt64 || type_ == DataType::kDouble;
  }

  // SQL-ish equality; numeric values compare by value across
  // int/double. NULL equals nothing (including NULL).
  bool Equals(const Value& other) const;

  // Three-way comparison for ORDER BY and merge joins: -1/0/+1.
  // NULLs sort first. Arrays compare lexicographically.
  int Compare(const Value& other) const;

  // Rendering for result printing and CSV export.
  std::string ToString() const;

  // Hash consistent with Equals (numeric values hash as double when
  // fractional, as int otherwise).
  size_t Hash() const;

 private:
  DataType type_;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::shared_ptr<IntArray> array_;
};

}  // namespace orpheus::rel

#endif  // ORPHEUS_RELSTORE_VALUE_H_
