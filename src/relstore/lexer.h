// SQL lexer: turns statement text into a token stream. Keywords are
// recognized case-insensitively; identifiers keep their original
// spelling.

#ifndef ORPHEUS_RELSTORE_LEXER_H_
#define ORPHEUS_RELSTORE_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace orpheus::rel {

enum class TokenType {
  kIdentifier,
  kKeyword,   // normalized to lowercase in `text`
  kInteger,
  kFloat,
  kString,    // body without quotes, '' unescaped
  kOperator,  // punctuation and multi-char operators, in `text`
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;    // keyword/operator/identifier/string body
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t offset = 0;   // byte offset in the input, for error messages
};

// Tokenizes `sql`. The final token is always kEnd.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace orpheus::rel

#endif  // ORPHEUS_RELSTORE_LEXER_H_
