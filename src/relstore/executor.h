// Query executor: runs analyzed SELECT statements against the catalog.
//
// Plan shape (mirrors what PostgreSQL does for the paper's queries):
//   FROM inputs -> per-input pushed-down filters -> pairwise joins
//   (hash / merge / index-nested-loop, selectable) -> residual filter
//   -> aggregation or projection (incl. unnest expansion) -> DISTINCT
//   -> ORDER BY -> LIMIT.
//
// Parallel batched execution. Filter evaluation, computed projections,
// aggregation, hash-join build and probe, the index-nested-loop probe
// loop, merge-join key sorts, and ORDER BY all operate on fixed-size
// row batches (kScanBatchRows) scheduled across the shared execution
// pool (common/thread_pool.h, the --threads knob). Batch boundaries
// depend only on the data, never on the thread count, and per-batch
// partial results (selection vectors, aggregate states, hash-table
// partials, join match lists) are merged on the calling thread in
// batch order; sorts use the deterministic parallel merge sort
// (ParallelStableSort), whose run/merge tree is likewise fixed by the
// input size alone. So results are bit-identical for every --threads
// setting, including the floating-point aggregates. With --threads=1
// batches run serially in order on the caller.
// Note the invariant is thread-count independence, not equality with
// the pre-batching code: inputs up to one batch (most unit tests) are
// processed exactly as before, but a float SUM/AVG over several
// batches accumulates per-batch partial sums, whose last-bit rounding
// can differ from the old row-sequential accumulation — identically
// at every thread setting.
// docs/QUERY_ENGINE.md spells the contract out in full.
//
// Thread-safety and ownership contracts:
//  - Executor is a thin stateless facade over Database*; it does not
//    own the database. One Executor serves one statement at a time:
//    RunSelect is NOT safe to call concurrently on the same Database
//    (it mutates catalog stats and, for INTO/DML, catalog state).
//    Intra-query parallelism is internal and invisible to callers.
//  - Worker threads only ever read the input chunks and write to
//    batch-private buffers; all merging happens on the calling thread.
//  - Table indexes probed by INL workers are forced up front on the
//    calling thread (Table::EnsureIndex), after which workers read the
//    immutable postings map via Table::BuiltIndex.
//
// The executor also charges a simple page-I/O model per operator (see
// table.h) so experiments can report modeled I/O next to wall time.

#ifndef ORPHEUS_RELSTORE_EXECUTOR_H_
#define ORPHEUS_RELSTORE_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "relstore/chunk.h"
#include "relstore/sql_ast.h"
#include "relstore/table.h"

namespace orpheus::rel {

class Database;
class Evaluator;

// Rows per scan batch. Fixed (not derived from the thread count) so
// that batch decomposition — and therefore every merged result,
// including float aggregate rounding — is identical no matter how many
// threads execute the batches. Inputs smaller than one batch take a
// single-batch path with zero scheduling overhead.
inline constexpr size_t kScanBatchRows = 2048;

// Join algorithm selection, as in the Appendix D.1 experiments.
enum class JoinMethod {
  kHash,             // build on the smaller side, probe the larger
  kMerge,            // sort-merge (sort skipped on clustered inputs)
  kIndexNestedLoop,  // probe a base-table index per outer row
};

// One logical execution counter: a per-Database atomic (the resettable
// oracle the benches and tests diff) that mirrors every bump into a
// process-wide metrics-registry counter, so the engine's `metrics`
// scrape sees executor activity without a second set of call sites.
class ExecStatCell {
 public:
  ExecStatCell(const char* metric_name, const char* help)
      : metric_(obs::GlobalMetrics().GetCounter(metric_name, help)) {}

  void operator+=(int64_t delta) {
    local_.fetch_add(delta, std::memory_order_relaxed);
    metric_->Inc(static_cast<uint64_t>(delta));
  }
  operator int64_t() const {  // NOLINT(google-explicit-constructor)
    return local_.load(std::memory_order_relaxed);
  }
  // Resets the local oracle only; registry counters are monotonic.
  void Reset() { local_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> local_{0};
  obs::Counter* metric_;
};

// Logical execution counters, cumulative until Reset(). Updated by
// each statement's coordinating thread (never from scan workers),
// after each operator. Relaxed atomics: concurrent read-only
// statements running under the engine's shared lock bump them from
// several coordinator threads at once; individual counters stay exact,
// cross-counter consistency is best-effort.
struct ExecStats {
  // rows examined by scans and probes
  ExecStatCell rows_scanned{"orpheus_exec_rows_scanned_total",
                            "Rows scanned by the executor."};
  // point lookups into table indexes
  ExecStatCell index_probes{
      "orpheus_exec_index_probes_total",
      "Primary-index probes issued by index-nested-loop joins."};
  // modeled 8 KiB page touches
  ExecStatCell pages_read{"orpheus_exec_pages_read_total",
                          "Logical pages touched by scans."};
  void Reset() {
    rows_scanned.Reset();
    index_probes.Reset();
    pages_read.Reset();
  }
};

class Executor {
 public:
  explicit Executor(Database* db) : db_(db) {}

  // Executes a SELECT (without INTO handling; Database applies INTO).
  Result<Chunk> RunSelect(const SelectStmt& select);

 private:
  // A FROM-clause input: either a view onto a base table's chunk (no
  // copy) or an owned chunk from a subquery / pushed-down filter.
  struct Input {
    const Chunk* data = nullptr;
    std::unique_ptr<Chunk> owned;  // set iff materialized
    Schema schema;                 // alias-qualified names
    Table* base = nullptr;         // non-null iff unfiltered base table
    std::string alias;
  };

  Result<Input> ResolveTableRef(const TableRef& ref);

  // Evaluates the conjunction of `conjuncts` (already bound against
  // data's schema via `eval`) over every row of `data`, appending the
  // passing row ids to *sel in row order. Batches are fanned out over
  // the execution pool; on error, the lowest-batch error wins.
  Status FilterSelection(const Evaluator& eval,
                         const std::vector<const Expr*>& conjuncts,
                         const Chunk& data, std::vector<uint32_t>* sel);

  // Evaluates a bound scalar expression for every selected row into
  // (*out)[i] (pre-sized by this call), batched over the pool.
  Status EvalScalarBatched(const Evaluator& eval, const Expr& expr,
                           const Chunk& data,
                           const std::vector<uint32_t>& sel,
                           std::vector<Value>* out);

  // Applies the single-input conjuncts of `where` to each input
  // (predicate pushdown); materializes filtered inputs.
  Status PushDownFilters(std::vector<Input>* inputs,
                         std::vector<const Expr*>* conjuncts);

  // Joins inputs left-to-right into one chunk; consumes `conjuncts`
  // that serve as equi-join keys, leaving residual predicates.
  Result<Input> JoinInputs(std::vector<Input> inputs,
                           std::vector<const Expr*>* conjuncts);

  // Joins two inputs on the given equi-key pairs with the configured
  // JoinMethod (falling back to hash when the method's preconditions
  // don't hold — see docs/QUERY_ENGINE.md). Build, probe, key sorts,
  // and the output materialization run batch-parallel on the pool;
  // per-batch match lists are concatenated in batch order so the
  // output row order matches the serial algorithms exactly.
  Result<Input> JoinPair(Input left, Input right,
                         const std::vector<std::pair<const Expr*, const Expr*>>& keys);

  // Grouped/global aggregation over the selected rows. Internally
  // computes per-batch partial aggregate states and merges them in
  // batch order (deterministic group order = first occurrence in row
  // order; deterministic float rounding for any thread count).
  Result<Chunk> Aggregate(const SelectStmt& select, const Input& input,
                          const std::vector<uint32_t>& sel);
  Result<Chunk> Project(const SelectStmt& select, const Input& input,
                        const std::vector<uint32_t>& sel);

  Status ApplyHaving(const SelectStmt& select, Chunk* out);
  Status ApplyDistinct(Chunk* out);
  // ORDER BY keys are evaluated batch-parallel and the row permutation
  // is sorted with the deterministic parallel merge sort.
  Status ApplyOrderByLimit(const SelectStmt& select, Chunk* out);

  Database* db_;
};

}  // namespace orpheus::rel

#endif  // ORPHEUS_RELSTORE_EXECUTOR_H_
