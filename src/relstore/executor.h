// Query executor: runs analyzed SELECT statements against the catalog.
//
// Plan shape (mirrors what PostgreSQL does for the paper's queries):
//   FROM inputs -> per-input pushed-down filters -> pairwise joins
//   (hash / merge / index-nested-loop, selectable) -> residual filter
//   -> aggregation or projection (incl. unnest expansion) -> DISTINCT
//   -> ORDER BY -> LIMIT.
//
// The executor also charges a simple page-I/O model per operator (see
// table.h) so experiments can report modeled I/O next to wall time.

#ifndef ORPHEUS_RELSTORE_EXECUTOR_H_
#define ORPHEUS_RELSTORE_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "relstore/chunk.h"
#include "relstore/sql_ast.h"
#include "relstore/table.h"

namespace orpheus::rel {

class Database;

// Join algorithm selection, as in the Appendix D.1 experiments.
enum class JoinMethod {
  kHash,             // build on the smaller side, probe the larger
  kMerge,            // sort-merge (sort skipped on clustered inputs)
  kIndexNestedLoop,  // probe a base-table index per outer row
};

// Logical execution counters, cumulative until Reset().
struct ExecStats {
  int64_t rows_scanned = 0;   // rows examined by scans and probes
  int64_t index_probes = 0;   // point lookups into table indexes
  int64_t pages_read = 0;     // modeled 8 KiB page touches
  void Reset() { rows_scanned = index_probes = pages_read = 0; }
};

class Executor {
 public:
  explicit Executor(Database* db) : db_(db) {}

  // Executes a SELECT (without INTO handling; Database applies INTO).
  Result<Chunk> RunSelect(const SelectStmt& select);

 private:
  // A FROM-clause input: either a view onto a base table's chunk (no
  // copy) or an owned chunk from a subquery / pushed-down filter.
  struct Input {
    const Chunk* data = nullptr;
    std::unique_ptr<Chunk> owned;  // set iff materialized
    Schema schema;                 // alias-qualified names
    Table* base = nullptr;         // non-null iff unfiltered base table
    std::string alias;
  };

  Result<Input> ResolveTableRef(const TableRef& ref);

  // Applies the single-input conjuncts of `where` to each input
  // (predicate pushdown); materializes filtered inputs.
  Status PushDownFilters(std::vector<Input>* inputs,
                         std::vector<const Expr*>* conjuncts);

  // Joins inputs left-to-right into one chunk; consumes `conjuncts`
  // that serve as equi-join keys, leaving residual predicates.
  Result<Input> JoinInputs(std::vector<Input> inputs,
                           std::vector<const Expr*>* conjuncts);

  Result<Input> JoinPair(Input left, Input right,
                         const std::vector<std::pair<const Expr*, const Expr*>>& keys);

  Result<Chunk> Aggregate(const SelectStmt& select, const Input& input,
                          const std::vector<uint32_t>& sel);
  Result<Chunk> Project(const SelectStmt& select, const Input& input,
                        const std::vector<uint32_t>& sel);

  Status ApplyHaving(const SelectStmt& select, Chunk* out);
  Status ApplyDistinct(Chunk* out);
  Status ApplyOrderByLimit(const SelectStmt& select, Chunk* out);

  Database* db_;
};

}  // namespace orpheus::rel

#endif  // ORPHEUS_RELSTORE_EXECUTOR_H_
