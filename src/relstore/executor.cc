#include "relstore/executor.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "relstore/database.h"
#include "relstore/eval.h"

namespace orpheus::rel {

namespace {

// Executor-only registry series (rows/probes/pages mirror through
// ExecStatCell in executor.h). Cached lookup; per-call cost is one
// relaxed add.
obs::Counter* BatchCounter() {
  static obs::Counter* c = obs::GlobalMetrics().GetCounter(
      "orpheus_exec_batches_total",
      "Scan batches dispatched by the batched operators.");
  return c;
}

// Scan batches covering n rows; must agree with ParallelBatchFor's
// decomposition, hence the shared helper.
size_t NumScanBatches(size_t n) { return NumBatches(n, kScanBatchRows); }

// Collects column references appearing in an expression tree.
void CollectColumnRefs(const Expr& expr, std::vector<const Expr*>* out) {
  if (expr.kind == ExprKind::kColumnRef) out->push_back(&expr);
  for (const ExprPtr& arg : expr.args) CollectColumnRefs(*arg, out);
  // Subquery internals reference their own scopes; skip them.
}

// True if every column ref in `expr` resolves in `schema`.
bool ResolvableIn(const Expr& expr, const Schema& schema) {
  std::vector<const Expr*> refs;
  CollectColumnRefs(expr, &refs);
  for (const Expr* ref : refs) {
    if (!schema.Resolve(ref->column).ok()) return false;
  }
  return true;
}

void SplitConjuncts(const Expr* expr, std::vector<const Expr*>* out) {
  if (expr == nullptr) return;
  if (expr->kind == ExprKind::kBinary && expr->bin_op == BinOp::kAnd) {
    SplitConjuncts(expr->args[0].get(), out);
    SplitConjuncts(expr->args[1].get(), out);
    return;
  }
  out->push_back(expr);
}

bool ContainsAggregate(const Expr& expr) {
  if (expr.IsAggregate()) return true;
  for (const ExprPtr& arg : expr.args) {
    if (ContainsAggregate(*arg)) return true;
  }
  return false;
}

bool IsUnnestCall(const Expr& expr) {
  return expr.kind == ExprKind::kFunc && expr.func_name == "unnest";
}

// Serializes a value into a byte string for group-by / distinct keys.
void EncodeValue(const Value& v, std::string* out) {
  out->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case DataType::kNull:
      break;
    case DataType::kInt64:
    case DataType::kBool: {
      int64_t x = v.AsInt();
      out->append(reinterpret_cast<const char*>(&x), sizeof(x));
      break;
    }
    case DataType::kDouble: {
      double d = v.AsDouble();
      out->append(reinterpret_cast<const char*>(&d), sizeof(d));
      break;
    }
    case DataType::kString: {
      size_t len = v.AsString().size();
      out->append(reinterpret_cast<const char*>(&len), sizeof(len));
      out->append(v.AsString());
      break;
    }
    case DataType::kIntArray: {
      size_t len = v.AsArray().size();
      out->append(reinterpret_cast<const char*>(&len), sizeof(len));
      for (int64_t x : v.AsArray()) {
        out->append(reinterpret_cast<const char*>(&x), sizeof(x));
      }
      break;
    }
  }
}

DataType InferType(const Value& v) {
  return v.is_null() ? DataType::kInt64 : v.type();
}

// Strips an "alias." qualifier.
std::string BaseName(const std::string& name) {
  size_t dot = name.rfind('.');
  return dot == std::string::npos ? name : name.substr(dot + 1);
}

int64_t ChunkPages(const Chunk& chunk) {
  return chunk.ByteSize() / 8192 + 1;
}

// One probe batch's join output: parallel (left,right) row-id vectors.
struct MatchList {
  std::vector<uint32_t> l;
  std::vector<uint32_t> r;
};

// Concatenates per-batch match lists in batch order. Probe batches
// cover ascending probe-row ranges, so this reproduces the serial
// probe loop's output order exactly — for any thread count.
void AppendMatches(const std::vector<MatchList>& parts,
                   std::vector<uint32_t>* lidx, std::vector<uint32_t>* ridx) {
  size_t total = lidx->size();
  for (const MatchList& part : parts) total += part.l.size();
  lidx->reserve(total);
  ridx->reserve(total);
  for (const MatchList& part : parts) {
    lidx->insert(lidx->end(), part.l.begin(), part.l.end());
    ridx->insert(ridx->end(), part.r.begin(), part.r.end());
  }
}

// Merges per-batch partial hash tables in batch order. Build batches
// cover ascending row ranges, so appending postings batch-by-batch
// leaves every key's posting list in ascending row order — the serial
// build's order, independent of the thread count.
template <typename Map>
void MergeBuildParts(std::vector<Map>* parts, Map* hash) {
  for (Map& part : *parts) {
    for (auto& [key, rows] : part) {
      auto [it, inserted] = hash->try_emplace(key, std::move(rows));
      if (!inserted) {
        it->second.insert(it->second.end(), rows.begin(), rows.end());
      }
    }
  }
}

// Runs `build(begin, end, map*)` over [0, total) in kScanBatchRows
// batches and merges the per-batch maps in batch order; with one
// thread (or one batch) it builds straight into `hash` instead.
template <typename Map, typename BuildFn>
Status BatchedHashBuild(size_t total, bool serial, Map* hash,
                        const BuildFn& build) {
  const size_t nb = NumScanBatches(total);
  BatchCounter()->Inc(nb);
  if (serial || nb <= 1) {
    build(0, total, hash);
    return Status::OK();
  }
  std::vector<Map> parts(nb);
  ORPHEUS_RETURN_NOT_OK(ParallelBatchFor(
      total, kScanBatchRows, [&](size_t begin, size_t end, size_t b) -> Status {
        build(begin, end, &parts[b]);
        return Status::OK();
      }));
  MergeBuildParts(&parts, hash);
  return Status::OK();
}

// Runs `probe(begin, end, MatchList*)` over [0, total) in
// kScanBatchRows batches and concatenates the per-batch matches in
// batch order into (lidx, ridx); serial (or single-batch) probes emit
// into one list and move it out.
template <typename ProbeFn>
Status BatchedProbe(size_t total, bool serial, const ProbeFn& probe,
                    std::vector<uint32_t>* lidx, std::vector<uint32_t>* ridx) {
  const size_t nb = NumScanBatches(total);
  BatchCounter()->Inc(nb);
  if (serial || nb <= 1) {
    MatchList out;
    probe(0, total, &out);
    *lidx = std::move(out.l);
    *ridx = std::move(out.r);
    return Status::OK();
  }
  std::vector<MatchList> parts(nb);
  ORPHEUS_RETURN_NOT_OK(ParallelBatchFor(
      total, kScanBatchRows, [&](size_t begin, size_t end, size_t b) -> Status {
        probe(begin, end, &parts[b]);
        return Status::OK();
      }));
  AppendMatches(parts, lidx, ridx);
  return Status::OK();
}

}  // namespace

Result<Executor::Input> Executor::ResolveTableRef(const TableRef& ref) {
  Input input;
  if (ref.subquery != nullptr) {
    ORPHEUS_ASSIGN_OR_RETURN(Chunk sub, RunSelect(*ref.subquery));
    input.owned = std::make_unique<Chunk>(std::move(sub));
    input.data = input.owned.get();
    input.schema = input.data->schema().Qualified(ref.alias);
    input.alias = ref.alias;
    return input;
  }
  ORPHEUS_ASSIGN_OR_RETURN(Table * table, db_->GetTable(ref.name));
  input.data = &table->data();
  input.schema = table->schema().Qualified(ref.alias);
  input.base = table;
  input.alias = ref.alias;
  return input;
}

Status Executor::FilterSelection(const Evaluator& eval,
                                 const std::vector<const Expr*>& conjuncts,
                                 const Chunk& data,
                                 std::vector<uint32_t>* sel) {
  const size_t n = data.num_rows();
  const size_t nb = NumScanBatches(n);
  obs::ProfileOpScope op_scope("filter");
  op_scope.AddRowsIn(n);
  op_scope.AddBatches(nb);
  BatchCounter()->Inc(nb);
  const size_t sel_before = sel->size();
  auto filter_range = [&](size_t begin, size_t end,
                          std::vector<uint32_t>* out) -> Status {
    for (size_t row = begin; row < end; ++row) {
      bool pass = true;
      for (const Expr* conjunct : conjuncts) {
        ORPHEUS_ASSIGN_OR_RETURN(bool ok, eval.EvalPredicate(*conjunct, data, row));
        if (!ok) {
          pass = false;
          break;
        }
      }
      if (pass) out->push_back(static_cast<uint32_t>(row));
    }
    return Status::OK();
  };
  if (nb <= 1) {
    // Single batch: run inline, no scheduling.
    ORPHEUS_RETURN_NOT_OK(filter_range(0, n, sel));
    op_scope.AddRowsOut(sel->size() - sel_before);
    return Status::OK();
  }
  std::vector<std::vector<uint32_t>> parts(nb);
  ORPHEUS_RETURN_NOT_OK(ParallelBatchFor(
      n, kScanBatchRows, [&](size_t begin, size_t end, size_t b) {
        return filter_range(begin, end, &parts[b]);
      }));
  size_t total = sel->size();
  for (const std::vector<uint32_t>& part : parts) total += part.size();
  sel->reserve(total);
  for (const std::vector<uint32_t>& part : parts) {
    sel->insert(sel->end(), part.begin(), part.end());
  }
  op_scope.AddRowsOut(sel->size() - sel_before);
  return Status::OK();
}

Status Executor::EvalScalarBatched(const Evaluator& eval, const Expr& expr,
                                   const Chunk& data,
                                   const std::vector<uint32_t>& sel,
                                   std::vector<Value>* out) {
  out->assign(sel.size(), Value());
  return ParallelBatchFor(
      sel.size(), kScanBatchRows,
      [&](size_t begin, size_t end, size_t) -> Status {
        for (size_t i = begin; i < end; ++i) {
          ORPHEUS_ASSIGN_OR_RETURN((*out)[i], eval.Eval(expr, data, sel[i]));
        }
        return Status::OK();
      });
}

Status Executor::PushDownFilters(std::vector<Input>* inputs,
                                 std::vector<const Expr*>* conjuncts) {
  std::vector<const Expr*> remaining;
  std::vector<std::vector<const Expr*>> per_input(inputs->size());
  for (const Expr* conjunct : *conjuncts) {
    int home = -1;
    int matches = 0;
    for (size_t i = 0; i < inputs->size(); ++i) {
      if (ResolvableIn(*conjunct, (*inputs)[i].schema)) {
        home = static_cast<int>(i);
        ++matches;
      }
    }
    if (matches == 1) {
      per_input[static_cast<size_t>(home)].push_back(conjunct);
    } else {
      remaining.push_back(conjunct);
    }
  }
  for (size_t i = 0; i < inputs->size(); ++i) {
    if (per_input[i].empty()) continue;
    Input& input = (*inputs)[i];
    Evaluator eval(this);
    std::vector<ExprPtr> bound;  // clone-free: bind the shared nodes
    for (const Expr* conjunct : per_input[i]) {
      ORPHEUS_RETURN_NOT_OK(eval.Bind(const_cast<Expr*>(conjunct), input.schema));
    }
    const Chunk& src = *input.data;
    std::vector<uint32_t> sel;
    ORPHEUS_RETURN_NOT_OK(FilterSelection(eval, per_input[i], src, &sel));
    db_->stats()->rows_scanned += static_cast<int64_t>(src.num_rows());
    db_->stats()->pages_read +=
        input.base != nullptr ? input.base->num_pages() : ChunkPages(src);
    auto filtered = std::make_unique<Chunk>(src.schema());
    filtered->GatherFrom(src, sel);
    input.owned = std::move(filtered);
    input.data = input.owned.get();
    input.base = nullptr;  // a filtered input is no longer the raw table
  }
  *conjuncts = std::move(remaining);
  return Status::OK();
}

Result<Executor::Input> Executor::JoinInputs(std::vector<Input> inputs,
                                             std::vector<const Expr*>* conjuncts) {
  Input acc = std::move(inputs[0]);
  for (size_t i = 1; i < inputs.size(); ++i) {
    Input right = std::move(inputs[i]);
    // Extract equi-join keys between acc and right.
    std::vector<std::pair<const Expr*, const Expr*>> keys;
    std::vector<const Expr*> remaining;
    for (const Expr* conjunct : *conjuncts) {
      bool used = false;
      if (conjunct->kind == ExprKind::kBinary && conjunct->bin_op == BinOp::kEq &&
          conjunct->args[0]->kind == ExprKind::kColumnRef &&
          conjunct->args[1]->kind == ExprKind::kColumnRef) {
        const Expr* a = conjunct->args[0].get();
        const Expr* b = conjunct->args[1].get();
        bool a_left = acc.schema.Resolve(a->column).ok();
        bool a_right = right.schema.Resolve(a->column).ok();
        bool b_left = acc.schema.Resolve(b->column).ok();
        bool b_right = right.schema.Resolve(b->column).ok();
        if (a_left && !a_right && b_right && !b_left) {
          keys.emplace_back(a, b);
          used = true;
        } else if (b_left && !b_right && a_right && !a_left) {
          keys.emplace_back(b, a);
          used = true;
        }
      }
      if (!used) remaining.push_back(conjunct);
    }
    *conjuncts = std::move(remaining);
    ORPHEUS_ASSIGN_OR_RETURN(acc, JoinPair(std::move(acc), std::move(right), keys));
  }
  return acc;
}

Result<Executor::Input> Executor::JoinPair(
    Input left, Input right,
    const std::vector<std::pair<const Expr*, const Expr*>>& keys) {
  obs::ProfileOpScope op_scope("join");
  ExecStats* stats = db_->stats();
  // With one thread the per-batch buffers and their batch-order merges
  // are pure overhead, so every phase below takes its direct serial
  // path instead. Both paths produce byte-identical output (the
  // parallel merges reproduce serial order exactly), so this is a
  // perf gate only — enforced by the property tests, which compare
  // --threads=1 against --threads={2,4}.
  const bool serial_exec = ExecThreads() == 1;
  const Chunk& lc = *left.data;
  const Chunk& rc = *right.data;
  op_scope.AddRowsIn(lc.num_rows() + rc.num_rows());
  std::vector<uint32_t> lidx;
  std::vector<uint32_t> ridx;

  if (keys.empty()) {
    op_scope.SetDetail("cross");
    // Cross join; guarded against blowups. Each output offset is a
    // pure function of the row counts, so batches of left rows write
    // disjoint slices of the pre-sized result directly.
    size_t total = lc.num_rows() * rc.num_rows();
    if (total > size_t{10} * 1000 * 1000) {
      return Status::InvalidArgument("cross join result too large");
    }
    const size_t nr = rc.num_rows();
    lidx.resize(total);
    ridx.resize(total);
    ORPHEUS_RETURN_NOT_OK(ParallelBatchFor(
        lc.num_rows(), kScanBatchRows,
        [&](size_t begin, size_t end, size_t) -> Status {
          size_t out = begin * nr;
          for (size_t l = begin; l < end; ++l) {
            for (size_t r = 0; r < nr; ++r, ++out) {
              lidx[out] = static_cast<uint32_t>(l);
              ridx[out] = static_cast<uint32_t>(r);
            }
          }
          return Status::OK();
        }));
    stats->rows_scanned += static_cast<int64_t>(total);
  } else {
    // Resolve key columns on both sides.
    std::vector<int> lcols;
    std::vector<int> rcols;
    for (const auto& [lexpr, rexpr] : keys) {
      ORPHEUS_ASSIGN_OR_RETURN(int lcol, left.schema.Resolve(lexpr->column));
      ORPHEUS_ASSIGN_OR_RETURN(int rcol, right.schema.Resolve(rexpr->column));
      lcols.push_back(lcol);
      rcols.push_back(rcol);
    }
    bool single_int_key =
        keys.size() == 1 &&
        lc.column(lcols[0]).type() == DataType::kInt64 &&
        rc.column(rcols[0]).type() == DataType::kInt64;

    JoinMethod method = db_->join_method();
    // Index-nested-loop needs an index on one side's base table.
    Table* indexed_base = nullptr;
    bool probe_right = false;
    if (method == JoinMethod::kIndexNestedLoop && single_int_key) {
      std::string rname = BaseName(right.schema.column(rcols[0]).name);
      std::string lname = BaseName(left.schema.column(lcols[0]).name);
      if (right.base != nullptr && right.base->HasIndex(rname)) {
        indexed_base = right.base;
        probe_right = true;
      } else if (left.base != nullptr && left.base->HasIndex(lname)) {
        indexed_base = left.base;
        probe_right = false;
      } else {
        method = JoinMethod::kHash;  // no usable index; fall back
      }
    } else if (method == JoinMethod::kIndexNestedLoop) {
      method = JoinMethod::kHash;
    }

    if (method == JoinMethod::kHash || !single_int_key) {
      if (single_int_key) {
        // Build on the smaller side, probe the larger (the paper's
        // "hash table on rids, sequential scan on the data table").
        // NULL keys never participate in equi-joins.
        //
        // Both phases are batch-parallel: the build accumulates
        // per-batch partial tables merged in batch order (postings
        // stay in ascending row order — the serial build), and the
        // probe emits per-batch match lists concatenated in batch
        // order (the serial probe's output order). See executor.h for
        // the determinism contract.
        op_scope.SetDetail("hash");
        bool build_right = rc.num_rows() <= lc.num_rows();
        const Column& bcol = build_right ? rc.column(rcols[0]) : lc.column(lcols[0]);
        const Column& pcol = build_right ? lc.column(lcols[0]) : rc.column(rcols[0]);
        const std::vector<int64_t>& bkeys = bcol.ints();
        const std::vector<int64_t>& pkeys = pcol.ints();
        using IntMap = std::unordered_map<int64_t, std::vector<uint32_t>>;
        IntMap hash;
        hash.reserve(bkeys.size() * 2);
        {
          obs::ProfileOpScope build_scope("hash_build");
          build_scope.AddRowsIn(bkeys.size());
          build_scope.AddBatches(NumScanBatches(bkeys.size()));
          ORPHEUS_RETURN_NOT_OK(BatchedHashBuild(
              bkeys.size(), serial_exec, &hash,
              [&](size_t begin, size_t end, IntMap* out) {
                for (size_t i = begin; i < end; ++i) {
                  if (bcol.IsNull(i)) continue;
                  (*out)[bkeys[i]].push_back(static_cast<uint32_t>(i));
                }
              }));
          build_scope.AddRowsOut(hash.size());
        }
        {
          obs::ProfileOpScope probe_scope("hash_probe");
          probe_scope.AddRowsIn(pkeys.size());
          probe_scope.AddBatches(NumScanBatches(pkeys.size()));
          ORPHEUS_RETURN_NOT_OK(BatchedProbe(
              pkeys.size(), serial_exec,
              [&](size_t begin, size_t end, MatchList* out) {
                for (size_t i = begin; i < end; ++i) {
                  if (pcol.IsNull(i)) continue;
                  auto hit = hash.find(pkeys[i]);
                  if (hit == hash.end()) continue;
                  for (uint32_t m : hit->second) {
                    if (build_right) {
                      out->l.push_back(static_cast<uint32_t>(i));
                      out->r.push_back(m);
                    } else {
                      out->l.push_back(m);
                      out->r.push_back(static_cast<uint32_t>(i));
                    }
                  }
                }
              },
              &lidx, &ridx));
          probe_scope.AddRowsOut(lidx.size());
        }
      } else {
        // Generic multi-key hash join via encoded keys; rows with any
        // NULL key are skipped (SQL equi-join semantics). Same
        // batch-parallel build/probe discipline as the int fast path,
        // with string-encoded composite keys.
        auto any_null = [](const Chunk& chunk, const std::vector<int>& cols,
                           size_t row) {
          for (int col : cols) {
            if (chunk.column(col).IsNull(row)) return true;
          }
          return false;
        };
        op_scope.SetDetail("hash multi-key");
        using StrMap = std::unordered_map<std::string, std::vector<uint32_t>>;
        StrMap hash;
        {
          obs::ProfileOpScope build_scope("hash_build");
          build_scope.AddRowsIn(rc.num_rows());
          build_scope.AddBatches(NumScanBatches(rc.num_rows()));
          ORPHEUS_RETURN_NOT_OK(BatchedHashBuild(
              rc.num_rows(), serial_exec, &hash,
              [&](size_t begin, size_t end, StrMap* out) {
                std::string key;
                for (size_t r = begin; r < end; ++r) {
                  if (any_null(rc, rcols, r)) continue;
                  key.clear();
                  for (int col : rcols) EncodeValue(rc.Get(r, col), &key);
                  (*out)[key].push_back(static_cast<uint32_t>(r));
                }
              }));
          build_scope.AddRowsOut(hash.size());
        }
        {
          obs::ProfileOpScope probe_scope("hash_probe");
          probe_scope.AddRowsIn(lc.num_rows());
          probe_scope.AddBatches(NumScanBatches(lc.num_rows()));
          ORPHEUS_RETURN_NOT_OK(BatchedProbe(
              lc.num_rows(), serial_exec,
              [&](size_t begin, size_t end, MatchList* out) {
                std::string key;
                for (size_t l = begin; l < end; ++l) {
                  if (any_null(lc, lcols, l)) continue;
                  key.clear();
                  for (int col : lcols) EncodeValue(lc.Get(l, col), &key);
                  auto hit = hash.find(key);
                  if (hit == hash.end()) continue;
                  for (uint32_t m : hit->second) {
                    out->l.push_back(static_cast<uint32_t>(l));
                    out->r.push_back(m);
                  }
                }
              },
              &lidx, &ridx));
          probe_scope.AddRowsOut(lidx.size());
        }
      }
      stats->rows_scanned +=
          static_cast<int64_t>(lc.num_rows() + rc.num_rows());
      stats->pages_read += left.base != nullptr ? left.base->num_pages()
                                                : ChunkPages(lc);
      stats->pages_read += right.base != nullptr ? right.base->num_pages()
                                                 : ChunkPages(rc);
    } else if (method == JoinMethod::kMerge) {
      op_scope.SetDetail("merge");
      const Column& lkcol = lc.column(lcols[0]);
      const Column& rkcol = rc.column(rcols[0]);
      const std::vector<int64_t>& lkeys = lkcol.ints();
      const std::vector<int64_t>& rkeys = rkcol.ints();
      // NULL keys never join, and their storage placeholder (0) would
      // otherwise sort into the run of a genuine key 0 — so NULL rows
      // are dropped from the sort order up front, not skipped in the
      // merge scan.
      auto sorted_order = [](const Column& col,
                             const std::vector<int64_t>& keys,
                             bool presorted) {
        std::vector<uint32_t> order;
        order.reserve(keys.size());
        for (size_t i = 0; i < keys.size(); ++i) {
          if (!col.IsNull(i)) order.push_back(static_cast<uint32_t>(i));
        }
        if (!presorted) {
          // Deterministic parallel merge sort: bit-identical to
          // std::stable_sort at every thread count (thread_pool.h).
          ParallelStableSort(&order, kScanBatchRows,
                             [&keys](uint32_t a, uint32_t b) {
                               return keys[a] < keys[b];
                             });
        }
        return order;
      };
      bool l_sorted = left.base != nullptr &&
                      left.base->clustered_on() ==
                          BaseName(left.schema.column(lcols[0]).name);
      bool r_sorted = right.base != nullptr &&
                      right.base->clustered_on() ==
                          BaseName(right.schema.column(rcols[0]).name);
      std::vector<uint32_t> lorder;
      std::vector<uint32_t> rorder;
      {
        obs::ProfileOpScope sort_scope("merge_sort", "left");
        sort_scope.AddRowsIn(lkeys.size());
        lorder = sorted_order(lkcol, lkeys, l_sorted);
        sort_scope.AddRowsOut(lorder.size());
      }
      {
        obs::ProfileOpScope sort_scope("merge_sort", "right");
        sort_scope.AddRowsIn(rkeys.size());
        rorder = sorted_order(rkcol, rkeys, r_sorted);
        sort_scope.AddRowsOut(rorder.size());
      }
      size_t li = 0;
      size_t ri = 0;
      while (li < lorder.size() && ri < rorder.size()) {
        int64_t lk = lkeys[lorder[li]];
        int64_t rk = rkeys[rorder[ri]];
        if (lk < rk) {
          ++li;
        } else if (lk > rk) {
          ++ri;
        } else {
          size_t lrun = li;
          while (lrun < lorder.size() && lkeys[lorder[lrun]] == lk) ++lrun;
          size_t rrun = ri;
          while (rrun < rorder.size() && rkeys[rorder[rrun]] == rk) ++rrun;
          for (size_t a = li; a < lrun; ++a) {
            for (size_t b = ri; b < rrun; ++b) {
              lidx.push_back(lorder[a]);
              ridx.push_back(rorder[b]);
            }
          }
          li = lrun;
          ri = rrun;
        }
      }
      stats->rows_scanned +=
          static_cast<int64_t>(lc.num_rows() + rc.num_rows());
      stats->pages_read += left.base != nullptr ? left.base->num_pages()
                                                : ChunkPages(lc);
      stats->pages_read += right.base != nullptr ? right.base->num_pages()
                                                 : ChunkPages(rc);
    } else {
      // Index-nested-loop join, probe loop batched over the pool. The
      // index is forced up front (Table::EnsureIndex, coordinating
      // thread) so workers only probe an immutable postings map;
      // per-batch match lists, probe counts, and page bitmaps are
      // merged on this thread in batch order.
      op_scope.SetDetail("inl");
      const Input& outer = probe_right ? left : right;
      Table* inner_table = indexed_base;
      int outer_col = probe_right ? lcols[0] : rcols[0];
      const std::string inner_col = BaseName(
          (probe_right ? right.schema.column(rcols[0]) : left.schema.column(lcols[0]))
              .name);
      ORPHEUS_RETURN_NOT_OK(inner_table->EnsureIndex(inner_col));
      const Table::IntIndexMap* index = inner_table->BuiltIndex(inner_col);
      if (index == nullptr) {
        return Status::Internal("index lookup failed during INL join");
      }
      const Column& ocol = outer.data->column(outer_col);
      const std::vector<int64_t>& okeys = ocol.ints();
      const size_t num_pages = static_cast<size_t>(inner_table->num_pages());
      const int64_t rows_per_page = inner_table->rows_per_page();
      // Per-batch page bitmaps feed the clustered page count below;
      // in the scattered case that statistic is okeys.size()-based, so
      // the bitmaps (and their per-match stores) are skipped entirely.
      const bool count_pages = inner_table->clustered_on() == inner_col;
      auto probe_range = [&](size_t begin, size_t end, MatchList* out,
                             std::vector<uint8_t>* pages, int64_t* probes) {
        for (size_t o = begin; o < end; ++o) {
          if (ocol.IsNull(o)) continue;
          ++*probes;
          auto hit = index->find(okeys[o]);
          if (hit == index->end()) continue;
          for (uint32_t m : hit->second) {
            if (count_pages) {
              (*pages)[static_cast<size_t>(static_cast<int64_t>(m) /
                                           rows_per_page)] = 1;
            }
            if (probe_right) {
              out->l.push_back(static_cast<uint32_t>(o));
              out->r.push_back(m);
            } else {
              out->l.push_back(m);
              out->r.push_back(static_cast<uint32_t>(o));
            }
          }
        }
      };
      const size_t nb = NumScanBatches(okeys.size());
      obs::ProfileOpScope probe_scope("inl_probe");
      probe_scope.AddRowsIn(okeys.size());
      probe_scope.AddBatches(nb);
      std::vector<MatchList> parts;
      std::vector<int64_t> batch_probes;
      std::vector<std::vector<uint8_t>> batch_pages;
      const size_t bitmap_size = count_pages ? num_pages : 0;
      if (serial_exec || nb <= 1) {
        parts.resize(1);
        batch_probes.assign(1, 0);
        batch_pages.assign(1, std::vector<uint8_t>(bitmap_size, 0));
        probe_range(0, okeys.size(), &parts[0], &batch_pages[0],
                    &batch_probes[0]);
      } else {
        parts.resize(nb);
        batch_probes.assign(nb, 0);
        batch_pages.resize(nb);
        ORPHEUS_RETURN_NOT_OK(ParallelBatchFor(
            okeys.size(), kScanBatchRows,
            [&](size_t begin, size_t end, size_t b) -> Status {
              batch_pages[b].assign(bitmap_size, 0);
              probe_range(begin, end, &parts[b], &batch_pages[b],
                          &batch_probes[b]);
              return Status::OK();
            }));
      }
      AppendMatches(parts, &lidx, &ridx);
      probe_scope.AddRowsOut(lidx.size());
      for (int64_t probes : batch_probes) stats->index_probes += probes;
      stats->rows_scanned += static_cast<int64_t>(okeys.size());
      int64_t pages_touched = 0;
      if (count_pages) {
        // Matches land on contiguous pages: count distinct pages
        // touched by any batch.
        for (size_t page = 0; page < num_pages; ++page) {
          for (const std::vector<uint8_t>& pages : batch_pages) {
            if (pages[page] != 0) {
              ++pages_touched;
              break;
            }
          }
        }
      } else {
        // Scattered rows: effectively one random page per probe, but
        // never more than the whole table.
        pages_touched = std::min<int64_t>(static_cast<int64_t>(okeys.size()),
                                          inner_table->num_pages());
      }
      stats->pages_read += pages_touched;
    }
  }

  op_scope.AddRowsOut(lidx.size());

  // Materialize the combined chunk: left columns then right columns.
  // Output columns are disjoint objects, so their gathers fan out
  // across the pool (one task per column; a gather's content depends
  // only on its source column and the match vectors).
  Schema combined;
  for (const ColumnDef& def : left.schema.columns()) {
    combined.AddColumn(def.name, def.type);
  }
  for (const ColumnDef& def : right.schema.columns()) {
    combined.AddColumn(def.name, def.type);
  }
  auto out = std::make_unique<Chunk>(combined);
  const int num_left_cols = lc.num_columns();
  ExecParallelFor(num_left_cols + rc.num_columns(), [&](int c) {
    if (c < num_left_cols) {
      out->mutable_column(c).Gather(lc.column(c), lidx);
    } else {
      out->mutable_column(c).Gather(rc.column(c - num_left_cols), ridx);
    }
  });
  Input result;
  result.schema = out->schema();
  result.owned = std::move(out);
  result.data = result.owned.get();
  return result;
}

Result<Chunk> Executor::RunSelect(const SelectStmt& select) {
  // FROM-less SELECT evaluates items once against a dummy row.
  if (select.from.empty()) {
    Schema dummy_schema;
    dummy_schema.AddColumn("_dummy", DataType::kInt64);
    Chunk dummy(dummy_schema);
    dummy.AppendRow({Value::Int(0)});
    Input input;
    input.data = &dummy;
    input.schema = dummy_schema;
    std::vector<uint32_t> sel = {0};
    return Project(select, input, sel);
  }

  std::vector<Input> inputs;
  inputs.reserve(select.from.size());
  for (const TableRef& ref : select.from) {
    // Subquery inputs recurse into RunSelect on this thread, so their
    // operator scopes nest under this scan node in the profile tree.
    obs::ProfileOpScope op_scope(
        "scan", ref.subquery != nullptr && !ref.alias.empty() ? ref.alias
                                                              : ref.name);
    ORPHEUS_ASSIGN_OR_RETURN(Input input, ResolveTableRef(ref));
    op_scope.AddRowsOut(input.data->num_rows());
    inputs.push_back(std::move(input));
  }

  std::vector<const Expr*> conjuncts;
  SplitConjuncts(select.where.get(), &conjuncts);

  Input joined;
  if (inputs.size() == 1) {
    joined = std::move(inputs[0]);
  } else {
    ORPHEUS_RETURN_NOT_OK(PushDownFilters(&inputs, &conjuncts));
    ORPHEUS_ASSIGN_OR_RETURN(joined,
                             JoinInputs(std::move(inputs), &conjuncts));
  }

  // Residual filter -> selection vector.
  const Chunk& data = *joined.data;
  std::vector<uint32_t> sel;
  if (conjuncts.empty()) {
    sel.resize(data.num_rows());
    std::iota(sel.begin(), sel.end(), 0);
    if (joined.base != nullptr) {
      // Whole-table scan still touches every page.
      db_->stats()->pages_read += joined.base->num_pages();
      db_->stats()->rows_scanned += static_cast<int64_t>(data.num_rows());
    }
  } else {
    Evaluator eval(this);
    for (const Expr* conjunct : conjuncts) {
      ORPHEUS_RETURN_NOT_OK(eval.Bind(const_cast<Expr*>(conjunct), joined.schema));
    }
    ORPHEUS_RETURN_NOT_OK(FilterSelection(eval, conjuncts, data, &sel));
    db_->stats()->rows_scanned += static_cast<int64_t>(data.num_rows());
    db_->stats()->pages_read += joined.base != nullptr
                                    ? joined.base->num_pages()
                                    : ChunkPages(data);
  }

  bool aggregating = !select.group_by.empty();
  for (const SelectItem& item : select.items) {
    if (ContainsAggregate(*item.expr)) aggregating = true;
  }

  Chunk out;
  bool ordered_on_input = false;
  if (aggregating) {
    ORPHEUS_ASSIGN_OR_RETURN(out, Aggregate(select, joined, sel));
    ORPHEUS_RETURN_NOT_OK(ApplyHaving(select, &out));
  } else {
    // SQL permits ORDER BY on columns absent from the select list;
    // those keys only exist pre-projection, so sort the selection
    // vector against the input schema when the keys resolve there.
    if (!select.order_by.empty()) {
      bool resolvable = true;
      for (const OrderItem& item : select.order_by) {
        if (!ResolvableIn(*item.expr, joined.schema)) {
          resolvable = false;
          break;
        }
      }
      if (resolvable) {
        Evaluator eval(this);
        for (const OrderItem& item : select.order_by) {
          ORPHEUS_RETURN_NOT_OK(eval.Bind(item.expr.get(), joined.schema));
        }
        // Sort keys are computed batch-parallel into slot-per-row
        // buffers, then the permutation is sorted with the
        // deterministic parallel merge sort (thread_pool.h) — same
        // result as a serial stable_sort at every thread count.
        obs::ProfileOpScope op_scope("order_by", "pre-projection");
        op_scope.AddRowsIn(sel.size());
        op_scope.AddRowsOut(sel.size());
        op_scope.AddBatches(NumScanBatches(sel.size()));
        std::vector<std::vector<Value>> keys(sel.size());
        ORPHEUS_RETURN_NOT_OK(ParallelBatchFor(
            sel.size(), kScanBatchRows,
            [&](size_t begin, size_t end, size_t) -> Status {
              for (size_t i = begin; i < end; ++i) {
                keys[i].reserve(select.order_by.size());
                for (const OrderItem& item : select.order_by) {
                  ORPHEUS_ASSIGN_OR_RETURN(Value v,
                                           eval.Eval(*item.expr, data, sel[i]));
                  keys[i].push_back(std::move(v));
                }
              }
              return Status::OK();
            }));
        std::vector<uint32_t> perm(sel.size());
        std::iota(perm.begin(), perm.end(), 0);
        ParallelStableSort(&perm, kScanBatchRows, [&](uint32_t a, uint32_t b) {
          for (size_t k = 0; k < select.order_by.size(); ++k) {
            int cmp = keys[a][k].Compare(keys[b][k]);
            if (select.order_by[k].descending) cmp = -cmp;
            if (cmp != 0) return cmp < 0;
          }
          return false;
        });
        std::vector<uint32_t> sorted_sel(sel.size());
        for (size_t i = 0; i < sel.size(); ++i) sorted_sel[i] = sel[perm[i]];
        sel = std::move(sorted_sel);
        ordered_on_input = true;
      }
    }
    ORPHEUS_ASSIGN_OR_RETURN(out, Project(select, joined, sel));
  }

  if (select.distinct) {
    ORPHEUS_RETURN_NOT_OK(ApplyDistinct(&out));
  }
  if (ordered_on_input) {
    // Order already applied; only the LIMIT remains.
    SelectStmt limit_only;
    limit_only.limit = select.limit;
    ORPHEUS_RETURN_NOT_OK(ApplyOrderByLimit(limit_only, &out));
  } else {
    ORPHEUS_RETURN_NOT_OK(ApplyOrderByLimit(select, &out));
  }
  return out;
}

Result<Chunk> Executor::Project(const SelectStmt& select, const Input& input,
                                const std::vector<uint32_t>& sel) {
  obs::ProfileOpScope op_scope("project");
  op_scope.AddRowsIn(sel.size());
  const Chunk& data = *input.data;
  const Schema& schema = input.schema;

  // Expand the select list into concrete output columns.
  struct OutCol {
    int source_col = -1;        // >= 0: direct gather from input
    const Expr* expr = nullptr; // computed expression
    bool unnest = false;        // expand array elements into rows
    std::string name;
  };
  std::vector<OutCol> out_cols;
  Evaluator eval(this);
  int unnest_count = 0;
  for (const SelectItem& item : select.items) {
    if (item.expr->kind == ExprKind::kStar) {
      const std::string& qualifier = item.expr->column;
      for (int c = 0; c < schema.num_columns(); ++c) {
        const std::string& name = schema.column(c).name;
        if (!qualifier.empty()) {
          if (name.rfind(qualifier + ".", 0) != 0) continue;
        }
        OutCol out;
        out.source_col = c;
        out.name = name;
        out_cols.push_back(std::move(out));
      }
      continue;
    }
    OutCol out;
    if (IsUnnestCall(*item.expr)) {
      if (item.expr->args.size() != 1) {
        return Status::InvalidArgument("unnest expects exactly one argument");
      }
      out.unnest = true;
      out.expr = item.expr->args[0].get();
      ORPHEUS_RETURN_NOT_OK(eval.Bind(item.expr->args[0].get(), schema));
      ++unnest_count;
    } else if (item.expr->kind == ExprKind::kColumnRef) {
      ORPHEUS_ASSIGN_OR_RETURN(out.source_col, schema.Resolve(item.expr->column));
    } else {
      out.expr = item.expr.get();
      ORPHEUS_RETURN_NOT_OK(eval.Bind(item.expr.get(), schema));
    }
    out.name = !item.alias.empty()
                   ? item.alias
                   : (item.expr->kind == ExprKind::kColumnRef ? item.expr->column
                                                              : item.expr->ToString());
    out_cols.push_back(std::move(out));
  }
  if (unnest_count > 1) {
    return Status::NotSupported("at most one unnest() per select list");
  }

  if (unnest_count == 0) {
    // Bulk path: gathers for direct columns, row loop only for
    // computed expressions.
    Schema out_schema;
    for (const OutCol& oc : out_cols) {
      DataType type;
      if (oc.source_col >= 0) {
        type = schema.column(oc.source_col).type;
      } else {
        // Infer from the first row; default INT for empty inputs.
        type = DataType::kInt64;
        if (!sel.empty()) {
          ORPHEUS_ASSIGN_OR_RETURN(Value v, eval.Eval(*oc.expr, data, sel[0]));
          type = InferType(v);
        }
      }
      out_schema.AddColumn(oc.name, type);
    }
    Chunk out(out_schema);
    std::vector<Value> computed;
    for (size_t c = 0; c < out_cols.size(); ++c) {
      const OutCol& oc = out_cols[c];
      Column& dst = out.mutable_column(static_cast<int>(c));
      if (oc.source_col >= 0) {
        dst.Gather(data.column(oc.source_col), sel);
      } else {
        // Evaluate into a slot-per-row buffer on the pool, then append
        // in row order on this thread.
        ORPHEUS_RETURN_NOT_OK(
            EvalScalarBatched(eval, *oc.expr, data, sel, &computed));
        for (const Value& v : computed) dst.Append(v);
      }
    }
    op_scope.AddRowsOut(out.num_rows());
    return out;
  }

  // Unnest path: one output row per array element; other columns are
  // replicated alongside.
  Schema out_schema;
  for (const OutCol& oc : out_cols) {
    if (oc.unnest) {
      out_schema.AddColumn(oc.name, DataType::kInt64);
    } else if (oc.source_col >= 0) {
      out_schema.AddColumn(oc.name, schema.column(oc.source_col).type);
    } else {
      out_schema.AddColumn(oc.name, DataType::kInt64);
    }
  }
  Chunk out(out_schema);
  for (uint32_t row : sel) {
    // Evaluate the unnest argument once per input row.
    IntArray elements;
    for (const OutCol& oc : out_cols) {
      if (oc.unnest) {
        ORPHEUS_ASSIGN_OR_RETURN(Value v, eval.Eval(*oc.expr, data, row));
        if (v.type() != DataType::kIntArray) {
          return Status::InvalidArgument("unnest expects an INT[] argument");
        }
        elements = v.AsArray();
      }
    }
    for (int64_t element : elements) {
      for (size_t c = 0; c < out_cols.size(); ++c) {
        const OutCol& oc = out_cols[c];
        Column& dst = out.mutable_column(static_cast<int>(c));
        if (oc.unnest) {
          dst.AppendInt(element);
        } else if (oc.source_col >= 0) {
          dst.AppendFrom(data.column(oc.source_col), row);
        } else {
          ORPHEUS_ASSIGN_OR_RETURN(Value v, eval.Eval(*oc.expr, data, row));
          dst.Append(v);
        }
      }
    }
  }
  op_scope.AddRowsOut(out.num_rows());
  return out;
}

Result<Chunk> Executor::Aggregate(const SelectStmt& select, const Input& input,
                                  const std::vector<uint32_t>& sel) {
  obs::ProfileOpScope op_scope("aggregate");
  op_scope.AddRowsIn(sel.size());
  const Chunk& data = *input.data;
  const Schema& schema = input.schema;
  Evaluator eval(this);

  // Bind group-by expressions.
  for (const ExprPtr& g : select.group_by) {
    ORPHEUS_RETURN_NOT_OK(eval.Bind(g.get(), schema));
  }

  // Classify select items.
  enum class AggKind { kGroupExpr, kCountStar, kCount, kSum, kAvg, kMin, kMax };
  struct ItemPlan {
    AggKind kind;
    const Expr* arg = nullptr;  // aggregate argument or group expression
    std::string name;
  };
  std::vector<ItemPlan> plans;
  for (const SelectItem& item : select.items) {
    ItemPlan plan;
    const Expr& e = *item.expr;
    if (e.IsAggregate()) {
      if (e.func_name == "count") {
        if (e.args.empty() || e.args[0]->kind == ExprKind::kStar) {
          plan.kind = AggKind::kCountStar;
        } else {
          plan.kind = AggKind::kCount;
          plan.arg = e.args[0].get();
        }
      } else {
        if (e.args.size() != 1) {
          return Status::InvalidArgument(e.func_name + " expects one argument");
        }
        plan.arg = e.args[0].get();
        if (e.func_name == "sum") plan.kind = AggKind::kSum;
        else if (e.func_name == "avg") plan.kind = AggKind::kAvg;
        else if (e.func_name == "min") plan.kind = AggKind::kMin;
        else plan.kind = AggKind::kMax;
      }
      if (plan.arg != nullptr) {
        ORPHEUS_RETURN_NOT_OK(eval.Bind(const_cast<Expr*>(plan.arg), schema));
      }
    } else if (ContainsAggregate(e)) {
      return Status::NotSupported(
          "aggregates must be top-level select items: " + e.ToString());
    } else {
      // Must match one of the GROUP BY expressions.
      bool matched = false;
      for (const ExprPtr& g : select.group_by) {
        if (g->ToString() == e.ToString()) {
          matched = true;
          break;
        }
      }
      if (!matched) {
        return Status::InvalidArgument(
            "non-aggregate select item must appear in GROUP BY: " + e.ToString());
      }
      plan.kind = AggKind::kGroupExpr;
      plan.arg = &e;
      ORPHEUS_RETURN_NOT_OK(eval.Bind(const_cast<Expr*>(&e), schema));
    }
    plan.name = !item.alias.empty()
                    ? item.alias
                    : (e.kind == ExprKind::kColumnRef ? e.column : e.ToString());
    plans.push_back(std::move(plan));
  }

  struct AggState {
    int64_t count = 0;
    double sum = 0;
    bool sum_is_int = true;
    int64_t isum = 0;
    Value min;
    Value max;
    Value rep;  // representative group expression value
  };

  // Per-batch partial aggregation state. Each batch accumulates its
  // slice of `sel` into private hash tables; the batches are then
  // merged below in batch order, which makes the group output order
  // (first occurrence in row order) and the floating-point rounding of
  // SUM/AVG independent of the thread count.
  struct BatchAgg {
    std::unordered_map<std::string, size_t> index;
    std::vector<std::string> keys;              // insertion order
    std::vector<std::vector<AggState>> groups;  // parallel to keys
  };

  const size_t nb = NumScanBatches(sel.size());
  std::vector<BatchAgg> batch_aggs(nb);
  auto aggregate_range = [&](size_t begin, size_t end,
                             BatchAgg* agg) -> Status {
    std::string key;
    for (size_t i = begin; i < end; ++i) {
      uint32_t row = sel[i];
      key.clear();
      for (const ExprPtr& g : select.group_by) {
        ORPHEUS_ASSIGN_OR_RETURN(Value v, eval.Eval(*g, data, row));
        EncodeValue(v, &key);
      }
      auto [it, inserted] = agg->index.try_emplace(key, agg->groups.size());
      if (inserted) {
        agg->keys.push_back(key);
        agg->groups.emplace_back(plans.size());
      }
      std::vector<AggState>& states = agg->groups[it->second];
      for (size_t p = 0; p < plans.size(); ++p) {
        const ItemPlan& plan = plans[p];
        AggState& st = states[p];
        switch (plan.kind) {
          case AggKind::kGroupExpr: {
            if (st.count == 0) {
              ORPHEUS_ASSIGN_OR_RETURN(st.rep, eval.Eval(*plan.arg, data, row));
            }
            ++st.count;
            break;
          }
          case AggKind::kCountStar:
            ++st.count;
            break;
          default: {
            ORPHEUS_ASSIGN_OR_RETURN(Value v, eval.Eval(*plan.arg, data, row));
            if (v.is_null()) break;
            ++st.count;
            if (plan.kind == AggKind::kCount) break;
            if (plan.kind == AggKind::kSum || plan.kind == AggKind::kAvg) {
              if (v.type() == DataType::kInt64 && st.sum_is_int) {
                st.isum += v.AsInt();
              } else {
                st.sum_is_int = false;
              }
              st.sum += v.AsDouble();
            } else if (plan.kind == AggKind::kMin) {
              if (st.min.is_null() || v.Compare(st.min) < 0) st.min = v;
            } else {
              if (st.max.is_null() || v.Compare(st.max) > 0) st.max = v;
            }
            break;
          }
        }
      }
    }
    return Status::OK();
  };
  ORPHEUS_RETURN_NOT_OK(ParallelBatchFor(
      sel.size(), kScanBatchRows, [&](size_t begin, size_t end, size_t b) {
        return aggregate_range(begin, end, &batch_aggs[b]);
      }));

  // Deterministic merge: batches in order, groups in each batch's
  // first-occurrence order. This reproduces the sequential scan's
  // group discovery order exactly.
  std::unordered_map<std::string, size_t> group_index;
  std::vector<std::vector<AggState>> groups;  // [group][item]
  for (BatchAgg& agg : batch_aggs) {
    for (size_t g = 0; g < agg.keys.size(); ++g) {
      auto [it, inserted] =
          group_index.try_emplace(std::move(agg.keys[g]), groups.size());
      if (inserted) {
        groups.push_back(std::move(agg.groups[g]));
        continue;
      }
      std::vector<AggState>& into = groups[it->second];
      const std::vector<AggState>& from = agg.groups[g];
      for (size_t p = 0; p < plans.size(); ++p) {
        AggState& st = into[p];
        const AggState& other = from[p];
        switch (plans[p].kind) {
          case AggKind::kGroupExpr:
            // `rep` stays from the earliest batch that saw the group.
            st.count += other.count;
            break;
          case AggKind::kCountStar:
          case AggKind::kCount:
            st.count += other.count;
            break;
          case AggKind::kSum:
          case AggKind::kAvg:
            st.count += other.count;
            if (!other.sum_is_int) st.sum_is_int = false;
            st.isum += other.isum;
            st.sum += other.sum;
            break;
          case AggKind::kMin:
            st.count += other.count;
            if (!other.min.is_null() &&
                (st.min.is_null() || other.min.Compare(st.min) < 0)) {
              st.min = other.min;
            }
            break;
          case AggKind::kMax:
            st.count += other.count;
            if (!other.max.is_null() &&
                (st.max.is_null() || other.max.Compare(st.max) > 0)) {
              st.max = other.max;
            }
            break;
        }
      }
    }
  }

  // With no GROUP BY and no input rows, SQL still yields one row.
  if (select.group_by.empty() && groups.empty()) {
    groups.emplace_back(plans.size());
  }

  // Produce one output row per group.
  auto value_of = [](const ItemPlan& plan, const AggState& st) -> Value {
    switch (plan.kind) {
      case AggKind::kGroupExpr:
        return st.rep;
      case AggKind::kCountStar:
      case AggKind::kCount:
        return Value::Int(st.count);
      case AggKind::kSum:
        if (st.count == 0) return Value::Null();
        return st.sum_is_int ? Value::Int(st.isum) : Value::Double(st.sum);
      case AggKind::kAvg:
        if (st.count == 0) return Value::Null();
        return Value::Double(st.sum / static_cast<double>(st.count));
      case AggKind::kMin:
        return st.min;
      case AggKind::kMax:
        return st.max;
    }
    return Value::Null();
  };

  Schema out_schema;
  for (size_t p = 0; p < plans.size(); ++p) {
    DataType type = DataType::kInt64;
    if (!groups.empty()) {
      type = InferType(value_of(plans[p], groups[0][p]));
    }
    if (plans[p].kind == AggKind::kAvg) type = DataType::kDouble;
    out_schema.AddColumn(plans[p].name, type);
  }
  Chunk out(out_schema);
  std::vector<Value> row_values(plans.size());
  for (const std::vector<AggState>& states : groups) {
    for (size_t p = 0; p < plans.size(); ++p) {
      row_values[p] = value_of(plans[p], states[p]);
    }
    out.AppendRow(row_values);
  }
  op_scope.AddBatches(nb);
  op_scope.AddRowsOut(out.num_rows());
  return out;
}

Status Executor::ApplyHaving(const SelectStmt& select, Chunk* out) {
  if (select.having == nullptr) return Status::OK();
  Evaluator eval(this);
  ORPHEUS_RETURN_NOT_OK(eval.Bind(select.having.get(), out->schema()));
  std::vector<bool> keep(out->num_rows());
  for (size_t row = 0; row < out->num_rows(); ++row) {
    ORPHEUS_ASSIGN_OR_RETURN(bool ok, eval.EvalPredicate(*select.having, *out, row));
    keep[row] = ok;
  }
  out->FilterRows(keep);
  return Status::OK();
}

Status Executor::ApplyDistinct(Chunk* out) {
  std::unordered_set<std::string> seen;
  std::vector<bool> keep(out->num_rows());
  for (size_t row = 0; row < out->num_rows(); ++row) {
    std::string key;
    for (int c = 0; c < out->num_columns(); ++c) {
      EncodeValue(out->Get(row, c), &key);
    }
    keep[row] = seen.insert(std::move(key)).second;
  }
  out->FilterRows(keep);
  return Status::OK();
}

Status Executor::ApplyOrderByLimit(const SelectStmt& select, Chunk* out) {
  if (!select.order_by.empty()) {
    Evaluator eval(this);
    for (const OrderItem& item : select.order_by) {
      ORPHEUS_RETURN_NOT_OK(eval.Bind(item.expr.get(), out->schema()));
    }
    // Precompute sort keys batch-parallel, then sort the permutation
    // with the deterministic parallel merge sort (thread_pool.h).
    obs::ProfileOpScope op_scope("order_by");
    op_scope.AddRowsIn(out->num_rows());
    op_scope.AddRowsOut(out->num_rows());
    op_scope.AddBatches(NumScanBatches(out->num_rows()));
    std::vector<std::vector<Value>> keys(out->num_rows());
    ORPHEUS_RETURN_NOT_OK(ParallelBatchFor(
        out->num_rows(), kScanBatchRows,
        [&](size_t begin, size_t end, size_t) -> Status {
          for (size_t row = begin; row < end; ++row) {
            keys[row].reserve(select.order_by.size());
            for (const OrderItem& item : select.order_by) {
              ORPHEUS_ASSIGN_OR_RETURN(Value v, eval.Eval(*item.expr, *out, row));
              keys[row].push_back(std::move(v));
            }
          }
          return Status::OK();
        }));
    std::vector<uint32_t> order(out->num_rows());
    std::iota(order.begin(), order.end(), 0);
    ParallelStableSort(&order, kScanBatchRows, [&](uint32_t a, uint32_t b) {
      for (size_t k = 0; k < select.order_by.size(); ++k) {
        int cmp = keys[a][k].Compare(keys[b][k]);
        if (select.order_by[k].descending) cmp = -cmp;
        if (cmp != 0) return cmp < 0;
      }
      return false;
    });
    Chunk sorted(out->schema());
    sorted.GatherFrom(*out, order);
    *out = std::move(sorted);
  }
  if (select.limit >= 0 && static_cast<size_t>(select.limit) < out->num_rows()) {
    std::vector<uint32_t> head(static_cast<size_t>(select.limit));
    std::iota(head.begin(), head.end(), 0);
    Chunk limited(out->schema());
    limited.GatherFrom(*out, head);
    *out = std::move(limited);
  }
  return Status::OK();
}

}  // namespace orpheus::rel
