#include "relstore/parser.h"

#include <utility>

#include "common/str_util.h"
#include "relstore/lexer.h"

namespace orpheus::rel {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<Statement>> ParseStatement();

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool CheckKeyword(std::string_view kw) const {
    return Peek().type == TokenType::kKeyword && Peek().text == kw;
  }
  bool MatchKeyword(std::string_view kw) {
    if (CheckKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool CheckOp(std::string_view op) const {
    return Peek().type == TokenType::kOperator && Peek().text == op;
  }
  bool MatchOp(std::string_view op) {
    if (CheckOp(op)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!MatchKeyword(kw)) {
      return Status::ParseError("expected '" + std::string(kw) + "' near offset " +
                                std::to_string(Peek().offset));
    }
    return Status::OK();
  }
  Status ExpectOp(std::string_view op) {
    if (!MatchOp(op)) {
      return Status::ParseError("expected '" + std::string(op) + "' near offset " +
                                std::to_string(Peek().offset));
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::ParseError("expected identifier near offset " +
                                std::to_string(Peek().offset));
    }
    return Advance().text;
  }

  Result<std::unique_ptr<SelectStmt>> ParseSelect();       // after SELECT
  Result<std::unique_ptr<Statement>> ParseInsert();        // after INSERT
  Result<std::unique_ptr<Statement>> ParseUpdate();        // after UPDATE
  Result<std::unique_ptr<Statement>> ParseDelete();        // after DELETE
  Result<std::unique_ptr<Statement>> ParseCreate();        // after CREATE
  Result<std::unique_ptr<Statement>> ParseDrop();          // after DROP
  Result<std::unique_ptr<Statement>> ParseCluster();       // after CLUSTER

  Result<TableRef> ParseTableRef();
  Result<DataType> ParseType();

  // Expression precedence ladder.
  Result<ExprPtr> ParseExpr() { return ParseOr(); }
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<std::unique_ptr<Statement>> Parser::ParseStatement() {
  std::unique_ptr<Statement> stmt;
  if (MatchKeyword("select")) {
    ORPHEUS_ASSIGN_OR_RETURN(auto select, ParseSelect());
    stmt = std::make_unique<Statement>();
    stmt->kind = Statement::Kind::kSelect;
    stmt->select = std::move(select);
  } else if (MatchKeyword("insert")) {
    ORPHEUS_ASSIGN_OR_RETURN(stmt, ParseInsert());
  } else if (MatchKeyword("update")) {
    ORPHEUS_ASSIGN_OR_RETURN(stmt, ParseUpdate());
  } else if (MatchKeyword("delete")) {
    ORPHEUS_ASSIGN_OR_RETURN(stmt, ParseDelete());
  } else if (MatchKeyword("create")) {
    ORPHEUS_ASSIGN_OR_RETURN(stmt, ParseCreate());
  } else if (MatchKeyword("drop")) {
    ORPHEUS_ASSIGN_OR_RETURN(stmt, ParseDrop());
  } else if (MatchKeyword("cluster")) {
    ORPHEUS_ASSIGN_OR_RETURN(stmt, ParseCluster());
  } else {
    return Status::ParseError("expected a statement keyword near offset " +
                              std::to_string(Peek().offset));
  }
  MatchOp(";");
  if (Peek().type != TokenType::kEnd) {
    return Status::ParseError("trailing input near offset " +
                              std::to_string(Peek().offset));
  }
  return stmt;
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelect() {
  auto select = std::make_unique<SelectStmt>();
  select->distinct = MatchKeyword("distinct");

  // Select list.
  while (true) {
    SelectItem item;
    if (CheckOp("*")) {
      Advance();
      item.expr = Expr::MakeStar();
    } else if (Peek().type == TokenType::kIdentifier &&
               Peek(1).type == TokenType::kOperator && Peek(1).text == "." &&
               Peek(2).type == TokenType::kOperator && Peek(2).text == "*") {
      // Qualified star: `alias.*`.
      std::string qualifier = Advance().text;
      Advance();  // '.'
      Advance();  // '*'
      item.expr = Expr::MakeStar();
      item.expr->column = qualifier;
    } else {
      ORPHEUS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("as")) {
        ORPHEUS_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
      } else if (Peek().type == TokenType::kIdentifier) {
        item.alias = Advance().text;  // bare alias
      }
    }
    select->items.push_back(std::move(item));
    if (!MatchOp(",")) break;
  }

  if (MatchKeyword("into")) {
    ORPHEUS_ASSIGN_OR_RETURN(select->into_table, ExpectIdentifier());
  }

  if (MatchKeyword("from")) {
    while (true) {
      ORPHEUS_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
      select->from.push_back(std::move(ref));
      if (!MatchOp(",")) break;
    }
  }

  if (MatchKeyword("where")) {
    ORPHEUS_ASSIGN_OR_RETURN(select->where, ParseExpr());
  }
  if (MatchKeyword("group")) {
    ORPHEUS_RETURN_NOT_OK(ExpectKeyword("by"));
    while (true) {
      ORPHEUS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      select->group_by.push_back(std::move(e));
      if (!MatchOp(",")) break;
    }
  }
  if (MatchKeyword("having")) {
    ORPHEUS_ASSIGN_OR_RETURN(select->having, ParseExpr());
  }
  if (MatchKeyword("order")) {
    ORPHEUS_RETURN_NOT_OK(ExpectKeyword("by"));
    while (true) {
      OrderItem item;
      ORPHEUS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("desc")) {
        item.descending = true;
      } else {
        MatchKeyword("asc");
      }
      select->order_by.push_back(std::move(item));
      if (!MatchOp(",")) break;
    }
  }
  if (MatchKeyword("limit")) {
    if (Peek().type != TokenType::kInteger) {
      return Status::ParseError("LIMIT expects an integer");
    }
    select->limit = Advance().int_value;
  }
  return select;
}

Result<TableRef> Parser::ParseTableRef() {
  TableRef ref;
  if (MatchOp("(")) {
    ORPHEUS_RETURN_NOT_OK(ExpectKeyword("select"));
    ORPHEUS_ASSIGN_OR_RETURN(ref.subquery, ParseSelect());
    ORPHEUS_RETURN_NOT_OK(ExpectOp(")"));
    MatchKeyword("as");
    ORPHEUS_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
    return ref;
  }
  ORPHEUS_ASSIGN_OR_RETURN(ref.name, ExpectIdentifier());
  if (MatchKeyword("as")) {
    ORPHEUS_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
  } else if (Peek().type == TokenType::kIdentifier) {
    ref.alias = Advance().text;
  } else {
    ref.alias = ref.name;
  }
  return ref;
}

Result<std::unique_ptr<Statement>> Parser::ParseInsert() {
  ORPHEUS_RETURN_NOT_OK(ExpectKeyword("into"));
  auto stmt = std::make_unique<Statement>();
  stmt->kind = Statement::Kind::kInsert;
  ORPHEUS_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
  if (MatchOp("(")) {
    while (true) {
      ORPHEUS_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      stmt->columns.push_back(std::move(col));
      if (!MatchOp(",")) break;
    }
    ORPHEUS_RETURN_NOT_OK(ExpectOp(")"));
  }
  if (MatchKeyword("values")) {
    while (true) {
      ORPHEUS_RETURN_NOT_OK(ExpectOp("("));
      std::vector<ExprPtr> row;
      while (true) {
        ORPHEUS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
        if (!MatchOp(",")) break;
      }
      ORPHEUS_RETURN_NOT_OK(ExpectOp(")"));
      stmt->values.push_back(std::move(row));
      if (!MatchOp(",")) break;
    }
    return stmt;
  }
  if (MatchKeyword("select")) {
    ORPHEUS_ASSIGN_OR_RETURN(stmt->insert_select, ParseSelect());
    return stmt;
  }
  return Status::ParseError("INSERT expects VALUES or SELECT");
}

Result<std::unique_ptr<Statement>> Parser::ParseUpdate() {
  auto stmt = std::make_unique<Statement>();
  stmt->kind = Statement::Kind::kUpdate;
  ORPHEUS_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
  ORPHEUS_RETURN_NOT_OK(ExpectKeyword("set"));
  while (true) {
    ORPHEUS_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
    ORPHEUS_RETURN_NOT_OK(ExpectOp("="));
    ORPHEUS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    stmt->assignments.emplace_back(std::move(col), std::move(e));
    if (!MatchOp(",")) break;
  }
  if (MatchKeyword("where")) {
    ORPHEUS_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return stmt;
}

Result<std::unique_ptr<Statement>> Parser::ParseDelete() {
  ORPHEUS_RETURN_NOT_OK(ExpectKeyword("from"));
  auto stmt = std::make_unique<Statement>();
  stmt->kind = Statement::Kind::kDelete;
  ORPHEUS_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
  if (MatchKeyword("where")) {
    ORPHEUS_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return stmt;
}

Result<DataType> Parser::ParseType() {
  if (Peek().type != TokenType::kKeyword && Peek().type != TokenType::kIdentifier) {
    return Status::ParseError("expected a type name near offset " +
                              std::to_string(Peek().offset));
  }
  std::string name = Advance().text;
  if (MatchOp("[")) {
    ORPHEUS_RETURN_NOT_OK(ExpectOp("]"));
    name += "[]";
  }
  DataType type = DataTypeFromName(name);
  if (type == DataType::kNull) {
    return Status::ParseError("unknown type: " + name);
  }
  return type;
}

Result<std::unique_ptr<Statement>> Parser::ParseCreate() {
  if (MatchKeyword("table")) {
    auto stmt = std::make_unique<Statement>();
    stmt->kind = Statement::Kind::kCreateTable;
    if (MatchKeyword("if")) {
      ORPHEUS_RETURN_NOT_OK(ExpectKeyword("not"));
      ORPHEUS_RETURN_NOT_OK(ExpectKeyword("exists"));
      stmt->if_not_exists = true;
    }
    ORPHEUS_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
    ORPHEUS_RETURN_NOT_OK(ExpectOp("("));
    while (true) {
      if (MatchKeyword("primary")) {
        ORPHEUS_RETURN_NOT_OK(ExpectKeyword("key"));
        ORPHEUS_RETURN_NOT_OK(ExpectOp("("));
        while (true) {
          ORPHEUS_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
          stmt->primary_key.push_back(std::move(col));
          if (!MatchOp(",")) break;
        }
        ORPHEUS_RETURN_NOT_OK(ExpectOp(")"));
      } else {
        ColumnDef def;
        ORPHEUS_ASSIGN_OR_RETURN(def.name, ExpectIdentifier());
        ORPHEUS_ASSIGN_OR_RETURN(def.type, ParseType());
        stmt->column_defs.push_back(std::move(def));
      }
      if (!MatchOp(",")) break;
    }
    ORPHEUS_RETURN_NOT_OK(ExpectOp(")"));
    return stmt;
  }
  if (MatchKeyword("index")) {
    auto stmt = std::make_unique<Statement>();
    stmt->kind = Statement::Kind::kCreateIndex;
    ORPHEUS_RETURN_NOT_OK(ExpectKeyword("on"));
    ORPHEUS_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
    ORPHEUS_RETURN_NOT_OK(ExpectOp("("));
    ORPHEUS_ASSIGN_OR_RETURN(stmt->index_column, ExpectIdentifier());
    ORPHEUS_RETURN_NOT_OK(ExpectOp(")"));
    return stmt;
  }
  return Status::ParseError("CREATE expects TABLE or INDEX");
}

Result<std::unique_ptr<Statement>> Parser::ParseDrop() {
  ORPHEUS_RETURN_NOT_OK(ExpectKeyword("table"));
  auto stmt = std::make_unique<Statement>();
  stmt->kind = Statement::Kind::kDropTable;
  if (MatchKeyword("if")) {
    ORPHEUS_RETURN_NOT_OK(ExpectKeyword("exists"));
    stmt->if_exists = true;
  }
  ORPHEUS_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
  return stmt;
}

Result<std::unique_ptr<Statement>> Parser::ParseCluster() {
  auto stmt = std::make_unique<Statement>();
  stmt->kind = Statement::Kind::kClusterBy;
  ORPHEUS_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
  ORPHEUS_RETURN_NOT_OK(ExpectKeyword("by"));
  ORPHEUS_ASSIGN_OR_RETURN(stmt->index_column, ExpectIdentifier());
  return stmt;
}

Result<ExprPtr> Parser::ParseOr() {
  ORPHEUS_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (MatchKeyword("or")) {
    ORPHEUS_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = Expr::MakeBinary(BinOp::kOr, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseAnd() {
  ORPHEUS_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (MatchKeyword("and")) {
    ORPHEUS_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = Expr::MakeBinary(BinOp::kAnd, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("not")) {
    ORPHEUS_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
    return Expr::MakeUnary(UnOp::kNot, std::move(inner));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  ORPHEUS_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
  // IN (subquery)
  if (MatchKeyword("in")) {
    ORPHEUS_RETURN_NOT_OK(ExpectOp("("));
    ORPHEUS_RETURN_NOT_OK(ExpectKeyword("select"));
    ORPHEUS_ASSIGN_OR_RETURN(auto sub, ParseSelect());
    ORPHEUS_RETURN_NOT_OK(ExpectOp(")"));
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kInSubquery;
    e->args.push_back(std::move(left));
    e->subquery = std::move(sub);
    return e;
  }
  struct OpMap {
    const char* text;
    BinOp op;
  };
  static constexpr OpMap kOps[] = {
      {"<@", BinOp::kContains}, {"<=", BinOp::kLe}, {">=", BinOp::kGe},
      {"<>", BinOp::kNe},       {"!=", BinOp::kNe}, {"=", BinOp::kEq},
      {"<", BinOp::kLt},        {">", BinOp::kGt},
  };
  for (const OpMap& candidate : kOps) {
    if (MatchOp(candidate.text)) {
      ORPHEUS_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
      return Expr::MakeBinary(candidate.op, std::move(left), std::move(right));
    }
  }
  return left;
}

Result<ExprPtr> Parser::ParseAdditive() {
  ORPHEUS_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  while (true) {
    BinOp op;
    if (MatchOp("+")) {
      op = BinOp::kAdd;
    } else if (MatchOp("-")) {
      op = BinOp::kSub;
    } else if (MatchOp("||")) {
      op = BinOp::kConcat;
    } else {
      break;
    }
    ORPHEUS_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
    left = Expr::MakeBinary(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  ORPHEUS_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
  while (true) {
    BinOp op;
    if (MatchOp("*")) {
      op = BinOp::kMul;
    } else if (MatchOp("/")) {
      op = BinOp::kDiv;
    } else if (MatchOp("%")) {
      op = BinOp::kMod;
    } else {
      break;
    }
    ORPHEUS_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
    left = Expr::MakeBinary(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseUnary() {
  if (MatchOp("-")) {
    ORPHEUS_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
    return Expr::MakeUnary(UnOp::kNeg, std::move(inner));
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& tok = Peek();
  switch (tok.type) {
    case TokenType::kInteger:
      Advance();
      return Expr::MakeLiteral(Value::Int(tok.int_value));
    case TokenType::kFloat:
      Advance();
      return Expr::MakeLiteral(Value::Double(tok.double_value));
    case TokenType::kString:
      Advance();
      return Expr::MakeLiteral(Value::String(tok.text));
    case TokenType::kKeyword: {
      if (MatchKeyword("null")) return Expr::MakeLiteral(Value::Null());
      if (MatchKeyword("true")) return Expr::MakeLiteral(Value::Bool(true));
      if (MatchKeyword("false")) return Expr::MakeLiteral(Value::Bool(false));
      if (MatchKeyword("array")) {
        if (MatchOp("[")) {
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kArrayLiteral;
          if (!CheckOp("]")) {
            while (true) {
              ORPHEUS_ASSIGN_OR_RETURN(ExprPtr elem, ParseExpr());
              e->args.push_back(std::move(elem));
              if (!MatchOp(",")) break;
            }
          }
          ORPHEUS_RETURN_NOT_OK(ExpectOp("]"));
          return e;
        }
        if (MatchOp("(")) {
          ORPHEUS_RETURN_NOT_OK(ExpectKeyword("select"));
          ORPHEUS_ASSIGN_OR_RETURN(auto sub, ParseSelect());
          ORPHEUS_RETURN_NOT_OK(ExpectOp(")"));
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kArraySubquery;
          e->subquery = std::move(sub);
          return e;
        }
        return Status::ParseError("ARRAY expects '[' or '('");
      }
      return Status::ParseError("unexpected keyword '" + tok.text +
                                "' near offset " + std::to_string(tok.offset));
    }
    case TokenType::kIdentifier: {
      std::string name = Advance().text;
      if (MatchOp("(")) {  // function call
        std::vector<ExprPtr> args;
        if (!CheckOp(")")) {
          while (true) {
            if (CheckOp("*")) {
              Advance();
              args.push_back(Expr::MakeStar());
            } else {
              ORPHEUS_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
              args.push_back(std::move(arg));
            }
            if (!MatchOp(",")) break;
          }
        }
        ORPHEUS_RETURN_NOT_OK(ExpectOp(")"));
        return Expr::MakeFunc(ToLower(name), std::move(args));
      }
      if (MatchOp(".")) {
        ORPHEUS_ASSIGN_OR_RETURN(std::string field, ExpectIdentifier());
        return Expr::MakeColumn(name + "." + field);
      }
      return Expr::MakeColumn(std::move(name));
    }
    case TokenType::kOperator: {
      if (MatchOp("(")) {
        ORPHEUS_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        ORPHEUS_RETURN_NOT_OK(ExpectOp(")"));
        return inner;
      }
      break;
    }
    case TokenType::kEnd:
      break;
  }
  return Status::ParseError("unexpected token near offset " +
                            std::to_string(tok.offset));
}

}  // namespace

Result<std::unique_ptr<Statement>> ParseSql(std::string_view sql) {
  ORPHEUS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace orpheus::rel
