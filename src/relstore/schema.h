// Schema: an ordered list of named, typed columns. Used both for base
// tables and for intermediate query results (where names may be
// qualified as "alias.column").

#ifndef ORPHEUS_RELSTORE_SCHEMA_H_
#define ORPHEUS_RELSTORE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relstore/types.h"

namespace orpheus::rel {

struct ColumnDef {
  std::string name;
  DataType type;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {}

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnDef& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  void AddColumn(std::string name, DataType type) {
    columns_.push_back({std::move(name), type});
  }

  // Exact-name lookup; -1 if absent.
  int FindColumn(const std::string& name) const;

  // SQL-style resolution: exact match first; otherwise, for an
  // unqualified `ref`, matches any column named "<something>.ref".
  // Returns kNotFound / kInvalidArgument("ambiguous") on failure.
  Result<int> Resolve(const std::string& ref) const;

  // Renames all columns to "qualifier.name" (used when a table enters
  // a FROM clause under an alias).
  Schema Qualified(const std::string& qualifier) const;

  // Strips any "alias." prefixes (used when materializing SELECT INTO).
  Schema Unqualified() const;

  bool Equals(const Schema& other) const;

  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace orpheus::rel

#endif  // ORPHEUS_RELSTORE_SCHEMA_H_
