#include "relstore/schema.h"

#include "common/str_util.h"

namespace orpheus::rel {

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Result<int> Schema::Resolve(const std::string& ref) const {
  int exact = FindColumn(ref);
  if (exact >= 0) return exact;
  if (ref.find('.') == std::string::npos) {
    int found = -1;
    std::string suffix = "." + ref;
    for (size_t i = 0; i < columns_.size(); ++i) {
      const std::string& name = columns_[i].name;
      if (name.size() > suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
        if (found >= 0) {
          return Status::InvalidArgument("ambiguous column reference: " + ref);
        }
        found = static_cast<int>(i);
      }
    }
    if (found >= 0) return found;
  }
  return Status::NotFound("column not found: " + ref);
}

Schema Schema::Qualified(const std::string& qualifier) const {
  Schema out;
  for (const ColumnDef& col : columns_) {
    // Re-qualify from scratch: strip any existing prefix first.
    size_t dot = col.name.rfind('.');
    std::string base = dot == std::string::npos ? col.name : col.name.substr(dot + 1);
    out.AddColumn(qualifier + "." + base, col.type);
  }
  return out;
}

Schema Schema::Unqualified() const {
  Schema out;
  for (const ColumnDef& col : columns_) {
    size_t dot = col.name.rfind('.');
    out.AddColumn(dot == std::string::npos ? col.name : col.name.substr(dot + 1),
                  col.type);
  }
  return out;
}

bool Schema::Equals(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const ColumnDef& col : columns_) {
    parts.push_back(col.name + " " + DataTypeName(col.type));
  }
  return "(" + Join(parts, ", ") + ")";
}

}  // namespace orpheus::rel
