// Abstract syntax tree for the relstore SQL dialect.
//
// The dialect covers what OrpheusDB's query translator emits (the
// paper's Table 1 plus versioned-query rewrites): SELECT [INTO] with
// comma joins, subqueries in FROM, WHERE with array containment `<@`,
// `unnest`, `IN (subquery)`, aggregates with GROUP BY, ORDER BY/LIMIT,
// INSERT (VALUES / SELECT / ARRAY(subquery)), UPDATE with array append,
// DELETE, CREATE/DROP TABLE, CREATE INDEX, and CLUSTER BY.

#ifndef ORPHEUS_RELSTORE_SQL_AST_H_
#define ORPHEUS_RELSTORE_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "relstore/schema.h"
#include "relstore/value.h"

namespace orpheus::rel {

struct SelectStmt;

enum class ExprKind {
  kLiteral,        // 42, 1.5, 'text', NULL
  kColumnRef,      // col or alias.col
  kStar,           // * (select list and COUNT(*) only)
  kBinary,         // l <op> r
  kUnary,          // NOT x, -x
  kFunc,           // name(args...); includes aggregates and unnest
  kArrayLiteral,   // ARRAY[e1, e2, ...]
  kArraySubquery,  // ARRAY(SELECT single-col ...)
  kInSubquery,     // lhs IN (SELECT single-col ...)
};

enum class BinOp {
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kAdd, kSub, kMul, kDiv, kMod,
  kContains,  // <@ : left array contained in right array
  kConcat,    // || : array/string concatenation
};

enum class UnOp { kNot, kNeg };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;

  Value literal;                         // kLiteral
  std::string column;                    // kColumnRef (as written);
                                         // for kStar: optional qualifier
                                         // ("t" in `SELECT t.*`)
  BinOp bin_op = BinOp::kEq;             // kBinary
  UnOp un_op = UnOp::kNot;               // kUnary
  std::string func_name;                 // kFunc, lowercased
  std::vector<ExprPtr> args;             // operands / func args / array elems
  std::unique_ptr<SelectStmt> subquery;  // kInSubquery/kArraySubquery

  // Filled by the executor's binder: resolved column position within
  // the chunk the expression currently evaluates against.
  int bound_col = -1;

  static ExprPtr MakeLiteral(Value v);
  static ExprPtr MakeColumn(std::string name);
  static ExprPtr MakeStar();
  static ExprPtr MakeBinary(BinOp op, ExprPtr l, ExprPtr r);
  static ExprPtr MakeUnary(UnOp op, ExprPtr x);
  static ExprPtr MakeFunc(std::string name, std::vector<ExprPtr> args);

  // True for count/sum/avg/min/max calls (not for their arguments).
  bool IsAggregate() const;

  std::string ToString() const;
};

struct SelectItem {
  ExprPtr expr;
  std::string alias;  // empty if none
};

struct TableRef {
  std::string name;                      // base table, or empty
  std::string alias;                     // optional; defaults to name
  std::unique_ptr<SelectStmt> subquery;  // set iff derived table
};

struct OrderItem {
  ExprPtr expr;
  bool descending = false;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::string into_table;  // SELECT ... INTO <table>; empty if none
  std::vector<TableRef> from;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  // Evaluated over the aggregated output schema (aliases visible).
  ExprPtr having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 = no limit
};

struct Statement {
  enum class Kind {
    kSelect,
    kInsert,
    kUpdate,
    kDelete,
    kCreateTable,
    kDropTable,
    kCreateIndex,
    kClusterBy,
  };

  Kind kind;

  std::unique_ptr<SelectStmt> select;  // kSelect

  std::string table;  // target of DML/DDL

  // INSERT
  std::vector<std::string> columns;           // optional column list
  std::vector<std::vector<ExprPtr>> values;   // VALUES rows
  std::unique_ptr<SelectStmt> insert_select;  // INSERT ... SELECT

  // UPDATE
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // UPDATE/DELETE predicate

  // CREATE TABLE
  std::vector<ColumnDef> column_defs;
  std::vector<std::string> primary_key;
  bool if_exists = false;      // DROP TABLE IF EXISTS
  bool if_not_exists = false;  // CREATE TABLE IF NOT EXISTS

  // CREATE INDEX / CLUSTER BY column
  std::string index_column;
};

}  // namespace orpheus::rel

#endif  // ORPHEUS_RELSTORE_SQL_AST_H_
