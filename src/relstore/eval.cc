#include "relstore/eval.h"

#include <algorithm>
#include <cmath>

#include "relstore/executor.h"

namespace orpheus::rel {

Status Evaluator::Bind(Expr* expr, const Schema& schema) {
  switch (expr->kind) {
    case ExprKind::kColumnRef: {
      ORPHEUS_ASSIGN_OR_RETURN(expr->bound_col, schema.Resolve(expr->column));
      return Status::OK();
    }
    case ExprKind::kInSubquery: {
      ORPHEUS_RETURN_NOT_OK(Bind(expr->args[0].get(), schema));
      if (executor_ == nullptr) {
        return Status::Internal("subquery evaluation requires an executor");
      }
      ORPHEUS_ASSIGN_OR_RETURN(Chunk result, executor_->RunSelect(*expr->subquery));
      if (result.num_columns() != 1) {
        return Status::InvalidArgument("IN subquery must return one column");
      }
      const Column& col = result.column(0);
      if (col.type() == DataType::kInt64) {
        std::unordered_set<int64_t>& set = in_int_sets_[expr];
        set.clear();
        set.reserve(col.size() * 2);
        for (int64_t v : col.ints()) set.insert(v);
      } else {
        std::vector<Value>& values = in_value_lists_[expr];
        values.clear();
        values.reserve(col.size());
        for (size_t i = 0; i < col.size(); ++i) values.push_back(col.Get(i));
      }
      return Status::OK();
    }
    case ExprKind::kArraySubquery: {
      if (executor_ == nullptr) {
        return Status::Internal("subquery evaluation requires an executor");
      }
      ORPHEUS_ASSIGN_OR_RETURN(Chunk result, executor_->RunSelect(*expr->subquery));
      if (result.num_columns() != 1 ||
          result.column(0).type() != DataType::kInt64) {
        return Status::InvalidArgument(
            "ARRAY(subquery) must return one INT column");
      }
      array_subqueries_[expr] = Value::Array(result.column(0).ints());
      return Status::OK();
    }
    default:
      for (ExprPtr& arg : expr->args) {
        ORPHEUS_RETURN_NOT_OK(Bind(arg.get(), schema));
      }
      return Status::OK();
  }
}

Result<Value> Evaluator::Eval(const Expr& expr, const Chunk& chunk, size_t row) const {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kColumnRef:
      if (expr.bound_col < 0) {
        return Status::Internal("unbound column reference: " + expr.column);
      }
      return chunk.Get(row, expr.bound_col);
    case ExprKind::kStar:
      return Status::InvalidArgument("'*' is not a scalar expression");
    case ExprKind::kBinary:
      return EvalBinary(expr, chunk, row);
    case ExprKind::kUnary: {
      ORPHEUS_ASSIGN_OR_RETURN(Value v, Eval(*expr.args[0], chunk, row));
      if (expr.un_op == UnOp::kNot) {
        if (v.is_null()) return Value::Null();
        return Value::Bool(!v.AsBool());
      }
      if (v.is_null()) return Value::Null();
      if (v.type() == DataType::kInt64) return Value::Int(-v.AsInt());
      return Value::Double(-v.AsDouble());
    }
    case ExprKind::kFunc:
      return EvalFunc(expr, chunk, row);
    case ExprKind::kArrayLiteral: {
      IntArray out;
      out.reserve(expr.args.size());
      for (const ExprPtr& arg : expr.args) {
        ORPHEUS_ASSIGN_OR_RETURN(Value v, Eval(*arg, chunk, row));
        if (v.type() != DataType::kInt64) {
          return Status::InvalidArgument("ARRAY[...] elements must be INT");
        }
        out.push_back(v.AsInt());
      }
      return Value::Array(std::move(out));
    }
    case ExprKind::kArraySubquery: {
      auto it = array_subqueries_.find(&expr);
      if (it == array_subqueries_.end()) {
        return Status::Internal("ARRAY subquery was not bound");
      }
      return it->second;
    }
    case ExprKind::kInSubquery: {
      ORPHEUS_ASSIGN_OR_RETURN(Value lhs, Eval(*expr.args[0], chunk, row));
      if (lhs.is_null()) return Value::Bool(false);
      auto iit = in_int_sets_.find(&expr);
      if (iit != in_int_sets_.end()) {
        if (lhs.type() != DataType::kInt64) return Value::Bool(false);
        return Value::Bool(iit->second.count(lhs.AsInt()) > 0);
      }
      auto vit = in_value_lists_.find(&expr);
      if (vit == in_value_lists_.end()) {
        return Status::Internal("IN subquery was not bound");
      }
      for (const Value& v : vit->second) {
        if (lhs.Equals(v)) return Value::Bool(true);
      }
      return Value::Bool(false);
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<Value> Evaluator::EvalBinary(const Expr& expr, const Chunk& chunk,
                                    size_t row) const {
  const BinOp op = expr.bin_op;
  // AND/OR get short-circuit evaluation.
  if (op == BinOp::kAnd || op == BinOp::kOr) {
    ORPHEUS_ASSIGN_OR_RETURN(Value l, Eval(*expr.args[0], chunk, row));
    bool lb = !l.is_null() && l.AsBool();
    if (op == BinOp::kAnd && !lb) return Value::Bool(false);
    if (op == BinOp::kOr && lb) return Value::Bool(true);
    ORPHEUS_ASSIGN_OR_RETURN(Value r, Eval(*expr.args[1], chunk, row));
    bool rb = !r.is_null() && r.AsBool();
    return Value::Bool(rb);
  }

  ORPHEUS_ASSIGN_OR_RETURN(Value l, Eval(*expr.args[0], chunk, row));
  ORPHEUS_ASSIGN_OR_RETURN(Value r, Eval(*expr.args[1], chunk, row));

  switch (op) {
    case BinOp::kEq:
      return Value::Bool(l.Equals(r));
    case BinOp::kNe:
      if (l.is_null() || r.is_null()) return Value::Bool(false);
      return Value::Bool(!l.Equals(r));
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe: {
      if (l.is_null() || r.is_null()) return Value::Bool(false);
      int cmp = l.Compare(r);
      switch (op) {
        case BinOp::kLt: return Value::Bool(cmp < 0);
        case BinOp::kLe: return Value::Bool(cmp <= 0);
        case BinOp::kGt: return Value::Bool(cmp > 0);
        default: return Value::Bool(cmp >= 0);
      }
    }
    case BinOp::kContains: {
      // l <@ r: every element of l appears in r.
      if (l.type() != DataType::kIntArray || r.type() != DataType::kIntArray) {
        return Status::InvalidArgument("<@ expects INT[] operands");
      }
      const IntArray& needle = l.AsArray();
      const IntArray& hay = r.AsArray();
      for (int64_t v : needle) {
        if (std::find(hay.begin(), hay.end(), v) == hay.end()) {
          return Value::Bool(false);
        }
      }
      return Value::Bool(true);
    }
    case BinOp::kConcat: {
      if (l.type() == DataType::kString && r.type() == DataType::kString) {
        return Value::String(l.AsString() + r.AsString());
      }
      if (l.type() == DataType::kIntArray && r.type() == DataType::kIntArray) {
        IntArray out = l.AsArray();
        const IntArray& rhs = r.AsArray();
        out.insert(out.end(), rhs.begin(), rhs.end());
        return Value::Array(std::move(out));
      }
      if (l.type() == DataType::kIntArray && r.type() == DataType::kInt64) {
        IntArray out = l.AsArray();
        out.push_back(r.AsInt());
        return Value::Array(std::move(out));
      }
      return Status::InvalidArgument("|| expects strings or arrays");
    }
    case BinOp::kAdd: {
      // PostgreSQL-intarray-style append: vlist + vid.
      if (l.type() == DataType::kIntArray && r.type() == DataType::kInt64) {
        IntArray out = l.AsArray();
        out.push_back(r.AsInt());
        return Value::Array(std::move(out));
      }
      if (l.type() == DataType::kIntArray && r.type() == DataType::kIntArray) {
        IntArray out = l.AsArray();
        const IntArray& rhs = r.AsArray();
        out.insert(out.end(), rhs.begin(), rhs.end());
        return Value::Array(std::move(out));
      }
      [[fallthrough]];
    }
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv:
    case BinOp::kMod: {
      if (l.is_null() || r.is_null()) return Value::Null();
      if (!l.IsNumeric() || !r.IsNumeric()) {
        return Status::InvalidArgument("arithmetic expects numeric operands");
      }
      if (l.type() == DataType::kInt64 && r.type() == DataType::kInt64) {
        int64_t a = l.AsInt();
        int64_t b = r.AsInt();
        switch (op) {
          case BinOp::kAdd: return Value::Int(a + b);
          case BinOp::kSub: return Value::Int(a - b);
          case BinOp::kMul: return Value::Int(a * b);
          case BinOp::kDiv:
            if (b == 0) return Status::InvalidArgument("division by zero");
            return Value::Int(a / b);
          case BinOp::kMod:
            if (b == 0) return Status::InvalidArgument("division by zero");
            return Value::Int(a % b);
          default: break;
        }
      }
      double a = l.AsDouble();
      double b = r.AsDouble();
      switch (op) {
        case BinOp::kAdd: return Value::Double(a + b);
        case BinOp::kSub: return Value::Double(a - b);
        case BinOp::kMul: return Value::Double(a * b);
        case BinOp::kDiv:
          if (b == 0) return Status::InvalidArgument("division by zero");
          return Value::Double(a / b);
        case BinOp::kMod:
          return Status::InvalidArgument("%% expects integers");
        default: break;
      }
      return Status::Internal("unhandled arithmetic op");
    }
    default:
      return Status::Internal("unhandled binary op");
  }
}

Result<Value> Evaluator::EvalFunc(const Expr& expr, const Chunk& chunk,
                                  size_t row) const {
  const std::string& name = expr.func_name;
  if (name == "unnest") {
    return Status::InvalidArgument(
        "unnest() is only supported at the top level of a select list");
  }
  if (expr.IsAggregate()) {
    return Status::InvalidArgument(
        "aggregate " + name + "() used outside an aggregating query");
  }
  if (name == "array_length" || name == "cardinality") {
    if (expr.args.empty()) {
      return Status::InvalidArgument(name + " expects an array argument");
    }
    ORPHEUS_ASSIGN_OR_RETURN(Value v, Eval(*expr.args[0], chunk, row));
    if (v.type() != DataType::kIntArray) {
      return Status::InvalidArgument(name + " expects an INT[] argument");
    }
    return Value::Int(static_cast<int64_t>(v.AsArray().size()));
  }
  if (name == "array_append") {
    if (expr.args.size() != 2) {
      return Status::InvalidArgument("array_append expects (array, int)");
    }
    ORPHEUS_ASSIGN_OR_RETURN(Value arr, Eval(*expr.args[0], chunk, row));
    ORPHEUS_ASSIGN_OR_RETURN(Value v, Eval(*expr.args[1], chunk, row));
    if (arr.type() != DataType::kIntArray || v.type() != DataType::kInt64) {
      return Status::InvalidArgument("array_append expects (array, int)");
    }
    IntArray out = arr.AsArray();
    out.push_back(v.AsInt());
    return Value::Array(std::move(out));
  }
  if (name == "abs") {
    if (expr.args.size() != 1) return Status::InvalidArgument("abs expects 1 arg");
    ORPHEUS_ASSIGN_OR_RETURN(Value v, Eval(*expr.args[0], chunk, row));
    if (v.is_null()) return Value::Null();
    if (v.type() == DataType::kInt64) return Value::Int(std::abs(v.AsInt()));
    return Value::Double(std::fabs(v.AsDouble()));
  }
  if (name == "coalesce") {
    for (const ExprPtr& arg : expr.args) {
      ORPHEUS_ASSIGN_OR_RETURN(Value v, Eval(*arg, chunk, row));
      if (!v.is_null()) return v;
    }
    return Value::Null();
  }
  return Status::NotSupported("unknown function: " + name);
}

Result<bool> Evaluator::EvalPredicate(const Expr& expr, const Chunk& chunk,
                                      size_t row) const {
  ORPHEUS_ASSIGN_OR_RETURN(Value v, Eval(expr, chunk, row));
  return !v.is_null() && v.AsBool();
}

}  // namespace orpheus::rel
