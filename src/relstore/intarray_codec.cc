#include "relstore/intarray_codec.h"

namespace orpheus::rel {

namespace {

void PutVarint(uint64_t value, std::string* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

bool GetVarint(const std::string& in, size_t* pos, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  while (*pos < in.size() && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>(in[*pos]);
    ++*pos;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace

Result<std::string> EncodeSortedArray(const IntArray& values) {
  std::string out;
  PutVarint(static_cast<uint64_t>(values.size()), &out);
  size_t i = 0;
  int64_t prev_end = 0;  // exclusive end of the previous run
  while (i < values.size()) {
    if (values[i] < prev_end || (i > 0 && values[i] == values[i - 1])) {
      return Status::InvalidArgument(
          "EncodeSortedArray requires a strictly increasing array");
    }
    // Extend the run of consecutive values.
    size_t run_end = i + 1;
    while (run_end < values.size() && values[run_end] == values[run_end - 1] + 1) {
      ++run_end;
    }
    uint64_t gap = static_cast<uint64_t>(values[i] - prev_end);
    uint64_t length = static_cast<uint64_t>(run_end - i);
    PutVarint(gap, &out);
    PutVarint(length, &out);
    prev_end = values[run_end - 1] + 1;
    i = run_end;
  }
  return out;
}

Result<IntArray> DecodeSortedArray(const std::string& encoded) {
  size_t pos = 0;
  uint64_t count = 0;
  if (!GetVarint(encoded, &pos, &count)) {
    return Status::InvalidArgument("truncated encoded array (count)");
  }
  IntArray out;
  out.reserve(count);
  int64_t cursor = 0;
  while (out.size() < count) {
    uint64_t gap = 0;
    uint64_t length = 0;
    if (!GetVarint(encoded, &pos, &gap) || !GetVarint(encoded, &pos, &length)) {
      return Status::InvalidArgument("truncated encoded array (run)");
    }
    cursor += static_cast<int64_t>(gap);
    for (uint64_t j = 0; j < length; ++j) {
      out.push_back(cursor++);
    }
  }
  if (pos != encoded.size()) {
    return Status::InvalidArgument("trailing bytes in encoded array");
  }
  return out;
}

}  // namespace orpheus::rel
