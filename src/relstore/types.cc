#include "relstore/types.h"

#include "common/str_util.h"

namespace orpheus::rel {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt64:
      return "INT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "TEXT";
    case DataType::kBool:
      return "BOOL";
    case DataType::kIntArray:
      return "INT[]";
  }
  return "UNKNOWN";
}

DataType DataTypeFromName(const std::string& name) {
  std::string lower = ToLower(name);
  if (lower == "int" || lower == "integer" || lower == "bigint" || lower == "int64") {
    return DataType::kInt64;
  }
  if (lower == "double" || lower == "float" || lower == "real" ||
      lower == "decimal" || lower == "numeric") {
    return DataType::kDouble;
  }
  if (lower == "text" || lower == "string" || lower == "varchar") {
    return DataType::kString;
  }
  if (lower == "bool" || lower == "boolean") {
    return DataType::kBool;
  }
  if (lower == "int[]" || lower == "integer[]" || lower == "intarray") {
    return DataType::kIntArray;
  }
  return DataType::kNull;
}

}  // namespace orpheus::rel
