#include "relstore/sql_ast.h"

namespace orpheus::rel {

ExprPtr Expr::MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::MakeColumn(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->column = std::move(name);
  return e;
}

ExprPtr Expr::MakeStar() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

ExprPtr Expr::MakeBinary(BinOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->args.push_back(std::move(l));
  e->args.push_back(std::move(r));
  return e;
}

ExprPtr Expr::MakeUnary(UnOp op, ExprPtr x) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->un_op = op;
  e->args.push_back(std::move(x));
  return e;
}

ExprPtr Expr::MakeFunc(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunc;
  e->func_name = std::move(name);
  e->args = std::move(args);
  return e;
}

bool Expr::IsAggregate() const {
  if (kind != ExprKind::kFunc) return false;
  return func_name == "count" || func_name == "sum" || func_name == "avg" ||
         func_name == "min" || func_name == "max";
}

namespace {

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "<>";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "AND";
    case BinOp::kOr: return "OR";
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kContains: return "<@";
    case BinOp::kConcat: return "||";
  }
  return "?";
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.type() == DataType::kString ? "'" + literal.ToString() + "'"
                                                 : literal.ToString();
    case ExprKind::kColumnRef:
      return column;
    case ExprKind::kStar:
      return "*";
    case ExprKind::kBinary:
      return "(" + args[0]->ToString() + " " + BinOpName(bin_op) + " " +
             args[1]->ToString() + ")";
    case ExprKind::kUnary:
      return std::string(un_op == UnOp::kNot ? "NOT " : "-") + args[0]->ToString();
    case ExprKind::kFunc: {
      std::string out = func_name + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kArrayLiteral: {
      std::string out = "ARRAY[";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      return out + "]";
    }
    case ExprKind::kArraySubquery:
      return "ARRAY(<subquery>)";
    case ExprKind::kInSubquery:
      return args[0]->ToString() + " IN (<subquery>)";
  }
  return "?";
}

}  // namespace orpheus::rel
