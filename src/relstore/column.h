// Column: typed columnar storage. Exactly one of the typed vectors is
// active, chosen by type(). Bulk operations (Gather, AppendFrom) avoid
// boxing values; Get/Append box through Value for the expression layer.
//
// NULLs: relstore follows the subset of SQL OrpheusDB needs. Scalar
// columns use a validity bitmap only when a NULL has actually been
// stored (common case: no bitmap, no overhead). This matters for
// schema evolution (§3.3 of the paper), where records from old
// versions carry NULL for later-added attributes.

#ifndef ORPHEUS_RELSTORE_COLUMN_H_
#define ORPHEUS_RELSTORE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "relstore/types.h"
#include "relstore/value.h"

namespace orpheus::rel {

class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const { return size_; }

  // Boxed element access (expression layer).
  Value Get(size_t row) const;
  void Append(const Value& value);

  // Unboxed fast paths (bulk layer). Callers must match the type.
  const std::vector<int64_t>& ints() const { return ints_; }
  std::vector<int64_t>& mutable_ints() { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }
  const std::vector<IntArray>& arrays() const { return arrays_; }
  std::vector<IntArray>& mutable_arrays() { return arrays_; }

  void AppendInt(int64_t v) {
    ints_.push_back(v);
    ++size_;
    if (!null_bitmap_.empty()) null_bitmap_.push_back(false);
  }
  void AppendDouble(double v) {
    doubles_.push_back(v);
    ++size_;
    if (!null_bitmap_.empty()) null_bitmap_.push_back(false);
  }
  void AppendString(std::string v) {
    strings_.push_back(std::move(v));
    ++size_;
    if (!null_bitmap_.empty()) null_bitmap_.push_back(false);
  }
  void AppendArray(IntArray v) {
    arrays_.push_back(std::move(v));
    ++size_;
    if (!null_bitmap_.empty()) null_bitmap_.push_back(false);
  }

  bool IsNull(size_t row) const {
    return !null_bitmap_.empty() && null_bitmap_[row];
  }
  void SetNull(size_t row);

  // Serialization support (storage subsystem): whether the validity
  // bitmap is materialized, and a way to materialize it on restore so
  // an allocated-but-all-valid bitmap round-trips exactly.
  bool has_null_bitmap() const { return !null_bitmap_.empty(); }
  void MaterializeNullBitmap() { EnsureBitmap(); }

  // Appends element `row` of `src` (same type) without boxing.
  void AppendFrom(const Column& src, size_t row);

  // Appends src[i] for every i in `rows` (the core of a gather/join).
  void Gather(const Column& src, const std::vector<uint32_t>& rows);

  // Overwrites element `row` (UPDATE path).
  void Set(size_t row, const Value& value);

  // Removes the rows flagged in `keep` == false (DELETE path);
  // preserves relative order.
  void Filter(const std::vector<bool>& keep);

  void Clear();

  // In-place type widening (INT -> DOUBLE -> TEXT), used for the
  // paper's single-pool schema evolution (§3.3). Narrowing fails.
  Status ConvertTo(DataType new_type);

  // Appends `n` NULL slots (new column backfill for ALTER ... ADD).
  void AppendNulls(size_t n);

  // Approximate in-memory footprint in bytes, counting string bodies
  // and array payloads; used for the storage-size experiments.
  int64_t ByteSize() const;

 private:
  void EnsureBitmap();

  DataType type_;
  size_t size_ = 0;
  std::vector<int64_t> ints_;         // kInt64 and kBool (0/1)
  std::vector<double> doubles_;       // kDouble
  std::vector<std::string> strings_;  // kString
  std::vector<IntArray> arrays_;      // kIntArray
  // Invariant: empty until the first NULL is stored, exactly `size_`
  // long afterwards — every append path must keep it in step or
  // IsNull reads out of bounds.
  std::vector<bool> null_bitmap_;
};

}  // namespace orpheus::rel

#endif  // ORPHEUS_RELSTORE_COLUMN_H_
