#include "relstore/database.h"

#include <utility>

#include "relstore/eval.h"
#include "relstore/parser.h"

namespace orpheus::rel {

Result<Chunk> Database::Execute(std::string_view sql) {
  ORPHEUS_ASSIGN_OR_RETURN(auto stmt, ParseSql(sql));
  return ExecuteStatement(stmt.get());
}

Result<Chunk> Database::ExecuteScript(std::string_view script) {
  Chunk last;
  size_t start = 0;
  while (start < script.size()) {
    // Split on ';' outside string literals.
    size_t i = start;
    bool in_string = false;
    while (i < script.size()) {
      if (script[i] == '\'') in_string = !in_string;
      if (script[i] == ';' && !in_string) break;
      ++i;
    }
    std::string_view piece = script.substr(start, i - start);
    start = i + 1;
    bool all_space = true;
    for (char c : piece) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        all_space = false;
        break;
      }
    }
    if (all_space) continue;
    ORPHEUS_ASSIGN_OR_RETURN(last, Execute(piece));
  }
  return last;
}

Status Database::CreateTable(const std::string& name, Schema schema,
                             std::vector<std::string> primary_key) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  auto table = std::make_unique<Table>(name, std::move(schema),
                                       std::move(primary_key));
  // Physical primary-key index on single-column INT keys, as the
  // paper builds on rid / vid.
  if (table->primary_key().size() == 1) {
    int col = table->schema().FindColumn(table->primary_key()[0]);
    if (col >= 0 && table->schema().column(col).type == DataType::kInt64) {
      ORPHEUS_RETURN_NOT_OK(table->DeclareIndex(table->primary_key()[0]));
    }
  }
  tables_[name] = std::move(table);
  return Status::OK();
}

Status Database::DropTable(const std::string& name, bool if_exists) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    if (if_exists) return Status::OK();
    return Status::NotFound("no such table: " + name);
  }
  tables_.erase(it);
  return Status::OK();
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

Result<Table*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return it->second.get();
}

std::vector<std::string> Database::ListTables() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

Status Database::AdoptTable(const std::string& name, Chunk chunk,
                            std::vector<std::string> primary_key) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  ORPHEUS_RETURN_NOT_OK(CreateTable(name, chunk.schema(), std::move(primary_key)));
  tables_[name]->mutable_chunk() = std::move(chunk);
  return Status::OK();
}

Status Database::AdoptTableObject(std::unique_ptr<Table> table) {
  const std::string& name = table->name();
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  tables_[name] = std::move(table);
  return Status::OK();
}

int64_t Database::TotalByteSize() const {
  int64_t bytes = 0;
  for (const auto& [name, table] : tables_) {
    bytes += table->ByteSize() + table->IndexByteSize();
  }
  return bytes;
}

Result<Chunk> Database::ExecuteStatement(Statement* stmt) {
  switch (stmt->kind) {
    case Statement::Kind::kSelect: {
      Executor executor(this);
      ORPHEUS_ASSIGN_OR_RETURN(Chunk out, executor.RunSelect(*stmt->select));
      // Prefer unqualified output names when unambiguous.
      Schema plain = out.schema().Unqualified();
      bool unique = true;
      for (int i = 0; i < plain.num_columns() && unique; ++i) {
        for (int j = i + 1; j < plain.num_columns(); ++j) {
          if (plain.column(i).name == plain.column(j).name) {
            unique = false;
            break;
          }
        }
      }
      if (unique) {
        Chunk renamed(plain);
        for (int c = 0; c < out.num_columns(); ++c) {
          renamed.mutable_column(c) = std::move(out.mutable_column(c));
        }
        out = std::move(renamed);
      }
      if (!stmt->select->into_table.empty()) {
        ORPHEUS_RETURN_NOT_OK(AdoptTable(stmt->select->into_table, std::move(out)));
        return Chunk();
      }
      return out;
    }
    case Statement::Kind::kInsert:
      return ExecuteInsert(stmt);
    case Statement::Kind::kUpdate:
      return ExecuteUpdate(stmt);
    case Statement::Kind::kDelete:
      return ExecuteDelete(stmt);
    case Statement::Kind::kCreateTable: {
      if (stmt->if_not_exists && HasTable(stmt->table)) return Chunk();
      Schema schema(stmt->column_defs);
      ORPHEUS_RETURN_NOT_OK(CreateTable(stmt->table, std::move(schema),
                                        stmt->primary_key));
      return Chunk();
    }
    case Statement::Kind::kDropTable:
      ORPHEUS_RETURN_NOT_OK(DropTable(stmt->table, stmt->if_exists));
      return Chunk();
    case Statement::Kind::kCreateIndex: {
      ORPHEUS_ASSIGN_OR_RETURN(Table * table, GetTable(stmt->table));
      ORPHEUS_RETURN_NOT_OK(table->DeclareIndex(stmt->index_column));
      return Chunk();
    }
    case Statement::Kind::kClusterBy: {
      ORPHEUS_ASSIGN_OR_RETURN(Table * table, GetTable(stmt->table));
      ORPHEUS_RETURN_NOT_OK(table->ClusterBy(stmt->index_column));
      return Chunk();
    }
  }
  return Status::Internal("unhandled statement kind");
}

Result<Chunk> Database::ExecuteInsert(Statement* stmt) {
  ORPHEUS_ASSIGN_OR_RETURN(Table * table, GetTable(stmt->table));
  const Schema& schema = table->schema();

  // Map the statement's column list (or full schema) to positions.
  std::vector<int> positions;
  if (stmt->columns.empty()) {
    positions.resize(static_cast<size_t>(schema.num_columns()));
    for (int i = 0; i < schema.num_columns(); ++i) positions[static_cast<size_t>(i)] = i;
  } else {
    for (const std::string& col : stmt->columns) {
      int pos = schema.FindColumn(col);
      if (pos < 0) {
        return Status::NotFound("no column " + col + " in " + stmt->table);
      }
      positions.push_back(pos);
    }
  }

  if (stmt->insert_select != nullptr) {
    Executor executor(this);
    ORPHEUS_ASSIGN_OR_RETURN(Chunk rows, executor.RunSelect(*stmt->insert_select));
    if (rows.num_columns() != static_cast<int>(positions.size())) {
      return Status::InvalidArgument("INSERT ... SELECT arity mismatch");
    }
    Chunk& dst = table->mutable_chunk();
    size_t n = rows.num_rows();
    std::vector<uint32_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = static_cast<uint32_t>(i);
    if (stmt->columns.empty()) {
      dst.GatherFrom(rows, all);
    } else {
      return Status::NotSupported(
          "INSERT ... SELECT with explicit columns is not supported");
    }
    return Chunk();
  }

  Executor executor(this);
  Evaluator eval(&executor);
  Schema empty;
  Chunk dummy(empty);
  for (std::vector<ExprPtr>& row : stmt->values) {
    if (row.size() != positions.size()) {
      return Status::InvalidArgument("INSERT row arity mismatch");
    }
    std::vector<Value> values(static_cast<size_t>(schema.num_columns()));
    for (size_t i = 0; i < row.size(); ++i) {
      ORPHEUS_RETURN_NOT_OK(eval.Bind(row[i].get(), empty));
      ORPHEUS_ASSIGN_OR_RETURN(Value v, eval.Eval(*row[i], dummy, 0));
      values[static_cast<size_t>(positions[i])] = std::move(v);
    }
    ORPHEUS_RETURN_NOT_OK(table->AppendRow(values));
  }
  return Chunk();
}

Result<Chunk> Database::ExecuteUpdate(Statement* stmt) {
  ORPHEUS_ASSIGN_OR_RETURN(Table * table, GetTable(stmt->table));
  const Schema& schema = table->schema();
  Executor executor(this);
  Evaluator eval(&executor);

  std::vector<int> target_cols;
  for (auto& [col, expr] : stmt->assignments) {
    int pos = schema.FindColumn(col);
    if (pos < 0) return Status::NotFound("no column " + col + " in " + stmt->table);
    target_cols.push_back(pos);
    ORPHEUS_RETURN_NOT_OK(eval.Bind(expr.get(), schema));
  }
  if (stmt->where != nullptr) {
    ORPHEUS_RETURN_NOT_OK(eval.Bind(stmt->where.get(), schema));
  }

  Chunk& data = table->mutable_chunk();
  int64_t updated = 0;
  for (size_t row = 0; row < data.num_rows(); ++row) {
    if (stmt->where != nullptr) {
      ORPHEUS_ASSIGN_OR_RETURN(bool ok, eval.EvalPredicate(*stmt->where, data, row));
      if (!ok) continue;
    }
    // Evaluate all assignments against the pre-update row first.
    std::vector<Value> new_values;
    new_values.reserve(stmt->assignments.size());
    for (auto& [col, expr] : stmt->assignments) {
      ORPHEUS_ASSIGN_OR_RETURN(Value v, eval.Eval(*expr, data, row));
      new_values.push_back(std::move(v));
    }
    for (size_t a = 0; a < target_cols.size(); ++a) {
      data.mutable_column(target_cols[a]).Set(row, new_values[a]);
    }
    ++updated;
  }
  stats_.rows_scanned += static_cast<int64_t>(data.num_rows());
  stats_.pages_read += table->num_pages();
  (void)updated;
  return Chunk();
}

Result<Chunk> Database::ExecuteDelete(Statement* stmt) {
  ORPHEUS_ASSIGN_OR_RETURN(Table * table, GetTable(stmt->table));
  Executor executor(this);
  Evaluator eval(&executor);
  if (stmt->where != nullptr) {
    ORPHEUS_RETURN_NOT_OK(eval.Bind(stmt->where.get(), table->schema()));
  }
  Chunk& data = table->mutable_chunk();
  std::vector<bool> keep(data.num_rows(), true);
  for (size_t row = 0; row < data.num_rows(); ++row) {
    if (stmt->where == nullptr) {
      keep[row] = false;
      continue;
    }
    ORPHEUS_ASSIGN_OR_RETURN(bool ok, eval.EvalPredicate(*stmt->where, data, row));
    keep[row] = !ok;
  }
  data.FilterRows(keep);
  stats_.rows_scanned += static_cast<int64_t>(keep.size());
  stats_.pages_read += table->num_pages();
  return Chunk();
}

}  // namespace orpheus::rel
