#include "relstore/value.h"

#include <cmath>
#include <functional>

#include "common/str_util.h"

namespace orpheus::rel {

bool Value::Equals(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  if (IsNumeric() && other.IsNumeric()) {
    if (type_ == DataType::kInt64 && other.type_ == DataType::kInt64) {
      return int_ == other.int_;
    }
    return AsDouble() == other.AsDouble();
  }
  if (type_ != other.type_) return false;
  switch (type_) {
    case DataType::kBool:
      return int_ == other.int_;
    case DataType::kString:
      return string_ == other.string_;
    case DataType::kIntArray:
      return *array_ == *other.array_;
    default:
      return false;
  }
}

int Value::Compare(const Value& other) const {
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;
  if (IsNumeric() && other.IsNumeric()) {
    if (type_ == DataType::kInt64 && other.type_ == DataType::kInt64) {
      return int_ < other.int_ ? -1 : (int_ > other.int_ ? 1 : 0);
    }
    double a = AsDouble();
    double b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type_ == DataType::kBool && other.type_ == DataType::kBool) {
    return int_ < other.int_ ? -1 : (int_ > other.int_ ? 1 : 0);
  }
  if (type_ == DataType::kString && other.type_ == DataType::kString) {
    int cmp = string_.compare(other.string_);
    return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  }
  if (type_ == DataType::kIntArray && other.type_ == DataType::kIntArray) {
    const IntArray& a = *array_;
    const IntArray& b = *other.array_;
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
    }
    if (a.size() == b.size()) return 0;
    return a.size() < b.size() ? -1 : 1;
  }
  // Incomparable types: order by type id so sorting is still total.
  return static_cast<int>(type_) < static_cast<int>(other.type_) ? -1 : 1;
}

std::string Value::ToString() const {
  switch (type_) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt64:
      return std::to_string(int_);
    case DataType::kDouble:
      return StrFormat("%g", double_);
    case DataType::kBool:
      return int_ ? "true" : "false";
    case DataType::kString:
      return string_;
    case DataType::kIntArray: {
      std::string out = "{";
      for (size_t i = 0; i < array_->size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string((*array_)[i]);
      }
      out += "}";
      return out;
    }
  }
  return "?";
}

size_t Value::Hash() const {
  switch (type_) {
    case DataType::kNull:
      return 0;
    case DataType::kInt64:
      return std::hash<int64_t>()(int_);
    case DataType::kBool:
      return std::hash<int64_t>()(int_);
    case DataType::kDouble: {
      // Hash integral doubles like ints so Equals/Hash stay consistent.
      double d = double_;
      if (d == std::floor(d) && std::abs(d) < 9.2e18) {
        return std::hash<int64_t>()(static_cast<int64_t>(d));
      }
      return std::hash<double>()(d);
    }
    case DataType::kString:
      return std::hash<std::string>()(string_);
    case DataType::kIntArray: {
      size_t h = 1469598103934665603ULL;
      for (int64_t v : *array_) {
        h ^= std::hash<int64_t>()(v);
        h *= 1099511628211ULL;
      }
      return h;
    }
  }
  return 0;
}

}  // namespace orpheus::rel
