#include "workload/generator.h"

#include <algorithm>
#include <unordered_map>

#include "common/rng.h"
#include "common/str_util.h"

namespace orpheus::wl {

namespace {

uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

std::string HumanCount(int64_t n) {
  if (n >= 1000000) return std::to_string(n / 1000000) + "M";
  if (n >= 1000) return std::to_string(n / 1000) + "K";
  return std::to_string(n);
}

// A branch tip: the live working copy of one contributor.
struct Branch {
  VersionId tip = 0;
  // Logical key -> current rid. Updates keep the key, swap the rid.
  std::unordered_map<int64_t, RecordId> live;
  std::vector<int64_t> keys;  // for O(1) random key selection
};

}  // namespace

std::string DatasetSpec::Name() const {
  int64_t approx =
      static_cast<int64_t>(num_versions) * inserts_per_version;
  return std::string(kind == WorkloadKind::kSci ? "SCI" : "CUR") + "_" +
         HumanCount(approx);
}

int64_t Dataset::AttrValue(RecordId rid, int attr) {
  // 4-byte integers, as in the paper's datasets.
  return static_cast<int64_t>(
      Mix(static_cast<uint64_t>(rid) * 1000003ULL +
          static_cast<uint64_t>(attr)) &
      0x7fffffffULL);
}

rel::Schema Dataset::DataSchema() const {
  rel::Schema schema;
  schema.AddColumn("k", rel::DataType::kInt64);
  for (int a = 1; a < spec_.num_attrs; ++a) {
    schema.AddColumn("a" + std::to_string(a), rel::DataType::kInt64);
  }
  return schema;
}

rel::Chunk Dataset::RowsFor(const std::vector<RecordId>& rids) const {
  rel::Chunk rows(DataSchema());
  for (int c = 0; c < rows.num_columns(); ++c) {
    rel::Column& col = rows.mutable_column(c);
    if (c == 0) {
      for (RecordId rid : rids) col.AppendInt(rid_to_key_[static_cast<size_t>(rid)]);
    } else {
      for (RecordId rid : rids) col.AppendInt(AttrValue(rid, c));
    }
  }
  return rows;
}

rel::Chunk Dataset::AllRecordRows() const {
  rel::Schema schema;
  schema.AddColumn("rid", rel::DataType::kInt64);
  const rel::Schema data_schema = DataSchema();
  for (const rel::ColumnDef& def : data_schema.columns()) {
    schema.AddColumn(def.name, def.type);
  }
  rel::Chunk rows(schema);
  for (int c = 0; c < rows.num_columns(); ++c) {
    rel::Column& col = rows.mutable_column(c);
    for (RecordId rid = 0; rid < num_records_; ++rid) {
      if (c == 0) {
        col.AppendInt(rid);
      } else if (c == 1) {
        col.AppendInt(rid_to_key_[static_cast<size_t>(rid)]);
      } else {
        col.AppendInt(AttrValue(rid, c - 1));
      }
    }
  }
  return rows;
}

core::VersionGraph Dataset::BuildGraph() const {
  core::VersionGraph graph;
  for (const VersionSpec& v : versions_) {
    (void)graph.AddVersion(v.vid, v.parents, v.parent_weights,
                           static_cast<int64_t>(v.rids.size()));
  }
  return graph;
}

part::BipartiteGraph Dataset::BuildBipartite() const {
  std::vector<VersionId> vids;
  std::vector<std::vector<RecordId>> records;
  vids.reserve(versions_.size());
  records.reserve(versions_.size());
  for (const VersionSpec& v : versions_) {
    vids.push_back(v.vid);
    records.push_back(v.rids);
  }
  return part::BipartiteGraph::FromVersionSets(std::move(vids),
                                               std::move(records));
}

Dataset Generate(const DatasetSpec& spec) {
  Dataset out;
  out.spec_ = spec;
  Rng rng(spec.seed);

  RecordId next_rid = 0;
  int64_t next_key = 0;
  std::vector<int64_t>& rid_to_key = out.rid_to_key_;

  auto new_record = [&](int64_t key) {
    rid_to_key.push_back(key);
    return next_rid++;
  };

  std::vector<Branch> branches;
  VersionId next_vid = 1;

  auto snapshot = [&](Branch& branch, std::vector<VersionId> parents,
                      std::vector<int64_t> weights) {
    VersionSpec v;
    v.vid = next_vid++;
    v.parents = std::move(parents);
    v.parent_weights = std::move(weights);
    v.rids.reserve(branch.live.size());
    for (const auto& [key, rid] : branch.live) v.rids.push_back(rid);
    std::sort(v.rids.begin(), v.rids.end());
    branch.tip = v.vid;
    out.num_edges_ += static_cast<int64_t>(v.rids.size());
    out.versions_.push_back(std::move(v));
  };

  auto remove_key = [&](Branch& branch, size_t key_index) {
    int64_t key = branch.keys[key_index];
    branch.keys[key_index] = branch.keys.back();
    branch.keys.pop_back();
    branch.live.erase(key);
  };

  // Applies I edit operations to a branch's working copy. Returns the
  // number of parent records retained (the edge weight).
  auto apply_ops = [&](Branch& branch) {
    int64_t parent_size = static_cast<int64_t>(branch.live.size());
    // Records created during this version's edits have rid >=
    // first_new_rid; removing one of those does not reduce the overlap
    // with the parent.
    RecordId first_new_rid = next_rid;
    int64_t parent_removed = 0;
    for (int op = 0; op < spec.inserts_per_version; ++op) {
      double roll = rng.NextDouble();
      if (roll < spec.delete_fraction && !branch.keys.empty()) {
        size_t key_index = rng.Uniform(branch.keys.size());
        if (branch.live[branch.keys[key_index]] < first_new_rid) ++parent_removed;
        remove_key(branch, key_index);
      } else if (roll < spec.delete_fraction + spec.update_fraction &&
                 !branch.keys.empty()) {
        int64_t key = branch.keys[rng.Uniform(branch.keys.size())];
        if (branch.live[key] < first_new_rid) ++parent_removed;
        branch.live[key] = new_record(key);  // same key, new record
      } else {
        int64_t key = next_key++;
        branch.keys.push_back(key);
        branch.live[key] = new_record(key);
      }
    }
    return parent_size - parent_removed;
  };

  // Root version: I fresh records on the mainline.
  {
    Branch mainline;
    for (int i = 0; i < spec.inserts_per_version; ++i) {
      int64_t key = next_key++;
      mainline.keys.push_back(key);
      mainline.live[key] = new_record(key);
    }
    snapshot(mainline, {}, {});
    branches.push_back(std::move(mainline));
  }

  double branch_probability =
      std::min(1.0, 1.5 * static_cast<double>(spec.num_branches) /
                        static_cast<double>(std::max(1, spec.num_versions)));

  while (next_vid <= spec.num_versions) {
    bool may_branch = static_cast<int>(branches.size()) < spec.num_branches;
    bool may_merge = spec.kind == WorkloadKind::kCur && branches.size() >= 2;

    if (may_merge && rng.Bernoulli(spec.merge_probability)) {
      // Merge branch b into branch a (precedence: a wins conflicts).
      size_t ai = rng.Uniform(branches.size());
      size_t bi = rng.Uniform(branches.size());
      if (bi == ai) bi = (bi + 1) % branches.size();
      Branch& a = branches[ai];
      Branch& b = branches[bi];
      int64_t b_only = 0;           // records of b absent from a
      int64_t shared_identical = 0; // same record reachable via both
      for (const auto& [key, rid] : b.live) {
        auto it = a.live.find(key);
        if (it == a.live.end()) {
          a.live[key] = rid;
          a.keys.push_back(key);
          ++b_only;
        } else if (it->second == rid) {
          ++shared_identical;
        }
      }
      // Every record of a survives (precedence), so w(a, merge) = |a|
      // before the union; w(b, merge) counts b's surviving records.
      int64_t weight_a = static_cast<int64_t>(a.live.size()) - b_only;
      int64_t weight_b = b_only + shared_identical;
      // |R^|: records inherited only through the edge the DAG->tree
      // conversion drops (the lighter one).
      out.duplicated_ += weight_a >= weight_b
                             ? b_only
                             : weight_a - shared_identical;
      snapshot(a, {a.tip, b.tip}, {weight_a, weight_b});
      // The contributor behind b re-syncs with the merged state (so
      // later merges carry only fresh divergence, keeping |R^| a small
      // fraction of |R| as in the benchmark's Table 2 datasets).
      b.live = a.live;
      b.keys = a.keys;
      b.tip = a.tip;
      continue;
    }

    if (may_branch && rng.Bernoulli(branch_probability)) {
      // New branch: fork a random existing branch, then edit.
      size_t src = rng.Uniform(branches.size());
      Branch fork = branches[src];  // copy of the working state
      VersionId parent = fork.tip;
      int64_t weight = apply_ops(fork);
      snapshot(fork, {parent}, {weight});
      branches.push_back(std::move(fork));
      continue;
    }

    // Continue a random branch.
    Branch& branch = branches[rng.Uniform(branches.size())];
    VersionId parent = branch.tip;
    int64_t weight = apply_ops(branch);
    snapshot(branch, {parent}, {weight});
  }

  out.num_records_ = next_rid;
  return out;
}

}  // namespace orpheus::wl
