// Versioning-benchmark dataset generator, after Maddox et al. [37]
// (the benchmark the paper evaluates on, §5.1).
//
// Two workloads:
//   SCI — data scientists take copies of an evolving dataset for
//         isolated analysis: a mainline with branches sprouting from
//         the mainline and from other branches. The version graph is
//         a tree.
//   CUR — curators of a canonical dataset branch AND periodically
//         merge their changes back, producing a DAG.
//
// Parameters mirror Table 2: number of versions |V|, number of
// branches B, inserts-per-version I, plus update/delete fractions.
// Records carry `num_attrs` integer attributes whose values are
// derived deterministically from the rid, so record content never
// needs to be stored by the generator.

#ifndef ORPHEUS_WORKLOAD_GENERATOR_H_
#define ORPHEUS_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/version_graph.h"
#include "partition/bipartite.h"
#include "relstore/chunk.h"

namespace orpheus::wl {

using core::RecordId;
using core::VersionId;

enum class WorkloadKind { kSci, kCur };

struct DatasetSpec {
  WorkloadKind kind = WorkloadKind::kSci;
  int num_versions = 1000;     // |V|
  int num_branches = 100;      // B
  int inserts_per_version = 1000;  // I
  int num_attrs = 100;         // integer data attributes per record
  double update_fraction = 0.15;   // share of I ops that are updates
  double delete_fraction = 0.01;   // share of I ops that are deletes
  double merge_probability = 0.05;  // CUR only: chance a step merges
  uint64_t seed = 7;

  // Conventional name, e.g. "SCI_1M" style.
  std::string Name() const;
};

struct VersionSpec {
  VersionId vid;
  std::vector<VersionId> parents;        // 1 parent, or 2 for CUR merges
  std::vector<int64_t> parent_weights;   // shared records per parent
  std::vector<RecordId> rids;            // full record list, sorted
};

class Dataset {
 public:
  const DatasetSpec& spec() const { return spec_; }
  const std::vector<VersionSpec>& versions() const { return versions_; }
  int64_t num_records() const { return num_records_; }  // |R| distinct
  int64_t num_edges() const { return num_edges_; }      // |E|
  int64_t duplicated_records() const { return duplicated_; }  // |R^| (DAGs)

  // The version graph with shared-record edge weights.
  core::VersionGraph BuildGraph() const;

  // The version-record bipartite graph (copies the rid lists).
  part::BipartiteGraph BuildBipartite() const;

  // Record content: attribute j of record `rid` (deterministic).
  static int64_t AttrValue(RecordId rid, int attr);

  // Schema of the generated relation: k (a synthetic key) followed by
  // a1..a<num_attrs-1> integer attributes.
  rel::Schema DataSchema() const;

  // Materializes the rows of a record list (no rid column), matching
  // DataSchema().
  rel::Chunk RowsFor(const std::vector<RecordId>& rids) const;

  // Materializes rid + data rows — the shape of a CVD data table.
  // Useful for loading the full record universe at once.
  rel::Chunk AllRecordRows() const;

 private:
  friend Dataset Generate(const DatasetSpec& spec);

  DatasetSpec spec_;
  std::vector<VersionSpec> versions_;
  std::vector<int64_t> rid_to_key_;  // rid -> logical key (the PK value)
  int64_t num_records_ = 0;
  int64_t num_edges_ = 0;
  int64_t duplicated_ = 0;
};

// Generates a dataset; deterministic in spec.seed.
Dataset Generate(const DatasetSpec& spec);

}  // namespace orpheus::wl

#endif  // ORPHEUS_WORKLOAD_GENERATOR_H_
