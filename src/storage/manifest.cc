#include "storage/manifest.h"

#include <cstring>

#include "storage/io_util.h"

namespace orpheus::storage {

std::string EncodeManifest(const Manifest& manifest) {
  BinaryWriter body;
  body.PutU64(manifest.sequence);
  body.PutU64(manifest.last_lsn);
  body.PutU64(manifest.next_segment_id);
  body.PutU32(static_cast<uint32_t>(manifest.segments.size()));
  for (const ManifestSegment& seg : manifest.segments) {
    body.PutString(seg.table);
    body.PutString(seg.file);
    body.PutU64(seg.size);
    body.PutU32(seg.crc);
  }
  body.PutString(manifest.meta);

  BinaryWriter file;
  file.PutRaw(kManifestMagic, 8);
  file.PutU32(kStorageFormatVersion);
  file.PutU64(body.data().size());
  file.PutU32(Crc32(body.data()));
  file.PutRaw(body.data().data(), body.data().size());
  return file.Release();
}

Result<Manifest> DecodeManifest(std::string_view file,
                                const std::string& path) {
  constexpr size_t kHeaderBytes = 8 + 4 + 8 + 4;
  if (file.size() < kHeaderBytes ||
      std::memcmp(file.data(), kManifestMagic, 8) != 0) {
    return Status::InvalidArgument("not an OrpheusDB manifest file: " + path);
  }
  BinaryReader header(file.substr(8));
  uint32_t version = header.GetU32();
  if (version != kStorageFormatVersion) {
    return Status::InvalidArgument(
        "manifest format version " + std::to_string(version) +
        " unsupported (this build reads version " +
        std::to_string(kStorageFormatVersion) + "): " + path);
  }
  uint64_t body_len = header.GetU64();
  uint32_t body_crc = header.GetU32();
  if (body_len != file.size() - kHeaderBytes) {
    return Status::Internal("manifest body length mismatch (corrupt file " +
                            path + ")");
  }
  std::string_view body_bytes = file.substr(kHeaderBytes);
  if (Crc32(body_bytes) != body_crc) {
    return Status::Internal("manifest checksum mismatch (corrupt file " +
                            path + ")");
  }

  Manifest manifest;
  BinaryReader r(body_bytes);
  manifest.sequence = r.GetU64();
  manifest.last_lsn = r.GetU64();
  manifest.next_segment_id = r.GetU64();
  uint32_t num_segments = r.GetU32();
  for (uint32_t i = 0; i < num_segments && r.ok(); ++i) {
    ManifestSegment seg;
    seg.table = r.GetString();
    seg.file = r.GetString();
    seg.size = r.GetU64();
    seg.crc = r.GetU32();
    manifest.segments.push_back(std::move(seg));
  }
  manifest.meta = r.GetString();
  if (!r.ok() || r.remaining() != 0) {
    return Status::Internal("manifest structure invalid (corrupt file " +
                            path + ")");
  }
  return manifest;
}

}  // namespace orpheus::storage
