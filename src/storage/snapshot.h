// Versioned binary snapshot codec: serializes the whole engine state —
// every relstore table (payload columns, null bitmaps, int-arrays,
// primary keys, declared indexes, clustering markers), every CVD's
// metadata (attribute pool, per-version attribute sets, staging area,
// version graph, id counters), the user registry, and any partition
// stores — into a single self-checking file image.
//
// File layout:
//
//   [8B magic "ORPHSNAP"][u32 format version][u64 last_lsn]
//   [u64 body length][u32 body crc32][body]
//
// `last_lsn` is the WAL watermark: recovery replays only records with
// a higher LSN (see wal.h). A format-version mismatch fails with a
// clear Status — snapshots are not forward-compatible.
//
// The codec guarantees bit-identical restores: doubles round-trip as
// raw bits, strings as raw bytes, and a materialized-but-all-valid
// null bitmap is rematerialized so storage accounting matches too.

#ifndef ORPHEUS_STORAGE_SNAPSHOT_H_
#define ORPHEUS_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "relstore/chunk.h"
#include "relstore/table.h"
#include "storage/io_util.h"

namespace orpheus::core {
class Cvd;
class OrpheusDB;
}

namespace orpheus::storage {

inline constexpr char kSnapshotMagic[9] = "ORPHSNAP";  // 8 bytes on disk
inline constexpr uint32_t kSnapshotFormatVersion = 1;
// Byte offset of the format version field (tests fabricate mismatches).
inline constexpr size_t kSnapshotVersionOffset = 8;

// Row-set codecs shared between snapshot table sections and WAL
// records that carry chunks (init / commit).
void EncodeSchema(const rel::Schema& schema, BinaryWriter* w);
Result<rel::Schema> DecodeSchema(BinaryReader* r);
void EncodeChunk(const rel::Chunk& chunk, BinaryWriter* w);
Result<rel::Chunk> DecodeChunk(BinaryReader* r);

class SnapshotCodec {
 public:
  // Serializes the full engine state into a snapshot file image.
  static std::string Encode(core::OrpheusDB& db, uint64_t last_lsn);

  // Validates `file` and installs its state into `db`, which must be a
  // fresh engine. On success `*last_lsn` receives the watermark.
  // Fails with InvalidArgument on a foreign file or format-version
  // mismatch, Internal on checksum/structure corruption.
  static Status Decode(std::string_view file, core::OrpheusDB* db,
                       uint64_t* last_lsn);

  // --- Per-unit sections (shared with the v2 segment/manifest codec) ---

  // One table's serialized form: name, primary key, clustering marker,
  // declared indexes, columnar payload. Exactly the bytes a v1
  // snapshot's table section uses — a segment file wraps these.
  static void EncodeTableSection(const rel::Table& table, BinaryWriter* w);
  // Decodes one table section into a standalone Table object (not yet
  // adopted by any Database) — segment restore decodes these in
  // parallel, then adopts sequentially in manifest order.
  static Result<std::unique_ptr<rel::Table>> DecodeTableObject(BinaryReader* r);

  // Engine metadata minus the tables: user registry + current login,
  // every CVD, every partition store. Small (no row payloads), so the
  // v2 manifest embeds it whole — one atomic manifest replace commits
  // tables and metadata together. DecodeMeta requires the backing
  // tables to be present already (CVD/partition-store restore rebuilds
  // derived state from them).
  static void EncodeMeta(core::OrpheusDB& db, BinaryWriter* w);
  static Status DecodeMeta(BinaryReader* r, core::OrpheusDB* db);

 private:
  // Members (not free functions) because they exercise the friendship
  // Cvd and OrpheusDB grant to this class.
  static void EncodeCvd(const core::Cvd& cvd, BinaryWriter* w);
  static Status DecodeCvd(BinaryReader* r, core::OrpheusDB* db);
  static Status DecodePartitionStore(BinaryReader* r, core::OrpheusDB* db);
};

}  // namespace orpheus::storage

#endif  // ORPHEUS_STORAGE_SNAPSHOT_H_
