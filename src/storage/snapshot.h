// Versioned binary snapshot codec: serializes the whole engine state —
// every relstore table (payload columns, null bitmaps, int-arrays,
// primary keys, declared indexes, clustering markers), every CVD's
// metadata (attribute pool, per-version attribute sets, staging area,
// version graph, id counters), the user registry, and any partition
// stores — into a single self-checking file image.
//
// File layout:
//
//   [8B magic "ORPHSNAP"][u32 format version][u64 last_lsn]
//   [u64 body length][u32 body crc32][body]
//
// `last_lsn` is the WAL watermark: recovery replays only records with
// a higher LSN (see wal.h). A format-version mismatch fails with a
// clear Status — snapshots are not forward-compatible.
//
// The codec guarantees bit-identical restores: doubles round-trip as
// raw bits, strings as raw bytes, and a materialized-but-all-valid
// null bitmap is rematerialized so storage accounting matches too.

#ifndef ORPHEUS_STORAGE_SNAPSHOT_H_
#define ORPHEUS_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "relstore/chunk.h"
#include "storage/io_util.h"

namespace orpheus::core {
class Cvd;
class OrpheusDB;
}

namespace orpheus::storage {

inline constexpr char kSnapshotMagic[9] = "ORPHSNAP";  // 8 bytes on disk
inline constexpr uint32_t kSnapshotFormatVersion = 1;
// Byte offset of the format version field (tests fabricate mismatches).
inline constexpr size_t kSnapshotVersionOffset = 8;

// Row-set codecs shared between snapshot table sections and WAL
// records that carry chunks (init / commit).
void EncodeSchema(const rel::Schema& schema, BinaryWriter* w);
Result<rel::Schema> DecodeSchema(BinaryReader* r);
void EncodeChunk(const rel::Chunk& chunk, BinaryWriter* w);
Result<rel::Chunk> DecodeChunk(BinaryReader* r);

class SnapshotCodec {
 public:
  // Serializes the full engine state into a snapshot file image.
  static std::string Encode(core::OrpheusDB& db, uint64_t last_lsn);

  // Validates `file` and installs its state into `db`, which must be a
  // fresh engine. On success `*last_lsn` receives the watermark.
  // Fails with InvalidArgument on a foreign file or format-version
  // mismatch, Internal on checksum/structure corruption.
  static Status Decode(std::string_view file, core::OrpheusDB* db,
                       uint64_t* last_lsn);

 private:
  // Members (not free functions) because they exercise the friendship
  // Cvd and OrpheusDB grant to this class.
  static void EncodeCvd(const core::Cvd& cvd, BinaryWriter* w);
  static Status DecodeCvd(BinaryReader* r, core::OrpheusDB* db);
  static Status DecodePartitionStore(BinaryReader* r, core::OrpheusDB* db);
};

}  // namespace orpheus::storage

#endif  // ORPHEUS_STORAGE_SNAPSHOT_H_
