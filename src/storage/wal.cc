#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "storage/io_util.h"

namespace orpheus::storage {

namespace {

constexpr size_t kFrameHeaderBytes = 8;   // u32 length + u32 crc
constexpr size_t kPayloadHeaderBytes = 9;  // u64 lsn + u8 type

}  // namespace

std::vector<WalRecord> ParseWal(std::string_view data, uint64_t after_lsn,
                                size_t* valid_bytes) {
  std::vector<WalRecord> records;
  size_t pos = 0;
  while (data.size() - pos >= kFrameHeaderBytes) {
    uint32_t length;
    uint32_t crc;
    std::memcpy(&length, data.data() + pos, sizeof(length));
    std::memcpy(&crc, data.data() + pos + 4, sizeof(crc));
    if (length < kPayloadHeaderBytes ||
        length > data.size() - pos - kFrameHeaderBytes) {
      break;  // torn tail: the frame was never fully written
    }
    std::string_view payload = data.substr(pos + kFrameHeaderBytes, length);
    if (Crc32(payload) != crc) break;  // corrupt frame: stop trusting the log
    BinaryReader reader(payload);
    WalRecord record;
    record.lsn = reader.GetU64();
    record.type = static_cast<WalRecordType>(reader.GetU8());
    record.payload.assign(payload.data() + kPayloadHeaderBytes,
                          length - kPayloadHeaderBytes);
    pos += kFrameHeaderBytes + length;
    if (record.lsn > after_lsn) records.push_back(std::move(record));
  }
  if (valid_bytes != nullptr) *valid_bytes = pos;
  return records;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   uint64_t next_lsn,
                                                   uint64_t initial_records) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0666);
  if (fd < 0) {
    return Status::Internal("cannot open WAL " + path + ": " +
                            std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::Internal("cannot size WAL " + path + ": " +
                            std::strerror(errno));
  }
  return std::unique_ptr<WalWriter>(new WalWriter(
      path, fd, next_lsn, static_cast<uint64_t>(size), initial_records));
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::Append(WalRecordType type, std::string_view body) {
  BinaryWriter frame;
  uint32_t length = static_cast<uint32_t>(kPayloadHeaderBytes + body.size());
  // Assemble payload first so the CRC covers lsn + type + body.
  BinaryWriter payload;
  payload.PutU64(next_lsn_);
  payload.PutU8(static_cast<uint8_t>(type));
  payload.PutRaw(body.data(), body.size());
  frame.PutU32(length);
  frame.PutU32(Crc32(payload.data()));
  frame.PutRaw(payload.data().data(), payload.data().size());

  const std::string& bytes = frame.data();
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd_, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("WAL append failed for " + path_ + ": " +
                              std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  if (fsync_ && ::fdatasync(fd_) != 0) {
    return Status::Internal("WAL fdatasync failed for " + path_ + ": " +
                            std::strerror(errno));
  }
  ++next_lsn_;
  file_bytes_ += bytes.size();
  ++records_;
  return Status::OK();
}

Status WalWriter::Reset() {
  if (::ftruncate(fd_, 0) != 0) {
    return Status::Internal("WAL truncate failed for " + path_ + ": " +
                            std::strerror(errno));
  }
  if (fsync_ && ::fdatasync(fd_) != 0) {
    return Status::Internal("WAL fdatasync failed for " + path_ + ": " +
                            std::strerror(errno));
  }
  file_bytes_ = 0;
  records_ = 0;
  return Status::OK();
}

}  // namespace orpheus::storage
