#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "storage/io_util.h"

namespace orpheus::storage {

namespace {

constexpr size_t kFrameHeaderBytes = 8;   // u32 length + u32 crc
constexpr size_t kPayloadHeaderBytes = 9;  // u64 lsn + u8 type

struct WalMetrics {
  obs::Counter* bytes_written;
  obs::Counter* records;
  obs::Counter* syncs;
  obs::Histogram* group_size;
};

// Registered once; every WalWriter in the process feeds the same
// counters (the registry is process-global, like the io_util totals).
const WalMetrics& GetWalMetrics() {
  static const WalMetrics m = {
      obs::GlobalMetrics().GetCounter("orpheus_wal_bytes_written_total",
                                      "Bytes appended to the WAL."),
      obs::GlobalMetrics().GetCounter("orpheus_wal_records_total",
                                      "Records appended to the WAL."),
      obs::GlobalMetrics().GetCounter(
          "orpheus_wal_syncs_total",
          "WAL fdatasync() calls issued (one per commit group)."),
      obs::GlobalMetrics().GetHistogram(
          "orpheus_wal_group_size",
          "Records per WAL append batch (group-commit group size).",
          obs::SizeBuckets())};
  return m;
}

}  // namespace

std::vector<WalRecord> ParseWal(std::string_view data, uint64_t after_lsn,
                                size_t* valid_bytes) {
  std::vector<WalRecord> records;
  size_t pos = 0;
  while (data.size() - pos >= kFrameHeaderBytes) {
    uint32_t length;
    uint32_t crc;
    std::memcpy(&length, data.data() + pos, sizeof(length));
    std::memcpy(&crc, data.data() + pos + 4, sizeof(crc));
    if (length < kPayloadHeaderBytes ||
        length > data.size() - pos - kFrameHeaderBytes) {
      break;  // torn tail: the frame was never fully written
    }
    std::string_view payload = data.substr(pos + kFrameHeaderBytes, length);
    if (Crc32(payload) != crc) break;  // corrupt frame: stop trusting the log
    BinaryReader reader(payload);
    WalRecord record;
    record.lsn = reader.GetU64();
    record.type = static_cast<WalRecordType>(reader.GetU8());
    record.payload.assign(payload.data() + kPayloadHeaderBytes,
                          length - kPayloadHeaderBytes);
    pos += kFrameHeaderBytes + length;
    if (record.lsn > after_lsn) records.push_back(std::move(record));
  }
  if (valid_bytes != nullptr) *valid_bytes = pos;
  return records;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   uint64_t next_lsn,
                                                   uint64_t initial_records) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0666);
  if (fd < 0) {
    return Status::Internal("cannot open WAL " + path + ": " +
                            std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::Internal("cannot size WAL " + path + ": " +
                            std::strerror(errno));
  }
  return std::unique_ptr<WalWriter>(new WalWriter(
      path, fd, next_lsn, static_cast<uint64_t>(size), initial_records));
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::Append(WalRecordType type, std::string_view body) {
  WalAppendEntry entry{type, body};
  return AppendBatch(&entry, 1);
}

Status WalWriter::AppendBatch(const WalAppendEntry* entries, size_t n,
                              uint64_t* first_lsn) {
  if (first_lsn != nullptr) *first_lsn = 0;
  if (n == 0) return Status::OK();
  ORPHEUS_RETURN_NOT_OK(broken_);

  // Assemble every frame into one buffer so the whole group reaches
  // the kernel in a single write(): either the batch is a contiguous
  // run of well-formed frames or the tail is torn at one point, which
  // recovery truncates away.
  const uint64_t base_lsn = next_lsn_.load();
  BinaryWriter batch;
  for (size_t i = 0; i < n; ++i) {
    BinaryWriter payload;
    payload.PutU64(base_lsn + i);
    payload.PutU8(static_cast<uint8_t>(entries[i].type));
    payload.PutRaw(entries[i].body.data(), entries[i].body.size());
    batch.PutU32(static_cast<uint32_t>(payload.data().size()));
    batch.PutU32(Crc32(payload.data()));
    batch.PutRaw(payload.data().data(), payload.data().size());
  }

  const std::string& bytes = batch.data();
  int64_t torn_bytes = -1;
  if (NextIoWriteFails(IoFileClass::kWal, &torn_bytes)) {
    // Injected crash-at-this-write: model the torn tail by really
    // writing the requested prefix, then fail as a died process would.
    if (torn_bytes > 0) {
      size_t torn = std::min(static_cast<size_t>(torn_bytes), bytes.size());
      size_t written = 0;
      while (written < torn) {
        ssize_t w = ::write(fd_, bytes.data() + written, torn - written);
        if (w < 0) {
          if (errno == EINTR) continue;
          break;
        }
        written += static_cast<size_t>(w);
      }
    }
    broken_ = Status::Internal("injected WAL write fault for " + path_);
    return broken_;
  }
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t w = ::write(fd_, bytes.data() + written, bytes.size() - written);
    if (w < 0) {
      if (errno == EINTR) continue;
      broken_ = Status::Internal("WAL append failed for " + path_ + ": " +
                                 std::strerror(errno));
      return broken_;
    }
    written += static_cast<size_t>(w);
  }
  if (fsync_) {
    ++syncs_;
    GetWalMetrics().syncs->Inc();
    bool injected_fail = NextIoSyncFails(IoFileClass::kWal);
    if (injected_fail || ::fdatasync(fd_) != 0) {
      broken_ = Status::Internal(
          injected_fail
              ? "injected WAL fdatasync fault for " + path_
              : "WAL fdatasync failed for " + path_ + ": " +
                    std::strerror(errno));
      return broken_;
    }
  }
  next_lsn_.fetch_add(n);
  file_bytes_.fetch_add(bytes.size());
  records_.fetch_add(n);
  const WalMetrics& metrics = GetWalMetrics();
  metrics.bytes_written->Inc(bytes.size());
  metrics.records->Inc(n);
  metrics.group_size->Observe(static_cast<double>(n));
  if (first_lsn != nullptr) *first_lsn = base_lsn;
  return Status::OK();
}

Status WalWriter::Reset() {
  ORPHEUS_RETURN_NOT_OK(broken_);
  if (::ftruncate(fd_, 0) != 0) {
    return Status::Internal("WAL truncate failed for " + path_ + ": " +
                            std::strerror(errno));
  }
  if (fsync_ && ::fdatasync(fd_) != 0) {
    return Status::Internal("WAL fdatasync failed for " + path_ + ": " +
                            std::strerror(errno));
  }
  file_bytes_.store(0);
  records_.store(0);
  return Status::OK();
}

Status WalWriter::health() const { return broken_; }

}  // namespace orpheus::storage
