#include "storage/segment.h"

#include <cstring>

#include "storage/snapshot.h"

namespace orpheus::storage {

std::string EncodeSegmentFile(const rel::Table& table) {
  BinaryWriter body;
  SnapshotCodec::EncodeTableSection(table, &body);

  BinaryWriter file;
  file.PutRaw(kSegmentMagic, 8);
  file.PutU32(kStorageFormatVersion);
  file.PutU64(body.data().size());
  file.PutU32(Crc32(body.data()));
  file.PutRaw(body.data().data(), body.data().size());
  return file.Release();
}

Result<std::unique_ptr<rel::Table>> DecodeSegmentFile(std::string_view file,
                                                      const std::string& path) {
  constexpr size_t kHeaderBytes = 8 + 4 + 8 + 4;
  if (file.size() < kHeaderBytes ||
      std::memcmp(file.data(), kSegmentMagic, 8) != 0) {
    return Status::InvalidArgument("not an OrpheusDB segment file: " + path);
  }
  BinaryReader header(file.substr(8));
  uint32_t version = header.GetU32();
  if (version != kStorageFormatVersion) {
    return Status::InvalidArgument(
        "segment format version " + std::to_string(version) +
        " unsupported (this build reads version " +
        std::to_string(kStorageFormatVersion) + "): " + path);
  }
  uint64_t body_len = header.GetU64();
  uint32_t body_crc = header.GetU32();
  if (body_len != file.size() - kHeaderBytes) {
    return Status::Internal("segment body length mismatch (corrupt file " +
                            path + ")");
  }
  std::string_view body_bytes = file.substr(kHeaderBytes);
  if (Crc32(body_bytes) != body_crc) {
    return Status::Internal("segment checksum mismatch (corrupt file " + path +
                            ")");
  }
  BinaryReader r(body_bytes);
  ORPHEUS_ASSIGN_OR_RETURN(std::unique_ptr<rel::Table> table,
                           SnapshotCodec::DecodeTableObject(&r));
  if (!r.ok() || r.remaining() != 0) {
    return Status::Internal("segment has trailing bytes (corrupt file " + path +
                            ")");
  }
  return table;
}

}  // namespace orpheus::storage
