#include "storage/io_util.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace orpheus::storage {

namespace {

// CRC-32 lookup table, generated once (reflected 0xEDB88320).
const uint32_t* CrcTable() {
  static const std::vector<uint32_t> table = [] {
    std::vector<uint32_t> t(256);
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table.data();
}

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " failed for " + path + ": " +
                          std::strerror(errno));
}

// fsyncs the directory containing `path` so a completed rename/create
// inside it survives a crash.
Status SyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open(dir)", dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync(dir)", dir);
  return Status::OK();
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const uint32_t* table = CrcTable();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void EncodeStringVec(const std::vector<std::string>& strings, BinaryWriter* w) {
  w->PutU32(static_cast<uint32_t>(strings.size()));
  for (const std::string& s : strings) w->PutString(s);
}

Result<std::vector<std::string>> DecodeStringVec(BinaryReader* r) {
  uint32_t n = r->GetU32();
  std::vector<std::string> out;
  for (uint32_t i = 0; i < n && r->ok(); ++i) out.push_back(r->GetString());
  ORPHEUS_RETURN_NOT_OK(r->status());
  return out;
}

void EncodeI64Vec(const std::vector<int64_t>& values, BinaryWriter* w) {
  w->PutU32(static_cast<uint32_t>(values.size()));
  w->PutRaw(values.data(), values.size() * sizeof(int64_t));
}

Result<std::vector<int64_t>> DecodeI64Vec(BinaryReader* r) {
  uint32_t n = r->GetU32();
  if (!r->ok() || r->remaining() < static_cast<uint64_t>(n) * sizeof(int64_t)) {
    return Status::Internal("binary decode: truncated int64 vector");
  }
  std::vector<int64_t> out(n);
  r->GetRaw(out.data(), n * sizeof(int64_t));
  return out;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<int64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return Errno("stat", path);
  return static_cast<int64_t>(st.st_size);
}

Result<std::string> CanonicalPath(const std::string& path) {
  char* resolved = ::realpath(path.c_str(), nullptr);
  if (resolved == nullptr) {
    return Status::NotFound("cannot resolve path: " + path + ": " +
                            std::strerror(errno));
  }
  std::string out(resolved);
  ::free(resolved);
  return out;
}

Status CreateDirectories(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty directory path");
  std::string partial;
  size_t pos = 0;
  while (pos <= path.size()) {
    size_t slash = path.find('/', pos);
    if (slash == std::string::npos) slash = path.size();
    partial = path.substr(0, slash);
    pos = slash + 1;
    if (partial.empty()) continue;  // leading '/'
    if (::mkdir(partial.c_str(), 0777) != 0 && errno != EEXIST) {
      return Errno("mkdir", partial);
    }
  }
  struct stat st;
  if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument("not a directory: " + path);
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Errno("open", path);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("read", path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

namespace {

// Shared body of WriteFileAtomic/WriteFileDurable: writes `data` to
// `target`, fsyncs, with the class's fault hooks applied. On an
// injected fault the (possibly torn) file is LEFT BEHIND — an injected
// fault models a crash, and a crash does not clean up.
Status WriteAndSync(const std::string& target, std::string_view data,
                    IoFileClass cls) {
  int fd = ::open(target.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
  if (fd < 0) return Errno("open", target);
  int64_t torn = -1;
  if (cls != IoFileClass::kNone && NextIoWriteFails(cls, &torn)) {
    if (torn > 0) {
      size_t keep = std::min(static_cast<size_t>(torn), data.size());
      ssize_t rc = ::write(fd, data.data(), keep);
      (void)rc;
    }
    ::close(fd);
    return Status::Internal("injected write fault for " + target);
  }
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(target.c_str());
      return Errno("write", target);
    }
    written += static_cast<size_t>(n);
  }
  if (cls != IoFileClass::kNone && NextIoSyncFails(cls)) {
    ::close(fd);
    return Status::Internal("injected sync fault for " + target);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(target.c_str());
    return Errno("fsync", target);
  }
  if (::close(fd) != 0) {
    ::unlink(target.c_str());
    return Errno("close", target);
  }
  return Status::OK();
}

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string_view data,
                       IoFileClass cls) {
  const std::string tmp = path + ".tmp";
  ORPHEUS_RETURN_NOT_OK(WriteAndSync(tmp, data, cls));
  if (cls != IoFileClass::kNone && NextIoRenameFails(cls)) {
    return Status::Internal("injected rename fault for " + path);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Errno("rename", path);
  }
  return SyncParentDir(path);
}

Status WriteFileDurable(const std::string& path, std::string_view data,
                        IoFileClass cls) {
  return WriteAndSync(path, data, cls);
}

Status DeleteFileChecked(const std::string& path, IoFileClass cls) {
  if (cls != IoFileClass::kNone && NextIoDeleteFails(cls)) {
    return Status::Internal("injected delete fault for " + path);
  }
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("unlink", path);
  }
  return Status::OK();
}

Status SyncDir(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open(dir)", path);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync(dir)", path);
  return Status::OK();
}

Result<std::vector<std::string>> ListDir(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    if (errno == ENOENT) return Status::NotFound("no such directory: " + path);
    return Errno("opendir", path);
  }
  std::vector<std::string> names;
  struct dirent* entry;
  while ((entry = ::readdir(dir)) != nullptr) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(std::move(name));
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

Status TruncateFile(const std::string& path, int64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Errno("truncate", path);
  }
  return Status::OK();
}

Result<int> AcquireLockFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0666);
  if (fd < 0) return Errno("open", path);
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    int saved = errno;
    ::close(fd);
    if (saved == EWOULDBLOCK || saved == EAGAIN) {
      return Status::Unavailable("database directory is locked by another "
                                 "process (lock file " + path + ")");
    }
    errno = saved;
    return Errno("flock", path);
  }
  return fd;
}

void ReleaseLockFile(int fd) {
  // close() drops the flock held through this open file description.
  if (fd >= 0) ::close(fd);
}

namespace {

// Fault-injection state, one slot per durable file class. A class's
// plan is written only from test threads while that write path is
// quiescent (Arm/Disarm contract), but the counters race with
// concurrent writers, so everything the hot path touches is atomic.
struct FaultSlot {
  std::atomic<bool> armed{false};
  IoFaultPlan plan;                     // valid while armed
  std::atomic<uint64_t> plan_writes{0};   // since last Arm
  std::atomic<uint64_t> plan_syncs{0};
  std::atomic<uint64_t> plan_renames{0};
  std::atomic<uint64_t> plan_deletes{0};
};

std::mutex g_fault_mu;  // guards every slot's plan
FaultSlot g_fault_slots[kNumIoFileClasses];

FaultSlot& Slot(IoFileClass cls) {
  return g_fault_slots[static_cast<int>(cls)];
}

// The process-wide write()/sync totals per class live in the metrics
// registry (orpheus_io_{writes,syncs}_total{class=...}); these cached
// lookups keep the hot-path cost at one relaxed atomic add. They are
// bumped with IncAlways(): the totals double as test oracles for the
// sync-accounting assertions and must not pause when a bench flips
// SetMetricsEnabled(false).
obs::Counter* IoWriteCounter(IoFileClass cls) {
  static obs::Counter* counters[kNumIoFileClasses] = {
      obs::GlobalMetrics().GetCounter(
          "orpheus_io_writes_total",
          "write() calls issued per durable file class.", {{"class", "wal"}}),
      obs::GlobalMetrics().GetCounter(
          "orpheus_io_writes_total",
          "write() calls issued per durable file class.",
          {{"class", "segment"}}),
      obs::GlobalMetrics().GetCounter(
          "orpheus_io_writes_total",
          "write() calls issued per durable file class.",
          {{"class", "manifest"}})};
  return counters[static_cast<int>(cls)];
}

obs::Counter* IoSyncCounter(IoFileClass cls) {
  static obs::Counter* counters[kNumIoFileClasses] = {
      obs::GlobalMetrics().GetCounter(
          "orpheus_io_syncs_total",
          "fsync()/fdatasync() calls issued per durable file class.",
          {{"class", "wal"}}),
      obs::GlobalMetrics().GetCounter(
          "orpheus_io_syncs_total",
          "fsync()/fdatasync() calls issued per durable file class.",
          {{"class", "segment"}}),
      obs::GlobalMetrics().GetCounter(
          "orpheus_io_syncs_total",
          "fsync()/fdatasync() calls issued per durable file class.",
          {{"class", "manifest"}})};
  return counters[static_cast<int>(cls)];
}

}  // namespace

void ArmIoFaults(IoFileClass cls, const IoFaultPlan& plan) {
  FaultSlot& s = Slot(cls);
  std::lock_guard<std::mutex> lock(g_fault_mu);
  s.plan = plan;
  s.plan_writes.store(0);
  s.plan_syncs.store(0);
  s.plan_renames.store(0);
  s.plan_deletes.store(0);
  s.armed.store(true, std::memory_order_release);
}

void DisarmIoFaults() {
  for (FaultSlot& s : g_fault_slots) {
    s.armed.store(false, std::memory_order_release);
  }
}

uint64_t IoWritesIssued(IoFileClass cls) { return IoWriteCounter(cls)->Value(); }
uint64_t IoSyncsIssued(IoFileClass cls) { return IoSyncCounter(cls)->Value(); }

bool NextIoWriteFails(IoFileClass cls, int64_t* torn_bytes) {
  FaultSlot& s = Slot(cls);
  IoWriteCounter(cls)->IncAlways();
  *torn_bytes = -1;
  if (!s.armed.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(g_fault_mu);
  uint64_t n = s.plan_writes.fetch_add(1) + 1;
  if (s.plan.fail_write_at != 0 &&
      n == static_cast<uint64_t>(s.plan.fail_write_at)) {
    *torn_bytes = s.plan.torn_bytes;
    return true;
  }
  return false;
}

bool NextIoSyncFails(IoFileClass cls) {
  FaultSlot& s = Slot(cls);
  IoSyncCounter(cls)->IncAlways();
  if (!s.armed.load(std::memory_order_acquire)) return false;
  int delay_ms = 0;
  bool fail = false;
  {
    std::lock_guard<std::mutex> lock(g_fault_mu);
    delay_ms = s.plan.sync_delay_ms;
    uint64_t n = s.plan_syncs.fetch_add(1) + 1;
    fail = s.plan.fail_sync_at != 0 &&
           n == static_cast<uint64_t>(s.plan.fail_sync_at);
  }
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return fail;
}

bool NextIoRenameFails(IoFileClass cls) {
  FaultSlot& s = Slot(cls);
  if (!s.armed.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(g_fault_mu);
  uint64_t n = s.plan_renames.fetch_add(1) + 1;
  return s.plan.fail_rename_at != 0 &&
         n == static_cast<uint64_t>(s.plan.fail_rename_at);
}

bool NextIoDeleteFails(IoFileClass cls) {
  FaultSlot& s = Slot(cls);
  if (!s.armed.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(g_fault_mu);
  uint64_t n = s.plan_deletes.fetch_add(1) + 1;
  return s.plan.fail_delete_at != 0 &&
         n == static_cast<uint64_t>(s.plan.fail_delete_at);
}

Result<std::string> MakeTempDir(const std::string& prefix) {
  const char* base = ::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr ? base : "/tmp") + "/" +
                     prefix + "XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) return Errno("mkdtemp", tmpl);
  return std::string(buf.data());
}

Status RemoveDirRecursive(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    if (errno == ENOENT) return Status::OK();
    return Errno("opendir", path);
  }
  struct dirent* entry;
  while ((entry = ::readdir(dir)) != nullptr) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    std::string child = path + "/" + name;
    struct stat st;
    if (::lstat(child.c_str(), &st) != 0) continue;
    if (S_ISDIR(st.st_mode)) {
      Status sub = RemoveDirRecursive(child);
      if (!sub.ok()) {
        ::closedir(dir);
        return sub;
      }
    } else {
      ::unlink(child.c_str());
    }
  }
  ::closedir(dir);
  if (::rmdir(path.c_str()) != 0) return Errno("rmdir", path);
  return Status::OK();
}

}  // namespace orpheus::storage
