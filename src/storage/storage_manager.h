// StorageManager: the orchestration layer of the durable storage
// subsystem. One manager owns one database directory (storage format
// v2 — segmented incremental checkpoints):
//
//   <dir>/MANIFEST           the commit point (see manifest.h)
//   <dir>/segments/          immutable per-table segment files
//     seg-<id>.orps            (see segment.h; ids never reused)
//   <dir>/wal.log            commit WAL past the manifest watermark
//   <dir>/LOCK               flock(2)-held single-writer guard
//
// Open() recovers: load the MANIFEST (if any), restore its segments
// in parallel, replay every WAL record past the manifest's LSN
// watermark, truncate any torn tail, delete unreferenced segment
// files, and arm the appender. A directory holding a legacy v1
// `snapshot.orph` instead of a MANIFEST is migrated in place on first
// open (restore v1 → full checkpoint → retire the snapshot).
//
// Checkpoint() is incremental: each table carries a mutation epoch
// (rel::Table::epoch), and only tables whose epoch moved since the
// last checkpoint get a fresh segment — everything else is carried
// over by reference. Protocol: write dirty segments under fresh
// never-reused names, fsync them (and their directory), then commit
// by atomically replacing the MANIFEST, then delete orphaned
// segments and reset the WAL. A crash anywhere leaves either the old
// manifest (plus a fully replayable WAL) or the new one (whose
// watermark skips the folded WAL records) — never a hybrid; stray
// segment files are orphans, invisible to recovery and deleted by
// the next checkpoint or open.
//
// OrpheusDB calls the typed Log* appenders after each version-control
// verb succeeds in memory; the OK returned by an appender is the
// operation's durability point — unless group commit is enabled, in
// which case appenders only enqueue and the durability point moves to
// WaitDurable() (see the group-commit section below). Replay applies
// records through the same OrpheusDB verbs — logging is disarmed
// during recovery because the manager is not yet attached to the
// engine.

#ifndef ORPHEUS_STORAGE_STORAGE_MANAGER_H_
#define ORPHEUS_STORAGE_STORAGE_MANAGER_H_

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/cvd.h"
#include "relstore/chunk.h"
#include "storage/manifest.h"
#include "storage/wal.h"

namespace orpheus::core {
class OrpheusDB;
}

namespace orpheus::storage {

// One enqueued-but-not-yet-durable WAL record in the group-commit
// queue. The enqueuer holds a ticket; a group leader fills in status
// and LSN once the record's batch has been written and synced.
struct PendingAppend {
  WalRecordType type;
  std::string body;
  bool done = false;       // guarded by the manager's group mutex
  Status status;           // valid once done
  uint64_t lsn = 0;        // assigned at write time; 0 on failure
};
using AppendTicket = std::shared_ptr<PendingAppend>;

class StorageManager {
 public:
  // Opens (creating if needed) `dir` and recovers its state into `db`,
  // which must be a fresh engine. The returned manager is armed for
  // appending; OrpheusDB::Open attaches it to the engine.
  static Result<std::unique_ptr<StorageManager>> Open(const std::string& dir,
                                                      core::OrpheusDB* db);

  // One-shot snapshot export (no WAL, no recovery arm). Still the v1
  // single-file format: a portable whole-engine image, and the input
  // of the v1→v2 migration path.
  static Status SaveSnapshotTo(core::OrpheusDB* db, const std::string& dir);

  // Legacy v1 snapshot location — written by SaveSnapshotTo, read only
  // by the migration path.
  static std::string SnapshotPath(const std::string& dir) {
    return dir + "/snapshot.orph";
  }
  static std::string ManifestPath(const std::string& dir) {
    return dir + "/MANIFEST";
  }
  static std::string SegmentsDir(const std::string& dir) {
    return dir + "/segments";
  }
  static std::string SegmentPath(const std::string& dir,
                                 const std::string& file) {
    return dir + "/segments/" + file;
  }
  static std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }
  static std::string LockPath(const std::string& dir) { return dir + "/LOCK"; }

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  ~StorageManager();  // releases the directory LOCK

  // Incremental checkpoint: rewrite only dirty tables' segments,
  // commit by atomic MANIFEST replace, delete orphans, reset the WAL.
  Status Checkpoint();

  struct CheckpointStats {
    uint64_t segments_written = 0;  // freshly encoded + written
    uint64_t segments_reused = 0;   // carried over by reference
    uint64_t segments_deleted = 0;  // orphans retired afterwards
    uint64_t bytes_written = 0;     // segment bytes only (not MANIFEST)
  };
  const CheckpointStats& last_checkpoint_stats() const { return last_stats_; }

  // Forces every table dirty at each checkpoint — the full-rewrite
  // reference engine for equivalence tests and bench baselines.
  void set_incremental_checkpoint(bool on) { incremental_ = on; }
  bool incremental_checkpoint() const { return incremental_; }

  // The live manifest (tests: segment file names/checksums; benches:
  // checkpointed byte totals).
  const Manifest& manifest() const { return manifest_; }

  // Automatic checkpointing: once the WAL since the last checkpoint
  // exceeds `max_wal_bytes` bytes or `max_wal_records` records
  // (0 = no bound), the next logged verb triggers a Checkpoint().
  // Default: 64 MiB, unbounded records.
  void SetAutoCheckpointPolicy(uint64_t max_wal_bytes,
                               uint64_t max_wal_records);

  const std::string& dir() const { return dir_; }
  uint64_t next_lsn() const { return wal_->next_lsn(); }
  uint64_t wal_bytes() const { return wal_->file_bytes(); }
  uint64_t wal_records() const { return wal_->records(); }
  // fdatasyncs the appender has issued (group-commit efficiency oracle).
  uint64_t wal_syncs() const { return wal_->syncs(); }

  // Benches may trade per-record fdatasync for throughput.
  void set_fsync(bool on) { wal_->set_fsync(on); }

  // --- Group commit (RocksDB write-group style) -------------------------
  //
  // Off (the default), every appender writes + fdatasyncs its own
  // record before returning — the appender's OK is the durability
  // point, which is what direct OrpheusDB embedders expect.
  //
  // On, appenders only *enqueue*: the record joins the commit group
  // queue and the appender returns OK immediately (the enqueue order —
  // fixed by the engine's exclusive lock — is the LSN order). The
  // durability point moves to WaitDurable(): the first waiter whose
  // record is still pending becomes the group leader, drains the whole
  // queue into ONE WalWriter::AppendBatch (one write, one fdatasync),
  // and wakes every follower with its individual Status. EngineApi
  // enables this mode and performs the wait after releasing the
  // exclusive lock, so commit groups form while the leader syncs.
  void SetGroupCommit(bool on);
  bool group_commit() const;

  // Hands over the tickets enqueued since the last call. Must be
  // called by the thread that just ran the appenders, before it
  // releases the engine's exclusive lock (tickets are per-statement).
  std::vector<AppendTicket> TakePendingTickets();

  // Blocks until every ticket is durable (leading a group if needed);
  // returns the first ticket's error, if any. Safe from any thread.
  Status WaitDurable(const std::vector<AppendTicket>& tickets);

  // Drains the queue synchronously (caller must guarantee no new
  // enqueues race — in practice: the engine's exclusive lock is held,
  // or the manager is shutting down). Returns the writer's health so
  // a poisoned WAL fails a following Checkpoint instead of silently
  // snapshotting past unsynced records.
  Status FlushPending();

  // --- Typed WAL appenders ---------------------------------------------
  Status LogCreateUser(const std::string& name);
  Status LogLogin(const std::string& name);
  Status LogInitCvd(const std::string& name, const core::CvdOptions& options,
                    const std::string& message, const rel::Chunk& rows);
  Status LogCheckout(const std::string& cvd_name,
                     const std::vector<core::VersionId>& vids,
                     const std::string& table_name);
  // Commit is logged in two steps so the record body can be encoded
  // straight out of the staged table *before* Commit resolves rids in
  // place and drops it — no intermediate chunk copy.
  static std::string EncodeCommitBody(const std::string& cvd_name,
                                      const std::string& table_name,
                                      const std::string& message,
                                      const rel::Chunk& staged_rows);
  Status AppendCommitBody(const std::string& body);
  Status LogDiscardStaged(const std::string& cvd_name,
                          const std::string& table_name);
  Status LogDropCvd(const std::string& cvd_name);
  Status LogRepartition(
      const std::string& cvd_name,
      const std::vector<std::vector<core::VersionId>>& groups);

 private:
  StorageManager(std::string dir, core::OrpheusDB* db)
      : dir_(std::move(dir)), db_(db) {}

  Status Recover();
  Status ApplyRecord(const WalRecord& record);

  // Loads the MANIFEST, restores its segments (in parallel) and the
  // embedded engine metadata, and records per-table clean epochs.
  // On success `*last_lsn` receives the manifest's WAL watermark.
  Status RestoreFromManifest(uint64_t* last_lsn);

  // Deletes files in <dir>/segments not named by `manifest_`, plus a
  // superseded legacy snapshot.orph. `*deleted` (optional) receives
  // the count.
  Status DeleteOrphanSegments(uint64_t* deleted);

  // Appends (or, in group-commit mode, enqueues) one record, then
  // folds the WAL into a fresh snapshot if the policy's bounds are
  // exceeded. Appenders call through here so every logged verb is a
  // potential checkpoint trigger — the engine has fully applied the
  // verb in memory by the time it logs, so the snapshot is consistent,
  // and the caller holds the engine's exclusive lock, so flushing the
  // queue before snapshotting is race-free.
  Status AppendChecked(WalRecordType type, std::string_view body);

  // Becomes the group leader: drains the queue into one AppendBatch
  // and completes every drained ticket. `lock` must hold group_mu_ and
  // writer_active_ must be false; the write itself happens unlocked.
  void LeadGroup(std::unique_lock<std::mutex>& lock);

  std::string dir_;
  core::OrpheusDB* db_;
  std::unique_ptr<WalWriter> wal_;
  int lock_fd_ = -1;
  uint64_t max_wal_bytes_ = 64ull << 20;
  uint64_t max_wal_records_ = 0;

  // Checkpoint state. The live manifest mirrors <dir>/MANIFEST;
  // clean_epochs_ maps table name -> rel::Table::epoch() at the moment
  // its on-disk segment was encoded (an unchanged epoch means the
  // segment is still exact). All mutated under the engine's exclusive
  // lock, like the WAL appenders.
  Manifest manifest_;
  std::map<std::string, uint64_t> clean_epochs_;
  bool incremental_ = true;
  CheckpointStats last_stats_;

  // Group-commit state. Lock ordering: group_mu_ is a leaf — never
  // acquire any other lock while holding it.
  mutable std::mutex group_mu_;
  std::condition_variable group_cv_;
  std::deque<AppendTicket> queue_;        // enqueued, not yet written
  std::vector<AppendTicket> unclaimed_;   // enqueued, not yet taken
  bool writer_active_ = false;            // a leader is writing/syncing
  bool group_commit_ = false;
  uint64_t queued_bytes_ = 0;             // frame bytes queued (policy input)
};

}  // namespace orpheus::storage

#endif  // ORPHEUS_STORAGE_STORAGE_MANAGER_H_
