// StorageManager: the orchestration layer of the durable storage
// subsystem. One manager owns one database directory:
//
//   <dir>/snapshot.orph   latest full snapshot (see snapshot.h)
//   <dir>/wal.log         commit WAL since that snapshot (see wal.h)
//   <dir>/LOCK            flock(2)-held single-writer guard
//
// Open() recovers: restore the snapshot (if any), replay every WAL
// record past the snapshot's LSN watermark, truncate any torn tail,
// and arm the appender. Checkpoint() writes a fresh snapshot via
// temp-file + atomic rename and empties the WAL; a crash between the
// two steps is harmless because replay skips records at or below the
// watermark.
//
// OrpheusDB calls the typed Log* appenders after each version-control
// verb succeeds in memory; the OK returned by an appender is the
// operation's durability point. Replay applies records through the
// same OrpheusDB verbs — logging is disarmed during recovery because
// the manager is not yet attached to the engine.

#ifndef ORPHEUS_STORAGE_STORAGE_MANAGER_H_
#define ORPHEUS_STORAGE_STORAGE_MANAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/cvd.h"
#include "relstore/chunk.h"
#include "storage/wal.h"

namespace orpheus::core {
class OrpheusDB;
}

namespace orpheus::storage {

class StorageManager {
 public:
  // Opens (creating if needed) `dir` and recovers its state into `db`,
  // which must be a fresh engine. The returned manager is armed for
  // appending; OrpheusDB::Open attaches it to the engine.
  static Result<std::unique_ptr<StorageManager>> Open(const std::string& dir,
                                                      core::OrpheusDB* db);

  // One-shot snapshot export (no WAL, no recovery arm).
  static Status SaveSnapshotTo(core::OrpheusDB* db, const std::string& dir);

  static std::string SnapshotPath(const std::string& dir) {
    return dir + "/snapshot.orph";
  }
  static std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }
  static std::string LockPath(const std::string& dir) { return dir + "/LOCK"; }

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  ~StorageManager();  // releases the directory LOCK

  // Fresh snapshot (temp file + atomic rename), then WAL truncation.
  Status Checkpoint();

  // Automatic checkpointing: once the WAL since the last checkpoint
  // exceeds `max_wal_bytes` bytes or `max_wal_records` records
  // (0 = no bound), the next logged verb triggers a Checkpoint().
  // Default: 64 MiB, unbounded records.
  void SetAutoCheckpointPolicy(uint64_t max_wal_bytes,
                               uint64_t max_wal_records);

  const std::string& dir() const { return dir_; }
  uint64_t next_lsn() const { return wal_->next_lsn(); }
  uint64_t wal_bytes() const { return wal_->file_bytes(); }
  uint64_t wal_records() const { return wal_->records(); }

  // Benches may trade per-record fdatasync for throughput.
  void set_fsync(bool on) { wal_->set_fsync(on); }

  // --- Typed WAL appenders ---------------------------------------------
  Status LogCreateUser(const std::string& name);
  Status LogLogin(const std::string& name);
  Status LogInitCvd(const std::string& name, const core::CvdOptions& options,
                    const std::string& message, const rel::Chunk& rows);
  Status LogCheckout(const std::string& cvd_name,
                     const std::vector<core::VersionId>& vids,
                     const std::string& table_name);
  // Commit is logged in two steps so the record body can be encoded
  // straight out of the staged table *before* Commit resolves rids in
  // place and drops it — no intermediate chunk copy.
  static std::string EncodeCommitBody(const std::string& cvd_name,
                                      const std::string& table_name,
                                      const std::string& message,
                                      const rel::Chunk& staged_rows);
  Status AppendCommitBody(const std::string& body);
  Status LogDiscardStaged(const std::string& cvd_name,
                          const std::string& table_name);
  Status LogDropCvd(const std::string& cvd_name);
  Status LogRepartition(
      const std::string& cvd_name,
      const std::vector<std::vector<core::VersionId>>& groups);

 private:
  StorageManager(std::string dir, core::OrpheusDB* db)
      : dir_(std::move(dir)), db_(db) {}

  Status Recover();
  Status ApplyRecord(const WalRecord& record);

  // Appends one record, then folds the WAL into a fresh snapshot if
  // the policy's bounds are exceeded. Appenders call through here so
  // every logged verb is a potential checkpoint trigger — the engine
  // has fully applied the verb in memory by the time it logs, so the
  // snapshot is consistent.
  Status AppendChecked(WalRecordType type, std::string_view body);

  std::string dir_;
  core::OrpheusDB* db_;
  std::unique_ptr<WalWriter> wal_;
  int lock_fd_ = -1;
  uint64_t max_wal_bytes_ = 64ull << 20;
  uint64_t max_wal_records_ = 0;
};

}  // namespace orpheus::storage

#endif  // ORPHEUS_STORAGE_STORAGE_MANAGER_H_
