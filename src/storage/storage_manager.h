// StorageManager: the orchestration layer of the durable storage
// subsystem. One manager owns one database directory:
//
//   <dir>/snapshot.orph   latest full snapshot (see snapshot.h)
//   <dir>/wal.log         commit WAL since that snapshot (see wal.h)
//
// Open() recovers: restore the snapshot (if any), replay every WAL
// record past the snapshot's LSN watermark, truncate any torn tail,
// and arm the appender. Checkpoint() writes a fresh snapshot via
// temp-file + atomic rename and empties the WAL; a crash between the
// two steps is harmless because replay skips records at or below the
// watermark.
//
// OrpheusDB calls the typed Log* appenders after each version-control
// verb succeeds in memory; the OK returned by an appender is the
// operation's durability point. Replay applies records through the
// same OrpheusDB verbs — logging is disarmed during recovery because
// the manager is not yet attached to the engine.

#ifndef ORPHEUS_STORAGE_STORAGE_MANAGER_H_
#define ORPHEUS_STORAGE_STORAGE_MANAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/cvd.h"
#include "relstore/chunk.h"
#include "storage/wal.h"

namespace orpheus::core {
class OrpheusDB;
}

namespace orpheus::storage {

class StorageManager {
 public:
  // Opens (creating if needed) `dir` and recovers its state into `db`,
  // which must be a fresh engine. The returned manager is armed for
  // appending; OrpheusDB::Open attaches it to the engine.
  static Result<std::unique_ptr<StorageManager>> Open(const std::string& dir,
                                                      core::OrpheusDB* db);

  // One-shot snapshot export (no WAL, no recovery arm).
  static Status SaveSnapshotTo(core::OrpheusDB* db, const std::string& dir);

  static std::string SnapshotPath(const std::string& dir) {
    return dir + "/snapshot.orph";
  }
  static std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  // Fresh snapshot (temp file + atomic rename), then WAL truncation.
  Status Checkpoint();

  const std::string& dir() const { return dir_; }
  uint64_t next_lsn() const { return wal_->next_lsn(); }

  // Benches may trade per-record fdatasync for throughput.
  void set_fsync(bool on) { wal_->set_fsync(on); }

  // --- Typed WAL appenders ---------------------------------------------
  Status LogCreateUser(const std::string& name);
  Status LogLogin(const std::string& name);
  Status LogInitCvd(const std::string& name, const core::CvdOptions& options,
                    const std::string& message, const rel::Chunk& rows);
  Status LogCheckout(const std::string& cvd_name,
                     const std::vector<core::VersionId>& vids,
                     const std::string& table_name);
  // Commit is logged in two steps so the record body can be encoded
  // straight out of the staged table *before* Commit resolves rids in
  // place and drops it — no intermediate chunk copy.
  static std::string EncodeCommitBody(const std::string& cvd_name,
                                      const std::string& table_name,
                                      const std::string& message,
                                      const rel::Chunk& staged_rows);
  Status AppendCommitBody(const std::string& body);
  Status LogDiscardStaged(const std::string& cvd_name,
                          const std::string& table_name);
  Status LogDropCvd(const std::string& cvd_name);
  Status LogRepartition(
      const std::string& cvd_name,
      const std::vector<std::vector<core::VersionId>>& groups);

 private:
  StorageManager(std::string dir, core::OrpheusDB* db)
      : dir_(std::move(dir)), db_(db) {}

  Status Recover();
  Status ApplyRecord(const WalRecord& record);

  std::string dir_;
  core::OrpheusDB* db_;
  std::unique_ptr<WalWriter> wal_;
};

}  // namespace orpheus::storage

#endif  // ORPHEUS_STORAGE_STORAGE_MANAGER_H_
