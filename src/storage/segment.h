// Checkpoint segment files: one table per file, self-checking.
//
// A segment holds exactly one relstore table — the same bytes a v1
// snapshot's table section used (SnapshotCodec::EncodeTableSection),
// wrapped in a magic/version/CRC header so a segment can be validated
// on its own. Segments are immutable once written: a checkpoint never
// rewrites a live segment, it writes a fresh file under a fresh name
// and retires the old one after the manifest commits (see manifest.h
// for the commit protocol and storage_manager.cc for the write path).
//
// File layout:
//
//   [8B magic "ORPHSEG1"][u32 format version][u64 body length]
//   [u32 body crc32][body = table section]

#ifndef ORPHEUS_STORAGE_SEGMENT_H_
#define ORPHEUS_STORAGE_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "relstore/table.h"

namespace orpheus::storage {

inline constexpr char kSegmentMagic[9] = "ORPHSEG1";  // 8 bytes on disk
// Shared by segments and the manifest: the v2 storage format.
inline constexpr uint32_t kStorageFormatVersion = 2;

// Serializes one table into a segment file image.
std::string EncodeSegmentFile(const rel::Table& table);

// Validates `file` and decodes it into a standalone Table (not yet
// adopted by any Database). `path` is only used in error messages, so
// a failed Open can name the bad file. InvalidArgument on a foreign
// file or format-version mismatch, Internal on checksum/structure
// corruption — never a crash.
Result<std::unique_ptr<rel::Table>> DecodeSegmentFile(std::string_view file,
                                                      const std::string& path);

}  // namespace orpheus::storage

#endif  // ORPHEUS_STORAGE_SEGMENT_H_
