// The checkpoint MANIFEST: the single commit point of the v2 storage
// format (RocksDB's MANIFEST idiom, flattened to one atomic file).
//
// A manifest names every live segment with its exact size and
// whole-file CRC, records the WAL watermark the checkpoint covers,
// and embeds the (small) engine metadata — user registry, CVDs,
// partition-store wiring — so that atomically replacing the MANIFEST
// commits tables and metadata together. Segment files not named by
// the current manifest are orphans and may be deleted at any time;
// segment files named by it are immutable.
//
// File layout:
//
//   [8B magic "ORPHMANI"][u32 format version][u64 body length]
//   [u32 body crc32][body]
//
// body:
//   u64 sequence          monotonic checkpoint number (diagnostics)
//   u64 last_lsn          WAL watermark: replay only records above it
//   u64 next_segment_id   fresh-name allocator floor (never reused)
//   u32 num_segments
//     { string table, string file, u64 size, u32 crc } per segment,
//     in table order
//   string meta           SnapshotCodec::EncodeMeta bytes

#ifndef ORPHEUS_STORAGE_MANIFEST_H_
#define ORPHEUS_STORAGE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/segment.h"

namespace orpheus::storage {

inline constexpr char kManifestMagic[9] = "ORPHMANI";  // 8 bytes on disk

struct ManifestSegment {
  std::string table;  // relstore table name
  std::string file;   // file name under <dir>/segments/
  uint64_t size = 0;  // exact file size in bytes
  uint32_t crc = 0;   // CRC-32 of the whole file image
};

struct Manifest {
  uint64_t sequence = 0;
  uint64_t last_lsn = 0;
  uint64_t next_segment_id = 1;
  std::vector<ManifestSegment> segments;
  std::string meta;
};

std::string EncodeManifest(const Manifest& manifest);

// Validates `file` and decodes it. `path` is only used in error
// messages so a failed Open can name the bad file. InvalidArgument on
// a foreign file or format-version mismatch, Internal on
// checksum/structure corruption — never a crash.
Result<Manifest> DecodeManifest(std::string_view file,
                                const std::string& path);

}  // namespace orpheus::storage

#endif  // ORPHEUS_STORAGE_MANIFEST_H_
