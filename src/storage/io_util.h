// Low-level helpers for the durable storage subsystem: a CRC32
// implementation (the WAL/snapshot checksum), little-endian binary
// encode/decode buffers, and POSIX file utilities with the usual
// crash-safety idioms (write-temp + fsync + atomic rename + fsync of
// the containing directory).
//
// Everything here is value-level and engine-agnostic; the snapshot and
// WAL codecs build on it.

#ifndef ORPHEUS_STORAGE_IO_UTIL_H_
#define ORPHEUS_STORAGE_IO_UTIL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace orpheus::storage {

// Standard CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the
// same checksum zlib's crc32() computes. `seed` allows incremental
// checksumming: Crc32(b, Crc32(a)) == Crc32(a+b).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);
inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

// --- Binary encoding ---------------------------------------------------
//
// All integers are little-endian fixed-width; strings and byte blobs
// are u64-length-prefixed. Doubles are bit-cast to u64, so values
// (incl. NaN payloads) round-trip exactly — the recovery contract
// requires bit-identical restores.

class BinaryWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutLE(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutLE(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }
  void PutString(std::string_view s) {
    PutU64(s.size());
    buf_.append(s.data(), s.size());
  }
  void PutRaw(const void* data, size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }

  const std::string& data() const { return buf_; }
  std::string Release() { return std::move(buf_); }

 private:
  void PutLE(const void* v, size_t n) {
    // Little-endian host assumed (x86-64/aarch64 Linux); a big-endian
    // port would byte-swap here.
    buf_.append(static_cast<const char*>(v), n);
  }
  std::string buf_;
};

// Bounds-checked reader over a byte view. The first out-of-bounds read
// latches an error; callers check ok()/status() once at the end of a
// decode section instead of after every field (reads after a failure
// return zero values and never touch memory out of range).
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  uint8_t GetU8() {
    if (!Ensure(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }
  uint32_t GetU32() { return static_cast<uint32_t>(GetLE(4)); }
  uint64_t GetU64() { return GetLE(8); }
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
  double GetDouble() {
    uint64_t bits = GetU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string GetString() {
    uint64_t n = GetU64();
    if (!Ensure(n)) return std::string();
    std::string out(data_.substr(pos_, n));
    pos_ += n;
    return out;
  }
  // Zero-copy view variant (valid while the underlying buffer lives).
  std::string_view GetStringView() {
    uint64_t n = GetU64();
    if (!Ensure(n)) return {};
    std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }
  bool GetRaw(void* out, size_t n) {
    if (!Ensure(n)) return false;
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  bool ok() const { return ok_; }
  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  Status status() const {
    return ok_ ? Status::OK()
               : Status::Internal("binary decode ran past end of buffer");
  }

 private:
  bool Ensure(uint64_t n) {
    if (!ok_ || n > data_.size() - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }
  uint64_t GetLE(size_t n) {
    if (!Ensure(n)) return 0;
    uint64_t v = 0;
    std::memcpy(&v, data_.data() + pos_, n);
    pos_ += n;
    return v;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Small composite codecs shared by the snapshot and WAL payloads.
void EncodeStringVec(const std::vector<std::string>& strings, BinaryWriter* w);
Result<std::vector<std::string>> DecodeStringVec(BinaryReader* r);
void EncodeI64Vec(const std::vector<int64_t>& values, BinaryWriter* w);
Result<std::vector<int64_t>> DecodeI64Vec(BinaryReader* r);

// --- File helpers -------------------------------------------------------

bool FileExists(const std::string& path);
Result<int64_t> FileSize(const std::string& path);

// realpath(): the canonical absolute path, or NotFound if the path
// does not resolve. Used to compare directory identities ("./d" vs
// "d") rather than spellings.
Result<std::string> CanonicalPath(const std::string& path);

// mkdir -p. OK if the directory already exists.
Status CreateDirectories(const std::string& path);

// Reads a whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

// Durable file classes, used to route fault-injection plans (below) to
// the right write path. kNone is the default for files that are not
// part of the crash-recovery protocol (exports, test scratch).
enum class IoFileClass : int { kNone = -1, kWal = 0, kSegment = 1, kManifest = 2 };
inline constexpr int kNumIoFileClasses = 3;

// Crash-safe whole-file replace: writes `<path>.tmp`, fsyncs it,
// renames over `path`, and fsyncs the parent directory so the rename
// itself is durable. Readers see either the old or the new content,
// never a prefix. When `cls` is not kNone the write/sync/rename steps
// consult the fault-injection hooks for that class; an injected fault
// models a crash, so the torn `<path>.tmp` is left behind exactly as a
// real kill would leave it.
Status WriteFileAtomic(const std::string& path, std::string_view data,
                       IoFileClass cls = IoFileClass::kNone);

// Durable whole-file write at the final name (no rename): open + write
// + fsync. Only correct for *fresh* names that nothing references yet
// (checkpoint segments: the file is invisible until a manifest lists
// it). Same fault-injection semantics as WriteFileAtomic.
Status WriteFileDurable(const std::string& path, std::string_view data,
                        IoFileClass cls = IoFileClass::kNone);

// unlink() with fault injection (ENOENT is OK — deletes are replayed
// idempotently during recovery). An injected fault returns an error
// without unlinking, modeling a crash just before the delete.
Status DeleteFileChecked(const std::string& path,
                         IoFileClass cls = IoFileClass::kNone);

// fsyncs a directory so completed creates/renames inside it survive a
// crash (segment files must be durable before the manifest names them).
Status SyncDir(const std::string& path);

// Non-recursive directory listing (names only, "."/".." excluded),
// sorted. NotFound if the directory does not exist.
Result<std::vector<std::string>> ListDir(const std::string& path);

// Truncates a file to `size` bytes (used to discard a torn WAL tail).
Status TruncateFile(const std::string& path, int64_t size);

// Advisory single-writer lock over a database directory: opens
// (creating if needed) `path` and takes a non-blocking exclusive
// flock(2) on it, returning the holding fd. Status::Unavailable when
// another holder — another process, or another open in this one — has
// it. The lock lives with the fd: ReleaseLockFile (or process exit,
// even by crash) releases it, so no stale-lockfile cleanup is needed.
Result<int> AcquireLockFile(const std::string& path);
void ReleaseLockFile(int fd);

// --- Deterministic fault injection (durability tests) -------------------
//
// The crash-recovery tests must be able to kill a durable write path at
// exact syscall boundaries — the Nth write()/fdatasync() of a commit
// group, the Nth segment write of a checkpoint, the manifest rename —
// instead of hoping a real kill lands there. Each durable file class
// (WAL, checkpoint segments, manifest) has its own independently armed
// plan and counters; with no plan armed (the default, and the only
// production state) the hooks cost one relaxed atomic load each and
// change nothing.

struct IoFaultPlan {
  // 1-based index of the write() that fails (0 = never fail). When it
  // fires, `torn_bytes` of the buffer are genuinely written first
  // (clamped to the buffer; -1 = nothing reaches the file), modeling a
  // torn tail exactly at that byte.
  int fail_write_at = 0;
  int64_t torn_bytes = -1;
  // 1-based index of the fdatasync/fsync that fails (0 = never).
  int fail_sync_at = 0;
  // Sleep injected into every sync (0 = none). Lets tests force commit
  // groups to form deterministically: while the leader is stuck in
  // "sync", concurrent committers pile into the next group.
  int sync_delay_ms = 0;
  // 1-based index of the rename() that fails (0 = never) — the
  // manifest's atomic-replace commit point.
  int fail_rename_at = 0;
  // 1-based index of the unlink() that fails (0 = never) — the
  // orphaned-segment cleanup after a checkpoint commits.
  int fail_delete_at = 0;
};

// Arms `plan` for one file class (other classes keep their state) and
// zeroes that class's per-plan syscall counters. Faults fire once (the
// counters keep advancing past the trigger).
void ArmIoFaults(IoFileClass cls, const IoFaultPlan& plan);
// Disarms every class.
void DisarmIoFaults();

// Process-wide totals of write()/sync calls issued per class since
// startup, counted whether or not a plan is armed — the sync-counter
// assertions ("N concurrent commits cost < N syncs") and the
// incremental-checkpoint assertions ("1 dirty table = 1 segment
// write") diff these. The totals live in the metrics registry
// (orpheus_io_{writes,syncs}_total{class=...}); these accessors are
// thin reads of the same counters, kept for the tests.
uint64_t IoWritesIssued(IoFileClass cls);
uint64_t IoSyncsIssued(IoFileClass cls);

// Internal (WalWriter / checkpoint writers): advances the counters and
// reports whether the armed plan says this syscall must fail.
// `*torn_bytes` receives how many bytes to really write before failing
// (-1 = none). The sync hook also applies the injected delay.
bool NextIoWriteFails(IoFileClass cls, int64_t* torn_bytes);
bool NextIoSyncFails(IoFileClass cls);
bool NextIoRenameFails(IoFileClass cls);
bool NextIoDeleteFails(IoFileClass cls);

// Creates a fresh temporary directory (mkdtemp) — tests and benches.
Result<std::string> MakeTempDir(const std::string& prefix);

// Recursively deletes a directory tree (test/bench cleanup).
Status RemoveDirRecursive(const std::string& path);

}  // namespace orpheus::storage

#endif  // ORPHEUS_STORAGE_IO_UTIL_H_
