#include "storage/snapshot.h"

#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "core/orpheus.h"

namespace orpheus::storage {

namespace {

using core::Cvd;
using core::OrpheusDB;
using core::VersionId;
using core::VersionNode;

Result<rel::DataType> DecodeDataType(BinaryReader* r) {
  uint8_t raw = r->GetU8();
  if (raw > static_cast<uint8_t>(rel::DataType::kIntArray)) {
    return Status::Internal("snapshot decode: unknown data type tag " +
                            std::to_string(raw));
  }
  return static_cast<rel::DataType>(raw);
}

// --- Partition-store section -------------------------------------------

void EncodePartitionStore(const std::string& cvd_name,
                          const part::PartitionStore& store, BinaryWriter* w) {
  part::PartitionStore::PersistedState state = store.ExportState();
  w->PutString(cvd_name);
  w->PutString(state.source_data_table);
  w->PutI64(state.next_phys_id);
  w->PutU32(static_cast<uint32_t>(state.parts.size()));
  for (const auto& part : state.parts) {
    w->PutString(part.data_table);
    w->PutString(part.rlist_table);
  }
}

}  // namespace

// --- Table section ------------------------------------------------------

void SnapshotCodec::EncodeTableSection(const rel::Table& table,
                                       BinaryWriter* w) {
  w->PutString(table.name());
  EncodeStringVec(table.primary_key(), w);
  w->PutString(table.clustered_on());
  EncodeStringVec(table.DeclaredIndexColumns(), w);
  EncodeChunk(table.data(), w);
}

Result<std::unique_ptr<rel::Table>> SnapshotCodec::DecodeTableObject(
    BinaryReader* r) {
  std::string name = r->GetString();
  ORPHEUS_ASSIGN_OR_RETURN(std::vector<std::string> pk, DecodeStringVec(r));
  std::string clustered = r->GetString();
  ORPHEUS_ASSIGN_OR_RETURN(std::vector<std::string> indexes, DecodeStringVec(r));
  ORPHEUS_ASSIGN_OR_RETURN(rel::Chunk chunk, DecodeChunk(r));
  auto table =
      std::make_unique<rel::Table>(name, chunk.schema(), std::move(pk));
  table->mutable_chunk() = std::move(chunk);
  for (const std::string& column : indexes) {
    ORPHEUS_RETURN_NOT_OK(table->DeclareIndex(column));
  }
  table->RestoreClusteredMarker(std::move(clustered));
  return table;
}

// --- CVD section --------------------------------------------------------

void SnapshotCodec::EncodeCvd(const Cvd& cvd, BinaryWriter* w) {
  w->PutString(cvd.name_);
  w->PutU8(static_cast<uint8_t>(cvd.model_->kind()));
  EncodeStringVec(cvd.primary_key_, w);
  EncodeSchema(cvd.model_->data_schema(), w);

  w->PutU32(static_cast<uint32_t>(cvd.attributes_.size()));
  for (const core::AttributeEntry& attr : cvd.attributes_) {
    w->PutI64(attr.attr_id);
    w->PutString(attr.name);
    w->PutU8(static_cast<uint8_t>(attr.type));
  }
  w->PutU32(static_cast<uint32_t>(cvd.version_attrs_.size()));
  for (const auto& [vid, attr_ids] : cvd.version_attrs_) {
    w->PutI64(vid);
    EncodeI64Vec(attr_ids, w);
  }
  w->PutU32(static_cast<uint32_t>(cvd.staged_.size()));
  for (const auto& [table, info] : cvd.staged_) {
    w->PutString(info.table_name);
    EncodeI64Vec(info.parents, w);
    w->PutI64(info.checkout_time);
  }
  w->PutI64(cvd.next_rid_);
  w->PutI64(cvd.next_vid_);
  w->PutI64(cvd.logical_clock_);

  const core::VersionGraph& graph = cvd.graph_;
  w->PutU32(static_cast<uint32_t>(graph.num_versions()));
  for (VersionId vid : graph.versions()) {
    const VersionNode* node = graph.GetNode(vid).value();
    w->PutI64(vid);
    EncodeI64Vec(node->parents, w);
    EncodeI64Vec(node->parent_weights, w);
    w->PutI64(node->num_records);
  }
}

Status SnapshotCodec::DecodeCvd(BinaryReader* r, OrpheusDB* db) {
  std::string name = r->GetString();
  uint8_t kind_raw = r->GetU8();
  if (kind_raw > static_cast<uint8_t>(core::DataModelKind::kDeltaBased)) {
    return Status::Internal("snapshot decode: unknown data model tag " +
                            std::to_string(kind_raw));
  }
  core::CvdOptions options;
  options.model = static_cast<core::DataModelKind>(kind_raw);
  ORPHEUS_ASSIGN_OR_RETURN(std::vector<std::string> pk, DecodeStringVec(r));
  options.primary_key = std::move(pk);
  ORPHEUS_ASSIGN_OR_RETURN(rel::Schema data_schema, DecodeSchema(r));

  // Backing tables already exist (restored by the table section), so
  // this goes through the raw constructor, not Create.
  std::unique_ptr<Cvd> cvd(
      new Cvd(&db->db_, name, std::move(data_schema), std::move(options)));

  uint32_t num_attrs = r->GetU32();
  for (uint32_t i = 0; i < num_attrs && r->ok(); ++i) {
    core::AttributeEntry attr;
    attr.attr_id = r->GetI64();
    attr.name = r->GetString();
    ORPHEUS_ASSIGN_OR_RETURN(attr.type, DecodeDataType(r));
    // Replaying entries in order rebuilds the live map (latest entry
    // for a name wins, exactly as AddAttributeEntry maintained it).
    cvd->live_attrs_[attr.name] = attr.attr_id;
    cvd->attributes_.push_back(std::move(attr));
  }
  uint32_t num_version_attrs = r->GetU32();
  for (uint32_t i = 0; i < num_version_attrs && r->ok(); ++i) {
    VersionId vid = r->GetI64();
    ORPHEUS_ASSIGN_OR_RETURN(std::vector<int64_t> ids, DecodeI64Vec(r));
    cvd->version_attrs_[vid] = std::move(ids);
  }
  uint32_t num_staged = r->GetU32();
  for (uint32_t i = 0; i < num_staged && r->ok(); ++i) {
    core::StagedTableInfo info;
    info.table_name = r->GetString();
    ORPHEUS_ASSIGN_OR_RETURN(std::vector<int64_t> parents, DecodeI64Vec(r));
    info.parents = std::move(parents);
    info.checkout_time = r->GetI64();
    cvd->staged_[info.table_name] = std::move(info);
  }
  cvd->next_rid_ = r->GetI64();
  cvd->next_vid_ = r->GetI64();
  cvd->logical_clock_ = r->GetI64();

  uint32_t num_versions = r->GetU32();
  for (uint32_t i = 0; i < num_versions && r->ok(); ++i) {
    VersionId vid = r->GetI64();
    ORPHEUS_ASSIGN_OR_RETURN(std::vector<int64_t> parents, DecodeI64Vec(r));
    ORPHEUS_ASSIGN_OR_RETURN(std::vector<int64_t> weights, DecodeI64Vec(r));
    int64_t num_records = r->GetI64();
    ORPHEUS_RETURN_NOT_OK(r->status());
    ORPHEUS_RETURN_NOT_OK(
        cvd->graph_.AddVersion(vid, parents, weights, num_records));
  }
  ORPHEUS_RETURN_NOT_OK(r->status());
  ORPHEUS_RETURN_NOT_OK(cvd->model_->RestoreFromTables(cvd->graph_));
  db->cvds_[name] = std::move(cvd);
  return Status::OK();
}

Status SnapshotCodec::DecodePartitionStore(BinaryReader* r, OrpheusDB* db) {
  std::string cvd_name = r->GetString();
  part::PartitionStore::PersistedState state;
  state.source_data_table = r->GetString();
  state.next_phys_id = static_cast<int>(r->GetI64());
  uint32_t num_parts = r->GetU32();
  for (uint32_t i = 0; i < num_parts && r->ok(); ++i) {
    part::PartitionStore::PersistedState::Part part;
    part.data_table = r->GetString();
    part.rlist_table = r->GetString();
    state.parts.push_back(std::move(part));
  }
  ORPHEUS_RETURN_NOT_OK(r->status());
  ORPHEUS_ASSIGN_OR_RETURN(
      std::unique_ptr<part::PartitionStore> store,
      part::PartitionStore::Restore(&db->db_, cvd_name, state));
  return db->AttachPartitionStore(cvd_name, std::move(store));
}

// --- Shared schema/chunk codecs ----------------------------------------

void EncodeSchema(const rel::Schema& schema, BinaryWriter* w) {
  w->PutU32(static_cast<uint32_t>(schema.num_columns()));
  for (const rel::ColumnDef& def : schema.columns()) {
    w->PutString(def.name);
    w->PutU8(static_cast<uint8_t>(def.type));
  }
}

Result<rel::Schema> DecodeSchema(BinaryReader* r) {
  uint32_t n = r->GetU32();
  rel::Schema schema;
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    std::string name = r->GetString();
    ORPHEUS_ASSIGN_OR_RETURN(rel::DataType type, DecodeDataType(r));
    schema.AddColumn(std::move(name), type);
  }
  ORPHEUS_RETURN_NOT_OK(r->status());
  return schema;
}

void EncodeChunk(const rel::Chunk& chunk, BinaryWriter* w) {
  EncodeSchema(chunk.schema(), w);
  const size_t num_rows = chunk.num_rows();
  w->PutU64(num_rows);
  for (int c = 0; c < chunk.num_columns(); ++c) {
    const rel::Column& col = chunk.column(c);
    w->PutU8(col.has_null_bitmap() ? 1 : 0);
    if (col.has_null_bitmap()) {
      std::string bits((num_rows + 7) / 8, '\0');
      for (size_t row = 0; row < num_rows; ++row) {
        if (col.IsNull(row)) bits[row >> 3] |= static_cast<char>(1 << (row & 7));
      }
      w->PutRaw(bits.data(), bits.size());
    }
    switch (col.type()) {
      case rel::DataType::kInt64:
      case rel::DataType::kBool:
        w->PutRaw(col.ints().data(), col.ints().size() * sizeof(int64_t));
        break;
      case rel::DataType::kDouble:
        w->PutRaw(col.doubles().data(), col.doubles().size() * sizeof(double));
        break;
      case rel::DataType::kString:
        for (const std::string& s : col.strings()) w->PutString(s);
        break;
      case rel::DataType::kIntArray:
        for (const rel::IntArray& a : col.arrays()) {
          w->PutU64(a.size());
          w->PutRaw(a.data(), a.size() * sizeof(int64_t));
        }
        break;
      case rel::DataType::kNull:
        break;
    }
  }
}

Result<rel::Chunk> DecodeChunk(BinaryReader* r) {
  ORPHEUS_ASSIGN_OR_RETURN(rel::Schema schema, DecodeSchema(r));
  uint64_t num_rows = r->GetU64();
  ORPHEUS_RETURN_NOT_OK(r->status());
  rel::Chunk chunk(schema);
  for (int c = 0; c < schema.num_columns(); ++c) {
    rel::Column& col = chunk.mutable_column(c);
    uint8_t has_bitmap = r->GetU8();
    std::string bits;
    if (has_bitmap != 0) {
      bits.resize((num_rows + 7) / 8);
      r->GetRaw(bits.data(), bits.size());
    }
    // Guard the row count before the append loops: every row costs at
    // least 8 bytes in every storable type, so this bounds allocation
    // on corrupt input.
    if (!r->ok() || num_rows > r->remaining() / 8) {
      return Status::Internal("chunk decode: truncated column payload");
    }
    switch (schema.column(c).type) {
      case rel::DataType::kInt64:
      case rel::DataType::kBool:
        for (uint64_t row = 0; row < num_rows; ++row) col.AppendInt(r->GetI64());
        break;
      case rel::DataType::kDouble:
        for (uint64_t row = 0; row < num_rows; ++row) {
          col.AppendDouble(r->GetDouble());
        }
        break;
      case rel::DataType::kString:
        for (uint64_t row = 0; row < num_rows; ++row) {
          col.AppendString(r->GetString());
        }
        break;
      case rel::DataType::kIntArray: {
        for (uint64_t row = 0; row < num_rows; ++row) {
          uint64_t n = r->GetU64();
          if (!r->ok() || n * sizeof(int64_t) > r->remaining()) {
            return Status::Internal("chunk decode: truncated array payload");
          }
          rel::IntArray a(n);
          r->GetRaw(a.data(), n * sizeof(int64_t));
          col.AppendArray(std::move(a));
        }
        break;
      }
      case rel::DataType::kNull:
        break;
    }
    ORPHEUS_RETURN_NOT_OK(r->status());
    if (has_bitmap != 0) {
      col.MaterializeNullBitmap();
      for (uint64_t row = 0; row < num_rows; ++row) {
        if ((bits[row >> 3] >> (row & 7)) & 1) col.SetNull(row);
      }
    }
  }
  return chunk;
}

// --- Engine-metadata section (everything but the tables) ----------------

void SnapshotCodec::EncodeMeta(OrpheusDB& db, BinaryWriter* w) {
  EncodeStringVec(std::vector<std::string>(db.users_.begin(), db.users_.end()),
                  w);
  w->PutString(db.current_user_);

  w->PutU32(static_cast<uint32_t>(db.cvds_.size()));
  for (const auto& [name, cvd] : db.cvds_) EncodeCvd(*cvd, w);

  w->PutU32(static_cast<uint32_t>(db.partition_stores_.size()));
  for (const auto& [name, store] : db.partition_stores_) {
    EncodePartitionStore(name, *store, w);
  }
}

Status SnapshotCodec::DecodeMeta(BinaryReader* r, OrpheusDB* db) {
  ORPHEUS_ASSIGN_OR_RETURN(std::vector<std::string> users, DecodeStringVec(r));
  db->users_ = std::set<std::string>(users.begin(), users.end());
  db->current_user_ = r->GetString();

  uint32_t num_cvds = r->GetU32();
  for (uint32_t i = 0; i < num_cvds && r->ok(); ++i) {
    ORPHEUS_RETURN_NOT_OK(DecodeCvd(r, db));
  }
  uint32_t num_stores = r->GetU32();
  for (uint32_t i = 0; i < num_stores && r->ok(); ++i) {
    ORPHEUS_RETURN_NOT_OK(DecodePartitionStore(r, db));
  }
  return r->status();
}

// --- Whole-snapshot codec ----------------------------------------------

std::string SnapshotCodec::Encode(OrpheusDB& db, uint64_t last_lsn) {
  BinaryWriter body;

  EncodeStringVec(std::vector<std::string>(db.users_.begin(), db.users_.end()),
                  &body);
  body.PutString(db.current_user_);

  std::vector<std::string> table_names = db.db_.ListTables();
  body.PutU32(static_cast<uint32_t>(table_names.size()));
  for (const std::string& name : table_names) {
    EncodeTableSection(*db.db_.GetTable(name).value(), &body);
  }

  body.PutU32(static_cast<uint32_t>(db.cvds_.size()));
  for (const auto& [name, cvd] : db.cvds_) EncodeCvd(*cvd, &body);

  body.PutU32(static_cast<uint32_t>(db.partition_stores_.size()));
  for (const auto& [name, store] : db.partition_stores_) {
    EncodePartitionStore(name, *store, &body);
  }

  BinaryWriter file;
  file.PutRaw(kSnapshotMagic, 8);
  file.PutU32(kSnapshotFormatVersion);
  file.PutU64(last_lsn);
  file.PutU64(body.data().size());
  file.PutU32(Crc32(body.data()));
  file.PutRaw(body.data().data(), body.data().size());
  return file.Release();
}

Status SnapshotCodec::Decode(std::string_view file, OrpheusDB* db,
                             uint64_t* last_lsn) {
  constexpr size_t kHeaderBytes = 8 + 4 + 8 + 8 + 4;
  if (file.size() < kHeaderBytes ||
      std::memcmp(file.data(), kSnapshotMagic, 8) != 0) {
    return Status::InvalidArgument("not an OrpheusDB snapshot file");
  }
  BinaryReader header(file.substr(8));
  uint32_t version = header.GetU32();
  if (version != kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        "snapshot format version " + std::to_string(version) +
        " unsupported (this build reads version " +
        std::to_string(kSnapshotFormatVersion) + ")");
  }
  uint64_t lsn = header.GetU64();
  uint64_t body_len = header.GetU64();
  uint32_t body_crc = header.GetU32();
  if (body_len != file.size() - kHeaderBytes) {
    return Status::Internal("snapshot body length mismatch (corrupt file)");
  }
  std::string_view body_bytes = file.substr(kHeaderBytes);
  if (Crc32(body_bytes) != body_crc) {
    return Status::Internal("snapshot checksum mismatch (corrupt file)");
  }

  if (!db->cvds_.empty() || !db->db_.ListTables().empty()) {
    return Status::InvalidArgument(
        "snapshot restore requires a fresh engine (CVDs or tables exist)");
  }

  BinaryReader r(body_bytes);
  ORPHEUS_ASSIGN_OR_RETURN(std::vector<std::string> users, DecodeStringVec(&r));
  db->users_ = std::set<std::string>(users.begin(), users.end());
  db->current_user_ = r.GetString();

  uint32_t num_tables = r.GetU32();
  for (uint32_t i = 0; i < num_tables && r.ok(); ++i) {
    ORPHEUS_ASSIGN_OR_RETURN(std::unique_ptr<rel::Table> table,
                             DecodeTableObject(&r));
    ORPHEUS_RETURN_NOT_OK(db->db_.AdoptTableObject(std::move(table)));
  }
  uint32_t num_cvds = r.GetU32();
  for (uint32_t i = 0; i < num_cvds && r.ok(); ++i) {
    ORPHEUS_RETURN_NOT_OK(DecodeCvd(&r, db));
  }
  uint32_t num_stores = r.GetU32();
  for (uint32_t i = 0; i < num_stores && r.ok(); ++i) {
    ORPHEUS_RETURN_NOT_OK(DecodePartitionStore(&r, db));
  }
  ORPHEUS_RETURN_NOT_OK(r.status());
  if (r.remaining() != 0) {
    return Status::Internal("snapshot has trailing bytes (corrupt file)");
  }
  if (last_lsn != nullptr) *last_lsn = lsn;
  return Status::OK();
}

}  // namespace orpheus::storage
