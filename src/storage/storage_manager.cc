#include "storage/storage_manager.h"

#include <cstdio>
#include <map>
#include <set>
#include <utility>

#include "common/thread_pool.h"
#include "core/orpheus.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/io_util.h"
#include "storage/segment.h"
#include "storage/snapshot.h"

namespace orpheus::storage {

namespace {

using core::VersionId;

// Fresh segment file name; ids are allocated from the manifest's
// next_segment_id and never reused, so a checkpoint can never
// overwrite a live segment (at worst it reclaims the name of an
// orphan a crashed checkpoint left behind).
std::string SegmentFileName(uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%08llu.orps",
                static_cast<unsigned long long>(id));
  return buf;
}

const char* RecordTypeName(WalRecordType type) {
  switch (type) {
    case WalRecordType::kCreateUser: return "create_user";
    case WalRecordType::kLogin: return "login";
    case WalRecordType::kInitCvd: return "init_cvd";
    case WalRecordType::kCheckout: return "checkout";
    case WalRecordType::kCommit: return "commit";
    case WalRecordType::kDiscardStaged: return "discard_staged";
    case WalRecordType::kDropCvd: return "drop_cvd";
    case WalRecordType::kRepartition: return "repartition";
  }
  return "unknown";
}

}  // namespace

Result<std::unique_ptr<StorageManager>> StorageManager::Open(
    const std::string& dir, core::OrpheusDB* db) {
  ORPHEUS_RETURN_NOT_OK(CreateDirectories(dir));
  std::unique_ptr<StorageManager> manager(new StorageManager(dir, db));
  // Single-writer guard: hold <dir>/LOCK for the manager's lifetime so
  // a second engine (same or another process) gets a clean refusal
  // instead of two WAL appenders interleaving frames.
  ORPHEUS_ASSIGN_OR_RETURN(manager->lock_fd_, AcquireLockFile(LockPath(dir)));
  ORPHEUS_RETURN_NOT_OK(manager->Recover());
  return manager;
}

StorageManager::~StorageManager() {
  // Clean shutdown drains whatever the last statements enqueued; a
  // crash instead loses only records whose WaitDurable never returned
  // OK, which is exactly the durability contract.
  (void)FlushPending();
  ReleaseLockFile(lock_fd_);
}

void StorageManager::SetAutoCheckpointPolicy(uint64_t max_wal_bytes,
                                             uint64_t max_wal_records) {
  max_wal_bytes_ = max_wal_bytes;
  max_wal_records_ = max_wal_records;
}

Status StorageManager::SaveSnapshotTo(core::OrpheusDB* db,
                                      const std::string& dir) {
  ORPHEUS_RETURN_NOT_OK(CreateDirectories(dir));
  // A standalone export covers everything, so its watermark is 0: a
  // later Open of the directory replays nothing.
  std::string blob = SnapshotCodec::Encode(*db, /*last_lsn=*/0);
  return WriteFileAtomic(SnapshotPath(dir), blob);
}

Status StorageManager::RestoreFromManifest(uint64_t* last_lsn) {
  const std::string manifest_path = ManifestPath(dir_);
  ORPHEUS_ASSIGN_OR_RETURN(std::string blob, ReadFileToString(manifest_path));
  ORPHEUS_ASSIGN_OR_RETURN(manifest_, DecodeManifest(blob, manifest_path));

  if (!db_->cvds_.empty() || !db_->db_.ListTables().empty()) {
    return Status::InvalidArgument(
        "manifest restore requires a fresh engine (CVDs or tables exist)");
  }

  // Read + validate + decode every segment in parallel; adopt
  // sequentially in manifest order afterwards so the restored table
  // map is deterministic and errors surface in a stable order.
  const int n = static_cast<int>(manifest_.segments.size());
  std::vector<std::unique_ptr<rel::Table>> tables(n);
  std::vector<Status> statuses(n);
  orpheus::ExecParallelFor(n, [&](int i) {
    const ManifestSegment& seg = manifest_.segments[i];
    const std::string path = SegmentPath(dir_, seg.file);
    Result<std::string> bytes_or = ReadFileToString(path);
    if (!bytes_or.ok()) {
      statuses[i] = Status::Internal("missing segment file " + path +
                                     " (referenced by MANIFEST): " +
                                     bytes_or.status().ToString());
      return;
    }
    const std::string& bytes = bytes_or.value();
    if (bytes.size() != seg.size) {
      statuses[i] = Status::Internal(
          "segment size mismatch for " + path + ": manifest says " +
          std::to_string(seg.size) + " bytes, file has " +
          std::to_string(bytes.size()));
      return;
    }
    if (Crc32(bytes) != seg.crc) {
      statuses[i] =
          Status::Internal("segment checksum mismatch (corrupt file " + path +
                           ", expected by MANIFEST)");
      return;
    }
    Result<std::unique_ptr<rel::Table>> table_or =
        DecodeSegmentFile(bytes, path);
    if (!table_or.ok()) {
      statuses[i] = table_or.status();
      return;
    }
    if (table_or.value()->name() != seg.table) {
      statuses[i] = Status::Internal(
          "segment table mismatch for " + path + ": manifest says \"" +
          seg.table + "\", file holds \"" + table_or.value()->name() + "\"");
      return;
    }
    tables[i] = std::move(table_or).value();
  });
  for (int i = 0; i < n; ++i) {
    ORPHEUS_RETURN_NOT_OK(statuses[i]);
    ORPHEUS_RETURN_NOT_OK(db_->db_.AdoptTableObject(std::move(tables[i])));
  }

  BinaryReader r(manifest_.meta);
  Status st = SnapshotCodec::DecodeMeta(&r, db_);
  if (st.ok() && r.remaining() != 0) {
    st = Status::Internal("manifest metadata has trailing bytes");
  }
  if (!st.ok()) {
    return Status::Internal("manifest metadata restore failed (corrupt file " +
                            manifest_path + "): " + st.ToString());
  }

  // The segments on disk are exact for the state just restored; stamp
  // every table clean *now*, before WAL replay re-dirties whatever it
  // touches.
  clean_epochs_.clear();
  for (const std::string& name : db_->db_.ListTables()) {
    clean_epochs_[name] = db_->db_.GetTable(name).value()->epoch();
  }

  *last_lsn = manifest_.last_lsn;
  return Status::OK();
}

Status StorageManager::DeleteOrphanSegments(uint64_t* deleted) {
  uint64_t count = 0;
  std::set<std::string> live;
  for (const ManifestSegment& seg : manifest_.segments) live.insert(seg.file);
  Result<std::vector<std::string>> names_or = ListDir(SegmentsDir(dir_));
  if (names_or.ok()) {
    for (const std::string& name : names_or.value()) {
      if (live.count(name) > 0) continue;
      ORPHEUS_RETURN_NOT_OK(
          DeleteFileChecked(SegmentPath(dir_, name), IoFileClass::kSegment));
      ++count;
    }
  } else if (names_or.status().code() != StatusCode::kNotFound) {
    return names_or.status();
  }
  // A legacy v1 snapshot superseded by the manifest is an orphan too
  // (migration's final step; also re-run here if that step crashed).
  if (FileExists(SnapshotPath(dir_))) {
    ORPHEUS_RETURN_NOT_OK(
        DeleteFileChecked(SnapshotPath(dir_), IoFileClass::kSegment));
    ++count;
  }
  if (deleted != nullptr) *deleted = count;
  return Status::OK();
}

Status StorageManager::Recover() {
  uint64_t snapshot_lsn = 0;
  bool migrate_v1 = false;
  if (FileExists(ManifestPath(dir_))) {
    Status st = RestoreFromManifest(&snapshot_lsn);
    if (!st.ok()) {
      return Status::Internal("cannot recover " + dir_ +
                              ": manifest restore failed: " + st.ToString());
    }
  } else if (FileExists(SnapshotPath(dir_))) {
    // Legacy v1 directory: restore the monolithic snapshot, then (once
    // the WAL is replayed and the appender armed) migrate in place.
    ORPHEUS_ASSIGN_OR_RETURN(std::string blob,
                             ReadFileToString(SnapshotPath(dir_)));
    Status st = SnapshotCodec::Decode(blob, db_, &snapshot_lsn);
    if (!st.ok()) {
      return Status::Internal("cannot recover " + dir_ +
                              ": snapshot restore failed: " + st.ToString());
    }
    migrate_v1 = true;
  }

  uint64_t max_lsn = snapshot_lsn;
  uint64_t replayed_records = 0;
  const std::string wal_path = WalPath(dir_);
  if (FileExists(wal_path)) {
    ORPHEUS_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(wal_path));
    size_t valid_bytes = 0;
    std::vector<WalRecord> records =
        ParseWal(bytes, snapshot_lsn, &valid_bytes);
    for (const WalRecord& record : records) {
      Status st = ApplyRecord(record);
      if (!st.ok()) {
        return Status::Internal(
            "cannot recover " + dir_ + ": WAL replay failed at lsn " +
            std::to_string(record.lsn) + " (" + RecordTypeName(record.type) +
            "): " + st.ToString());
      }
      max_lsn = record.lsn;
      ++replayed_records;
    }
    // Anything past the well-formed prefix is a torn or corrupt tail;
    // discard it so the appender continues at a clean frame boundary.
    if (valid_bytes < bytes.size()) {
      ORPHEUS_RETURN_NOT_OK(TruncateFile(wal_path, valid_bytes));
    }
  }
  ORPHEUS_ASSIGN_OR_RETURN(
      wal_, WalWriter::Open(wal_path, max_lsn + 1, replayed_records));

  if (migrate_v1) {
    // One-shot v1→v2 migration: clean_epochs_ is empty, so this full
    // checkpoint segments every table, commits the first MANIFEST, and
    // retires snapshot.orph (as an orphan). If it fails the directory
    // is still a valid v1 directory and the next open retries.
    ORPHEUS_RETURN_NOT_OK(Checkpoint());
  } else if (FileExists(ManifestPath(dir_))) {
    // Remove segments a crashed checkpoint wrote but never committed.
    ORPHEUS_RETURN_NOT_OK(DeleteOrphanSegments(nullptr));
  }
  return Status::OK();
}

// --- Group commit -------------------------------------------------------

void StorageManager::SetGroupCommit(bool on) {
  {
    std::lock_guard<std::mutex> lock(group_mu_);
    if (group_commit_ == on) return;
  }
  // Turning the mode off must not strand queued records: drain first,
  // so the synchronous path resumes on a clean frame boundary.
  if (!on) (void)FlushPending();
  std::lock_guard<std::mutex> lock(group_mu_);
  group_commit_ = on;
}

bool StorageManager::group_commit() const {
  std::lock_guard<std::mutex> lock(group_mu_);
  return group_commit_;
}

std::vector<AppendTicket> StorageManager::TakePendingTickets() {
  std::lock_guard<std::mutex> lock(group_mu_);
  return std::move(unclaimed_);
}

void StorageManager::LeadGroup(std::unique_lock<std::mutex>& lock) {
  writer_active_ = true;
  std::vector<AppendTicket> batch(queue_.begin(), queue_.end());
  queue_.clear();
  queued_bytes_ = 0;
  lock.unlock();

  // The expensive part — one write(), one fdatasync for the whole
  // group — runs with no lock held: concurrent sessions keep applying
  // and enqueueing the next group meanwhile.
  std::vector<WalAppendEntry> entries;
  entries.reserve(batch.size());
  for (const AppendTicket& ticket : batch) {
    entries.push_back({ticket->type, ticket->body});
  }
  uint64_t first_lsn = 0;
  Status st = wal_->AppendBatch(entries.data(), entries.size(), &first_lsn);

  lock.lock();
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i]->status = st;
    batch[i]->lsn = st.ok() ? first_lsn + i : 0;
    batch[i]->done = true;
  }
  writer_active_ = false;
  group_cv_.notify_all();
}

Status StorageManager::WaitDurable(const std::vector<AppendTicket>& tickets) {
  Status first_error;
  std::unique_lock<std::mutex> lock(group_mu_);
  for (const AppendTicket& ticket : tickets) {
    while (!ticket->done) {
      if (!writer_active_ && !queue_.empty()) {
        LeadGroup(lock);
      } else {
        group_cv_.wait(lock);
      }
    }
    if (first_error.ok() && !ticket->status.ok()) {
      first_error = ticket->status;
    }
  }
  return first_error;
}

Status StorageManager::FlushPending() {
  // A manager whose Open failed before the writer was armed (lock file
  // contention, unrecoverable snapshot) has nothing to flush.
  if (wal_ == nullptr) return Status::OK();
  std::unique_lock<std::mutex> lock(group_mu_);
  while (writer_active_ || !queue_.empty()) {
    if (!writer_active_ && !queue_.empty()) {
      LeadGroup(lock);
    } else {
      group_cv_.wait(lock);
    }
  }
  return wal_->health();
}

Status StorageManager::AppendChecked(WalRecordType type,
                                     std::string_view body) {
  obs::TraceSpan enqueue_span(obs::TraceStage::kWalEnqueue);
  bool over_bytes = false;
  bool over_records = false;
  bool grouped;
  {
    std::lock_guard<std::mutex> lock(group_mu_);
    grouped = group_commit_;
    if (grouped) {
      auto ticket = std::make_shared<PendingAppend>();
      ticket->type = type;
      ticket->body.assign(body.data(), body.size());
      // Frame = [u32 len][u32 crc] + [u64 lsn][u8 type] + body.
      queued_bytes_ += 17 + body.size();
      queue_.push_back(ticket);
      unclaimed_.push_back(std::move(ticket));
      over_bytes = max_wal_bytes_ > 0 &&
                   wal_->file_bytes() + queued_bytes_ > max_wal_bytes_;
      over_records = max_wal_records_ > 0 &&
                     wal_->records() + queue_.size() > max_wal_records_;
    }
  }
  if (!grouped) {
    ORPHEUS_RETURN_NOT_OK(wal_->Append(type, body));
    over_bytes = max_wal_bytes_ > 0 && wal_->file_bytes() > max_wal_bytes_;
    over_records =
        max_wal_records_ > 0 && wal_->records() > max_wal_records_;
  }
  if (over_bytes || over_records) {
    // Safe here: the appender's caller holds the engine's exclusive
    // lock, so the in-memory state the snapshot encodes is stable and
    // no new enqueues can race the flush.
    return Checkpoint();
  }
  return Status::OK();
}

Status StorageManager::Checkpoint() {
  obs::TraceSpan checkpoint_span(obs::TraceStage::kCheckpoint);
  ORPHEUS_RETURN_NOT_OK(FlushPending());

  Manifest next;
  next.sequence = manifest_.sequence + 1;
  next.last_lsn = wal_->next_lsn() - 1;
  next.next_segment_id = manifest_.next_segment_id;

  std::map<std::string, const ManifestSegment*> live;
  for (const ManifestSegment& seg : manifest_.segments) {
    live[seg.table] = &seg;
  }

  CheckpointStats stats;
  std::map<std::string, uint64_t> observed_epochs;
  ORPHEUS_RETURN_NOT_OK(CreateDirectories(SegmentsDir(dir_)));
  for (const std::string& name : db_->db_.ListTables()) {
    const rel::Table* table = db_->db_.GetTable(name).value();
    const uint64_t epoch = table->epoch();
    observed_epochs[name] = epoch;

    auto clean = clean_epochs_.find(name);
    auto old_seg = live.find(name);
    if (incremental_ && old_seg != live.end() &&
        clean != clean_epochs_.end() && clean->second == epoch) {
      // Unchanged since its segment was encoded: carry it over.
      next.segments.push_back(*old_seg->second);
      ++stats.segments_reused;
      continue;
    }
    // Dirty (or full-rewrite mode): fresh segment under a fresh name.
    const std::string file = SegmentFileName(next.next_segment_id++);
    const std::string blob = EncodeSegmentFile(*table);
    ORPHEUS_RETURN_NOT_OK(
        WriteFileDurable(SegmentPath(dir_, file), blob, IoFileClass::kSegment));
    ManifestSegment seg;
    seg.table = name;
    seg.file = file;
    seg.size = blob.size();
    seg.crc = Crc32(blob);
    next.segments.push_back(std::move(seg));
    ++stats.segments_written;
    stats.bytes_written += blob.size();
  }
  if (stats.segments_written > 0) {
    // New segment files' directory entries must be durable before the
    // manifest references them.
    ORPHEUS_RETURN_NOT_OK(SyncDir(SegmentsDir(dir_)));
  }

  BinaryWriter meta;
  SnapshotCodec::EncodeMeta(*db_, &meta);
  next.meta = meta.Release();

  // The commit point: atomically replace the MANIFEST. Before the
  // rename lands, recovery sees the old manifest plus the full WAL;
  // after, the new manifest whose watermark skips those records.
  ORPHEUS_RETURN_NOT_OK(WriteFileAtomic(ManifestPath(dir_),
                                        EncodeManifest(next),
                                        IoFileClass::kManifest));

  manifest_ = std::move(next);
  clean_epochs_ = std::move(observed_epochs);
  last_stats_ = stats;

  // CheckpointStats promoted into the registry: last_stats_ stays the
  // per-checkpoint view, these accumulate across the process.
  obs::MetricsRegistry& reg = obs::GlobalMetrics();
  reg.GetCounter("orpheus_checkpoints_total", "Checkpoints committed.")->Inc();
  reg.GetCounter("orpheus_checkpoint_segments_written_total",
                 "Segment files rewritten by checkpoints.")
      ->Inc(static_cast<uint64_t>(stats.segments_written));
  reg.GetCounter("orpheus_checkpoint_segments_reused_total",
                 "Clean segment files carried over by checkpoints.")
      ->Inc(static_cast<uint64_t>(stats.segments_reused));
  reg.GetCounter("orpheus_checkpoint_bytes_written_total",
                 "Segment bytes written by checkpoints.")
      ->Inc(static_cast<uint64_t>(stats.bytes_written));

  // Cleanup after the commit point: failures here leave orphans (or a
  // stale-but-skipped WAL), both harmless and retried later.
  ORPHEUS_RETURN_NOT_OK(DeleteOrphanSegments(&last_stats_.segments_deleted));
  return wal_->Reset();
}

// --- Appenders ----------------------------------------------------------

Status StorageManager::LogCreateUser(const std::string& name) {
  BinaryWriter body;
  body.PutString(name);
  return AppendChecked(WalRecordType::kCreateUser, body.data());
}

Status StorageManager::LogLogin(const std::string& name) {
  BinaryWriter body;
  body.PutString(name);
  return AppendChecked(WalRecordType::kLogin, body.data());
}

Status StorageManager::LogInitCvd(const std::string& name,
                                  const core::CvdOptions& options,
                                  const std::string& message,
                                  const rel::Chunk& rows) {
  BinaryWriter body;
  body.PutString(name);
  body.PutU8(static_cast<uint8_t>(options.model));
  EncodeStringVec(options.primary_key, &body);
  body.PutString(message);
  EncodeChunk(rows, &body);
  return AppendChecked(WalRecordType::kInitCvd, body.data());
}

Status StorageManager::LogCheckout(const std::string& cvd_name,
                                   const std::vector<VersionId>& vids,
                                   const std::string& table_name) {
  BinaryWriter body;
  body.PutString(cvd_name);
  EncodeI64Vec(vids, &body);
  body.PutString(table_name);
  return AppendChecked(WalRecordType::kCheckout, body.data());
}

std::string StorageManager::EncodeCommitBody(const std::string& cvd_name,
                                             const std::string& table_name,
                                             const std::string& message,
                                             const rel::Chunk& staged_rows) {
  BinaryWriter body;
  body.PutString(cvd_name);
  body.PutString(table_name);
  body.PutString(message);
  EncodeChunk(staged_rows, &body);
  return body.Release();
}

Status StorageManager::AppendCommitBody(const std::string& body) {
  return AppendChecked(WalRecordType::kCommit, body);
}

Status StorageManager::LogDiscardStaged(const std::string& cvd_name,
                                        const std::string& table_name) {
  BinaryWriter body;
  body.PutString(cvd_name);
  body.PutString(table_name);
  return AppendChecked(WalRecordType::kDiscardStaged, body.data());
}

Status StorageManager::LogDropCvd(const std::string& cvd_name) {
  BinaryWriter body;
  body.PutString(cvd_name);
  return AppendChecked(WalRecordType::kDropCvd, body.data());
}

Status StorageManager::LogRepartition(
    const std::string& cvd_name,
    const std::vector<std::vector<VersionId>>& groups) {
  BinaryWriter body;
  body.PutString(cvd_name);
  body.PutU32(static_cast<uint32_t>(groups.size()));
  for (const std::vector<VersionId>& group : groups) EncodeI64Vec(group, &body);
  return AppendChecked(WalRecordType::kRepartition, body.data());
}

// --- Replay -------------------------------------------------------------

Status StorageManager::ApplyRecord(const WalRecord& record) {
  BinaryReader r(record.payload);
  switch (record.type) {
    case WalRecordType::kCreateUser: {
      std::string name = r.GetString();
      ORPHEUS_RETURN_NOT_OK(r.status());
      return db_->CreateUser(name);
    }
    case WalRecordType::kLogin: {
      std::string name = r.GetString();
      ORPHEUS_RETURN_NOT_OK(r.status());
      return db_->Login(name);
    }
    case WalRecordType::kInitCvd: {
      std::string name = r.GetString();
      core::CvdOptions options;
      uint8_t kind_raw = r.GetU8();
      if (kind_raw > static_cast<uint8_t>(core::DataModelKind::kDeltaBased)) {
        return Status::Internal("unknown data model tag in init record");
      }
      options.model = static_cast<core::DataModelKind>(kind_raw);
      ORPHEUS_ASSIGN_OR_RETURN(options.primary_key, DecodeStringVec(&r));
      std::string message = r.GetString();
      ORPHEUS_ASSIGN_OR_RETURN(rel::Chunk rows, DecodeChunk(&r));
      ORPHEUS_RETURN_NOT_OK(r.status());
      ORPHEUS_ASSIGN_OR_RETURN(
          core::Cvd * cvd,
          db_->InitCvd(name, rows, std::move(options), message));
      (void)cvd;
      return Status::OK();
    }
    case WalRecordType::kCheckout: {
      std::string cvd_name = r.GetString();
      ORPHEUS_ASSIGN_OR_RETURN(std::vector<int64_t> vids, DecodeI64Vec(&r));
      std::string table = r.GetString();
      ORPHEUS_RETURN_NOT_OK(r.status());
      return db_->Checkout(cvd_name, vids, table);
    }
    case WalRecordType::kCommit: {
      std::string cvd_name = r.GetString();
      std::string table = r.GetString();
      std::string message = r.GetString();
      ORPHEUS_ASSIGN_OR_RETURN(rel::Chunk staged_rows, DecodeChunk(&r));
      ORPHEUS_RETURN_NOT_OK(r.status());
      // The log carries the staged content as of commit time (the user
      // may have edited the checkout); overwrite before committing.
      ORPHEUS_ASSIGN_OR_RETURN(rel::Table * staged,
                               db_->db()->GetTable(table));
      staged->mutable_chunk() = std::move(staged_rows);
      ORPHEUS_ASSIGN_OR_RETURN(VersionId vid,
                               db_->Commit(cvd_name, table, message));
      (void)vid;
      return Status::OK();
    }
    case WalRecordType::kDiscardStaged: {
      std::string cvd_name = r.GetString();
      std::string table = r.GetString();
      ORPHEUS_RETURN_NOT_OK(r.status());
      return db_->DiscardStaged(cvd_name, table);
    }
    case WalRecordType::kDropCvd: {
      std::string cvd_name = r.GetString();
      ORPHEUS_RETURN_NOT_OK(r.status());
      return db_->DropCvd(cvd_name);
    }
    case WalRecordType::kRepartition: {
      std::string cvd_name = r.GetString();
      uint32_t num_groups = r.GetU32();
      part::Partitioning partitioning;
      for (uint32_t i = 0; i < num_groups && r.ok(); ++i) {
        ORPHEUS_ASSIGN_OR_RETURN(std::vector<int64_t> group, DecodeI64Vec(&r));
        partitioning.groups.push_back(std::move(group));
      }
      ORPHEUS_RETURN_NOT_OK(r.status());
      ORPHEUS_ASSIGN_OR_RETURN(core::Cvd * cvd, db_->GetCvd(cvd_name));
      auto* model = dynamic_cast<core::SplitByRlistModel*>(cvd->model());
      if (model == nullptr) {
        return Status::Internal("repartition record for non-rlist CVD " +
                                cvd_name);
      }
      std::map<VersionId, std::vector<core::RecordId>> version_rids;
      for (const std::vector<VersionId>& group : partitioning.groups) {
        for (VersionId vid : group) {
          ORPHEUS_ASSIGN_OR_RETURN(version_rids[vid],
                                   model->VersionRecords(vid));
        }
      }
      // Mirror the live `optimize` sequence exactly: detach (dropping
      // any previous partition tables) so the rebuilt store reuses the
      // same physical table names.
      db_->DetachPartitionStore(cvd_name);
      auto store = std::make_unique<part::PartitionStore>(
          db_->db(), cvd_name, model->DataTable());
      ORPHEUS_RETURN_NOT_OK(
          store->Build(partitioning, std::move(version_rids)));
      return db_->AttachPartitionStore(cvd_name, std::move(store));
    }
  }
  return Status::Internal("unknown WAL record type " +
                          std::to_string(static_cast<int>(record.type)));
}

}  // namespace orpheus::storage
