// Commit WAL: an append-only log of the version-control verbs that
// changed engine state since the last snapshot, in the style of the
// RocksDB write-ahead log.
//
// Frame format (all little-endian):
//
//   [u32 length][u32 crc32][payload]
//   payload = [u64 lsn][u8 record type][type-specific body]
//
// `length` counts the payload bytes; `crc32` covers the payload. LSNs
// increase monotonically across the lifetime of a directory and never
// reset — the snapshot stores the LSN it covers, so a crash between
// "snapshot renamed" and "WAL truncated" is harmless: replay skips
// records at or below the watermark.
//
// Recovery tolerates a torn tail (the reader stops at the first frame
// that is short or fails its checksum, and the opener truncates the
// file there). Corruption before the tail also stops replay — records
// past a corrupt frame cannot be trusted to apply in order.

#ifndef ORPHEUS_STORAGE_WAL_H_
#define ORPHEUS_STORAGE_WAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace orpheus::storage {

enum class WalRecordType : uint8_t {
  kCreateUser = 1,
  kLogin = 2,
  kInitCvd = 3,
  kCheckout = 4,      // checkout / merging checkout (stages a table)
  kCommit = 5,        // carries the full staged chunk: self-contained
  kDiscardStaged = 6,
  kDropCvd = 7,
  kRepartition = 8,   // partition-store (re)build from `optimize`
};

struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kCreateUser;
  std::string payload;  // type-specific body (lsn/type already parsed)
};

// Parses a WAL byte buffer. Returns every well-formed record with
// lsn > `after_lsn`, in file order. `*valid_bytes` receives the length
// of the well-formed prefix — anything past it is a torn or corrupt
// tail that the caller should truncate away.
std::vector<WalRecord> ParseWal(std::string_view data, uint64_t after_lsn,
                                size_t* valid_bytes);

// One entry of a commit-group batch (see AppendBatch).
struct WalAppendEntry {
  WalRecordType type;
  std::string_view body;
};

// Appender. One writer per directory; the StorageManager serializes
// access (either under the engine's exclusive lock, or through the
// single group-commit leader at a time).
class WalWriter {
 public:
  // Opens `path` for appending (creating it if needed). `next_lsn` is
  // the LSN the next record gets (replayers pass last-seen + 1);
  // `initial_records` seeds the record counter with the live records
  // already in the file (replayers pass how many they applied).
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 uint64_t next_lsn,
                                                 uint64_t initial_records = 0);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Appends one record and (by default) fdatasyncs — the returned OK
  // is the durability point of the logged operation.
  Status Append(WalRecordType type, std::string_view body);

  // Group-commit append: all `n` records become consecutive frames
  // with consecutive LSNs (first one reported via `*first_lsn`),
  // written with ONE write() and made durable with ONE fdatasync —
  // this is what lets N concurrent commits cost ~1 sync. On failure
  // every record in the batch shares the error and the writer is
  // poisoned: the file tail past the last synced frame is untrusted,
  // so later appends refuse until the directory is recovered afresh
  // (recovery truncates the torn tail).
  Status AppendBatch(const WalAppendEntry* entries, size_t n,
                     uint64_t* first_lsn = nullptr);

  // Empties the log after a checkpoint. The LSN counter keeps running.
  Status Reset();

  // OK while the writer is usable; the first failed append/sync
  // latches its error here (checked by Append/AppendBatch/Reset).
  Status health() const;

  uint64_t next_lsn() const { return next_lsn_.load(); }

  // Log growth since the last Reset — the auto-checkpoint policy's
  // inputs (storage_manager.h). Atomic: the policy check (under the
  // engine lock) races with a group leader's append (outside it).
  uint64_t file_bytes() const { return file_bytes_.load(); }
  uint64_t records() const { return records_.load(); }

  // fdatasyncs this writer issued — the group-commit tests' oracle
  // that N concurrent commits incurred < N syncs.
  uint64_t syncs() const { return syncs_.load(); }

  // Benches may trade durability for throughput; records still reach
  // the OS page cache on every append.
  void set_fsync(bool on) { fsync_ = on; }

 private:
  WalWriter(std::string path, int fd, uint64_t next_lsn, uint64_t file_bytes,
            uint64_t records)
      : path_(std::move(path)),
        fd_(fd),
        next_lsn_(next_lsn),
        file_bytes_(file_bytes),
        records_(records) {}

  std::string path_;
  int fd_;
  std::atomic<uint64_t> next_lsn_;
  std::atomic<uint64_t> file_bytes_;
  std::atomic<uint64_t> records_;
  std::atomic<uint64_t> syncs_{0};
  bool fsync_ = true;
  Status broken_ = Status::OK();  // latched first append failure
};

}  // namespace orpheus::storage

#endif  // ORPHEUS_STORAGE_WAL_H_
