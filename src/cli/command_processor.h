// Command processor for the `orpheus` client: parses git-style
// version-control commands (§2.2 of the paper) and dispatches them to
// the OrpheusDB middleware. Shared between the interactive shell,
// script mode, and the CLI tests.

#ifndef ORPHEUS_CLI_COMMAND_PROCESSOR_H_
#define ORPHEUS_CLI_COMMAND_PROCESSOR_H_

#include <string>

#include "common/status.h"
#include "core/orpheus.h"
#include "partition/online.h"
#include "partition/partition_store.h"

namespace orpheus::cli {

class CommandProcessor {
 public:
  CommandProcessor();

  // Executes one command line; returns the text to display.
  //
  // Commands:
  //   init <cvd> -f <file.csv> [-pk a,b]  [-model rlist|vlist|...]
  //   checkout <cvd> -v <vid>[,<vid>...] (-t <table> | -f <file.csv>)
  //   commit (-t <table> | -f <file.csv> -c <cvd>) -m <message>
  //   diff <cvd> <v1> <v2>
  //   run <sql>            (versioned SQL; VERSION n OF CVD c)
  //   ls | drop <cvd> | graph <cvd>
  //   optimize <cvd> [-gamma <factor>]
  //   open <dir> | checkpoint | save <dir>   (durable storage)
  //   threads [<n>]        (scan parallelism; 0 = hardware default)
  //   create_user <name> | config <name> | whoami
  //   help | exit
  Result<std::string> Execute(const std::string& line);

  core::OrpheusDB* orpheus() { return &orpheus_; }
  bool exited() const { return exited_; }

 private:
  Result<std::string> Init(const std::vector<std::string>& args);
  Result<std::string> Checkout(const std::vector<std::string>& args);
  Result<std::string> Commit(const std::vector<std::string>& args);
  Result<std::string> DiffCmd(const std::vector<std::string>& args);
  Result<std::string> Optimize(const std::vector<std::string>& args);

  core::OrpheusDB orpheus_;
  // csv file name -> staged table behind it (for -f flows).
  std::map<std::string, std::pair<std::string, std::string>> csv_staging_;
  bool exited_ = false;
  int staging_counter_ = 0;
};

}  // namespace orpheus::cli

#endif  // ORPHEUS_CLI_COMMAND_PROCESSOR_H_
