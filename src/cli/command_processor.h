// Command processor for the in-process `orpheus` client: one
// EngineApi plus one implicit session. Since the server refactor the
// command parsing and all engine access live in core::EngineApi
// (transport-free, shared with the socket server); this class is the
// thin single-session convenience wrapper the interactive shell,
// script mode, examples, and the CLI tests use.

#ifndef ORPHEUS_CLI_COMMAND_PROCESSOR_H_
#define ORPHEUS_CLI_COMMAND_PROCESSOR_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "core/engine_api.h"

namespace orpheus::cli {

class CommandProcessor {
 public:
  CommandProcessor();

  // Executes one command line; returns the text to display. See
  // core/engine_api.h for the command list (`help` prints it too).
  Result<std::string> Execute(const std::string& line);

  core::OrpheusDB* orpheus() { return api_.orpheus(); }
  core::EngineApi* api() { return &api_; }
  core::SessionContext* session() { return session_.get(); }
  bool exited() const { return session_->exited(); }

 private:
  core::EngineApi api_;
  std::shared_ptr<core::SessionContext> session_;
};

}  // namespace orpheus::cli

#endif  // ORPHEUS_CLI_COMMAND_PROCESSOR_H_
