// The `orpheus` command client (§2.2): an interactive shell / script
// runner over the OrpheusDB middleware — and, with --serve, the
// versioning server that shares one engine across many sessions.
//
// Usage:
//   orpheus [--threads=<n>] [--db=<dir>]                 interactive shell
//   orpheus [--threads=<n>] [--db=<dir>] script <file>   commands from a file
//   orpheus [--threads=<n>] [--db=<dir>] -c "<command>"  one command
//   orpheus --serve=<port> [--db=<dir>] [--workers=<n>]
//           [--idle-timeout-sec=<s>]                     versioning server
//   orpheus --connect=<host:port> [script <file> | -c "<command>"]
//                                                        remote client
//
// --threads sets the relstore scan parallelism (default: hardware
// concurrency; 1 forces the serial execution path). It can also be
// changed at runtime with the `threads` shell command.
//
// --db opens (creating if needed) a durable database directory:
// version-control commands are logged to its commit WAL, and a later
// invocation with the same --db recovers the full state (snapshot +
// WAL replay — see docs/PERSISTENCE.md). Without --db the backing
// database is in-memory and dies with the process; the `open` shell
// command is the runtime equivalent. --wal-checkpoint-bytes=<n> (and
// --wal-checkpoint-records=<n>) arm the automatic checkpoint policy:
// once the WAL grows past either bound, the next logged verb folds it
// into a fresh snapshot.
//
// --group-commit={on,off} (default on) controls WAL group commit:
// concurrent mutating statements batch their log records into one
// write + one fdatasync, led by the first waiter (docs/PERSISTENCE.md
// §Group commit). "off" restores a private fdatasync per statement.
//
// --serve=<port> (0 = ephemeral; the bound port is printed) turns the
// process into a loopback TCP server speaking the framed protocol of
// docs/SERVER.md. --connect runs the same shell/script/-c front-ends
// against such a server instead of an in-process engine.
//
// --slow-op-ms=<n> (default 100) sets the slow-op log threshold: any
// statement slower than this lands in the slow-op ring shown by the
// `stats` verb (docs/OBSERVABILITY.md); the `slowlog <ms>` verb is the
// runtime equivalent. --metrics-dump=<file> writes the Prometheus text
// exposition of every metric to <file> on exit — the scripted/bench
// equivalent of the `metrics` verb. --procstats-interval-ms=<n>
// (default 1000, 0 disables) sets the cadence of the process-stats
// sampler, which publishes RSS / fd count / CPU gauges into the same
// registry (engine-hosting modes only).

#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "cli/command_processor.h"
#include "common/flags.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/procstats.h"
#include "obs/trace.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "storage/storage_manager.h"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

// Parses --group-commit={on,off,true,false,1,0}; anything else is a
// usage error reported by the caller via the false return.
bool ParseGroupCommit(const orpheus::Flags& flags, bool* on) {
  std::string text = flags.GetString("group-commit", "on");
  if (text == "on" || text == "true" || text == "1" || text.empty()) {
    *on = true;
    return true;
  }
  if (text == "off" || text == "false" || text == "0") {
    *on = false;
    return true;
  }
  std::cerr << "error: --group-commit expects on or off, got '" << text
            << "'\n";
  return false;
}

// Applies the observability flags (engine-hosting modes only; a
// --connect client's metrics live in the server process). Returns the
// --metrics-dump path, empty when no dump was requested.
std::string ApplyObsFlags(const orpheus::Flags& flags) {
  double slow_ms = flags.GetDouble("slow-op-ms", 100.0);
  orpheus::obs::GlobalTraceLog().SetSlowOpThresholdMs(slow_ms < 0 ? 0
                                                                  : slow_ms);
  int64_t procstats_ms = flags.GetInt("procstats-interval-ms", 1000);
  orpheus::obs::ProcStatsSampler::Instance().Start(static_cast<int>(
      std::min<int64_t>(std::max<int64_t>(procstats_ms, 0), 1 << 30)));
  return flags.GetString("metrics-dump", "");
}

void MaybeDumpMetrics(const std::string& path) {
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot write --metrics-dump=" << path << "\n";
    return;
  }
  out << orpheus::obs::GlobalMetrics().RenderPrometheus();
}

// Runs one line against either a local processor or a remote client;
// prints output / error like the shell always has.
template <typename Target>
int RunLine(Target* target, const std::string& line) {
  auto result = target->Execute(line);
  if (!result.ok()) {
    std::cerr << "error: " << result.status().ToString() << "\n";
    return 1;
  }
  if (!result.value().empty()) std::cout << result.value() << "\n";
  return 0;
}

// The shared shell/script/-c front-end. `exited` reports whether the
// backing session has ended (local `exit`, or server-side close).
template <typename Target, typename ExitedFn>
int RunFrontEnd(Target* target, const std::vector<std::string>& args,
                ExitedFn exited) {
  if (args.size() >= 2 && args[0] == "-c") {
    return RunLine(target, args[1]);
  }
  if (args.size() >= 2 && args[0] == "script") {
    std::ifstream in(args[1]);
    if (!in) {
      std::cerr << "error: cannot open script " << args[1] << "\n";
      return 1;
    }
    std::string line;
    int failures = 0;
    while (std::getline(in, line) && !exited()) {
      failures += RunLine(target, line);
    }
    return failures > 0 ? 1 : 0;
  }

  std::cout << "OrpheusDB shell — type 'help' for commands, 'exit' to quit\n";
  std::string line;
  while (!exited()) {
    std::cout << "orpheus> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    RunLine(target, line);
  }
  return 0;
}

int ServeMain(const orpheus::Flags& flags) {
  orpheus::core::EngineApi api;
  const std::string metrics_dump = ApplyObsFlags(flags);
  bool group_commit = true;
  if (!ParseGroupCommit(flags, &group_commit)) return 1;
  api.set_group_commit(group_commit);
  std::string db_dir = flags.GetString("db", "");
  if (!db_dir.empty()) {
    orpheus::Status st = api.orpheus()->Open(db_dir);
    if (!st.ok()) {
      std::cerr << "error: cannot open --db=" << db_dir << ": "
                << st.ToString() << "\n";
      return 1;
    }
    if (flags.Has("wal-checkpoint-bytes") || flags.Has("wal-checkpoint-records")) {
      api.orpheus()->storage()->SetAutoCheckpointPolicy(
          static_cast<uint64_t>(flags.GetInt("wal-checkpoint-bytes", 0)),
          static_cast<uint64_t>(flags.GetInt("wal-checkpoint-records", 0)));
    }
  }

  orpheus::server::ServerOptions options;
  int64_t port = flags.GetInt("serve", 0);
  if (port < 0 || port > 65535) {
    std::cerr << "error: --serve port out of range\n";
    return 1;
  }
  options.port = static_cast<uint16_t>(port);
  options.workers = static_cast<int>(
      std::min<int64_t>(std::max<int64_t>(flags.GetInt("workers", 8), 1), 256));
  options.idle_timeout_sec = flags.GetDouble("idle-timeout-sec", 300.0);

  orpheus::server::Server server(&api, options);
  orpheus::Status st = server.Start();
  if (!st.ok()) {
    std::cerr << "error: cannot start server: " << st.ToString() << "\n";
    return 1;
  }
  std::cout << "orpheus server listening on 127.0.0.1:" << server.port()
            << std::endl;

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_shutdown) {
    ::usleep(50 * 1000);
  }
  std::cout << "orpheus server shutting down" << std::endl;
  server.Stop();
  orpheus::obs::ProcStatsSampler::Instance().Stop();
  MaybeDumpMetrics(metrics_dump);
  return 0;
}

int ConnectMain(const orpheus::Flags& flags) {
  auto spec = orpheus::server::ParseHostPort(flags.GetString("connect", ""));
  if (!spec.ok()) {
    std::cerr << "error: bad --connect: " << spec.status().ToString() << "\n";
    return 1;
  }
  orpheus::server::Client client;
  orpheus::Status st = client.Connect(spec.value().first, spec.value().second);
  if (!st.ok()) {
    std::cerr << "error: cannot connect: " << st.ToString() << "\n";
    return 1;
  }
  return RunFrontEnd(&client, flags.positional(),
                     [&client] { return client.closed(); });
}

}  // namespace

int main(int argc, char** argv) {
  orpheus::Flags flags(argc, argv);
  if (flags.Has("connect")) return ConnectMain(flags);

  // 0 = hardware concurrency (the default); 1 = serial. Clamp before
  // narrowing so huge flag values can't wrap through int.
  int64_t threads = flags.GetInt("threads", 0);
  orpheus::SetExecThreads(static_cast<int>(
      std::min<int64_t>(std::max<int64_t>(threads, 0), orpheus::kMaxExecThreads)));

  if (flags.Has("serve")) return ServeMain(flags);

  orpheus::cli::CommandProcessor processor;
  const std::string metrics_dump = ApplyObsFlags(flags);
  bool group_commit = true;
  if (!ParseGroupCommit(flags, &group_commit)) return 1;
  processor.api()->set_group_commit(group_commit);
  std::string db_dir = flags.GetString("db", "");
  if (!db_dir.empty()) {
    orpheus::Status st = processor.orpheus()->Open(db_dir);
    if (!st.ok()) {
      std::cerr << "error: cannot open --db=" << db_dir << ": "
                << st.ToString() << "\n";
      return 1;
    }
    if (flags.Has("wal-checkpoint-bytes") || flags.Has("wal-checkpoint-records")) {
      processor.orpheus()->storage()->SetAutoCheckpointPolicy(
          static_cast<uint64_t>(flags.GetInt("wal-checkpoint-bytes", 0)),
          static_cast<uint64_t>(flags.GetInt("wal-checkpoint-records", 0)));
    }
  }
  int rc = RunFrontEnd(&processor, flags.positional(),
                       [&processor] { return processor.exited(); });
  orpheus::obs::ProcStatsSampler::Instance().Stop();
  MaybeDumpMetrics(metrics_dump);
  return rc;
}
