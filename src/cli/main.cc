// The `orpheus` command client (§2.2): an interactive shell / script
// runner over the OrpheusDB middleware.
//
// Usage:
//   orpheus                 interactive shell
//   orpheus script <file>   execute commands from a file
//   orpheus -c "<command>"  execute one command
//
// The backing database is in-memory and lives for the duration of the
// process; `script` mode is the way to run multi-command workflows.

#include <fstream>
#include <iostream>
#include <string>

#include "cli/command_processor.h"

namespace {

int RunLine(orpheus::cli::CommandProcessor* processor, const std::string& line) {
  auto result = processor->Execute(line);
  if (!result.ok()) {
    std::cerr << "error: " << result.status().ToString() << "\n";
    return 1;
  }
  if (!result.value().empty()) std::cout << result.value() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  orpheus::cli::CommandProcessor processor;

  if (argc >= 3 && std::string(argv[1]) == "-c") {
    return RunLine(&processor, argv[2]);
  }
  if (argc >= 3 && std::string(argv[1]) == "script") {
    std::ifstream in(argv[2]);
    if (!in) {
      std::cerr << "error: cannot open script " << argv[2] << "\n";
      return 1;
    }
    std::string line;
    int failures = 0;
    while (std::getline(in, line) && !processor.exited()) {
      failures += RunLine(&processor, line);
    }
    return failures > 0 ? 1 : 0;
  }

  std::cout << "OrpheusDB shell — type 'help' for commands, 'exit' to quit\n";
  std::string line;
  while (!processor.exited()) {
    std::cout << "orpheus> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    RunLine(&processor, line);
  }
  return 0;
}
