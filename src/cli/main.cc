// The `orpheus` command client (§2.2): an interactive shell / script
// runner over the OrpheusDB middleware.
//
// Usage:
//   orpheus [--threads=<n>] [--db=<dir>]                 interactive shell
//   orpheus [--threads=<n>] [--db=<dir>] script <file>   commands from a file
//   orpheus [--threads=<n>] [--db=<dir>] -c "<command>"  one command
//
// --threads sets the relstore scan parallelism (default: hardware
// concurrency; 1 forces the serial execution path). It can also be
// changed at runtime with the `threads` shell command.
//
// --db opens (creating if needed) a durable database directory:
// version-control commands are logged to its commit WAL, and a later
// invocation with the same --db recovers the full state (snapshot +
// WAL replay — see docs/PERSISTENCE.md). Without --db the backing
// database is in-memory and dies with the process; the `open` shell
// command is the runtime equivalent.

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "cli/command_processor.h"
#include "common/flags.h"
#include "common/thread_pool.h"

namespace {

int RunLine(orpheus::cli::CommandProcessor* processor, const std::string& line) {
  auto result = processor->Execute(line);
  if (!result.ok()) {
    std::cerr << "error: " << result.status().ToString() << "\n";
    return 1;
  }
  if (!result.value().empty()) std::cout << result.value() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  orpheus::Flags flags(argc, argv);
  // 0 = hardware concurrency (the default); 1 = serial. Clamp before
  // narrowing so huge flag values can't wrap through int.
  int64_t threads = flags.GetInt("threads", 0);
  orpheus::SetExecThreads(static_cast<int>(
      std::min<int64_t>(std::max<int64_t>(threads, 0), orpheus::kMaxExecThreads)));

  orpheus::cli::CommandProcessor processor;
  std::string db_dir = flags.GetString("db", "");
  if (!db_dir.empty()) {
    orpheus::Status st = processor.orpheus()->Open(db_dir);
    if (!st.ok()) {
      std::cerr << "error: cannot open --db=" << db_dir << ": "
                << st.ToString() << "\n";
      return 1;
    }
  }
  const std::vector<std::string>& args = flags.positional();

  if (args.size() >= 2 && args[0] == "-c") {
    return RunLine(&processor, args[1]);
  }
  if (args.size() >= 2 && args[0] == "script") {
    std::ifstream in(args[1]);
    if (!in) {
      std::cerr << "error: cannot open script " << args[1] << "\n";
      return 1;
    }
    std::string line;
    int failures = 0;
    while (std::getline(in, line) && !processor.exited()) {
      failures += RunLine(&processor, line);
    }
    return failures > 0 ? 1 : 0;
  }

  std::cout << "OrpheusDB shell — type 'help' for commands, 'exit' to quit\n";
  std::string line;
  while (!processor.exited()) {
    std::cout << "orpheus> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    RunLine(&processor, line);
  }
  return 0;
}
