#include "cli/command_processor.h"

namespace orpheus::cli {

CommandProcessor::CommandProcessor() : session_(api_.NewSession()) {}

Result<std::string> CommandProcessor::Execute(const std::string& line) {
  return api_.Execute(session_.get(), line);
}

}  // namespace orpheus::cli
