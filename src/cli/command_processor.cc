#include "cli/command_processor.h"

#include <algorithm>
#include <cstdlib>

#include "cli/csv.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "core/data_model.h"
#include "partition/lyresplit.h"

namespace orpheus::cli {

namespace {

constexpr char kHelp[] =
    "OrpheusDB commands:\n"
    "  init <cvd> -f <file.csv> [-pk a,b] [-model rlist|vlist|combined|delta|tpv]\n"
    "  checkout <cvd> -v <vid>[,<vid>...] (-t <table> | -f <file.csv>)\n"
    "  commit (-t <table> | -f <file.csv>) -m <message>\n"
    "  diff <cvd> <v1> <v2>\n"
    "  run <sql>                 versioned SQL (VERSION n OF CVD c)\n"
    "  sql <sql>                 raw SQL against the backing database\n"
    "  ls                        list CVDs\n"
    "  graph <cvd>               version graph as Graphviz dot\n"
    "  drop <cvd>\n"
    "  optimize <cvd> [-gamma <factor>]   partition with LYRESPLIT\n"
    "  open <dir>                open/create a durable database directory\n"
    "  checkpoint                write a fresh snapshot, truncate the WAL\n"
    "  save <dir>                one-shot snapshot export (no WAL)\n"
    "  threads [<n>]             show or set scan parallelism (0 = hardware)\n"
    "  create_user <name> | config <name> | whoami\n"
    "  help | exit\n";

// Extracts "-flag value" from an argument vector; empty if absent.
std::string FlagValue(const std::vector<std::string>& args,
                      const std::string& flag) {
  for (size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == flag) return args[i + 1];
  }
  return "";
}

Result<std::vector<core::VersionId>> ParseVidList(const std::string& text) {
  std::vector<core::VersionId> vids;
  for (const std::string& piece : Split(text, ',')) {
    if (Trim(piece).empty()) continue;
    vids.push_back(std::strtoll(std::string(Trim(piece)).c_str(), nullptr, 10));
  }
  if (vids.empty()) return Status::InvalidArgument("no version ids given");
  return vids;
}

}  // namespace

CommandProcessor::CommandProcessor() = default;

Result<std::string> CommandProcessor::Execute(const std::string& line) {
  std::string trimmed(Trim(line));
  if (trimmed.empty() || trimmed[0] == '#') return std::string();
  std::vector<std::string> args = SplitWhitespace(trimmed);
  const std::string& cmd = args[0];

  if (cmd == "help") return std::string(kHelp);
  if (cmd == "exit" || cmd == "quit") {
    exited_ = true;
    return std::string("bye");
  }
  if (cmd == "whoami") return orpheus_.WhoAmI();
  if (cmd == "create_user") {
    if (args.size() < 2) return Status::InvalidArgument("create_user <name>");
    ORPHEUS_RETURN_NOT_OK(orpheus_.CreateUser(args[1]));
    return "created user " + args[1];
  }
  if (cmd == "config") {
    if (args.size() < 2) return Status::InvalidArgument("config <name>");
    ORPHEUS_RETURN_NOT_OK(orpheus_.Login(args[1]));
    return "logged in as " + args[1];
  }
  if (cmd == "ls") {
    std::vector<std::string> names = orpheus_.ListCvds();
    return names.empty() ? "(no CVDs)" : Join(names, "\n");
  }
  if (cmd == "drop") {
    if (args.size() < 2) return Status::InvalidArgument("drop <cvd>");
    ORPHEUS_RETURN_NOT_OK(orpheus_.DropCvd(args[1]));
    return "dropped " + args[1];
  }
  if (cmd == "open") {
    if (args.size() < 2) return Status::InvalidArgument("open <dir>");
    ORPHEUS_RETURN_NOT_OK(orpheus_.Open(args[1]));
    return "opened durable database at " + args[1] + " (" +
           std::to_string(orpheus_.ListCvds().size()) + " CVDs)";
  }
  if (cmd == "checkpoint") {
    ORPHEUS_RETURN_NOT_OK(orpheus_.Checkpoint());
    return "checkpointed " + orpheus_.storage_dir();
  }
  if (cmd == "save") {
    if (args.size() < 2) return Status::InvalidArgument("save <dir>");
    ORPHEUS_RETURN_NOT_OK(orpheus_.SaveSnapshot(args[1]));
    return "saved snapshot to " + args[1];
  }
  if (cmd == "graph") {
    if (args.size() < 2) return Status::InvalidArgument("graph <cvd>");
    ORPHEUS_ASSIGN_OR_RETURN(core::Cvd * cvd, orpheus_.GetCvd(args[1]));
    return cvd->graph().ToDot();
  }
  if (cmd == "run" || cmd == "sql") {
    size_t pos = trimmed.find(cmd) + cmd.size();
    std::string sql(Trim(trimmed.substr(pos)));
    if (sql.empty()) return Status::InvalidArgument(cmd + " <sql>");
    if (cmd == "run") {
      ORPHEUS_ASSIGN_OR_RETURN(rel::Chunk out, orpheus_.Run(sql));
      return out.ToString(50);
    }
    ORPHEUS_ASSIGN_OR_RETURN(rel::Chunk out, orpheus_.db()->Execute(sql));
    return out.ToString(50);
  }
  if (cmd == "threads") {
    // Scan parallelism for the relstore executor (the --threads flag's
    // runtime equivalent). Takes effect for subsequent statements.
    if (args.size() >= 2) {
      char* end = nullptr;
      long n = std::strtol(args[1].c_str(), &end, 10);
      if (end == args[1].c_str() || *end != '\0' || n < 0) {
        return Status::InvalidArgument("threads [<n>] with n >= 0");
      }
      // Clamp before narrowing so huge values can't wrap through int.
      SetExecThreads(static_cast<int>(std::min<long>(n, kMaxExecThreads)));
    }
    return "exec threads: " + std::to_string(ExecThreads());
  }
  if (cmd == "init") return Init(args);
  if (cmd == "checkout") return Checkout(args);
  if (cmd == "commit") return Commit(args);
  if (cmd == "diff") return DiffCmd(args);
  if (cmd == "optimize") return Optimize(args);
  return Status::InvalidArgument("unknown command: " + cmd + " (try 'help')");
}

Result<std::string> CommandProcessor::Init(const std::vector<std::string>& args) {
  if (args.size() < 2) return Status::InvalidArgument("init <cvd> -f <file>");
  const std::string& name = args[1];
  std::string file = FlagValue(args, "-f");
  if (file.empty()) return Status::InvalidArgument("init requires -f <file.csv>");
  ORPHEUS_ASSIGN_OR_RETURN(rel::Chunk rows, ReadCsvFile(file));

  core::CvdOptions options;
  std::string pk = FlagValue(args, "-pk");
  if (!pk.empty()) {
    for (const std::string& col : Split(pk, ',')) {
      options.primary_key.emplace_back(Trim(col));
    }
  }
  std::string model = FlagValue(args, "-model");
  if (!model.empty()) {
    ORPHEUS_ASSIGN_OR_RETURN(options.model, core::DataModelKindFromName(model));
  }
  ORPHEUS_ASSIGN_OR_RETURN(core::Cvd * cvd,
                           orpheus_.InitCvd(name, rows, options,
                                            "init from " + file));
  return "initialized CVD " + name + " with version 1 (" +
         std::to_string(cvd->graph().GetNode(1).value()->num_records) +
         " records)";
}

Result<std::string> CommandProcessor::Checkout(
    const std::vector<std::string>& args) {
  if (args.size() < 2) return Status::InvalidArgument("checkout <cvd> -v ... -t ...");
  const std::string& name = args[1];
  std::string vid_text = FlagValue(args, "-v");
  if (vid_text.empty()) return Status::InvalidArgument("checkout requires -v");
  ORPHEUS_ASSIGN_OR_RETURN(std::vector<core::VersionId> vids,
                           ParseVidList(vid_text));

  std::string table = FlagValue(args, "-t");
  std::string file = FlagValue(args, "-f");
  if (table.empty() && file.empty()) {
    return Status::InvalidArgument("checkout requires -t <table> or -f <file>");
  }
  if (table.empty()) {
    // The counter restarts with each process, but a reopened durable
    // session may have replayed csvstage checkouts from an earlier
    // one — skip names that are already taken.
    do {
      table = name + "_csvstage_" + std::to_string(staging_counter_++);
    } while (orpheus_.db()->HasTable(table));
  }
  ORPHEUS_RETURN_NOT_OK(orpheus_.Checkout(name, vids, table));
  if (!file.empty()) {
    ORPHEUS_ASSIGN_OR_RETURN(rel::Table * staged, orpheus_.db()->GetTable(table));
    ORPHEUS_RETURN_NOT_OK(WriteCsvFile(file, staged->data()));
    csv_staging_[file] = {name, table};
    return "checked out version(s) " + vid_text + " of " + name + " into " + file;
  }
  return "checked out version(s) " + vid_text + " of " + name + " into table " +
         table;
}

Result<std::string> CommandProcessor::Commit(const std::vector<std::string>& args) {
  std::string table = FlagValue(args, "-t");
  std::string file = FlagValue(args, "-f");
  std::string message = FlagValue(args, "-m");
  if (message.empty()) message = "(no message)";

  std::string cvd_name;
  if (!file.empty()) {
    auto it = csv_staging_.find(file);
    if (it == csv_staging_.end()) {
      return Status::NotFound("file was not checked out from a CVD: " + file);
    }
    cvd_name = it->second.first;
    table = it->second.second;
    // Reload the (possibly externally edited) csv into the staged
    // table, keeping the rid column where rows still carry one.
    ORPHEUS_ASSIGN_OR_RETURN(rel::Chunk rows, ReadCsvFile(file));
    ORPHEUS_ASSIGN_OR_RETURN(rel::Table * staged, orpheus_.db()->GetTable(table));
    if (!rows.schema().Equals(staged->schema())) {
      return Status::InvalidArgument(
          "csv schema does not match the checked-out schema (did the header "
          "change?)");
    }
    staged->mutable_chunk() = std::move(rows);
    csv_staging_.erase(it);
  } else if (!table.empty()) {
    // Find the CVD owning this staged table.
    for (const std::string& name : orpheus_.ListCvds()) {
      ORPHEUS_ASSIGN_OR_RETURN(core::Cvd * cvd, orpheus_.GetCvd(name));
      if (cvd->staged_tables().count(table) > 0) {
        cvd_name = name;
        break;
      }
    }
    if (cvd_name.empty()) {
      return Status::NotFound("table was not checked out from any CVD: " + table);
    }
  } else {
    return Status::InvalidArgument("commit requires -t <table> or -f <file>");
  }

  ORPHEUS_ASSIGN_OR_RETURN(core::VersionId vid,
                           orpheus_.Commit(cvd_name, table, message));
  return "committed version " + std::to_string(vid) + " to " + cvd_name;
}

Result<std::string> CommandProcessor::DiffCmd(const std::vector<std::string>& args) {
  if (args.size() < 4) return Status::InvalidArgument("diff <cvd> <v1> <v2>");
  ORPHEUS_ASSIGN_OR_RETURN(core::Cvd * cvd, orpheus_.GetCvd(args[1]));
  core::VersionId v1 = std::strtoll(args[2].c_str(), nullptr, 10);
  core::VersionId v2 = std::strtoll(args[3].c_str(), nullptr, 10);
  ORPHEUS_ASSIGN_OR_RETURN(rel::Chunk fwd, cvd->Diff(v1, v2));
  ORPHEUS_ASSIGN_OR_RETURN(rel::Chunk bwd, cvd->Diff(v2, v1));
  std::string out = "records only in v" + std::to_string(v1) + " (" +
                    std::to_string(fwd.num_rows()) + "):\n" + fwd.ToString(20);
  out += "records only in v" + std::to_string(v2) + " (" +
         std::to_string(bwd.num_rows()) + "):\n" + bwd.ToString(20);
  return out;
}

Result<std::string> CommandProcessor::Optimize(
    const std::vector<std::string>& args) {
  if (args.size() < 2) return Status::InvalidArgument("optimize <cvd> [-gamma f]");
  const std::string& name = args[1];
  ORPHEUS_ASSIGN_OR_RETURN(core::Cvd * cvd, orpheus_.GetCvd(name));
  auto* model = dynamic_cast<core::SplitByRlistModel*>(cvd->model());
  if (model == nullptr) {
    return Status::NotSupported("optimize requires the split-by-rlist model");
  }
  double factor = 2.0;
  std::string gamma_text = FlagValue(args, "-gamma");
  if (!gamma_text.empty()) factor = std::strtod(gamma_text.c_str(), nullptr);

  int64_t gamma =
      static_cast<int64_t>(factor * static_cast<double>(cvd->total_records()));
  ORPHEUS_ASSIGN_OR_RETURN(part::LyreSplitResult split,
                           part::LyreSplit::RunForBudget(cvd->graph(), gamma));

  // Materialize the partitions and install the checkout/query routing.
  std::map<core::VersionId, std::vector<core::RecordId>> version_rids;
  for (core::VersionId vid : cvd->graph().versions()) {
    ORPHEUS_ASSIGN_OR_RETURN(std::vector<core::RecordId> rids,
                             cvd->model()->VersionRecords(vid));
    version_rids[vid] = std::move(rids);
  }
  // Drop any previous store first so a re-optimize can reuse its
  // physical table names (and WAL replay does the same).
  orpheus_.DetachPartitionStore(name);
  auto store = std::make_unique<part::PartitionStore>(orpheus_.db(), name,
                                                      model->DataTable());
  ORPHEUS_RETURN_NOT_OK(store->Build(split.partitioning, std::move(version_rids)));
  ORPHEUS_RETURN_NOT_OK(orpheus_.AttachPartitionStore(name, std::move(store)));
  return "partitioned " + name + " into " +
         std::to_string(split.partitioning.num_partitions()) +
         " partitions (delta=" + StrFormat("%.4f", split.delta) +
         ", est. storage=" + std::to_string(split.estimated_storage) +
         " records, est. checkout=" +
         StrFormat("%.1f", split.estimated_checkout) + " records)";
}

}  // namespace orpheus::cli
