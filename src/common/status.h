// Status and Result<T>: exception-free error handling for OrpheusDB.
//
// Library code never throws; fallible operations return Status (or
// Result<T> when they also produce a value), in the style of
// RocksDB/Arrow. Status is cheap to copy in the OK case.

#ifndef ORPHEUS_COMMON_STATUS_H_
#define ORPHEUS_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace orpheus {

// Broad error categories. Keep this list short; the message carries the
// detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // table/version/record/attribute does not exist
  kAlreadyExists,     // name collision (table, CVD, user, ...)
  kConstraintViolation,  // primary key / schema constraint broken
  kParseError,        // SQL or command text failed to parse
  kInternal,          // invariant violation inside the library
  kNotSupported,      // recognized but unimplemented construct
  kFailedPrecondition,  // valid request, but engine state forbids it now
  kUnavailable,       // resource held elsewhere (lock file, closed peer)
};

// A success-or-error value. `ok()` is the common case; error statuses
// carry a code and a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  // Rebuilds a status from a transported (code, message) pair — the
  // server protocol's decode path. An out-of-range code maps to
  // kInternal rather than trusting the wire.
  static Status FromCode(StatusCode code, std::string msg) {
    if (code == StatusCode::kOk) return OK();
    if (code < StatusCode::kOk || code > StatusCode::kUnavailable) {
      code = StatusCode::kInternal;
    }
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<code>: <message>"; for logs and test failure output.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

// A value or an error. Modeled after arrow::Result: construct from T or
// from a non-OK Status; `ValueOrDie()` asserts success (tests/benches),
// production paths check `ok()` first.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both
  // work inside functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  // Returns the value, aborting (in debug builds) on error. Use in
  // tests and benchmarks where an error is a bug.
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

 private:
  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

}  // namespace orpheus

// Propagates a non-OK Status from an expression, RocksDB-style.
#define ORPHEUS_RETURN_NOT_OK(expr)             \
  do {                                          \
    ::orpheus::Status _st = (expr);             \
    if (!_st.ok()) return _st;                  \
  } while (0)

// Evaluates a Result<T> expression; on error returns its Status, else
// binds the value to `lhs`.
#define ORPHEUS_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                                  \
  if (!var.ok()) return var.status();                  \
  lhs = std::move(var).value();

#define ORPHEUS_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define ORPHEUS_ASSIGN_OR_RETURN_NAME(x, y) \
  ORPHEUS_ASSIGN_OR_RETURN_CONCAT(x, y)
#define ORPHEUS_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  ORPHEUS_ASSIGN_OR_RETURN_IMPL(                                         \
      ORPHEUS_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, rexpr)

#endif  // ORPHEUS_COMMON_STATUS_H_
