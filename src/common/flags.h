// Minimal command-line flag parsing for benchmark harnesses and
// examples: `--name=value` or `--name value`, with typed getters and
// defaults. Not a general-purpose flags library.

#ifndef ORPHEUS_COMMON_FLAGS_H_
#define ORPHEUS_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace orpheus {

class Flags {
 public:
  // Consumes `--k=v` / `--k v` pairs; bare `--k` becomes "true".
  // Non-flag arguments are collected as positional.
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  std::string GetString(const std::string& name, const std::string& def) const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace orpheus

#endif  // ORPHEUS_COMMON_FLAGS_H_
