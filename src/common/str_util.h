// Small string helpers shared across modules (SQL generation, the CLI
// tokenizer, and benchmark table printers).

#ifndef ORPHEUS_COMMON_STR_UTIL_H_
#define ORPHEUS_COMMON_STR_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace orpheus {

// Joins `parts` with `sep`: Join({"a","b"}, ", ") == "a, b".
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Splits on a single character, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

// Splits on runs of whitespace, dropping empty fields (shell-style).
std::vector<std::string> SplitWhitespace(std::string_view text);

// ASCII-lowercases a copy.
std::string ToLower(std::string_view text);

// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

// Case-insensitive ASCII equality (SQL keywords).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

bool StartsWith(std::string_view text, std::string_view prefix);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Renders 12345678 as "12,345,678" for benchmark tables.
std::string WithThousandsSep(int64_t value);

}  // namespace orpheus

#endif  // ORPHEUS_COMMON_STR_UTIL_H_
