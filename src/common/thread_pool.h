// A small reusable worker pool plus the process-wide execution
// parallelism knob used by the relstore scan pipeline.
//
// Thread-safety and ownership contracts:
//  - ThreadPool owns its worker threads; the destructor drains and
//    joins them. A ThreadPool may be shared by many callers, and
//    ParallelFor may be invoked from multiple threads at once.
//  - ParallelFor(count, fn) runs fn(0) .. fn(count-1) exactly once
//    each and returns only after every invocation has finished. The
//    calling thread participates in the work, so the call makes
//    progress even when every worker is busy — nested ParallelFor
//    calls (a task that itself fans out) cannot deadlock.
//  - `fn` must be safe to invoke concurrently from multiple threads.
//    Index-disjoint writes (each invocation writing only slot i of a
//    pre-sized output) need no further synchronization.
//  - Scheduling is work-stealing over an atomic index counter, so the
//    ORDER in which indices run is nondeterministic; callers that need
//    deterministic output must make each index's result independent of
//    execution order (write to slot i, merge in index order afterward).
//
// Process-wide parallelism (the `--threads` flag):
//  - SetExecThreads(n) fixes the parallelism used by ExecParallelFor;
//    n <= 0 restores the default (hardware concurrency), and values
//    above kMaxExecThreads are clamped so no flag/command entry point
//    can ask the pool to spawn an absurd number of OS threads. 1
//    disables the pool entirely: ExecParallelFor then runs its body
//    serially, in index order, on the calling thread.
//  - SetExecThreads is not meant to be called concurrently with
//    running queries; configure parallelism between statements (the
//    CLI, benches, and tests all do).

#ifndef ORPHEUS_COMMON_THREAD_POOL_H_
#define ORPHEUS_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace orpheus {

// Sanity cap for SetExecThreads; requests above it are clamped.
inline constexpr int kMaxExecThreads = 256;

class ThreadPool {
 public:
  // Spawns `num_workers` threads (>= 0; 0 is a valid pool where
  // ParallelFor degrades to a serial loop on the caller).
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Runs fn(i) for every i in [0, count); blocks until all are done.
  // See the header comment for the concurrency contract.
  void ParallelFor(int count, const std::function<void(int)>& fn);

  // Enqueues one fire-and-forget task for a worker thread (the socket
  // server's connection handlers ride on this). Tasks still queued at
  // destruction time are drained before the workers join, so a posted
  // task always runs — but long-lived tasks must watch their own stop
  // signal or the destructor will wait on them forever. Requires
  // num_workers() >= 1 (a zero-worker pool has nobody to run it).
  void Post(std::function<void()> task);

 private:
  // One ParallelFor's shared state. Kept alive by shared_ptr so a
  // straggling worker that merely probes `next` after completion never
  // touches freed memory.
  struct Job {
    const std::function<void(int)>* fn = nullptr;
    int count = 0;
    std::atomic<int> next{0};
    std::atomic<int> remaining{0};
    std::mutex done_mu;
    std::condition_variable done_cv;
  };

  static void RunShare(Job* job);
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

// Hardware concurrency, clamped to >= 1.
int HardwareThreads();

// Sets the parallelism used by ExecParallelFor. n <= 0 selects the
// hardware default; 1 forces serial execution; n > kMaxExecThreads is
// clamped to kMaxExecThreads.
void SetExecThreads(int n);

// The currently configured parallelism (>= 1).
int ExecThreads();

// Runs fn(i) for i in [0, count) with ExecThreads()-way parallelism on
// a lazily created shared pool. With ExecThreads() == 1 this is a
// plain serial loop in index order on the caller — no pool, no
// synchronization.
void ExecParallelFor(int count, const std::function<void(int)>& fn);

// Number of `batch_rows`-sized batches covering `total` items. The
// single source of truth for the batch decomposition: callers that
// pre-size per-batch result slots MUST use this so their indexing
// agrees with ParallelBatchFor's.
inline size_t NumBatches(size_t total, size_t batch_rows) {
  return (total + batch_rows - 1) / batch_rows;
}

// Splits [0, total) into fixed `batch_rows`-sized batches and runs
// fn(begin, end, batch_index) for each via ExecParallelFor. Returns
// the first non-OK status **in batch order**, so errors are reported
// deterministically no matter which worker hit one first. A single
// batch runs inline on the caller with no scheduling. Batch
// boundaries depend only on (total, batch_rows) — never on the thread
// count — which is what lets callers merge per-batch results into
// thread-count-independent (bit-identical) output.
Status ParallelBatchFor(size_t total, size_t batch_rows,
                        const std::function<Status(size_t, size_t, size_t)>& fn);

// Deterministic parallel stable sort: splits `items` into fixed
// `run_rows`-sized runs, stable-sorts each run on the pool, then
// merges runs pairwise in a fixed binary tree (each round's merges
// also run on the pool). Because the run boundaries and the merge
// tree depend only on (items->size(), run_rows) — never on the thread
// count — and std::merge is stable (ties take the left run first),
// the result is exactly std::stable_sort's, at every ExecThreads()
// setting. This is the sort behind merge-join key orders and ORDER BY.
//
// `less` must be a strict weak ordering and safe to invoke
// concurrently from many threads (pure reads only). Inputs up to one
// run — and all inputs when ExecThreads() == 1 — sort inline on the
// caller as a plain std::stable_sort (same result, none of the
// run/merge bookkeeping).
template <typename T, typename Less>
void ParallelStableSort(std::vector<T>* items, size_t run_rows,
                        const Less& less) {
  const size_t n = items->size();
  if (ExecThreads() == 1 || NumBatches(n, run_rows) <= 1) {
    std::stable_sort(items->begin(), items->end(), less);
    return;
  }
  const size_t runs = NumBatches(n, run_rows);
  ExecParallelFor(static_cast<int>(runs), [&](int b) {
    const size_t begin = static_cast<size_t>(b) * run_rows;
    const size_t end = std::min(n, begin + run_rows);
    std::stable_sort(items->begin() + static_cast<ptrdiff_t>(begin),
                     items->begin() + static_cast<ptrdiff_t>(end), less);
  });
  std::vector<T> buffer(n);
  std::vector<T>* src = items;
  std::vector<T>* dst = &buffer;
  for (size_t width = run_rows; width < n; width *= 2) {
    const size_t pairs = NumBatches(n, 2 * width);
    ExecParallelFor(static_cast<int>(pairs), [&](int p) {
      const size_t lo = static_cast<size_t>(p) * 2 * width;
      const size_t mid = std::min(n, lo + width);
      const size_t hi = std::min(n, lo + 2 * width);
      std::merge(src->begin() + static_cast<ptrdiff_t>(lo),
                 src->begin() + static_cast<ptrdiff_t>(mid),
                 src->begin() + static_cast<ptrdiff_t>(mid),
                 src->begin() + static_cast<ptrdiff_t>(hi),
                 dst->begin() + static_cast<ptrdiff_t>(lo), less);
    });
    std::swap(src, dst);
  }
  if (src != items) *items = std::move(*src);
}

}  // namespace orpheus

#endif  // ORPHEUS_COMMON_THREAD_POOL_H_
