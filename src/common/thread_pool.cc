#include "common/thread_pool.h"

#include <algorithm>

namespace orpheus {

ThreadPool::ThreadPool(int num_workers) {
  num_workers = std::max(0, num_workers);
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::RunShare(Job* job) {
  while (true) {
    int i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->count) return;
    (*job->fn)(i);
    if (job->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last item: wake the caller. The lock orders the notify against
      // the caller's predicate check.
      std::lock_guard<std::mutex> lock(job->done_mu);
      job->done_cv.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::ParallelFor(int count, const std::function<void(int)>& fn) {
  if (count <= 0) return;
  if (workers_.empty() || count == 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;  // safe: indices are exhausted before ParallelFor returns
  job->count = count;
  job->remaining.store(count, std::memory_order_relaxed);
  // One share per worker is enough: each share loops until the index
  // space is exhausted. Stale shares (job already finished) return
  // immediately.
  int shares = std::min(num_workers(), count - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int s = 0; s < shares; ++s) {
      queue_.emplace_back([job] { RunShare(job.get()); });
    }
  }
  cv_.notify_all();
  RunShare(job.get());  // the caller works too
  std::unique_lock<std::mutex> lock(job->done_mu);
  job->done_cv.wait(lock, [&job] {
    return job->remaining.load(std::memory_order_acquire) == 0;
  });
}

int HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

namespace {

std::mutex g_exec_mu;
int g_exec_threads = 0;  // 0 = unset -> hardware default
std::unique_ptr<ThreadPool> g_exec_pool;  // sized ExecThreads() - 1

}  // namespace

void SetExecThreads(int n) {
  std::lock_guard<std::mutex> lock(g_exec_mu);
  // Clamp here rather than at the flag/command entry points so no
  // caller can ask the pool for an unbounded number of OS threads
  // (std::thread construction failure would abort the process).
  int resolved = n <= 0 ? 0 : std::min(n, kMaxExecThreads);
  if (resolved == g_exec_threads) return;
  g_exec_threads = resolved;
  g_exec_pool.reset();  // rebuilt lazily at the new size
}

int ExecThreads() {
  std::lock_guard<std::mutex> lock(g_exec_mu);
  return g_exec_threads <= 0 ? HardwareThreads() : g_exec_threads;
}

void ExecParallelFor(int count, const std::function<void(int)>& fn) {
  if (count <= 0) return;
  ThreadPool* pool = nullptr;
  {
    std::lock_guard<std::mutex> lock(g_exec_mu);
    int threads = g_exec_threads <= 0 ? HardwareThreads() : g_exec_threads;
    if (threads > 1) {
      if (g_exec_pool == nullptr ||
          g_exec_pool->num_workers() != threads - 1) {
        g_exec_pool = std::make_unique<ThreadPool>(threads - 1);
      }
      pool = g_exec_pool.get();
    }
  }
  if (pool == nullptr) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  pool->ParallelFor(count, fn);
}

Status ParallelBatchFor(size_t total, size_t batch_rows,
                        const std::function<Status(size_t, size_t, size_t)>& fn) {
  if (total == 0) return Status::OK();
  const size_t nb = NumBatches(total, batch_rows);
  if (nb == 1) return fn(0, total, 0);
  std::vector<Status> batch_status(nb);
  ExecParallelFor(static_cast<int>(nb), [&](int b) {
    size_t begin = static_cast<size_t>(b) * batch_rows;
    size_t end = std::min(total, begin + batch_rows);
    batch_status[static_cast<size_t>(b)] =
        fn(begin, end, static_cast<size_t>(b));
  });
  for (const Status& s : batch_status) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace orpheus
