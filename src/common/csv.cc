#include "common/csv.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/str_util.h"

namespace orpheus {

namespace {

// Splits one CSV line, honoring double-quoted fields.
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

bool LooksLikeInt(const std::string& s) {
  if (s.empty()) return false;
  size_t i = s[0] == '-' || s[0] == '+' ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool LooksLikeDouble(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

Result<rel::Chunk> ParseCsv(const std::string& text) {
  std::vector<std::string> lines;
  {
    std::stringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      if (!Trim(line).empty()) lines.push_back(line);
    }
  }
  if (lines.empty()) return Status::InvalidArgument("empty CSV input");

  std::vector<std::string> header = SplitCsvLine(lines[0]);
  std::vector<std::vector<std::string>> rows;
  rows.reserve(lines.size() - 1);
  for (size_t i = 1; i < lines.size(); ++i) {
    std::vector<std::string> fields = SplitCsvLine(lines[i]);
    if (fields.size() != header.size()) {
      return Status::InvalidArgument(
          "CSV row " + std::to_string(i) + " has " +
          std::to_string(fields.size()) + " fields, header has " +
          std::to_string(header.size()));
    }
    rows.push_back(std::move(fields));
  }

  // Infer column types.
  rel::Schema schema;
  for (size_t c = 0; c < header.size(); ++c) {
    bool all_int = true;
    bool all_double = true;
    bool any_value = false;
    for (const auto& row : rows) {
      const std::string& v = row[c];
      if (v.empty()) continue;
      any_value = true;
      if (!LooksLikeInt(v)) all_int = false;
      if (!LooksLikeDouble(v)) all_double = false;
    }
    rel::DataType type = rel::DataType::kString;
    if (any_value && all_int) {
      type = rel::DataType::kInt64;
    } else if (any_value && all_double) {
      type = rel::DataType::kDouble;
    }
    schema.AddColumn(std::string(Trim(header[c])), type);
  }

  rel::Chunk chunk(schema);
  std::vector<rel::Value> values(header.size());
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      const std::string& v = row[c];
      if (v.empty()) {
        values[c] = rel::Value::Null();
      } else {
        switch (schema.column(static_cast<int>(c)).type) {
          case rel::DataType::kInt64:
            values[c] = rel::Value::Int(std::strtoll(v.c_str(), nullptr, 10));
            break;
          case rel::DataType::kDouble:
            values[c] = rel::Value::Double(std::strtod(v.c_str(), nullptr));
            break;
          default:
            values[c] = rel::Value::String(v);
        }
      }
    }
    chunk.AppendRow(values);
  }
  return chunk;
}

Result<rel::Chunk> ReadCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str());
}

std::string ToCsv(const rel::Chunk& chunk) {
  std::string out;
  for (int c = 0; c < chunk.num_columns(); ++c) {
    if (c > 0) out += ",";
    out += chunk.schema().column(c).name;
  }
  out += "\n";
  for (size_t r = 0; r < chunk.num_rows(); ++r) {
    for (int c = 0; c < chunk.num_columns(); ++c) {
      if (c > 0) out += ",";
      rel::Value v = chunk.Get(r, c);
      if (v.is_null()) continue;
      std::string field = v.ToString();
      if (field.find(',') != std::string::npos ||
          field.find('"') != std::string::npos) {
        std::string quoted = "\"";
        for (char ch : field) {
          if (ch == '"') quoted += "\"\"";
          else quoted.push_back(ch);
        }
        quoted += "\"";
        field = std::move(quoted);
      }
      out += field;
    }
    out += "\n";
  }
  return out;
}

Status WriteCsvFile(const std::string& path, const rel::Chunk& chunk) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot write file: " + path);
  out << ToCsv(chunk);
  return Status::OK();
}

}  // namespace orpheus
