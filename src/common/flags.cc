#include "common/flags.h"

#include <cstdlib>
#include <string_view>

namespace orpheus {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.size() >= 2 && arg.substr(0, 2) == "--") {
      std::string_view body = arg.substr(2);
      size_t eq = body.find('=');
      if (eq != std::string_view::npos) {
        values_[std::string(body.substr(0, eq))] = std::string(body.substr(eq + 1));
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        values_[std::string(body)] = argv[++i];
      } else {
        values_[std::string(body)] = "true";
      }
    } else {
      positional_.emplace_back(arg);
    }
  }
}

std::string Flags::GetString(const std::string& name, const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second != "false" && it->second != "0";
}

}  // namespace orpheus
