// Minimal CSV support for the command clients (CLI and server): `init -f file.csv` and
// `checkout -f file.csv` flows from §2.2 of the paper.

#ifndef ORPHEUS_COMMON_CSV_H_
#define ORPHEUS_COMMON_CSV_H_

#include <string>

#include "common/status.h"
#include "relstore/chunk.h"

namespace orpheus {

// Parses CSV text (first line = header) into a chunk. Column types
// are inferred: INT if every value parses as an integer, DOUBLE if
// numeric, TEXT otherwise. Empty fields become NULL.
Result<rel::Chunk> ParseCsv(const std::string& text);

// Reads and parses a CSV file.
Result<rel::Chunk> ReadCsvFile(const std::string& path);

// Renders a chunk as CSV (header + rows).
std::string ToCsv(const rel::Chunk& chunk);

// Writes a chunk to a CSV file.
Status WriteCsvFile(const std::string& path, const rel::Chunk& chunk);

}  // namespace orpheus

#endif  // ORPHEUS_COMMON_CSV_H_
