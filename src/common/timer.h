// Wall-clock timing helper used by benchmark harnesses.

#ifndef ORPHEUS_COMMON_TIMER_H_
#define ORPHEUS_COMMON_TIMER_H_

#include <chrono>

namespace orpheus {

// Measures elapsed wall time from construction (or the last Restart()).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace orpheus

#endif  // ORPHEUS_COMMON_TIMER_H_
