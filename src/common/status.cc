#include "common/status.h"

namespace orpheus {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace orpheus
