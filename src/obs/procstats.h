// Process runtime stats for long-running --serve deployments: a
// background sampler that reads /proc/self/{statm,stat} and
// /proc/self/fd on a fixed cadence and publishes the readings as
// gauges in the global metrics registry, so one `metrics` scrape
// covers engine counters and process health together.
//
// Gauge catalog (all sampled, absolute values):
//   orpheus_process_resident_bytes     RSS
//   orpheus_process_virtual_bytes      virtual size
//   orpheus_process_open_fds           open file descriptors
//   orpheus_process_threads            kernel thread count
//   orpheus_process_cpu_user_seconds   cumulative user CPU
//   orpheus_process_cpu_system_seconds cumulative system CPU
//   orpheus_process_uptime_seconds     time since process start
#ifndef ORPHEUS_OBS_PROCSTATS_H_
#define ORPHEUS_OBS_PROCSTATS_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/status.h"

namespace orpheus {
namespace obs {

// One reading of /proc/self. Separated from the gauge publication so
// tests can assert on raw values.
struct ProcSample {
  int64_t rss_bytes = 0;
  int64_t vm_bytes = 0;
  int64_t open_fds = 0;
  int64_t threads = 0;
  double cpu_user_s = 0;
  double cpu_sys_s = 0;
  double uptime_s = 0;
};

// Reads the current process's stats from procfs. Fails (NotSupported /
// Internal) on platforms without /proc; callers degrade gracefully.
Result<ProcSample> ReadProcSelf();

// Background sampler singleton. Start() is idempotent and spawns one
// thread that calls SampleOnce() every `interval_ms`; Stop() joins it.
// SampleOnce() can also be called directly (tests, one-shot dumps).
class ProcStatsSampler {
 public:
  static ProcStatsSampler& Instance();

  // Samples immediately (so the gauges are live before the first
  // tick), then starts the background thread. interval_ms <= 0 or an
  // already-running sampler is a no-op.
  void Start(int interval_ms);
  void Stop();

  // Publishes one reading into GlobalMetrics(). Returns the sample
  // status (gauges untouched on failure).
  Status SampleOnce();

 private:
  ProcStatsSampler() = default;
  ~ProcStatsSampler() = default;  // leaked singleton, like GlobalMetrics

  std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  bool stop_ = false;
};

}  // namespace obs
}  // namespace orpheus

#endif  // ORPHEUS_OBS_PROCSTATS_H_
