#include "obs/procstats.h"

#include <dirent.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace orpheus {
namespace obs {

namespace {
Result<std::string> ReadWholeFile(const char* path) {
  std::ifstream in(path);
  if (!in) return Status::NotSupported(std::string("cannot open ") + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Counts entries of /proc/self/fd (minus "." and ".." and the fd the
// directory scan itself holds open).
Result<int64_t> CountOpenFds() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) {
    return Status::NotSupported("cannot open /proc/self/fd");
  }
  int64_t count = 0;
  while (dirent* entry = readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    ++count;
  }
  closedir(dir);
  return count > 0 ? count - 1 : count;  // exclude the scan's own fd
}
}  // namespace

Result<ProcSample> ReadProcSelf() {
  ProcSample sample;
  const long page = sysconf(_SC_PAGESIZE);
  const long hz = sysconf(_SC_CLK_TCK);
  if (page <= 0 || hz <= 0) {
    return Status::NotSupported("sysconf unavailable");
  }

  // statm: total and resident size, in pages.
  ORPHEUS_ASSIGN_OR_RETURN(std::string statm,
                           ReadWholeFile("/proc/self/statm"));
  {
    std::istringstream in(statm);
    int64_t vm_pages = 0, rss_pages = 0;
    if (!(in >> vm_pages >> rss_pages)) {
      return Status::Internal("unparseable /proc/self/statm");
    }
    sample.vm_bytes = vm_pages * page;
    sample.rss_bytes = rss_pages * page;
  }

  // stat: fields after the parenthesized comm (which may itself hold
  // spaces), so tokenize from the last ')'. Post-comm token indices:
  // utime=11, stime=12, num_threads=17, starttime=19 (all in ticks).
  ORPHEUS_ASSIGN_OR_RETURN(std::string stat, ReadWholeFile("/proc/self/stat"));
  double start_ticks = 0;
  {
    const size_t close = stat.rfind(')');
    if (close == std::string::npos) {
      return Status::Internal("unparseable /proc/self/stat");
    }
    std::istringstream in(stat.substr(close + 1));
    std::vector<std::string> tokens;
    std::string tok;
    while (in >> tok) tokens.push_back(tok);
    if (tokens.size() < 20) {
      return Status::Internal("short /proc/self/stat");
    }
    sample.cpu_user_s = std::stod(tokens[11]) / static_cast<double>(hz);
    sample.cpu_sys_s = std::stod(tokens[12]) / static_cast<double>(hz);
    sample.threads = std::stoll(tokens[17]);
    start_ticks = std::stod(tokens[19]);
  }

  // uptime of the process = system uptime - process start time.
  ORPHEUS_ASSIGN_OR_RETURN(std::string uptime, ReadWholeFile("/proc/uptime"));
  {
    std::istringstream in(uptime);
    double system_uptime_s = 0;
    if (!(in >> system_uptime_s)) {
      return Status::Internal("unparseable /proc/uptime");
    }
    sample.uptime_s = system_uptime_s - start_ticks / static_cast<double>(hz);
    if (sample.uptime_s < 0) sample.uptime_s = 0;
  }

  ORPHEUS_ASSIGN_OR_RETURN(sample.open_fds, CountOpenFds());
  return sample;
}

ProcStatsSampler& ProcStatsSampler::Instance() {
  static ProcStatsSampler* sampler = new ProcStatsSampler();
  return *sampler;
}

Status ProcStatsSampler::SampleOnce() {
  ORPHEUS_ASSIGN_OR_RETURN(ProcSample s, ReadProcSelf());
  MetricsRegistry& reg = GlobalMetrics();
  reg.GetGauge("orpheus_process_resident_bytes",
               "Resident set size of this process.")
      ->Set(static_cast<double>(s.rss_bytes));
  reg.GetGauge("orpheus_process_virtual_bytes",
               "Virtual memory size of this process.")
      ->Set(static_cast<double>(s.vm_bytes));
  reg.GetGauge("orpheus_process_open_fds",
               "Open file descriptors held by this process.")
      ->Set(static_cast<double>(s.open_fds));
  reg.GetGauge("orpheus_process_threads",
               "Kernel threads in this process.")
      ->Set(static_cast<double>(s.threads));
  reg.GetGauge("orpheus_process_cpu_user_seconds",
               "Cumulative user CPU time of this process.")
      ->Set(s.cpu_user_s);
  reg.GetGauge("orpheus_process_cpu_system_seconds",
               "Cumulative system CPU time of this process.")
      ->Set(s.cpu_sys_s);
  reg.GetGauge("orpheus_process_uptime_seconds",
               "Seconds since this process started.")
      ->Set(s.uptime_s);
  return Status::OK();
}

void ProcStatsSampler::Start(int interval_ms) {
  if (interval_ms <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  if (!SampleOnce().ok()) return;  // no /proc on this platform
  running_ = true;
  stop_ = false;
  thread_ = std::thread([this, interval_ms] {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                   [this] { return stop_; });
      if (stop_) break;
      lock.unlock();
      (void)SampleOnce();
      lock.lock();
    }
  });
}

void ProcStatsSampler::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
    running_ = false;
    to_join = std::move(thread_);
  }
  cv_.notify_all();
  to_join.join();
}

}  // namespace obs
}  // namespace orpheus
