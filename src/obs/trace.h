// Per-operation tracing: an RAII span API that attributes wall time
// to pipeline stages (parse -> lock wait -> execute -> WAL enqueue ->
// group-commit sync -> checkpoint) and records finished operations
// into a ring buffer of recent ops plus a slow-op log gated by a
// configurable threshold (--slow-op-ms, default 100).
//
// EngineApi::Execute installs one ActiveOpScope per statement; any
// TraceSpan constructed on the same thread while it lives charges its
// elapsed time to that operation's stage vector. This works because
// every stage of a statement — including the WAL enqueue under the
// exclusive lock, the group-commit WaitDurable, and a triggered
// checkpoint — runs on the statement's own thread.
#ifndef ORPHEUS_OBS_TRACE_H_
#define ORPHEUS_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/profile.h"

namespace orpheus {
namespace obs {

enum class TraceStage {
  kParse = 0,
  kLockWait,
  kExecute,
  kWalEnqueue,
  kGroupCommitSync,
  kCheckpoint,
};
constexpr int kTraceStageCount = 6;
const char* TraceStageName(TraceStage stage);

// One finished operation. Stage times are attributed, not disjoint:
// kExecute includes nested kWalEnqueue/kCheckpoint spans.
struct OpTrace {
  uint64_t id = 0;
  uint64_t session_id = 0;
  std::string verb;
  double total_s = 0;
  double stage_s[kTraceStageCount] = {0, 0, 0, 0, 0, 0};
  bool ok = true;
  // Operator profile tree (statements that ran executor operators
  // only); shared with any profile snapshots taken while it ran.
  std::shared_ptr<const ProfileNode> profile;
};

// One trace as a single JSON object ({"id":...,"stages":{...}}), the
// line format of the `traces` verb. The profile tree is included only
// when `include_profile` is set and the op recorded one.
std::string OpTraceJson(const OpTrace& op, bool include_profile);

// Ring buffer of recent operations plus a slow-op log. Recording and
// reading take a mutex; this runs once per statement, not per batch.
class TraceLog {
 public:
  explicit TraceLog(size_t recent_capacity = 256, size_t slow_capacity = 128);

  void SetSlowOpThresholdMs(double ms);
  double SlowOpThresholdMs() const;

  void Record(OpTrace op);
  std::vector<OpTrace> Recent() const;
  std::vector<OpTrace> SlowOps() const;
  uint64_t TotalRecorded() const;

 private:
  mutable std::mutex mu_;
  size_t recent_cap_;
  size_t slow_cap_;
  std::deque<OpTrace> recent_;
  std::deque<OpTrace> slow_;
  uint64_t next_id_ = 1;
  uint64_t total_ = 0;
  std::atomic<int64_t> threshold_us_{100 * 1000};
};

TraceLog& GlobalTraceLog();

// Installed by EngineApi::Execute for the duration of one statement.
// On destruction it finalizes the trace, records it into
// GlobalTraceLog(), and bumps the per-verb op counters + latency
// histogram in GlobalMetrics().
class ActiveOpScope {
 public:
  ActiveOpScope(std::string verb, uint64_t session_id);
  ~ActiveOpScope();
  ActiveOpScope(const ActiveOpScope&) = delete;
  ActiveOpScope& operator=(const ActiveOpScope&) = delete;

  void set_ok(bool ok) { op_.ok = ok; }

 private:
  OpTrace op_;
  OpTrace* prev_;
  ProfileCollector collector_;
  std::chrono::steady_clock::time_point start_;
  bool active_;
};

// Charges its lifetime to `stage` of the thread's active op (if any)
// and to the orpheus_stage_seconds{stage=...} histogram. Cheap no-op
// when metrics are disabled.
class TraceSpan {
 public:
  explicit TraceSpan(TraceStage stage);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceStage stage_;
  std::chrono::steady_clock::time_point start_;
  bool active_;
};

}  // namespace obs
}  // namespace orpheus

#endif  // ORPHEUS_OBS_TRACE_H_
