// Per-statement operator profiles: every relstore executor operator
// (scan, filter, hash-join build/probe, INL probe, merge-sort,
// ORDER BY, aggregate, projection) opens a ProfileOpScope that records
// rows in/out, batch count, and wall time. When a ProfileCollector is
// installed on the thread (EngineApi does this per statement, via
// ActiveOpScope), the scopes additionally link up into a tree that
// mirrors the plan shape — the payload behind `EXPLAIN ANALYZE` /
// `profile` and the slow-op entries of the `traces` verb.
//
// Threading contract: scopes and collectors are coordinating-thread
// only. The executor's pool workers never construct scopes; each
// operator's scope covers the whole batched region including the
// coordinating thread's wait, so operator wall time is end-to-end as
// a client would see it. Nested statements (subqueries in FROM) nest
// their scopes naturally because the executor recurses on the same
// thread.
#ifndef ORPHEUS_OBS_PROFILE_H_
#define ORPHEUS_OBS_PROFILE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace orpheus {
namespace obs {

// One operator's measurements. Children appear in execution order.
// Nodes are immutable once their scope closes; finished subtrees are
// shared (shared_ptr) between the trace log and profile snapshots.
struct ProfileNode {
  std::string op;      // "scan", "filter", "join", ...
  std::string detail;  // operator-specific: table name, join strategy
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t batches = 0;
  double seconds = 0;
  std::vector<std::shared_ptr<ProfileNode>> children;
};

// Renderers. Text is an indented tree with aligned rows/time columns;
// JSON is a nested object ({"op":...,"rows_out":...,"children":[...]}).
std::string ProfileText(const ProfileNode& root);
std::string ProfileJson(const ProfileNode& root);

// Minimal JSON string escaping (quotes, backslash, control chars).
std::string JsonEscape(const std::string& s);

// Installed on the statement's thread for the statement's lifetime.
// ProfileOpScopes constructed while it lives attach their nodes under
// the current position. Inactive (no tree built) when metrics are
// disabled.
class ProfileCollector {
 public:
  ProfileCollector();
  ~ProfileCollector();
  ProfileCollector(const ProfileCollector&) = delete;
  ProfileCollector& operator=(const ProfileCollector&) = delete;

  // Finalizes the root's wall time and detaches the tree; returns
  // nullptr when inactive or when no operator ever ran (non-SQL
  // verbs). After Take() the collector stops accepting scopes.
  std::shared_ptr<const ProfileNode> Take();

 private:
  friend class ProfileOpScope;
  friend std::shared_ptr<const ProfileNode> SnapshotActiveProfile();

  std::shared_ptr<ProfileNode> root_;
  ProfileNode* current_ = nullptr;
  ProfileCollector* prev_ = nullptr;
  std::chrono::steady_clock::time_point start_;
  bool installed_ = false;
};

// Copies the thread's active collector tree as of now: finished child
// subtrees are shared, the still-open root is cloned with its elapsed
// time so far. This is how EngineApi reads the profile of the very
// statement that is executing it (the operators have all closed by
// the time the handler inspects the result). Returns nullptr when no
// collector is installed or nothing was recorded.
std::shared_ptr<const ProfileNode> SnapshotActiveProfile();

// RAII measurement for one operator. Always feeds the
// orpheus_operator_seconds{op=...} / orpheus_operator_rows{op=...}
// families (counters are kept locally and flushed once at scope
// exit); additionally contributes a tree node when a collector is
// installed on this thread.
class ProfileOpScope {
 public:
  explicit ProfileOpScope(const char* op, std::string detail = {});
  ~ProfileOpScope();
  ProfileOpScope(const ProfileOpScope&) = delete;
  ProfileOpScope& operator=(const ProfileOpScope&) = delete;

  void AddRowsIn(uint64_t n) { rows_in_ += n; }
  void AddRowsOut(uint64_t n) { rows_out_ += n; }
  void AddBatches(uint64_t n) { batches_ += n; }
  void SetDetail(std::string detail);

 private:
  const char* op_;
  std::string detail_;
  uint64_t rows_in_ = 0;
  uint64_t rows_out_ = 0;
  uint64_t batches_ = 0;
  ProfileNode* node_ = nullptr;    // our node in the collector tree
  ProfileNode* parent_ = nullptr;  // collector position to restore
  ProfileCollector* collector_ = nullptr;
  std::chrono::steady_clock::time_point start_;
  bool active_ = false;
};

}  // namespace obs
}  // namespace orpheus

#endif  // ORPHEUS_OBS_PROFILE_H_
