#include "obs/trace.h"

#include <cstdio>
#include <utility>

#include "obs/metrics.h"

namespace orpheus {
namespace obs {

namespace {
thread_local OpTrace* t_active_op = nullptr;

double ElapsedSeconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

Histogram* StageHistogram(TraceStage stage) {
  static Histogram* hists[kTraceStageCount] = {nullptr};
  static std::once_flag once;
  std::call_once(once, [] {
    for (int i = 0; i < kTraceStageCount; ++i) {
      hists[i] = GlobalMetrics().GetHistogram(
          "orpheus_stage_seconds",
          "Time spent per pipeline stage across all operations.",
          LatencyBuckets(),
          {{"stage", TraceStageName(static_cast<TraceStage>(i))}});
    }
  });
  return hists[static_cast<int>(stage)];
}
}  // namespace

const char* TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kParse:
      return "parse";
    case TraceStage::kLockWait:
      return "lock_wait";
    case TraceStage::kExecute:
      return "execute";
    case TraceStage::kWalEnqueue:
      return "wal_enqueue";
    case TraceStage::kGroupCommitSync:
      return "group_commit_sync";
    case TraceStage::kCheckpoint:
      return "checkpoint";
  }
  return "unknown";
}

std::string OpTraceJson(const OpTrace& op, bool include_profile) {
  char buf[64];
  std::string out = "{\"id\":" + std::to_string(op.id);
  out += ",\"session\":" + std::to_string(op.session_id);
  out += ",\"verb\":\"" + JsonEscape(op.verb) + "\"";
  out += ",\"ok\":";
  out += op.ok ? "true" : "false";
  std::snprintf(buf, sizeof(buf), "%.9f", op.total_s);
  out += ",\"total_s\":" + std::string(buf);
  out += ",\"stages\":{";
  for (int i = 0; i < kTraceStageCount; ++i) {
    if (i > 0) out += ",";
    std::snprintf(buf, sizeof(buf), "%.9f", op.stage_s[i]);
    out += "\"" + std::string(TraceStageName(static_cast<TraceStage>(i))) +
           "\":" + buf;
  }
  out += "}";
  if (include_profile && op.profile != nullptr) {
    out += ",\"profile\":" + ProfileJson(*op.profile);
  }
  out += "}";
  return out;
}

TraceLog::TraceLog(size_t recent_capacity, size_t slow_capacity)
    : recent_cap_(recent_capacity), slow_cap_(slow_capacity) {}

void TraceLog::SetSlowOpThresholdMs(double ms) {
  threshold_us_.store(static_cast<int64_t>(ms * 1000),
                      std::memory_order_relaxed);
}

double TraceLog::SlowOpThresholdMs() const {
  return static_cast<double>(threshold_us_.load(std::memory_order_relaxed)) /
         1000.0;
}

void TraceLog::Record(OpTrace op) {
  const bool slow =
      op.total_s * 1e6 >=
      static_cast<double>(threshold_us_.load(std::memory_order_relaxed));
  std::lock_guard<std::mutex> lock(mu_);
  op.id = next_id_++;
  ++total_;
  if (slow) {
    slow_.push_back(op);
    if (slow_.size() > slow_cap_) slow_.pop_front();
  }
  recent_.push_back(std::move(op));
  if (recent_.size() > recent_cap_) recent_.pop_front();
}

std::vector<OpTrace> TraceLog::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<OpTrace>(recent_.begin(), recent_.end());
}

std::vector<OpTrace> TraceLog::SlowOps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<OpTrace>(slow_.begin(), slow_.end());
}

uint64_t TraceLog::TotalRecorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

TraceLog& GlobalTraceLog() {
  static TraceLog* log = new TraceLog();
  return *log;
}

ActiveOpScope::ActiveOpScope(std::string verb, uint64_t session_id)
    : prev_(t_active_op), active_(MetricsEnabled()) {
  if (!active_) return;
  op_.verb = std::move(verb);
  op_.session_id = session_id;
  start_ = std::chrono::steady_clock::now();
  t_active_op = &op_;
}

ActiveOpScope::~ActiveOpScope() {
  if (!active_) return;
  t_active_op = prev_;
  op_.total_s = ElapsedSeconds(start_);
  op_.profile = collector_.Take();
  MetricsRegistry& reg = GlobalMetrics();
  reg.GetCounter("orpheus_ops_total", "Operations executed, by verb.",
                 {{"verb", op_.verb}})
      ->Inc();
  if (!op_.ok) {
    reg.GetCounter("orpheus_op_errors_total",
                   "Operations that returned an error, by verb.",
                   {{"verb", op_.verb}})
        ->Inc();
  }
  reg.GetHistogram("orpheus_op_latency_seconds",
                   "End-to-end statement latency, by verb.", LatencyBuckets(),
                   {{"verb", op_.verb}})
      ->Observe(op_.total_s);
  TraceLog& log = GlobalTraceLog();
  if (op_.total_s * 1000.0 >= log.SlowOpThresholdMs()) {
    reg.GetCounter("orpheus_slow_ops_total",
                   "Operations slower than the --slow-op-ms threshold.")
        ->Inc();
  }
  log.Record(std::move(op_));
}

TraceSpan::TraceSpan(TraceStage stage)
    : stage_(stage), active_(MetricsEnabled()) {
  if (!active_) return;
  start_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const double elapsed = ElapsedSeconds(start_);
  if (t_active_op != nullptr) {
    t_active_op->stage_s[static_cast<int>(stage_)] += elapsed;
  }
  StageHistogram(stage_)->Observe(elapsed);
}

}  // namespace obs
}  // namespace orpheus
