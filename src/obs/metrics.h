// Engine-wide metrics: named counters, gauges, and fixed-bucket
// histograms, exposed as Prometheus text exposition v0.0.4.
//
// Hot-path cost is one relaxed atomic add: counters and histograms
// shard their cells across cache-line-padded slots indexed by a hash
// of the calling thread's id, and the shards are merged only at
// scrape time. Metric handles returned by the registry are stable
// for the registry's lifetime, so call sites look them up once
// (static local) and then just Inc()/Observe().
#ifndef ORPHEUS_OBS_METRICS_H_
#define ORPHEUS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace orpheus {
namespace obs {

// Runtime kill switch for all instrumentation. Inc()/Observe() load
// it relaxed and return early when off; benches flip it to measure
// instrumentation overhead against a hot path with the same code
// shape but no atomic traffic.
void SetMetricsEnabled(bool enabled);
bool MetricsEnabled();

using LabelSet = std::vector<std::pair<std::string, std::string>>;

namespace internal {
constexpr int kShards = 8;
constexpr int kCacheLine = 64;

struct alignas(kCacheLine) PaddedCell {
  std::atomic<uint64_t> value{0};
  char pad[kCacheLine - sizeof(std::atomic<uint64_t>)];
};

// Stable per-thread shard index (hash of thread id).
int ThreadShard();
}  // namespace internal

// Monotonic counter.
class Counter {
 public:
  void Inc(uint64_t delta = 1) {
    if (!MetricsEnabled()) return;
    IncAlways(delta);
  }
  // Bypasses the SetMetricsEnabled gate — for counters that double as
  // test oracles (the fault-injection syscall totals) and must stay
  // exact even while instrumentation is switched off.
  void IncAlways(uint64_t delta = 1) {
    shards_[internal::ThreadShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& s : shards_)
      total += s.value.load(std::memory_order_relaxed);
    return total;
  }

 private:
  internal::PaddedCell shards_[internal::kShards];
};

// Instantaneous value (may go down). Double-backed so fractional
// readings (CPU seconds, uptime) fit; integral values render without
// a decimal point. C++17 has no atomic<double>::fetch_add, so Add()
// is a CAS loop — gauges are low-frequency, this is not a hot path.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    if (!MetricsEnabled()) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

// Fixed-bucket histogram. Bucket counts are per-bucket non-cumulative
// internally and cumulated at scrape time, per the exposition format.
// The sum is kept in integer micro-units because C++17 has no
// atomic<double>::fetch_add.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v) {
    if (!MetricsEnabled()) return;
    const int shard = internal::ThreadShard();
    Shard& s = shards_[shard];
    s.cells[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum_micro.fetch_add(static_cast<int64_t>(v * 1e6 + 0.5),
                          std::memory_order_relaxed);
  }

  const std::vector<double>& bounds() const { return bounds_; }
  // Per-bucket (non-cumulative) counts, merged across shards;
  // size() == bounds().size() + 1, last entry is the +Inf bucket.
  std::vector<uint64_t> BucketCounts() const;
  uint64_t Count() const;
  double Sum() const;

 private:
  size_t BucketIndex(double v) const {
    size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    return i;
  }

  struct alignas(internal::kCacheLine) Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> cells;
    std::atomic<int64_t> sum_micro{0};
  };

  std::vector<double> bounds_;
  std::vector<Shard> shards_;
};

// Default bucket ladders.
std::vector<double> LatencyBuckets();  // seconds, 100us .. 10s
std::vector<double> SizeBuckets();     // powers of two, 1 .. 256

enum class MetricType { kCounter, kGauge, kHistogram };

// One labeled series in a scrape snapshot.
struct MetricPoint {
  std::string name;
  MetricType type = MetricType::kCounter;
  LabelSet labels;
  double value = 0;                      // counter / gauge
  std::vector<double> bounds;            // histogram
  std::vector<uint64_t> bucket_counts;   // non-cumulative, +Inf last
  uint64_t count = 0;                    // histogram
  double sum = 0;                        // histogram

  // "name{k=v,...}" — stable flattened key for JSON dumps.
  std::string FlatName() const;
};

// A named family of metrics, one child per label set. Registration
// takes a mutex; the returned pointers are stable, so hot paths
// register once and hit only the lock-free child.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help,
                      const LabelSet& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const LabelSet& labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          const std::vector<double>& bounds,
                          const LabelSet& labels = {});

  std::vector<MetricPoint> Snapshot() const;
  // Prometheus text exposition v0.0.4.
  std::string RenderPrometheus() const;

 private:
  struct Family {
    MetricType type;
    std::string help;
    std::vector<double> bounds;  // histograms only
    // Label sets in registration order; map key is the serialized set.
    std::vector<std::pair<LabelSet, size_t>> children;
    std::map<std::string, size_t> by_label;
    std::vector<std::unique_ptr<Counter>> counters;
    std::vector<std::unique_ptr<Gauge>> gauges;
    std::vector<std::unique_ptr<Histogram>> histograms;
  };

  Family* GetFamily(const std::string& name, MetricType type,
                    const std::string& help,
                    const std::vector<double>& bounds);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

// The process-wide registry used by all engine instrumentation.
MetricsRegistry& GlobalMetrics();

}  // namespace obs
}  // namespace orpheus

#endif  // ORPHEUS_OBS_METRICS_H_
