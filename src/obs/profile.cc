#include "obs/profile.h"

#include <cstdio>
#include <utility>

#include "obs/metrics.h"

namespace orpheus {
namespace obs {

namespace {
thread_local ProfileCollector* t_profile_collector = nullptr;

double ElapsedSeconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string FormatSecondsShort(double s) {
  char buf[64];
  if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", s * 1e6);
  }
  return buf;
}

void AppendText(const ProfileNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += node.op;
  if (!node.detail.empty()) {
    *out += " [" + node.detail + "]";
  }
  *out += "  rows_in=" + std::to_string(node.rows_in);
  *out += " rows_out=" + std::to_string(node.rows_out);
  if (node.batches > 0) {
    *out += " batches=" + std::to_string(node.batches);
  }
  *out += "  time=" + FormatSecondsShort(node.seconds);
  *out += "\n";
  for (const auto& child : node.children) {
    AppendText(*child, depth + 1, out);
  }
}

void AppendJson(const ProfileNode& node, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9f", node.seconds);
  *out += "{\"op\":\"" + JsonEscape(node.op) + "\"";
  if (!node.detail.empty()) {
    *out += ",\"detail\":\"" + JsonEscape(node.detail) + "\"";
  }
  *out += ",\"rows_in\":" + std::to_string(node.rows_in);
  *out += ",\"rows_out\":" + std::to_string(node.rows_out);
  *out += ",\"batches\":" + std::to_string(node.batches);
  *out += ",\"seconds\":" + std::string(buf);
  if (!node.children.empty()) {
    *out += ",\"children\":[";
    bool first = true;
    for (const auto& child : node.children) {
      if (!first) *out += ",";
      first = false;
      AppendJson(*child, out);
    }
    *out += "]";
  }
  *out += "}";
}
}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string ProfileText(const ProfileNode& root) {
  std::string out;
  AppendText(root, 0, &out);
  return out;
}

std::string ProfileJson(const ProfileNode& root) {
  std::string out;
  AppendJson(root, &out);
  return out;
}

ProfileCollector::ProfileCollector() {
  if (!MetricsEnabled()) return;
  root_ = std::make_shared<ProfileNode>();
  root_->op = "statement";
  current_ = root_.get();
  start_ = std::chrono::steady_clock::now();
  prev_ = t_profile_collector;
  t_profile_collector = this;
  installed_ = true;
}

ProfileCollector::~ProfileCollector() {
  if (installed_) t_profile_collector = prev_;
}

std::shared_ptr<const ProfileNode> ProfileCollector::Take() {
  if (!installed_) return nullptr;
  t_profile_collector = prev_;
  installed_ = false;
  if (root_->children.empty()) return nullptr;
  root_->seconds = ElapsedSeconds(start_);
  return std::move(root_);
}

std::shared_ptr<const ProfileNode> SnapshotActiveProfile() {
  ProfileCollector* collector = t_profile_collector;
  if (collector == nullptr || collector->root_ == nullptr ||
      collector->root_->children.empty()) {
    return nullptr;
  }
  // Finished subtrees are immutable, so sharing their shared_ptrs is
  // safe; only the root is still open and must be cloned.
  auto snap = std::make_shared<ProfileNode>();
  snap->op = collector->root_->op;
  snap->detail = collector->root_->detail;
  snap->seconds = ElapsedSeconds(collector->start_);
  snap->children = collector->root_->children;
  for (const auto& child : snap->children) {
    snap->rows_out += child->rows_out;
  }
  return snap;
}

ProfileOpScope::ProfileOpScope(const char* op, std::string detail)
    : op_(op), detail_(std::move(detail)), active_(MetricsEnabled()) {
  if (!active_) return;
  start_ = std::chrono::steady_clock::now();
  ProfileCollector* collector = t_profile_collector;
  if (collector == nullptr || collector->current_ == nullptr) return;
  collector_ = collector;
  parent_ = collector->current_;
  auto node = std::make_shared<ProfileNode>();
  node->op = op_;
  node->detail = detail_;
  node_ = node.get();
  parent_->children.push_back(std::move(node));
  collector->current_ = node_;
}

void ProfileOpScope::SetDetail(std::string detail) {
  detail_ = std::move(detail);
  if (node_ != nullptr) node_->detail = detail_;
}

ProfileOpScope::~ProfileOpScope() {
  if (!active_) return;
  const double elapsed = ElapsedSeconds(start_);
  if (node_ != nullptr) {
    node_->rows_in = rows_in_;
    node_->rows_out = rows_out_;
    node_->batches = batches_;
    node_->seconds = elapsed;
    collector_->current_ = parent_;
  }
  MetricsRegistry& reg = GlobalMetrics();
  reg.GetHistogram("orpheus_operator_seconds",
                   "Wall time per executor operator.", LatencyBuckets(),
                   {{"op", op_}})
      ->Observe(elapsed);
  reg.GetCounter("orpheus_operator_rows",
                 "Rows produced per executor operator.", {{"op", op_}})
      ->Inc(rows_out_);
}

}  // namespace obs
}  // namespace orpheus
