#include "obs/metrics.h"

#include <cstdio>
#include <functional>
#include <sstream>
#include <thread>

namespace orpheus {
namespace obs {

namespace {
std::atomic<bool> g_metrics_enabled{true};

// %g keeps boundaries like 0.0025 and 10 in their natural short form.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

// Gauge rendering: integral values print as integers (keeping counts
// like fd totals byte-identical to the pre-double format), fractional
// values fall back to %g.
std::string FormatGaugeValue(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    return std::to_string(static_cast<int64_t>(v));
  }
  return FormatDouble(v);
}

std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// {k="v",...} with the trailing label appended when non-empty; used
// for both exposition lines and family child keys.
std::string RenderLabels(const LabelSet& labels, const std::string& extra_key,
                         const std::string& extra_val) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& kv : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += kv.first + "=\"" + EscapeLabelValue(kv.second) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out.push_back(',');
    out += extra_key + "=\"" + extra_val + "\"";
  }
  out.push_back('}');
  return out;
}
}  // namespace

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

namespace internal {
int ThreadShard() {
  static thread_local int shard = static_cast<int>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards);
  return shard;
}
}  // namespace internal

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), shards_(internal::kShards) {
  for (auto& s : shards_) {
    s.cells = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
    for (size_t i = 0; i <= bounds_.size(); ++i) s.cells[i] = 0;
  }
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1, 0);
  for (const auto& s : shards_) {
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      counts[i] += s.cells[i].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (uint64_t c : BucketCounts()) total += c;
  return total;
}

double Histogram::Sum() const {
  int64_t micro = 0;
  for (const auto& s : shards_)
    micro += s.sum_micro.load(std::memory_order_relaxed);
  return static_cast<double>(micro) * 1e-6;
}

std::vector<double> LatencyBuckets() {
  return {1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
          2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0};
}

std::vector<double> SizeBuckets() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256};
}

std::string MetricPoint::FlatName() const {
  if (labels.empty()) return name;
  std::string out = name + "{";
  bool first = true;
  for (const auto& kv : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += kv.first + "=" + kv.second;
  }
  out.push_back('}');
  return out;
}

MetricsRegistry::Family* MetricsRegistry::GetFamily(
    const std::string& name, MetricType type, const std::string& help,
    const std::vector<double>& bounds) {
  Family& fam = families_[name];
  if (fam.children.empty() && fam.help.empty()) {
    fam.type = type;
    fam.help = help;
    fam.bounds = bounds;
  }
  return &fam;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* fam = GetFamily(name, MetricType::kCounter, help, {});
  const std::string key = RenderLabels(labels, "", "");
  auto it = fam->by_label.find(key);
  if (it != fam->by_label.end()) return fam->counters[it->second].get();
  fam->counters.push_back(std::make_unique<Counter>());
  const size_t idx = fam->counters.size() - 1;
  fam->by_label[key] = idx;
  fam->children.emplace_back(labels, idx);
  return fam->counters[idx].get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* fam = GetFamily(name, MetricType::kGauge, help, {});
  const std::string key = RenderLabels(labels, "", "");
  auto it = fam->by_label.find(key);
  if (it != fam->by_label.end()) return fam->gauges[it->second].get();
  fam->gauges.push_back(std::make_unique<Gauge>());
  const size_t idx = fam->gauges.size() - 1;
  fam->by_label[key] = idx;
  fam->children.emplace_back(labels, idx);
  return fam->gauges[idx].get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         const std::vector<double>& bounds,
                                         const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* fam = GetFamily(name, MetricType::kHistogram, help, bounds);
  const std::string key = RenderLabels(labels, "", "");
  auto it = fam->by_label.find(key);
  if (it != fam->by_label.end()) return fam->histograms[it->second].get();
  fam->histograms.push_back(std::make_unique<Histogram>(fam->bounds));
  const size_t idx = fam->histograms.size() - 1;
  fam->by_label[key] = idx;
  fam->children.emplace_back(labels, idx);
  return fam->histograms[idx].get();
}

std::vector<MetricPoint> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricPoint> out;
  for (const auto& entry : families_) {
    const Family& fam = entry.second;
    for (const auto& child : fam.children) {
      MetricPoint p;
      p.name = entry.first;
      p.type = fam.type;
      p.labels = child.first;
      switch (fam.type) {
        case MetricType::kCounter:
          p.value = static_cast<double>(fam.counters[child.second]->Value());
          break;
        case MetricType::kGauge:
          p.value = fam.gauges[child.second]->Value();
          break;
        case MetricType::kHistogram: {
          const Histogram& h = *fam.histograms[child.second];
          p.bounds = h.bounds();
          p.bucket_counts = h.BucketCounts();
          p.count = h.Count();
          p.sum = h.Sum();
          break;
        }
      }
      out.push_back(std::move(p));
    }
  }
  return out;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& entry : families_) {
    const std::string& name = entry.first;
    const Family& fam = entry.second;
    if (fam.children.empty()) continue;
    const char* type_str = fam.type == MetricType::kCounter   ? "counter"
                           : fam.type == MetricType::kGauge   ? "gauge"
                                                              : "histogram";
    out << "# HELP " << name << " " << fam.help << "\n";
    out << "# TYPE " << name << " " << type_str << "\n";
    for (const auto& child : fam.children) {
      const LabelSet& labels = child.first;
      switch (fam.type) {
        case MetricType::kCounter:
          out << name << RenderLabels(labels, "", "") << " "
              << fam.counters[child.second]->Value() << "\n";
          break;
        case MetricType::kGauge:
          out << name << RenderLabels(labels, "", "") << " "
              << FormatGaugeValue(fam.gauges[child.second]->Value()) << "\n";
          break;
        case MetricType::kHistogram: {
          const Histogram& h = *fam.histograms[child.second];
          const std::vector<uint64_t> counts = h.BucketCounts();
          uint64_t cumulative = 0;
          for (size_t i = 0; i < h.bounds().size(); ++i) {
            cumulative += counts[i];
            out << name << "_bucket"
                << RenderLabels(labels, "le", FormatDouble(h.bounds()[i]))
                << " " << cumulative << "\n";
          }
          cumulative += counts.back();
          out << name << "_bucket" << RenderLabels(labels, "le", "+Inf")
              << " " << cumulative << "\n";
          out << name << "_sum" << RenderLabels(labels, "", "") << " "
              << FormatDouble(h.Sum()) << "\n";
          out << name << "_count" << RenderLabels(labels, "", "") << " "
              << cumulative << "\n";
          break;
        }
      }
    }
  }
  return out.str();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace orpheus
