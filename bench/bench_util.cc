#include "bench/bench_util.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <numeric>
#include <sstream>

#include "common/rng.h"
#include "common/str_util.h"
#include "obs/metrics.h"

namespace orpheus::bench {

wl::DatasetSpec SmallSpec(wl::WorkloadKind kind) {
  wl::DatasetSpec spec;
  spec.kind = kind;
  spec.num_versions = 150;
  spec.num_branches = 15;
  spec.inserts_per_version = 60;
  spec.num_attrs = 20;
  return spec;
}

wl::DatasetSpec MediumSpec(wl::WorkloadKind kind) {
  wl::DatasetSpec spec;
  spec.kind = kind;
  spec.num_versions = 250;
  spec.num_branches = 25;
  spec.inserts_per_version = 100;
  spec.num_attrs = 20;
  return spec;
}

wl::DatasetSpec LargeSpec(wl::WorkloadKind kind) {
  wl::DatasetSpec spec;
  spec.kind = kind;
  spec.num_versions = 400;
  spec.num_branches = 40;
  spec.inserts_per_version = 150;
  spec.num_attrs = 20;
  return spec;
}

wl::DatasetSpec Scaled(wl::DatasetSpec spec, double scale) {
  if (scale <= 0) scale = 1.0;
  spec.num_versions = std::max(10, static_cast<int>(spec.num_versions * scale));
  spec.inserts_per_version =
      std::max(5, static_cast<int>(spec.inserts_per_version * scale));
  spec.num_branches = std::max(2, static_cast<int>(spec.num_branches * scale));
  return spec;
}

Status MaterializeVersion(rel::Database* db, const wl::Dataset& data,
                          const wl::VersionSpec& v, const std::string& table) {
  rel::Chunk rows = data.RowsFor(v.rids);
  rel::Schema schema;
  schema.AddColumn("rid", rel::DataType::kInt64);
  for (const rel::ColumnDef& def : rows.schema().columns()) {
    schema.AddColumn(def.name, def.type);
  }
  rel::Chunk staged(schema);
  for (core::RecordId rid : v.rids) staged.mutable_column(0).AppendInt(rid);
  std::vector<uint32_t> all(rows.num_rows());
  std::iota(all.begin(), all.end(), 0);
  for (int c = 0; c < rows.num_columns(); ++c) {
    staged.mutable_column(c + 1).Gather(rows.column(c), all);
  }
  return db->AdoptTable(table, std::move(staged));
}

Status PopulateModel(rel::Database* db, core::DataModel* model,
                     const wl::Dataset& data) {
  ORPHEUS_RETURN_NOT_OK(model->Init());
  core::RecordId watermark = 0;  // rids are allocated in creation order
  const std::string stage = model->cvd_name() + "_loadstage";
  for (const wl::VersionSpec& v : data.versions()) {
    ORPHEUS_RETURN_NOT_OK(MaterializeVersion(db, data, v, stage));
    // New records of this version: rids at or above the watermark.
    std::vector<core::RecordId> fresh;
    for (core::RecordId rid : v.rids) {
      if (rid >= watermark) fresh.push_back(rid);
    }
    std::sort(fresh.begin(), fresh.end());
    rel::Chunk new_rows = data.RowsFor(fresh);
    rel::Schema rec_schema;
    rec_schema.AddColumn("rid", rel::DataType::kInt64);
    for (const rel::ColumnDef& def : new_rows.schema().columns()) {
      rec_schema.AddColumn(def.name, def.type);
    }
    rel::Chunk new_records(rec_schema);
    for (core::RecordId rid : fresh) new_records.mutable_column(0).AppendInt(rid);
    std::vector<uint32_t> all(new_rows.num_rows());
    std::iota(all.begin(), all.end(), 0);
    for (int c = 0; c < new_rows.num_columns(); ++c) {
      new_records.mutable_column(c + 1).Gather(new_rows.column(c), all);
    }
    if (!fresh.empty()) {
      watermark = std::max(watermark, fresh.back() + 1);
    }

    core::VersionId primary_parent = -1;
    if (!v.parents.empty()) {
      size_t best = 0;
      for (size_t p = 1; p < v.parents.size(); ++p) {
        if (v.parent_weights[p] > v.parent_weights[best]) best = p;
      }
      primary_parent = v.parents[best];
    }
    ORPHEUS_RETURN_NOT_OK(
        model->AddVersion(v.vid, stage, v.rids, new_records, primary_parent));
    ORPHEUS_RETURN_NOT_OK(db->DropTable(stage));
  }
  return Status::OK();
}

std::vector<core::VersionId> SampleVersions(const wl::Dataset& data, int count,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<core::VersionId> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(
        data.versions()[rng.Uniform(data.versions().size())].vid);
  }
  return out;
}

TablePrinter::TablePrinter(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  for (size_t r = 0; r < rows_.size(); ++r) {
    std::string line;
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      std::string cell = rows_[r][c];
      cell.resize(widths[c], ' ');
      line += cell;
      if (c + 1 < rows_[r].size()) line += "  ";
    }
    std::cout << line << "\n";
    if (r == 0) {
      std::string rule;
      for (size_t c = 0; c < widths.size(); ++c) {
        rule += std::string(widths[c], '-');
        if (c + 1 < widths.size()) rule += "  ";
      }
      std::cout << rule << "\n";
    }
  }
  std::cout << std::flush;
}

std::string FormatSeconds(double seconds) {
  if (seconds < 0.001) return StrFormat("%.0fus", seconds * 1e6);
  if (seconds < 1.0) return StrFormat("%.1fms", seconds * 1e3);
  return StrFormat("%.2fs", seconds);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string MetricsJson(const std::string& indent) {
  std::ostringstream out;
  out << "{";
  bool first = true;
  auto emit = [&](const std::string& key, double value) {
    if (!first) out << ",";
    first = false;
    out << "\n" << indent << "  \"" << JsonEscape(key) << "\": "
        << StrFormat("%.17g", value);
  };
  for (const obs::MetricPoint& point : obs::GlobalMetrics().Snapshot()) {
    if (point.type == obs::MetricType::kHistogram) {
      emit(point.FlatName() + "_count", static_cast<double>(point.count));
      emit(point.FlatName() + "_sum", point.sum);
    } else {
      emit(point.FlatName(), point.value);
    }
  }
  out << "\n" << indent << "}";
  return out.str();
}

std::string BenchJson(const std::string& bench,
                      const std::vector<std::string>& point_objects) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"" << JsonEscape(bench) << "\",\n  \"points\": [\n";
  for (size_t i = 0; i < point_objects.size(); ++i) {
    out << "    " << point_objects[i]
        << (i + 1 < point_objects.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"metrics\": " << MetricsJson("  ") << "\n}\n";
  return out.str();
}

bool WriteJsonFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot write " << path << "\n";
    return false;
  }
  out << content;
  std::cout << "\nwrote " << path << "\n";
  return true;
}

double PromValue(const std::string& text, const std::string& series) {
  std::istringstream in(text);
  std::string line;
  const std::string prefix = series + " ";
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) == 0) {
      return std::atof(line.c_str() + prefix.size());
    }
  }
  return 0;
}

std::string FormatBytes(int64_t bytes) {
  if (bytes >= (int64_t{1} << 30)) {
    return StrFormat("%.2f GB", static_cast<double>(bytes) / (1 << 30));
  }
  if (bytes >= (1 << 20)) {
    return StrFormat("%.1f MB", static_cast<double>(bytes) / (1 << 20));
  }
  return StrFormat("%.1f KB", static_cast<double>(bytes) / (1 << 10));
}

}  // namespace orpheus::bench
