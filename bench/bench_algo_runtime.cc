// Figures 10 & 11 reproduction: running time of the partitioning
// algorithms when solving Problem 1 (γ = 2|R|, binary search until
// 0.99γ <= S <= γ): total end-to-end time and per-iteration time, on
// SCI_* and CUR_* datasets.
//
// Paper shape: LYRESPLIT is ~10^2-10^5x faster than AGGLO and
// >10^5x faster than KMEANS, because it touches only the version
// graph while the baselines process the full bipartite graph.

#include <iostream>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/str_util.h"
#include "partition/baselines.h"
#include "partition/lyresplit.h"

using namespace orpheus;         // NOLINT
using namespace orpheus::bench;  // NOLINT

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 1.0);
  bool run_kmeans = flags.GetBool("kmeans", true);

  std::vector<wl::DatasetSpec> specs = {
      Scaled(SmallSpec(wl::WorkloadKind::kSci), scale),
      Scaled(MediumSpec(wl::WorkloadKind::kSci), scale),
      Scaled(LargeSpec(wl::WorkloadKind::kSci), scale),
      Scaled(SmallSpec(wl::WorkloadKind::kCur), scale),
      Scaled(MediumSpec(wl::WorkloadKind::kCur), scale),
      Scaled(LargeSpec(wl::WorkloadKind::kCur), scale),
  };

  std::cout << "=== Figures 10/11: partitioning algorithm running time"
               " (gamma = 2|R|) ===\n\n";
  TablePrinter table({"Dataset", "Algorithm", "Total", "Per-iteration",
                      "Iterations", "S (records)", "Cavg"});
  std::vector<std::string> points;  // for --json
  auto add_point = [&points](const std::string& dataset, const char* algorithm,
                             double total, int iters, int64_t storage,
                             double cavg) {
    points.push_back(StrFormat(
        "{\"dataset\": \"%s\", \"algorithm\": \"%s\", \"total_seconds\": %g, "
        "\"per_iteration_seconds\": %g, \"iterations\": %d, "
        "\"storage_records\": %lld, \"avg_checkout_cost\": %g}",
        dataset.c_str(), algorithm, total, total / std::max(1, iters), iters,
        static_cast<long long>(storage), cavg));
  };

  for (const wl::DatasetSpec& spec : specs) {
    wl::Dataset data = wl::Generate(spec);
    part::BipartiteGraph bip = data.BuildBipartite();
    core::VersionGraph graph = data.BuildGraph();
    int64_t gamma = 2 * data.num_records();

    {
      WallTimer timer;
      auto r = part::LyreSplit::RunForBudget(graph, gamma);
      double total = timer.ElapsedSeconds();
      if (!r.ok()) {
        std::cerr << "lyresplit: " << r.status().ToString() << "\n";
        return 1;
      }
      part::Partitioning p = std::move(r.value().partitioning);
      if (!p.ComputeCosts(bip).ok()) return 1;
      int iters = std::max(1, r.value().search_iterations);
      table.AddRow({spec.Name(), "LyreSplit", FormatSeconds(total),
                    FormatSeconds(total / iters), std::to_string(iters),
                    WithThousandsSep(p.storage_cost),
                    StrFormat("%.0f", p.avg_checkout_cost)});
      add_point(spec.Name(), "LyreSplit", total, iters, p.storage_cost,
                p.avg_checkout_cost);
    }
    {
      WallTimer timer;
      int iters = 0;
      auto r = part::RunAggloForBudget(bip, gamma, part::AggloOptions(), &iters);
      double total = timer.ElapsedSeconds();
      if (!r.ok()) {
        std::cerr << "agglo: " << r.status().ToString() << "\n";
        return 1;
      }
      table.AddRow({spec.Name(), "AGGLO", FormatSeconds(total),
                    FormatSeconds(total / std::max(1, iters)),
                    std::to_string(iters),
                    WithThousandsSep(r.value().storage_cost),
                    StrFormat("%.0f", r.value().avg_checkout_cost)});
      add_point(spec.Name(), "AGGLO", total, iters, r.value().storage_cost,
                r.value().avg_checkout_cost);
    }
    if (run_kmeans) {
      WallTimer timer;
      int iters = 0;
      auto r = part::RunKMeansForBudget(bip, gamma, part::KMeansOptions(), &iters);
      double total = timer.ElapsedSeconds();
      if (!r.ok()) {
        std::cerr << "kmeans: " << r.status().ToString() << "\n";
        return 1;
      }
      table.AddRow({spec.Name(), "KMEANS", FormatSeconds(total),
                    FormatSeconds(total / std::max(1, iters)),
                    std::to_string(iters),
                    WithThousandsSep(r.value().storage_cost),
                    StrFormat("%.0f", r.value().avg_checkout_cost)});
      add_point(spec.Name(), "KMEANS", total, iters, r.value().storage_cost,
                r.value().avg_checkout_cost);
    }
  }
  table.Print();
  std::cout << "\nExpected shape: LyreSplit total time orders of magnitude"
               " below AGGLO, which is itself far below KMEANS.\n";
  std::string json_path = flags.GetString("json", "");
  if (!json_path.empty() &&
      !WriteJsonFile(json_path, BenchJson("algo_runtime", points))) {
    return 1;
  }
  return 0;
}
