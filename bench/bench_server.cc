// Versioning-server benchmark: sessions-vs-throughput sweep over an
// in-process server. For each point in the sweep, a fresh engine +
// Server is stood up on an ephemeral loopback port and N client
// threads run a mixed workload through real TCP connections:
//
//   per op: checkout version 1 -> UPDATE the staged table -> commit,
//           followed by `reads` pinned-version SELECTs
//
// Commits serialize on the engine's exclusive lock; SELECTs overlap
// under the shared lock. The sweep shows how total throughput behaves
// as sessions contend for one engine (on a single-core box, expect
// flat-to-slightly-falling — the sweep then measures locking/transport
// overhead, not parallel speedup).
//
// Usage: bench_server [--ops=<n>] [--reads=<n>] [--rows=<n>]
//                     [--sweep=1,2,4,8] [--durable] [--json=<path>]
//
// --json writes machine-readable results (BENCH_server.json in CI).
// --durable backs each sweep point with a temp-dir WAL, so commits pay
// real fdatasyncs and the scraped group-commit batch deltas become
// meaningful (in-memory runs report them as zero).

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "core/engine_api.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/io_util.h"

using namespace orpheus;         // NOLINT
using namespace orpheus::bench;  // NOLINT

namespace {

struct SweepPoint {
  int sessions = 0;
  int write_ops = 0;   // checkout+update+commit triples, total
  int read_ops = 0;    // versioned SELECTs, total
  double seconds = 0;
  double commits_per_sec = 0;
  double ops_per_sec = 0;  // writes + reads
  // Server-side deltas from `metrics` scrapes bracketing the point:
  // time spent queued on the engine lock, and how well group commit
  // batched the concurrent WAL appends.
  double lock_wait_exclusive_s = 0;
  double lock_wait_shared_s = 0;
  double gc_batch_mean = 0;  // mean records per WAL group
  int64_t wal_syncs = 0;
  int64_t wal_records = 0;
};

// One `metrics` round-trip over a throwaway connection: the scrape
// goes through the real framed protocol, like any other verb.
Result<std::string> Scrape(uint16_t port) {
  server::Client client;
  ORPHEUS_RETURN_NOT_OK(client.Connect("127.0.0.1", port));
  ORPHEUS_ASSIGN_OR_RETURN(std::string text, client.Execute("metrics"));
  (void)client.Execute("exit");
  return text;
}

rel::Chunk MakeRows(int n) {
  rel::Schema schema;
  schema.AddColumn("k", rel::DataType::kInt64);
  schema.AddColumn("payload", rel::DataType::kString);
  schema.AddColumn("score", rel::DataType::kDouble);
  rel::Chunk rows(schema);
  for (int i = 0; i < n; ++i) {
    rows.mutable_column(0).AppendInt(i);
    rows.mutable_column(1).AppendString("row_payload_" + std::to_string(i));
    rows.mutable_column(2).AppendDouble(0.5 * i);
  }
  return rows;
}

Result<SweepPoint> RunPointIn(int sessions, int ops, int reads, int rows,
                              const std::string& db_dir) {
  SweepPoint point;
  point.sessions = sessions;

  core::EngineApi api;
  if (!db_dir.empty()) ORPHEUS_RETURN_NOT_OK(api.orpheus()->Open(db_dir));
  core::CvdOptions options;
  options.primary_key = {"k"};
  ORPHEUS_RETURN_NOT_OK(
      api.orpheus()->InitCvd("bench", MakeRows(rows), options, "init").status());

  server::ServerOptions server_options;
  // +1 worker: the before/after `metrics` scrape must not steal a
  // handler slot from the N measured sessions.
  server_options.workers = sessions + 1;
  server::Server srv(&api, server_options);
  ORPHEUS_RETURN_NOT_OK(srv.Start());
  ORPHEUS_ASSIGN_OR_RETURN(std::string before, Scrape(srv.port()));

  std::vector<std::thread> clients;
  std::vector<Status> failures(static_cast<size_t>(sessions), Status::OK());
  clients.reserve(static_cast<size_t>(sessions));
  WallTimer timer;
  for (int c = 0; c < sessions; ++c) {
    clients.emplace_back([&srv, &failures, c, ops, reads] {
      auto fail = [&failures, c](const Status& st) { failures[c] = st; };
      server::Client client;
      Status st = client.Connect("127.0.0.1", srv.port());
      if (!st.ok()) return fail(st);
      for (int i = 0; i < ops; ++i) {
        std::string w = "w" + std::to_string(c) + "_" + std::to_string(i);
        auto r = client.Execute("checkout bench -v 1 -t " + w);
        if (!r.ok()) return fail(r.status());
        r = client.Execute("sql UPDATE " + w + " SET score = " +
                           std::to_string(i) + ".25 WHERE k = 1");
        if (!r.ok()) return fail(r.status());
        r = client.Execute("commit -t " + w + " -m bench");
        if (!r.ok()) return fail(r.status());
        for (int j = 0; j < reads; ++j) {
          r = client.Execute("run SELECT * FROM VERSION 1 OF CVD bench");
          if (!r.ok()) return fail(r.status());
        }
      }
      (void)client.Execute("exit");
    });
  }
  for (std::thread& t : clients) t.join();
  point.seconds = timer.ElapsedSeconds();
  ORPHEUS_ASSIGN_OR_RETURN(std::string after, Scrape(srv.port()));
  srv.Stop();
  for (const Status& st : failures) ORPHEUS_RETURN_NOT_OK(st);

  auto delta = [&](const std::string& series) {
    return PromValue(after, series) - PromValue(before, series);
  };
  point.lock_wait_exclusive_s =
      delta("orpheus_lock_wait_seconds_sum{mode=\"exclusive\"}");
  point.lock_wait_shared_s =
      delta("orpheus_lock_wait_seconds_sum{mode=\"shared\"}");
  point.wal_syncs = static_cast<int64_t>(delta("orpheus_wal_syncs_total"));
  point.wal_records = static_cast<int64_t>(delta("orpheus_wal_records_total"));
  const double groups = delta("orpheus_wal_group_size_count");
  point.gc_batch_mean =
      groups > 0 ? delta("orpheus_wal_group_size_sum") / groups : 0;

  point.write_ops = sessions * ops;
  point.read_ops = sessions * ops * reads;
  point.commits_per_sec = point.write_ops / point.seconds;
  point.ops_per_sec = (point.write_ops + point.read_ops) / point.seconds;
  return point;
}

// Wraps RunPointIn so the durable variant's temp directory outlives the
// engine (flock + WAL close before the tree is deleted).
Result<SweepPoint> RunPoint(int sessions, int ops, int reads, int rows,
                            bool durable) {
  std::string dir;
  if (durable) {
    ORPHEUS_ASSIGN_OR_RETURN(dir,
                             storage::MakeTempDir("orpheus_bench_server_"));
  }
  Result<SweepPoint> point =
      RunPointIn(sessions, ops, reads, rows, dir.empty() ? "" : dir + "/db");
  if (!dir.empty()) (void)storage::RemoveDirRecursive(dir);
  return point;
}

std::string ToJson(const std::vector<SweepPoint>& sweep, int ops, int reads,
                   int rows, bool durable) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"server\",\n"
      << "  \"ops_per_session\": " << ops << ",\n"
      << "  \"reads_per_op\": " << reads << ",\n"
      << "  \"rows\": " << rows << ",\n"
      << "  \"durable\": " << (durable ? "true" : "false") << ",\n"
      << "  \"sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    out << "    {\"sessions\": " << p.sessions
        << ", \"write_ops\": " << p.write_ops
        << ", \"read_ops\": " << p.read_ops << ", \"seconds\": " << p.seconds
        << ", \"commits_per_sec\": " << p.commits_per_sec
        << ", \"ops_per_sec\": " << p.ops_per_sec
        << ", \"lock_wait_exclusive_s\": " << p.lock_wait_exclusive_s
        << ", \"lock_wait_shared_s\": " << p.lock_wait_shared_s
        << ", \"gc_batch_mean\": " << p.gc_batch_mean
        << ", \"wal_syncs\": " << p.wal_syncs
        << ", \"wal_records\": " << p.wal_records << "}"
        << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"metrics\": " << MetricsJson("  ") << "\n}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int ops = static_cast<int>(flags.GetInt("ops", 20));
  const int reads = static_cast<int>(flags.GetInt("reads", 2));
  const int rows = static_cast<int>(flags.GetInt("rows", 500));
  const bool durable = flags.GetBool("durable", false);

  std::vector<int> sweep_sessions;
  for (const std::string& piece :
       Split(flags.GetString("sweep", "1,2,4,8"), ',')) {
    sweep_sessions.push_back(std::atoi(std::string(Trim(piece)).c_str()));
  }

  std::cout << "bench_server: " << ops << " commit-ops/session, " << reads
            << " reads/op, " << rows << " rows"
            << (durable ? ", durable (temp-dir WAL)" : ", in-memory")
            << "\n\n";
  std::cout << "sessions  commits/s   total ops/s   wall s  "
               "lock-wait(x)  gc batch\n";

  std::vector<SweepPoint> sweep;
  for (int sessions : sweep_sessions) {
    auto point = RunPoint(sessions, ops, reads, rows, durable);
    if (!point.ok()) {
      std::cerr << "error: sweep point " << sessions << ": "
                << point.status().ToString() << "\n";
      return 1;
    }
    sweep.push_back(point.value());
    const SweepPoint& p = sweep.back();
    std::printf("%8d  %9.1f  %12.1f  %7.3f  %11.3fs  %8.1f\n", p.sessions,
                p.commits_per_sec, p.ops_per_sec, p.seconds,
                p.lock_wait_exclusive_s, p.gc_batch_mean);
  }

  std::cout << "\nExpected shape: commits/s roughly flat across sessions\n"
               "(commits serialize on the exclusive lock); total ops/s at or\n"
               "above the 1-session line (reads overlap under the shared\n"
               "lock; on a single-core box transport overhead may eat this).\n";

  std::string json_path = flags.GetString("json", "");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 1;
    }
    out << ToJson(sweep, ops, reads, rows, durable);
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
