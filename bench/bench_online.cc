// Figures 14 & 15 reproduction: online maintenance and migration.
//
// Versions stream in; after each commit the online maintainer places
// the version (join parent's partition or open a new one), re-runs
// LYRESPLIT for the best achievable checkout cost C*avg, and migrates
// when Cavg > µ C*avg.
//
// Panel (a): checkout-cost trajectory (live Cavg vs C*avg) for
// µ ∈ {1.5, 2} — live cost diverges slowly and snaps back on
// migration; larger µ migrates less often.
// Panel (b): migration times across µ ∈ {1.05, 1.2, 1.5, 2, 2.5}
// with the intelligent engine, plus the naive rebuild at µ = 1.05 —
// intelligent is several times cheaper, and cheaper still for small µ.

#include <iostream>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/str_util.h"
#include "partition/online.h"

using namespace orpheus;         // NOLINT
using namespace orpheus::bench;  // NOLINT

namespace {

struct RunSummary {
  int migrations = 0;
  double total_migration_seconds = 0;
  double max_divergence = 0;  // max Cavg / C*avg observed
  int64_t rows_moved = 0;
};

Result<RunSummary> StreamVersions(const wl::Dataset& data, double gamma_factor,
                                  double mu, bool intelligent, bool trace) {
  rel::Database db;
  ORPHEUS_RETURN_NOT_OK(db.AdoptTable("src_data", data.AllRecordRows(), {"rid"}));
  part::PartitionStore store(&db, "on", "src_data");
  part::OnlineOptions options;
  options.gamma_factor = gamma_factor;
  options.mu = mu;
  options.intelligent_migration = intelligent;
  part::OnlineMaintainer maintainer(&store, options);

  RunSummary summary;
  int step_index = 0;
  int trace_every = std::max<int>(1, static_cast<int>(data.versions().size()) / 12);
  for (const wl::VersionSpec& v : data.versions()) {
    part::VersionArrival arrival{v.vid, v.parents, v.parent_weights, v.rids};
    ORPHEUS_ASSIGN_OR_RETURN(part::OnlineStep step,
                             maintainer.OnVersionCommitted(arrival));
    if (step.cavg_best > 0) {
      summary.max_divergence =
          std::max(summary.max_divergence, step.cavg / step.cavg_best);
    }
    if (step.migrated) {
      ++summary.migrations;
      summary.total_migration_seconds += step.migration.seconds;
      summary.rows_moved +=
          step.migration.rows_inserted + step.migration.rows_deleted;
      if (trace) {
        std::cout << StrFormat(
            "    migration at commit %4d: %s (%lld rows moved, %d rebuilt, "
            "%d modified)\n",
            step_index, FormatSeconds(step.migration.seconds).c_str(),
            static_cast<long long>(step.migration.rows_inserted +
                                   step.migration.rows_deleted),
            step.migration.partitions_rebuilt,
            step.migration.partitions_modified);
      }
    }
    if (trace && step_index % trace_every == 0) {
      std::cout << StrFormat("    commit %4d: Cavg=%8.0f  C*avg=%8.0f  S=%s\n",
                             step_index, step.cavg, step.cavg_best,
                             WithThousandsSep(step.storage).c_str());
    }
    ++step_index;
  }
  return summary;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 1.0);

  wl::DatasetSpec spec;
  spec.num_versions = static_cast<int>(500 * scale);
  spec.num_branches = static_cast<int>(50 * scale);
  spec.inserts_per_version = 50;
  spec.num_attrs = 10;
  wl::Dataset data = wl::Generate(spec);

  std::cout << "=== Figures 14/15: online maintenance & migration ("
            << data.versions().size() << " streamed commits, |R|="
            << WithThousandsSep(data.num_records()) << ") ===\n";

  std::vector<std::string> points;  // for --json
  auto add_point = [&points](const char* engine, double gamma_factor,
                             double mu, const RunSummary& s) {
    points.push_back(StrFormat(
        "{\"engine\": \"%s\", \"gamma_factor\": %g, \"mu\": %g, "
        "\"migrations\": %d, \"total_migration_seconds\": %g, "
        "\"max_divergence\": %g, \"rows_moved\": %lld}",
        engine, gamma_factor, mu, s.migrations, s.total_migration_seconds,
        s.max_divergence, static_cast<long long>(s.rows_moved)));
  };

  for (double gamma_factor : {1.5, 2.0}) {
    std::cout << "\n--- gamma = " << gamma_factor << " |R| ---\n";
    std::cout << "  (a) checkout-cost trajectory:\n";
    for (double mu : {1.5, 2.0}) {
      std::cout << "  mu = " << mu << ":\n";
      auto r = StreamVersions(data, gamma_factor, mu, /*intelligent=*/true,
                              /*trace=*/true);
      if (!r.ok()) {
        std::cerr << "error: " << r.status().ToString() << "\n";
        return 1;
      }
      std::cout << StrFormat(
          "    -> %d migrations, max divergence %.2f (cap mu=%.2f)\n",
          r.value().migrations, r.value().max_divergence, mu);
    }

    std::cout << "  (b) migration cost across mu (intelligent vs naive):\n";
    TablePrinter table({"Engine", "mu", "Migrations", "Total time",
                        "Avg time", "Rows moved"});
    for (double mu : {1.05, 1.2, 1.5, 2.0, 2.5}) {
      auto r = StreamVersions(data, gamma_factor, mu, /*intelligent=*/true,
                              /*trace=*/false);
      if (!r.ok()) {
        std::cerr << "error: " << r.status().ToString() << "\n";
        return 1;
      }
      const RunSummary& s = r.value();
      table.AddRow({"intelligent", StrFormat("%.2f", mu),
                    std::to_string(s.migrations),
                    FormatSeconds(s.total_migration_seconds),
                    FormatSeconds(s.total_migration_seconds /
                                  std::max(1, s.migrations)),
                    WithThousandsSep(s.rows_moved)});
      add_point("intelligent", gamma_factor, mu, s);
    }
    {
      auto r = StreamVersions(data, gamma_factor, 1.05, /*intelligent=*/false,
                              /*trace=*/false);
      if (!r.ok()) {
        std::cerr << "error: " << r.status().ToString() << "\n";
        return 1;
      }
      const RunSummary& s = r.value();
      table.AddRow({"naive", "1.05", std::to_string(s.migrations),
                    FormatSeconds(s.total_migration_seconds),
                    FormatSeconds(s.total_migration_seconds /
                                  std::max(1, s.migrations)),
                    WithThousandsSep(s.rows_moved)});
      add_point("naive", gamma_factor, 1.05, s);
    }
    table.Print();
  }
  std::cout << "\nExpected shape: smaller mu -> more but cheaper migrations;"
               " intelligent moves ~1/10 the rows of naive at mu=1.05.\n";
  std::string json_path = flags.GetString("json", "");
  if (!json_path.empty() &&
      !WriteJsonFile(json_path, BenchJson("online", points))) {
    return 1;
  }
  return 0;
}
