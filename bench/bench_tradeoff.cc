// Figure 9 reproduction: the storage-size vs checkout-time trade-off
// for LYRESPLIT (sweeping δ), AGGLO (sweeping BC), and KMEANS
// (sweeping K), on SCI and CUR datasets.
//
// Each sweep point reports the model storage cost S (records), the
// model checkout cost Cavg (records), and a measured average checkout
// wall time over sampled versions with the partitioning actually
// materialized.
//
// Paper shape: all curves fall then flatten as storage grows;
// LYRESPLIT dominates (lower checkout time at equal storage),
// especially at small budgets.

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/str_util.h"
#include "partition/baselines.h"
#include "partition/lyresplit.h"
#include "partition/partition_store.h"

using namespace orpheus;         // NOLINT
using namespace orpheus::bench;  // NOLINT

namespace {

// Builds the partitioning physically and measures mean checkout time.
Result<double> MeasureCheckout(rel::Database* db, const wl::Dataset& data,
                               const part::Partitioning& partitioning,
                               const std::vector<core::VersionId>& sample) {
  part::PartitionStore store(db, "sweep", "src_data");
  std::map<core::VersionId, std::vector<core::RecordId>> rids;
  for (const wl::VersionSpec& v : data.versions()) rids[v.vid] = v.rids;
  ORPHEUS_RETURN_NOT_OK(store.Build(partitioning, std::move(rids)));
  // First pass warms lazily built indexes; second pass is timed.
  double best = 1e18;
  for (int pass = 0; pass < 2; ++pass) {
    WallTimer timer;
    int count = 0;
    for (core::VersionId vid : sample) {
      std::string table = "chk" + std::to_string(count++);
      ORPHEUS_RETURN_NOT_OK(store.CheckoutVersion(vid, table));
      ORPHEUS_RETURN_NOT_OK(db->DropTable(table));
    }
    best = std::min(best,
                    timer.ElapsedSeconds() / static_cast<double>(sample.size()));
  }
  return best;
}

// One sweep point of the Figure 9 panels, kept for --json.
struct TradeoffPoint {
  std::string dataset;
  std::string algorithm;
  std::string param;
  size_t partitions = 0;
  int64_t storage_records = 0;
  double avg_checkout_records = 0;
  double checkout_s = 0;
};

std::string ToJson(const std::vector<TradeoffPoint>& points) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"tradeoff\",\n  \"points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const TradeoffPoint& p = points[i];
    out << "    {\"dataset\": \"" << JsonEscape(p.dataset)
        << "\", \"algorithm\": \"" << p.algorithm << "\", \"param\": \""
        << JsonEscape(p.param) << "\", \"partitions\": " << p.partitions
        << ", \"storage_records\": " << p.storage_records
        << ", \"avg_checkout_records\": " << p.avg_checkout_records
        << ", \"checkout_s\": " << p.checkout_s << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"metrics\": " << MetricsJson("  ") << "\n}\n";
  return out.str();
}

Status RunPanel(const wl::DatasetSpec& spec, int sample_count,
                std::vector<TradeoffPoint>* points) {
  wl::Dataset data = wl::Generate(spec);
  part::BipartiteGraph bip = data.BuildBipartite();
  core::VersionGraph graph = data.BuildGraph();

  rel::Database db;
  ORPHEUS_RETURN_NOT_OK(db.AdoptTable("src_data", data.AllRecordRows(), {"rid"}));
  std::vector<core::VersionId> sample = SampleVersions(data, sample_count, 5);

  std::cout << spec.Name() << "  (|R|=" << WithThousandsSep(data.num_records())
            << ", |E|=" << WithThousandsSep(data.num_edges())
            << ", min Cavg=" << StrFormat("%.0f", bip.MinCheckoutCost())
            << ")\n";
  TablePrinter table({"Algorithm", "Param", "Partitions", "S (records)",
                      "Cavg (records)", "Checkout (measured)"});

  for (double delta : {0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0}) {
    ORPHEUS_ASSIGN_OR_RETURN(part::LyreSplitResult r,
                             part::LyreSplit::Run(graph, delta));
    part::Partitioning p = std::move(r.partitioning);
    ORPHEUS_RETURN_NOT_OK(p.ComputeCosts(bip));
    ORPHEUS_ASSIGN_OR_RETURN(double seconds,
                             MeasureCheckout(&db, data, p, sample));
    table.AddRow({"LyreSplit", StrFormat("d=%.2f", delta),
                  std::to_string(p.num_partitions()),
                  WithThousandsSep(p.storage_cost),
                  StrFormat("%.0f", p.avg_checkout_cost),
                  FormatSeconds(seconds)});
    points->push_back({spec.Name(), "lyresplit", StrFormat("d=%.2f", delta),
                       p.num_partitions(), p.storage_cost,
                       p.avg_checkout_cost, seconds});
  }
  for (int64_t factor : {12, 6, 3, 2}) {
    part::AggloOptions options;
    options.capacity = data.num_records() / factor;
    ORPHEUS_ASSIGN_OR_RETURN(part::Partitioning p,
                             part::RunAgglo(bip, options));
    ORPHEUS_ASSIGN_OR_RETURN(double seconds,
                             MeasureCheckout(&db, data, p, sample));
    table.AddRow({"AGGLO", "BC=|R|/" + std::to_string(factor),
                  std::to_string(p.num_partitions()),
                  WithThousandsSep(p.storage_cost),
                  StrFormat("%.0f", p.avg_checkout_cost),
                  FormatSeconds(seconds)});
    points->push_back({spec.Name(), "agglo",
                       "BC=|R|/" + std::to_string(factor),
                       p.num_partitions(), p.storage_cost,
                       p.avg_checkout_cost, seconds});
  }
  for (int k : {2, 4, 8, 16, 32}) {
    part::KMeansOptions options;
    options.k = k;
    ORPHEUS_ASSIGN_OR_RETURN(part::Partitioning p, part::RunKMeans(bip, options));
    ORPHEUS_ASSIGN_OR_RETURN(double seconds,
                             MeasureCheckout(&db, data, p, sample));
    table.AddRow({"KMEANS", "K=" + std::to_string(k),
                  std::to_string(p.num_partitions()),
                  WithThousandsSep(p.storage_cost),
                  StrFormat("%.0f", p.avg_checkout_cost),
                  FormatSeconds(seconds)});
    points->push_back({spec.Name(), "kmeans", "K=" + std::to_string(k),
                       p.num_partitions(), p.storage_cost,
                       p.avg_checkout_cost, seconds});
  }
  table.Print();
  std::cout << "\n";
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  double scale = flags.GetDouble("scale", 1.0);
  int sample_count = static_cast<int>(flags.GetInt("sample", 15));

  std::cout << "=== Figure 9: storage vs checkout-time trade-off ===\n\n";
  // Scan-dominated regime (few attributes, many versions) so measured
  // times track the cost model as in the paper's disk-resident setup.
  auto make_spec = [&](wl::WorkloadKind kind, int versions, int inserts) {
    wl::DatasetSpec spec;
    spec.kind = kind;
    spec.num_versions = static_cast<int>(versions * scale);
    spec.num_branches = spec.num_versions / 8;
    spec.inserts_per_version = inserts;
    spec.num_attrs = 6;
    return spec;
  };
  std::vector<wl::DatasetSpec> specs = {
      make_spec(wl::WorkloadKind::kSci, 400, 40),
      make_spec(wl::WorkloadKind::kSci, 800, 50),
      make_spec(wl::WorkloadKind::kCur, 400, 40),
      make_spec(wl::WorkloadKind::kCur, 800, 50),
  };
  std::vector<TradeoffPoint> points;
  for (const wl::DatasetSpec& spec : specs) {
    Status st = RunPanel(spec, sample_count, &points);
    if (!st.ok()) {
      std::cerr << "error: " << st.ToString() << "\n";
      return 1;
    }
  }
  std::cout << "Expected shape: checkout falls then flattens as S grows;"
               " at equal S, LyreSplit's Cavg/time is lowest.\n";
  std::string json_path = flags.GetString("json", "");
  if (!json_path.empty() && !WriteJsonFile(json_path, ToJson(points))) {
    return 1;
  }
  return 0;
}
