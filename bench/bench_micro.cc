// Google-benchmark microbenchmarks for OrpheusDB's primitive
// operations: the array operators behind the data models, the
// checkout join, commit under the two main data models, the
// LYRESPLIT partitioner itself, and the parallel execution pipeline
// (thread-count sweeps over a large analytic scan, group-by,
// hash join, and ORDER BY sort).
//
// Flags (besides the usual --benchmark_* ones):
//   --scale=<f>    grow the datasets by f (default 1)
//   --threads=<n>  default scan parallelism for the non-sweep
//                  benchmarks (0 = hardware; sweeps set their own)
//   --json=<path>  machine-readable results (BENCH_micro.json in CI),
//                  including a dump of the engine metrics registry

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/data_model.h"
#include "partition/lyresplit.h"
#include "relstore/database.h"
#include "relstore/intarray_codec.h"
#include "workload/generator.h"

namespace orpheus {

// Set from the command line in main().
double g_micro_scale = 1.0;
int g_micro_threads = 0;  // 0 = hardware default

namespace {

// Shared medium dataset (generated once; benchmarks only read it).
const wl::Dataset& SharedData() {
  static const wl::Dataset* data = [] {
    wl::DatasetSpec spec = bench::MediumSpec(wl::WorkloadKind::kSci);
    spec.num_attrs = 10;
    spec = bench::Scaled(spec, g_micro_scale);
    return new wl::Dataset(wl::Generate(spec));
  }();
  return *data;
}

// Large flat table for the scan sweeps (id INT, bucket INT, val
// DOUBLE), built once.
constexpr int64_t kScanRowsBase = 400000;

int64_t ScanRows() {
  return static_cast<int64_t>(static_cast<double>(kScanRowsBase) *
                              g_micro_scale);
}

rel::Database& ScanDb() {
  static rel::Database* db = [] {
    auto* d = new rel::Database;
    (void)d->Execute("CREATE TABLE scan_t (id INT, bucket INT, val DOUBLE)");
    auto table = d->GetTable("scan_t");
    rel::Chunk& chunk = table.value()->mutable_chunk();
    Rng rng(20260729);
    for (int64_t r = 0; r < ScanRows(); ++r) {
      chunk.mutable_column(0).AppendInt(r);
      chunk.mutable_column(1).AppendInt(static_cast<int64_t>(rng.Uniform(97)));
      chunk.mutable_column(2).Append(rel::Value::Double(rng.NextDouble() * 100));
    }
    return d;
  }();
  return *db;
}

// The ROADMAP "scale the relstore" acceptance benchmark: a predicate
// scan over the large table, swept over thread counts. Arg(n) is the
// thread count; compare items/sec across Args for the speedup.
void BM_ParallelScanThreads(benchmark::State& state) {
  rel::Database& db = ScanDb();
  SetExecThreads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = db.Execute(
        "SELECT count(*) FROM scan_t "
        "WHERE val * 0.5 + bucket >= 40.0 AND bucket % 7 <> 3");
    if (!r.ok()) {
      state.SkipWithError("scan failed");
      break;
    }
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * ScanRows());
  SetExecThreads(g_micro_threads);
}
BENCHMARK(BM_ParallelScanThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Grouped aggregation over the same table: exercises the per-batch
// partial-state merge path.
void BM_ParallelGroupByThreads(benchmark::State& state) {
  rel::Database& db = ScanDb();
  SetExecThreads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = db.Execute(
        "SELECT bucket, count(*), sum(val), min(val), max(val) "
        "FROM scan_t GROUP BY bucket");
    if (!r.ok()) {
      state.SkipWithError("group-by failed");
      break;
    }
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * ScanRows());
  SetExecThreads(g_micro_threads);
}
BENCHMARK(BM_ParallelGroupByThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Join-shaped tables for the join/sort sweeps: a fact table (1/2 of
// ScanRows(), ~4 rows per key) joined to a dimension table (1/8 of
// ScanRows(), ~1 row per key), built once.
rel::Database& JoinDb() {
  static rel::Database* db = [] {
    auto* d = new rel::Database;
    (void)d->Execute("CREATE TABLE fact_t (id INT, k INT, val DOUBLE)");
    (void)d->Execute("CREATE TABLE dim_t (k INT, weight DOUBLE)");
    const int64_t fact_rows = ScanRows() / 2;
    const int64_t dim_rows = ScanRows() / 8;
    Rng rng(20260730);
    {
      rel::Chunk& chunk = d->GetTable("fact_t").value()->mutable_chunk();
      for (int64_t r = 0; r < fact_rows; ++r) {
        chunk.mutable_column(0).AppendInt(r);
        chunk.mutable_column(1).AppendInt(
            static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(dim_rows))));
        chunk.mutable_column(2).Append(rel::Value::Double(rng.NextDouble()));
      }
    }
    {
      rel::Chunk& chunk = d->GetTable("dim_t").value()->mutable_chunk();
      for (int64_t r = 0; r < dim_rows; ++r) {
        chunk.mutable_column(0).AppendInt(r);
        chunk.mutable_column(1).Append(rel::Value::Double(rng.NextDouble()));
      }
    }
    return d;
  }();
  return *db;
}

// Hash-join build+probe+materialize swept over thread counts (the
// ISSUE-3 parallel-join acceptance benchmark). Arg(n) is the thread
// count; compare items/sec across Args for the speedup.
void BM_ParallelJoinThreads(benchmark::State& state) {
  rel::Database& db = JoinDb();
  SetExecThreads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = db.Execute(
        "SELECT count(*), sum(f.val * d.weight) FROM fact_t f, dim_t d "
        "WHERE f.k = d.k");
    if (!r.ok()) {
      state.SkipWithError("join failed");
      break;
    }
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * (ScanRows() / 2));
  SetExecThreads(g_micro_threads);
}
BENCHMARK(BM_ParallelJoinThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ORDER BY over the large scan table: batch-parallel sort-key
// evaluation plus the deterministic parallel merge sort.
void BM_ParallelSortThreads(benchmark::State& state) {
  rel::Database& db = ScanDb();
  SetExecThreads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = db.Execute(
        "SELECT id, bucket, val FROM scan_t ORDER BY val DESC, id");
    if (!r.ok()) {
      state.SkipWithError("sort failed");
      break;
    }
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * ScanRows());
  SetExecThreads(g_micro_threads);
}
BENCHMARK(BM_ParallelSortThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ArrayContainmentScan(benchmark::State& state) {
  // The combined-table checkout predicate: ARRAY[v] <@ vlist per row.
  rel::Database db;
  (void)db.Execute("CREATE TABLE t (rid INT, vlist INT[])");
  {
    auto table = db.GetTable("t");
    rel::Chunk& chunk = table.value()->mutable_chunk();
    for (int64_t r = 0; r < state.range(0); ++r) {
      chunk.mutable_column(0).AppendInt(r);
      rel::IntArray vlist;
      for (int64_t v = r % 7; v < 10; ++v) vlist.push_back(v);
      chunk.mutable_column(1).AppendArray(std::move(vlist));
    }
  }
  for (auto _ : state) {
    auto r = db.Execute("SELECT count(*) FROM t WHERE ARRAY[5] <@ vlist");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ArrayContainmentScan)->Arg(10000)->Arg(50000);

void BM_CheckoutUnnestJoin(benchmark::State& state) {
  // The split-by-rlist checkout query on a populated model.
  const wl::Dataset& data = SharedData();
  rel::Database db;
  auto model = core::MakeDataModel(core::DataModelKind::kSplitByRlist, &db, "m",
                                   data.DataSchema());
  if (!bench::PopulateModel(&db, model.get(), data).ok()) {
    state.SkipWithError("populate failed");
    return;
  }
  core::VersionId latest = data.versions().back().vid;
  int i = 0;
  for (auto _ : state) {
    std::string table = "chk" + std::to_string(i++);
    if (!model->CheckoutVersion(latest, table).ok()) {
      state.SkipWithError("checkout failed");
      return;
    }
    (void)db.DropTable(table);
  }
}
BENCHMARK(BM_CheckoutUnnestJoin);

void BM_CommitRlistVsCombined(benchmark::State& state) {
  // Commit (unchanged latest version) under rlist (arg 0) vs combined
  // (arg 1) — the Figure 3(b) gap in microcosm.
  const wl::Dataset& data = SharedData();
  core::DataModelKind kind = state.range(0) == 0
                                 ? core::DataModelKind::kSplitByRlist
                                 : core::DataModelKind::kCombinedTable;
  rel::Database db;
  auto model = core::MakeDataModel(kind, &db, "m", data.DataSchema());
  if (!bench::PopulateModel(&db, model.get(), data).ok()) {
    state.SkipWithError("populate failed");
    return;
  }
  const wl::VersionSpec& latest = data.versions().back();
  if (!model->CheckoutVersion(latest.vid, "work").ok()) {
    state.SkipWithError("checkout failed");
    return;
  }
  core::VersionId next = static_cast<core::VersionId>(data.versions().size()) + 1;
  for (auto _ : state) {
    if (!model->AddVersion(next++, "work", latest.rids, rel::Chunk(),
                           latest.vid).ok()) {
      state.SkipWithError("commit failed");
      return;
    }
  }
}
BENCHMARK(BM_CommitRlistVsCombined)->Arg(0)->Arg(1);

void BM_RlistCompression(benchmark::State& state) {
  // §3.2's compression remark as an ablation: encode/decode the
  // rlists of a generated workload and report the size ratio.
  const wl::Dataset& data = SharedData();
  int64_t plain = 0;
  int64_t encoded_bytes = 0;
  for (auto _ : state) {
    plain = 0;
    encoded_bytes = 0;
    for (const wl::VersionSpec& v : data.versions()) {
      auto encoded = rel::EncodeSortedArray(v.rids);
      if (!encoded.ok()) {
        state.SkipWithError("encode failed");
        return;
      }
      plain += rel::PlainSize(v.rids);
      encoded_bytes += static_cast<int64_t>(encoded.value().size());
      auto decoded = rel::DecodeSortedArray(encoded.value());
      benchmark::DoNotOptimize(decoded);
    }
  }
  state.counters["compression_ratio"] =
      static_cast<double>(plain) / static_cast<double>(encoded_bytes);
}
BENCHMARK(BM_RlistCompression);

void BM_LyreSplit(benchmark::State& state) {
  const wl::Dataset& data = SharedData();
  core::VersionGraph graph = data.BuildGraph();
  for (auto _ : state) {
    auto r = part::LyreSplit::Run(graph, 0.5);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_LyreSplit);

void BM_LyreSplitBudgetSearch(benchmark::State& state) {
  const wl::Dataset& data = SharedData();
  core::VersionGraph graph = data.BuildGraph();
  int64_t gamma = 2 * data.num_records();
  for (auto _ : state) {
    auto r = part::LyreSplit::RunForBudget(graph, gamma);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_LyreSplitBudgetSearch);

// A console reporter that also keeps each finished run for the --json
// writer (name, per-iteration times, user counters).
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  struct Captured {
    std::string name;
    int64_t iterations = 0;
    double real_s_per_iter = 0;
    double cpu_s_per_iter = 0;
    std::vector<std::pair<std::string, double>> counters;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      Captured c;
      c.name = run.benchmark_name();
      c.iterations = static_cast<int64_t>(run.iterations);
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      c.real_s_per_iter = run.real_accumulated_time / iters;
      c.cpu_s_per_iter = run.cpu_accumulated_time / iters;
      for (const auto& kv : run.counters) {
        c.counters.emplace_back(kv.first, static_cast<double>(kv.second));
      }
      captured.push_back(std::move(c));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<Captured> captured;
};

std::string ToJson(const std::vector<CaptureReporter::Captured>& results) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"micro\",\n  \"scale\": " << orpheus::g_micro_scale
      << ",\n  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const CaptureReporter::Captured& r = results[i];
    out << "    {\"name\": \"" << bench::JsonEscape(r.name)
        << "\", \"iterations\": " << r.iterations
        << ", \"real_s_per_iter\": " << r.real_s_per_iter
        << ", \"cpu_s_per_iter\": " << r.cpu_s_per_iter;
    for (const auto& kv : r.counters) {
      out << ", \"" << bench::JsonEscape(kv.first) << "\": " << kv.second;
    }
    out << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"metrics\": " << bench::MetricsJson("  ") << "\n}\n";
  return out.str();
}

}  // namespace
}  // namespace orpheus

// Custom main instead of BENCHMARK_MAIN(): google-benchmark strips its
// own --benchmark_* flags, then we parse the harness flags (--scale,
// --threads, --json) from what remains.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  orpheus::Flags flags(argc, argv);
  orpheus::g_micro_scale = flags.GetDouble("scale", 1.0);
  int64_t threads = flags.GetInt("threads", 0);
  orpheus::g_micro_threads = static_cast<int>(std::min<int64_t>(
      std::max<int64_t>(threads, 0), orpheus::kMaxExecThreads));
  orpheus::SetExecThreads(orpheus::g_micro_threads);
  orpheus::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  std::string json_path = flags.GetString("json", "");
  if (!json_path.empty() &&
      !orpheus::bench::WriteJsonFile(json_path,
                                     orpheus::ToJson(reporter.captured))) {
    return 1;
  }
  return 0;
}
