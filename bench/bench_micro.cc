// Google-benchmark microbenchmarks for OrpheusDB's primitive
// operations: the array operators behind the data models, the
// checkout join, commit under the two main data models, and the
// LYRESPLIT partitioner itself.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/data_model.h"
#include "partition/lyresplit.h"
#include "relstore/database.h"
#include "relstore/intarray_codec.h"
#include "workload/generator.h"

namespace orpheus {
namespace {

// Shared medium dataset (generated once; benchmarks only read it).
const wl::Dataset& SharedData() {
  static const wl::Dataset* data = [] {
    wl::DatasetSpec spec = bench::MediumSpec(wl::WorkloadKind::kSci);
    spec.num_attrs = 10;
    return new wl::Dataset(wl::Generate(spec));
  }();
  return *data;
}

void BM_ArrayContainmentScan(benchmark::State& state) {
  // The combined-table checkout predicate: ARRAY[v] <@ vlist per row.
  rel::Database db;
  (void)db.Execute("CREATE TABLE t (rid INT, vlist INT[])");
  {
    auto table = db.GetTable("t");
    rel::Chunk& chunk = table.value()->mutable_chunk();
    for (int64_t r = 0; r < state.range(0); ++r) {
      chunk.mutable_column(0).AppendInt(r);
      rel::IntArray vlist;
      for (int64_t v = r % 7; v < 10; ++v) vlist.push_back(v);
      chunk.mutable_column(1).AppendArray(std::move(vlist));
    }
  }
  for (auto _ : state) {
    auto r = db.Execute("SELECT count(*) FROM t WHERE ARRAY[5] <@ vlist");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ArrayContainmentScan)->Arg(10000)->Arg(50000);

void BM_CheckoutUnnestJoin(benchmark::State& state) {
  // The split-by-rlist checkout query on a populated model.
  const wl::Dataset& data = SharedData();
  rel::Database db;
  auto model = core::MakeDataModel(core::DataModelKind::kSplitByRlist, &db, "m",
                                   data.DataSchema());
  if (!bench::PopulateModel(&db, model.get(), data).ok()) {
    state.SkipWithError("populate failed");
    return;
  }
  core::VersionId latest = data.versions().back().vid;
  int i = 0;
  for (auto _ : state) {
    std::string table = "chk" + std::to_string(i++);
    if (!model->CheckoutVersion(latest, table).ok()) {
      state.SkipWithError("checkout failed");
      return;
    }
    (void)db.DropTable(table);
  }
}
BENCHMARK(BM_CheckoutUnnestJoin);

void BM_CommitRlistVsCombined(benchmark::State& state) {
  // Commit (unchanged latest version) under rlist (arg 0) vs combined
  // (arg 1) — the Figure 3(b) gap in microcosm.
  const wl::Dataset& data = SharedData();
  core::DataModelKind kind = state.range(0) == 0
                                 ? core::DataModelKind::kSplitByRlist
                                 : core::DataModelKind::kCombinedTable;
  rel::Database db;
  auto model = core::MakeDataModel(kind, &db, "m", data.DataSchema());
  if (!bench::PopulateModel(&db, model.get(), data).ok()) {
    state.SkipWithError("populate failed");
    return;
  }
  const wl::VersionSpec& latest = data.versions().back();
  if (!model->CheckoutVersion(latest.vid, "work").ok()) {
    state.SkipWithError("checkout failed");
    return;
  }
  core::VersionId next = static_cast<core::VersionId>(data.versions().size()) + 1;
  for (auto _ : state) {
    if (!model->AddVersion(next++, "work", latest.rids, rel::Chunk(),
                           latest.vid).ok()) {
      state.SkipWithError("commit failed");
      return;
    }
  }
}
BENCHMARK(BM_CommitRlistVsCombined)->Arg(0)->Arg(1);

void BM_RlistCompression(benchmark::State& state) {
  // §3.2's compression remark as an ablation: encode/decode the
  // rlists of a generated workload and report the size ratio.
  const wl::Dataset& data = SharedData();
  int64_t plain = 0;
  int64_t encoded_bytes = 0;
  for (auto _ : state) {
    plain = 0;
    encoded_bytes = 0;
    for (const wl::VersionSpec& v : data.versions()) {
      auto encoded = rel::EncodeSortedArray(v.rids);
      if (!encoded.ok()) {
        state.SkipWithError("encode failed");
        return;
      }
      plain += rel::PlainSize(v.rids);
      encoded_bytes += static_cast<int64_t>(encoded.value().size());
      auto decoded = rel::DecodeSortedArray(encoded.value());
      benchmark::DoNotOptimize(decoded);
    }
  }
  state.counters["compression_ratio"] =
      static_cast<double>(plain) / static_cast<double>(encoded_bytes);
}
BENCHMARK(BM_RlistCompression);

void BM_LyreSplit(benchmark::State& state) {
  const wl::Dataset& data = SharedData();
  core::VersionGraph graph = data.BuildGraph();
  for (auto _ : state) {
    auto r = part::LyreSplit::Run(graph, 0.5);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_LyreSplit);

void BM_LyreSplitBudgetSearch(benchmark::State& state) {
  const wl::Dataset& data = SharedData();
  core::VersionGraph graph = data.BuildGraph();
  int64_t gamma = 2 * data.num_records();
  for (auto _ : state) {
    auto r = part::LyreSplit::RunForBudget(graph, gamma);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_LyreSplitBudgetSearch);

}  // namespace
}  // namespace orpheus

BENCHMARK_MAIN();
